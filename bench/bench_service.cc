// ComposeService latency lanes: how much a fingerprint cache hit saves
// over a miss (full composition) and over the synchronous Compose call,
// per problem, across the literature suite plus scheduler-shaped fan-out
// problems. Reports medians-of-reps as JSON (redirect stdout to
// BENCH_service.json).
//
// Correctness is checked, not assumed: every served result's fingerprint
// must equal the direct Compose baseline.
//
// Usage: bench_service [reps (default 5)] [hit-passes (default 64)]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/parser/parser.h"
#include "src/runtime/compose_service.h"
#include "src/runtime/thread_pool.h"
#include "src/simulator/scenarios.h"
#include "src/testdata/literature_suite.h"

using namespace mapcomp;

namespace {

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<CompositionProblem> BuildWorkload() {
  std::vector<CompositionProblem> problems;
  Parser parser;
  for (const testdata::LiteratureProblem& prob :
       testdata::LiteratureSuite()) {
    problems.push_back(parser.ParseProblem(prob.text).value());
  }
  problems.push_back(sim::BuildFanoutProblem(8));
  problems.push_back(sim::BuildFanoutProblem(8, /*chain_overlap=*/true));
  return problems;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  int reps = argc > 1 ? std::atoi(argv[1]) : 5;
  int hit_passes = argc > 2 ? std::atoi(argv[2]) : 64;

  std::vector<CompositionProblem> problems = BuildWorkload();
  ComposeOptions compose_options;

  // Baselines (and warm-up for the interner).
  std::vector<std::string> baselines;
  baselines.reserve(problems.size());
  for (const CompositionProblem& p : problems) {
    baselines.push_back(Compose(p, compose_options).Fingerprint());
  }

  std::vector<double> direct_us, miss_us, hit_us;
  bool correct = true;
  uint64_t hits_counted = 0, misses_counted = 0;
  for (int rep = 0; rep < reps; ++rep) {
    // Direct synchronous composition, no service in the way.
    auto start = std::chrono::steady_clock::now();
    for (const CompositionProblem& p : problems) {
      Compose(p, compose_options);
    }
    direct_us.push_back(MicrosSince(start) /
                        static_cast<double>(problems.size()));

    // Cold service: every Submit+Wait is a miss (fresh cache per rep).
    runtime::ComposeServiceOptions service_options;
    service_options.compose = compose_options;
    service_options.cache_capacity = 2 * problems.size();
    runtime::ComposeService service(service_options);
    start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < problems.size(); ++i) {
      const runtime::ServedResult& res =
          *service.Submit(problems[i]).Wait();
      if (res.Fingerprint() != baselines[i]) correct = false;
    }
    miss_us.push_back(MicrosSince(start) /
                      static_cast<double>(problems.size()));

    // Warm service: the same submissions hit the fingerprint cache.
    start = std::chrono::steady_clock::now();
    for (int pass = 0; pass < hit_passes; ++pass) {
      for (size_t i = 0; i < problems.size(); ++i) {
        const runtime::ServedResult& res =
          *service.Submit(problems[i]).Wait();
        if (pass == 0 && res.Fingerprint() != baselines[i]) correct = false;
      }
    }
    hit_us.push_back(MicrosSince(start) /
                     static_cast<double>(problems.size() *
                                         static_cast<size_t>(hit_passes)));
    runtime::ServiceStats stats = service.Stats();
    hits_counted += stats.hits;
    misses_counted += stats.misses;
  }

  double direct_med = Median(direct_us);
  double miss_med = Median(miss_us);
  double hit_med = Median(hit_us);
  int hardware = runtime::ThreadPool::HardwareThreads();
  std::printf("{\n");
  std::printf("  \"benchmark\": \"bench_service\",\n");
  std::printf("  \"hardware_concurrency\": %d,\n", hardware);
  std::printf("  \"single_core_warning\": %s,\n",
              hardware <= 1 ? "true" : "false");
  std::printf("  \"problems\": %zu,\n", problems.size());
  std::printf("  \"reps\": %d,\n", reps);
  std::printf("  \"hit_passes\": %d,\n", hit_passes);
  std::printf("  \"hits\": %llu,\n",
              static_cast<unsigned long long>(hits_counted));
  std::printf("  \"misses\": %llu,\n",
              static_cast<unsigned long long>(misses_counted));
  std::printf("  \"direct_us_per_problem\": %.3f,\n", direct_med);
  std::printf("  \"miss_us_per_problem\": %.3f,\n", miss_med);
  std::printf("  \"hit_us_per_problem\": %.3f,\n", hit_med);
  std::printf("  \"hit_speedup_vs_miss\": %.1f,\n",
              hit_med > 0.0 ? miss_med / hit_med : 0.0);
  std::printf("  \"service_overhead_vs_direct\": %.3f,\n",
              direct_med > 0.0 ? miss_med / direct_med : 0.0);
  std::printf("  \"deterministic_vs_direct\": %s\n",
              correct ? "true" : "false");
  std::printf("}\n");
  return correct ? 0 : 1;
}
