// Figure 2: fraction of symbols eliminated per schema-evolution primitive,
// for four configurations (no keys / keys / no unfolding / no right
// compose). Paper setup: 100 runs x 100 edits on schemas of size 30,
// Default event vector; each primitive's bar aggregates the compositions
// that followed edits of that kind.

#include <cstdio>
#include <map>

#include "bench/bench_common.h"

using namespace mapcomp;
using namespace mapcomp::bench;

int main() {
  int runs = 2 * Scale();
  int schema_size = 30;
  int num_edits = 50;
  std::printf(
      "# Figure 2: eliminated fraction per primitive "
      "(%d runs x %d edits, schema size %d)\n",
      runs, num_edits, schema_size);

  std::map<std::string, std::map<sim::Primitive, sim::PerPrimitiveStats>>
      table;
  std::map<std::string, int> aborts;
  for (const Config& config : kFig2Configs) {
    for (int run = 0; run < runs; ++run) {
      sim::EditingScenarioResult res = sim::RunEditingScenario(
          MakeEditingOptions(config, 1000 + run, schema_size, num_edits));
      for (const auto& [p, stats] : res.per_primitive) {
        sim::PerPrimitiveStats& agg = table[config.name][p];
        agg.edits += stats.edits;
        agg.symbols_total += stats.symbols_total;
        agg.symbols_eliminated += stats.symbols_eliminated;
        agg.consumed_total += stats.consumed_total;
        agg.consumed_eliminated += stats.consumed_eliminated;
        agg.millis += stats.millis;
      }
      aborts[config.name] += res.blowup_aborts;
    }
  }

  std::printf(
      "## primary metric: elimination of the symbol the primitive replaced\n");
  std::printf("%-6s %12s %12s %14s %18s\n", "prim", "no-keys", "keys",
              "no-unfolding", "no-right-compose");
  for (sim::Primitive p : sim::AllPrimitives()) {
    if (p == sim::Primitive::kAR) continue;  // creates no composition work
    std::printf("%-6s", sim::PrimitiveName(p));
    for (const Config& config : kFig2Configs) {
      const auto& per = table[config.name];
      auto it = per.find(p);
      if (it == per.end() || it->second.consumed_total == 0) {
        std::printf(" %12s", "-");
      } else {
        std::printf(" %12.3f", it->second.ConsumedEliminatedFraction());
      }
    }
    std::printf("\n");
  }
  std::printf(
      "## secondary metric: all intermediate symbols (identity copies "
      "included)\n");
  std::printf("%-6s %12s %12s %14s %18s\n", "prim", "no-keys", "keys",
              "no-unfolding", "no-right-compose");
  for (sim::Primitive p : sim::AllPrimitives()) {
    if (p == sim::Primitive::kAR) continue;
    std::printf("%-6s", sim::PrimitiveName(p));
    for (const Config& config : kFig2Configs) {
      const auto& per = table[config.name];
      auto it = per.find(p);
      if (it == per.end() || it->second.symbols_total == 0) {
        std::printf(" %12s", "-");
      } else {
        std::printf(" %12.3f", it->second.EliminatedFraction());
      }
    }
    std::printf("\n");
  }
  std::printf("# blowup aborts:");
  for (const Config& config : kFig2Configs) {
    std::printf(" %s=%d", config.name, aborts[config.name]);
  }
  std::printf("\n");

  // Ablation from §4.2: disabling left compose should be near-invisible on
  // simulator workloads.
  long long base_total = 0, base_elim = 0, noleft_total = 0, noleft_elim = 0;
  for (int run = 0; run < runs; ++run) {
    sim::EditingScenarioResult base = sim::RunEditingScenario(
        MakeEditingOptions(kFig2Configs[0], 1000 + run, schema_size,
                           num_edits));
    sim::EditingScenarioResult noleft = sim::RunEditingScenario(
        MakeEditingOptions(kNoLeftComposeConfig, 1000 + run, schema_size,
                           num_edits));
    base_total += base.symbols_total;
    base_elim += base.symbols_eliminated;
    noleft_total += noleft.symbols_total;
    noleft_elim += noleft.symbols_eliminated;
  }
  std::printf(
      "# no-left-compose ablation: complete=%.4f no-left=%.4f (same seeds)\n",
      base_total == 0 ? 1.0 : static_cast<double>(base_elim) / base_total,
      noleft_total == 0 ? 1.0
                        : static_cast<double>(noleft_elim) / noleft_total);
  return 0;
}
