// §4 observation: "Our algorithm appears to be order-invariant on the
// studied data sets, i.e., it eliminates the same fraction of symbols no
// matter in what order the symbols are tried." This harness re-composes the
// same reconciliation problems under shuffled σ2 orders and reports how
// often the eliminated fraction changes.

#include <algorithm>
#include <cstdio>
#include <random>

#include "bench/bench_common.h"

using namespace mapcomp;
using namespace mapcomp::bench;

int main() {
  int tasks = 4 * Scale();
  int orders_per_task = 5;
  std::printf(
      "# Order invariance: %d reconciliation tasks x %d shuffled orders\n",
      tasks, orders_per_task);
  std::printf("%-6s %10s %12s %12s\n", "task", "symbols", "min-elim",
              "max-elim");

  std::mt19937_64 rng(99);
  int variant_tasks = 0;
  for (int task = 0; task < tasks; ++task) {
    sim::ReconciliationScenarioOptions opts;
    opts.schema_size = 20;
    opts.num_edits = 25;
    opts.seed = 7000 + task;
    opts.max_branch_attempts = 2;
    CompositionProblem problem = sim::BuildReconciliationProblem(opts);

    int min_elim = -1, max_elim = -1;
    std::vector<std::string> order = problem.sigma2.names();
    for (int trial = 0; trial < orders_per_task; ++trial) {
      ComposeOptions copts;
      copts.order = order;
      CompositionResult res = Compose(problem, copts);
      if (min_elim < 0 || res.eliminated_count < min_elim) {
        min_elim = res.eliminated_count;
      }
      max_elim = std::max(max_elim, res.eliminated_count);
      std::shuffle(order.begin(), order.end(), rng);
    }
    if (min_elim != max_elim) ++variant_tasks;
    std::printf("%-6d %10d %12d %12d\n", task, problem.sigma2.size(),
                min_elim, max_elim);
  }
  std::printf("# order-dependent tasks: %d/%d\n", variant_tasks, tasks);
  return 0;
}
