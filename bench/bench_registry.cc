// Schema-registry steady state: a long-lived registry of schema families,
// a seeded Zipf edit stream, and a full-chain recomposition after every
// edit. Two lanes run the byte-identical edit stream in lockstep — warm
// (prefix-fingerprint cache + compose service) and cold (no reuse at all)
// — and every step's ChainResult fingerprint is compared between them, so
// the speedup numbers are gated on correctness, not alongside it.
//
// Reports JSON (redirect stdout to BENCH_registry.json). Exits non-zero
// on any warm/cold fingerprint mismatch.
//
// Usage: bench_registry [--smoke] [steps (default 240)]
//   --smoke: small registry, few steps — the CI determinism gate.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/runtime/thread_pool.h"
#include "src/simulator/registry.h"

using namespace mapcomp;

namespace {

struct LaneTimes {
  double seconds = 0.0;
  uint64_t compositions = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int steps = 240;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      steps = std::atoi(argv[i]);
      if (steps <= 0) {
        std::fprintf(stderr, "bench_registry: bad step count '%s'\n",
                     argv[i]);
        return 2;
      }
    }
  }
  if (smoke) steps = std::min(steps, 60);

  sim::RegistryOptions options;
  options.seed = 7;
  if (smoke) {
    options.families = 4;
    options.initial_depth = 6;
    options.max_depth = 10;
    options.schema_size = 3;
  } else {
    options.families = 12;
    options.initial_depth = 20;  // the ≥16-deep regime the ROADMAP targets
    options.max_depth = 36;
    options.schema_size = 4;
    // Registry-shaped stream: mostly appends, and revisions cluster hard
    // on the newest mappings.
    options.revise_fraction = 0.15;
    options.position_zipf = 2.5;
  }

  // Warm lane: prefix cache + compose-service result cache.
  runtime::ComposeServiceOptions warm_service_options;
  warm_service_options.compose = options.compose;
  warm_service_options.cache_capacity = 4096;
  runtime::ComposeService warm_service(warm_service_options);
  sim::SchemaRegistry warm(options, &warm_service);

  // Cold lane: the same seed (hence the same edit stream), every cache off
  // — each edit pays the full O(depth) recomposition.
  runtime::ComposeServiceOptions cold_service_options;
  cold_service_options.compose = options.compose;
  cold_service_options.cache_capacity = 0;
  runtime::ComposeService cold_service(cold_service_options);
  sim::RegistryOptions cold_options = options;
  cold_options.chain_cache.cache_capacity = 0;
  sim::SchemaRegistry cold(cold_options, &cold_service);

  LaneTimes warm_lane, cold_lane;
  bool deterministic = true;
  for (int step = 0; step < steps; ++step) {
    auto start = std::chrono::steady_clock::now();
    Result<runtime::ChainResult> w = warm.Step();
    warm_lane.seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    start = std::chrono::steady_clock::now();
    Result<runtime::ChainResult> c = cold.Step();
    cold_lane.seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    if (!w.ok() || !c.ok()) {
      std::fprintf(stderr, "bench_registry: step %d failed: %s\n", step,
                   (!w.ok() ? w.status() : c.status()).ToString().c_str());
      return 1;
    }
    warm_lane.compositions +=
        static_cast<uint64_t>(w.value().steps_composed);
    cold_lane.compositions +=
        static_cast<uint64_t>(c.value().steps_composed);
    if (w.value().fingerprint != c.value().fingerprint ||
        w.value().result_fingerprint != c.value().result_fingerprint) {
      deterministic = false;
      std::fprintf(stderr,
                   "bench_registry: warm/cold fingerprint mismatch at step "
                   "%d (family %d, %s position %d)\n",
                   step, warm.last_edit().family,
                   warm.last_edit().append ? "append" : "revise",
                   warm.last_edit().position);
    }
  }

  const sim::RegistryStats& warm_stats = warm.stats();
  const sim::RegistryStats& cold_stats = cold.stats();
  runtime::ServiceStats service_stats = warm_service.Stats();
  runtime::ChainStats chain_stats = warm.chain_composer()->Stats();

  double warm_rate =
      warm_lane.seconds > 0.0 ? steps / warm_lane.seconds : 0.0;
  double cold_rate =
      cold_lane.seconds > 0.0 ? steps / cold_lane.seconds : 0.0;
  int hardware = runtime::ThreadPool::HardwareThreads();
  std::printf("{\n");
  std::printf("  \"benchmark\": \"bench_registry\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"hardware_concurrency\": %d,\n", hardware);
  std::printf("  \"single_core_warning\": %s,\n",
              hardware <= 1 ? "true" : "false");
  std::printf("  \"families\": %d,\n", options.families);
  std::printf("  \"initial_depth\": %d,\n", options.initial_depth);
  std::printf("  \"max_depth\": %d,\n", options.max_depth);
  std::printf("  \"schemas\": %d,\n", warm.TotalVersions());
  std::printf("  \"steps\": %d,\n", steps);
  std::printf("  \"appends\": %llu,\n",
              static_cast<unsigned long long>(warm_stats.appends));
  std::printf("  \"revisions\": %llu,\n",
              static_cast<unsigned long long>(warm_stats.revisions));
  std::printf("  \"mean_chain_depth\": %.2f,\n", warm_stats.MeanDepth());
  std::printf("  \"prefix_hit_rate\": %.4f,\n", warm_stats.PrefixHitRate());
  std::printf("  \"warm_compositions_per_edit\": %.3f,\n",
              warm_stats.CompositionsPerEdit());
  std::printf("  \"cold_compositions_per_edit\": %.3f,\n",
              cold_stats.CompositionsPerEdit());
  std::printf("  \"warm_chain_recomposes_per_sec\": %.2f,\n", warm_rate);
  std::printf("  \"cold_chain_recomposes_per_sec\": %.2f,\n", cold_rate);
  std::printf("  \"speedup_vs_cold\": %.2f,\n",
              cold_rate > 0.0 ? warm_rate / cold_rate : 0.0);
  std::printf("  \"service_cache_bytes\": %llu,\n",
              static_cast<unsigned long long>(service_stats.cache_bytes));
  std::printf("  \"service_cache_bytes_peak\": %llu,\n",
              static_cast<unsigned long long>(service_stats.cache_bytes_peak));
  std::printf("  \"chain_cache_entries\": %llu,\n",
              static_cast<unsigned long long>(chain_stats.entries));
  std::printf("  \"chain_cache_bytes\": %llu,\n",
              static_cast<unsigned long long>(chain_stats.cache_bytes));
  std::printf("  \"chain_cache_bytes_peak\": %llu,\n",
              static_cast<unsigned long long>(chain_stats.cache_bytes_peak));
  std::printf("  \"deterministic_warm_vs_cold\": %s\n",
              deterministic ? "true" : "false");
  std::printf("}\n");
  return deterministic ? 0 : 1;
}
