// Multithreaded batch-compose throughput: the scaling baseline for the
// parallel runtime (ComposeMany + sharded interner). Composes a batch of
// independent problems — literature-suite replicas plus paper-scale
// simulator edits — at 1/2/4/8 worker lanes and reports problems/second
// per lane count as JSON (redirect stdout to BENCH_parallel.json).
//
// Determinism is checked, not assumed: every parallel run's per-problem
// CompositionResult::Fingerprint must equal the jobs=1 baseline.
//
// Usage: bench_parallel_compose [lit-replicas (default 6)] [sim-problems
// (default 24)] — scale both up on big machines for steadier numbers.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/parser/parser.h"
#include "src/runtime/compose_many.h"
#include "src/runtime/thread_pool.h"
#include "src/simulator/simulator.h"
#include "src/testdata/literature_suite.h"

using namespace mapcomp;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<CompositionProblem> BuildWorkload(int lit_replicas,
                                              int sim_problems) {
  std::vector<CompositionProblem> problems;
  Parser parser;
  for (int rep = 0; rep < lit_replicas; ++rep) {
    for (const testdata::LiteratureProblem& prob :
         testdata::LiteratureSuite()) {
      problems.push_back(parser.ParseProblem(prob.text).value());
    }
  }
  // Paper-scale (§4.1) schema-evolution compositions, one per seed, so the
  // batch also carries heavy problems with little cross-problem sharing.
  for (int seed = 0; seed < sim_problems; ++seed) {
    sim::SimulatorOptions opts;
    sim::EvolutionSimulator simulator(opts, 1000 + seed);
    sim::SimSchema schema0 = simulator.RandomSchema(30);
    sim::FullEdit e1 = simulator.ApplyRandomEdit(schema0);
    sim::FullEdit e2 = simulator.ApplyRandomEdit(e1.new_schema);
    CompositionProblem p;
    p.name = "sim-seed-" + std::to_string(seed);
    p.sigma1 = schema0.ToSignature();
    p.sigma2 = e1.new_schema.ToSignature();
    p.sigma3 = e2.new_schema.ToSignature();
    p.sigma12 = e1.constraints;
    p.sigma23 = e2.constraints;
    problems.push_back(std::move(p));
  }
  return problems;
}

}  // namespace

int main(int argc, char** argv) {
  int lit_replicas = argc > 1 ? std::atoi(argv[1]) : 6;
  int sim_problems = argc > 2 ? std::atoi(argv[2]) : 24;
  constexpr int kReps = 3;
  const std::vector<int> kJobs = {1, 2, 4, 8};

  std::vector<CompositionProblem> problems =
      BuildWorkload(lit_replicas, sim_problems);

  // Warm-up: populates the interner and faults in the working set, so every
  // lane count sees the same steady-state table.
  std::vector<CompositionResult> baseline =
      runtime::ComposeMany(problems, ComposeOptions{}, 1);

  std::printf("{\n");
  std::printf("  \"benchmark\": \"bench_parallel_compose\",\n");
  // Self-describing recording environment: a 1-core box cannot show
  // parallel speedup, so scaling numbers carry an explicit health flag
  // instead of relying on the reader to notice hardware_concurrency.
  int hardware = runtime::ThreadPool::HardwareThreads();
  std::printf("  \"hardware_concurrency\": %d,\n", hardware);
  std::printf("  \"single_core_warning\": %s,\n",
              hardware <= 1 ? "true" : "false");
  std::printf("  \"problems\": %zu,\n", problems.size());
  std::printf("  \"lit_replicas\": %d,\n", lit_replicas);
  std::printf("  \"sim_problems\": %d,\n", sim_problems);
  std::printf("  \"reps\": %d,\n", kReps);
  std::printf("  \"results\": [\n");

  double base_throughput = 0.0;
  for (size_t j = 0; j < kJobs.size(); ++j) {
    int jobs = kJobs[j];
    double best_seconds = -1.0;
    bool deterministic = true;
    for (int rep = 0; rep < kReps; ++rep) {
      auto start = std::chrono::steady_clock::now();
      std::vector<CompositionResult> results =
          runtime::ComposeMany(problems, ComposeOptions{}, jobs);
      double elapsed = Seconds(start);
      if (best_seconds < 0.0 || elapsed < best_seconds) {
        best_seconds = elapsed;
      }
      for (size_t i = 0; i < results.size(); ++i) {
        if (results[i].Fingerprint() != baseline[i].Fingerprint()) {
          deterministic = false;
          std::fprintf(stderr,
                       "NONDETERMINISM: problem %zu differs at jobs=%d\n", i,
                       jobs);
        }
      }
    }
    double throughput = static_cast<double>(problems.size()) / best_seconds;
    if (jobs == 1) base_throughput = throughput;
    std::printf(
        "    {\"jobs\": %d, \"best_seconds\": %.6f, "
        "\"problems_per_sec\": %.1f, \"speedup_vs_jobs1\": %.3f, "
        "\"deterministic_vs_jobs1\": %s}%s\n",
        jobs, best_seconds, throughput, throughput / base_throughput,
        deterministic ? "true" : "false",
        j + 1 < kJobs.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
