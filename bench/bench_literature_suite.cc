// §4 first data set: the 22 composition problems drawn from the literature
// (reconstructed — see src/testdata/literature_suite.h). Reports per-problem
// elimination outcome, output size and timing.

#include <cstdio>

#include "src/compose/compose.h"
#include "src/parser/parser.h"
#include "src/testdata/literature_suite.h"

using namespace mapcomp;

int main() {
  std::printf("# Literature suite: 22 problems from [5,7,8] + paper examples\n");
  std::printf("%-34s %6s %6s %10s %10s %10s\n", "problem", "elim", "total",
              "in-ops", "out-ops", "time-ms");
  Parser parser;
  int ok = 0;
  double total_ms = 0;
  for (const testdata::LiteratureProblem& prob :
       testdata::LiteratureSuite()) {
    Result<CompositionProblem> parsed = parser.ParseProblem(prob.text);
    if (!parsed.ok()) {
      std::printf("%-34s parse error: %s\n", prob.name,
                  parsed.status().ToString().c_str());
      continue;
    }
    int in_ops = OperatorCount(parsed->sigma12) +
                 OperatorCount(parsed->sigma23);
    CompositionResult res = Compose(*parsed);
    bool matches = res.eliminated_count == prob.expect_eliminated &&
                   res.total_count == prob.expect_total;
    if (matches) ++ok;
    total_ms += res.total_millis;
    std::printf("%-34s %6d %6d %10d %10d %10.3f%s\n", prob.name,
                res.eliminated_count, res.total_count, in_ops,
                OperatorCount(res.constraints), res.total_millis,
                matches ? "" : "  [UNEXPECTED]");
  }
  std::printf("# expected outcomes matched: %d/%zu, total %.2f ms\n", ok,
              testdata::LiteratureSuite().size(), total_ms);
  return 0;
}
