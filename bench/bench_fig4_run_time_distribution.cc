// Figure 4: sorted per-run execution times for the 'no keys' configuration
// (the paper's argument for reporting medians: most runs cluster tightly,
// a few outliers skew the average).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace mapcomp;
using namespace mapcomp::bench;

int main() {
  int runs = 20 * Scale();
  int schema_size = 30;
  int num_edits = 50;
  std::printf(
      "# Figure 4: sorted run times, no-keys config "
      "(%d runs x %d edits, schema size %d)\n",
      runs, num_edits, schema_size);
  std::vector<double> times;
  for (int run = 0; run < runs; ++run) {
    sim::EditingScenarioResult res = sim::RunEditingScenario(
        MakeEditingOptions(kFig2Configs[0], 3000 + run, schema_size,
                           num_edits));
    times.push_back(res.total_millis);
  }
  std::sort(times.begin(), times.end());
  std::printf("%-6s %14s\n", "run", "time-ms");
  for (size_t i = 0; i < times.size(); ++i) {
    std::printf("%-6zu %14.1f\n", i, times[i]);
  }
  double sum = 0;
  for (double t : times) sum += t;
  std::printf("# median=%.1f ms, mean=%.1f ms, max=%.1f ms\n",
              times[times.size() / 2], sum / times.size(), times.back());
  return 0;
}
