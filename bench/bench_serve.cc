// Closed-loop load generator for the serving tier: thousands of concurrent
// loopback connections (epoll worker threads, one outstanding request per
// connection) drive a ComposeServer through four phases — all-hot traffic
// (cache-aware admission should bypass the queue), mixed 70/30 hot/cold, a
// deliberately saturated server (tiny admission queue, one dispatcher)
// where backpressure must shed, not hang, and a deadline phase (tight
// per-request deadlines + queue aging under the same saturation) where
// timed-out work must be *cancelled*, not left running. Reports
// p50/p99/p999 reply latency, shed/timeout/cancel rates, and queue-depth
// watermarks as JSON (redirect stdout to BENCH_serve.json).
//
// Correctness is a gate, not a hope: every kOk reply's result fingerprint
// is compared against a direct Compose() of the same problem computed in
// this process; any mismatch (or protocol error, or missing reply) makes
// the exit code non-zero, so CI fails loudly when wire serving drifts from
// in-process composition. The deadline phase adds the zombie-lane gate:
// ServiceStats::cancelled must cover every kTimeout reply and in_flight
// must return to zero after the drain — a timed-out request whose
// computation kept running would fail both.
//
// Usage: bench_serve [--smoke]
//   --smoke: small sizes for CI (64 connections, short phases)

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/parser/parser.h"
#include "src/runtime/compose_service.h"
#include "src/runtime/thread_pool.h"
#include "src/serve/compose_client.h"
#include "src/serve/compose_server.h"
#include "src/simulator/scenarios.h"
#include "src/testdata/literature_suite.h"

using namespace mapcomp;

namespace {

/// One pre-serialized request with its expected answer.
struct PreparedRequest {
  std::string frame;        // complete wire frame, ready to write
  std::string fingerprint;  // direct Compose() fingerprint (the oracle)
  uint64_t id = 0;
};

struct PhaseResult {
  std::string name;
  size_t connections = 0;
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t cache_hits = 0;
  uint64_t sheds = 0;
  uint64_t timeouts = 0;
  uint64_t errors = 0;      // transport/protocol failures, missing replies
  uint64_t mismatches = 0;  // fingerprint disagreements (the gate)
  double duration_s = 0;
  double p50_us = 0, p99_us = 0, p999_us = 0;
  serve::ServerStats server;
  /// Service counters captured after Stop()'s drain, once in_flight has
  /// converged (bounded poll) — the zombie-lane witness.
  runtime::ServiceStats svc;
};

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  return sorted[std::min(idx, sorted.size() - 1)];
}

std::vector<PreparedRequest> PrepareHotSet(const ComposeOptions& options) {
  std::vector<CompositionProblem> problems;
  Parser parser;
  for (const testdata::LiteratureProblem& prob :
       testdata::LiteratureSuite()) {
    Result<CompositionProblem> parsed = parser.ParseProblem(prob.text);
    if (parsed.ok()) problems.push_back(std::move(*parsed));
  }
  for (int w = 2; w <= 9; ++w) {
    problems.push_back(sim::BuildFanoutProblem(w));
    problems.push_back(sim::BuildFanoutProblem(w, /*chain_overlap=*/true));
  }
  std::vector<PreparedRequest> out;
  out.reserve(problems.size());
  for (size_t i = 0; i < problems.size(); ++i) {
    PreparedRequest req;
    req.id = 1000 + i;
    req.fingerprint = Compose(problems[i], options).Fingerprint();
    std::string body;
    serve::ServeRequest wire = serve::ServeRequest::Of(problems[i], req.id);
    if (!wire.SerializeTo(&body).ok()) continue;
    serve::EncodeFrame(serve::FrameType::kRequest, body, &req.frame);
    out.push_back(std::move(req));
  }
  return out;
}

/// Cold traffic: each request is a never-seen-before problem — the select
/// constant makes the fingerprint unique, so the cache can't help and the
/// request must travel the full admission + compose path.
std::vector<PreparedRequest> PrepareColdPool(size_t count,
                                             const ComposeOptions& options,
                                             uint64_t* counter,
                                             uint32_t deadline_ms = 0) {
  Parser parser;
  std::vector<PreparedRequest> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t c = (*counter)++;
    char text[256];
    std::snprintf(text, sizeof(text),
                  "schema s1 { R(2); } schema s2 { A(2); } "
                  "schema s3 { T(2); } "
                  "map m12 { A = sel[#1=%llu](R); } map m23 { A <= T; }",
                  static_cast<unsigned long long>(c));
    Result<CompositionProblem> parsed = parser.ParseProblem(text);
    if (!parsed.ok()) continue;
    PreparedRequest req;
    req.id = 1u << 20;  // distinct id space from the hot set
    req.id += c;
    req.fingerprint = Compose(*parsed, options).Fingerprint();
    std::string body;
    serve::ServeRequest wire = serve::ServeRequest::Of(std::move(*parsed),
                                                       req.id);
    wire.deadline_ms = deadline_ms;  // 0 = no wire deadline field
    if (!wire.SerializeTo(&body).ok()) continue;
    serve::EncodeFrame(serve::FrameType::kRequest, body, &req.frame);
    out.push_back(std::move(req));
  }
  return out;
}

/// Per-connection closed-loop state: exactly one request outstanding.
struct Conn {
  int fd = -1;
  serve::FrameDecoder decoder;
  std::string out;
  size_t out_pos = 0;
  int remaining = 0;
  const PreparedRequest* expect = nullptr;
  std::chrono::steady_clock::time_point sent_at;
  std::mt19937 rng;
  bool writable_armed = false;
  bool done = false;
};

struct WorkerTally {
  std::vector<double> ok_latency_us;
  uint64_t requests = 0, ok = 0, cache_hits = 0, sheds = 0, timeouts = 0,
           errors = 0, mismatches = 0;
};

class LoadWorker {
 public:
  LoadWorker(int port, size_t conns, int requests_per_conn,
             const std::vector<PreparedRequest>& hot,
             const std::vector<PreparedRequest>& cold, int hot_percent,
             std::atomic<size_t>* cold_cursor, uint32_t seed)
      : hot_(hot),
        cold_(cold),
        hot_percent_(hot_percent),
        cold_cursor_(cold_cursor) {
    epfd_ = ::epoll_create1(0);
    conns_.reserve(conns);
    for (size_t i = 0; i < conns; ++i) {
      int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      sockaddr_in addr;
      memset(&addr, 0, sizeof(addr));
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<uint16_t>(port));
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0) {
        ::close(fd);
        ++tally_.errors;
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      int flags = ::fcntl(fd, F_GETFL, 0);
      ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conn->remaining = requests_per_conn;
      conn->rng.seed(seed + static_cast<uint32_t>(i));
      epoll_event ev;
      memset(&ev, 0, sizeof(ev));
      ev.events = EPOLLIN;
      ev.data.ptr = conn.get();
      ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
      conns_.push_back(std::move(conn));
    }
  }

  ~LoadWorker() {
    for (auto& c : conns_) {
      if (c->fd >= 0) ::close(c->fd);
    }
    if (epfd_ >= 0) ::close(epfd_);
  }

  WorkerTally Run() {
    size_t live = 0;
    for (auto& c : conns_) {
      StartNext(*c);
      if (!c->done) ++live;
    }
    // A stuck server must fail the bench, not hang it.
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(180);
    epoll_event events[128];
    while (live > 0) {
      if (std::chrono::steady_clock::now() > deadline) {
        tally_.errors += live;
        break;
      }
      int n = ::epoll_wait(epfd_, events, 128, 1000);
      for (int i = 0; i < n; ++i) {
        Conn& conn = *static_cast<Conn*>(events[i].data.ptr);
        if (conn.done) continue;
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          Finish(conn, /*as_error=*/true);
          --live;
          continue;
        }
        if (events[i].events & EPOLLOUT) Flush(conn);
        if (conn.done) {
          --live;
          continue;
        }
        if (events[i].events & EPOLLIN) Read(conn);
        if (conn.done) --live;
      }
    }
    return std::move(tally_);
  }

 private:
  const PreparedRequest* Pick(Conn& conn) {
    bool go_hot = hot_percent_ >= 100 ||
                  (hot_percent_ > 0 &&
                   static_cast<int>(conn.rng() % 100) < hot_percent_);
    if (!go_hot && !cold_.empty()) {
      size_t at = cold_cursor_->fetch_add(1);
      if (at < cold_.size()) return &cold_[at];
      // Pool exhausted (rounding): hot traffic is an acceptable stand-in.
    }
    if (hot_.empty()) return nullptr;
    return &hot_[conn.rng() % hot_.size()];
  }

  void StartNext(Conn& conn) {
    if (conn.remaining <= 0) {
      Finish(conn, /*as_error=*/false);
      return;
    }
    --conn.remaining;
    conn.expect = Pick(conn);
    if (conn.expect == nullptr) {
      Finish(conn, /*as_error=*/true);
      return;
    }
    ++tally_.requests;
    conn.out = conn.expect->frame;
    conn.out_pos = 0;
    conn.sent_at = std::chrono::steady_clock::now();
    Flush(conn);
  }

  void Arm(Conn& conn, bool want_out) {
    if (want_out == conn.writable_armed) return;
    conn.writable_armed = want_out;
    epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | (want_out ? EPOLLOUT : 0);
    ev.data.ptr = &conn;
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, conn.fd, &ev);
  }

  void Flush(Conn& conn) {
    while (conn.out_pos < conn.out.size()) {
      ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_pos,
                          conn.out.size() - conn.out_pos);
      if (n > 0) {
        conn.out_pos += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        Arm(conn, true);
        return;
      }
      if (n < 0 && errno == EINTR) continue;
      Finish(conn, /*as_error=*/true);
      return;
    }
    Arm(conn, false);
  }

  void Read(Conn& conn) {
    char buf[65536];
    ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n == 0) {
      Finish(conn, /*as_error=*/true);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      Finish(conn, /*as_error=*/true);
      return;
    }
    conn.decoder.Feed(reinterpret_cast<const uint8_t*>(buf),
                      static_cast<size_t>(n));
    serve::FrameType type;
    std::string body;
    for (;;) {
      serve::FrameDecoder::Next next = conn.decoder.Poll(&type, &body);
      if (next == serve::FrameDecoder::Next::kNeedMore) return;
      if (next == serve::FrameDecoder::Next::kError) {
        Finish(conn, /*as_error=*/true);
        return;
      }
      OnReply(conn, body);
      if (conn.done) return;
    }
  }

  void OnReply(Conn& conn, const std::string& body) {
    double us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - conn.sent_at)
                    .count();
    Result<serve::ServeReply> reply = serve::ServeReply::Parse(
        reinterpret_cast<const uint8_t*>(body.data()), body.size());
    if (!reply.ok() || conn.expect == nullptr ||
        reply->request_id != conn.expect->id) {
      ++tally_.errors;
    } else if (reply->status == serve::WireStatus::kOk) {
      ++tally_.ok;
      tally_.ok_latency_us.push_back(us);
      if (reply->cache_hit) ++tally_.cache_hits;
      if (reply->result.Fingerprint() != conn.expect->fingerprint) {
        ++tally_.mismatches;
      }
    } else if (reply->status == serve::WireStatus::kOverloaded) {
      ++tally_.sheds;
    } else if (reply->status == serve::WireStatus::kTimeout) {
      ++tally_.timeouts;
    } else {
      ++tally_.errors;
    }
    StartNext(conn);
  }

  void Finish(Conn& conn, bool as_error) {
    if (conn.done) return;
    if (as_error) ++tally_.errors;
    conn.done = true;
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conn.fd = -1;
  }

  const std::vector<PreparedRequest>& hot_;
  const std::vector<PreparedRequest>& cold_;
  const int hot_percent_;
  std::atomic<size_t>* cold_cursor_;
  int epfd_ = -1;
  std::vector<std::unique_ptr<Conn>> conns_;
  WorkerTally tally_;
};

PhaseResult RunPhase(const std::string& name, serve::ServerOptions server_options,
                     int hot_percent, size_t connections,
                     int requests_per_conn, int worker_threads,
                     const std::vector<PreparedRequest>& hot,
                     const std::vector<PreparedRequest>& cold,
                     bool warm_cache) {
  runtime::ComposeService service;
  serve::ComposeServer server(&service, server_options);
  PhaseResult out;
  out.name = name;
  out.connections = connections;
  if (!server.Start().ok()) {
    out.errors = 1;
    return out;
  }

  if (warm_cache) {
    // Pre-load the hot set so the phase measures serving, not first-touch
    // composition.
    Result<std::unique_ptr<serve::ComposeClient>> warm =
        serve::ComposeClient::Connect("127.0.0.1", server.port());
    if (warm.ok()) {
      Parser parser;
      for (const PreparedRequest& req : hot) {
        if (!(*warm)->SendRaw(req.frame).ok()) break;
        (void)(*warm)->Recv();
      }
    }
  }

  std::atomic<size_t> cold_cursor{0};
  int threads = std::max(1, worker_threads);
  size_t per_thread = connections / static_cast<size_t>(threads);
  size_t extra = connections % static_cast<size_t>(threads);

  std::vector<std::unique_ptr<LoadWorker>> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    size_t count = per_thread + (static_cast<size_t>(t) < extra ? 1 : 0);
    workers.push_back(std::make_unique<LoadWorker>(
        server.port(), count, requests_per_conn, hot, cold, hot_percent,
        &cold_cursor, /*seed=*/0x9e3779b9u * (t + 1)));
  }

  std::vector<WorkerTally> tallies(workers.size());
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(workers.size());
  for (size_t t = 0; t < workers.size(); ++t) {
    pool.emplace_back([&, t] { tallies[t] = workers[t]->Run(); });
  }
  for (std::thread& t : pool) t.join();
  out.duration_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  std::vector<double> latency;
  for (WorkerTally& tally : tallies) {
    out.requests += tally.requests;
    out.ok += tally.ok;
    out.cache_hits += tally.cache_hits;
    out.sheds += tally.sheds;
    out.timeouts += tally.timeouts;
    out.errors += tally.errors;
    out.mismatches += tally.mismatches;
    latency.insert(latency.end(), tally.ok_latency_us.begin(),
                   tally.ok_latency_us.end());
  }
  std::sort(latency.begin(), latency.end());
  out.p50_us = Percentile(latency, 0.50);
  out.p99_us = Percentile(latency, 0.99);
  out.p999_us = Percentile(latency, 0.999);
  out.server = server.Stats();
  server.Stop();
  // After Stop, every reply is answered; what may remain in flight are
  // cancelled computations still unwinding cooperatively. Give them a
  // bounded window to drain — a zombie (timed-out but still running)
  // computation shows up here as in_flight stuck above zero.
  auto idle_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  out.svc = service.Stats();
  while (out.svc.in_flight > 0 &&
         std::chrono::steady_clock::now() < idle_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    out.svc = service.Stats();
  }
  return out;
}

void PrintPhase(const PhaseResult& r, bool last) {
  std::printf("    {\n");
  std::printf("      \"name\": \"%s\",\n", r.name.c_str());
  std::printf("      \"connections\": %zu,\n", r.connections);
  std::printf("      \"requests\": %llu,\n",
              static_cast<unsigned long long>(r.requests));
  std::printf("      \"ok\": %llu,\n", static_cast<unsigned long long>(r.ok));
  std::printf("      \"cache_hits\": %llu,\n",
              static_cast<unsigned long long>(r.cache_hits));
  std::printf("      \"sheds\": %llu,\n",
              static_cast<unsigned long long>(r.sheds));
  std::printf("      \"timeouts\": %llu,\n",
              static_cast<unsigned long long>(r.timeouts));
  std::printf("      \"errors\": %llu,\n",
              static_cast<unsigned long long>(r.errors));
  std::printf("      \"fingerprint_mismatches\": %llu,\n",
              static_cast<unsigned long long>(r.mismatches));
  std::printf("      \"shed_rate\": %.4f,\n",
              r.requests > 0
                  ? static_cast<double>(r.sheds) /
                        static_cast<double>(r.requests)
                  : 0.0);
  std::printf("      \"duration_s\": %.3f,\n", r.duration_s);
  std::printf("      \"throughput_rps\": %.1f,\n",
              r.duration_s > 0
                  ? static_cast<double>(r.requests) / r.duration_s
                  : 0.0);
  std::printf("      \"p50_us\": %.1f,\n", r.p50_us);
  std::printf("      \"p99_us\": %.1f,\n", r.p99_us);
  std::printf("      \"p999_us\": %.1f,\n", r.p999_us);
  std::printf("      \"queue_depth_watermark\": %llu,\n",
              static_cast<unsigned long long>(r.server.queue_depth_watermark));
  std::printf("      \"server_timeouts\": %llu,\n",
              static_cast<unsigned long long>(r.server.timeouts));
  std::printf("      \"service_cancelled\": %llu,\n",
              static_cast<unsigned long long>(r.svc.cancelled));
  std::printf("      \"service_in_flight_after_drain\": %lld,\n",
              static_cast<long long>(r.svc.in_flight));
  std::printf("      \"cache_bypass\": %llu,\n",
              static_cast<unsigned long long>(r.server.cache_bypass));
  std::printf("      \"server_bytes_read\": %llu,\n",
              static_cast<unsigned long long>(r.server.bytes_read));
  std::printf("      \"server_bytes_written\": %llu\n",
              static_cast<unsigned long long>(r.server.bytes_written));
  std::printf("    }%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }

  const size_t connections = smoke ? 64 : 1024;
  const int requests_per_conn = smoke ? 4 : 12;
  int hardware = runtime::ThreadPool::HardwareThreads();
  const int worker_threads =
      std::max(1, std::min(hardware, smoke ? 4 : 8));

  ComposeOptions options;  // server default options — the oracle uses the same
  std::vector<PreparedRequest> hot = PrepareHotSet(options);
  if (hot.empty()) {
    std::fprintf(stderr, "no hot problems prepared\n");
    return 1;
  }

  uint64_t cold_counter = 1;
  const size_t total = connections * static_cast<size_t>(requests_per_conn);
  std::vector<PreparedRequest> mixed_cold =
      PrepareColdPool(total * 2 / 5, options, &cold_counter);

  const size_t sat_conns = std::max<size_t>(16, connections / 4);
  const int sat_rpc = std::max(2, requests_per_conn / 2);
  std::vector<PreparedRequest> sat_cold = PrepareColdPool(
      sat_conns * static_cast<size_t>(sat_rpc), options, &cold_counter);
  // Deadline-phase cold pool: every request carries a 5ms wire deadline —
  // under saturation many will age past it while queued.
  std::vector<PreparedRequest> dl_cold = PrepareColdPool(
      sat_conns * static_cast<size_t>(sat_rpc), options, &cold_counter,
      /*deadline_ms=*/5);

  // Phase 1: all-hot traffic on a warmed cache — the admission probe
  // should answer nearly everything without queueing.
  serve::ServerOptions default_server;
  PhaseResult hot_phase =
      RunPhase("hot", default_server, /*hot_percent=*/100, connections,
               requests_per_conn, worker_threads, hot, mixed_cold,
               /*warm_cache=*/true);

  // Phase 2: 70/30 hot/cold — cold requests travel the queue while hot
  // ones bypass it.
  PhaseResult mixed_phase =
      RunPhase("mixed_70_30", default_server, /*hot_percent=*/70,
               connections, requests_per_conn, worker_threads, hot,
               mixed_cold, /*warm_cache=*/true);

  // Phase 3: saturation — a tiny queue and a single dispatcher against
  // all-cold traffic. The point is the backpressure contract: overload
  // must surface as kOverloaded sheds, never as hangs or silent drops.
  serve::ServerOptions tiny;
  tiny.admission_capacity = 8;
  tiny.dispatch_threads = 1;
  PhaseResult sat_phase =
      RunPhase("saturate", tiny, /*hot_percent=*/0, sat_conns, sat_rpc,
               worker_threads, hot, sat_cold, /*warm_cache=*/false);

  // Phase 4: deadlines under the same saturation — every request carries a
  // 5ms deadline and the queue ages admitted work out at 250ms. The
  // admission gate holds the dispatcher shut for the first 50ms, so a
  // queue's worth of requests deterministically expires before dispatch:
  // the phase always exercises the cancel path, whatever the machine's
  // speed. The gate below then checks the robustness contract, not
  // throughput: timed-out work must be cancelled (no zombie lanes), the
  // queue watermark must respect its bound, and the service must drain to
  // idle.
  serve::ServerOptions bounded = tiny;
  bounded.queue_timeout_ms = 250;
  bounded.admission_gate = std::make_shared<std::atomic<bool>>(false);
  std::thread gate_opener([gate = bounded.admission_gate] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    gate->store(true);
  });
  PhaseResult dl_phase =
      RunPhase("deadline", bounded, /*hot_percent=*/0, sat_conns, sat_rpc,
               worker_threads, hot, dl_cold, /*warm_cache=*/false);
  gate_opener.join();
  const bool zombie_gate_passed =
      dl_phase.svc.cancelled > 0 &&
      dl_phase.svc.cancelled >= dl_phase.server.timeouts &&
      dl_phase.svc.in_flight == 0 &&
      dl_phase.server.queue_depth_watermark <= bounded.admission_capacity;

  uint64_t mismatches = hot_phase.mismatches + mixed_phase.mismatches +
                        sat_phase.mismatches + dl_phase.mismatches;
  uint64_t errors = hot_phase.errors + mixed_phase.errors +
                    sat_phase.errors + dl_phase.errors;

  std::printf("{\n");
  std::printf("  \"benchmark\": \"bench_serve\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"hardware_concurrency\": %d,\n", hardware);
  std::printf("  \"single_core_warning\": %s,\n",
              hardware <= 1 ? "true" : "false");
  std::printf("  \"worker_threads\": %d,\n", worker_threads);
  std::printf("  \"hot_set_size\": %zu,\n", hot.size());
  std::printf("  \"phases\": [\n");
  PrintPhase(hot_phase, false);
  PrintPhase(mixed_phase, false);
  PrintPhase(sat_phase, false);
  PrintPhase(dl_phase, true);
  std::printf("  ],\n");
  std::printf("  \"fingerprint_mismatches\": %llu,\n",
              static_cast<unsigned long long>(mismatches));
  std::printf("  \"transport_errors\": %llu,\n",
              static_cast<unsigned long long>(errors));
  std::printf("  \"zombie_lane_gate_passed\": %s,\n",
              zombie_gate_passed ? "true" : "false");
  const bool passed = mismatches == 0 && errors == 0 && zombie_gate_passed;
  std::printf("  \"gate_passed\": %s\n", passed ? "true" : "false");
  std::printf("}\n");
  return passed ? 0 : 1;
}
