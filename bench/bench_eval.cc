// Parallel sharded-evaluator throughput + compose-soundness harness bench.
// Three workloads at 1/2/4/8 evaluation lanes, each cross-checked for
// byte-identical fingerprints against the jobs=1 baseline:
//
//   domain_d3    D^3 enumeration over a wide active domain (the evaluator's
//                pure enumeration path, sharded on the first coordinate)
//   join_select  π σ (R × S) over random binary relations (the sharded
//                per-tuple transform path)
//   join_wide    σ_{#1=#5}(R4 × S4) — two wide relations joined on one
//                column, recorded BOTH as the pre-kernel nested loop
//                (EvalOptions::force_nested_loop) and as the columnar
//                hash-join kernel, fingerprint-cross-checked against each
//                other (the kernel's differential oracle in bench form)
//   user_ops     tc over a seeded random binary relation feeding a
//                semijoin/antijoin pipeline, recorded BOTH with the legacy
//                set-based operator hooks (RegisterExtraOpsSetBased) and
//                with the columnar kernels (the default registry),
//                fingerprint-cross-checked at jobs 1 and 8 — the columnar
//                user-operator boundary's differential gate in bench form
//   dag_siblings a balanced union tree over 16 *independent* join subtrees
//                (distinct relation pairs): the task-graph scheduler's
//                showcase — sibling subtrees run concurrently even though
//                no single node is large enough to shard internally
//   suite_check  CheckComposition over the 22-problem literature suite
//                (the end-to-end semantic soundness harness)
//
// plus a memoization witness on a duplicated-subtree DAG. Emits JSON
// (redirect stdout to BENCH_eval.json). Exits non-zero on any determinism
// or soundness failure, so CI's bench smoke step doubles as a correctness
// gate. `--smoke` shrinks every size for a seconds-long CI run.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "src/algebra/builders.h"
#include "src/compose/compose.h"
#include "src/eval/soundness.h"
#include "src/op/extra_ops.h"
#include "src/op/registry.h"
#include "src/parser/parser.h"
#include "src/runtime/thread_pool.h"
#include "src/testdata/literature_suite.h"

using namespace mapcomp;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

Instance RandomBinary(int tuples, int domain, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> val(0, domain - 1);
  Instance db;
  std::set<Tuple> r, s;
  for (int i = 0; i < tuples; ++i) {
    r.insert(Tuple{Value(val(rng)), Value(val(rng))});
    s.insert(Tuple{Value(val(rng)), Value(val(rng))});
  }
  db.Set("R", std::move(r));
  db.Set("S", std::move(s));
  return db;
}

struct LaneRow {
  int jobs;
  double best_seconds;
  bool deterministic;
};

bool g_failed = false;

/// Times `run(jobs)` (returning a fingerprint) at each lane count and
/// checks every fingerprint against jobs=1.
template <typename Run>
std::vector<LaneRow> Sweep(const std::vector<int>& lanes, int reps,
                           const Run& run) {
  std::vector<LaneRow> rows;
  std::string base;
  for (int jobs : lanes) {
    LaneRow row{jobs, -1.0, true};
    for (int rep = 0; rep < reps; ++rep) {
      auto start = std::chrono::steady_clock::now();
      std::string fp = run(jobs);
      double elapsed = Seconds(start);
      if (row.best_seconds < 0.0 || elapsed < row.best_seconds) {
        row.best_seconds = elapsed;
      }
      if (jobs == 1 && rep == 0) base = fp;
      if (fp != base) {
        row.deterministic = false;
        g_failed = true;
        std::fprintf(stderr, "NONDETERMINISM at jobs=%d\n", jobs);
      }
    }
    rows.push_back(row);
  }
  return rows;
}

void PrintRows(const std::vector<LaneRow>& rows, int64_t work_tuples) {
  double base = rows.empty() ? 1.0 : rows[0].best_seconds;
  std::printf("    \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const LaneRow& r = rows[i];
    std::printf(
        "      {\"jobs\": %d, \"best_seconds\": %.6f, "
        "\"tuples_per_sec\": %.0f, \"speedup_vs_jobs1\": %.3f, "
        "\"deterministic_vs_jobs1\": %s}%s\n",
        r.jobs, r.best_seconds,
        static_cast<double>(work_tuples) / r.best_seconds,
        base / r.best_seconds, r.deterministic ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::printf("    ]\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::vector<int> kLanes = {1, 2, 4, 8};
  const int reps = smoke ? 1 : 3;
  const int domain_values = smoke ? 18 : 60;
  const int join_tuples = smoke ? 60 : 600;
  const int check_instances = smoke ? 3 : 30;

  int hardware = runtime::ThreadPool::HardwareThreads();
  std::printf("{\n");
  std::printf("  \"benchmark\": \"bench_eval\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"hardware_concurrency\": %d,\n", hardware);
  std::printf("  \"single_core_warning\": %s,\n",
              hardware <= 1 ? "true" : "false");
  std::printf("  \"workloads\": [\n");

  // ---- domain_d3: D^3 over `domain_values` active-domain values. ----
  {
    Instance db;
    std::set<Tuple> u;
    for (int i = 0; i < domain_values; ++i) u.insert(Tuple{Value(int64_t{i})});
    db.Set("U", std::move(u));
    ExprPtr dom3 = Dom(3);
    int64_t work = static_cast<int64_t>(domain_values) * domain_values *
                   domain_values;
    auto rows = Sweep(kLanes, reps, [&](int jobs) {
      EvalOptions opts;
      opts.jobs = jobs;
      opts.max_domain_tuples = work + 1;
      return EvaluateFull(dom3, db, opts).value().Fingerprint();
    });
    std::printf("    {\"name\": \"domain_d3\", \"domain_values\": %d, "
                "\"work_tuples\": %lld,\n",
                domain_values, static_cast<long long>(work));
    PrintRows(rows, work);
    std::printf("    },\n");
  }

  // ---- join_select: π[1,4] σ[#2=#3] (R × S). ----
  {
    Instance db = RandomBinary(join_tuples, 200, 1234);
    ExprPtr join = Project(
        {1, 4}, Select(Condition::AttrCmp(2, CmpOp::kEq, 3),
                       Product(Rel("R", 2), Rel("S", 2))));
    int64_t work = static_cast<int64_t>(db.Get("R").size()) *
                   static_cast<int64_t>(db.Get("S").size());
    auto rows = Sweep(kLanes, reps, [&](int jobs) {
      EvalOptions opts;
      opts.jobs = jobs;
      return EvaluateFull(join, db, opts).value().Fingerprint();
    });
    std::printf("    {\"name\": \"join_select\", \"relation_tuples\": %d, "
                "\"work_tuples\": %lld,\n",
                join_tuples, static_cast<long long>(work));
    PrintRows(rows, work);
    std::printf("    },\n");
  }

  // ---- join_wide: σ_{#1=#5}(R4 × S4), nested-loop vs hash-join kernel. ----
  {
    const int wide_tuples = smoke ? 60 : 700;
    const int64_t key_domain = smoke ? 30 : 150;
    std::mt19937_64 rng(99);
    std::uniform_int_distribution<int64_t> key(0, key_domain - 1);
    std::uniform_int_distribution<int64_t> payload(0, 1'000'000);
    Instance db;
    std::set<Tuple> r, s;
    while (static_cast<int>(r.size()) < wide_tuples) {
      r.insert(Tuple{Value(key(rng)), Value(payload(rng)), Value(payload(rng)),
                     Value(payload(rng))});
    }
    while (static_cast<int>(s.size()) < wide_tuples) {
      s.insert(Tuple{Value(key(rng)), Value(payload(rng)), Value(payload(rng)),
                     Value(payload(rng))});
    }
    db.Set("R", std::move(r));
    db.Set("S", std::move(s));
    ExprPtr join = Select(Condition::AttrCmp(1, CmpOp::kEq, 5),
                          Product(Rel("R", 4), Rel("S", 4)));
    int64_t work = static_cast<int64_t>(wide_tuples) * wide_tuples;

    // Nested-loop column: the pre-kernel engine materializes the full
    // product and selects afterwards.
    double nested_best = -1.0;
    std::string nested_fp;
    for (int rep = 0; rep < reps; ++rep) {
      EvalOptions opts;
      opts.force_nested_loop = true;
      auto start = std::chrono::steady_clock::now();
      EvalResult out = EvaluateFull(join, db, opts).value();
      double elapsed = Seconds(start);
      if (nested_best < 0.0 || elapsed < nested_best) nested_best = elapsed;
      if (rep == 0) nested_fp = out.Fingerprint();
    }

    int64_t hash_join_nodes = 0;
    std::string kernel_fp;
    auto rows = Sweep(kLanes, reps, [&](int jobs) {
      EvalOptions opts;
      opts.jobs = jobs;
      EvalResult out = EvaluateFull(join, db, opts).value();
      if (jobs == 1) {
        hash_join_nodes = out.stats.hash_join_nodes;
        kernel_fp = out.Fingerprint();
      }
      return out.Fingerprint();
    });
    // The differential oracle as a bench gate: kernel and nested-loop
    // fingerprints must be byte-identical.
    bool matches = kernel_fp == nested_fp;
    if (!matches) {
      g_failed = true;
      std::fprintf(stderr,
                   "KERNEL/NESTED-LOOP FINGERPRINT MISMATCH on join_wide\n");
    }
    double kernel_best = rows.empty() ? nested_best : rows[0].best_seconds;
    std::printf(
        "    {\"name\": \"join_wide\", \"relation_tuples\": %d, "
        "\"arity\": 4, \"work_tuples\": %lld, "
        "\"nested_loop_best_seconds\": %.6f, "
        "\"kernel_vs_nested_speedup\": %.3f, "
        "\"kernel_matches_nested_loop\": %s, \"hash_join_nodes\": %lld,\n",
        wide_tuples, static_cast<long long>(work), nested_best,
        nested_best / kernel_best, matches ? "true" : "false",
        static_cast<long long>(hash_join_nodes));
    PrintRows(rows, work);
    std::printf("    },\n");
  }

  // ---- user_ops: columnar user-operator kernels vs legacy set hooks. ----
  {
    const int tc_nodes = smoke ? 16 : 64;
    const int tc_edges = smoke ? 24 : 100;
    std::mt19937_64 rng(2026);
    std::uniform_int_distribution<int64_t> node(0, tc_nodes - 1);
    Instance db;
    std::set<Tuple> edges;
    while (static_cast<int>(edges.size()) < tc_edges) {
      edges.insert(Tuple{Value(node(rng)), Value(node(rng))});
    }
    db.Set("E", std::move(edges));

    op::Registry legacy_reg = op::Registry::Empty();
    op::RegisterExtraOpsSetBased(&legacy_reg);
    const op::Registry& columnar_reg = op::Registry::Default();

    // tc(E) shared by a semijoin (closure pairs whose target has an
    // outgoing base edge) and an antijoin (pairs whose source has no
    // incoming base edge) — three user ops, the closure interned once.
    ExprPtr tc_expr = columnar_reg.MakeOp("tc", {Rel("E", 2)}).value();
    ExprPtr pipeline = Union(
        columnar_reg
            .MakeOp("semijoin", {tc_expr, Rel("E", 2)},
                    Condition::AttrCmp(2, CmpOp::kEq, 3))
            .value(),
        columnar_reg
            .MakeOp("antijoin", {tc_expr, Rel("E", 2)},
                    Condition::AttrCmp(1, CmpOp::kEq, 4))
            .value());

    // Legacy set-based column (single measurement: the naive closure is
    // the slow side by construction, noise cannot flip the gate).
    auto time_once = [&](const ExprPtr& e, const op::Registry& reg,
                         std::string* fp) {
      EvalOptions opts;
      opts.registry = &reg;
      auto start = std::chrono::steady_clock::now();
      EvalResult out = EvaluateFull(e, db, opts).value();
      if (fp != nullptr) *fp = out.Fingerprint();
      return Seconds(start);
    };
    std::string legacy_fp;
    double tc_legacy_seconds = time_once(tc_expr, legacy_reg, nullptr);
    double pipeline_legacy_seconds =
        time_once(pipeline, legacy_reg, &legacy_fp);

    double tc_columnar_seconds = -1.0;
    for (int rep = 0; rep < reps; ++rep) {
      double s = time_once(tc_expr, columnar_reg, nullptr);
      if (tc_columnar_seconds < 0.0 || s < tc_columnar_seconds) {
        tc_columnar_seconds = s;
      }
    }

    int64_t closure_pairs = 0;
    int64_t columnar_ops = 0, fallback_ops = 0;
    std::string fp_jobs1, fp_jobs8;
    auto rows = Sweep(kLanes, reps, [&](int jobs) {
      EvalOptions opts;
      opts.registry = &columnar_reg;
      opts.jobs = jobs;
      EvalResult out = EvaluateFull(pipeline, db, opts).value();
      if (jobs == 1) {
        closure_pairs = out.stats.tuples_produced;
        columnar_ops = out.stats.user_op_columnar;
        fallback_ops = out.stats.user_op_decode_fallback;
        fp_jobs1 = out.Fingerprint();
      }
      if (jobs == 8) fp_jobs8 = out.Fingerprint();
      return out.Fingerprint();
    });
    // The differential gate: columnar and legacy set-based hooks must be
    // byte-identical, at 1 lane and at 8.
    bool matches = fp_jobs1 == legacy_fp && fp_jobs8 == legacy_fp;
    if (!matches) {
      g_failed = true;
      std::fprintf(stderr,
                   "COLUMNAR/LEGACY FINGERPRINT MISMATCH on user_ops\n");
    }
    std::printf(
        "    {\"name\": \"user_ops\", \"tc_nodes\": %d, \"tc_edges\": %d, "
        "\"pipeline_tuples\": %lld, "
        "\"tc_legacy_seconds\": %.6f, \"tc_columnar_seconds\": %.6f, "
        "\"tc_columnar_speedup\": %.3f, "
        "\"pipeline_legacy_seconds\": %.6f, "
        "\"columnar_matches_legacy\": %s, "
        "\"user_op_columnar\": %lld, \"user_op_decode_fallback\": %lld,\n",
        tc_nodes, tc_edges, static_cast<long long>(closure_pairs),
        tc_legacy_seconds, tc_columnar_seconds,
        tc_legacy_seconds / tc_columnar_seconds, pipeline_legacy_seconds,
        matches ? "true" : "false", static_cast<long long>(columnar_ops),
        static_cast<long long>(fallback_ops));
    PrintRows(rows, closure_pairs);
    std::printf("    },\n");
  }

  // ---- dag_siblings: wide fan-out of independent join subtrees. ----
  {
    const int width = 16;
    const int leg_tuples = smoke ? 40 : 500;
    std::mt19937_64 rng(4242);
    std::uniform_int_distribution<int64_t> val(0, smoke ? 40 : 300);
    Instance db;
    std::vector<ExprPtr> legs;
    for (int i = 0; i < width; ++i) {
      std::string suffix = std::to_string(i);
      std::set<Tuple> r, s;
      for (int t = 0; t < leg_tuples; ++t) {
        r.insert(Tuple{Value(val(rng)), Value(val(rng))});
        s.insert(Tuple{Value(val(rng)), Value(val(rng))});
      }
      db.Set("R" + suffix, std::move(r));
      db.Set("S" + suffix, std::move(s));
      legs.push_back(Project(
          {1, 4},
          Select(Condition::AttrCmp(2, CmpOp::kEq, 3),
                 Product(Rel("R" + suffix, 2), Rel("S" + suffix, 2)))));
    }
    // Balanced union tree: every leg sits at the same depth, so all 16
    // join chains are structurally ready together.
    while (legs.size() > 1) {
      std::vector<ExprPtr> next;
      for (size_t i = 0; i + 1 < legs.size(); i += 2) {
        next.push_back(Union(legs[i], legs[i + 1]));
      }
      legs = std::move(next);
    }
    ExprPtr dag = legs[0];
    int64_t work = static_cast<int64_t>(width) * leg_tuples * leg_tuples;
    int64_t tasks_spawned = 0, max_ready_depth = 0;
    int64_t index_hits = 0, index_misses = 0;
    auto rows = Sweep(kLanes, reps, [&](int jobs) {
      EvalOptions opts;
      opts.jobs = jobs;
      opts.parallel_threshold = 256;
      EvalResult out = EvaluateFull(dag, db, opts).value();
      if (jobs == 1) {
        tasks_spawned = out.stats.tasks_spawned;
        max_ready_depth = out.stats.max_ready_depth;
        index_hits = out.stats.index_cache_hits;
        index_misses = out.stats.index_cache_misses;
      }
      return out.Fingerprint();
    });
    std::printf(
        "    {\"name\": \"dag_siblings\", \"sibling_joins\": %d, "
        "\"leg_tuples\": %d, \"work_tuples\": %lld, "
        "\"tasks_spawned\": %lld, \"max_ready_depth\": %lld, "
        "\"index_cache_hits\": %lld, \"index_cache_misses\": %lld,\n",
        width, leg_tuples, static_cast<long long>(work),
        static_cast<long long>(tasks_spawned),
        static_cast<long long>(max_ready_depth),
        static_cast<long long>(index_hits),
        static_cast<long long>(index_misses));
    PrintRows(rows, work);
    std::printf("    },\n");
  }

  // ---- suite_check: the semantic soundness harness over the suite. ----
  {
    Parser parser;
    std::vector<CompositionProblem> problems;
    std::vector<CompositionResult> composed;
    for (const testdata::LiteratureProblem& lit :
         testdata::LiteratureSuite()) {
      problems.push_back(parser.ParseProblem(lit.text).value());
      composed.push_back(Compose(problems.back()));
    }
    bool all_sound = true;
    int64_t checked_instances = 0;
    auto rows = Sweep(kLanes, reps, [&](int jobs) {
      CompositionCheckOptions options;
      options.eval.jobs = jobs;
      options.eval.parallel_threshold = 256;
      std::string fp;
      for (size_t i = 0; i < problems.size(); ++i) {
        Result<CompositionCheck> check = CheckComposition(
            problems[i], composed[i], 4242, check_instances, options);
        if (!check.ok()) {
          std::fprintf(stderr, "check failed: %s\n",
                       check.status().ToString().c_str());
          g_failed = true;
          continue;
        }
        all_sound = all_sound && check->sound;
        if (jobs == 1) checked_instances += check->instances;
        fp += check->Report();
      }
      return fp;
    });
    if (!all_sound) g_failed = true;
    std::printf("    {\"name\": \"suite_check\", \"problems\": %zu, "
                "\"instances_per_problem\": %d, \"all_sound\": %s,\n",
                problems.size(), check_instances,
                all_sound ? "true" : "false");
    PrintRows(rows, checked_instances / reps);
    std::printf("    }\n");
  }

  std::printf("  ],\n");

  // ---- memoization witness: duplicated-subtree DAG. ----
  {
    Instance db = RandomBinary(smoke ? 40 : 200, 50, 77);
    ExprPtr join = Project(
        {1, 4}, Select(Condition::AttrCmp(2, CmpOp::kEq, 3),
                       Product(Rel("R", 2), Rel("S", 2))));
    ExprPtr dag = join;
    for (int i = 0; i < 10; ++i) dag = Union(dag, dag);
    auto start = std::chrono::steady_clock::now();
    Result<EvalResult> out = EvaluateFull(dag, db);
    double elapsed = Seconds(start);
    if (!out.ok()) g_failed = true;
    std::printf("  \"memo\": {\"dag_unions\": 10, \"tree_ops\": %d, "
                "\"nodes_evaluated\": %lld, \"memo_hits\": %lld, "
                "\"seconds\": %.6f},\n",
                OperatorCount(dag),
                static_cast<long long>(out.ok() ? out->stats.nodes_evaluated
                                                : -1),
                static_cast<long long>(out.ok() ? out->stats.memo_hits : -1),
                elapsed);
  }

  std::printf("  \"failed\": %s\n}\n", g_failed ? "true" : "false");
  return g_failed ? 1 : 0;
}
