#ifndef MAPCOMP_BENCH_BENCH_COMMON_H_
#define MAPCOMP_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/simulator/scenarios.h"

namespace mapcomp {
namespace bench {

/// Global scale factor for the experiment harnesses. Scale 1 (default)
/// reproduces each figure's *shape* in seconds; MAPCOMP_BENCH_SCALE=5 runs
/// at roughly the paper's sample counts (100 runs / 500 tasks).
inline int Scale() {
  const char* env = std::getenv("MAPCOMP_BENCH_SCALE");
  if (env == nullptr) return 1;
  int v = std::atoi(env);
  return v < 1 ? 1 : v;
}

/// The four experiment configurations of Figures 2-3.
struct Config {
  const char* name;
  bool keys;
  bool unfold;
  bool right_compose;
  bool left_compose;
};

inline const Config kFig2Configs[] = {
    {"no-keys", false, true, true, true},
    {"keys", true, true, true, true},
    {"no-unfolding", false, false, true, true},
    {"no-right-compose", false, true, false, true},
};

/// §4.2 also reports that disabling *left* compose has no noticeable impact
/// on the simulator workloads (they introduce no operators beyond
/// σ, π, ∪, ⋈, ×); bench_fig2 prints this ablation separately.
inline const Config kNoLeftComposeConfig = {"no-left-compose", false, true,
                                            true, false};

inline sim::EditingScenarioOptions MakeEditingOptions(const Config& config,
                                                      uint64_t seed,
                                                      int schema_size,
                                                      int num_edits) {
  sim::EditingScenarioOptions opts;
  opts.schema_size = schema_size;
  opts.num_edits = num_edits;
  opts.seed = seed;
  opts.simulator.primitives.enable_keys = config.keys;
  opts.compose.eliminate.enable_unfold = config.unfold;
  opts.compose.eliminate.enable_right_compose = config.right_compose;
  opts.compose.eliminate.enable_left_compose = config.left_compose;
  return opts;
}

}  // namespace bench
}  // namespace mapcomp

#endif  // MAPCOMP_BENCH_BENCH_COMMON_H_
