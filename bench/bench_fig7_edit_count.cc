// Figure 7: schema reconciliation — fraction of symbols eliminated and
// execution time as the number of edits per branch grows (10..210). The
// paper finds more edits make composition harder (fraction drops) while the
// running time grows.

#include <cstdio>

#include "bench/bench_common.h"

using namespace mapcomp;
using namespace mapcomp::bench;

int main() {
  int tasks = Scale();
  int schema_size = 30;
  std::printf(
      "# Figure 7: reconciliation, eliminated fraction and time vs edit "
      "count (%d tasks/point, schema size %d)\n",
      tasks, schema_size);
  std::printf("%-6s %12s %14s\n", "edits", "fraction", "compose-ms");
  for (int edits = 10; edits <= 210; edits += 40) {
    long long total = 0, elim = 0;
    double millis = 0;
    for (int task = 0; task < tasks; ++task) {
      sim::ReconciliationScenarioOptions opts;
      opts.schema_size = schema_size;
      opts.num_edits = edits;
      opts.seed = 6000 + task;
      opts.max_branch_attempts = 2;
      sim::ReconciliationScenarioResult res =
          sim::RunReconciliationScenario(opts);
      total += res.symbols_total;
      elim += res.symbols_eliminated;
      millis += res.compose_millis;
    }
    std::printf("%-6d %12.3f %14.1f\n", edits,
                total == 0 ? 1.0 : static_cast<double>(elim) / total,
                millis / tasks);
  }
  return 0;
}
