// Microbenchmarks (google-benchmark) of the core operations behind the
// paper's experiments: parsing, monotonicity analysis, normalization,
// per-symbol elimination, full composition, and one simulator edit.

#include <benchmark/benchmark.h>

#include "src/algebra/builders.h"
#include "src/algebra/interner.h"
#include "src/algebra/simplify.h"
#include "src/algebra/substitute.h"
#include "src/compose/compose.h"
#include "src/compose/monotone.h"
#include "src/compose/normalize_left.h"
#include "src/compose/normalize_right.h"
#include "src/parser/parser.h"
#include "src/simulator/simulator.h"
#include "src/testdata/literature_suite.h"

namespace mapcomp {
namespace {

const char* kExprText =
    "pi[1,3](sel[#2=#4 and #1!=5]((R * S) & (R * S))) - pi[2,1](T)";

Signature BenchSig() {
  Signature sig;
  (void)sig.AddRelation("R", 2);
  (void)sig.AddRelation("S", 2);
  (void)sig.AddRelation("T", 2);
  (void)sig.AddRelation("U", 1);
  return sig;
}

void BM_ParseExpression(benchmark::State& state) {
  Parser parser;
  Signature sig = BenchSig();
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser.ParseExpr(kExprText, sig));
  }
}
BENCHMARK(BM_ParseExpression);

void BM_MonotoneCheck(benchmark::State& state) {
  Parser parser;
  Signature sig = BenchSig();
  ExprPtr e = parser.ParseExpr(kExprText, sig).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckMonotone(e, "S"));
  }
}
BENCHMARK(BM_MonotoneCheck);

void BM_LeftNormalize(benchmark::State& state) {
  // Examples 7-style input: difference + projection on the left.
  ConstraintSet cs{
      Constraint::Contain(Difference(Rel("R", 2), Rel("S", 2)), Rel("T", 2)),
      Constraint::Contain(Project({1}, Rel("S", 2)), Rel("U", 1))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LeftNormalize(cs, "S", 2, &op::Registry::Default()));
  }
}
BENCHMARK(BM_LeftNormalize);

void BM_RightNormalizeWithSkolem(benchmark::State& state) {
  ConstraintSet cs{Constraint::Contain(
      Rel("R", 2), Project({1, 2}, Product(Rel("S", 2), Rel("T", 2))))};
  for (auto _ : state) {
    int counter = 0;
    benchmark::DoNotOptimize(RightNormalize(cs, "S", 2, nullptr, &counter,
                                            &op::Registry::Default()));
  }
}
BENCHMARK(BM_RightNormalizeWithSkolem);

void BM_EliminateUnfold(benchmark::State& state) {
  ConstraintSet cs{
      Constraint::Equal(Rel("S", 2), Product(Rel("U", 1), Rel("U", 1))),
      Constraint::Contain(Difference(Rel("R", 2), Rel("S", 2)), Rel("T", 2)),
      Constraint::Contain(Rel("T", 2), Union(Rel("S", 2), Rel("R", 2)))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Eliminate(cs, "S", 2));
  }
}
BENCHMARK(BM_EliminateUnfold);

void BM_ComposeLiteratureSuite(benchmark::State& state) {
  Parser parser;
  std::vector<CompositionProblem> problems;
  for (const testdata::LiteratureProblem& prob :
       testdata::LiteratureSuite()) {
    problems.push_back(parser.ParseProblem(prob.text).value());
  }
  for (auto _ : state) {
    for (const CompositionProblem& p : problems) {
      benchmark::DoNotOptimize(Compose(p));
    }
  }
}
BENCHMARK(BM_ComposeLiteratureSuite);

/// Builds a tree of 2^depth separately-constructed copies of the same
/// subexpression — the shape COMPOSE's substitution steps produce when an
/// eliminated symbol occurs many times. Structural work that cannot exploit
/// sharing is exponential in `depth` on this input.
ExprPtr DuplicatedTree(int depth) {
  if (depth == 0) {
    return Select(Condition::AttrCmp(1, CmpOp::kEq, 3),
                  Product(Rel("R", 2), Rel("S", 2)));
  }
  return Intersect(DuplicatedTree(depth - 1), DuplicatedTree(depth - 1));
}

void BM_ExprEqualsDuplicatedTree(benchmark::State& state) {
  ExprPtr a = DuplicatedTree(8);
  ExprPtr b = DuplicatedTree(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExprEquals(a, b));
  }
}
BENCHMARK(BM_ExprEqualsDuplicatedTree);

void BM_OperatorCountDuplicatedTree(benchmark::State& state) {
  ExprPtr e = DuplicatedTree(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(OperatorCount(e));
  }
}
BENCHMARK(BM_OperatorCountDuplicatedTree);

void BM_SimplifyDuplicatedTree(benchmark::State& state) {
  ExprPtr e = Union(DuplicatedTree(7), EmptyRel(4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimplifyExpr(e));
  }
}
BENCHMARK(BM_SimplifyDuplicatedTree);

void BM_SubstituteDuplicatedTree(benchmark::State& state) {
  ExprPtr e = DuplicatedTree(8);
  ExprPtr replacement = Project({1, 2}, Rel("T", 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SubstituteRelation(e, "R", replacement));
  }
}
BENCHMARK(BM_SubstituteDuplicatedTree);

/// Fresh-construction workload with the occurrence pattern of simulator
/// edits and compose substitutions: many distinct constraints that keep
/// re-mentioning a small set of relation leaves. `iter` varies the literal
/// so consecutive benchmark iterations cannot just hit the interner with
/// the whole tree.
ExprPtr BuildEditShapedExpr(int iter, int i) {
  ExprPtr base = Product(Rel("E" + std::to_string(i % 8), 1),
                         Rel("F" + std::to_string(i % 5), 1));
  ExprPtr sel = Select(Condition::AttrConst(1, CmpOp::kEq, int64_t{iter}),
                       base);
  return Union(Project({1, 2}, sel),
               Intersect(base, Rel("G" + std::to_string(i % 3), 2)));
}

void BM_FreshConstructionNoBatch(benchmark::State& state) {
  int iter = 0;
  for (auto _ : state) {
    ++iter;
    for (int i = 0; i < 64; ++i) {
      benchmark::DoNotOptimize(BuildEditShapedExpr(iter, i));
    }
  }
}
BENCHMARK(BM_FreshConstructionNoBatch);

void BM_FreshConstructionBatched(benchmark::State& state) {
  int iter = 0;
  for (auto _ : state) {
    ++iter;
    ExprBuilder batch;
    for (int i = 0; i < 64; ++i) {
      benchmark::DoNotOptimize(BuildEditShapedExpr(iter, i));
    }
  }
}
BENCHMARK(BM_FreshConstructionBatched);

void BM_SimulatorEdit(benchmark::State& state) {
  sim::SimulatorOptions opts;
  sim::EvolutionSimulator simulator(opts, 42);
  sim::SimSchema schema = simulator.RandomSchema(30);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.ApplyRandomEdit(schema));
  }
}
BENCHMARK(BM_SimulatorEdit);

void BM_ComposeOneEdit(benchmark::State& state) {
  // One composition step of the editing scenario at paper scale.
  sim::SimulatorOptions opts;
  sim::EvolutionSimulator simulator(opts, 43);
  sim::SimSchema schema0 = simulator.RandomSchema(30);
  sim::FullEdit e1 = simulator.ApplyRandomEdit(schema0);
  sim::FullEdit e2 = simulator.ApplyRandomEdit(e1.new_schema);
  CompositionProblem p;
  p.sigma1 = schema0.ToSignature();
  p.sigma2 = e1.new_schema.ToSignature();
  p.sigma3 = e2.new_schema.ToSignature();
  p.sigma12 = e1.constraints;
  p.sigma23 = e2.constraints;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Compose(p));
  }
}
BENCHMARK(BM_ComposeOneEdit);

}  // namespace
}  // namespace mapcomp

BENCHMARK_MAIN();
