// Figure 6: schema reconciliation — fraction of σ0 symbols eliminated as
// the shared schema grows (10..100 relations), for configurations complete
// / no view unfolding / no right compose. The paper finds larger schemas
// make composition easier (edits interact less) and disabled steps cost
// 10-20% of the eliminated symbols.

#include <cstdio>

#include "bench/bench_common.h"

using namespace mapcomp;
using namespace mapcomp::bench;

namespace {

const Config kConfigs[] = {
    {"complete", false, true, true, true},
    {"no-unfolding", false, false, true, true},
    {"no-right-compose", false, true, false, true},
};

}  // namespace

int main() {
  int tasks = Scale();
  int num_edits = 30;
  std::printf(
      "# Figure 6: reconciliation, eliminated fraction vs schema size "
      "(%d tasks/point, %d edits per branch)\n",
      tasks, num_edits);
  std::printf("%-6s %12s %14s %18s\n", "size", "complete", "no-unfolding",
              "no-right-compose");
  for (int size = 10; size <= 100; size += 10) {
    std::printf("%-6d", size);
    for (const Config& config : kConfigs) {
      long long total = 0, elim = 0;
      for (int task = 0; task < tasks; ++task) {
        sim::ReconciliationScenarioOptions opts;
        opts.schema_size = size;
        opts.num_edits = num_edits;
        opts.seed = 5000 + task;
        opts.max_branch_attempts = 3;
        opts.compose.eliminate.enable_unfold = config.unfold;
        opts.compose.eliminate.enable_right_compose = config.right_compose;
        sim::ReconciliationScenarioResult res =
            sim::RunReconciliationScenario(opts);
        total += res.symbols_total;
        elim += res.symbols_eliminated;
      }
      std::printf(" %12.3f",
                  total == 0 ? 1.0 : static_cast<double>(elim) / total);
    }
    std::printf("\n");
  }
  return 0;
}
