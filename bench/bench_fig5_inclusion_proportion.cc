// Figure 5: effect of an increasing proportion of inclusion edits (Sub/Sup)
// on the eliminated fraction — total and for selected primitives (Df, DA,
// Nf, Hf) — and on the total running time. The paper finds composition gets
// harder (unfolding loses leverage) while overall time *decreases* (the
// algorithm fails faster on symbols it cannot isolate).

#include <cstdio>
#include <map>

#include "bench/bench_common.h"

using namespace mapcomp;
using namespace mapcomp::bench;

int main() {
  int runs = 2 * Scale();
  int schema_size = 30;
  int num_edits = 50;
  std::printf(
      "# Figure 5: inclusion-edit proportion sweep "
      "(%d runs x %d edits, schema size %d)\n",
      runs, num_edits, schema_size);
  std::printf("%-6s %8s %8s %8s %8s %8s %10s\n", "prop%", "total", "Df",
              "DA", "Nf", "Hf", "time-ms");

  for (int percent = 0; percent <= 20; percent += 2) {
    std::map<sim::Primitive, sim::PerPrimitiveStats> per;
    long long total = 0, elim = 0;
    double millis = 0;
    for (int run = 0; run < runs; ++run) {
      sim::EditingScenarioOptions opts = MakeEditingOptions(
          kFig2Configs[0], 4000 + run, schema_size, num_edits);
      opts.simulator.events =
          sim::EventVector::Default().WithInclusionProportion(percent /
                                                              100.0);
      sim::EditingScenarioResult res = sim::RunEditingScenario(opts);
      millis += res.total_millis;
      for (const auto& [p, stats] : res.per_primitive) {
        per[p].consumed_total += stats.consumed_total;
        per[p].consumed_eliminated += stats.consumed_eliminated;
        total += stats.consumed_total;
        elim += stats.consumed_eliminated;
      }
    }
    auto frac = [&per](sim::Primitive p) {
      auto it = per.find(p);
      return it == per.end() || it->second.consumed_total == 0
                 ? -1.0
                 : it->second.ConsumedEliminatedFraction();
    };
    std::printf("%-6d %8.3f %8.3f %8.3f %8.3f %8.3f %10.1f\n", percent,
                total == 0 ? 1.0 : static_cast<double>(elim) / total,
                frac(sim::Primitive::kDf), frac(sim::Primitive::kDA),
                frac(sim::Primitive::kNf), frac(sim::Primitive::kHf),
                millis / runs);
  }
  return 0;
}
