// Figure 3: composition time per edit (milliseconds) for each primitive,
// same four configurations as Figure 2. The paper observes that disabling
// view unfolding or adding keys increases the running time significantly,
// and reports median run times (0.2 s no-keys, 2.8 s keys, 2.1 s
// no-unfolding on their hardware).

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_common.h"

using namespace mapcomp;
using namespace mapcomp::bench;

int main() {
  int runs = 2 * Scale();
  int schema_size = 30;
  int num_edits = 50;
  std::printf(
      "# Figure 3: time per edit in ms (%d runs x %d edits, schema size "
      "%d)\n",
      runs, num_edits, schema_size);

  std::map<std::string, std::map<sim::Primitive, sim::PerPrimitiveStats>>
      table;
  std::map<std::string, double> median_run_ms;
  for (const Config& config : kFig2Configs) {
    std::vector<double> run_times;
    for (int run = 0; run < runs; ++run) {
      sim::EditingScenarioResult res = sim::RunEditingScenario(
          MakeEditingOptions(config, 2000 + run, schema_size, num_edits));
      for (const auto& [p, stats] : res.per_primitive) {
        sim::PerPrimitiveStats& agg = table[config.name][p];
        agg.edits += stats.edits;
        agg.millis += stats.millis;
      }
      run_times.push_back(res.total_millis);
    }
    std::sort(run_times.begin(), run_times.end());
    median_run_ms[config.name] = run_times[run_times.size() / 2];
  }

  std::printf("%-6s %12s %12s %14s %18s\n", "prim", "no-keys", "keys",
              "no-unfolding", "no-right-compose");
  for (sim::Primitive p : sim::AllPrimitives()) {
    if (p == sim::Primitive::kAR) continue;
    std::printf("%-6s", sim::PrimitiveName(p));
    for (const Config& config : kFig2Configs) {
      const auto& per = table[config.name];
      auto it = per.find(p);
      if (it == per.end() || it->second.edits == 0) {
        std::printf(" %12s", "-");
      } else {
        std::printf(" %12.3f", it->second.MillisPerEdit());
      }
    }
    std::printf("\n");
  }
  std::printf("# median run time (ms):");
  for (const Config& config : kFig2Configs) {
    std::printf(" %s=%.1f", config.name, median_run_ms[config.name]);
  }
  std::printf("\n");
  return 0;
}
