// mapcompc — command-line mapping composer.
//
// Reads a composition task in the library's text format (from a file or
// stdin) and prints the composed mapping plus per-symbol statistics.
//
// Usage:
//   mapcompc [options] [task-file]
//     --no-unfold          disable view unfolding (§3.2)
//     --no-left            disable left compose (§3.4)
//     --no-right           disable right compose (§3.5)
//     --no-simplify        skip output simplification
//     --blowup N           abort a symbol when output exceeds N x input
//                          operator count (default 100, paper §4)
//     --order s1,s2,...    eliminate the sigma2 symbols in this order
//                          (the paper's user-specified ordering, §3.1);
//                          overrides a task file's `order` directive
//     --quiet              print only the composed constraints

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/compose/compose.h"
#include "src/parser/parser.h"

int main(int argc, char** argv) {
  mapcomp::ComposeOptions options;
  bool quiet = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--no-unfold") == 0) {
      options.eliminate.enable_unfold = false;
    } else if (std::strcmp(arg, "--no-left") == 0) {
      options.eliminate.enable_left_compose = false;
    } else if (std::strcmp(arg, "--no-right") == 0) {
      options.eliminate.enable_right_compose = false;
    } else if (std::strcmp(arg, "--no-simplify") == 0) {
      options.simplify_output = false;
    } else if (std::strcmp(arg, "--blowup") == 0 && i + 1 < argc) {
      options.eliminate.max_blowup_factor = std::atoi(argv[++i]);
    } else if (std::strcmp(arg, "--order") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--order expects a comma-separated symbol list\n");
        return 2;
      }
      std::string list = argv[++i];
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        std::string symbol = list.substr(start, comma - start);
        if (!symbol.empty()) options.order.push_back(std::move(symbol));
        start = comma + 1;
      }
      if (options.order.empty()) {
        std::fprintf(stderr, "--order expects a comma-separated symbol list\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg);
      return 2;
    } else {
      path = arg;
    }
  }

  std::string text;
  if (path.empty()) {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  mapcomp::Parser parser;
  mapcomp::Result<mapcomp::CompositionProblem> problem =
      parser.ParseProblem(text);
  if (!problem.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 problem.status().ToString().c_str());
    return 1;
  }
  if (!options.order.empty()) {
    // Every --order symbol must exist in sigma2, and sigma2 symbols left
    // out are appended in declaration order — otherwise they would silently
    // never be attempted yet not show up as residual either.
    std::vector<std::string> sigma2 = problem->sigma2.names();
    for (size_t i = 0; i < options.order.size(); ++i) {
      const std::string& s = options.order[i];
      if (std::find(sigma2.begin(), sigma2.end(), s) == sigma2.end()) {
        std::fprintf(stderr, "--order: '%s' is not a sigma2 symbol\n",
                     s.c_str());
        return 2;
      }
      if (std::find(options.order.begin(), options.order.begin() + i, s) !=
          options.order.begin() + i) {
        std::fprintf(stderr, "--order: '%s' listed twice\n", s.c_str());
        return 2;
      }
    }
    for (const std::string& s : sigma2) {
      if (std::find(options.order.begin(), options.order.end(), s) ==
          options.order.end()) {
        options.order.push_back(s);
      }
    }
  }
  mapcomp::CompositionResult result = mapcomp::Compose(*problem, options);
  if (!quiet) {
    std::printf("%s\n", result.Report().c_str());
    if (!result.residual_sigma2.empty()) {
      std::printf("residual sigma2 symbols:");
      for (const std::string& s : result.residual_sigma2) {
        std::printf(" %s", s.c_str());
      }
      std::printf("\n\n");
    }
  }
  std::printf("%s", mapcomp::ConstraintSetToString(result.constraints).c_str());
  return result.residual_sigma2.empty() ? 0 : 3;
}
