// mapcompc — command-line mapping composer.
//
// Reads one or more composition tasks in the library's text format (from
// files or stdin) and prints the composed mappings plus per-symbol
// statistics. With several task files the compositions are independent and
// can be fanned across worker threads with --jobs; output order and content
// stay identical whatever the thread count.
//
// Usage:
//   mapcompc [options] [task-file...]
//     --no-unfold          disable view unfolding (§3.2)
//     --no-left            disable left compose (§3.4)
//     --no-right           disable right compose (§3.5)
//     --no-simplify        skip output simplification
//     --blowup N           abort a symbol when output exceeds N x input
//                          operator count (default 100, paper §4)
//     --order s1,s2,...    eliminate the sigma2 symbols in this order
//                          (the paper's user-specified ordering, §3.1);
//                          overrides a task file's `order` directive
//                          (single-task mode only)
//     --rounds N           retry residual symbols for up to N elimination
//                          rounds (default 4; 1 = the paper's single pass)
//     --deadline-ms N      end-to-end deadline: local modes run compose and
//                          --check-eval under one cooperative cancel token
//                          that fires N ms after work starts (a run that
//                          beats the deadline is byte-identical to an
//                          unbounded one); --client sends N as the
//                          per-request wire deadline and --serve-demo
//                          submits each request with its own N ms budget.
//                          A fired deadline exits 6 — partial results are
//                          still printed, with their residuals
//     --jobs N             compose N tasks concurrently (default 1)
//     --elim-jobs N        within each task, eliminate independent sigma2
//                          symbols on up to N lanes (conflict-graph waves;
//                          results are identical for any N; default 1)
//     --serve-demo N       serve every task through a resident
//                          ComposeService for N passes (pass 2+ hits the
//                          fingerprint-keyed result cache) and print
//                          ServiceStats — including cache bytes and chain
//                          prefix-cache counters — to stderr; --jobs caps
//                          in-flight submissions; served results are the
//                          service's slim cache entries, so per-symbol
//                          attempt detail is not reprinted
//     --serve PORT         network mode: put a resident ComposeService on
//                          127.0.0.1:PORT (0 picks an ephemeral port,
//                          printed to stderr) speaking the length-prefixed
//                          binary protocol (src/serve/); --serve-requests N
//                          exits 0 after N requests were parsed (CI smoke);
//                          incompatible with task files and other modes
//     --serve-requests N   with --serve: exit after N parsed requests
//     --client HOST:PORT   network mode: send each task to a running
//                          --serve instance and print the served results
//                          (exit 1 on any error reply)
//     --registry-demo N    run N edits of the simulated schema registry
//                          (Zipf edit stream, incremental full-chain
//                          recomposition through a prefix-fingerprint
//                          cache) and print steady-state registry, service
//                          and chain-cache stats; incompatible with task
//                          files and the other modes
//     --fail-on-warnings   print composition warnings to stderr and exit 4
//                          when any result carries one
//     --check-eval N       semantic soundness harness: evaluate the composed
//                          vs. original mapping over N generated finite
//                          instances per task (paper §2 set semantics;
//                          evaluation shards across --jobs lanes) and print
//                          the verdict to stderr; exit 5 on any violation
//     --check-seed S       RNG seed for --check-eval instances (default 42)
//     --eval-stats         after --check-eval, print the aggregated
//                          evaluation counters (memo hits, sharded nodes,
//                          hash-join vs nested-product node counts,
//                          memo_bytes_peak, columnar vs decode-fallback
//                          user-operator routing) to stderr
//     --intern-stats       print expression-interner statistics to stderr
//     --quiet              print only the composed constraints

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/algebra/interner.h"
#include "src/compose/compose.h"
#include "src/eval/soundness.h"
#include "src/parser/parser.h"
#include "src/runtime/compose_many.h"
#include "src/runtime/compose_service.h"
#include "src/serve/compose_client.h"
#include "src/serve/compose_server.h"
#include "src/simulator/registry.h"

namespace {

bool ReadInput(const std::string& path, std::string* text) {
  if (path == "-") {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    *text = buffer.str();
    return true;
  }
  std::ifstream file(path);
  if (!file) return false;
  std::stringstream buffer;
  buffer << file.rdbuf();
  *text = buffer.str();
  return true;
}

void PrintResult(const mapcomp::CompositionResult& result, bool quiet) {
  if (!quiet) {
    std::printf("%s\n", result.Report().c_str());
    if (!result.residual_sigma2.empty()) {
      std::printf("residual sigma2 symbols:");
      for (const std::string& s : result.residual_sigma2) {
        std::printf(" %s", s.c_str());
      }
      std::printf("\n\n");
    }
  }
  std::printf("%s", mapcomp::ConstraintSetToString(result.constraints).c_str());
}

// Serve-demo variant: the service caches slim entries, so the summary is
// ServedResult::Report() (counts + warnings) instead of the full
// per-symbol table.
void PrintResult(const mapcomp::runtime::ServedResult& result, bool quiet) {
  if (!quiet) {
    std::printf("%s\n", result.Report().c_str());
    if (!result.residual_sigma2.empty()) {
      std::printf("residual sigma2 symbols:");
      for (const std::string& s : result.residual_sigma2) {
        std::printf(" %s", s.c_str());
      }
      std::printf("\n\n");
    }
  }
  std::printf("%s", mapcomp::ConstraintSetToString(result.constraints).c_str());
}

// The registry loop behind --registry-demo: a resident service + registry,
// N Zipf-drawn edits, each followed by an incremental full-chain
// recomposition; steady-state stats land on stderr like --serve-demo's.
int RunRegistryDemo(int steps, const mapcomp::ComposeOptions& options) {
  mapcomp::runtime::ComposeServiceOptions service_options;
  service_options.compose = options;
  service_options.cache_capacity = 4096;
  mapcomp::runtime::ComposeService service(service_options);

  mapcomp::sim::RegistryOptions registry_options;
  registry_options.compose = options;
  mapcomp::sim::SchemaRegistry registry(registry_options, &service);
  for (int step = 0; step < steps; ++step) {
    mapcomp::Result<mapcomp::runtime::ChainResult> result = registry.Step();
    if (!result.ok()) {
      std::fprintf(stderr, "registry step %d failed: %s\n", step,
                   result.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("%s", registry.stats().ToString().c_str());
  std::printf("registry: %d families, %d schema versions\n",
              registry.families(), registry.TotalVersions());
  std::fprintf(stderr, "%s", service.Stats().ToString().c_str());
  std::fprintf(stderr, "%s",
               registry.chain_composer()->Stats().ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  mapcomp::ComposeOptions options;
  bool quiet = false;
  bool intern_stats = false;
  bool eval_stats = false;
  bool fail_on_warnings = false;
  int jobs = 1;
  int deadline_ms = 0;    // 0 = no --deadline-ms
  int serve_passes = 0;   // 0 = no --serve-demo
  int serve_port = -1;    // -1 = no --serve; 0 = ephemeral
  int serve_requests = 0; // 0 = serve forever
  std::string client_target;  // empty = no --client
  int registry_steps = 0; // 0 = no --registry-demo
  int check_eval = 0;     // 0 = no --check-eval
  uint64_t check_seed = 42;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--no-unfold") == 0) {
      options.eliminate.enable_unfold = false;
    } else if (std::strcmp(arg, "--no-left") == 0) {
      options.eliminate.enable_left_compose = false;
    } else if (std::strcmp(arg, "--no-right") == 0) {
      options.eliminate.enable_right_compose = false;
    } else if (std::strcmp(arg, "--no-simplify") == 0) {
      options.simplify_output = false;
    } else if (std::strcmp(arg, "--blowup") == 0 && i + 1 < argc) {
      options.eliminate.max_blowup_factor = std::atoi(argv[++i]);
    } else if (std::strcmp(arg, "--rounds") == 0 && i + 1 < argc) {
      options.max_rounds = std::atoi(argv[++i]);
      if (options.max_rounds < 1) {
        std::fprintf(stderr, "--rounds expects an integer >= 1\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::atoi(argv[++i]);
      if (deadline_ms < 1) {
        std::fprintf(stderr, "--deadline-ms expects an integer >= 1\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
      if (jobs < 1) {
        std::fprintf(stderr, "--jobs expects an integer >= 1\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--elim-jobs") == 0 && i + 1 < argc) {
      options.elim_jobs = std::atoi(argv[++i]);
      if (options.elim_jobs < 1) {
        std::fprintf(stderr, "--elim-jobs expects an integer >= 1\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--serve-demo") == 0 && i + 1 < argc) {
      serve_passes = std::atoi(argv[++i]);
      if (serve_passes < 1) {
        std::fprintf(stderr, "--serve-demo expects an integer >= 1\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--serve") == 0 && i + 1 < argc) {
      serve_port = std::atoi(argv[++i]);
      if (serve_port < 0 || serve_port > 65535) {
        std::fprintf(stderr, "--serve expects a port in [0, 65535]\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--serve-requests") == 0 && i + 1 < argc) {
      serve_requests = std::atoi(argv[++i]);
      if (serve_requests < 1) {
        std::fprintf(stderr, "--serve-requests expects an integer >= 1\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--client") == 0 && i + 1 < argc) {
      client_target = argv[++i];
      if (client_target.find(':') == std::string::npos) {
        std::fprintf(stderr, "--client expects HOST:PORT\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--registry-demo") == 0 && i + 1 < argc) {
      registry_steps = std::atoi(argv[++i]);
      if (registry_steps < 1) {
        std::fprintf(stderr, "--registry-demo expects an integer >= 1\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--check-eval") == 0 && i + 1 < argc) {
      check_eval = std::atoi(argv[++i]);
      if (check_eval < 1) {
        std::fprintf(stderr, "--check-eval expects an integer >= 1\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--check-seed") == 0 && i + 1 < argc) {
      const char* text = argv[++i];
      char* end = nullptr;
      check_seed = static_cast<uint64_t>(std::strtoull(text, &end, 10));
      if (end == text || *end != '\0') {
        std::fprintf(stderr, "--check-seed expects an unsigned integer\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--fail-on-warnings") == 0) {
      fail_on_warnings = true;
    } else if (std::strcmp(arg, "--eval-stats") == 0) {
      eval_stats = true;
    } else if (std::strcmp(arg, "--intern-stats") == 0) {
      intern_stats = true;
    } else if (std::strcmp(arg, "--order") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--order expects a comma-separated symbol list\n");
        return 2;
      }
      std::string list = argv[++i];
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        std::string symbol = list.substr(start, comma - start);
        if (!symbol.empty()) options.order.push_back(std::move(symbol));
        start = comma + 1;
      }
      if (options.order.empty()) {
        std::fprintf(stderr, "--order expects a comma-separated symbol list\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (arg[0] == '-' && std::strcmp(arg, "-") != 0) {
      std::fprintf(stderr, "unknown option %s\n", arg);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (eval_stats && check_eval == 0) {
    std::fprintf(stderr, "--eval-stats requires --check-eval\n");
    return 2;
  }
  if (registry_steps > 0) {
    // The registry generates its own workload: no task files, and no other
    // mode to mix with.
    if (!paths.empty() || serve_passes > 0 || check_eval > 0 ||
        !options.order.empty()) {
      std::fprintf(stderr,
                   "--registry-demo generates its own tasks; it cannot be "
                   "combined with task files, --serve-demo, --check-eval or "
                   "--order\n");
      return 2;
    }
    int rc = RunRegistryDemo(registry_steps, options);
    if (intern_stats) {
      std::fprintf(stderr, "%s",
                   mapcomp::ExprInterner::Global().Stats().ToString().c_str());
    }
    return rc;
  }
  if (serve_port >= 0) {
    if (!paths.empty() || serve_passes > 0 || check_eval > 0 ||
        !client_target.empty() || !options.order.empty()) {
      std::fprintf(stderr,
                   "--serve runs a network server; it cannot be combined "
                   "with task files, --serve-demo, --check-eval, --client "
                   "or --order\n");
      return 2;
    }
    mapcomp::runtime::ComposeServiceOptions service_options;
    service_options.compose = options;
    mapcomp::runtime::ComposeService service(service_options);
    mapcomp::serve::ServerOptions server_options;
    server_options.port = serve_port;
    mapcomp::serve::ComposeServer server(&service, server_options);
    mapcomp::Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "--serve: %s\n", started.ToString().c_str());
      return 2;
    }
    std::fprintf(stderr, "mapcompc: serving on 127.0.0.1:%d\n",
                 server.port());
    if (serve_requests > 0) {
      // CI smoke shape: serve exactly N requests, then report and exit 0.
      while (server.Stats().requests_parsed <
             static_cast<uint64_t>(serve_requests)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    } else {
      for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
    }
    // Let in-flight replies flush before reporting.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::fprintf(stderr, "%s", server.Stats().ToString().c_str());
    std::fprintf(stderr, "%s", service.Stats().ToString().c_str());
    return 0;
  }
  if (serve_requests > 0) {
    std::fprintf(stderr, "--serve-requests requires --serve\n");
    return 2;
  }
  if (!client_target.empty() && serve_passes > 0) {
    std::fprintf(stderr, "--client cannot be combined with --serve-demo\n");
    return 2;
  }
  if (paths.empty()) paths.push_back("-");  // read a single task from stdin
  if (paths.size() > 1 && !options.order.empty()) {
    std::fprintf(stderr,
                 "--order applies to a single task; it cannot be combined "
                 "with multiple task files\n");
    return 2;
  }

  mapcomp::Parser parser;
  std::vector<mapcomp::CompositionProblem> problems;
  problems.reserve(paths.size());
  for (const std::string& path : paths) {
    std::string text;
    if (!ReadInput(path, &text)) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 2;
    }
    mapcomp::Result<mapcomp::CompositionProblem> problem =
        parser.ParseProblem(text);
    if (!problem.ok()) {
      std::fprintf(stderr, "%s: parse error: %s\n",
                   path == "-" ? "<stdin>" : path.c_str(),
                   problem.status().ToString().c_str());
      return 1;
    }
    problems.push_back(std::move(*problem));
  }

  if (!options.order.empty()) {
    // Every --order symbol must exist in sigma2, and sigma2 symbols left
    // out are appended in declaration order — otherwise they would silently
    // never be attempted yet not show up as residual either.
    std::vector<std::string> sigma2 = problems[0].sigma2.names();
    for (size_t i = 0; i < options.order.size(); ++i) {
      const std::string& s = options.order[i];
      if (std::find(sigma2.begin(), sigma2.end(), s) == sigma2.end()) {
        std::fprintf(stderr, "--order: '%s' is not a sigma2 symbol\n",
                     s.c_str());
        return 2;
      }
      if (std::find(options.order.begin(), options.order.begin() + i, s) !=
          options.order.begin() + i) {
        std::fprintf(stderr, "--order: '%s' listed twice\n", s.c_str());
        return 2;
      }
    }
    for (const std::string& s : sigma2) {
      if (std::find(options.order.begin(), options.order.end(), s) ==
          options.order.end()) {
        options.order.push_back(s);
      }
    }
  }

  std::vector<mapcomp::CompositionResult> results;
  std::vector<mapcomp::runtime::ComposeService::ResultPtr> served;
  const bool use_served = serve_passes > 0 || !client_target.empty();
  if (!client_target.empty()) {
    // Network mode: ship each task to a --serve instance. The reply's
    // ServedResult prints through the same path as --serve-demo.
    size_t colon = client_target.rfind(':');
    std::string host = client_target.substr(0, colon);
    int port = std::atoi(client_target.c_str() + colon + 1);
    mapcomp::Result<std::unique_ptr<mapcomp::serve::ComposeClient>> client =
        mapcomp::serve::ComposeClient::Connect(host, port);
    if (!client.ok()) {
      std::fprintf(stderr, "--client: %s\n",
                   client.status().ToString().c_str());
      return 2;
    }
    served.reserve(problems.size());
    for (size_t i = 0; i < problems.size(); ++i) {
      // The CLI's option flags travel with the request (wire-safe
      // subset), so a --no-simplify client gets --no-simplify results
      // whatever the server's defaults are.
      mapcomp::serve::ServeRequest request =
          mapcomp::serve::ServeRequest::WithOptions(
              problems[i], options, static_cast<uint64_t>(i + 1));
      if (deadline_ms > 0) {
        request.deadline_ms = static_cast<uint32_t>(deadline_ms);
      }
      mapcomp::Result<mapcomp::serve::ServeReply> reply =
          (*client)->Call(request);
      const char* label = paths[i] == "-" ? "<stdin>" : paths[i].c_str();
      if (!reply.ok()) {
        std::fprintf(stderr, "%s: transport error: %s\n", label,
                     reply.status().ToString().c_str());
        return 1;
      }
      if (reply->status != mapcomp::serve::WireStatus::kOk) {
        std::fprintf(stderr, "%s: server refused: %s (%s)\n", label,
                     mapcomp::serve::WireStatusName(reply->status),
                     reply->message.c_str());
        return (reply->status == mapcomp::serve::WireStatus::kTimeout ||
                reply->status == mapcomp::serve::WireStatus::kCancelled)
                   ? 6
                   : 1;
      }
      served.push_back(std::make_shared<mapcomp::runtime::ServedResult>(
          std::move(reply->result)));
    }
  } else if (serve_passes > 0) {
    // Loop mode: a resident ComposeService composes every task once and
    // serves passes 2..N from its fingerprint-keyed cache — same composed
    // constraints, and the stats printed at the end show the hit/miss
    // split plus resident cache bytes.
    mapcomp::runtime::ComposeServiceOptions service_options;
    service_options.compose = options;
    mapcomp::runtime::ComposeService service(service_options);
    std::vector<mapcomp::runtime::ComposeService::Handle> handles;
    for (int pass = 0; pass < serve_passes; ++pass) {
      handles.clear();
      handles.reserve(problems.size());
      for (size_t i = 0; i < problems.size(); ++i) {
        // --jobs caps serve-mode concurrency too: at most `jobs`
        // submissions in flight (a sliding window, since the service
        // itself fans out across the whole global pool).
        if (i >= static_cast<size_t>(jobs)) {
          handles[i - static_cast<size_t>(jobs)].Wait();
        }
        // Each submission gets its own budget: the deadline clock starts
        // at Submit, not at process start, matching the serving tier's
        // per-request semantics.
        handles.push_back(
            deadline_ms > 0
                ? service.Submit(
                      mapcomp::serve::ServeRequest::Of(problems[i]),
                      mapcomp::common::Deadline::After(deadline_ms))
                : service.Submit(problems[i]));
      }
      for (const auto& h : handles) h.Wait();
    }
    served.reserve(problems.size());
    for (const auto& h : handles) {
      const mapcomp::runtime::ServedOutcome& outcome = h.Wait();
      if (!outcome.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     outcome.status().ToString().c_str());
        return outcome.status().IsInterrupt() ? 6 : 1;
      }
      served.push_back(outcome.shared());
    }
    std::fprintf(stderr, "%s", service.Stats().ToString().c_str());
  } else {
    if (deadline_ms > 0) {
      // One run-wide budget: every task (and a later --check-eval) polls
      // the same token, so the whole invocation unwinds cooperatively
      // when it fires.
      options.cancel = mapcomp::common::CancelToken::WithDeadline(
          mapcomp::common::Deadline::After(deadline_ms));
    }
    results = mapcomp::runtime::ComposeMany(problems, options, jobs);
  }

  bool any_interrupt = false;
  for (const mapcomp::CompositionResult& r : results) {
    if (!r.interrupt.ok()) {
      any_interrupt = true;
      std::fprintf(stderr, "warning: partial result: %s\n",
                   r.interrupt.ToString().c_str());
    }
  }

  bool any_residual = false;
  bool any_warning = false;
  const size_t result_count = use_served ? served.size() : results.size();
  for (size_t i = 0; i < result_count; ++i) {
    if (result_count > 1) {
      std::printf("%s== %s ==\n", i == 0 ? "" : "\n", paths[i].c_str());
    }
    const std::vector<std::string>& residuals =
        use_served ? served[i]->residual_sigma2
                   : results[i].residual_sigma2;
    const std::vector<std::string>& warnings =
        use_served ? served[i]->warnings : results[i].warnings;
    if (use_served) {
      PrintResult(*served[i], quiet);
    } else {
      PrintResult(results[i], quiet);
    }
    any_residual = any_residual || !residuals.empty();
    if (fail_on_warnings) {
      for (const std::string& w : warnings) {
        any_warning = true;
        std::fprintf(stderr, "%s: warning: %s\n",
                     paths[i] == "-" ? "<stdin>" : paths[i].c_str(),
                     w.c_str());
      }
    }
  }

  bool any_violation = false;
  bool any_check_error = false;
  if (check_eval > 0) {
    mapcomp::EvalStats total_eval_stats;
    mapcomp::CompositionCheckOptions check_options;
    check_options.eval.jobs = jobs;
    check_options.eval.cancel = options.cancel;
    for (size_t i = 0; i < result_count; ++i) {
      // A served (slim) result still carries everything the soundness
      // harness reads: the composed signature, constraints and residuals.
      mapcomp::CompositionResult checked;
      if (use_served) {
        checked.sigma = served[i]->sigma;
        checked.constraints = served[i]->constraints;
        checked.residual_sigma2 = served[i]->residual_sigma2;
        checked.warnings = served[i]->warnings;
      }
      mapcomp::Result<mapcomp::CompositionCheck> check =
          mapcomp::CheckComposition(problems[i],
                                    use_served ? checked : results[i],
                                    check_seed, check_eval, check_options);
      const char* label = paths[i] == "-" ? "<stdin>" : paths[i].c_str();
      if (!check.ok()) {
        // Keep checking the remaining tasks — their verdicts (and a
        // possible exit-5 violation) matter even when one check errors.
        std::fprintf(stderr, "%s: check-eval error: %s\n", label,
                     check.status().ToString().c_str());
        any_check_error = true;
        continue;
      }
      std::fprintf(stderr, "%s: %s", label, check->Report().c_str());
      any_violation = any_violation || !check->sound;
      total_eval_stats.MergeFrom(check->eval_stats);
    }
    if (eval_stats) {
      std::fprintf(stderr, "aggregate %s\n",
                   total_eval_stats.ToString().c_str());
    }
  }

  if (intern_stats) {
    std::fprintf(stderr, "%s",
                 mapcomp::ExprInterner::Global().Stats().ToString().c_str());
  }
  if (any_violation) return 5;
  if (any_check_error) return 1;
  if (any_interrupt) return 6;
  if (any_warning) return 4;
  return any_residual ? 3 : 0;
}
