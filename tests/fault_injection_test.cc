// Deterministic fault-injection suite: arms the fault points of
// src/common/fault.h against real compose / eval / serve paths and checks
// the robustness contracts — deadlines interrupt mid-compose with valid
// partial results, allocation failure surfaces as a Status (not a crash or
// a poisoned cache), a mid-reply socket reset is a client-side transport
// error with clean server stats, cancellation is counted exactly, and a
// run that completes under an unexpired token is byte-identical to an
// unbounded run at any lane count.
//
// Every test skips on builds without fault points compiled in
// (Release without -DMAPCOMP_FAULT_INJECTION=ON); the CI TSan job runs
// this file in Debug (points auto-on) and the ASan job in Release with
// the flag set.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/cancel.h"
#include "src/common/fault.h"
#include "src/compose/compose.h"
#include "src/eval/soundness.h"
#include "src/parser/parser.h"
#include "src/runtime/compose_service.h"
#include "src/serve/compose_client.h"
#include "src/serve/compose_server.h"
#include "src/simulator/scenarios.h"

namespace mapcomp {
namespace {

using common::CancelSource;
using common::CancelToken;
using common::Deadline;
using common::fault::FaultPoint;
using common::fault::ScopedFault;
using runtime::ComposeService;
using runtime::ServedOutcome;

/// Bounded poll until every in-flight computation has drained — the
/// observable "dispatcher lanes returned to idle" condition.
void WaitServiceIdle(ComposeService& service) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.Stats().in_flight > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

#define SKIP_WITHOUT_FAULT_POINTS()                                   \
  do {                                                                \
    if (!common::fault::kFaultPointsCompiled) {                       \
      GTEST_SKIP() << "fault points not compiled into this build";    \
    }                                                                 \
  } while (0)

TEST(FaultInjectionTest, SlowWaveDeadlineInterruptsMidCompose) {
  SKIP_WITHOUT_FAULT_POINTS();
  // Every elimination stalls 25ms; the deadline allows roughly two of
  // them. The driver must stop at a poll point with a well-formed partial
  // result: untouched symbols become residuals, the interrupt carries
  // kDeadlineExceeded, and the warning names the interruption.
  ScopedFault slow(FaultPoint::kSlowEliminationWave, /*arg=*/25);
  ComposeOptions options;
  options.cancel = CancelToken::WithDeadline(Deadline::After(40));
  CompositionResult result = Compose(sim::BuildFanoutProblem(8), options);

  EXPECT_FALSE(result.interrupt.ok());
  EXPECT_EQ(result.interrupt.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(result.residual_sigma2.empty());
  EXPECT_LT(result.eliminated_count, result.total_count);
  bool warned = false;
  for (const std::string& w : result.warnings) {
    warned = warned || w.find("composition interrupted") != std::string::npos;
  }
  EXPECT_TRUE(warned) << "interrupted run must carry a warning";
  EXPECT_GE(slow.hits(), 1u) << "the slow-wave fault never fired";
}

TEST(FaultInjectionTest, PreCancelledTokenYieldsAllResidualInterrupt) {
  SKIP_WITHOUT_FAULT_POINTS();
  CancelSource source;
  source.Cancel();
  ComposeOptions options;
  options.cancel = source.token();
  CompositionResult result = Compose(sim::BuildFanoutProblem(5), options);

  // The very first round-boundary poll fires: nothing attempted, every
  // sigma2 symbol residual, and the code is kCancelled (explicit
  // cancellation, not a deadline).
  EXPECT_EQ(result.interrupt.code(), StatusCode::kCancelled);
  EXPECT_EQ(result.eliminated_count, 0);
  EXPECT_EQ(static_cast<int>(result.residual_sigma2.size()),
            result.total_count);
}

TEST(FaultInjectionTest, CompletedRunMatchesUnboundedRunAtJobs1And8) {
  SKIP_WITHOUT_FAULT_POINTS();
  // Determinism contract: a run that completes without its token firing
  // is byte-identical to an unbounded run — the token carries no schedule
  // state — and lane count never changes results.
  CompositionProblem problem = sim::BuildFanoutProblem(7,
                                                       /*chain_overlap=*/true);
  ComposeOptions unbounded;
  const std::string baseline = Compose(problem, unbounded).Fingerprint();

  CancelSource source;  // never cancelled
  for (int jobs : {1, 8}) {
    ComposeOptions bounded;
    bounded.elim_jobs = jobs;
    bounded.cancel = source.token(Deadline::After(60000));
    CompositionResult result = Compose(problem, bounded);
    ASSERT_TRUE(result.interrupt.ok()) << "token must not fire";
    EXPECT_EQ(result.Fingerprint(), baseline) << "jobs=" << jobs;
  }
}

TEST(FaultInjectionTest, InternerAllocFailureSurfacesAsStatusNotCrash) {
  SKIP_WITHOUT_FAULT_POINTS();
  // The problem is parsed (and its input expressions interned) before
  // arming; eliminating A must then unfold the view into the enclosing
  // projection, building pi(sel(R)) — a tree that cannot exist yet
  // because the selection constant is unique to this test. That first
  // interner miss throws bad_alloc inside the pool task; the service
  // converts it to a failed outcome, and nothing is cached.
  Parser parser;
  const char* text =
      "schema s1 { R(2); } schema s2 { A(2); } schema s3 { T(1); } "
      "map m12 { A = sel[#1=987654321](R); } "
      "map m23 { pi[1](A) <= T; }";
  Result<CompositionProblem> problem = parser.ParseProblem(text);
  ASSERT_TRUE(problem.ok()) << problem.status().ToString();

  ComposeService service;
  ServedOutcome outcome = [&] {
    ScopedFault alloc(FaultPoint::kAllocFailInterner);
    return service.Submit(std::move(*problem)).Wait();
  }();

  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInternal);
  runtime::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.cache_entries, 0u) << "a failed run must not be cached";

  // Disarmed, the same submission succeeds — the failure poisoned
  // nothing.
  Result<CompositionProblem> again = parser.ParseProblem(text);
  ASSERT_TRUE(again.ok());
  ServedOutcome retry = service.Submit(std::move(*again)).Wait();
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST(FaultInjectionTest, HandleCancelCountsAndUnwindsComputation) {
  SKIP_WITHOUT_FAULT_POINTS();
  // Slow waves give Cancel a computation that is reliably still in
  // flight. The cancel must count, the run must unwind as kCancelled
  // (counted completed, not failed), and the service must drain to idle.
  ScopedFault slow(FaultPoint::kSlowEliminationWave, /*arg=*/50);
  ComposeService service;
  ComposeService::Handle handle =
      service.Submit(sim::BuildFanoutProblem(6, /*chain_overlap=*/true));
  EXPECT_TRUE(handle.Cancel()) << "computation should still be in flight";
  EXPECT_FALSE(handle.Cancel()) << "a second cancel withdraws nothing";

  const ServedOutcome& outcome = handle.Wait();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled);

  WaitServiceIdle(service);
  runtime::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 1u) << "interrupted runs count completed";
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.in_flight, 0);
}

TEST(FaultInjectionTest, ExpiredDeadlineAtSubmitShortCircuits) {
  SKIP_WITHOUT_FAULT_POINTS();
  ComposeService service;
  ComposeService::Handle handle = service.Submit(
      serve::ServeRequest::Of(sim::BuildFanoutProblem(4)), Deadline::After(0));
  ASSERT_TRUE(handle.Ready()) << "expired submit must not reach the pool";
  EXPECT_EQ(handle.Wait().status().code(), StatusCode::kDeadlineExceeded);

  runtime::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.misses, 0u) << "no composition may have started";
  EXPECT_EQ(stats.in_flight, 0);
}

TEST(FaultInjectionTest, SlowEvalSlotDeadlineInterruptsSoundnessCheck) {
  SKIP_WITHOUT_FAULT_POINTS();
  // The eval tier polls the same token family at slot boundaries: a
  // stalled slot under a tight deadline aborts the check with
  // kDeadlineExceeded instead of hanging.
  CompositionProblem problem = sim::BuildFanoutProblem(4);
  CompositionResult composed = Compose(problem, ComposeOptions{});
  ASSERT_TRUE(composed.interrupt.ok());

  ScopedFault slow(FaultPoint::kSlowEvalSlot, /*arg=*/30);
  CompositionCheckOptions check_options;
  check_options.eval.cancel = CancelToken::WithDeadline(Deadline::After(20));
  Result<CompositionCheck> check =
      CheckComposition(problem, composed, /*generator_seed=*/42,
                       /*n_instances=*/4, check_options);
  ASSERT_FALSE(check.ok());
  EXPECT_EQ(check.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(FaultInjectionTest, SocketResetMidReplyIsClientTransportError) {
  SKIP_WITHOUT_FAULT_POINTS();
  ComposeService service;
  serve::ComposeServer server(&service, serve::ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  Result<std::unique_ptr<serve::ComposeClient>> client =
      serve::ComposeClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  {
    // The server hard-resets (RST via SO_LINGER) after writing exactly 16
    // reply bytes — mid-frame, deterministically. The client must surface
    // a transport error, never a truncated parse.
    ScopedFault reset(FaultPoint::kSocketResetAfterNBytes, /*arg=*/16);
    Result<serve::ServeReply> reply =
        (*client)->Call(serve::ServeRequest::Of(sim::BuildFanoutProblem(4), 7));
    EXPECT_FALSE(reply.ok());
    EXPECT_EQ(reset.hits(), 1u) << "the reset fault never fired";
  }

  // Server-side state stays clean: the reset is a client-visible fault,
  // not a server-side protocol violation, and fresh connections serve.
  serve::ServerStats stats = server.Stats();
  EXPECT_EQ(stats.protocol_errors, 0u);
  Result<std::unique_ptr<serve::ComposeClient>> again =
      serve::ComposeClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  Result<serve::ServeReply> ok =
      (*again)->Call(serve::ServeRequest::Of(sim::BuildFanoutProblem(4), 8));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->status, serve::WireStatus::kOk);
}

TEST(FaultInjectionTest, CallWithRetryRetriesOnlyOverloadedReplies) {
  SKIP_WITHOUT_FAULT_POINTS();
  ComposeService service;
  serve::ServerOptions options;
  options.admission_capacity = 1;
  options.dispatch_threads = 1;
  options.admission_gate = std::make_shared<std::atomic<bool>>(false);
  serve::ComposeServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());

  Result<std::unique_ptr<serve::ComposeClient>> filler =
      serve::ComposeClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(filler.ok());
  Result<std::unique_ptr<serve::ComposeClient>> caller =
      serve::ComposeClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(caller.ok());

  // Fill the one-slot queue behind the closed gate, then retry against
  // the provably full server: every attempt is shed, and the final
  // verdict is the shed — CallWithRetry never converts it into an error.
  ASSERT_TRUE(
      (*filler)->Send(serve::ServeRequest::Of(sim::BuildFanoutProblem(3), 1))
          .ok());
  serve::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  policy.jitter_seed = 7;  // deterministic pacing
  Result<serve::ServeReply> shed = (*caller)->CallWithRetry(
      serve::ServeRequest::Of(sim::BuildFanoutProblem(4), 2), policy);
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->status, serve::WireStatus::kOverloaded);
  EXPECT_GE(server.Stats().sheds, 3u) << "every attempt must have been shed";

  // Open the gate: the filler's admitted request completes, and a retried
  // call now succeeds on its first or a later attempt.
  options.admission_gate->store(true);
  Result<serve::ServeReply> admitted = (*filler)->Recv();
  ASSERT_TRUE(admitted.ok());
  EXPECT_EQ(admitted->status, serve::WireStatus::kOk);
  Result<serve::ServeReply> served = (*caller)->CallWithRetry(
      serve::ServeRequest::Of(sim::BuildFanoutProblem(4), 3), policy);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(served->status, serve::WireStatus::kOk);
}

TEST(FaultInjectionTest, ServerCancelsWorkWhoseBudgetExpiresMidCompose) {
  SKIP_WITHOUT_FAULT_POINTS();
  // The zombie-lane contract end to end: slow waves push the composition
  // past the queue budget, the dispatcher answers kTimeout immediately
  // and withdraws interest, and the abandoned computation unwinds — it
  // must show up as cancelled, with the service back at idle, never as a
  // lane still burning pool time.
  ScopedFault slow(FaultPoint::kSlowEliminationWave, /*arg=*/60);
  ComposeService service;
  serve::ServerOptions options;
  options.queue_timeout_ms = 30;
  options.dispatch_threads = 1;
  serve::ComposeServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());
  Result<std::unique_ptr<serve::ComposeClient>> client =
      serve::ComposeClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  Result<serve::ServeReply> reply = (*client)->Call(serve::ServeRequest::Of(
      sim::BuildFanoutProblem(6, /*chain_overlap=*/true), 21));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->status, serve::WireStatus::kTimeout);
  EXPECT_EQ(reply->request_id, 21u);

  WaitServiceIdle(service);
  runtime::ServiceStats stats = service.Stats();
  EXPECT_GE(stats.cancelled, 1u);
  EXPECT_GE(stats.cancelled, server.Stats().timeouts);
  EXPECT_EQ(stats.in_flight, 0);
}

TEST(FaultInjectionTest, PerRequestWireDeadlineTightensTheQueueBudget) {
  SKIP_WITHOUT_FAULT_POINTS();
  // No queue_timeout_ms at all: the bound comes entirely from the
  // request's own deadline_ms field riding the wire.
  ScopedFault slow(FaultPoint::kSlowEliminationWave, /*arg=*/60);
  ComposeService service;
  serve::ComposeServer server(&service, serve::ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Result<std::unique_ptr<serve::ComposeClient>> client =
      serve::ComposeClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  serve::ServeRequest request = serve::ServeRequest::Of(
      sim::BuildFanoutProblem(7, /*chain_overlap=*/true), 22);
  request.deadline_ms = 30;
  Result<serve::ServeReply> reply = (*client)->Call(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->status, serve::WireStatus::kTimeout);

  WaitServiceIdle(service);
  EXPECT_GE(service.Stats().cancelled, 1u);
  EXPECT_EQ(service.Stats().in_flight, 0);
}

TEST(FaultInjectionTest, AbandonedInFlightHandleCountsCancelled) {
  SKIP_WITHOUT_FAULT_POINTS();
  // Dropping every copy of an un-waited handle while the computation is
  // in flight is a cancellation: the zombie-lane guarantee does not
  // depend on clients being polite.
  ScopedFault slow(FaultPoint::kSlowEliminationWave, /*arg=*/50);
  ComposeService service;
  { service.Submit(sim::BuildFanoutProblem(5, /*chain_overlap=*/true)); }
  WaitServiceIdle(service);
  runtime::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.in_flight, 0);
}

}  // namespace
}  // namespace mapcomp
