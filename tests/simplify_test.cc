#include "src/algebra/simplify.h"

#include <gtest/gtest.h>

#include <random>

#include "src/algebra/builders.h"
#include "src/algebra/print.h"
#include "src/eval/checker.h"
#include "src/eval/evaluator.h"
#include "src/eval/generator.h"

namespace mapcomp {
namespace {

TEST(SimplifyTest, DomainIdentities) {
  // §3.4.3: E ∪ D^r = D^r, E ∩ D^r = E, E − D^r = ∅, π_I(D^r) = D^|I|.
  ExprPtr r = Rel("R", 2);
  EXPECT_TRUE(ExprEquals(SimplifyExpr(Union(r, Dom(2))), Dom(2)));
  EXPECT_TRUE(ExprEquals(SimplifyExpr(Intersect(r, Dom(2))), r));
  EXPECT_TRUE(ExprEquals(SimplifyExpr(Intersect(Dom(2), r)), r));
  EXPECT_TRUE(ExprEquals(SimplifyExpr(Difference(r, Dom(2))), EmptyRel(2)));
  EXPECT_TRUE(ExprEquals(SimplifyExpr(Project({1}, Dom(2))), Dom(1)));
}

TEST(SimplifyTest, EmptyIdentities) {
  // §3.5.4: E ∪ ∅ = E, E ∩ ∅ = ∅, E − ∅ = E, ∅ − E = ∅, σ_c(∅) = ∅,
  // π_I(∅) = ∅.
  ExprPtr r = Rel("R", 2);
  EXPECT_TRUE(ExprEquals(SimplifyExpr(Union(r, EmptyRel(2))), r));
  EXPECT_TRUE(
      ExprEquals(SimplifyExpr(Intersect(r, EmptyRel(2))), EmptyRel(2)));
  EXPECT_TRUE(ExprEquals(SimplifyExpr(Difference(r, EmptyRel(2))), r));
  EXPECT_TRUE(
      ExprEquals(SimplifyExpr(Difference(EmptyRel(2), r)), EmptyRel(2)));
  EXPECT_TRUE(ExprEquals(
      SimplifyExpr(Select(Condition::AttrCmp(1, CmpOp::kEq, 2), EmptyRel(2))),
      EmptyRel(2)));
  EXPECT_TRUE(ExprEquals(SimplifyExpr(Project({1}, EmptyRel(2))),
                         EmptyRel(1)));
  EXPECT_TRUE(
      ExprEquals(SimplifyExpr(Product(r, EmptyRel(1))), EmptyRel(3)));
}

TEST(SimplifyTest, GenericCleanups) {
  ExprPtr r = Rel("R", 2);
  EXPECT_TRUE(ExprEquals(SimplifyExpr(Union(r, r)), r));
  EXPECT_TRUE(ExprEquals(SimplifyExpr(Intersect(r, r)), r));
  EXPECT_TRUE(ExprEquals(SimplifyExpr(Difference(r, r)), EmptyRel(2)));
  EXPECT_TRUE(ExprEquals(SimplifyExpr(Select(Condition::True(), r)), r));
  EXPECT_TRUE(ExprEquals(SimplifyExpr(Select(Condition::False(), r)),
                         EmptyRel(2)));
  EXPECT_TRUE(ExprEquals(SimplifyExpr(Project({1, 2}, r)), r));
}

TEST(SimplifyTest, NestedSelectMerge) {
  Condition c1 = Condition::AttrCmp(1, CmpOp::kEq, 2);
  Condition c2 = Condition::AttrConst(1, CmpOp::kNe, int64_t{0});
  ExprPtr merged =
      SimplifyExpr(Select(c1, Select(c2, Rel("R", 2))));
  ASSERT_EQ(merged->kind(), ExprKind::kSelect);
  EXPECT_EQ(merged->child(0)->kind(), ExprKind::kRelation);
  EXPECT_EQ(merged->condition(), Condition::And(c1, c2));
}

TEST(SimplifyTest, ProjectionComposition) {
  ExprPtr e = Project({2, 1}, Project({3, 1}, Rel("R", 3)));
  ExprPtr s = SimplifyExpr(e);
  ASSERT_EQ(s->kind(), ExprKind::kProject);
  EXPECT_EQ(s->indexes(), (std::vector<int>{1, 3}));
  EXPECT_EQ(s->child(0)->kind(), ExprKind::kRelation);
}

TEST(SimplifyTest, LiteralConstantFolding) {
  ExprPtr a = Lit(1, {{Value(int64_t{1})}, {Value(int64_t{2})}});
  ExprPtr b = Lit(1, {{Value(int64_t{2})}, {Value(int64_t{3})}});
  ExprPtr u = SimplifyExpr(Union(a, b));
  ASSERT_EQ(u->kind(), ExprKind::kLiteral);
  EXPECT_EQ(u->tuples().size(), 3u);
  ExprPtr i = SimplifyExpr(Intersect(a, b));
  ASSERT_EQ(i->kind(), ExprKind::kLiteral);
  EXPECT_EQ(i->tuples().size(), 1u);
  ExprPtr d = SimplifyExpr(Difference(a, b));
  ASSERT_EQ(d->kind(), ExprKind::kLiteral);
  EXPECT_EQ(d->tuples().size(), 1u);
  ExprPtr sel = SimplifyExpr(
      Select(Condition::AttrConst(1, CmpOp::kEq, int64_t{2}), a));
  ASSERT_EQ(sel->kind(), ExprKind::kLiteral);
  EXPECT_EQ(sel->tuples().size(), 1u);
}

TEST(SimplifyTest, UserOpHookApplied) {
  const op::Registry& reg = op::Registry::Default();
  ExprPtr aj = reg.MakeOp("antijoin", {Rel("R", 2), EmptyRel(2)},
                          Condition::True())
                   .value();
  SimplifyHook hook = [&reg](const ExprPtr& e) -> ExprPtr {
    const op::OperatorDef* def = reg.Find(e->name());
    return def != nullptr && def->simplify ? def->simplify(e) : nullptr;
  };
  EXPECT_TRUE(ExprEquals(SimplifyExpr(aj, hook), Rel("R", 2)));
}

/// Property: simplification preserves semantics on random instances.
class SimplifySemanticsTest : public ::testing::TestWithParam<int> {};

/// Builds a random expression over R(2), S(2), U(1) of bounded depth.
ExprPtr RandomExpr(std::mt19937_64* rng, int depth, int want_arity) {
  std::uniform_int_distribution<int> op_dist(0, 7);
  if (depth == 0) {
    switch (op_dist(*rng) % 4) {
      case 0:
        return want_arity == 2 ? Rel("R", 2) : Rel("U", 1);
      case 1:
        return want_arity == 2 ? Rel("S", 2) : Rel("U", 1);
      case 2:
        return EmptyRel(want_arity);
      default:
        return Dom(want_arity);
    }
  }
  switch (op_dist(*rng)) {
    case 0:
      return Union(RandomExpr(rng, depth - 1, want_arity),
                   RandomExpr(rng, depth - 1, want_arity));
    case 1:
      return Intersect(RandomExpr(rng, depth - 1, want_arity),
                       RandomExpr(rng, depth - 1, want_arity));
    case 2:
      return Difference(RandomExpr(rng, depth - 1, want_arity),
                        RandomExpr(rng, depth - 1, want_arity));
    case 3: {
      if (want_arity < 2) break;
      return Product(RandomExpr(rng, depth - 1, 1),
                     RandomExpr(rng, depth - 1, want_arity - 1));
    }
    case 4: {
      ExprPtr inner = RandomExpr(rng, depth - 1, 2);
      std::uniform_int_distribution<int> idx(1, 2);
      std::vector<int> indexes;
      for (int i = 0; i < want_arity; ++i) indexes.push_back(idx(*rng));
      return Project(indexes, inner);
    }
    case 5: {
      ExprPtr inner = RandomExpr(rng, depth - 1, want_arity);
      Condition c =
          want_arity >= 2
              ? Condition::AttrCmp(1, CmpOp::kEq, 2)
              : Condition::AttrConst(1, CmpOp::kLe, int64_t{1});
      return Select(c, inner);
    }
    default:
      break;
  }
  return RandomExpr(rng, 0, want_arity);
}

TEST_P(SimplifySemanticsTest, RandomExpressionsPreserved) {
  std::mt19937_64 rng(GetParam());
  Signature sig;
  ASSERT_TRUE(sig.AddRelation("R", 2).ok());
  ASSERT_TRUE(sig.AddRelation("S", 2).ok());
  ASSERT_TRUE(sig.AddRelation("U", 1).ok());
  GenOptions gen;
  gen.domain_size = 3;
  gen.max_tuples_per_rel = 3;
  for (int round = 0; round < 20; ++round) {
    ExprPtr e = RandomExpr(&rng, 3, 2);
    ExprPtr s = SimplifyExpr(e);
    for (int inst = 0; inst < 3; ++inst) {
      Instance db = RandomInstance(sig, &rng, gen);
      auto before = Evaluate(e, db);
      auto after = Evaluate(s, db);
      ASSERT_TRUE(before.ok()) << ExprToString(e);
      ASSERT_TRUE(after.ok()) << ExprToString(s);
      EXPECT_EQ(*before, *after)
          << "expr: " << ExprToString(e) << "\nsimplified: " << ExprToString(s);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifySemanticsTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace mapcomp
