#include "src/compose/normalize_right.h"

#include <gtest/gtest.h>

#include <random>

#include "src/algebra/builders.h"
#include "src/algebra/print.h"
#include "src/eval/checker.h"
#include "src/eval/generator.h"

namespace mapcomp {
namespace {

const op::Registry& Reg() { return op::Registry::Default(); }

RightNormalForm Normalize(const ConstraintSet& input, const std::string& s,
                          int arity, const Signature* keys = nullptr) {
  int counter = 0;
  return RightNormalize(input, s, arity, keys, &counter, &Reg()).value();
}

/// Skolem-free normal forms can be checked semantically against the input.
void ExpectSemanticallyEqual(const ConstraintSet& input,
                             const RightNormalForm& nf,
                             const std::string& symbol, int arity,
                             const Signature& sig, uint64_t seed) {
  ConstraintSet normalized = nf.others;
  normalized.push_back(
      Constraint::Contain(nf.lower_bound, Rel(symbol, arity)));
  std::mt19937_64 rng(seed);
  GenOptions gen;
  gen.domain_size = 3;
  gen.max_tuples_per_rel = 3;
  for (int round = 0; round < 40; ++round) {
    Instance db = RandomInstance(sig, &rng, gen);
    auto before = SatisfiesAll(db, input);
    auto after = SatisfiesAll(db, normalized);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(*before, *after)
        << "instance:\n" << db.ToString()
        << "input:\n" << ConstraintSetToString(input)
        << "normalized:\n" << ConstraintSetToString(normalized);
  }
}

TEST(RightNormalizeTest, PaperExample13) {
  // S × T ⊆ U, T ⊆ σ_c(S) × π(R)
  // ⇒ S × T ⊆ U, π(T) ⊆ S, π(T) ⊆ σ_c(D), π(T) ⊆ π(R).
  Condition c = Condition::AttrConst(1, CmpOp::kEq, int64_t{1});
  ConstraintSet input{
      Constraint::Contain(Product(Rel("S", 1), Rel("T", 2)), Rel("U", 3)),
      Constraint::Contain(Rel("T", 2),
                          Product(Select(c, Rel("S", 1)),
                                  Project({1}, Rel("R", 2))))};
  RightNormalForm nf = Normalize(input, "S", 1);
  // Lower bound is π_1(T).
  EXPECT_TRUE(ExprEquals(nf.lower_bound, Project({1}, Rel("T", 2))));
  ASSERT_EQ(nf.others.size(), 3u);

  Signature sig;
  for (auto& [n, a] : std::vector<std::pair<std::string, int>>{
           {"S", 1}, {"T", 2}, {"U", 3}, {"R", 2}}) {
    ASSERT_TRUE(sig.AddRelation(n, a).ok());
  }
  ExpectSemanticallyEqual(input, nf, "S", 1, sig, 29);
}

TEST(RightNormalizeTest, PaperExample14Skolemization) {
  // R ⊆ π(S × (T ∩ U)), S ⊆ σ_c(T) — normalizing for S introduces a Skolem
  // function for the projected-away column.
  // Use R(1), S(1), T(1), U(1), and π_1 over S×(T∩U) of arity 2.
  Condition c = Condition::AttrConst(1, CmpOp::kLe, int64_t{5});
  ConstraintSet input{
      Constraint::Contain(
          Rel("R", 1),
          Project({1}, Product(Rel("S", 1),
                               Intersect(Rel("T", 1), Rel("U", 1))))),
      Constraint::Contain(Rel("S", 1), Select(c, Rel("T", 1)))};
  RightNormalForm nf = Normalize(input, "S", 1);
  // The lower bound must mention a Skolem somewhere... in fact the bound is
  // π over a Skolemized R.
  EXPECT_TRUE(ContainsSkolem(nf.lower_bound));
  // π(f(R)) ⊆ T ∩ U survives among the others, rewritten into pieces.
  bool mentions_t = false;
  for (const Constraint& cc : nf.others) {
    if (ContainsRelation(cc.rhs, "T")) mentions_t = true;
    EXPECT_FALSE(ContainsRelation(cc.rhs, "S"));
  }
  EXPECT_TRUE(mentions_t);
}

TEST(RightNormalizeTest, IntersectionSplits) {
  ConstraintSet input{Constraint::Contain(
      Rel("R", 1), Intersect(Rel("S", 1), Rel("T", 1)))};
  RightNormalForm nf = Normalize(input, "S", 1);
  EXPECT_TRUE(ExprEquals(nf.lower_bound, Rel("R", 1)));
  ASSERT_EQ(nf.others.size(), 1u);
  EXPECT_TRUE(ExprEquals(nf.others[0].rhs, Rel("T", 1)));
}

TEST(RightNormalizeTest, UnionMovesOtherOperandLeft) {
  // R ⊆ S ∪ T ⇒ R − T ⊆ S.
  ConstraintSet input{
      Constraint::Contain(Rel("R", 1), Union(Rel("S", 1), Rel("T", 1)))};
  RightNormalForm nf = Normalize(input, "S", 1);
  EXPECT_TRUE(ExprEquals(nf.lower_bound,
                         Difference(Rel("R", 1), Rel("T", 1))));
  Signature sig;
  for (auto& [n, a] : std::vector<std::pair<std::string, int>>{
           {"R", 1}, {"S", 1}, {"T", 1}}) {
    ASSERT_TRUE(sig.AddRelation(n, a).ok());
  }
  ExpectSemanticallyEqual(input, nf, "S", 1, sig, 31);
}

TEST(RightNormalizeTest, UnionWithSymbolInBothOperandsFails) {
  ConstraintSet input{
      Constraint::Contain(Rel("R", 1), Union(Rel("S", 1), Rel("S", 1)))};
  int counter = 0;
  EXPECT_FALSE(RightNormalize(input, "S", 1, nullptr, &counter, &Reg()).ok());
}

TEST(RightNormalizeTest, DifferenceRule) {
  // R ⊆ S − T ⇒ R ⊆ S, R ∩ T ⊆ ∅.
  ConstraintSet input{
      Constraint::Contain(Rel("R", 1), Difference(Rel("S", 1), Rel("T", 1)))};
  RightNormalForm nf = Normalize(input, "S", 1);
  EXPECT_TRUE(ExprEquals(nf.lower_bound, Rel("R", 1)));
  ASSERT_EQ(nf.others.size(), 1u);
  EXPECT_EQ(nf.others[0].rhs->kind(), ExprKind::kEmpty);
  Signature sig;
  for (auto& [n, a] : std::vector<std::pair<std::string, int>>{
           {"R", 1}, {"S", 1}, {"T", 1}}) {
    ASSERT_TRUE(sig.AddRelation(n, a).ok());
  }
  ExpectSemanticallyEqual(input, nf, "S", 1, sig, 37);
}

TEST(RightNormalizeTest, SelectRule) {
  // R ⊆ σ_c(S) ⇒ R ⊆ S, R ⊆ σ_c(D).
  Condition c = Condition::AttrConst(1, CmpOp::kEq, int64_t{2});
  ConstraintSet input{
      Constraint::Contain(Rel("R", 1), Select(c, Rel("S", 1)))};
  RightNormalForm nf = Normalize(input, "S", 1);
  EXPECT_TRUE(ExprEquals(nf.lower_bound, Rel("R", 1)));
  ASSERT_EQ(nf.others.size(), 1u);
  EXPECT_TRUE(ExprEquals(nf.others[0].rhs, Select(c, Dom(1))));
  Signature sig;
  ASSERT_TRUE(sig.AddRelation("R", 1).ok());
  ASSERT_TRUE(sig.AddRelation("S", 1).ok());
  ExpectSemanticallyEqual(input, nf, "S", 1, sig, 41);
}

TEST(RightNormalizeTest, ProductSplitsWithProjections) {
  // R ⊆ S × T with S(1), T(2): π_1(R) ⊆ S, π_{2,3}(R) ⊆ T.
  ConstraintSet input{
      Constraint::Contain(Rel("R", 3), Product(Rel("S", 1), Rel("T", 2)))};
  RightNormalForm nf = Normalize(input, "S", 1);
  EXPECT_TRUE(ExprEquals(nf.lower_bound, Project({1}, Rel("R", 3))));
  ASSERT_EQ(nf.others.size(), 1u);
  EXPECT_TRUE(
      ExprEquals(nf.others[0].lhs, Project({2, 3}, Rel("R", 3))));
  Signature sig;
  for (auto& [n, a] : std::vector<std::pair<std::string, int>>{
           {"R", 3}, {"S", 1}, {"T", 2}}) {
    ASSERT_TRUE(sig.AddRelation(n, a).ok());
  }
  ExpectSemanticallyEqual(input, nf, "S", 1, sig, 43);
}

TEST(RightNormalizeTest, SkolemArgumentMinimizationWithKeys) {
  // R(2) with key {1}: R ⊆ π_{1,2}(S) with S(3) skolemizes the third
  // column; the Skolem should depend only on R's key column.
  ConstraintSet input{
      Constraint::Contain(Rel("R", 2), Project({1, 2}, Rel("S", 3)))};
  Signature keys;
  ASSERT_TRUE(keys.AddRelation("R", 2).ok());
  ASSERT_TRUE(keys.SetKey("R", {1}).ok());
  RightNormalForm nf = Normalize(input, "S", 3, &keys);
  ASSERT_TRUE(ContainsSkolem(nf.lower_bound));
  // Find the Skolem node and inspect its argument indexes.
  std::function<ExprPtr(const ExprPtr&)> find_sk =
      [&](const ExprPtr& e) -> ExprPtr {
    if (e->kind() == ExprKind::kSkolem) return e;
    for (const ExprPtr& ch : e->children()) {
      ExprPtr found = find_sk(ch);
      if (found != nullptr) return found;
    }
    return nullptr;
  };
  ExprPtr sk = find_sk(nf.lower_bound);
  ASSERT_NE(sk, nullptr);
  EXPECT_EQ(sk->indexes(), (std::vector<int>{1}));
}

TEST(RightNormalizeTest, ProjectionWithRepeatedIndexesEmitsEqualities) {
  // R ⊆ π_{1,1}(S) with S(2): forces R's two columns equal.
  ConstraintSet input{
      Constraint::Contain(Rel("R", 2), Project({1, 1}, Rel("S", 2)))};
  RightNormalForm nf = Normalize(input, "S", 2);
  bool has_equality_guard = false;
  for (const Constraint& c : nf.others) {
    if (c.rhs->kind() == ExprKind::kSelect &&
        c.rhs->child(0)->kind() == ExprKind::kDomain) {
      has_equality_guard = true;
    }
  }
  EXPECT_TRUE(has_equality_guard);
}

TEST(RightNormalizeTest, CollapsesMultipleLowerBounds) {
  ConstraintSet input{Constraint::Contain(Rel("A", 1), Rel("S", 1)),
                      Constraint::Contain(Rel("B", 1), Rel("S", 1))};
  RightNormalForm nf = Normalize(input, "S", 1);
  EXPECT_TRUE(nf.others.empty());
  EXPECT_TRUE(ExprEquals(nf.lower_bound, Union(Rel("A", 1), Rel("B", 1))));
}

TEST(RightNormalizeTest, NoOccurrenceGivesEmptyBound) {
  ConstraintSet input{Constraint::Contain(Product(Rel("S", 1), Rel("A", 1)),
                                          Rel("B", 2))};
  RightNormalForm nf = Normalize(input, "S", 1);
  EXPECT_EQ(nf.lower_bound->kind(), ExprKind::kEmpty);
  EXPECT_EQ(nf.others.size(), 1u);
}

}  // namespace
}  // namespace mapcomp
