// Tests for the conflict-graph elimination scheduler: occurrence-set
// computation (Bloom fast path + exact confirmation), wave planning
// (disjoint symbols share a wave, overlapping symbols serialize, Bloom
// false positives only ever over-serialize), and the determinism pin —
// Compose produces byte-identical fingerprints at any elim-jobs count.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/algebra/builders.h"
#include "src/compose/compose.h"
#include "src/compose/schedule.h"
#include "src/parser/parser.h"
#include "src/simulator/scenarios.h"
#include "src/testdata/literature_suite.h"

namespace mapcomp {
namespace {

ConstraintSet FullSigma(const CompositionProblem& p) {
  ConstraintSet sigma = p.sigma12;
  sigma.insert(sigma.end(), p.sigma23.begin(), p.sigma23.end());
  return sigma;
}

std::vector<CompositionProblem> ParsedLiteratureSuite() {
  Parser parser;
  std::vector<CompositionProblem> problems;
  for (const testdata::LiteratureProblem& prob :
       testdata::LiteratureSuite()) {
    Result<CompositionProblem> parsed = parser.ParseProblem(prob.text);
    EXPECT_TRUE(parsed.ok()) << prob.name;
    if (parsed.ok()) problems.push_back(std::move(*parsed));
  }
  return problems;
}

TEST(ScheduleTest, OccurrenceSetsAreExact) {
  CompositionProblem p = sim::BuildFanoutProblem(3);
  ConstraintSet sigma = FullSigma(p);
  // Layout: sigma12 = {S1=R1, S2=R2, S3=R3}, sigma23 = {S1<=T1, ...}.
  std::vector<std::vector<int>> occ =
      OccurrenceSets(sigma, {"S1", "S2", "S3"});
  ASSERT_EQ(occ.size(), 3u);
  EXPECT_EQ(occ[0], (std::vector<int>{0, 3}));
  EXPECT_EQ(occ[1], (std::vector<int>{1, 4}));
  EXPECT_EQ(occ[2], (std::vector<int>{2, 5}));
  // A symbol that occurs nowhere has an empty set.
  EXPECT_TRUE(OccurrenceSets(sigma, {"Absent"})[0].empty());
}

TEST(ScheduleTest, DisjointSymbolsLandInOneWave) {
  CompositionProblem p = sim::BuildFanoutProblem(8);
  std::vector<std::vector<int>> waves =
      PlanAllWaves(FullSigma(p), p.sigma2.names());
  ASSERT_EQ(waves.size(), 1u);
  EXPECT_EQ(waves[0].size(), 8u);
  // The single-wave entry point agrees.
  EXPECT_EQ(PlanWave(FullSigma(p), p.sigma2.names()), waves[0]);
}

TEST(ScheduleTest, OverlappingSymbolsSerialize) {
  // Chained clusters: S(i+1)'s defining constraint mentions Si, so every
  // adjacent pair conflicts and must never share a wave.
  CompositionProblem p = sim::BuildFanoutProblem(6, /*chain_overlap=*/true);
  ConstraintSet sigma = FullSigma(p);
  std::vector<std::vector<int>> waves = PlanAllWaves(sigma, p.sigma2.names());
  EXPECT_GE(waves.size(), 2u);
  size_t placed = 0;
  for (const std::vector<int>& wave : waves) {
    std::set<int> members(wave.begin(), wave.end());
    placed += wave.size();
    for (int s : wave) {
      EXPECT_EQ(members.count(s + 1), 0u)
          << "adjacent symbols S" << s + 1 << ",S" << s + 2
          << " share a wave";
    }
  }
  EXPECT_EQ(placed, 6u);  // waves partition the symbol list

  // Two symbols sharing one constraint serialize even when everything
  // else about them is disjoint: the first wave takes only the first.
  EXPECT_EQ(PlanWave(sigma, {"S1", "S2"}), std::vector<int>{0});
  std::vector<std::vector<int>> pair_waves =
      PlanAllWaves(sigma, {"S1", "S2"});
  ASSERT_EQ(pair_waves.size(), 2u);
  EXPECT_EQ(pair_waves[0], std::vector<int>{0});
  EXPECT_EQ(pair_waves[1], std::vector<int>{1});
}

TEST(ScheduleTest, BloomFalsePositivesOnlyOverSerialize) {
  CompositionProblem p = sim::BuildFanoutProblem(2);
  ConstraintSet sigma = FullSigma(p);

  // Engineer a Bloom collision: a symbol that occurs nowhere but whose
  // 64-bit name bit equals that of R1, which does occur. 64 possible bits
  // make a collision certain within a few dozen candidates.
  std::string colliding;
  for (int i = 0; i < 10000 && colliding.empty(); ++i) {
    std::string candidate = "X" + std::to_string(i);
    if (Expr::NameBit(candidate) == Expr::NameBit("R1")) {
      colliding = candidate;
    }
  }
  ASSERT_FALSE(colliding.empty()) << "no NameBit collision in 10000 names";

  // Exact planning proves the ghost symbol absent: one wave.
  std::vector<std::vector<int>> exact =
      PlanAllWaves(sigma, {"S1", colliding}, /*exact=*/true);
  ASSERT_EQ(exact.size(), 1u);

  // Bloom-only planning believes the mask: the ghost appears to occur in
  // S1's defining constraint, adding a conflict edge — over-serialized
  // into two waves.
  std::vector<std::vector<int>> bloom =
      PlanAllWaves(sigma, {"S1", colliding}, /*exact=*/false);
  ASSERT_EQ(bloom.size(), 2u);

  // Never under-serialize: Bloom candidate sets contain the exact sets
  // (a clear mask bit proves absence), so any true conflict survives.
  for (const CompositionProblem& prob : ParsedLiteratureSuite()) {
    ConstraintSet s = FullSigma(prob);
    std::vector<std::string> symbols = prob.sigma2.names();
    std::vector<std::vector<int>> ex = OccurrenceSets(s, symbols, true);
    std::vector<std::vector<int>> bl = OccurrenceSets(s, symbols, false);
    for (size_t i = 0; i < symbols.size(); ++i) {
      std::set<int> bloom_set(bl[i].begin(), bl[i].end());
      for (int c : ex[i]) {
        EXPECT_EQ(bloom_set.count(c), 1u)
            << prob.name << ": Bloom set misses a true occurrence of "
            << symbols[i];
      }
    }
  }
}

TEST(ScheduleTest, WaveWidthsAreRecordedAndSumToAttempts) {
  CompositionResult wide = Compose(sim::BuildFanoutProblem(5));
  ASSERT_EQ(wide.rounds.size(), 1u);
  EXPECT_EQ(wide.rounds[0].wave_widths, std::vector<int>{5});
  EXPECT_EQ(wide.eliminated_count, 5);

  CompositionResult chained =
      Compose(sim::BuildFanoutProblem(5, /*chain_overlap=*/true));
  EXPECT_EQ(chained.eliminated_count, 5);
  for (const RoundStat& r : chained.rounds) {
    int width_sum = 0;
    for (int w : r.wave_widths) {
      EXPECT_GE(w, 1);
      width_sum += w;
    }
    EXPECT_EQ(width_sum, r.attempted);
  }
  // The chain forces at least one multi-wave round.
  ASSERT_FALSE(chained.rounds.empty());
  EXPECT_GE(chained.rounds[0].wave_widths.size(), 2u);
}

TEST(ScheduleTest, FingerprintsIdenticalAcrossElimJobs) {
  std::vector<CompositionProblem> problems = ParsedLiteratureSuite();
  problems.push_back(sim::BuildFanoutProblem(8));
  problems.push_back(sim::BuildFanoutProblem(8, /*chain_overlap=*/true));

  ComposeOptions jobs1;
  jobs1.elim_jobs = 1;
  ComposeOptions jobs8;
  jobs8.elim_jobs = 8;
  for (const CompositionProblem& p : problems) {
    CompositionResult a = Compose(p, jobs1);
    CompositionResult b = Compose(p, jobs8);
    EXPECT_EQ(a.Fingerprint(), b.Fingerprint()) << p.name;
  }
}

TEST(ScheduleTest, BloomOnlyPlanningComposesTheSameSymbols) {
  // Over-serialization must never change *what* gets eliminated, only how
  // the waves are cut.
  std::vector<CompositionProblem> problems = ParsedLiteratureSuite();
  problems.push_back(sim::BuildFanoutProblem(6));
  ComposeOptions exact;
  ComposeOptions bloom;
  bloom.exact_conflicts = false;
  for (const CompositionProblem& p : problems) {
    CompositionResult a = Compose(p, exact);
    CompositionResult b = Compose(p, bloom);
    EXPECT_EQ(a.eliminated_count, b.eliminated_count) << p.name;
    EXPECT_EQ(a.residual_sigma2, b.residual_sigma2) << p.name;
  }
}

TEST(ScheduleTest, BlowupLimitedWaveFailureIsRetriedNextRound) {
  // SA unfolds into something larger than the whole Σ (blowup factor 1,
  // left/right disabled), so it fails *only* on the blowup guard; SB is
  // independent and succeeds in the same wave. The guard is measured
  // against the global snapshot size, which SB's success just changed —
  // so SA's failure is NOT reproducible against the merged Σ and must be
  // attempted again in round 2 (where it fails again: Σ only shrank).
  CompositionProblem p;
  ExprPtr big = Rel("R1", 1);
  p.sigma1.AddOrReplaceRelation("R1", 1);
  for (int i = 2; i <= 10; ++i) {
    std::string r = "R" + std::to_string(i);
    p.sigma1.AddOrReplaceRelation(r, 1);
    big = Product(std::move(big), Rel(r, 1));
  }
  p.sigma2.AddOrReplaceRelation("SA", 10);
  p.sigma12.push_back(Constraint::Equal(Rel("SA", 10), big));
  for (int j = 1; j <= 5; ++j) {
    std::string t = "TA" + std::to_string(j);
    p.sigma3.AddOrReplaceRelation(t, 10);
    p.sigma23.push_back(Constraint::Contain(Rel("SA", 10), Rel(t, 10)));
  }
  p.sigma1.AddOrReplaceRelation("RB", 1);
  p.sigma2.AddOrReplaceRelation("SB", 1);
  p.sigma3.AddOrReplaceRelation("TB", 1);
  p.sigma12.push_back(Constraint::Equal(Rel("SB", 1), Rel("RB", 1)));
  p.sigma23.push_back(Constraint::Contain(Rel("SB", 1), Rel("TB", 1)));

  ComposeOptions options;
  options.eliminate.max_blowup_factor = 1;
  options.eliminate.enable_left_compose = false;
  options.eliminate.enable_right_compose = false;
  CompositionResult res = Compose(p, options);

  EXPECT_EQ(res.residual_sigma2, std::vector<std::string>{"SA"});
  EXPECT_EQ(res.eliminated_count, 1);
  ASSERT_EQ(res.rounds.size(), 2u) << res.Report();
  EXPECT_EQ(res.rounds[0].attempted, 2);
  EXPECT_EQ(res.rounds[0].eliminated, 1);
  EXPECT_EQ(res.rounds[0].wave_widths, std::vector<int>{2});
  // The retry happened (and failed against a now-smaller Σ for real).
  EXPECT_EQ(res.rounds[1].attempted, 1);
  EXPECT_EQ(res.rounds[1].eliminated, 0);
  ASSERT_EQ(res.stats.size(), 3u);
  EXPECT_NE(res.stats[2].failure_reason.find("blowup"), std::string::npos);
}

TEST(ScheduleTest, PartitionedWaveMatchesKnownComposition) {
  // The fan-out problem composes to exactly Ri <= Ti per cluster; check
  // the merged output, not just the counters.
  CompositionResult res = Compose(sim::BuildFanoutProblem(3));
  EXPECT_TRUE(res.residual_sigma2.empty());
  std::string out = ConstraintSetToString(res.constraints);
  EXPECT_NE(out.find("R1 <= T1"), std::string::npos) << out;
  EXPECT_NE(out.find("R2 <= T2"), std::string::npos) << out;
  EXPECT_NE(out.find("R3 <= T3"), std::string::npos) << out;
}

}  // namespace
}  // namespace mapcomp
