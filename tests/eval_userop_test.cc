// Columnar user-operator kernel coverage: every extension op's columnar
// kernel must be fingerprint-identical to the legacy set-based hook (and to
// the nested-loop oracle) at any lane count, pad-value minting must not
// perturb determinism, mixed columnar/legacy registries must route per op,
// a wrong-arity kernel output must surface as a clean InvalidArgument, and
// an all-columnar evaluation must leave the decode seam closed — pinned via
// the user_op_columnar / user_op_decode_fallback stats counters.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/algebra/builders.h"
#include "src/eval/evaluator.h"
#include "src/eval/instance.h"
#include "src/eval/tuple_table.h"
#include "src/op/extra_ops.h"
#include "src/op/registry.h"

namespace mapcomp {
namespace {

Tuple T(std::initializer_list<int64_t> vals) {
  Tuple t;
  for (int64_t v : vals) t.push_back(Value(v));
  return t;
}

/// The four-op registry with ONLY the set-based hooks (pre-columnar
/// behavior) — the legacy column every columnar result is gated against.
const op::Registry& LegacyReg() {
  static const op::Registry* reg = [] {
    auto* r = new op::Registry(op::Registry::Empty());
    op::RegisterExtraOpsSetBased(r);
    return r;
  }();
  return *reg;
}

EvalResult RunEval(const ExprPtr& e, const Instance& db, const op::Registry& reg,
               int jobs, bool nested = false) {
  EvalOptions opts;
  opts.registry = &reg;
  opts.jobs = jobs;
  opts.parallel_threshold = 4;  // exercise sharding even on tiny inputs
  opts.skolem_mode = SkolemEvalMode::kInjectiveTerms;
  opts.force_nested_loop = nested;
  return EvaluateFull(e, db, opts).value();
}

/// Requires the columnar registry (Registry::Default) to agree with the
/// legacy set-based registry and the nested-loop oracle at jobs 1/2/8, and
/// pins the routing counters: every user op columnar on the default
/// registry, every user op a decode fallback on the legacy one.
void ExpectColumnarMatchesLegacy(const ExprPtr& e, const Instance& db,
                                 int64_t user_ops) {
  EvalResult oracle = RunEval(e, db, LegacyReg(), 1, /*nested=*/true);
  EvalResult legacy = RunEval(e, db, LegacyReg(), 1);
  EXPECT_EQ(legacy.Fingerprint(), oracle.Fingerprint());
  EXPECT_EQ(legacy.stats.user_op_decode_fallback, user_ops);
  EXPECT_EQ(legacy.stats.user_op_columnar, 0);
  for (int jobs : {1, 2, 8}) {
    EvalResult columnar = RunEval(e, db, op::Registry::Default(), jobs);
    EXPECT_EQ(columnar.Fingerprint(), oracle.Fingerprint())
        << "jobs=" << jobs;
    EXPECT_EQ(columnar.tuples(), oracle.tuples()) << "jobs=" << jobs;
    // All-columnar ⇒ the decode cache stayed empty: no child was ever
    // decoded for a user op (the seam PR 5/6 left open is closed).
    EXPECT_EQ(columnar.stats.user_op_columnar, user_ops) << "jobs=" << jobs;
    EXPECT_EQ(columnar.stats.user_op_decode_fallback, 0) << "jobs=" << jobs;
  }
}

Instance JoinDb() {
  Instance db;
  db.Set("R", {T({1, 2}), T({2, 3}), T({3, 4}), T({7, 1})});
  db.Set("S", {T({2, 10}), T({3, 1}), T({5, 5})});
  return db;
}

TEST(EvalUserOpTest, SemijoinColumnarMatchesLegacy) {
  Instance db = JoinDb();
  const op::Registry& reg = op::Registry::Default();
  // Equality key alone; key + single-side filter; pure cross-side order
  // atom (no key — probe degrades to a filtered scan); constant atom.
  std::vector<ExprPtr> exprs = {
      reg.MakeOp("semijoin", {Rel("R", 2), Rel("S", 2)},
                 Condition::AttrCmp(1, CmpOp::kEq, 3))
          .value(),
      reg.MakeOp("semijoin", {Rel("R", 2), Rel("S", 2)},
                 Condition::And(Condition::AttrCmp(2, CmpOp::kEq, 3),
                                Condition::AttrConst(1, CmpOp::kGt,
                                                     Value(int64_t{1}))))
          .value(),
      reg.MakeOp("semijoin", {Rel("R", 2), Rel("S", 2)},
                 Condition::AttrCmp(1, CmpOp::kLt, 4))
          .value(),
      reg.MakeOp("semijoin", {Rel("R", 2), Rel("S", 2)},
                 Condition::AttrConst(4, CmpOp::kGe, Value(int64_t{5})))
          .value(),
  };
  for (const ExprPtr& e : exprs) ExpectColumnarMatchesLegacy(e, db, 1);
}

TEST(EvalUserOpTest, AntijoinColumnarMatchesLegacy) {
  Instance db = JoinDb();
  const op::Registry& reg = op::Registry::Default();
  std::vector<ExprPtr> exprs = {
      reg.MakeOp("antijoin", {Rel("R", 2), Rel("S", 2)},
                 Condition::AttrCmp(1, CmpOp::kEq, 3))
          .value(),
      // Left-filter atom false for some left rows: those rows match
      // nothing and MUST survive the anti-join (the pushed-down filter is
      // a conjunct of the match condition, not a pre-selection).
      reg.MakeOp("antijoin", {Rel("R", 2), Rel("S", 2)},
                 Condition::And(Condition::AttrCmp(1, CmpOp::kEq, 3),
                                Condition::AttrConst(2, CmpOp::kLt,
                                                     Value(int64_t{3}))))
          .value(),
      reg.MakeOp("antijoin", {Rel("R", 2), Rel("S", 2)},
                 Condition::AttrCmp(2, CmpOp::kGt, 4))
          .value(),
  };
  for (const ExprPtr& e : exprs) ExpectColumnarMatchesLegacy(e, db, 1);
  // Sanity beyond differential: semijoin ∪ antijoin partitions the left
  // side under any fixed condition.
  ExprPtr sj = reg.MakeOp("semijoin", {Rel("R", 2), Rel("S", 2)},
                          Condition::AttrCmp(1, CmpOp::kEq, 3))
                   .value();
  ExprPtr aj = reg.MakeOp("antijoin", {Rel("R", 2), Rel("S", 2)},
                          Condition::AttrCmp(1, CmpOp::kEq, 3))
                   .value();
  EvalResult both = RunEval(Union(sj, aj), db, reg, 1);
  EvalResult left = RunEval(Rel("R", 2), db, reg, 1);
  EXPECT_EQ(both.Fingerprint(), left.Fingerprint());
}

TEST(EvalUserOpTest, LojoinPadMintingOrderIsDeterministic) {
  Instance db = JoinDb();
  const op::Registry& reg = op::Registry::Default();
  ExprPtr lj = reg.MakeOp("lojoin", {Rel("R", 2), Rel("S", 2)},
                          Condition::AttrCmp(2, CmpOp::kEq, 3))
                   .value();
  ExpectColumnarMatchesLegacy(lj, db, 1);
  // The pad value "<null>" and Skolem terms both mint ids mid-evaluation;
  // interleaving them across lanes (lojoin's pad vs. an independent branch
  // minting terms concurrently) must not perturb the canonical result.
  ExprPtr mixed =
      Union(SkolemApp("h", {1}, lj),
            SkolemApp("g", {2}, Product(Rel("R", 2), Rel("S", 2))));
  ExpectColumnarMatchesLegacy(mixed, db, 1);
  // Pad rows really appear: (7,1) matches no S row on #2=#3.
  EvalResult out = RunEval(lj, db, reg, 1);
  bool padded = false;
  for (const Tuple& t : out.tuples()) {
    if (t.size() == 4 && CompareValues(t[2], op::NullValue()) == 0) {
      padded = true;
    }
  }
  EXPECT_TRUE(padded);
}

TEST(EvalUserOpTest, TransitiveClosureShapes) {
  const op::Registry& reg = op::Registry::Default();
  // Cycle (closure saturates), self-loops, a chain feeding the cycle, an
  // isolated edge — and the empty relation.
  Instance db;
  db.Set("E", {T({1, 2}), T({2, 3}), T({3, 1}), T({4, 4}), T({5, 6}),
               T({6, 1})});
  db.Set("Z", std::set<Tuple>{});
  ExpectColumnarMatchesLegacy(reg.MakeOp("tc", {Rel("E", 2)}).value(), db, 1);
  ExpectColumnarMatchesLegacy(reg.MakeOp("tc", {Rel("Z", 2)}).value(), db, 1);
  // Like the set-based oracle, tc ignores the node's condition.
  ExpectColumnarMatchesLegacy(
      reg.MakeOp("tc", {Rel("E", 2)}, Condition::AttrCmp(1, CmpOp::kEq, 2))
          .value(),
      db, 1);
  // Composed downstream of the closure: select + join over tc output.
  ExprPtr closure = reg.MakeOp("tc", {Rel("E", 2)}).value();
  ExpectColumnarMatchesLegacy(
      Select(Condition::AttrCmp(1, CmpOp::kEq, 2), closure), db, 1);
}

TEST(EvalUserOpTest, AllFourOpsInOneExpression) {
  Instance db = JoinDb();
  db.Set("E", {T({1, 2}), T({2, 3}), T({3, 1})});
  const op::Registry& reg = op::Registry::Default();
  ExprPtr sj = reg.MakeOp("semijoin", {Rel("R", 2), Rel("S", 2)},
                          Condition::AttrCmp(1, CmpOp::kEq, 3))
                   .value();
  ExprPtr aj = reg.MakeOp("antijoin", {Rel("R", 2), Rel("S", 2)},
                          Condition::AttrCmp(1, CmpOp::kEq, 3))
                   .value();
  ExprPtr lj = reg.MakeOp("lojoin", {sj, aj},
                          Condition::AttrCmp(2, CmpOp::kEq, 3))
                   .value();
  ExprPtr tc = reg.MakeOp("tc", {Rel("E", 2)}).value();
  ExprPtr e = Union(Project({1, 2}, lj), tc);
  ExpectColumnarMatchesLegacy(e, db, 4);
}

TEST(EvalUserOpTest, MixedColumnarAndLegacyRegistry) {
  // One registry holding the columnar extension ops PLUS a legacy-only op
  // (set-based `eval`, no `eval_columnar`): routing is per op, fallback
  // decode happens exactly once, and the lazily built active_domain is
  // served to the legacy hook.
  Instance db = JoinDb();
  op::Registry reg = op::Registry::Empty();
  op::RegisterExtraOps(&reg);
  op::OperatorDef ident;
  ident.name = "identset";
  ident.num_args = 1;
  ident.arity = [](const std::vector<int>& a) -> Result<int> {
    return a[0];
  };
  ident.polarity = {op::Polarity::kMonotone};
  ident.eval = [](const Expr&, const std::vector<const std::set<Tuple>*>& k,
                  const op::EvalContext& ctx) -> Result<std::set<Tuple>> {
    // The satellite fix: active_domain is built lazily for exactly this
    // path, and must still hold the instance's values.
    if (ctx.active_domain == nullptr ||
        ctx.active_domain->count(Value(int64_t{7})) == 0) {
      return Status::Internal("active_domain missing instance value");
    }
    return *k[0];
  };
  ASSERT_TRUE(reg.Register(std::move(ident)).ok());
  ExprPtr sj = reg.MakeOp("semijoin", {Rel("R", 2), Rel("S", 2)},
                          Condition::AttrCmp(1, CmpOp::kEq, 3))
                   .value();
  ExprPtr e = reg.MakeOp("identset", {sj}).value();
  EvalResult plain = RunEval(sj, db, reg, 1);
  for (int jobs : {1, 2, 8}) {
    EvalResult out = RunEval(e, db, reg, jobs);
    EXPECT_EQ(out.Fingerprint(), plain.Fingerprint()) << "jobs=" << jobs;
    EXPECT_EQ(out.stats.user_op_columnar, 1) << "jobs=" << jobs;
    EXPECT_EQ(out.stats.user_op_decode_fallback, 1) << "jobs=" << jobs;
  }
}

TEST(EvalUserOpTest, WrongArityColumnarOutputIsInvalidArgument) {
  // A kernel emitting the wrong row width must surface as the same clean
  // InvalidArgument the set path's FromSet guard produces — never a crash
  // in a downstream slot.
  Instance db = JoinDb();
  op::Registry reg = op::Registry::Empty();
  op::OperatorDef bad;
  bad.name = "badwidth";
  bad.num_args = 1;
  bad.arity = [](const std::vector<int>& a) -> Result<int> { return a[0]; };
  bad.polarity = {op::Polarity::kMonotone};
  bad.eval_columnar =
      [](const Expr&, const std::vector<const TupleTable*>& kids,
         const op::ColumnarContext&) -> Result<TupleTable> {
    return TupleTable(kids[0]->arity() + 1);  // one column too wide
  };
  ASSERT_TRUE(reg.Register(std::move(bad)).ok());
  ExprPtr e = reg.MakeOp("badwidth", {Rel("R", 2)}).value();
  EvalOptions opts;
  opts.registry = &reg;
  Result<EvalResult> r = EvaluateFull(e, db, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // A columnar-only op has no set-based hook for the nested-loop oracle.
  opts.force_nested_loop = true;
  Result<EvalResult> nested = EvaluateFull(e, db, opts);
  ASSERT_FALSE(nested.ok());
  EXPECT_EQ(nested.status().code(), StatusCode::kUnsupported);
}

TEST(EvalUserOpTest, StatsDeterministicAcrossLaneCounts) {
  Instance db = JoinDb();
  db.Set("E", {T({1, 2}), T({2, 3}), T({3, 1}), T({5, 6})});
  const op::Registry& reg = op::Registry::Default();
  ExprPtr e = Union(
      reg.MakeOp("semijoin", {Rel("R", 2), Rel("S", 2)},
                 Condition::AttrCmp(1, CmpOp::kEq, 3))
          .value(),
      reg.MakeOp("tc", {Rel("E", 2)}).value());
  EvalResult base = RunEval(e, db, reg, 1);
  EXPECT_EQ(base.stats.user_op_columnar, 2);
  EXPECT_EQ(base.stats.user_op_decode_fallback, 0);
  for (int jobs : {2, 8}) {
    EvalResult got = RunEval(e, db, reg, jobs);
    EXPECT_EQ(got.stats.ToString(), base.stats.ToString()) << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace mapcomp
