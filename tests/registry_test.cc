#include "src/op/registry.h"

#include <gtest/gtest.h>

#include "src/algebra/builders.h"
#include "src/compose/eliminate.h"
#include "src/compose/monotone.h"
#include "src/eval/evaluator.h"
#include "src/op/extra_ops.h"

namespace mapcomp {
namespace {

Tuple T(std::initializer_list<int64_t> vals) {
  Tuple t;
  for (int64_t v : vals) t.push_back(Value(v));
  return t;
}

TEST(RegistryTest, DefaultHasExtensionOps) {
  const op::Registry& reg = op::Registry::Default();
  EXPECT_NE(reg.Find("lojoin"), nullptr);
  EXPECT_NE(reg.Find("semijoin"), nullptr);
  EXPECT_NE(reg.Find("antijoin"), nullptr);
  EXPECT_NE(reg.Find("tc"), nullptr);
  EXPECT_EQ(reg.Find("nonsense"), nullptr);
}

TEST(RegistryTest, MakeOpValidatesArguments) {
  const op::Registry& reg = op::Registry::Default();
  EXPECT_FALSE(reg.MakeOp("nope", {Rel("R", 1)}).ok());
  EXPECT_FALSE(reg.MakeOp("semijoin", {Rel("R", 1)}).ok());  // needs 2 args
  EXPECT_FALSE(reg.MakeOp("tc", {Rel("R", 3)}).ok());        // needs binary
  ExprPtr e = reg.MakeOp("semijoin", {Rel("R", 2), Rel("S", 1)}).value();
  EXPECT_EQ(e->arity(), 2);  // semijoin keeps first argument's arity
}

TEST(RegistryTest, DuplicateRegistrationRejected) {
  op::Registry reg = op::Registry::Empty();
  op::OperatorDef def;
  def.name = "twice";
  def.num_args = 1;
  def.arity = [](const std::vector<int>& a) -> Result<int> { return a[0]; };
  ASSERT_TRUE(reg.Register(def).ok());
  EXPECT_FALSE(reg.Register(def).ok());
}

TEST(RegistryTest, LeftOuterJoinEval) {
  Instance db;
  db.Set("R", {T({1}), T({2})});
  db.Set("S", {T({1, 7})});
  const op::Registry& reg = op::Registry::Default();
  ExprPtr lo = reg.MakeOp("lojoin", {Rel("R", 1), Rel("S", 2)},
                          Condition::AttrCmp(1, CmpOp::kEq, 2))
                   .value();
  auto out = Evaluate(lo, db).value();
  ASSERT_EQ(out.size(), 2u);
  // Row 1 joins; row 2 is padded with nulls.
  bool found_padded = false;
  for (const Tuple& t : out) {
    if (CompareValues(t[0], Value(int64_t{2})) == 0) {
      EXPECT_EQ(CompareValues(t[1], op::NullValue()), 0);
      EXPECT_EQ(CompareValues(t[2], op::NullValue()), 0);
      found_padded = true;
    }
  }
  EXPECT_TRUE(found_padded);
}

TEST(RegistryTest, TransitiveClosureEval) {
  Instance db;
  db.Set("E", {T({1, 2}), T({2, 3}), T({3, 4})});
  const op::Registry& reg = op::Registry::Default();
  ExprPtr tc = reg.MakeOp("tc", {Rel("E", 2)}).value();
  auto out = Evaluate(tc, db).value();
  EXPECT_EQ(out.size(), 6u);  // all i<j pairs on the chain
  EXPECT_TRUE(out.count(T({1, 4})) > 0);
}

TEST(RegistryTest, AntijoinEval) {
  Instance db;
  db.Set("R", {T({1}), T({2})});
  db.Set("S", {T({1})});
  const op::Registry& reg = op::Registry::Default();
  ExprPtr aj = reg.MakeOp("antijoin", {Rel("R", 1), Rel("S", 1)},
                          Condition::AttrCmp(1, CmpOp::kEq, 2))
                   .value();
  auto out = Evaluate(aj, db).value();
  EXPECT_EQ(out, (std::set<Tuple>{T({2})}));
}

/// §"Extensibility and modularity": a user registers a brand-new operator
/// with polarity + normalization rules, and ELIMINATE handles it without
/// any change to the algorithm.
TEST(RegistryTest, UserOperatorWithNormalizationRulesComposes) {
  op::Registry reg = op::Registry::Empty();
  op::OperatorDef ident;
  ident.name = "ident";
  ident.num_args = 1;
  ident.arity = [](const std::vector<int>& a) -> Result<int> { return a[0]; };
  ident.polarity = {op::Polarity::kMonotone};
  // ident(E) ⊆ E3  ↔  E ⊆ E3, and E1 ⊆ ident(E)  ↔  E1 ⊆ E.
  ident.left_rule = [](const Constraint& c, const std::string&)
      -> std::optional<std::vector<Constraint>> {
    return std::vector<Constraint>{
        Constraint::Contain(c.lhs->child(0), c.rhs)};
  };
  ident.right_rule = [](const Constraint& c, const std::string&)
      -> std::optional<std::vector<Constraint>> {
    return std::vector<Constraint>{
        Constraint::Contain(c.lhs, c.rhs->child(0))};
  };
  ASSERT_TRUE(reg.Register(std::move(ident)).ok());

  ExprPtr ident_s = UserOpExpr("ident", {Rel("S", 1)}, 1);
  ConstraintSet cs{Constraint::Contain(ident_s, Rel("T", 1)),
                   Constraint::Contain(Rel("R", 1), ident_s)};
  EliminateOptions opts;
  opts.registry = &reg;
  EliminateOutcome out = Eliminate(cs, "S", 1, opts);
  ASSERT_TRUE(out.success) << out.failure_reason;
  ASSERT_EQ(out.constraints.size(), 1u);
  EXPECT_TRUE(ContainsRelation(out.constraints[0].lhs, "R"));
  EXPECT_TRUE(ContainsRelation(out.constraints[0].rhs, "T"));

  // Without the rules, the same elimination fails.
  op::Registry bare = op::Registry::Empty();
  op::OperatorDef plain;
  plain.name = "ident";
  plain.num_args = 1;
  plain.arity = [](const std::vector<int>& a) -> Result<int> { return a[0]; };
  plain.polarity = {op::Polarity::kMonotone};
  ASSERT_TRUE(bare.Register(std::move(plain)).ok());
  EliminateOptions bare_opts;
  bare_opts.registry = &bare;
  EXPECT_FALSE(Eliminate(cs, "S", 1, bare_opts).success);
}

TEST(RegistryTest, PolarityTableSizeValidated) {
  op::Registry reg = op::Registry::Empty();
  op::OperatorDef bad;
  bad.name = "bad";
  bad.num_args = 2;
  bad.arity = [](const std::vector<int>&) -> Result<int> { return 1; };
  bad.polarity = {op::Polarity::kMonotone};  // wrong size
  EXPECT_FALSE(reg.Register(std::move(bad)).ok());
}

}  // namespace
}  // namespace mapcomp
