// Classical relational-algebra laws, validated through the evaluator on
// random instances. These pin down the set semantics of §2 and double as an
// oracle for the evaluator itself.

#include <gtest/gtest.h>

#include <random>

#include "src/algebra/builders.h"
#include "src/eval/evaluator.h"
#include "src/eval/generator.h"

namespace mapcomp {
namespace {

class AlgebraLawsTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(sig_.AddRelation("A", 2).ok());
    ASSERT_TRUE(sig_.AddRelation("B", 2).ok());
    ASSERT_TRUE(sig_.AddRelation("C", 2).ok());
    rng_.seed(GetParam());
  }

  void ExpectEqualOn(const ExprPtr& lhs, const ExprPtr& rhs, int rounds = 12) {
    GenOptions gen;
    gen.domain_size = 3;
    gen.max_tuples_per_rel = 4;
    gen.include_strings = true;
    for (int i = 0; i < rounds; ++i) {
      Instance db = RandomInstance(sig_, &rng_, gen);
      auto l = Evaluate(lhs, db);
      auto r = Evaluate(rhs, db);
      ASSERT_TRUE(l.ok());
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(*l, *r) << db.ToString();
    }
  }

  Signature sig_;
  std::mt19937_64 rng_;
};

TEST_P(AlgebraLawsTest, UnionCommutativeAssociative) {
  ExprPtr a = Rel("A", 2), b = Rel("B", 2), c = Rel("C", 2);
  ExpectEqualOn(Union(a, b), Union(b, a));
  ExpectEqualOn(Union(Union(a, b), c), Union(a, Union(b, c)));
}

TEST_P(AlgebraLawsTest, IntersectionViaDifference) {
  // A ∩ B = A − (A − B).
  ExprPtr a = Rel("A", 2), b = Rel("B", 2);
  ExpectEqualOn(Intersect(a, b), Difference(a, Difference(a, b)));
}

TEST_P(AlgebraLawsTest, DeMorganWithinUniverse) {
  // A − (B ∪ C) = (A − B) ∩ (A − C).
  ExprPtr a = Rel("A", 2), b = Rel("B", 2), c = Rel("C", 2);
  ExpectEqualOn(Difference(a, Union(b, c)),
                Intersect(Difference(a, b), Difference(a, c)));
  // A − (B ∩ C) = (A − B) ∪ (A − C).
  ExpectEqualOn(Difference(a, Intersect(b, c)),
                Union(Difference(a, b), Difference(a, c)));
}

TEST_P(AlgebraLawsTest, ProductDistributesOverUnion) {
  ExprPtr a = Rel("A", 2), b = Rel("B", 2), c = Rel("C", 2);
  ExpectEqualOn(Product(Union(a, b), c),
                Union(Product(a, c), Product(b, c)));
}

TEST_P(AlgebraLawsTest, SelectionCommutesAndSplits) {
  ExprPtr a = Rel("A", 2);
  Condition c1 = Condition::AttrCmp(1, CmpOp::kLe, 2);
  Condition c2 = Condition::AttrConst(1, CmpOp::kNe, int64_t{0});
  ExpectEqualOn(Select(c1, Select(c2, a)), Select(c2, Select(c1, a)));
  ExpectEqualOn(Select(Condition::And(c1, c2), a), Select(c1, Select(c2, a)));
  // σ_{c1 ∨ c2}(A) = σ_{c1}(A) ∪ σ_{c2}(A).
  ExpectEqualOn(Select(Condition::Or(c1, c2), a),
                Union(Select(c1, a), Select(c2, a)));
  // σ_{¬c1}(A) = A − σ_{c1}(A).
  ExpectEqualOn(Select(Condition::Not(c1), a),
                Difference(a, Select(c1, a)));
}

TEST_P(AlgebraLawsTest, SelectionDistributesOverSetOps) {
  ExprPtr a = Rel("A", 2), b = Rel("B", 2);
  Condition c = Condition::AttrCmp(1, CmpOp::kEq, 2);
  ExpectEqualOn(Select(c, Union(a, b)), Union(Select(c, a), Select(c, b)));
  ExpectEqualOn(Select(c, Difference(a, b)),
                Difference(Select(c, a), Select(c, b)));
  ExpectEqualOn(Select(c, Intersect(a, b)),
                Intersect(Select(c, a), Select(c, b)));
}

TEST_P(AlgebraLawsTest, ProjectionDistributesOverUnionOnly) {
  ExprPtr a = Rel("A", 2), b = Rel("B", 2);
  ExpectEqualOn(Project({1}, Union(a, b)),
                Union(Project({1}, a), Project({1}, b)));
}

TEST_P(AlgebraLawsTest, SelectionPushesThroughProduct) {
  // σ on the left columns commutes with ×.
  ExprPtr a = Rel("A", 2), b = Rel("B", 2);
  Condition c = Condition::AttrCmp(1, CmpOp::kEq, 2);
  ExpectEqualOn(Select(c, Product(a, b)), Product(Select(c, a), b));
  // σ on the right columns, shifted.
  ExpectEqualOn(Select(c.ShiftAttrs(2), Product(a, b)),
                Product(a, Select(c, b)));
}

TEST_P(AlgebraLawsTest, JoinAsDerivedOperator) {
  // EquiJoin(A,B, 2=1) equals its π σ × definition.
  ExprPtr manual = Project(
      {1, 2, 4},
      Select(Condition::AttrCmp(2, CmpOp::kEq, 3),
             Product(Rel("A", 2), Rel("B", 2))));
  ExpectEqualOn(EquiJoin(Rel("A", 2), Rel("B", 2), {{2, 1}}), manual);
}

TEST_P(AlgebraLawsTest, DomainAbsorbs) {
  // Semantically: A ∪ D^2 = D^2 and A ∩ D^2 = A (the §3.4.3 identities).
  ExprPtr a = Rel("A", 2);
  ExpectEqualOn(Union(a, Dom(2)), Dom(2), 4);
  ExpectEqualOn(Intersect(a, Dom(2)), a, 4);
  ExpectEqualOn(Difference(a, Dom(2)), EmptyRel(2), 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraLawsTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace mapcomp
