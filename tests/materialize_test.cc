#include "src/eval/materialize.h"

#include <gtest/gtest.h>

#include "src/algebra/builders.h"
#include "src/compose/compose.h"
#include "src/op/registry.h"

namespace mapcomp {
namespace {

Tuple T(std::initializer_list<int64_t> vals) {
  Tuple t;
  for (int64_t v : vals) t.push_back(Value(v));
  return t;
}

TEST(MaterializeTest, SimpleLowerBoundPopulation) {
  // R ⊆ S: minimal S is exactly R.
  ConstraintSet cs{Constraint::Contain(Rel("R", 1), Rel("S", 1))};
  Instance input;
  input.Set("R", {T({1}), T({2})});
  MaterializeResult res = PopulateResiduals(input, cs, {"S"}).value();
  EXPECT_TRUE(res.satisfied);
  EXPECT_EQ(res.instance.Get("S"), input.Get("R"));
}

TEST(MaterializeTest, EqualityDefinitionPopulated) {
  // S = π1(R): evaluated directly.
  ConstraintSet cs{
      Constraint::Equal(Rel("S", 1), Project({1}, Rel("R", 2)))};
  Instance input;
  input.Set("R", {T({1, 5}), T({2, 6})});
  MaterializeResult res = PopulateResiduals(input, cs, {"S"}).value();
  EXPECT_TRUE(res.satisfied);
  EXPECT_EQ(res.instance.Get("S"), (std::set<Tuple>{T({1}), T({2})}));
}

TEST(MaterializeTest, PaperTransitiveClosureExample) {
  // §1.3: R ⊆ S, S = tc(S), S ⊆ T — S cannot be eliminated, but is
  // "definable as a recursive view on R": populate S as tc(R) and check
  // which T satisfy the composed mapping.
  const op::Registry& reg = op::Registry::Default();
  ExprPtr tc_s = reg.MakeOp("tc", {Rel("S", 2)}).value();
  ConstraintSet cs{Constraint::Contain(Rel("R", 2), Rel("S", 2)),
                   Constraint::Equal(Rel("S", 2), tc_s),
                   Constraint::Contain(Rel("S", 2), Rel("T", 2))};
  Instance input;
  input.Set("R", {T({1, 2}), T({2, 3})});
  // T contains the closure: satisfiable.
  input.Set("T", {T({1, 2}), T({2, 3}), T({1, 3})});
  MaterializeResult res = PopulateResiduals(input, cs, {"S"}).value();
  EXPECT_TRUE(res.satisfied);
  EXPECT_EQ(res.instance.Get("S"),
            (std::set<Tuple>{T({1, 2}), T({2, 3}), T({1, 3})}));
  EXPECT_GT(res.iterations, 1);  // the fixpoint actually iterated

  // T missing the transitive edge: correctly reported unsatisfied.
  Instance bad = input;
  bad.Set("T", {T({1, 2}), T({2, 3})});
  MaterializeResult res_bad = PopulateResiduals(bad, cs, {"S"}).value();
  EXPECT_FALSE(res_bad.satisfied);
}

TEST(MaterializeTest, ChainedResiduals) {
  // R ⊆ S1, S1 ⊆ S2: populations propagate through residuals.
  ConstraintSet cs{Constraint::Contain(Rel("R", 1), Rel("S1", 1)),
                   Constraint::Contain(Rel("S1", 1), Rel("S2", 1))};
  Instance input;
  input.Set("R", {T({7})});
  MaterializeResult res =
      PopulateResiduals(input, cs, {"S1", "S2"}).value();
  EXPECT_TRUE(res.satisfied);
  EXPECT_EQ(res.instance.Get("S2"), (std::set<Tuple>{T({7})}));
}

TEST(MaterializeTest, EndToEndWithCompose) {
  // Compose a problem where one symbol survives, then make the composed
  // mapping usable by populating the survivor (the paper's recipe).
  CompositionProblem p;
  ASSERT_TRUE(p.sigma1.AddRelation("R", 2).ok());
  ASSERT_TRUE(p.sigma2.AddRelation("S", 2).ok());
  ASSERT_TRUE(p.sigma3.AddRelation("T", 2).ok());
  const op::Registry& reg = op::Registry::Default();
  ExprPtr tc_s = reg.MakeOp("tc", {Rel("S", 2)}).value();
  p.sigma12 = {Constraint::Contain(Rel("R", 2), Rel("S", 2))};
  p.sigma23 = {Constraint::Equal(Rel("S", 2), tc_s),
               Constraint::Contain(Rel("S", 2), Rel("T", 2))};
  CompositionResult res = Compose(p);
  ASSERT_EQ(res.residual_sigma2, (std::vector<std::string>{"S"}));

  Instance db;
  db.Set("R", {T({1, 2})});
  db.Set("T", {T({1, 2})});
  MaterializeResult mat =
      PopulateResiduals(db, res.constraints, res.residual_sigma2).value();
  EXPECT_TRUE(mat.satisfied);
}

TEST(MaterializeTest, NoResidualsIsIdentity) {
  ConstraintSet cs{Constraint::Contain(Rel("R", 1), Rel("T", 1))};
  Instance input;
  input.Set("R", {T({1})});
  input.Set("T", {T({1})});
  MaterializeResult res = PopulateResiduals(input, cs, {}).value();
  EXPECT_TRUE(res.satisfied);
  EXPECT_TRUE(res.instance == input);
}

}  // namespace
}  // namespace mapcomp
