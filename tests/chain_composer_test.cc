// Tests for incremental chain recomposition: warm (prefix-cached) results
// byte-identical to cold recomposition at any job count, exact suffix
// recompute counts after editing link k, invalidation when a prefix link
// changes, byte-capacity eviction of prefix states, and a concurrent
// editors-plus-readers stress run (executed under ThreadSanitizer in CI).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/chain_composer.h"
#include "src/simulator/simulator.h"

namespace mapcomp {
namespace runtime {
namespace {

// Keeps its simulator so appended versions draw fresh relation names
// (NameAllocator counters are per-simulator).
struct TestChain {
  explicit TestChain(uint64_t seed)
      : simulator(sim::SimulatorOptions{}, seed) {}

  void Append() {
    sim::FullEdit edit = simulator.ApplyRandomEdit(tail);
    Mapping m;
    m.input = tail.ToSignature();
    m.output = edit.new_schema.ToSignature();
    m.constraints = edit.constraints;
    chain.push_back(std::move(m));
    tail = std::move(edit.new_schema);
  }

  sim::EvolutionSimulator simulator;
  sim::SimSchema tail;
  std::vector<Mapping> chain;
};

TestChain BuildChain(int depth, uint64_t seed) {
  TestChain out(seed);
  out.tail = out.simulator.RandomSchema(3);
  for (int i = 0; i < depth; ++i) out.Append();
  return out;
}

// A registry-style revision: byte-different mapping, same endpoints.
void ReviseLink(Mapping* m) {
  ASSERT_FALSE(m->constraints.empty());
  if (m->constraints.size() >= 2) {
    std::rotate(m->constraints.begin(), m->constraints.begin() + 1,
                m->constraints.end());
  } else {
    m->constraints.push_back(m->constraints.front());
  }
}

TEST(ChainComposerTest, WarmEqualsColdByteForByteAtJobs1And8) {
  TestChain tc = BuildChain(/*depth=*/6, /*seed=*/11);
  ChainResult cold = ComposeChainCold(tc.chain).value();
  ASSERT_FALSE(cold.fingerprint.empty());
  ASSERT_FALSE(cold.result_fingerprint.empty());

  for (int jobs : {1, 8}) {
    ComposeServiceOptions service_options;
    service_options.compose.elim_jobs = jobs;
    ComposeService service(service_options);
    ChainComposer composer(&service);

    // Cold walk, then a fully warm walk: both must match the no-service
    // oracle byte for byte — fingerprint, final step result fingerprint,
    // residuals and warnings included (the fingerprint serializes them).
    ChainResult first = composer.ComposeChain(tc.chain).value();
    ChainResult second = composer.ComposeChain(tc.chain).value();
    EXPECT_EQ(first.fingerprint, cold.fingerprint) << "jobs=" << jobs;
    EXPECT_EQ(first.result_fingerprint, cold.result_fingerprint);
    EXPECT_EQ(second.fingerprint, cold.fingerprint);
    EXPECT_EQ(second.result_fingerprint, cold.result_fingerprint);
    EXPECT_EQ(first.steps_composed, 5);
    EXPECT_EQ(first.prefix_hits, 0);
    EXPECT_EQ(second.steps_composed, 0);  // every prefix served
    EXPECT_EQ(second.prefix_hits, 5);
  }
}

TEST(ChainComposerTest, EditingLinkKRecomposesExactlyTheSuffix) {
  constexpr int kDepth = 8;
  for (int edited : {0, 1, 4, 6}) {
    TestChain tc = BuildChain(kDepth, /*seed=*/23);
    ComposeService service;
    ChainComposer composer(&service);
    composer.ComposeChain(tc.chain).value();  // warm the prefix cache

    ReviseLink(&tc.chain[static_cast<size_t>(edited)]);
    ServiceStats before = service.Stats();
    ChainResult warm = composer.ComposeChain(tc.chain).value();

    // 0-based link `edited` ⇒ prefixes 1..edited-1 unchanged: exactly
    // max(edited-1, 0) hits and (kDepth-1) - hits suffix recomputes.
    int expect_hits = edited > 0 ? edited - 1 : 0;
    EXPECT_EQ(warm.prefix_hits, expect_hits) << "edited=" << edited;
    EXPECT_EQ(warm.steps_composed, kDepth - 1 - expect_hits);

    // The same split is witnessed on the service's chain counters.
    ServiceStats after = service.Stats();
    EXPECT_EQ(after.chain_prefix_hits - before.chain_prefix_hits,
              static_cast<uint64_t>(expect_hits));
    EXPECT_EQ(after.chain_prefix_misses - before.chain_prefix_misses,
              static_cast<uint64_t>(kDepth - 1 - expect_hits));

    // Never a stale suffix: the incremental result equals a cold one.
    ChainResult cold = ComposeChainCold(tc.chain).value();
    EXPECT_EQ(warm.fingerprint, cold.fingerprint) << "edited=" << edited;
    EXPECT_EQ(warm.result_fingerprint, cold.result_fingerprint);
  }
}

TEST(ChainComposerTest, AppendCostsExactlyOneComposition) {
  TestChain tc = BuildChain(/*depth=*/5, /*seed=*/31);
  ComposeService service;
  ChainComposer composer(&service);
  composer.ComposeChain(tc.chain).value();

  // Append one more version to the chain tail (same simulator, so the new
  // version's relation names stay globally fresh).
  tc.Append();

  ChainResult warm = composer.ComposeChain(tc.chain).value();
  EXPECT_EQ(warm.prefix_hits, 4);     // every old prefix reused
  EXPECT_EQ(warm.steps_composed, 1);  // only the new link composed
  EXPECT_EQ(warm.fingerprint, ComposeChainCold(tc.chain).value().fingerprint);
}

TEST(ChainComposerTest, SingleMappingChainComposesNothing) {
  TestChain tc = BuildChain(/*depth=*/1, /*seed=*/5);
  ComposeService service;
  ChainComposer composer(&service);
  ChainResult warm = composer.ComposeChain(tc.chain).value();
  ChainResult cold = ComposeChainCold(tc.chain).value();
  EXPECT_EQ(warm.depth, 1);
  EXPECT_EQ(warm.steps_composed, 0);
  EXPECT_TRUE(warm.result_fingerprint.empty());
  EXPECT_EQ(warm.fingerprint, cold.fingerprint);
  EXPECT_EQ(warm.mapping.constraints.size(), tc.chain[0].constraints.size());
}

TEST(ChainComposerTest, RejectsEmptyAndMismatchedChains) {
  ComposeService service;
  ChainComposer composer(&service);
  EXPECT_FALSE(composer.ComposeChain({}).ok());

  // Two independently generated mappings don't share a boundary signature.
  TestChain a = BuildChain(/*depth=*/1, /*seed=*/7);
  TestChain b = BuildChain(/*depth=*/1, /*seed=*/8);
  std::vector<Mapping> mismatched = {a.chain[0], b.chain[0]};
  Result<ChainResult> res = composer.ComposeChain(mismatched);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.status().ToString().find("chain link"), std::string::npos);
}

TEST(ChainComposerTest, OptionsParticipateInPrefixKeys) {
  TestChain tc = BuildChain(/*depth=*/4, /*seed=*/13);
  ComposeService service;
  ChainComposer composer(&service);
  ComposeOptions simplified;
  ComposeOptions raw;
  raw.eliminate.enable_unfold = false;
  raw.eliminate.enable_left_compose = false;
  raw.eliminate.enable_right_compose = false;

  ChainResult a = composer.ComposeChain(tc.chain, simplified).value();
  // Different options must not reuse the other variant's prefixes …
  ChainResult b = composer.ComposeChain(tc.chain, raw).value();
  EXPECT_EQ(b.prefix_hits, 0);
  EXPECT_EQ(b.steps_composed, 3);
  EXPECT_NE(a.fingerprint, b.fingerprint);
  // … and each variant matches its own cold oracle.
  EXPECT_EQ(a.fingerprint, ComposeChainCold(tc.chain, simplified).value().fingerprint);
  EXPECT_EQ(b.fingerprint, ComposeChainCold(tc.chain, raw).value().fingerprint);
}

TEST(ChainComposerTest, DisabledCacheRecomposesEveryWalk) {
  TestChain tc = BuildChain(/*depth=*/4, /*seed=*/17);
  ComposeService service;
  ChainComposerOptions options;
  options.cache_capacity = 0;
  ChainComposer composer(&service, options);
  for (int i = 0; i < 2; ++i) {
    ChainResult r = composer.ComposeChain(tc.chain).value();
    EXPECT_EQ(r.prefix_hits, 0);
    EXPECT_EQ(r.steps_composed, 3);
  }
  ChainStats stats = composer.Stats();
  EXPECT_EQ(stats.prefix_hits, 0u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.cache_bytes, 0u);
}

TEST(ChainComposerTest, ByteCapacityEvictsPrefixStates) {
  TestChain tc = BuildChain(/*depth=*/6, /*seed=*/19);

  // Measure the unbounded footprint first.
  ComposeService probe_service;
  ChainComposer probe(&probe_service);
  probe.ComposeChain(tc.chain).value();
  ChainStats unbounded = probe.Stats();
  ASSERT_GT(unbounded.cache_bytes, 0u);
  ASSERT_EQ(unbounded.entries, 5u);

  // Then bound the prefix cache below it: states must be evicted, the
  // byte bound must hold, and results must stay correct (just slower).
  ComposeService service;
  ChainComposerOptions options;
  options.cache_bytes_capacity = static_cast<size_t>(unbounded.cache_bytes / 2);
  ChainComposer composer(&service, options);
  ChainResult r1 = composer.ComposeChain(tc.chain).value();
  ChainResult r2 = composer.ComposeChain(tc.chain).value();
  ChainStats stats = composer.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.cache_bytes, options.cache_bytes_capacity);
  EXPECT_GE(stats.cache_bytes_peak, stats.cache_bytes);
  EXPECT_EQ(stats.entries, stats.prefix_misses - stats.evictions);
  EXPECT_EQ(r1.fingerprint, r2.fingerprint);
  EXPECT_EQ(r1.fingerprint, ComposeChainCold(tc.chain).value().fingerprint);
  // The truncated cache costs recomputation, never staleness.
  EXPECT_GT(r2.steps_composed, 0);
}

TEST(ChainComposerTest, ConcurrentEditorsAndReadersStayDeterministic) {
  // One service + one composer shared by every thread; chain "generations"
  // simulate an editor revising links over time while readers recompose.
  // Every warm result must match the per-generation cold oracle. Run
  // under TSan in CI.
  constexpr int kDepth = 6;
  constexpr int kGenerations = 5;
  std::vector<std::vector<Mapping>> generations;
  std::vector<std::string> oracles;
  TestChain tc = BuildChain(kDepth, /*seed=*/41);
  generations.push_back(tc.chain);
  oracles.push_back(ComposeChainCold(tc.chain).value().fingerprint);
  for (int g = 1; g < kGenerations; ++g) {
    std::vector<Mapping> next = generations.back();
    ReviseLink(&next[static_cast<size_t>(g % kDepth)]);
    oracles.push_back(ComposeChainCold(next).value().fingerprint);
    generations.push_back(std::move(next));
  }

  ComposeServiceOptions service_options;
  service_options.compose.elim_jobs = 2;
  ComposeService service(service_options);
  ChainComposer composer(&service);

  constexpr int kThreads = 6;
  constexpr int kReps = 3;
  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < kReps; ++rep) {
        for (int g = 0; g < kGenerations; ++g) {
          // Stagger so threads race on different generations.
          int gen = (g + t) % kGenerations;
          Result<ChainResult> res =
              composer.ComposeChain(generations[static_cast<size_t>(gen)]);
          if (!res.ok()) {
            errors[t] = res.status().ToString();
            return;
          }
          if (res.value().fingerprint !=
              oracles[static_cast<size_t>(gen)]) {
            errors[t] = "fingerprint mismatch on generation " +
                        std::to_string(gen);
            return;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const std::string& e : errors) EXPECT_EQ(e, "");

  // Counters balance: every walk accounted as hits + composes.
  ChainStats stats = composer.Stats();
  EXPECT_EQ(stats.prefix_hits + stats.prefix_misses,
            static_cast<uint64_t>(kThreads * kReps * kGenerations) *
                (kDepth - 1));
  EXPECT_EQ(service.Stats().in_flight, 0);
}

}  // namespace
}  // namespace runtime
}  // namespace mapcomp
