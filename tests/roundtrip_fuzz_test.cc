// Randomized print→parse round-trip: any expression the builders can
// construct must re-parse from its printed form to a structurally identical
// expression. This pins the printer and parser to each other across the
// whole grammar, including user-defined operators and Skolem nodes.

#include <gtest/gtest.h>

#include <random>

#include "src/algebra/builders.h"
#include "src/algebra/print.h"
#include "src/parser/parser.h"

namespace mapcomp {
namespace {

struct Gen {
  std::mt19937_64 rng;

  int Int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  }

  Condition RandomCondition(int arity, int depth) {
    if (depth == 0 || arity == 0) {
      switch (Int(0, 3)) {
        case 0:
          return Condition::True();
        case 1:
          return arity >= 2
                     ? Condition::AttrCmp(Int(1, arity),
                                          static_cast<CmpOp>(Int(0, 5)),
                                          Int(1, arity))
                     : Condition::AttrConst(1, CmpOp::kEq, int64_t{Int(0, 9)});
        case 2:
          return Condition::AttrConst(Int(1, arity),
                                      static_cast<CmpOp>(Int(0, 5)),
                                      Value(int64_t{Int(0, 9)}));
        default:
          return Condition::AttrConst(Int(1, arity), CmpOp::kNe,
                                      Value(std::string("str")));
      }
    }
    switch (Int(0, 2)) {
      case 0:
        return Condition::And(RandomCondition(arity, depth - 1),
                              RandomCondition(arity, depth - 1));
      case 1:
        return Condition::Or(RandomCondition(arity, depth - 1),
                             RandomCondition(arity, depth - 1));
      default:
        return Condition::Not(RandomCondition(arity, depth - 1));
    }
  }

  ExprPtr RandomExpr(int arity, int depth) {
    if (depth == 0) {
      switch (Int(0, 3)) {
        case 0:
          return Rel("R" + std::to_string(arity), arity);
        case 1:
          return Dom(arity);
        case 2:
          return EmptyRel(arity);
        default: {
          std::vector<Tuple> tuples;
          int n = Int(0, 2);
          for (int i = 0; i < n; ++i) {
            Tuple t;
            for (int j = 0; j < arity; ++j) {
              t.push_back(Int(0, 1) == 0
                              ? Value(int64_t{Int(0, 9)})
                              : Value(std::string("s" + std::to_string(j))));
            }
            tuples.push_back(std::move(t));
          }
          return Lit(arity, std::move(tuples));
        }
      }
    }
    switch (Int(0, 7)) {
      case 0:
        return Union(RandomExpr(arity, depth - 1),
                     RandomExpr(arity, depth - 1));
      case 1:
        return Intersect(RandomExpr(arity, depth - 1),
                         RandomExpr(arity, depth - 1));
      case 2:
        return Difference(RandomExpr(arity, depth - 1),
                          RandomExpr(arity, depth - 1));
      case 3: {
        if (arity < 2) break;
        int left = Int(1, arity - 1);
        return Product(RandomExpr(left, depth - 1),
                       RandomExpr(arity - left, depth - 1));
      }
      case 4: {
        ExprPtr inner = RandomExpr(arity, depth - 1);
        return Select(RandomCondition(arity, 2), std::move(inner));
      }
      case 5: {
        int inner_arity = Int(arity, arity + 2);
        ExprPtr inner = RandomExpr(inner_arity, depth - 1);
        std::vector<int> idx;
        for (int i = 0; i < arity; ++i) idx.push_back(Int(1, inner_arity));
        return Project(std::move(idx), std::move(inner));
      }
      case 6: {
        if (arity < 2) break;
        ExprPtr inner = RandomExpr(arity - 1, depth - 1);
        std::vector<int> args;
        int n = Int(0, arity - 1);
        for (int i = 0; i < n; ++i) args.push_back(Int(1, arity - 1));
        return SkolemApp("f" + std::to_string(Int(0, 3)), std::move(args),
                         std::move(inner));
      }
      default: {
        // User-defined operators.
        if (Int(0, 1) == 0 && arity == 2) {
          return registry_->MakeOp("tc", {RandomExpr(2, depth - 1)}).value();
        }
        ExprPtr a = RandomExpr(arity, depth - 1);
        ExprPtr b = RandomExpr(Int(1, 2), depth - 1);
        int both = a->arity() + b->arity();
        return registry_
            ->MakeOp("semijoin", {std::move(a), std::move(b)},
                     RandomCondition(both, 1))
            .value();
      }
    }
    return RandomExpr(arity, 0);
  }

  const op::Registry* registry_ = &op::Registry::Default();
};

class RoundTripFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripFuzzTest, PrintParseIsIdentity) {
  Gen gen;
  gen.rng.seed(GetParam());
  Parser parser;
  Signature sig;
  for (int a = 1; a <= 12; ++a) {
    ASSERT_TRUE(sig.AddRelation("R" + std::to_string(a), a).ok());
  }
  for (int round = 0; round < 40; ++round) {
    ExprPtr e = gen.RandomExpr(gen.Int(1, 3), 3);
    std::string text = ExprToString(e);
    Result<ExprPtr> parsed = parser.ParseExpr(text, sig);
    ASSERT_TRUE(parsed.ok()) << text << "\n" << parsed.status().ToString();
    EXPECT_TRUE(ExprEquals(e, *parsed))
        << "original: " << text
        << "\nreparsed: " << ExprToString(*parsed);
  }
}

TEST_P(RoundTripFuzzTest, ConstraintRoundTrip) {
  Gen gen;
  gen.rng.seed(GetParam() * 31 + 7);
  Parser parser;
  Signature sig;
  for (int a = 1; a <= 12; ++a) {
    ASSERT_TRUE(sig.AddRelation("R" + std::to_string(a), a).ok());
  }
  for (int round = 0; round < 20; ++round) {
    int arity = gen.Int(1, 3);
    Constraint c = gen.Int(0, 1) == 0
                       ? Constraint::Contain(gen.RandomExpr(arity, 2),
                                             gen.RandomExpr(arity, 2))
                       : Constraint::Equal(gen.RandomExpr(arity, 2),
                                           gen.RandomExpr(arity, 2));
    Result<Constraint> parsed = parser.ParseConstraint(c.ToString(), sig);
    ASSERT_TRUE(parsed.ok()) << c.ToString();
    EXPECT_TRUE(ConstraintEquals(c, *parsed)) << c.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace mapcomp
