// Determinism, memoization and stress coverage of the parallel sharded
// evaluator: results and fingerprints must be byte-identical at any job
// count, shared DAG subtrees must evaluate once, and guard exhaustion must
// surface as an error — never a hang — under parallel lanes.

#include <gtest/gtest.h>

#include <random>
#include <thread>
#include <vector>

#include "src/algebra/builders.h"
#include "src/compose/compose.h"
#include "src/eval/checker.h"
#include "src/eval/evaluator.h"
#include "src/eval/generator.h"
#include "src/parser/parser.h"
#include "src/simulator/scenarios.h"
#include "src/testdata/literature_suite.h"

namespace mapcomp {
namespace {

Instance BigInstance(int tuples, int domain, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> val(0, domain - 1);
  Instance db;
  std::set<Tuple> r, s;
  for (int i = 0; i < tuples; ++i) {
    r.insert(Tuple{Value(val(rng)), Value(val(rng))});
    s.insert(Tuple{Value(val(rng)), Value(val(rng))});
  }
  db.Set("R", std::move(r));
  db.Set("S", std::move(s));
  return db;
}

/// Evaluates `e` at several job counts with a tiny sharding threshold (so
/// the parallel paths actually engage) and asserts tuples, fingerprint and
/// stats all match the sequential default-threshold evaluation.
void ExpectJobsInvariant(const ExprPtr& e, const Instance& db) {
  EvalOptions sequential;  // jobs = 1, default threshold
  Result<EvalResult> base = EvaluateFull(e, db, sequential);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  for (int jobs : {1, 2, 8}) {
    EvalOptions opts;
    opts.jobs = jobs;
    opts.parallel_threshold = 4;
    Result<EvalResult> got = EvaluateFull(e, db, opts);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->tuples(), base->tuples()) << "jobs=" << jobs;
    EXPECT_EQ(got->Fingerprint(), base->Fingerprint()) << "jobs=" << jobs;
    // Stats are lane-count-independent by design (eligibility is counted,
    // not lane usage) — so jobs=1 and jobs=8 agree with each other, though
    // not with the default-threshold baseline.
    EvalOptions jobs1 = opts;
    jobs1.jobs = 1;
    Result<EvalResult> seq = EvaluateFull(e, db, jobs1);
    ASSERT_TRUE(seq.ok());
    EXPECT_EQ(got->stats.nodes_evaluated, seq->stats.nodes_evaluated);
    EXPECT_EQ(got->stats.memo_hits, seq->stats.memo_hits);
    EXPECT_EQ(got->stats.sharded_nodes, seq->stats.sharded_nodes);
    EXPECT_EQ(got->stats.tuples_produced, seq->stats.tuples_produced);
  }
}

TEST(EvalParallelTest, ShardedOperatorsMatchSequential) {
  Instance db = BigInstance(300, 40, 1);
  ExprPtr r = Rel("R", 2), s = Rel("S", 2);
  ExpectJobsInvariant(Union(r, s), db);
  ExpectJobsInvariant(Intersect(r, s), db);
  ExpectJobsInvariant(Difference(r, s), db);
  ExpectJobsInvariant(Project({2, 1}, r), db);
  ExpectJobsInvariant(
      Project({1, 4}, Select(Condition::AttrCmp(2, CmpOp::kEq, 3),
                             Product(r, s))),
      db);
  ExpectJobsInvariant(Dom(2), db);
  EvalOptions sk;
  sk.skolem_mode = SkolemEvalMode::kInjectiveTerms;
  sk.jobs = 8;
  sk.parallel_threshold = 4;
  Result<EvalResult> skolem_par =
      EvaluateFull(SkolemApp("f", {1}, r), db, sk);
  sk.jobs = 1;
  sk.parallel_threshold = 4096;
  Result<EvalResult> skolem_seq =
      EvaluateFull(SkolemApp("f", {1}, r), db, sk);
  ASSERT_TRUE(skolem_par.ok());
  ASSERT_TRUE(skolem_seq.ok());
  EXPECT_EQ(skolem_par->Fingerprint(), skolem_seq->Fingerprint());
}

TEST(EvalParallelTest, LiteratureSuiteFingerprintsJobs1EqualsJobs8) {
  Parser parser;
  for (const testdata::LiteratureProblem& lit : testdata::LiteratureSuite()) {
    CompositionProblem problem = parser.ParseProblem(lit.text).value();
    CompositionResult composed = Compose(problem);
    ConstraintSet original = problem.sigma12;
    original.insert(original.end(), problem.sigma23.begin(),
                    problem.sigma23.end());
    std::mt19937_64 rng(lit.name[0] + 977);
    Instance inst = RepairTowards(
        RandomInstanceOver(
            {&problem.sigma1, &problem.sigma2, &problem.sigma3}, &rng),
        original);
    ConstraintSet all = original;
    all.insert(all.end(), composed.constraints.begin(),
               composed.constraints.end());
    for (const Constraint& c : all) {
      for (const ExprPtr& side : {c.lhs, c.rhs}) {
        EvalOptions opts;
        opts.skolem_mode = SkolemEvalMode::kInjectiveTerms;
        opts.extra_constants = CollectConstants(all);
        opts.parallel_threshold = 2;
        opts.jobs = 1;
        Result<EvalResult> a = EvaluateFull(side, inst, opts);
        opts.jobs = 8;
        Result<EvalResult> b = EvaluateFull(side, inst, opts);
        ASSERT_EQ(a.ok(), b.ok()) << lit.name;
        if (!a.ok()) continue;  // e.g. D^r guard — same status both ways
        EXPECT_EQ(a->Fingerprint(), b->Fingerprint()) << lit.name;
      }
    }
  }
}

TEST(EvalParallelTest, MemoHitWitnessOnDuplicatedSubtree) {
  Instance db = BigInstance(50, 12, 2);
  // A shared join subtree duplicated 2^6 times in the tree reading: the
  // interner collapses every level to one physical node, and the memo
  // evaluates the join exactly once.
  ExprPtr join = Project(
      {1, 4}, Select(Condition::AttrCmp(2, CmpOp::kEq, 3),
                     Product(Rel("R", 2), Rel("S", 2))));
  ExprPtr e = join;
  for (int i = 0; i < 6; ++i) e = Union(e, e);
  ASSERT_GT(OperatorCount(e), 100);  // the *tree* is huge
  Result<EvalResult> out = EvaluateFull(e, db);
  ASSERT_TRUE(out.ok());
  // Every Union(x, x) visits its child twice: once computed, once memo.
  EXPECT_GE(out->stats.memo_hits, 6);
  // Physical nodes: 4 join nodes + 2 relations + 6 unions.
  EXPECT_LE(out->stats.nodes_evaluated, 12);
  EXPECT_EQ(out->tuples(), Evaluate(join, db).value());
}

TEST(EvalParallelTest, DomainExhaustionIsAnErrorUnderParallelLanes) {
  Instance db = BigInstance(400, 50, 3);  // adom ~50 values
  ASSERT_GE(db.ActiveDomain().size(), 40u);
  for (int jobs : {1, 8}) {
    EvalOptions opts;
    opts.jobs = jobs;
    opts.parallel_threshold = 1;
    Result<EvalResult> r = EvaluateFull(Dom(4), db, opts);  // ≥ 40^4 > 2M
    ASSERT_FALSE(r.ok()) << "jobs=" << jobs;
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
    opts.max_domain_tuples = 10;
    Result<EvalResult> small = EvaluateFull(Dom(2), db, opts);
    ASSERT_FALSE(small.ok());
    EXPECT_EQ(small.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(EvalParallelTest, ConcurrentEvaluationsStress) {
  // 8 client threads each running a sharded evaluation on the shared
  // global pool (nested ParallelFor under concurrent external callers);
  // every result must equal the sequential baseline.
  Instance db = BigInstance(220, 30, 4);
  ExprPtr e = Union(
      Project({1, 4}, Select(Condition::AttrCmp(2, CmpOp::kEq, 3),
                             Product(Rel("R", 2), Rel("S", 2)))),
      Difference(Rel("R", 2), Rel("S", 2)));
  std::string base = EvaluateFull(e, db).value().Fingerprint();
  constexpr int kThreads = 8;
  std::vector<std::string> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      EvalOptions opts;
      opts.jobs = 2;
      opts.parallel_threshold = 8;
      got[t] = EvaluateFull(e, db, opts).value().Fingerprint();
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(got[t], base);
}

TEST(EvalParallelTest, FanoutProblemEvalJobsInvariant) {
  // The scheduler extremes from the simulator, checked through the
  // evaluator: composed constraints of a wide fanout evaluate identically
  // at any lane count.
  for (bool overlap : {false, true}) {
    CompositionProblem problem = sim::BuildFanoutProblem(6, overlap);
    CompositionResult composed = Compose(problem);
    std::mt19937_64 rng(overlap ? 11 : 12);
    ConstraintSet original = problem.sigma12;
    original.insert(original.end(), problem.sigma23.begin(),
                    problem.sigma23.end());
    Instance inst = RepairTowards(
        RandomInstanceOver(
            {&problem.sigma1, &problem.sigma2, &problem.sigma3}, &rng),
        original);
    for (const Constraint& c : composed.constraints) {
      EvalOptions opts;
      opts.skolem_mode = SkolemEvalMode::kInjectiveTerms;
      opts.parallel_threshold = 2;
      opts.jobs = 1;
      Result<EvalResult> a = EvaluateFull(c.lhs, inst, opts);
      opts.jobs = 8;
      Result<EvalResult> b = EvaluateFull(c.lhs, inst, opts);
      ASSERT_EQ(a.ok(), b.ok());
      if (a.ok()) EXPECT_EQ(a->Fingerprint(), b->Fingerprint());
    }
  }
}

}  // namespace
}  // namespace mapcomp
