#include "src/simulator/simulator.h"

#include <gtest/gtest.h>

#include "src/constraints/mapping.h"

namespace mapcomp {
namespace sim {
namespace {

PrimitiveOptions SmallOptions() {
  PrimitiveOptions opts;
  opts.min_arity = 2;
  opts.max_arity = 4;
  return opts;
}

SimRelation MakeRel(const std::string& name, int arity, int key = 0) {
  SimRelation r;
  r.name = name;
  r.arity = arity;
  r.key_size = key;
  return r;
}

class PrimitiveShapeTest : public ::testing::Test {
 protected:
  PrimitiveOptions opts_ = SmallOptions();
  NameAllocator names_;
  std::mt19937_64 rng_{7};
};

TEST_F(PrimitiveShapeTest, AddAttribute) {
  EditStep step =
      *ApplyPrimitive(Primitive::kAA, MakeRel("X", 3), opts_, &names_, &rng_);
  ASSERT_EQ(step.produced.size(), 1u);
  EXPECT_EQ(step.produced[0].arity, 4);
  ASSERT_EQ(step.constraints.size(), 1u);
  // R = π_{1..3}(S).
  EXPECT_EQ(step.constraints[0].kind, ConstraintKind::kEquality);
  EXPECT_EQ(step.constraints[0].rhs->kind(), ExprKind::kProject);
}

TEST_F(PrimitiveShapeTest, DropAttribute) {
  EditStep step =
      *ApplyPrimitive(Primitive::kDA, MakeRel("X", 3), opts_, &names_, &rng_);
  EXPECT_EQ(step.produced[0].arity, 2);
  EXPECT_EQ(step.constraints[0].lhs->kind(), ExprKind::kProject);
}

TEST_F(PrimitiveShapeTest, DropAttributeInapplicableOnUnary) {
  EXPECT_FALSE(ApplyPrimitive(Primitive::kDA, MakeRel("X", 1), opts_,
                              &names_, &rng_)
                   .has_value());
}

TEST_F(PrimitiveShapeTest, DefaultVariants) {
  EditStep f =
      *ApplyPrimitive(Primitive::kDf, MakeRel("X", 2), opts_, &names_, &rng_);
  ASSERT_EQ(f.constraints.size(), 1u);
  // R × {c} = S.
  EXPECT_EQ(f.constraints[0].lhs->kind(), ExprKind::kProduct);
  EXPECT_EQ(f.constraints[0].lhs->child(1)->kind(), ExprKind::kLiteral);

  EditStep b =
      *ApplyPrimitive(Primitive::kDb, MakeRel("X", 2), opts_, &names_, &rng_);
  ASSERT_EQ(b.constraints.size(), 1u);
  // R = π(σ_{C=c}(S)).
  EXPECT_EQ(b.constraints[0].rhs->kind(), ExprKind::kProject);
  EXPECT_EQ(b.constraints[0].rhs->child(0)->kind(), ExprKind::kSelect);

  EditStep both =
      *ApplyPrimitive(Primitive::kD, MakeRel("X", 2), opts_, &names_, &rng_);
  EXPECT_EQ(both.constraints.size(), 2u);
}

TEST_F(PrimitiveShapeTest, HorizontalPartitioning) {
  EditStep h =
      *ApplyPrimitive(Primitive::kH, MakeRel("X", 2), opts_, &names_, &rng_);
  EXPECT_EQ(h.produced.size(), 2u);
  EXPECT_EQ(h.constraints.size(), 3u);  // two selections + union
  EditStep hb =
      *ApplyPrimitive(Primitive::kHb, MakeRel("X", 2), opts_, &names_, &rng_);
  ASSERT_EQ(hb.constraints.size(), 1u);
  EXPECT_EQ(hb.constraints[0].rhs->kind(), ExprKind::kUnion);
}

TEST_F(PrimitiveShapeTest, VerticalRequiresKey) {
  EXPECT_FALSE(ApplyPrimitive(Primitive::kV, MakeRel("X", 4, 0), opts_,
                              &names_, &rng_)
                   .has_value());
  EditStep v = *ApplyPrimitive(Primitive::kV, MakeRel("X", 4, 1), opts_,
                               &names_, &rng_);
  EXPECT_EQ(v.produced.size(), 2u);
  // Key is replicated to both outputs.
  EXPECT_EQ(v.produced[0].key_size, 1);
  EXPECT_EQ(v.produced[1].key_size, 1);
  EXPECT_EQ(v.constraints.size(), 3u);  // two π defs + join def
}

TEST_F(PrimitiveShapeTest, NormalizationAddsInclusion) {
  EditStep n =
      *ApplyPrimitive(Primitive::kN, MakeRel("X", 4), opts_, &names_, &rng_);
  EXPECT_EQ(n.constraints.size(), 4u);  // vertical + π_A(T) ⊆ π_A(S)
  EXPECT_EQ(n.constraints.back().kind, ConstraintKind::kContainment);
}

TEST_F(PrimitiveShapeTest, SubAndSup) {
  EditStep sub =
      *ApplyPrimitive(Primitive::kSub, MakeRel("X", 2), opts_, &names_, &rng_);
  ASSERT_EQ(sub.constraints.size(), 1u);
  EXPECT_EQ(sub.constraints[0].kind, ConstraintKind::kContainment);
  EXPECT_TRUE(ContainsRelation(sub.constraints[0].lhs, "X"));
  EditStep sup =
      *ApplyPrimitive(Primitive::kSup, MakeRel("X", 2), opts_, &names_, &rng_);
  EXPECT_TRUE(ContainsRelation(sup.constraints[0].rhs, "X"));
}

TEST_F(PrimitiveShapeTest, KeyConstraintsEmittedWhenEnabled) {
  PrimitiveOptions keyed = opts_;
  keyed.enable_keys = true;
  EditStep step = *ApplyPrimitive(Primitive::kAA, MakeRel("X", 3, 1), keyed,
                                  &names_, &rng_);
  // 1 mapping constraint + key constraints for the 3 non-key columns of the
  // 4-ary output.
  EXPECT_EQ(step.constraints.size(), 1u + 3u);
}

TEST(EventVectorTest, DefaultWeights) {
  EventVector v = EventVector::Default();
  EXPECT_DOUBLE_EQ(v.weights[Primitive::kAA], 2.0);
  EXPECT_DOUBLE_EQ(v.weights[Primitive::kDR], 0.2);
  EXPECT_DOUBLE_EQ(v.weights[Primitive::kHf], 1.0);
}

TEST(EventVectorTest, InclusionProportion) {
  EventVector v = EventVector::Default().WithInclusionProportion(0.2);
  double total = 0.0, incl = 0.0;
  for (const auto& [p, w] : v.weights) {
    total += w;
    if (p == Primitive::kSub || p == Primitive::kSup) incl += w;
  }
  EXPECT_NEAR(incl / total, 0.2, 1e-9);
}

TEST(SimulatorTest, RandomSchemaRespectsOptions) {
  SimulatorOptions opts;
  opts.primitives.min_arity = 2;
  opts.primitives.max_arity = 5;
  opts.primitives.enable_keys = true;
  EvolutionSimulator simulator(opts, 11);
  SimSchema schema = simulator.RandomSchema(20);
  EXPECT_EQ(schema.relations.size(), 20u);
  for (const SimRelation& r : schema.relations) {
    EXPECT_GE(r.arity, 2);
    EXPECT_LE(r.arity, 5);
    EXPECT_LT(r.key_size, r.arity);
  }
}

TEST(SimulatorTest, FullEditIsAValidDisjointMapping) {
  SimulatorOptions opts;
  EvolutionSimulator simulator(opts, 13);
  SimSchema schema = simulator.RandomSchema(8);
  for (int i = 0; i < 30; ++i) {
    FullEdit edit = simulator.ApplyRandomEdit(schema);
    Mapping m;
    m.input = schema.ToSignature();
    m.output = edit.new_schema.ToSignature();
    m.constraints = edit.constraints;
    ASSERT_TRUE(m.Validate().ok())
        << PrimitiveName(edit.primitive) << ": " << m.Validate().ToString();
    schema = edit.new_schema;
  }
}

TEST(SimulatorTest, IdentityCopiesLinkUntouchedRelations) {
  SimulatorOptions opts;
  EvolutionSimulator simulator(opts, 17);
  SimSchema schema = simulator.RandomSchema(5);
  FullEdit edit = simulator.ApplyEdit(schema, Primitive::kSub);
  // 4 identity copies + 1 Sub constraint.
  int equalities = 0, containments = 0;
  for (const Constraint& c : edit.constraints) {
    (c.kind == ConstraintKind::kEquality ? equalities : containments)++;
  }
  EXPECT_EQ(equalities, 4);
  EXPECT_EQ(containments, 1);
  EXPECT_EQ(edit.new_schema.relations.size(), 5u);
}

TEST(SimulatorTest, DropRelationShrinksSchema) {
  SimulatorOptions opts;
  EvolutionSimulator simulator(opts, 19);
  SimSchema schema = simulator.RandomSchema(5);
  FullEdit edit = simulator.ApplyEdit(schema, Primitive::kDR);
  EXPECT_EQ(edit.new_schema.relations.size(), 4u);
}

TEST(SimulatorTest, FreshNamesNeverCollide) {
  SimulatorOptions opts;
  EvolutionSimulator simulator(opts, 23);
  SimSchema schema = simulator.RandomSchema(5);
  std::set<std::string> seen;
  for (const SimRelation& r : schema.relations) seen.insert(r.name);
  for (int i = 0; i < 10; ++i) {
    FullEdit edit = simulator.ApplyRandomEdit(schema);
    for (const SimRelation& r : edit.new_schema.relations) {
      EXPECT_EQ(seen.count(r.name), 0u) << r.name;
      seen.insert(r.name);
    }
    schema = edit.new_schema;
  }
}

}  // namespace
}  // namespace sim
}  // namespace mapcomp
