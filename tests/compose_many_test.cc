// Tests for the parallel batch-compose driver and the multi-round
// elimination fixpoint: jobs=1 and jobs=8 must produce identical results
// (including stats ordering), multi-round composition never eliminates
// fewer symbols than the paper's single pass, and result-assembly failures
// surface as warnings instead of being dropped.

#include <gtest/gtest.h>

#include "src/algebra/builders.h"
#include "src/parser/parser.h"
#include "src/runtime/compose_many.h"
#include "src/testdata/literature_suite.h"

namespace mapcomp {
namespace {

std::vector<CompositionProblem> ParsedLiteratureSuite() {
  Parser parser;
  std::vector<CompositionProblem> problems;
  for (const testdata::LiteratureProblem& prob :
       testdata::LiteratureSuite()) {
    Result<CompositionProblem> parsed = parser.ParseProblem(prob.text);
    EXPECT_TRUE(parsed.ok()) << prob.name;
    if (parsed.ok()) problems.push_back(std::move(*parsed));
  }
  return problems;
}

TEST(ComposeManyTest, ResultsComeBackInInputOrder) {
  std::vector<CompositionProblem> problems = ParsedLiteratureSuite();
  std::vector<CompositionResult> results =
      runtime::ComposeMany(problems, ComposeOptions{}, 4);
  ASSERT_EQ(results.size(), problems.size());
  for (size_t i = 0; i < problems.size(); ++i) {
    // Each slot holds the composition of *its* problem: every σ2 symbol is
    // accounted for as eliminated or residual.
    EXPECT_EQ(results[i].total_count, problems[i].sigma2.size()) << i;
    EXPECT_EQ(results[i].eliminated_count +
                  static_cast<int>(results[i].residual_sigma2.size()),
              results[i].total_count)
        << i;
  }
}

TEST(ComposeManyTest, DeterministicAcrossJobCounts) {
  // Replicate the suite so the batch is larger than any worker count and
  // slots interleave arbitrarily.
  std::vector<CompositionProblem> problems;
  for (int copy = 0; copy < 3; ++copy) {
    for (CompositionProblem& p : ParsedLiteratureSuite()) {
      problems.push_back(std::move(p));
    }
  }
  std::vector<CompositionResult> sequential =
      runtime::ComposeMany(problems, ComposeOptions{}, 1);
  std::vector<CompositionResult> parallel =
      runtime::ComposeMany(problems, ComposeOptions{}, 8);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    // Fingerprint covers signature, constraints, residuals, per-attempt
    // stats (in order) and per-round aggregates — everything but timings.
    EXPECT_EQ(sequential[i].Fingerprint(), parallel[i].Fingerprint())
        << "problem " << i;
  }
  // And a second parallel run is stable too (no hidden global state).
  std::vector<CompositionResult> parallel2 =
      runtime::ComposeMany(problems, ComposeOptions{}, 8);
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].Fingerprint(), parallel2[i].Fingerprint());
  }
}

TEST(ComposeManyTest, MultiRoundNeverEliminatesFewerThanSinglePass) {
  ComposeOptions single;
  single.max_rounds = 1;
  ComposeOptions multi;  // default: fixpoint retries
  for (const CompositionProblem& p : ParsedLiteratureSuite()) {
    CompositionResult one = Compose(p, single);
    CompositionResult many = Compose(p, multi);
    EXPECT_GE(many.EliminatedFraction(), one.EliminatedFraction())
        << p.name;
    EXPECT_EQ(one.total_count, many.total_count) << p.name;
  }
}

TEST(ComposeManyTest, SecondRoundEliminatesWhatFirstPassCannot) {
  // With the order S2, S1: S2 occurs only inside S1's defining equality, in
  // a non-monotone position (R - S2), so every ELIMINATE step fails for it
  // in round 1. Unfolding S1 then *deletes* that defining constraint — S1
  // occurs nowhere else — leaving S2 unmentioned, and round 2 eliminates it
  // trivially. A single pass keeps S2 residual.
  const char* text = R"(
      schema s1 { R(2); }
      schema s2 { S1(2); S2(2); }
      schema s3 { T(2); }
      map m12 { S1 = R - S2; }
      map m23 { T <= T; }
      order S2, S1;
  )";
  Parser parser;
  Result<CompositionProblem> problem = parser.ParseProblem(text);
  ASSERT_TRUE(problem.ok()) << problem.status().ToString();

  ComposeOptions single;
  single.max_rounds = 1;
  CompositionResult one = Compose(*problem, single);
  CompositionResult many = Compose(*problem);

  EXPECT_GT(many.eliminated_count, one.eliminated_count)
      << "single pass:\n" << one.Report() << "multi round:\n" << many.Report();
  EXPECT_TRUE(many.residual_sigma2.empty()) << many.Report();
  ASSERT_GE(many.rounds.size(), 2u);
  EXPECT_GT(many.rounds[1].eliminated, 0);
}

TEST(ComposeManyTest, SetKeyFailureOnResidualSymbolBecomesWarning) {
  // sigma2 carries key metadata that is inconsistent with the relation's
  // final arity (keys are not cleared by AddOrReplaceRelation), and the
  // symbol stays residual — the old driver silently discarded the SetKey
  // status when rebuilding the residual signature.
  CompositionProblem p;
  ASSERT_TRUE(p.sigma1.AddRelation("R", 2).ok());
  ASSERT_TRUE(p.sigma2.AddRelation("S", 3).ok());
  ASSERT_TRUE(p.sigma2.SetKey("S", {3}).ok());
  p.sigma2.AddOrReplaceRelation("S", 2);  // key {3} now out of range
  ASSERT_TRUE(p.sigma3.AddRelation("T", 2).ok());
  p.sigma12 = {Constraint::Contain(Difference(Rel("R", 2), Rel("S", 2)),
                                   Rel("S", 2))};
  p.sigma23 = {Constraint::Contain(Rel("S", 2), Rel("T", 2))};

  CompositionResult res = Compose(p);
  ASSERT_EQ(res.residual_sigma2.size(), 1u);
  EXPECT_EQ(res.residual_sigma2[0], "S");
  ASSERT_EQ(res.warnings.size(), 1u);
  EXPECT_NE(res.warnings[0].find("key"), std::string::npos) << res.warnings[0];
  EXPECT_NE(res.Report().find("warning:"), std::string::npos);
  EXPECT_NE(res.Fingerprint().find("warning{"), std::string::npos);
  // The residual signature still carries S, just without the bogus key.
  EXPECT_TRUE(res.sigma.Contains("S"));
  EXPECT_FALSE(res.sigma.KeyOf("S").has_value());
}

TEST(ComposeManyTest, EmptyBatchAndSingleProblemEdgeCases) {
  EXPECT_TRUE(runtime::ComposeMany({}, ComposeOptions{}, 8).empty());
  std::vector<CompositionProblem> one(1, ParsedLiteratureSuite()[0]);
  std::vector<CompositionResult> r1 =
      runtime::ComposeMany(one, ComposeOptions{}, 1);
  std::vector<CompositionResult> r8 =
      runtime::ComposeMany(one, ComposeOptions{}, 8);
  ASSERT_EQ(r1.size(), 1u);
  ASSERT_EQ(r8.size(), 1u);
  EXPECT_EQ(r1[0].Fingerprint(), r8[0].Fingerprint());
}

}  // namespace
}  // namespace mapcomp
