// Differential coverage of the columnar tuple kernel: every result must be
// byte-identical to the nested-loop oracle (EvalOptions::force_nested_loop),
// across the literature suite, adversarial mixed int/string domains that
// stress ValueId order preservation, and generated hash-join-vs-product
// property instances. Also pins the join planner's stats, the constraint-
// driven σ(D^r) enumeration, and memo-byte refcount dropping.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "src/algebra/builders.h"
#include "src/compose/compose.h"
#include "src/eval/checker.h"
#include "src/eval/evaluator.h"
#include "src/eval/generator.h"
#include "src/parser/parser.h"
#include "src/testdata/literature_suite.h"

namespace mapcomp {
namespace {

Tuple T(std::initializer_list<int64_t> vals) {
  Tuple t;
  for (int64_t v : vals) t.push_back(Value(v));
  return t;
}

/// Evaluates `e` on the kernel (at jobs 1 and 8) and on the nested-loop
/// oracle, and requires byte-identical fingerprints. The kernel may succeed
/// where the oracle exhausts max_domain_tuples (constraint-driven σ(D^r)
/// enumeration guards only the pruned space); the reverse — the kernel
/// failing where the oracle succeeds — is always a bug.
void ExpectKernelMatchesOracle(const ExprPtr& e, const Instance& db,
                               EvalOptions base = {}) {
  EvalOptions oracle_opts = base;
  oracle_opts.force_nested_loop = true;
  oracle_opts.jobs = 1;
  Result<EvalResult> oracle = EvaluateFull(e, db, oracle_opts);
  for (int jobs : {1, 8}) {
    EvalOptions kernel_opts = base;
    kernel_opts.force_nested_loop = false;
    kernel_opts.jobs = jobs;
    kernel_opts.parallel_threshold = 4;
    Result<EvalResult> kernel = EvaluateFull(e, db, kernel_opts);
    if (!oracle.ok()) {
      if (kernel.ok()) {
        EXPECT_EQ(oracle.status().code(), StatusCode::kResourceExhausted)
            << "kernel succeeded where the oracle failed with a "
               "non-guard error";
      }
      continue;
    }
    ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
    EXPECT_EQ(kernel->Fingerprint(), oracle->Fingerprint())
        << "jobs=" << jobs;
    EXPECT_EQ(kernel->tuples(), oracle->tuples());
    EXPECT_EQ(kernel->arity, oracle->arity);
  }
}

TEST(EvalKernelTest, LiteratureSuiteMatchesNestedLoopOracle) {
  Parser parser;
  for (const testdata::LiteratureProblem& lit : testdata::LiteratureSuite()) {
    CompositionProblem problem = parser.ParseProblem(lit.text).value();
    CompositionResult composed = Compose(problem);
    ConstraintSet all = problem.sigma12;
    all.insert(all.end(), problem.sigma23.begin(), problem.sigma23.end());
    all.insert(all.end(), composed.constraints.begin(),
               composed.constraints.end());
    std::mt19937_64 rng(lit.name[0] + 4242);
    Instance inst = RepairTowards(
        RandomInstanceOver(
            {&problem.sigma1, &problem.sigma2, &problem.sigma3}, &rng),
        all);
    EvalOptions base;
    base.skolem_mode = SkolemEvalMode::kInjectiveTerms;
    base.extra_constants = CollectConstants(all);
    for (const Constraint& c : all) {
      ExpectKernelMatchesOracle(c.lhs, inst, base);
      ExpectKernelMatchesOracle(c.rhs, inst, base);
    }
  }
}

TEST(EvalKernelTest, AdversarialMixedIntStringDomains) {
  // Values chosen to punish a dictionary that is not order-preserving:
  // negative/huge ints, the empty string, strings that *look* numeric, and
  // strings differing only by a prefix — all interleaved in one domain.
  Instance db;
  db.Set("R", {Tuple{Value(int64_t{-5}), Value(std::string(""))},
               Tuple{Value(int64_t{0}), Value(std::string("0"))},
               Tuple{Value(int64_t{1'000'000}), Value(std::string("00"))},
               Tuple{Value(int64_t{-5}), Value(std::string("ab"))},
               Tuple{Value(int64_t{7}), Value(std::string("abc"))}});
  db.Set("S", {Tuple{Value(std::string("ab")), Value(int64_t{7})},
               Tuple{Value(std::string("")), Value(int64_t{-5})},
               Tuple{Value(std::string("zz")), Value(int64_t{0})}});
  std::vector<ExprPtr> exprs = {
      Union(Rel("R", 2), Project({2, 1}, Rel("S", 2))),
      Difference(Rel("R", 2), Project({2, 1}, Rel("S", 2))),
      Intersect(Project({2}, Rel("R", 2)), Project({1}, Rel("S", 2))),
      Dom(2),
      // Order atoms across the int/string boundary (< spans both types).
      Select(Condition::AttrCmp(1, CmpOp::kLt, 2), Dom(2)),
      Select(Condition::AttrConst(2, CmpOp::kGe, Value(std::string("0"))),
             Rel("R", 2)),
      // Hash join keyed on a mixed int/string column.
      Select(Condition::AttrCmp(2, CmpOp::kEq, 3),
             Product(Rel("R", 2), Project({2, 1}, Rel("S", 2)))),
      // Skolem terms mint new string values mid-evaluation.
      SkolemApp("f", {2, 1}, Rel("R", 2)),
  };
  EvalOptions base;
  base.skolem_mode = SkolemEvalMode::kInjectiveTerms;
  for (const ExprPtr& e : exprs) ExpectKernelMatchesOracle(e, db, base);
}

TEST(EvalKernelTest, HashJoinVsProductEquivalenceProperty) {
  // Generated instances and join shapes: every select(product) the planner
  // turns into a hash join (or pushed-down nested loop) must equal the
  // product-then-filter oracle.
  std::mt19937_64 rng(20260730);
  Signature sig;
  ASSERT_TRUE(sig.AddRelation("A", 2).ok());
  ASSERT_TRUE(sig.AddRelation("B", 3).ok());
  GenOptions gen;
  gen.domain_size = 5;
  gen.max_tuples_per_rel = 9;
  gen.include_strings = true;
  for (int round = 0; round < 40; ++round) {
    Instance inst = RandomInstance(sig, &rng);
    std::uniform_int_distribution<int> left_attr(1, 2), right_attr(3, 5);
    std::uniform_int_distribution<int> coin(0, 1);
    // 1-2 cross equalities + optionally a single-side pushdown conjunct and
    // a cross non-equality residual.
    Condition cond = Condition::AttrCmp(left_attr(rng), CmpOp::kEq,
                                        right_attr(rng));
    if (coin(rng)) {
      cond = Condition::And(
          cond, Condition::AttrCmp(left_attr(rng), CmpOp::kEq,
                                   right_attr(rng)));
    }
    if (coin(rng)) {
      cond = Condition::And(
          cond, Condition::AttrConst(left_attr(rng), CmpOp::kNe,
                                     Value(int64_t{2})));
    }
    if (coin(rng)) {
      cond = Condition::And(cond, Condition::AttrCmp(left_attr(rng),
                                                     CmpOp::kLe,
                                                     right_attr(rng)));
    }
    ExprPtr join = Select(cond, Product(Rel("A", 2), Rel("B", 3)));
    ExpectKernelMatchesOracle(join, inst);
    ExpectKernelMatchesOracle(Project({1, 3, 4}, join), inst);
  }
}

TEST(EvalKernelTest, JoinPlannerStatsAndBypassedProduct) {
  Instance db;
  std::set<Tuple> r, s;
  for (int64_t i = 0; i < 30; ++i) {
    r.insert(Tuple{Value(i), Value(i % 7)});
    s.insert(Tuple{Value(i % 7), Value(i)});
  }
  db.Set("R", std::move(r));
  db.Set("S", std::move(s));
  ExprPtr join = Select(Condition::AttrCmp(2, CmpOp::kEq, 3),
                        Product(Rel("R", 2), Rel("S", 2)));
  EvalResult kernel = EvaluateFull(join, db).value();
  EXPECT_EQ(kernel.stats.hash_join_nodes, 1);
  EXPECT_EQ(kernel.stats.nested_product_nodes, 0);
  // The product child is planned around, never materialized: only R, S and
  // the select itself count as evaluated nodes.
  EXPECT_EQ(kernel.stats.nodes_evaluated, 3);

  EvalOptions force;
  force.force_nested_loop = true;
  EvalResult oracle = EvaluateFull(join, db, force).value();
  EXPECT_EQ(oracle.stats.hash_join_nodes, 0);
  EXPECT_EQ(oracle.stats.nested_product_nodes, 1);
  EXPECT_EQ(oracle.stats.nodes_evaluated, 4);  // R, S, product, select
  EXPECT_EQ(kernel.Fingerprint(), oracle.Fingerprint());

  // A keyless cross-side condition falls back to a (filtered) nested loop.
  ExprPtr keyless = Select(Condition::AttrCmp(2, CmpOp::kLt, 3),
                           Product(Rel("R", 2), Rel("S", 2)));
  EvalResult fallback = EvaluateFull(keyless, db).value();
  EXPECT_EQ(fallback.stats.hash_join_nodes, 0);
  EXPECT_EQ(fallback.stats.nested_product_nodes, 1);
  EXPECT_EQ(fallback.Fingerprint(),
            EvaluateFull(keyless, db, force).value().Fingerprint());
}

TEST(EvalKernelTest, SelectOverAlreadyMaterializedProductFiltersTheMemo) {
  // Union(P, select(P)): the union evaluates the shared product first, so
  // the select must filter the memoized table instead of re-planning a
  // join — the product's children may already be refcount-dropped, and a
  // bypass would re-evaluate them from scratch.
  Instance db;
  std::set<Tuple> r, s;
  for (int64_t i = 0; i < 12; ++i) {
    r.insert(Tuple{Value(i), Value(i % 3)});
    s.insert(Tuple{Value(i % 3), Value(i)});
  }
  db.Set("R", std::move(r));
  db.Set("S", std::move(s));
  ExprPtr prod = Product(Rel("R", 2), Rel("S", 2));
  ExprPtr e = Union(prod, Select(Condition::AttrCmp(2, CmpOp::kEq, 3), prod));
  EvalResult out = EvaluateFull(e, db).value();
  // R, S, product, select, union — nothing evaluated twice.
  EXPECT_EQ(out.stats.nodes_evaluated, 5);
  EXPECT_EQ(out.stats.memo_hits, 1);  // the select's view of the product
  EXPECT_EQ(out.stats.hash_join_nodes, 0);
  EvalOptions force;
  force.force_nested_loop = true;
  EXPECT_EQ(out.Fingerprint(),
            EvaluateFull(e, db, force).value().Fingerprint());
}

TEST(EvalKernelTest, RaggedRelationIsACleanError) {
  // The instance API never validates arity; a flat fixed-stride table must
  // reject ragged tuples instead of reading rows out of bounds.
  Instance db;
  db.Set("R", {T({1, 2}), T({7})});
  Result<std::set<Tuple>> out = Evaluate(Rel("R", 2), db);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(EvalKernelTest, DomainSelectEnumeratesOnlyTheBoundSpace) {
  // adom has 60 values: D^3 = 216000 tuples. With #1 pinned and #2 = #3 the
  // pruned space is 60 candidates, so a guard of 100 passes on the kernel
  // while the nested-loop oracle exhausts.
  Instance db;
  std::set<Tuple> u;
  for (int64_t i = 0; i < 60; ++i) u.insert(Tuple{Value(i)});
  db.Set("U", std::move(u));
  Condition cond = Condition::And(
      Condition::AttrConst(1, CmpOp::kEq, Value(int64_t{3})),
      Condition::AttrCmp(2, CmpOp::kEq, 3));
  ExprPtr sel = Select(cond, Dom(3));

  EvalOptions tight;
  tight.max_domain_tuples = 100;
  EvalResult pruned = EvaluateFull(sel, db, tight).value();
  EXPECT_EQ(pruned.tuples().size(), 60u);  // (3, v, v) for every domain v

  EvalOptions tight_oracle = tight;
  tight_oracle.force_nested_loop = true;
  Result<EvalResult> oracle = EvaluateFull(sel, db, tight_oracle);
  ASSERT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.status().code(), StatusCode::kResourceExhausted);

  // With a generous guard both paths agree bit for bit.
  EvalOptions loose;
  EvalOptions loose_oracle;
  loose_oracle.force_nested_loop = true;
  EXPECT_EQ(EvaluateFull(sel, db, loose).value().Fingerprint(),
            EvaluateFull(sel, db, loose_oracle).value().Fingerprint());

  // A coordinate pinned to a constant outside the domain empties the
  // selection without enumerating anything.
  ExprPtr off_domain = Select(
      Condition::AttrConst(1, CmpOp::kEq, Value(int64_t{777})), Dom(3));
  EXPECT_TRUE(EvaluateFull(off_domain, db, tight).value().tuples().empty());

  // Conflicting pins on one equality class are unsatisfiable outright.
  ExprPtr conflict = Select(
      Condition::And(
          Condition::And(
              Condition::AttrConst(1, CmpOp::kEq, Value(int64_t{1})),
              Condition::AttrConst(2, CmpOp::kEq, Value(int64_t{2}))),
          Condition::AttrCmp(1, CmpOp::kEq, 2)),
      Dom(2));
  EXPECT_TRUE(EvaluateFull(conflict, db, tight).value().tuples().empty());
}

TEST(EvalKernelTest, MemoBytesPeakBelowTotalOnDeepChain) {
  // A 24-deep chain of distinct selects: refcount dropping releases each
  // intermediate table as soon as its single parent consumed it, so the
  // live-memo watermark stays far below the sum of all footprints.
  Instance db;
  std::set<Tuple> r;
  for (int64_t i = 0; i < 200; ++i) r.insert(Tuple{Value(i), Value(i + 1)});
  db.Set("R", std::move(r));
  ExprPtr e = Rel("R", 2);
  for (int64_t i = 0; i < 24; ++i) {
    e = Select(Condition::AttrConst(1, CmpOp::kNe, Value(int64_t{1000 + i})),
               e);
  }
  for (bool force : {false, true}) {
    EvalOptions opts;
    opts.force_nested_loop = force;
    EvalResult out = EvaluateFull(e, db, opts).value();
    EXPECT_EQ(out.tuples().size(), 200u) << "force=" << force;
    EXPECT_GT(out.stats.memo_bytes_peak, 0) << "force=" << force;
    EXPECT_GT(out.stats.memo_bytes_total, 0) << "force=" << force;
    EXPECT_LT(out.stats.memo_bytes_peak, out.stats.memo_bytes_total)
        << "force=" << force;
    // The chain is 25 nodes of ~equal size; the watermark should hold only
    // a couple of them, not half the chain.
    EXPECT_LT(out.stats.memo_bytes_peak, out.stats.memo_bytes_total / 4)
        << "force=" << force;
  }
}

TEST(EvalKernelTest, SharedSubtreeSurvivesUntilLastParent) {
  // shared feeds both sides of an intersect *and* a later root: dropping
  // must not evict it before the last consumer, and memo hits must agree
  // with the legacy accounting.
  Instance db;
  db.Set("R", {T({1, 2}), T({2, 3}), T({3, 4})});
  ExprPtr shared = Project({1}, Rel("R", 2));
  ExprPtr lhs = Intersect(shared, shared);
  std::vector<EvalResult> out = EvaluateMany({lhs, shared}, db).value();
  EXPECT_EQ(out[0].stats.nodes_evaluated, 3);  // R, project, intersect
  EXPECT_EQ(out[0].stats.memo_hits, 1);        // second intersect edge
  EXPECT_EQ(out[1].stats.nodes_evaluated, 0);
  EXPECT_EQ(out[1].stats.memo_hits, 1);  // still memoized for the 2nd root
  EXPECT_EQ(out[1].tuples(), (std::set<Tuple>{T({1}), T({2}), T({3})}));
}

TEST(EvalKernelTest, ContainmentRunsOnTables) {
  Instance db;
  std::set<Tuple> r;
  for (int64_t i = 0; i < 500; ++i) r.insert(Tuple{Value(i), Value(i % 9)});
  db.Set("R", std::move(r));
  ExprPtr rel = Rel("R", 2);
  ExprPtr wide = Union(rel, Project({2, 1}, rel));
  EvalStats stats;
  EXPECT_TRUE(
      EvaluateContainment(rel, wide, /*equality=*/false, db, {}, &stats)
          .value());
  EXPECT_FALSE(
      EvaluateContainment(wide, rel, /*equality=*/false, db, {}).value());
  EXPECT_FALSE(
      EvaluateContainment(rel, wide, /*equality=*/true, db, {}).value());
  EXPECT_TRUE(
      EvaluateContainment(wide, wide, /*equality=*/true, db, {}).value());
  EXPECT_GT(stats.nodes_evaluated, 0);
  // Oracle path agrees.
  EvalOptions force;
  force.force_nested_loop = true;
  EXPECT_TRUE(
      EvaluateContainment(rel, wide, false, db, force).value());
  EXPECT_FALSE(
      EvaluateContainment(wide, rel, false, db, force).value());
}

TEST(EvalKernelTest, MismatchedArityContainmentIsFalseNotUB) {
  // Constraint::Contain/Equal never validate arity; tuples of different
  // arities are never equal, so only an empty lhs is contained — on both
  // paths, with no out-of-bounds row walk.
  Instance db;
  db.Set("R", {T({1, 2, 3})});
  db.Set("S", {T({1, 2})});
  for (bool force : {false, true}) {
    EvalOptions opts;
    opts.force_nested_loop = force;
    EXPECT_FALSE(EvaluateContainment(Rel("R", 3), Rel("S", 2), false, db,
                                     opts)
                     .value())
        << "force=" << force;
    EXPECT_TRUE(EvaluateContainment(Rel("Empty", 3), Rel("S", 2), false, db,
                                    opts)
                    .value())
        << "force=" << force;
  }
}

TEST(EvalKernelTest, InstanceActiveDomainCacheInvalidation) {
  Instance db;
  db.Set("R", {T({1, 2})});
  EXPECT_EQ(db.ActiveDomain().size(), 2u);
  db.Add("R", T({3, 4}));
  EXPECT_EQ(db.ActiveDomain().size(), 4u);  // Add invalidates
  db.Set("S", {T({9})});
  EXPECT_EQ(db.ActiveDomain().size(), 5u);  // Set invalidates
  db.Clear("S");
  EXPECT_EQ(db.ActiveDomain().size(), 4u);  // Clear invalidates
  Instance copy = db;
  copy.Add("R", T({7, 8}));
  EXPECT_EQ(copy.ActiveDomain().size(), 6u);
  EXPECT_EQ(db.ActiveDomain().size(), 4u);  // copies don't share the cache

  // MergedWith / RestrictedTo mutate their copy's relations directly: a
  // warm source cache must not leak into the derived instance.
  Instance other;
  other.Set("Q", {T({100})});
  EXPECT_EQ(db.MergedWith(other).ActiveDomain().size(), 5u);
  Instance assigned;
  assigned.Set("X", {T({1})});
  EXPECT_EQ(assigned.ActiveDomain().size(), 1u);  // warm the target cache
  assigned = db;
  EXPECT_EQ(assigned.ActiveDomain().size(), 4u);
}

}  // namespace
}  // namespace mapcomp
