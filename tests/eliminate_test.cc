#include "src/compose/eliminate.h"

#include <gtest/gtest.h>

#include <random>

#include "src/algebra/builders.h"
#include "src/algebra/print.h"
#include "src/eval/checker.h"
#include "src/eval/generator.h"
#include "src/op/extra_ops.h"

namespace mapcomp {
namespace {

/// Soundness spot-check: every model of `input` must satisfy `output`
/// (output is over a sub-signature, so direct checking suffices).
void ExpectSound(const ConstraintSet& input, const ConstraintSet& output,
                 const Signature& sig, uint64_t seed, int rounds = 60) {
  std::mt19937_64 rng(seed);
  GenOptions gen;
  gen.domain_size = 3;
  gen.max_tuples_per_rel = 3;
  int checked = 0;
  for (int round = 0; round < rounds; ++round) {
    Instance db = RandomInstance(sig, &rng, gen);
    auto sat_in = SatisfiesAll(db, input);
    ASSERT_TRUE(sat_in.ok());
    if (!*sat_in) continue;
    ++checked;
    auto sat_out = SatisfiesAll(db, output);
    ASSERT_TRUE(sat_out.ok());
    EXPECT_TRUE(*sat_out) << "model of input violates output:\n"
                          << db.ToString() << "output:\n"
                          << ConstraintSetToString(output);
  }
  EXPECT_GT(checked, 0) << "no satisfying instances sampled";
}

TEST(EliminateTest, SymbolNotMentioned) {
  ConstraintSet cs{Constraint::Contain(Rel("R", 1), Rel("T", 1))};
  EliminateOutcome out = Eliminate(cs, "S", 1);
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.step, EliminateStep::kNotMentioned);
}

TEST(EliminateTest, PaperExample4ViewUnfolding) {
  // S = R × T,  π(U) − S ⊆ U  ⇒  π(U) − (R × T) ⊆ U.
  ConstraintSet cs{
      Constraint::Equal(Rel("S", 2), Product(Rel("R", 1), Rel("T", 1))),
      Constraint::Contain(Difference(Project({2, 1}, Rel("U", 2)),
                                     Rel("S", 2)),
                          Rel("U", 2))};
  EliminateOutcome out = Eliminate(cs, "S", 2);
  ASSERT_TRUE(out.success);
  EXPECT_EQ(out.step, EliminateStep::kUnfold);
  ASSERT_EQ(out.constraints.size(), 1u);
  EXPECT_TRUE(ExprEquals(
      out.constraints[0].lhs,
      Difference(Project({2, 1}, Rel("U", 2)),
                 Product(Rel("R", 1), Rel("T", 1)))));
}

TEST(EliminateTest, PaperExample4LeftCompose) {
  // R ⊆ S ∩ V, S ⊆ T × U ⇒ R ⊆ (T × U) ∩ V.
  ConstraintSet cs{
      Constraint::Contain(Rel("R", 2), Intersect(Rel("S", 2), Rel("V", 2))),
      Constraint::Contain(Rel("S", 2), Product(Rel("T", 1), Rel("U", 1)))};
  EliminateOutcome out = Eliminate(cs, "S", 2);
  ASSERT_TRUE(out.success);
  EXPECT_EQ(out.step, EliminateStep::kLeftCompose);
  // R ⊆ (T × U) ∩ V, split by the output simplifier into two containments.
  ASSERT_EQ(out.constraints.size(), 2u);
  EXPECT_TRUE(ExprEquals(out.constraints[0].rhs,
                         Product(Rel("T", 1), Rel("U", 1))));
  EXPECT_TRUE(ExprEquals(out.constraints[1].rhs, Rel("V", 2)));
}

TEST(EliminateTest, PaperExample4RightCompose) {
  // T × U ⊆ S, S − π(W) ⊆ R ⇒ (T × U) − π(W) ⊆ R.
  ConstraintSet cs{
      Constraint::Contain(Product(Rel("T", 1), Rel("U", 1)), Rel("S", 2)),
      Constraint::Contain(Difference(Rel("S", 2), Project({2, 1}, Rel("W", 2))),
                          Rel("R", 2))};
  // Left compose also succeeds on this input (via the difference identity);
  // disable it to exercise the paper's right-compose illustration verbatim.
  EliminateOptions opts;
  opts.enable_left_compose = false;
  EliminateOutcome out = Eliminate(cs, "S", 2, opts);
  ASSERT_TRUE(out.success);
  EXPECT_EQ(out.step, EliminateStep::kRightCompose);
  ASSERT_EQ(out.constraints.size(), 1u);
  EXPECT_TRUE(ExprEquals(
      out.constraints[0].lhs,
      Difference(Product(Rel("T", 1), Rel("U", 1)),
                 Project({2, 1}, Rel("W", 2)))));
}

TEST(EliminateTest, PaperExample5UnfoldBeatsNonMonotoneContexts) {
  // S = R1 × R2, π(R3 − S) ⊆ T1, T2 ⊆ T3 − σ_c(S): neither left nor right
  // compose applies (non-monotone contexts), but unfolding does.
  Condition c = Condition::AttrCmp(1, CmpOp::kEq, 2);
  ConstraintSet cs{
      Constraint::Equal(Rel("S", 2), Product(Rel("R1", 1), Rel("R2", 1))),
      Constraint::Contain(
          Project({1}, Difference(Rel("R3", 2), Rel("S", 2))), Rel("T1", 1)),
      Constraint::Contain(Rel("T2", 2),
                          Difference(Rel("T3", 2), Select(c, Rel("S", 2))))};
  EliminateOutcome out = Eliminate(cs, "S", 2);
  ASSERT_TRUE(out.success);
  EXPECT_EQ(out.step, EliminateStep::kUnfold);
  EXPECT_EQ(out.constraints.size(), 2u);

  // Without unfolding, elimination must fail on monotonicity.
  EliminateOptions no_unfold;
  no_unfold.enable_unfold = false;
  EliminateOutcome fail = Eliminate(cs, "S", 2, no_unfold);
  EXPECT_FALSE(fail.success);
  EXPECT_NE(fail.failure_reason.find("monotone"), std::string::npos);
}

TEST(EliminateTest, PaperExamples10Through12LeftCompose) {
  // Examples 7+10: R − S ⊆ T, π(S) ⊆ U ⇒ R ⊆ (U × D) ∪ T.
  ConstraintSet cs{
      Constraint::Contain(Difference(Rel("R", 2), Rel("S", 2)), Rel("T", 2)),
      Constraint::Contain(Project({1}, Rel("S", 2)), Rel("U", 1))};
  EliminateOutcome out = Eliminate(cs, "S", 2);
  ASSERT_TRUE(out.success);
  EXPECT_EQ(out.step, EliminateStep::kLeftCompose);
  ASSERT_EQ(out.constraints.size(), 1u);
  EXPECT_TRUE(ExprEquals(
      out.constraints[0].rhs,
      Union(Product(Rel("U", 1), Dom(1)), Rel("T", 2))));

  Signature sig;
  for (auto& [n, a] : std::vector<std::pair<std::string, int>>{
           {"R", 2}, {"S", 2}, {"T", 2}, {"U", 1}}) {
    ASSERT_TRUE(sig.AddRelation(n, a).ok());
  }
  ExpectSound(cs, out.constraints, sig, 101);
}

TEST(EliminateTest, PaperExamples11And12DomainConstraintsVanish) {
  // R ∩ T ⊆ S, U ⊆ π(S): left compose with trivial bound D^r; the
  // resulting domain constraints are deleted entirely (Example 12).
  ConstraintSet cs{
      Constraint::Contain(Intersect(Rel("R", 2), Rel("T", 2)), Rel("S", 2)),
      Constraint::Contain(Rel("U", 1), Project({1}, Rel("S", 2)))};
  EliminateOutcome out = Eliminate(cs, "S", 2);
  ASSERT_TRUE(out.success);
  EXPECT_EQ(out.step, EliminateStep::kLeftCompose);
  EXPECT_TRUE(out.constraints.empty());
}

TEST(EliminateTest, PaperExample15RightCompose) {
  // S × T ⊆ U, T ⊆ σ_c(S) × π(R)
  // ⇒ π(T) × T ⊆ U, π(T) ⊆ σ_c(D), π(T) ⊆ π(R).
  Condition c = Condition::AttrConst(1, CmpOp::kEq, int64_t{1});
  ConstraintSet cs{
      Constraint::Contain(Product(Rel("S", 1), Rel("T", 2)), Rel("U", 3)),
      Constraint::Contain(Rel("T", 2),
                          Product(Select(c, Rel("S", 1)),
                                  Project({1}, Rel("R", 2))))};
  EliminateOutcome out = Eliminate(cs, "S", 1);
  ASSERT_TRUE(out.success);
  EXPECT_EQ(out.step, EliminateStep::kRightCompose);
  ASSERT_EQ(out.constraints.size(), 3u);
  bool found_main = false;
  for (const Constraint& cc : out.constraints) {
    if (ExprEquals(cc.lhs, Product(Project({1}, Rel("T", 2)), Rel("T", 2)))) {
      found_main = ExprEquals(cc.rhs, Rel("U", 3));
    }
  }
  EXPECT_TRUE(found_main);

  Signature sig;
  for (auto& [n, a] : std::vector<std::pair<std::string, int>>{
           {"S", 1}, {"T", 2}, {"U", 3}, {"R", 2}}) {
    ASSERT_TRUE(sig.AddRelation(n, a).ok());
  }
  ExpectSound(cs, out.constraints, sig, 103);
}

TEST(EliminateTest, PaperExample16DeskolemizationSucceeds) {
  // R ⊆ π(S × (T ∩ U)), S ⊆ σ_c(T): right compose Skolemizes the
  // projection and deskolemize later removes the function.
  Condition c = Condition::AttrConst(1, CmpOp::kLe, int64_t{5});
  ConstraintSet cs{
      Constraint::Contain(
          Rel("R", 1),
          Project({1}, Product(Rel("S", 1),
                               Intersect(Rel("T", 1), Rel("U", 1))))),
      Constraint::Contain(Rel("S", 1), Select(c, Rel("T", 1)))};
  // Force the right-compose path (left compose also succeeds on this one).
  EliminateOptions opts;
  opts.enable_left_compose = false;
  EliminateOutcome out = Eliminate(cs, "S", 1, opts);
  ASSERT_TRUE(out.success) << out.failure_reason;
  EXPECT_EQ(out.step, EliminateStep::kRightCompose);
  for (const Constraint& cc : out.constraints) {
    EXPECT_FALSE(ContainsSkolem(cc.lhs) || ContainsSkolem(cc.rhs))
        << cc.ToString();
  }

  Signature sig;
  for (auto& [n, a] : std::vector<std::pair<std::string, int>>{
           {"R", 1}, {"S", 1}, {"T", 1}, {"U", 1}}) {
    ASSERT_TRUE(sig.AddRelation(n, a).ok());
  }
  ExpectSound(cs, out.constraints, sig, 107);
}

TEST(EliminateTest, PaperExample17DeskolemizationFails) {
  // The Fagin et al. example where eliminating C is impossible; deskolemize
  // must fail at step 3 (repeated function symbol) and C is kept.
  // E,F,C,G binary (the paper's target relation "D" renamed to avoid the
  // reserved active-domain symbol).
  ExprPtr e = Rel("E", 2), f = Rel("F", 2), cc = Rel("C", 2), g = Rel("G", 2);
  Condition sel = Condition::And(Condition::AttrCmp(1, CmpOp::kEq, 3),
                                 Condition::AttrCmp(2, CmpOp::kEq, 5));
  ConstraintSet cs{
      Constraint::Contain(e, f),
      Constraint::Contain(Project({1}, e), Project({1}, cc)),
      Constraint::Contain(Project({2}, e), Project({1}, cc)),
      Constraint::Contain(
          Project({4, 6}, Select(sel, Product(Product(f, cc), cc))), g)};

  // Step 1: F is eliminable (right compose, no Skolems needed).
  EliminateOutcome out_f = Eliminate(cs, "F", 2);
  ASSERT_TRUE(out_f.success) << out_f.failure_reason;

  // Step 2: C cannot be eliminated — deskolemization fails.
  EliminateOutcome out_c = Eliminate(out_f.constraints, "C", 2);
  EXPECT_FALSE(out_c.success);
  EXPECT_NE(out_c.failure_reason.find("step 3"), std::string::npos)
      << out_c.failure_reason;
}

TEST(EliminateTest, RecursiveTransitiveClosureCannotBeEliminated) {
  // §1.3: R ⊆ S, S = tc(S), S ⊆ T — S is involved in a recursive
  // computation and appears on both sides of a constraint.
  const op::Registry& reg = op::Registry::Default();
  ExprPtr tc_s = reg.MakeOp("tc", {Rel("S", 2)}).value();
  ConstraintSet cs{Constraint::Contain(Rel("R", 2), Rel("S", 2)),
                   Constraint::Equal(Rel("S", 2), tc_s),
                   Constraint::Contain(Rel("S", 2), Rel("T", 2))};
  EliminateOutcome out = Eliminate(cs, "S", 2);
  EXPECT_FALSE(out.success);
  EXPECT_NE(out.failure_reason.find("both sides"), std::string::npos);
}

TEST(EliminateTest, DisablingStepsChangesOutcome) {
  ConstraintSet cs{
      Constraint::Contain(Rel("R", 1), Rel("S", 1)),
      Constraint::Contain(Rel("S", 1), Rel("T", 1))};
  EliminateOptions only_right;
  only_right.enable_unfold = false;
  only_right.enable_left_compose = false;
  EliminateOutcome out = Eliminate(cs, "S", 1, only_right);
  ASSERT_TRUE(out.success);
  EXPECT_EQ(out.step, EliminateStep::kRightCompose);
  ASSERT_EQ(out.constraints.size(), 1u);
  // Right compose: bound R ⊆ S substituted into S ⊆ T: R ⊆ T.
  EXPECT_TRUE(ExprEquals(out.constraints[0].lhs, Rel("R", 1)));
  EXPECT_TRUE(ExprEquals(out.constraints[0].rhs, Rel("T", 1)));

  EliminateOptions nothing;
  nothing.enable_unfold = false;
  nothing.enable_left_compose = false;
  nothing.enable_right_compose = false;
  EXPECT_FALSE(Eliminate(cs, "S", 1, nothing).success);
}

TEST(EliminateTest, EqualityConstraintsSplitForComposition) {
  // S = R (equality, no complex expression): unfolding handles it, but with
  // unfolding disabled left compose must split the equality and succeed.
  ConstraintSet cs{Constraint::Equal(Rel("S", 1), Rel("R", 1)),
                   Constraint::Contain(Rel("S", 1), Rel("T", 1))};
  EliminateOptions no_unfold;
  no_unfold.enable_unfold = false;
  EliminateOutcome out = Eliminate(cs, "S", 1, no_unfold);
  ASSERT_TRUE(out.success) << out.failure_reason;

  Signature sig;
  for (auto& [n, a] : std::vector<std::pair<std::string, int>>{
           {"S", 1}, {"R", 1}, {"T", 1}}) {
    ASSERT_TRUE(sig.AddRelation(n, a).ok());
  }
  ExpectSound(cs, out.constraints, sig, 109);
}

TEST(EliminateTest, BlowupGuardAborts) {
  // A tiny blowup budget forces failure even when composition would work.
  ConstraintSet cs{
      Constraint::Contain(Rel("R", 1), Rel("S", 1)),
      Constraint::Contain(Rel("S", 1),
                          Union(Union(Rel("T", 1), Rel("U", 1)),
                                Union(Rel("V", 1), Rel("W", 1))))};
  EliminateOptions opts;
  opts.max_blowup_factor = 0;
  EliminateOutcome out = Eliminate(cs, "S", 1, opts);
  EXPECT_FALSE(out.success);
  EXPECT_NE(out.failure_reason.find("blowup"), std::string::npos);
}

TEST(EliminateTest, LeftOuterJoinSecondArgumentBlocksElimination) {
  // lojoin is monotone in arg 1 only; S in arg 2 on a rhs blocks left
  // compose, and right-normalization has no rule for it either.
  const op::Registry& reg = op::Registry::Default();
  ExprPtr lo = reg.MakeOp("lojoin", {Rel("T", 1), Rel("S", 1)},
                          Condition::AttrCmp(1, CmpOp::kEq, 2))
                   .value();
  ConstraintSet cs{Constraint::Contain(Rel("R", 2), lo),
                   Constraint::Contain(Rel("S", 1), Rel("U", 1))};
  EliminateOutcome out = Eliminate(cs, "S", 1);
  EXPECT_FALSE(out.success);
}

TEST(EliminateTest, LeftOuterJoinFirstArgumentComposes) {
  // S in lojoin's first (monotone) argument on the lhs: right compose can
  // substitute the lower bound straight through the user-defined operator.
  const op::Registry& reg = op::Registry::Default();
  ExprPtr lo = reg.MakeOp("lojoin", {Rel("S", 1), Rel("T", 1)},
                          Condition::AttrCmp(1, CmpOp::kEq, 2))
                   .value();
  ConstraintSet cs{Constraint::Contain(Rel("R", 1), Rel("S", 1)),
                   Constraint::Contain(lo, Rel("U", 2))};
  EliminateOutcome out = Eliminate(cs, "S", 1);
  ASSERT_TRUE(out.success) << out.failure_reason;
  EXPECT_EQ(out.step, EliminateStep::kRightCompose);
  ASSERT_EQ(out.constraints.size(), 1u);
  EXPECT_EQ(out.constraints[0].lhs->kind(), ExprKind::kUserOp);
  EXPECT_TRUE(ContainsRelation(out.constraints[0].lhs, "R"));
}

}  // namespace
}  // namespace mapcomp
