// Tests for the simulated schema registry and its shared RNG helpers:
// seeded determinism across instances, warm (incremental) recomposition
// matching the cold oracle after every edit, Zipf sampling bounds and
// skew, depth capping, and revision byte-variance with fixed endpoints.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/rand.h"
#include "src/simulator/registry.h"

namespace mapcomp {
namespace sim {
namespace {

RegistryOptions SmallRegistry() {
  RegistryOptions options;
  options.families = 3;
  options.initial_depth = 4;
  options.max_depth = 8;
  options.schema_size = 3;
  options.seed = 123;
  return options;
}

TEST(ZipfSamplerTest, SamplesInRangeAndSkewsTowardRankZero) {
  std::mt19937_64 rng(7);
  rnd::ZipfSampler zipf(8, 1.5);
  EXPECT_EQ(zipf.size(), 8);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 4000; ++i) {
    int rank = zipf.Sample(&rng);
    ASSERT_GE(rank, 0);
    ASSERT_LT(rank, 8);
    ++counts[static_cast<size_t>(rank)];
  }
  // Rank 0 dominates the tail under s=1.5; no tight distribution check,
  // just the ordering that the edit stream relies on.
  EXPECT_GT(counts[0], counts[7] * 4);
  EXPECT_GT(counts[0], 1000);

  // Degenerate sizes stay well-defined.
  rnd::ZipfSampler single(1, 2.0);
  EXPECT_EQ(single.Sample(&rng), 0);
}

TEST(RandTest, DeriveSeedSeparatesStreams) {
  uint64_t base = 42;
  EXPECT_NE(rnd::DeriveSeed(base, 0), rnd::DeriveSeed(base, 1));
  EXPECT_NE(rnd::DeriveSeed(base, 0), rnd::DeriveSeed(base + 1, 0));
  EXPECT_EQ(rnd::DeriveSeed(base, 3), rnd::DeriveSeed(base, 3));
}

TEST(SchemaRegistryTest, SeededRunsAreByteIdentical) {
  runtime::ComposeService service_a, service_b;
  SchemaRegistry a(SmallRegistry(), &service_a);
  SchemaRegistry b(SmallRegistry(), &service_b);
  ASSERT_EQ(a.families(), 3);
  ASSERT_EQ(a.TotalVersions(), b.TotalVersions());

  for (int step = 0; step < 25; ++step) {
    Result<runtime::ChainResult> ra = a.Step();
    Result<runtime::ChainResult> rb = b.Step();
    ASSERT_TRUE(ra.ok() && rb.ok()) << "step " << step;
    EXPECT_EQ(ra.value().fingerprint, rb.value().fingerprint);
    EXPECT_EQ(a.last_edit().family, b.last_edit().family);
    EXPECT_EQ(a.last_edit().append, b.last_edit().append);
    EXPECT_EQ(a.last_edit().position, b.last_edit().position);
  }
  EXPECT_EQ(a.stats().appends, b.stats().appends);
  EXPECT_EQ(a.stats().prefix_hits, b.stats().prefix_hits);
}

TEST(SchemaRegistryTest, IncrementalStepMatchesColdOracleEveryEdit) {
  runtime::ComposeService service;
  SchemaRegistry registry(SmallRegistry(), &service);
  for (int step = 0; step < 20; ++step) {
    Result<runtime::ChainResult> warm = registry.Step();
    ASSERT_TRUE(warm.ok()) << "step " << step;
    Result<runtime::ChainResult> cold =
        registry.ComposeFamilyCold(registry.last_edit().family);
    ASSERT_TRUE(cold.ok());
    EXPECT_EQ(warm.value().fingerprint, cold.value().fingerprint)
        << "step " << step;
    EXPECT_EQ(warm.value().result_fingerprint,
              cold.value().result_fingerprint);
  }
}

TEST(SchemaRegistryTest, WorkPerEditIsTheAffectedSuffixNotTheChain) {
  RegistryOptions options = SmallRegistry();
  options.initial_depth = 6;
  options.max_depth = 12;
  runtime::ComposeService service;
  SchemaRegistry registry(options, &service);
  for (int step = 0; step < 40; ++step) ASSERT_TRUE(registry.Step().ok());

  const RegistryStats& stats = registry.stats();
  EXPECT_GT(stats.PrefixHitRate(), 0.0);
  // O(affected suffix): mean compositions per edit well under the cold
  // cost of MeanDepth()-1 per edit.
  EXPECT_LT(stats.CompositionsPerEdit(), stats.MeanDepth() - 1.0);
  EXPECT_EQ(stats.steps, 40u);
  EXPECT_EQ(stats.appends + stats.revisions, 40u);
  EXPECT_NE(stats.ToString().find("prefix hit rate"), std::string::npos);
  // The composer's counters saw the same traffic.
  EXPECT_EQ(registry.chain_composer()->Stats().prefix_hits,
            stats.prefix_hits);
}

TEST(SchemaRegistryTest, ChainsNeverExceedMaxDepth) {
  RegistryOptions options = SmallRegistry();
  options.families = 2;
  options.initial_depth = 3;
  options.max_depth = 4;
  options.revise_fraction = 0.0;  // only the depth cap forces revisions
  runtime::ComposeService service;
  SchemaRegistry registry(options, &service);
  for (int step = 0; step < 30; ++step) {
    ASSERT_TRUE(registry.Step().ok());
    for (int f = 0; f < registry.families(); ++f) {
      EXPECT_LE(registry.ChainDepth(f), 4);
    }
  }
  // With both families capped, appends must have given way to revisions.
  EXPECT_GT(registry.stats().revisions, 0u);
}

TEST(SchemaRegistryTest, RevisionsChangeBytesButKeepEndpoints) {
  RegistryOptions options = SmallRegistry();
  options.revise_fraction = 1.0;  // every edit is a revision
  runtime::ComposeService service;
  SchemaRegistry registry(options, &service);

  for (int step = 0; step < 10; ++step) {
    std::vector<std::vector<std::string>> before;
    for (int f = 0; f < registry.families(); ++f) {
      std::vector<std::string> prints;
      for (const Mapping& m : registry.Chain(f)) {
        prints.push_back(m.Fingerprint());
      }
      before.push_back(std::move(prints));
    }

    ASSERT_TRUE(registry.Step().ok());
    const RegistryEdit& edit = registry.last_edit();
    ASSERT_FALSE(edit.append);
    const Mapping& revised =
        registry.Chain(edit.family)[static_cast<size_t>(edit.position)];
    // Byte-different mapping (the cache must re-key it) …
    EXPECT_NE(revised.Fingerprint(),
              before[static_cast<size_t>(edit.family)]
                    [static_cast<size_t>(edit.position)]);
    // … with endpoints intact (the chain still validates and composes).
    ASSERT_TRUE(revised.Validate().ok());
    EXPECT_TRUE(registry.ComposeFamily(edit.family).ok());
  }
}

}  // namespace
}  // namespace sim
}  // namespace mapcomp
