// The literature suite (paper §4): 22 composition problems reconstructed
// from the paper and its cited works — see src/testdata/literature_suite.h
// for provenance. Each problem is checked against its expected elimination
// outcome and double-checked semantically: every sampled model of
// Σ12 ∪ Σ23 must satisfy the composed output.

#include "src/testdata/literature_suite.h"

#include <gtest/gtest.h>

#include <cctype>
#include <random>

#include "src/compose/compose.h"
#include "src/eval/checker.h"
#include "src/eval/generator.h"
#include "src/parser/parser.h"

namespace mapcomp {
namespace {

using testdata::LiteratureProblem;

class LiteratureTest : public ::testing::TestWithParam<LiteratureProblem> {};

TEST_P(LiteratureTest, ComposesAsExpected) {
  const LiteratureProblem& prob = GetParam();
  Parser parser;
  Result<CompositionProblem> parsed = parser.ParseProblem(prob.text);
  ASSERT_TRUE(parsed.ok()) << prob.name << ": " << parsed.status().ToString();
  CompositionResult res = Compose(*parsed);
  EXPECT_EQ(res.total_count, prob.expect_total) << prob.name;
  EXPECT_EQ(res.eliminated_count, prob.expect_eliminated)
      << prob.name << "\n" << res.Report();
}

TEST_P(LiteratureTest, CompositionIsSound) {
  const LiteratureProblem& prob = GetParam();
  Parser parser;
  CompositionProblem p = parser.ParseProblem(prob.text).value();
  CompositionResult res = Compose(p);

  Signature all;
  for (const Signature* s : {&p.sigma1, &p.sigma2, &p.sigma3}) {
    for (const std::string& n : s->names()) {
      ASSERT_TRUE(all.AddRelation(n, s->ArityOf(n)).ok());
    }
  }
  ConstraintSet input = p.sigma12;
  input.insert(input.end(), p.sigma23.begin(), p.sigma23.end());

  std::mt19937_64 rng(0xC0FFEE);
  GenOptions gen;
  gen.domain_size = 2;
  gen.max_tuples_per_rel = 2;
  int checked = 0;
  for (int round = 0; round < 120 && checked < 10; ++round) {
    Instance db = round == 0 ? Instance() : RandomInstance(all, &rng, gen);
    Result<bool> sat_in = SatisfiesAll(db, input);
    ASSERT_TRUE(sat_in.ok()) << prob.name;
    if (!*sat_in) continue;
    ++checked;
    Result<bool> sat_out = SatisfiesAll(db, res.constraints);
    ASSERT_TRUE(sat_out.ok()) << prob.name;
    EXPECT_TRUE(*sat_out) << prob.name << "\ninstance:\n"
                          << db.ToString() << "output:\n"
                          << ConstraintSetToString(res.constraints);
  }
  EXPECT_GT(checked, 0) << prob.name << ": no satisfying instances sampled";
}

INSTANTIATE_TEST_SUITE_P(
    Suite, LiteratureTest, ::testing::ValuesIn(testdata::LiteratureSuite()),
    [](const ::testing::TestParamInfo<LiteratureProblem>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace mapcomp
