#include "src/simulator/scenarios.h"

#include <gtest/gtest.h>

namespace mapcomp {
namespace sim {
namespace {

EditingScenarioOptions SmallEditing(uint64_t seed) {
  EditingScenarioOptions opts;
  opts.schema_size = 6;
  opts.num_edits = 12;
  opts.seed = seed;
  return opts;
}

TEST(EditingScenarioTest, RunsAndEliminatesMostSymbols) {
  EditingScenarioResult res = RunEditingScenario(SmallEditing(1));
  EXPECT_GT(res.symbols_total, 0);
  // The paper reports 50-100% elimination across tasks; identity copies
  // dominate small runs, so well over half must go.
  EXPECT_GE(res.EliminatedFraction(), 0.5)
      << "eliminated " << res.symbols_eliminated << "/" << res.symbols_total;
  EXPECT_TRUE(res.final_mapping.Validate().ok());
}

TEST(EditingScenarioTest, PerPrimitiveStatsCoverApppliedEdits) {
  EditingScenarioResult res = RunEditingScenario(SmallEditing(2));
  int edits = 0;
  for (const auto& [p, stats] : res.per_primitive) {
    edits += stats.edits;
    EXPECT_GE(stats.EliminatedFraction(), 0.0);
    EXPECT_LE(stats.EliminatedFraction(), 1.0);
  }
  // First edit initializes, the rest compose.
  EXPECT_EQ(edits, 11);
}

TEST(EditingScenarioTest, DisablingUnfoldingWeakensElimination) {
  EditingScenarioOptions with = SmallEditing(3);
  EditingScenarioOptions without = SmallEditing(3);
  without.compose.eliminate.enable_unfold = false;
  EditingScenarioResult res_with = RunEditingScenario(with);
  EditingScenarioResult res_without = RunEditingScenario(without);
  // Identical seeds: disabling a step can only keep or reduce success.
  EXPECT_LE(res_without.EliminatedFraction(),
            res_with.EliminatedFraction() + 1e-9);
}

TEST(EditingScenarioTest, KeysProduceLargerMappings) {
  EditingScenarioOptions plain = SmallEditing(4);
  EditingScenarioOptions keyed = SmallEditing(4);
  keyed.simulator.primitives.enable_keys = true;
  EditingScenarioResult res_plain = RunEditingScenario(plain);
  EditingScenarioResult res_keyed = RunEditingScenario(keyed);
  int plain_ops = OperatorCount(res_plain.final_mapping.constraints);
  int keyed_ops = OperatorCount(res_keyed.final_mapping.constraints);
  // Key constraints inflate the mappings (paper: 218 vs 95 constraints).
  EXPECT_GT(keyed_ops, 0);
  EXPECT_GT(plain_ops, 0);
  EXPECT_GE(res_keyed.EliminatedFraction(), 0.0);
}

TEST(ReconciliationScenarioTest, RunsOnSmallSchemas) {
  ReconciliationScenarioOptions opts;
  opts.schema_size = 6;
  opts.num_edits = 6;
  opts.seed = 5;
  opts.max_branch_attempts = 2;
  ReconciliationScenarioResult res = RunReconciliationScenario(opts);
  EXPECT_EQ(res.symbols_total, 6);
  EXPECT_GE(res.symbols_eliminated, 0);
  EXPECT_LE(res.symbols_eliminated, res.symbols_total);
}

TEST(ReconciliationScenarioTest, LargerSchemaEliminatesMore) {
  // Paper Figure 6: a larger intermediate schema makes composition easier
  // because random edits are less likely to interact. Use aggregate over a
  // couple of seeds to damp variance.
  auto fraction_at = [](int size) {
    double total = 0, elim = 0;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      ReconciliationScenarioOptions opts;
      opts.schema_size = size;
      opts.num_edits = 8;
      opts.seed = seed;
      opts.max_branch_attempts = 2;
      ReconciliationScenarioResult res = RunReconciliationScenario(opts);
      total += res.symbols_total;
      elim += res.symbols_eliminated;
    }
    return elim / total;
  };
  double small = fraction_at(4);
  double large = fraction_at(16);
  EXPECT_GE(large, small - 0.25);  // trend holds modulo sampling noise
}

}  // namespace
}  // namespace sim
}  // namespace mapcomp
