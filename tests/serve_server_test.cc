// Loopback integration tests for the serving tier: fingerprint parity with
// direct composition, cache-aware admission (probe bypass + hit flag),
// protocol-error handling (framing desync closes, malformed bodies don't),
// and deterministic backpressure — a provably full admission queue sheds
// with kOverloaded while admitted work completes correctly. The TSan CI
// job runs this file (I/O thread + dispatchers + compose pool).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/compose_service.h"
#include "src/serve/compose_client.h"
#include "src/serve/compose_server.h"
#include "src/simulator/scenarios.h"

namespace mapcomp {
namespace serve {
namespace {

using runtime::ComposeService;
using runtime::ComposeServiceOptions;

std::unique_ptr<ComposeClient> MustConnect(int port) {
  Result<std::unique_ptr<ComposeClient>> client =
      ComposeClient::Connect("127.0.0.1", port);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return client.ok() ? std::move(*client) : nullptr;
}

TEST(ComposeServerTest, LoopbackComposeMatchesDirectCompose) {
  ComposeService service;
  ComposeServer server(&service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  auto client = MustConnect(server.port());
  ASSERT_NE(client, nullptr);

  for (int width = 2; width <= 6; ++width) {
    CompositionProblem problem = sim::BuildFanoutProblem(width);
    std::string direct_fp =
        Compose(problem, service.default_options()).Fingerprint();

    Result<ServeReply> reply = client->Call(
        ServeRequest::Of(std::move(problem), static_cast<uint64_t>(width)));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->status, WireStatus::kOk);
    EXPECT_EQ(reply->request_id, static_cast<uint64_t>(width));
    // The wire answer is the direct answer: one fingerprint, two paths.
    EXPECT_EQ(reply->result.Fingerprint(), direct_fp);
  }

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.requests_parsed, 5u);
  EXPECT_GE(stats.replies_sent, 5u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(ComposeServerTest, HotTrafficBypassesTheQueueWithHitFlag) {
  ComposeService service;
  ComposeServer server(&service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server.port());
  ASSERT_NE(client, nullptr);

  Result<ServeReply> cold =
      client->Call(ServeRequest::Of(sim::BuildFanoutProblem(4), 1));
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->status, WireStatus::kOk);
  EXPECT_FALSE(cold->cache_hit);

  Result<ServeReply> warm =
      client->Call(ServeRequest::Of(sim::BuildFanoutProblem(4), 2));
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->status, WireStatus::kOk);
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(warm->result.Fingerprint(), cold->result.Fingerprint());

  // The warm request never touched the admission queue.
  EXPECT_GE(server.Stats().cache_bypass, 1u);
}

TEST(ComposeServerTest, FramingDesyncRepliesThenCloses) {
  ComposeService service;
  ComposeServer server(&service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server.port());
  ASSERT_NE(client, nullptr);

  // A frame with corrupted magic: the stream cannot be re-trusted.
  std::string frame;
  EncodeFrame(FrameType::kRequest, "whatever", &frame);
  frame[4] = 'Z';
  ASSERT_TRUE(client->SendRaw(frame).ok());

  Result<ServeReply> reply = client->Recv();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->status, WireStatus::kInvalidArgument);

  // ...and then the server closes (clean EOF on our side).
  Result<ServeReply> eof = client->Recv();
  EXPECT_FALSE(eof.ok());
  EXPECT_GE(server.Stats().protocol_errors, 1u);
}

TEST(ComposeServerTest, MalformedBodyRefusesRequestKeepsConnection) {
  ComposeService service;
  ComposeServer server(&service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server.port());
  ASSERT_NE(client, nullptr);

  // Well-framed garbage body carrying a recognizable request_id prefix.
  std::string body;
  uint64_t id = 0xDEADBEEF;
  for (int i = 0; i < 8; ++i) {
    body.push_back(static_cast<char>((id >> (8 * i)) & 0xff));
  }
  body += "\x07garbage-after-the-id";
  std::string frame;
  EncodeFrame(FrameType::kRequest, body, &frame);
  ASSERT_TRUE(client->SendRaw(frame).ok());

  Result<ServeReply> refused = client->Recv();
  ASSERT_TRUE(refused.ok()) << refused.status().ToString();
  EXPECT_EQ(refused->status, WireStatus::kInvalidArgument);
  // The salvaged id lets the client match the refusal to its request.
  EXPECT_EQ(refused->request_id, id);

  // The length prefix kept the stream in sync: the connection still works.
  Result<ServeReply> ok =
      client->Call(ServeRequest::Of(sim::BuildFanoutProblem(3), 5));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->status, WireStatus::kOk);
  EXPECT_EQ(ok->request_id, 5u);
}

TEST(ComposeServerTest, FullQueueShedsWithOverloadedAdmittedWorkCompletes) {
  ComposeService service;
  ServerOptions options;
  options.admission_capacity = 2;
  options.dispatch_threads = 1;
  // Hold the queue provably full: dispatchers cannot pop until the gate
  // opens, so exactly capacity requests are admitted and the rest shed.
  options.admission_gate = std::make_shared<std::atomic<bool>>(false);
  ComposeServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server.port());
  ASSERT_NE(client, nullptr);

  // Pipeline 8 distinct (uncached) problems in one burst.
  constexpr int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(
        client
            ->Send(ServeRequest::Of(
                sim::BuildFanoutProblem(2 + i, /*chain_overlap=*/true),
                static_cast<uint64_t>(100 + i)))
            .ok());
  }

  // Sheds come back immediately (written by the I/O thread); collect them
  // before opening the gate so the full-queue state is observed, not
  // raced.
  std::map<uint64_t, ServeReply> replies;
  for (int i = 0; i < kBurst - 2; ++i) {
    Result<ServeReply> r = client->Recv();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, WireStatus::kOverloaded);
    replies.emplace(r->request_id, std::move(*r));
  }

  options.admission_gate->store(true);
  for (int i = 0; i < 2; ++i) {
    Result<ServeReply> r = client->Recv();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, WireStatus::kOk) << "id " << r->request_id;
    replies.emplace(r->request_id, std::move(*r));
  }
  ASSERT_EQ(replies.size(), static_cast<size_t>(kBurst));

  // FIFO admission: the first two requests were admitted, the rest shed —
  // and the admitted ones composed the right answers.
  for (int i = 0; i < kBurst; ++i) {
    uint64_t id = static_cast<uint64_t>(100 + i);
    ASSERT_TRUE(replies.count(id)) << "missing reply " << id;
    const ServeReply& reply = replies.at(id);
    if (i < 2) {
      EXPECT_EQ(reply.status, WireStatus::kOk) << "id " << id;
      std::string direct_fp =
          Compose(sim::BuildFanoutProblem(2 + i, /*chain_overlap=*/true),
                  service.default_options())
              .Fingerprint();
      EXPECT_EQ(reply.result.Fingerprint(), direct_fp);
    } else {
      EXPECT_EQ(reply.status, WireStatus::kOverloaded) << "id " << id;
    }
  }

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.sheds, static_cast<uint64_t>(kBurst - 2));
  EXPECT_EQ(stats.queue_depth_watermark, 2u);
  EXPECT_EQ(stats.requests_parsed, static_cast<uint64_t>(kBurst));
}

TEST(ComposeServerTest, StaleQueuedRequestsTimeOutInsteadOfComposing) {
  ComposeService service;
  ServerOptions options;
  options.queue_timeout_ms = 20;
  options.dispatch_threads = 1;
  options.admission_gate = std::make_shared<std::atomic<bool>>(false);
  ComposeServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server.port());
  ASSERT_NE(client, nullptr);

  ASSERT_TRUE(
      client->Send(ServeRequest::Of(sim::BuildFanoutProblem(5), 9)).ok());
  // Let the request age past the deadline while the gate holds it queued.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  options.admission_gate->store(true);

  Result<ServeReply> reply = client->Recv();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->status, WireStatus::kTimeout);
  EXPECT_EQ(reply->request_id, 9u);
  EXPECT_EQ(server.Stats().timeouts, 1u);
}

TEST(ComposeServerTest, ManyConcurrentClientsAgreeWithDirectCompose) {
  ComposeService service;
  ServerOptions options;
  options.dispatch_threads = 3;
  ComposeServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  constexpr int kRequestsEach = 12;
  std::vector<std::string> direct(5);
  for (int w = 0; w < 5; ++w) {
    direct[w] = Compose(sim::BuildFanoutProblem(2 + w),
                        service.default_options())
                    .Fingerprint();
  }

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = MustConnect(server.port());
      if (!client) {
        ++failures;
        return;
      }
      for (int i = 0; i < kRequestsEach; ++i) {
        int w = (c + i) % 5;
        Result<ServeReply> reply = client->Call(ServeRequest::Of(
            sim::BuildFanoutProblem(2 + w), static_cast<uint64_t>(i)));
        if (!reply.ok() || reply->status != WireStatus::kOk) {
          ++failures;
          continue;
        }
        if (reply->result.Fingerprint() != direct[w]) ++mismatches;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  // 96 requests over 5 distinct problems: almost everything was a cache
  // answer (bypass or join), and nothing raced (TSan-checked).
  EXPECT_EQ(server.Stats().requests_parsed,
            static_cast<uint64_t>(kClients * kRequestsEach));
}

TEST(ComposeServerTest, StopDrainsAdmittedWorkBeforeClosing) {
  ComposeService service;
  ServerOptions options;
  options.dispatch_threads = 1;
  // The closed gate pins the request in the admission queue until Stop —
  // draining overrides the gate, so the shutdown itself must compose and
  // answer it. No accepted request is silently dropped.
  options.admission_gate = std::make_shared<std::atomic<bool>>(false);
  ComposeServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server.port());
  ASSERT_NE(client, nullptr);

  CompositionProblem problem = sim::BuildFanoutProblem(4);
  std::string direct_fp =
      Compose(problem, service.default_options()).Fingerprint();
  ASSERT_TRUE(client->Send(ServeRequest::Of(std::move(problem), 11)).ok());
  // Wait until the request is provably queued, then stop mid-admission.
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.Stats().queue_depth_watermark < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server.Stats().queue_depth_watermark, 1u);
  server.Stop();

  Result<ServeReply> reply = client->Recv();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->status, WireStatus::kOk);
  EXPECT_EQ(reply->request_id, 11u);
  EXPECT_EQ(reply->result.Fingerprint(), direct_fp);
  // After the drained reply, the connection is gone — clean EOF.
  EXPECT_FALSE(client->Recv().ok());
}

TEST(ComposeServerTest, StopWhileIdleAndDoubleStopAreClean) {
  ComposeService service;
  auto server = std::make_unique<ComposeServer>(&service, ServerOptions{});
  ASSERT_TRUE(server->Start().ok());
  int port = server->port();
  EXPECT_GT(port, 0);
  server->Stop();
  server->Stop();  // idempotent
  server.reset();

  // A fresh server can bind a fresh ephemeral port right away.
  ComposeServer again(&service, ServerOptions{});
  ASSERT_TRUE(again.Start().ok());
  auto client = MustConnect(again.port());
  ASSERT_NE(client, nullptr);
  Result<ServeReply> reply =
      client->Call(ServeRequest::Of(sim::BuildFanoutProblem(3), 1));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, WireStatus::kOk);
}

}  // namespace
}  // namespace serve
}  // namespace mapcomp
