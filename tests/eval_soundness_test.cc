// Semantic compose-soundness harness coverage: every composition the
// algorithm produces must agree with the original two-mapping pipeline on
// generated finite instances (paper §2 equivalence), and a deliberately
// wrong "composition" must be caught.

#include <gtest/gtest.h>

#include "src/algebra/builders.h"
#include "src/eval/soundness.h"
#include "src/parser/parser.h"
#include "src/simulator/scenarios.h"
#include "src/testdata/literature_suite.h"

namespace mapcomp {
namespace {

TEST(CompositionSoundnessTest, LiteratureSuiteIsSound) {
  Parser parser;
  int total_original_satisfied = 0;
  for (const testdata::LiteratureProblem& lit : testdata::LiteratureSuite()) {
    CompositionProblem problem = parser.ParseProblem(lit.text).value();
    CompositionResult composed = Compose(problem);
    Result<CompositionCheck> check =
        CheckComposition(problem, composed, /*generator_seed=*/1234,
                         /*n_instances=*/10);
    ASSERT_TRUE(check.ok()) << lit.name << ": "
                            << check.status().ToString();
    EXPECT_TRUE(check->sound) << lit.name << "\n" << check->Report();
    EXPECT_EQ(check->violations, 0) << lit.name;
    EXPECT_EQ(check->instances, 10) << lit.name;
    total_original_satisfied += check->original_satisfied;
  }
  // The harness must not be vacuous: across the suite, plenty of generated
  // instances actually satisfy the original pipelines (chase repair).
  EXPECT_GT(total_original_satisfied, 40);
}

TEST(CompositionSoundnessTest, FanoutShapesAreSound) {
  for (bool overlap : {false, true}) {
    CompositionProblem problem = sim::BuildFanoutProblem(5, overlap);
    CompositionResult composed = Compose(problem);
    CompositionCheckOptions options;
    options.eval.jobs = 4;  // shard satisfaction checks across lanes
    options.eval.parallel_threshold = 8;
    Result<CompositionCheck> check =
        CheckComposition(problem, composed, 99, 8, options);
    ASSERT_TRUE(check.ok()) << check.status().ToString();
    EXPECT_TRUE(check->sound) << check->Report();
    EXPECT_GT(check->original_satisfied, 0);
  }
}

TEST(CompositionSoundnessTest, CheckResultsIdenticalAcrossEvalJobs) {
  Parser parser;
  CompositionProblem problem =
      parser.ParseProblem(testdata::LiteratureSuite()[0].text).value();
  CompositionResult composed = Compose(problem);
  CompositionCheckOptions a, b;
  a.eval.jobs = 1;
  b.eval.jobs = 8;
  b.eval.parallel_threshold = 2;
  Result<CompositionCheck> ca = CheckComposition(problem, composed, 7, 12, a);
  Result<CompositionCheck> cb = CheckComposition(problem, composed, 7, 12, b);
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cb.ok());
  EXPECT_EQ(ca->original_satisfied, cb->original_satisfied);
  EXPECT_EQ(ca->composed_satisfied, cb->composed_satisfied);
  EXPECT_EQ(ca->violations, cb->violations);
  EXPECT_EQ(ca->inconclusive_skolem, cb->inconclusive_skolem);
}

TEST(CompositionSoundnessTest, DetectsWrongComposition) {
  // R ⊆ S, S ⊆ T composes to R ⊆ T. Claim the reverse containment instead:
  // the harness must find instances satisfying the pipeline but not T ⊆ R.
  Parser parser;
  CompositionProblem problem = parser
                                   .ParseProblem(R"(
      schema s1 { R(2); }
      schema s2 { S(2); }
      schema s3 { T(2); }
      map m12 { R <= S; }
      map m23 { S <= T; })")
                                   .value();
  CompositionResult bogus;
  bogus.sigma = *Signature::Merge(problem.sigma1, problem.sigma3);
  bogus.constraints = {Constraint::Contain(Rel("T", 2), Rel("R", 2))};
  bogus.eliminated_count = 1;
  bogus.total_count = 1;
  Result<CompositionCheck> check =
      CheckComposition(problem, bogus, 5, 40);
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_FALSE(check->sound) << check->Report();
  EXPECT_GT(check->violations, 0);
  EXPECT_FALSE(check->counterexamples.empty());
}

TEST(CompositionSoundnessTest, CompletenessProbeFindsExtensions) {
  // Tiny domain so FindExtension's bounded search is feasible: every
  // instance whose restriction satisfies R ⊆ T must extend to an S with
  // R ⊆ S ⊆ T — and does, because S := R works.
  Parser parser;
  CompositionProblem problem = parser
                                   .ParseProblem(R"(
      schema s1 { R(2); }
      schema s2 { S(2); }
      schema s3 { T(2); }
      map m12 { R <= S; }
      map m23 { S <= T; })")
                                   .value();
  CompositionResult composed = Compose(problem);
  ASSERT_TRUE(composed.residual_sigma2.empty());
  CompositionCheckOptions options;
  options.gen.domain_size = 2;
  options.gen.max_tuples_per_rel = 2;
  options.completeness_samples = 4;
  Result<CompositionCheck> check =
      CheckComposition(problem, composed, 21, 24, options);
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_TRUE(check->sound);
  EXPECT_GT(check->completeness_checked, 0);
  EXPECT_EQ(check->completeness_checked, check->completeness_witnessed)
      << check->Report();
}

TEST(CompositionSoundnessTest, ReportMentionsVerdict) {
  Parser parser;
  CompositionProblem problem =
      parser.ParseProblem(testdata::LiteratureSuite()[1].text).value();
  CompositionResult composed = Compose(problem);
  Result<CompositionCheck> check = CheckComposition(problem, composed, 3, 6);
  ASSERT_TRUE(check.ok());
  EXPECT_NE(check->Report().find("verdict: SOUND"), std::string::npos);
}

}  // namespace
}  // namespace mapcomp
