#include "src/compose/monotone.h"

#include <gtest/gtest.h>

#include "src/algebra/builders.h"

namespace mapcomp {
namespace {

Mono M(const ExprPtr& e, const std::string& s = "S") {
  return CheckMonotone(e, s);
}

TEST(MonotoneTest, BaseCases) {
  EXPECT_EQ(M(Rel("S", 2)), Mono::kMonotone);
  EXPECT_EQ(M(Rel("T", 2)), Mono::kIndependent);
  EXPECT_EQ(M(EmptyRel(2)), Mono::kIndependent);
  EXPECT_EQ(M(Lit(1, {{Value(int64_t{1})}})), Mono::kIndependent);
  EXPECT_EQ(M(Dom(2)), Mono::kMonotone);  // D grows with every relation
}

TEST(MonotoneTest, PaperExampleProductIsMonotone) {
  // §3.3: MONOTONE(S × T, S) = 'm'.
  EXPECT_EQ(M(Product(Rel("S", 1), Rel("T", 1))), Mono::kMonotone);
}

TEST(MonotoneTest, PaperExampleSelfDifferenceIsUnknown) {
  // §3.3: MONOTONE(σ_c1(S) − σ_c2(S), S) = 'u'.
  ExprPtr e = Difference(
      Select(Condition::AttrConst(1, CmpOp::kEq, int64_t{1}), Rel("S", 1)),
      Select(Condition::AttrConst(1, CmpOp::kEq, int64_t{2}), Rel("S", 1)));
  EXPECT_EQ(M(e), Mono::kUnknown);
}

TEST(MonotoneTest, SelectProjectPassThrough) {
  EXPECT_EQ(M(Select(Condition::True(), Rel("S", 2))), Mono::kMonotone);
  EXPECT_EQ(M(Project({1}, Rel("S", 2))), Mono::kMonotone);
  EXPECT_EQ(M(Project({1}, Difference(Rel("T", 2), Rel("S", 2)))),
            Mono::kAnti);
}

TEST(MonotoneTest, DifferencePolarity) {
  // R − S: monotone in R, anti-monotone in S (§1.3).
  ExprPtr e = Difference(Rel("R", 2), Rel("S", 2));
  EXPECT_EQ(CheckMonotone(e, "R"), Mono::kMonotone);
  EXPECT_EQ(CheckMonotone(e, "S"), Mono::kAnti);
  EXPECT_EQ(CheckMonotone(e, "Z"), Mono::kIndependent);
}

TEST(MonotoneTest, DoubleNegationRestoresMonotone) {
  // T − (T' − S) is monotone in S.
  ExprPtr e = Difference(Rel("T", 2), Difference(Rel("U", 2), Rel("S", 2)));
  EXPECT_EQ(M(e), Mono::kMonotone);
}

TEST(MonotoneTest, MixedPolarityIsUnknown) {
  // S ∪ (T − S): 'm' ⊕ 'a' = 'u'.
  ExprPtr e = Union(Rel("S", 2), Difference(Rel("T", 2), Rel("S", 2)));
  EXPECT_EQ(M(e), Mono::kUnknown);
}

TEST(MonotoneTest, SkolemPassThrough) {
  EXPECT_EQ(M(SkolemApp("f", {1}, Rel("S", 1))), Mono::kMonotone);
}

TEST(MonotoneTest, UserOpPolarities) {
  const op::Registry& reg = op::Registry::Default();
  ExprPtr lo =
      reg.MakeOp("lojoin", {Rel("S", 2), Rel("T", 2)}, Condition::True())
          .value();
  EXPECT_EQ(M(lo), Mono::kMonotone);  // monotone in first argument
  ExprPtr lo2 =
      reg.MakeOp("lojoin", {Rel("T", 2), Rel("S", 2)}, Condition::True())
          .value();
  EXPECT_EQ(M(lo2), Mono::kUnknown);  // unknown in second argument
  ExprPtr aj =
      reg.MakeOp("antijoin", {Rel("T", 2), Rel("S", 2)}, Condition::True())
          .value();
  EXPECT_EQ(M(aj), Mono::kAnti);  // anti-monotone in second argument
  ExprPtr sj =
      reg.MakeOp("semijoin", {Rel("S", 2), Rel("S", 2)}, Condition::True())
          .value();
  EXPECT_EQ(M(sj), Mono::kMonotone);  // monotone in both arguments
  ExprPtr tc = reg.MakeOp("tc", {Rel("S", 2)}).value();
  EXPECT_EQ(M(tc), Mono::kMonotone);
}

TEST(MonotoneTest, UnknownOperatorWithoutRegistry) {
  // An unregistered operator: 'u' through any argument containing S, 'i'
  // otherwise (the "tolerance for unknown operators" of §1.3).
  ExprPtr e = UserOpExpr("mystery", {Rel("S", 2)}, 2);
  op::Registry empty = op::Registry::Empty();
  EXPECT_EQ(CheckMonotone(e, "S", &empty), Mono::kUnknown);
  EXPECT_EQ(CheckMonotone(e, "T", &empty), Mono::kIndependent);
}

TEST(MonotoneTest, IsMonotoneOrIndependent) {
  EXPECT_TRUE(IsMonotoneOrIndependent(Rel("S", 1), "S"));
  EXPECT_TRUE(IsMonotoneOrIndependent(Rel("T", 1), "S"));
  EXPECT_FALSE(
      IsMonotoneOrIndependent(Difference(Rel("T", 1), Rel("S", 1)), "S"));
}

TEST(MonotoneTest, MonoToChar) {
  EXPECT_EQ(MonoToChar(Mono::kMonotone), 'm');
  EXPECT_EQ(MonoToChar(Mono::kAnti), 'a');
  EXPECT_EQ(MonoToChar(Mono::kIndependent), 'i');
  EXPECT_EQ(MonoToChar(Mono::kUnknown), 'u');
}

}  // namespace
}  // namespace mapcomp
