#include "src/compose/normalize_left.h"

#include <gtest/gtest.h>

#include <random>

#include "src/algebra/builders.h"
#include "src/algebra/print.h"
#include "src/eval/checker.h"
#include "src/eval/generator.h"

namespace mapcomp {
namespace {

const op::Registry& Reg() { return op::Registry::Default(); }

/// Property check: the input constraints and (others + S ⊆ bound) have the
/// same models — they are over the same relations, so equivalence is
/// per-instance agreement.
void ExpectSemanticallyEqual(const ConstraintSet& input,
                             const LeftNormalForm& nf,
                             const std::string& symbol, int arity,
                             const Signature& sig, uint64_t seed) {
  ConstraintSet normalized = nf.others;
  normalized.push_back(Constraint::Contain(Rel(symbol, arity),
                                           nf.upper_bound));
  std::mt19937_64 rng(seed);
  GenOptions gen;
  gen.domain_size = 3;
  gen.max_tuples_per_rel = 3;
  for (int round = 0; round < 40; ++round) {
    Instance db = RandomInstance(sig, &rng, gen);
    auto before = SatisfiesAll(db, input);
    auto after = SatisfiesAll(db, normalized);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(*before, *after)
        << "instance:\n" << db.ToString()
        << "input:\n" << ConstraintSetToString(input)
        << "normalized:\n" << ConstraintSetToString(normalized);
  }
}

TEST(LeftNormalizeTest, PaperExample7) {
  // R − S ⊆ T, π(S) ⊆ U  ⇒  R ⊆ S ∪ T, S ⊆ U × D^r.
  ConstraintSet input{
      Constraint::Contain(Difference(Rel("R", 2), Rel("S", 2)), Rel("T", 2)),
      Constraint::Contain(Project({1}, Rel("S", 2)), Rel("U", 1))};
  LeftNormalForm nf = LeftNormalize(input, "S", 2, &Reg()).value();
  ASSERT_EQ(nf.others.size(), 1u);
  // R ⊆ S ∪ T.
  EXPECT_TRUE(ExprEquals(nf.others[0].lhs, Rel("R", 2)));
  EXPECT_TRUE(
      ExprEquals(nf.others[0].rhs, Union(Rel("S", 2), Rel("T", 2))));
  // Bound: U × D^1 (prefix-projection identity).
  EXPECT_TRUE(ExprEquals(nf.upper_bound, Product(Rel("U", 1), Dom(1))));

  Signature sig;
  for (auto& [n, a] : std::vector<std::pair<std::string, int>>{
           {"R", 2}, {"S", 2}, {"T", 2}, {"U", 1}}) {
    ASSERT_TRUE(sig.AddRelation(n, a).ok());
  }
  ExpectSemanticallyEqual(input, nf, "S", 2, sig, 11);
}

TEST(LeftNormalizeTest, PaperExample8IntersectionFails) {
  // R ∩ S ⊆ T has no left rule.
  ConstraintSet input{
      Constraint::Contain(Intersect(Rel("R", 2), Rel("S", 2)), Rel("T", 2)),
      Constraint::Contain(Project({1}, Rel("S", 2)), Rel("U", 1))};
  EXPECT_FALSE(LeftNormalize(input, "S", 2, &Reg()).ok());
}

TEST(LeftNormalizeTest, PaperExample9TrivialBound) {
  // R ∩ T ⊆ S, U ⊆ π(S): S never on a left side alone ⇒ bound S ⊆ D^r.
  ConstraintSet input{
      Constraint::Contain(Intersect(Rel("R", 2), Rel("T", 2)), Rel("S", 2)),
      Constraint::Contain(Rel("U", 1), Project({1}, Rel("S", 2)))};
  LeftNormalForm nf = LeftNormalize(input, "S", 2, &Reg()).value();
  EXPECT_TRUE(ExprEquals(nf.upper_bound, Dom(2)));
  EXPECT_EQ(nf.others.size(), 2u);
}

TEST(LeftNormalizeTest, UnionSplits) {
  ConstraintSet input{Constraint::Contain(
      Union(Rel("S", 1), Rel("R", 1)), Rel("T", 1))};
  LeftNormalForm nf = LeftNormalize(input, "S", 1, &Reg()).value();
  ASSERT_EQ(nf.others.size(), 1u);  // R ⊆ T
  EXPECT_TRUE(ExprEquals(nf.upper_bound, Rel("T", 1)));
}

TEST(LeftNormalizeTest, SelectionRule) {
  // σ_c(S) ⊆ T ⇒ S ⊆ T ∪ (D − σ_c(D)).
  Condition c = Condition::AttrConst(1, CmpOp::kEq, int64_t{1});
  ConstraintSet input{
      Constraint::Contain(Select(c, Rel("S", 1)), Rel("T", 1))};
  LeftNormalForm nf = LeftNormalize(input, "S", 1, &Reg()).value();
  EXPECT_TRUE(ExprEquals(
      nf.upper_bound,
      Union(Rel("T", 1), Difference(Dom(1), Select(c, Dom(1))))));

  Signature sig;
  ASSERT_TRUE(sig.AddRelation("S", 1).ok());
  ASSERT_TRUE(sig.AddRelation("T", 1).ok());
  ExpectSemanticallyEqual(input, nf, "S", 1, sig, 13);
}

TEST(LeftNormalizeTest, GeneralProjectionRule) {
  // π_{2,1}(S) ⊆ R with S binary: the non-prefix index list takes the
  // general identity; verify semantically.
  ConstraintSet input{
      Constraint::Contain(Project({2, 1}, Rel("S", 2)), Rel("R", 2))};
  LeftNormalForm nf = LeftNormalize(input, "S", 2, &Reg()).value();
  Signature sig;
  ASSERT_TRUE(sig.AddRelation("S", 2).ok());
  ASSERT_TRUE(sig.AddRelation("R", 2).ok());
  ExpectSemanticallyEqual(input, nf, "S", 2, sig, 17);
}

TEST(LeftNormalizeTest, ProjectionWithRepeatedIndexes) {
  // π_{1,1}(S) ⊆ R with S unary.
  ConstraintSet input{
      Constraint::Contain(Project({1, 1}, Rel("S", 1)), Rel("R", 2))};
  LeftNormalForm nf = LeftNormalize(input, "S", 1, &Reg()).value();
  Signature sig;
  ASSERT_TRUE(sig.AddRelation("S", 1).ok());
  ASSERT_TRUE(sig.AddRelation("R", 2).ok());
  ExpectSemanticallyEqual(input, nf, "S", 1, sig, 19);
}

TEST(LeftNormalizeTest, CollapsesMultipleBounds) {
  // S ⊆ A, S ⊆ B collapse to S ⊆ A ∩ B (§3.4.1 case 1).
  ConstraintSet input{Constraint::Contain(Rel("S", 1), Rel("A", 1)),
                      Constraint::Contain(Rel("S", 1), Rel("B", 1))};
  LeftNormalForm nf = LeftNormalize(input, "S", 1, &Reg()).value();
  EXPECT_TRUE(nf.others.empty());
  EXPECT_TRUE(ExprEquals(nf.upper_bound,
                         Intersect(Rel("A", 1), Rel("B", 1))));
}

TEST(LeftNormalizeTest, NestedRewriting) {
  // σ_c(S ∪ R) − T ⊆ U needs difference, then selection, then union rules.
  Condition c = Condition::AttrConst(1, CmpOp::kLe, int64_t{2});
  ConstraintSet input{Constraint::Contain(
      Difference(Select(c, Union(Rel("S", 1), Rel("R", 1))), Rel("T", 1)),
      Rel("U", 1))};
  LeftNormalForm nf = LeftNormalize(input, "S", 1, &Reg()).value();
  Signature sig;
  for (auto& [n, a] : std::vector<std::pair<std::string, int>>{
           {"S", 1}, {"R", 1}, {"T", 1}, {"U", 1}}) {
    ASSERT_TRUE(sig.AddRelation(n, a).ok());
  }
  ExpectSemanticallyEqual(input, nf, "S", 1, sig, 23);
}

TEST(LeftNormalizeTest, SymbolOnBothSidesAfterRewriteFails) {
  // S − S ⊆ T rewrites to S ⊆ S ∪ T: S remains on both sides — reject.
  ConstraintSet input{Constraint::Contain(
      Difference(Rel("S", 1), Rel("S", 1)), Rel("T", 1))};
  EXPECT_FALSE(LeftNormalize(input, "S", 1, &Reg()).ok());
}

TEST(LeftNormalizeTest, UntouchedConstraintsPassThrough) {
  ConstraintSet input{Constraint::Contain(Rel("A", 1), Rel("B", 1)),
                      Constraint::Contain(Rel("S", 1), Rel("T", 1))};
  LeftNormalForm nf = LeftNormalize(input, "S", 1, &Reg()).value();
  ASSERT_EQ(nf.others.size(), 1u);
  EXPECT_TRUE(ExprEquals(nf.others[0].lhs, Rel("A", 1)));
}

}  // namespace
}  // namespace mapcomp
