// End-to-end composition with key constraints: the paper represents keys
// via the active-domain technique (Example 2) and uses declared keys to
// minimize Skolem arguments (§3.5.1). These tests drive both through the
// full COMPOSE pipeline.

#include <gtest/gtest.h>

#include <random>

#include "src/algebra/builders.h"
#include "src/compose/compose.h"
#include "src/eval/checker.h"
#include "src/eval/generator.h"
#include "src/parser/parser.h"
#include "src/simulator/scenarios.h"

namespace mapcomp {
namespace {

Tuple T(std::initializer_list<int64_t> vals) {
  Tuple t;
  for (int64_t v : vals) t.push_back(Value(v));
  return t;
}

TEST(ComposeKeysTest, KeyConstraintsSurviveComposition) {
  // σ2 relation S carries a key constraint; after eliminating S the key
  // must be re-expressed over the σ1 relation it mirrors.
  CompositionProblem p;
  ASSERT_TRUE(p.sigma1.AddRelation("R", 2).ok());
  ASSERT_TRUE(p.sigma2.AddRelation("S", 2).ok());
  ASSERT_TRUE(p.sigma2.SetKey("S", {1}).ok());
  ASSERT_TRUE(p.sigma3.AddRelation("U", 2).ok());
  p.sigma12 = {Constraint::Equal(Rel("R", 2), Rel("S", 2))};
  ConstraintSet key_cs = KeyConstraintsFor("S", 2, {1});
  p.sigma23 = {Constraint::Contain(Rel("S", 2), Rel("U", 2))};
  p.sigma23.insert(p.sigma23.end(), key_cs.begin(), key_cs.end());

  CompositionResult res = Compose(p);
  EXPECT_EQ(res.eliminated_count, 1);

  // The composed set must force R's first column to stay a key.
  Instance violating;
  violating.Set("R", {T({1, 2}), T({1, 3})});
  violating.Set("U", {T({1, 2}), T({1, 3})});
  EXPECT_FALSE(SatisfiesAll(violating, res.constraints).value());
  Instance fine;
  fine.Set("R", {T({1, 2}), T({2, 3})});
  fine.Set("U", {T({1, 2}), T({2, 3})});
  EXPECT_TRUE(SatisfiesAll(fine, res.constraints).value());
}

TEST(ComposeKeysTest, KeyedSkolemComposition) {
  // R(2) key(1) mapped into a wider S, then S into V: the Skolem function
  // introduced for S's third column depends only on R's key, and
  // deskolemization succeeds.
  Parser parser;
  CompositionProblem p = parser.ParseProblem(R"(
    schema s1 { R(2) key(1); }
    schema s2 { S(3); }
    schema s3 { V(3); W(1); }
    map m12 { R <= pi[1,2](S); }
    map m23 { S <= V; pi[3](S) <= W; }
  )")
                             .value();
  CompositionResult res = Compose(p);
  EXPECT_EQ(res.eliminated_count, 1) << res.Report();
  for (const Constraint& c : res.constraints) {
    EXPECT_FALSE(ContainsSkolem(c.lhs) || ContainsSkolem(c.rhs));
  }

  // Soundness: sampled models of the input satisfy the output.
  Signature all;
  for (const Signature* s : {&p.sigma1, &p.sigma2, &p.sigma3}) {
    for (const std::string& n : s->names()) {
      ASSERT_TRUE(all.AddRelation(n, s->ArityOf(n)).ok());
    }
  }
  ConstraintSet input = p.sigma12;
  input.insert(input.end(), p.sigma23.begin(), p.sigma23.end());
  std::mt19937_64 rng(31337);
  GenOptions gen;
  gen.domain_size = 2;
  gen.max_tuples_per_rel = 2;
  int checked = 0;
  for (int round = 0; round < 150 && checked < 10; ++round) {
    Instance db = round == 0 ? Instance() : RandomInstance(all, &rng, gen);
    if (!SatisfiesAll(db, input).value()) continue;
    ++checked;
    EXPECT_TRUE(SatisfiesAll(db, res.constraints).value()) << db.ToString();
  }
  EXPECT_GT(checked, 0);
}

TEST(ComposeKeysTest, VerticalPartitionRoundTrip) {
  // The V primitive's three constraints compose away when the partitions
  // are re-merged downstream: R -> (S,T) -> M with M = S ⋈ T.
  Parser parser;
  CompositionProblem p = parser.ParseProblem(R"(
    schema s1 { R(3) key(1); }
    schema s2 { S(2) key(1); T(2) key(1); }
    schema s3 { M(3); }
    map m12 {
      pi[1,2](R) = S;
      pi[1,3](R) = T;
      R = pi[1,2,4](sel[#1=#3](S * T));
    }
    map m23 { pi[1,2,4](sel[#1=#3](S * T)) <= M; }
  )")
                             .value();
  CompositionResult res = Compose(p);
  EXPECT_EQ(res.eliminated_count, 2) << res.Report();
  // Expected semantics: R ⊆ M.
  Instance db;
  db.Set("R", {T({1, 2, 3})});
  db.Set("M", {T({1, 2, 3})});
  EXPECT_TRUE(SatisfiesAll(db, res.constraints).value());
  db.Clear("M");
  EXPECT_FALSE(SatisfiesAll(db, res.constraints).value());
}

TEST(ComposeKeysTest, SimulatedKeyedEditingSoundness) {
  // Integration: a keyed editing run produces a valid final mapping whose
  // constraints hold on the all-empty instance (sanity of the whole chain).
  sim::EditingScenarioOptions opts;
  opts.schema_size = 5;
  opts.num_edits = 10;
  opts.seed = 77;
  opts.simulator.primitives.enable_keys = true;
  sim::EditingScenarioResult res = sim::RunEditingScenario(opts);
  EXPECT_TRUE(res.final_mapping.Validate().ok());
  Instance empty;
  EXPECT_TRUE(
      SatisfiesAll(empty, res.final_mapping.constraints).value());
}

}  // namespace
}  // namespace mapcomp
