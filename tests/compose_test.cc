#include "src/compose/compose.h"

#include <gtest/gtest.h>

#include <random>

#include "src/algebra/builders.h"
#include "src/algebra/print.h"
#include "src/eval/checker.h"
#include "src/eval/generator.h"
#include "src/parser/parser.h"

namespace mapcomp {
namespace {

/// Semantic equivalence of two constraint sets over the same signature,
/// spot-checked on random instances.
void ExpectEquivalent(const ConstraintSet& a, const ConstraintSet& b,
                      const Signature& sig, uint64_t seed, int rounds = 80) {
  std::mt19937_64 rng(seed);
  GenOptions gen;
  gen.domain_size = 3;
  gen.max_tuples_per_rel = 4;
  for (int round = 0; round < rounds; ++round) {
    Instance db = RandomInstance(sig, &rng, gen);
    auto sat_a = SatisfiesAll(db, a);
    auto sat_b = SatisfiesAll(db, b);
    ASSERT_TRUE(sat_a.ok());
    ASSERT_TRUE(sat_b.ok());
    EXPECT_EQ(*sat_a, *sat_b)
        << "disagreement on instance:\n" << db.ToString()
        << "a:\n" << ConstraintSetToString(a)
        << "b:\n" << ConstraintSetToString(b);
  }
}

TEST(ComposeTest, PaperExample3TransitiveContainment) {
  // {R ⊆ S, S ⊆ T} over σ2 = {S} composes to {R ⊆ T}.
  CompositionProblem p;
  ASSERT_TRUE(p.sigma1.AddRelation("R", 1).ok());
  ASSERT_TRUE(p.sigma2.AddRelation("S", 1).ok());
  ASSERT_TRUE(p.sigma3.AddRelation("T", 1).ok());
  p.sigma12 = {Constraint::Contain(Rel("R", 1), Rel("S", 1))};
  p.sigma23 = {Constraint::Contain(Rel("S", 1), Rel("T", 1))};
  CompositionResult res = Compose(p);
  EXPECT_EQ(res.eliminated_count, 1);
  ASSERT_EQ(res.constraints.size(), 1u);
  EXPECT_TRUE(ExprEquals(res.constraints[0].lhs, Rel("R", 1)));
  EXPECT_TRUE(ExprEquals(res.constraints[0].rhs, Rel("T", 1)));
  EXPECT_TRUE(res.residual_sigma2.empty());
}

TEST(ComposeTest, PaperExample1MoviesEndToEnd) {
  // The introduction's schema-editor scenario, parsed from text.
  const char* text = R"(
    schema s1 { Movies(6); }
    schema s2 { FiveStarMovies(3); }
    schema s3 { Names(2); Years(2); }
    map m12 { pi[1,2,3](sel[#4=5](Movies)) <= FiveStarMovies; }
    map m23 {
      pi[1,2](FiveStarMovies) <= Names;
      pi[1,3](FiveStarMovies) <= Years;
    }
  )";
  Parser parser;
  CompositionProblem p = parser.ParseProblem(text).value();
  CompositionResult res = Compose(p);
  EXPECT_EQ(res.eliminated_count, 1);
  EXPECT_TRUE(res.residual_sigma2.empty());

  // The paper's expected composition:
  //   π_{1,2}(σ_{4=5}(Movies)) ⊆ Names, π_{1,3}(σ_{4=5}(Movies)) ⊆ Years.
  Condition five = Condition::AttrConst(4, CmpOp::kEq, int64_t{5});
  ConstraintSet expected{
      Constraint::Contain(Project({1, 2}, Select(five, Rel("Movies", 6))),
                          Rel("Names", 2)),
      Constraint::Contain(Project({1, 3}, Select(five, Rel("Movies", 6))),
                          Rel("Years", 2))};
  Signature sig;
  ASSERT_TRUE(sig.AddRelation("Movies", 6).ok());
  ASSERT_TRUE(sig.AddRelation("Names", 2).ok());
  ASSERT_TRUE(sig.AddRelation("Years", 2).ok());
  ExpectEquivalent(res.constraints, expected, sig, 211);
}

TEST(ComposeTest, ViewUnfoldingChain) {
  // Schema evolution via three renames: composition collapses the chain.
  CompositionProblem p;
  ASSERT_TRUE(p.sigma1.AddRelation("A", 2).ok());
  ASSERT_TRUE(p.sigma2.AddRelation("B", 2).ok());
  ASSERT_TRUE(p.sigma2.AddRelation("C", 2).ok());
  ASSERT_TRUE(p.sigma3.AddRelation("E", 2).ok());
  p.sigma12 = {Constraint::Equal(Rel("A", 2), Rel("B", 2)),
               Constraint::Equal(Rel("B", 2), Rel("C", 2))};
  p.sigma23 = {Constraint::Equal(Rel("C", 2), Rel("E", 2))};
  CompositionResult res = Compose(p);
  EXPECT_EQ(res.eliminated_count, 2);
  ASSERT_EQ(res.constraints.size(), 1u);
  EXPECT_EQ(res.constraints[0].kind, ConstraintKind::kEquality);
}

TEST(ComposeTest, BestEffortKeepsResidualSymbols) {
  // S1 is eliminable; S2 is stuck: it sits inside an intersection on a left
  // side (no left-normalization identity, §3.4.1) and in both operands of a
  // union on a right side (no right-normalization identity either).
  CompositionProblem p;
  ASSERT_TRUE(p.sigma1.AddRelation("R", 2).ok());
  ASSERT_TRUE(p.sigma1.AddRelation("P", 1).ok());
  ASSERT_TRUE(p.sigma1.AddRelation("P2", 1).ok());
  ASSERT_TRUE(p.sigma2.AddRelation("S1", 2).ok());
  ASSERT_TRUE(p.sigma2.AddRelation("S2", 1).ok());
  ASSERT_TRUE(p.sigma3.AddRelation("T", 2).ok());
  ASSERT_TRUE(p.sigma3.AddRelation("Q", 1).ok());
  p.sigma12 = {
      Constraint::Contain(Rel("R", 2), Rel("S1", 2)),
      Constraint::Contain(Intersect(Rel("P", 1), Rel("S2", 1)), Rel("P2", 1))};
  p.sigma23 = {
      Constraint::Contain(Rel("S1", 2), Rel("T", 2)),
      Constraint::Contain(
          Rel("Q", 1),
          Union(Rel("S2", 1),
                Select(Condition::AttrConst(1, CmpOp::kEq, int64_t{1}),
                       Rel("S2", 1))))};
  CompositionResult res = Compose(p);
  EXPECT_EQ(res.total_count, 2);
  EXPECT_EQ(res.eliminated_count, 1);
  ASSERT_EQ(res.residual_sigma2.size(), 1u);
  EXPECT_EQ(res.residual_sigma2[0], "S2");
  EXPECT_TRUE(res.sigma.Contains("S2"));
  // Stats carry one record per attempt. S2 fails *after* S1's elimination,
  // so Σ cannot have changed since its failure and the multi-round driver
  // proves a retry futile: exactly one attempt each, one round.
  ASSERT_EQ(res.stats.size(), 2u);
  EXPECT_TRUE(res.stats[0].eliminated);
  EXPECT_EQ(res.stats[0].round, 1);
  EXPECT_FALSE(res.stats[1].eliminated);
  EXPECT_FALSE(res.stats[1].failure_reason.empty());
  EXPECT_EQ(res.stats[1].round, 1);
  ASSERT_EQ(res.rounds.size(), 1u);
  EXPECT_EQ(res.rounds[0].attempted, 2);
  EXPECT_EQ(res.rounds[0].eliminated, 1);
}

TEST(ComposeTest, EliminationOrderMatters) {
  // The paper's footnote 1: with the Theorem-1 constraints duplicated for
  // S1, S2, exactly one of them can be eliminated — which one depends on
  // the order. Emulate with a pair where eliminating one blocks the other:
  //   R ⊆ S1, S1 ⊆ S2, S2 ⊆ S1 ∩ T  (cyclic dependency between S1 and S2).
  CompositionProblem p;
  ASSERT_TRUE(p.sigma1.AddRelation("R", 1).ok());
  ASSERT_TRUE(p.sigma2.AddRelation("S1", 1).ok());
  ASSERT_TRUE(p.sigma2.AddRelation("S2", 1).ok());
  ASSERT_TRUE(p.sigma3.AddRelation("T", 1).ok());
  p.sigma12 = {Constraint::Contain(Rel("R", 1), Rel("S1", 1))};
  p.sigma23 = {Constraint::Contain(Rel("S1", 1), Rel("S2", 1)),
               Constraint::Contain(Rel("S2", 1),
                                   Intersect(Rel("S1", 1), Rel("T", 1)))};
  ComposeOptions forward;
  forward.order = {"S1", "S2"};
  CompositionResult res_fwd = Compose(p, forward);
  ComposeOptions backward;
  backward.order = {"S2", "S1"};
  CompositionResult res_bwd = Compose(p, backward);
  // Both orders are best-effort; results may differ in which symbols
  // survive, but each must eliminate at least one.
  EXPECT_GE(res_fwd.eliminated_count, 1);
  EXPECT_GE(res_bwd.eliminated_count, 1);
}

TEST(ComposeTest, GlavStyleInclusionChain) {
  // Composing Sub-style inclusion mappings (§4.1): π_{A−C}(R) = S then
  // S ⊆ T yields π_{A−C}(R) ⊆ T.
  CompositionProblem p;
  ASSERT_TRUE(p.sigma1.AddRelation("R", 3).ok());
  ASSERT_TRUE(p.sigma2.AddRelation("S", 2).ok());
  ASSERT_TRUE(p.sigma3.AddRelation("T", 2).ok());
  p.sigma12 = {Constraint::Equal(Project({1, 2}, Rel("R", 3)), Rel("S", 2))};
  p.sigma23 = {Constraint::Contain(Rel("S", 2), Rel("T", 2))};
  CompositionResult res = Compose(p);
  EXPECT_EQ(res.eliminated_count, 1);
  ConstraintSet expected{
      Constraint::Contain(Project({1, 2}, Rel("R", 3)), Rel("T", 2))};
  Signature sig;
  ASSERT_TRUE(sig.AddRelation("R", 3).ok());
  ASSERT_TRUE(sig.AddRelation("T", 2).ok());
  ExpectEquivalent(res.constraints, expected, sig, 223);
}

TEST(ComposeTest, ReportIsHumanReadable) {
  CompositionProblem p;
  ASSERT_TRUE(p.sigma1.AddRelation("R", 1).ok());
  ASSERT_TRUE(p.sigma2.AddRelation("S", 1).ok());
  ASSERT_TRUE(p.sigma3.AddRelation("T", 1).ok());
  p.sigma12 = {Constraint::Contain(Rel("R", 1), Rel("S", 1))};
  p.sigma23 = {Constraint::Contain(Rel("S", 1), Rel("T", 1))};
  CompositionResult res = Compose(p);
  std::string report = res.Report();
  EXPECT_NE(report.find("eliminated 1/1"), std::string::npos);
  EXPECT_NE(report.find("S"), std::string::npos);
}

TEST(ComposeTest, SoundnessOnRandomizedMovieInstances) {
  // End-to-end soundness of Example 1 composition: every model of
  // Σ12 ∪ Σ23 is a model of Σ13.
  const char* text = R"(
    schema s1 { Movies(4); }
    schema s2 { FSM(2); }
    schema s3 { Names(1); Years(1); }
    map m12 { pi[1,2](sel[#3=1](Movies)) <= FSM; }
    map m23 { pi[1](FSM) <= Names; pi[2](FSM) <= Years; }
  )";
  Parser parser;
  CompositionProblem p = parser.ParseProblem(text).value();
  CompositionResult res = Compose(p);
  ASSERT_EQ(res.eliminated_count, 1);

  Signature all;
  ASSERT_TRUE(all.AddRelation("Movies", 4).ok());
  ASSERT_TRUE(all.AddRelation("FSM", 2).ok());
  ASSERT_TRUE(all.AddRelation("Names", 1).ok());
  ASSERT_TRUE(all.AddRelation("Years", 1).ok());
  ConstraintSet input = p.sigma12;
  input.insert(input.end(), p.sigma23.begin(), p.sigma23.end());
  std::mt19937_64 rng(227);
  GenOptions gen;
  gen.domain_size = 2;
  gen.max_tuples_per_rel = 3;
  int checked = 0;
  for (int round = 0; round < 200 && checked < 20; ++round) {
    Instance db = RandomInstance(all, &rng, gen);
    auto sat_in = SatisfiesAll(db, input);
    ASSERT_TRUE(sat_in.ok());
    if (!*sat_in) continue;
    ++checked;
    auto sat_out = SatisfiesAll(db, res.constraints);
    ASSERT_TRUE(sat_out.ok());
    EXPECT_TRUE(*sat_out) << db.ToString();
  }
  EXPECT_GT(checked, 0);
}

TEST(ComposeTest, CompletenessWitnessOnTinyInstances) {
  // The other half of equivalence (paper §2): a model of Σ13 extends to a
  // model of Σ12 ∪ Σ23 by choosing S. Checked by bounded search.
  CompositionProblem p;
  ASSERT_TRUE(p.sigma1.AddRelation("R", 1).ok());
  ASSERT_TRUE(p.sigma2.AddRelation("S", 1).ok());
  ASSERT_TRUE(p.sigma3.AddRelation("T", 1).ok());
  p.sigma12 = {Constraint::Contain(Rel("R", 1), Rel("S", 1))};
  p.sigma23 = {Constraint::Contain(Rel("S", 1), Rel("T", 1))};
  CompositionResult res = Compose(p);
  ASSERT_EQ(res.eliminated_count, 1);

  ConstraintSet full = p.sigma12;
  full.insert(full.end(), p.sigma23.begin(), p.sigma23.end());
  Signature s13;
  ASSERT_TRUE(s13.AddRelation("R", 1).ok());
  ASSERT_TRUE(s13.AddRelation("T", 1).ok());
  Signature extra;
  ASSERT_TRUE(extra.AddRelation("S", 1).ok());

  std::mt19937_64 rng(229);
  GenOptions gen;
  gen.domain_size = 2;
  gen.max_tuples_per_rel = 2;
  int checked = 0;
  for (int round = 0; round < 100 && checked < 10; ++round) {
    Instance db = RandomInstance(s13, &rng, gen);
    auto sat = SatisfiesAll(db, res.constraints);
    ASSERT_TRUE(sat.ok());
    if (!*sat) continue;
    ++checked;
    Result<Instance> witness = FindExtension(db, extra, full);
    EXPECT_TRUE(witness.ok()) << "no completeness witness for:\n"
                              << db.ToString();
  }
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace mapcomp
