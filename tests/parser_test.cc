#include "src/parser/parser.h"

#include <gtest/gtest.h>

#include "src/algebra/builders.h"
#include "src/algebra/print.h"

namespace mapcomp {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(sig_.AddRelation("R", 2).ok());
    ASSERT_TRUE(sig_.AddRelation("S", 2).ok());
    ASSERT_TRUE(sig_.AddRelation("T", 3).ok());
    ASSERT_TRUE(sig_.AddRelation("U", 1).ok());
  }
  Parser parser_;
  Signature sig_;
};

TEST_F(ParserTest, Relation) {
  ExprPtr e = parser_.ParseExpr("R", sig_).value();
  EXPECT_TRUE(ExprEquals(e, Rel("R", 2)));
}

TEST_F(ParserTest, BinaryOperators) {
  EXPECT_TRUE(ExprEquals(parser_.ParseExpr("R + S", sig_).value(),
                         Union(Rel("R", 2), Rel("S", 2))));
  EXPECT_TRUE(ExprEquals(parser_.ParseExpr("R - S", sig_).value(),
                         Difference(Rel("R", 2), Rel("S", 2))));
  EXPECT_TRUE(ExprEquals(parser_.ParseExpr("R & S", sig_).value(),
                         Intersect(Rel("R", 2), Rel("S", 2))));
  EXPECT_TRUE(ExprEquals(parser_.ParseExpr("R * U", sig_).value(),
                         Product(Rel("R", 2), Rel("U", 1))));
}

TEST_F(ParserTest, Precedence) {
  // * binds tighter than +: R + U*U parses as R + (U × U).
  ExprPtr f = parser_.ParseExpr("R + U * U", sig_).value();
  EXPECT_EQ(f->kind(), ExprKind::kUnion);
  EXPECT_EQ(f->child(1)->kind(), ExprKind::kProduct);
  // Mixed precedence would make U + (U*R) an arity error — reported cleanly.
  EXPECT_FALSE(parser_.ParseExpr("U + U * R", sig_).ok());
}

TEST_F(ParserTest, ProjectSelect) {
  EXPECT_TRUE(ExprEquals(parser_.ParseExpr("pi[2,1](R)", sig_).value(),
                         Project({2, 1}, Rel("R", 2))));
  EXPECT_TRUE(ExprEquals(
      parser_.ParseExpr("sel[#1=#2 and #1!=3](R)", sig_).value(),
      Select(Condition::And(Condition::AttrCmp(1, CmpOp::kEq, 2),
                            Condition::AttrConst(1, CmpOp::kNe, int64_t{3})),
             Rel("R", 2))));
}

TEST_F(ParserTest, ConditionConnectivesAndLiterals) {
  ExprPtr e =
      parser_.ParseExpr("sel[not (#1='a' or false)](U)", sig_).value();
  EXPECT_EQ(e->kind(), ExprKind::kSelect);
  EXPECT_EQ(e->condition().kind(), Condition::Kind::kNot);
}

TEST_F(ParserTest, DomainEmptyLiteral) {
  EXPECT_TRUE(ExprEquals(parser_.ParseExpr("D^3", sig_).value(), Dom(3)));
  EXPECT_TRUE(
      ExprEquals(parser_.ParseExpr("empty^2", sig_).value(), EmptyRel(2)));
  ExprPtr lit = parser_.ParseExpr("{(1,'a'),(2,'b')}", sig_).value();
  EXPECT_EQ(lit->kind(), ExprKind::kLiteral);
  EXPECT_EQ(lit->arity(), 2);
  EXPECT_EQ(lit->tuples().size(), 2u);
  ExprPtr empty_lit = parser_.ParseExpr("{}^2", sig_).value();
  EXPECT_EQ(empty_lit->tuples().size(), 0u);
  EXPECT_EQ(empty_lit->arity(), 2);
}

TEST_F(ParserTest, Skolem) {
  ExprPtr e = parser_.ParseExpr("$f[1,2](R)", sig_).value();
  EXPECT_TRUE(ExprEquals(e, SkolemApp("f", {1, 2}, Rel("R", 2))));
}

TEST_F(ParserTest, UserOp) {
  ExprPtr e = parser_.ParseExpr("semijoin[#1=#3](R, S)", sig_).value();
  EXPECT_EQ(e->kind(), ExprKind::kUserOp);
  EXPECT_EQ(e->name(), "semijoin");
  EXPECT_EQ(e->arity(), 2);
  ExprPtr tc = parser_.ParseExpr("tc(R)", sig_).value();
  EXPECT_EQ(tc->name(), "tc");
}

TEST_F(ParserTest, Constraints) {
  Constraint c = parser_.ParseConstraint("pi[1](R) <= U", sig_).value();
  EXPECT_EQ(c.kind, ConstraintKind::kContainment);
  Constraint e = parser_.ParseConstraint("R = S", sig_).value();
  EXPECT_EQ(e.kind, ConstraintKind::kEquality);
  ConstraintSet cs =
      parser_.ParseConstraints("R <= S; S <= R;", sig_).value();
  EXPECT_EQ(cs.size(), 2u);
}

TEST_F(ParserTest, PrintParseRoundTrip) {
  const char* exprs[] = {
      "((R + S) - sel[#1=#2](R))",
      "pi[2,1](sel[#1<=5](R))",
      "(R * (U & U))",
      "$f[1](pi[1](R))",
      "sel[#1=#2 and #2!='x'](S)",
      "(D^2 - empty^2)",
  };
  for (const char* text : exprs) {
    ExprPtr e = parser_.ParseExpr(text, sig_).value();
    ExprPtr round = parser_.ParseExpr(ExprToString(e), sig_).value();
    EXPECT_TRUE(ExprEquals(e, round)) << text;
  }
}

TEST_F(ParserTest, Errors) {
  EXPECT_FALSE(parser_.ParseExpr("W", sig_).ok());          // undeclared
  EXPECT_FALSE(parser_.ParseExpr("R + U", sig_).ok());      // arity mismatch
  EXPECT_FALSE(parser_.ParseExpr("pi[5](R)", sig_).ok());   // index range
  EXPECT_FALSE(parser_.ParseExpr("sel[#9=1](R)", sig_).ok());
  EXPECT_FALSE(parser_.ParseExpr("R +", sig_).ok());        // dangling op
  EXPECT_FALSE(parser_.ParseExpr("mystery(R)", sig_).ok()); // unknown op
  EXPECT_FALSE(parser_.ParseConstraint("R <= U", sig_).ok());
  EXPECT_FALSE(parser_.ParseExpr("{(1),(1,2)}", sig_).ok());
  EXPECT_FALSE(parser_.ParseExpr("{}", sig_).ok());  // needs arity
}

TEST_F(ParserTest, CommentsAndWhitespace) {
  ExprPtr e = parser_.ParseExpr("R  -- trailing comment\n + S", sig_).value();
  EXPECT_EQ(e->kind(), ExprKind::kUnion);
}

TEST(ParserProblemTest, FullProblem) {
  const char* text = R"(
    -- Example 1 of the paper: the movies schema editor.
    schema s1 { Movies(6); }
    schema s2 { FiveStarMovies(3); }
    schema s3 { Names(2); Years(2); }
    map m12 {
      pi[1,2,3](sel[#4=5](Movies)) <= FiveStarMovies;
    }
    map m23 {
      pi[1,2](FiveStarMovies) <= Names;
      pi[1,3](FiveStarMovies) <= Years;
    }
    order FiveStarMovies;
  )";
  Parser parser;
  CompositionProblem p = parser.ParseProblem(text).value();
  EXPECT_EQ(p.sigma1.names(), (std::vector<std::string>{"Movies"}));
  EXPECT_EQ(p.sigma2.names(), (std::vector<std::string>{"FiveStarMovies"}));
  EXPECT_EQ(p.sigma3.size(), 2);
  EXPECT_EQ(p.sigma12.size(), 1u);
  EXPECT_EQ(p.sigma23.size(), 2u);
  EXPECT_EQ(p.elimination_order,
            (std::vector<std::string>{"FiveStarMovies"}));
}

TEST(ParserProblemTest, KeysParsed) {
  const char* text = R"(
    schema s1 { E(2); }
    schema s2 { F(2) key(1); }
    schema s3 { G(2); }
    map m12 { E <= F; }
    map m23 { F <= G; }
  )";
  Parser parser;
  CompositionProblem p = parser.ParseProblem(text).value();
  ASSERT_TRUE(p.sigma2.KeyOf("F").has_value());
  EXPECT_EQ(*p.sigma2.KeyOf("F"), (std::vector<int>{1}));
}

TEST(ParserProblemTest, ProblemErrors) {
  Parser parser;
  EXPECT_FALSE(parser.ParseProblem("schema a { R(2); }").ok());  // 3 needed
  EXPECT_FALSE(parser
                   .ParseProblem(
                       "schema a { R(0); } schema b {} schema c {} "
                       "map x {} map y {}")
                   .ok());  // bad arity
  // Non-disjoint schemas.
  EXPECT_FALSE(parser
                   .ParseProblem(
                       "schema a { R(2); } schema b { R(2); } "
                       "schema c { T(2); } map x {} map y {}")
                   .ok());
}

}  // namespace
}  // namespace mapcomp
