// Randomized equivalence testing of the ELIMINATE machinery: random small
// constraint sets over {R, T, U, S} are run through Eliminate(S); whenever
// elimination succeeds, the output must be equivalent to the input —
// soundness checked directly, completeness via bounded witness search.

#include <gtest/gtest.h>

#include <random>

#include "src/algebra/builders.h"
#include "src/algebra/print.h"
#include "src/compose/eliminate.h"
#include "src/eval/checker.h"
#include "src/eval/generator.h"

namespace mapcomp {
namespace {

/// Random expression over unary relations from `pool`, depth-bounded.
ExprPtr RandomUnaryExpr(std::mt19937_64* rng,
                        const std::vector<std::string>& pool, int depth) {
  std::uniform_int_distribution<int> pick(0,
                                          static_cast<int>(pool.size()) - 1);
  if (depth == 0) return Rel(pool[pick(*rng)], 1);
  std::uniform_int_distribution<int> op(0, 5);
  switch (op(*rng)) {
    case 0:
      return Union(RandomUnaryExpr(rng, pool, depth - 1),
                   RandomUnaryExpr(rng, pool, depth - 1));
    case 1:
      return Intersect(RandomUnaryExpr(rng, pool, depth - 1),
                       RandomUnaryExpr(rng, pool, depth - 1));
    case 2:
      return Difference(RandomUnaryExpr(rng, pool, depth - 1),
                        RandomUnaryExpr(rng, pool, depth - 1));
    case 3:
      return Select(Condition::AttrConst(1, CmpOp::kLe, int64_t{1}),
                    RandomUnaryExpr(rng, pool, depth - 1));
    case 4:
      return Project({1}, Product(RandomUnaryExpr(rng, pool, depth - 1),
                                  RandomUnaryExpr(rng, pool, depth - 1)));
    default:
      return Rel(pool[pick(*rng)], 1);
  }
}

class EliminateEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EliminateEquivalenceTest, SuccessImpliesEquivalence) {
  std::mt19937_64 rng(GetParam());
  const std::vector<std::string> pool{"R", "T", "U", "S"};
  Signature sig;
  for (const std::string& n : pool) ASSERT_TRUE(sig.AddRelation(n, 1).ok());
  Signature extra;
  ASSERT_TRUE(extra.AddRelation("S", 1).ok());
  Signature without_s;
  for (const char* n : {"R", "T", "U"}) {
    ASSERT_TRUE(without_s.AddRelation(n, 1).ok());
  }

  std::uniform_int_distribution<int> n_constraints(1, 3);
  std::uniform_int_distribution<int> kind(0, 4);
  GenOptions gen;
  gen.domain_size = 2;
  gen.max_tuples_per_rel = 2;

  int successes = 0;
  for (int round = 0; round < 40; ++round) {
    ConstraintSet cs;
    int n = n_constraints(rng);
    for (int i = 0; i < n; ++i) {
      ExprPtr lhs = RandomUnaryExpr(&rng, pool, 2);
      ExprPtr rhs = RandomUnaryExpr(&rng, pool, 2);
      cs.push_back(kind(rng) == 0 ? Constraint::Equal(lhs, rhs)
                                  : Constraint::Contain(lhs, rhs));
    }
    EliminateOutcome out = Eliminate(cs, "S", 1);
    if (!out.success) continue;
    ++successes;
    for (const Constraint& c : out.constraints) {
      ASSERT_FALSE(ConstraintContainsRelation(c, "S")) << c.ToString();
    }
    // Soundness + completeness sampling.
    for (int inst = 0; inst < 12; ++inst) {
      Instance db = RandomInstance(sig, &rng, gen);
      Result<bool> sat_in = SatisfiesAll(db, cs);
      ASSERT_TRUE(sat_in.ok());
      if (*sat_in) {
        Result<bool> sat_out = SatisfiesAll(db, out.constraints);
        ASSERT_TRUE(sat_out.ok());
        EXPECT_TRUE(*sat_out)
            << "soundness violation\ninput:\n" << ConstraintSetToString(cs)
            << "output:\n" << ConstraintSetToString(out.constraints)
            << "instance:\n" << db.ToString();
      }
      Instance reduced = db.RestrictedTo(without_s);
      Result<bool> sat_red = SatisfiesAll(reduced, out.constraints);
      ASSERT_TRUE(sat_red.ok());
      if (*sat_red) {
        Result<Instance> witness = FindExtension(reduced, extra, cs);
        if (!witness.ok() &&
            witness.status().code() == StatusCode::kResourceExhausted) {
          continue;
        }
        EXPECT_TRUE(witness.ok())
            << "completeness violation\ninput:\n"
            << ConstraintSetToString(cs) << "output:\n"
            << ConstraintSetToString(out.constraints) << "instance:\n"
            << reduced.ToString();
      }
    }
  }
  // The generator produces plenty of eliminable sets; make sure the test
  // exercised some.
  EXPECT_GT(successes, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EliminateEquivalenceTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

/// Binary variant: expressions mix arities through products and
/// projections, exercising the index-aware normalization identities.
ExprPtr RandomBinaryExpr(std::mt19937_64* rng,
                         const std::vector<std::string>& pool, int depth) {
  std::uniform_int_distribution<int> pick(0,
                                          static_cast<int>(pool.size()) - 1);
  if (depth == 0) return Rel(pool[pick(*rng)], 2);
  std::uniform_int_distribution<int> op(0, 6);
  switch (op(*rng)) {
    case 0:
      return Union(RandomBinaryExpr(rng, pool, depth - 1),
                   RandomBinaryExpr(rng, pool, depth - 1));
    case 1:
      return Intersect(RandomBinaryExpr(rng, pool, depth - 1),
                       RandomBinaryExpr(rng, pool, depth - 1));
    case 2:
      return Difference(RandomBinaryExpr(rng, pool, depth - 1),
                        RandomBinaryExpr(rng, pool, depth - 1));
    case 3:
      return Select(Condition::AttrCmp(1, CmpOp::kEq, 2),
                    RandomBinaryExpr(rng, pool, depth - 1));
    case 4: {
      // π over a 4-ary product, with a possibly non-prefix index list.
      ExprPtr prod = Product(RandomBinaryExpr(rng, pool, depth - 1),
                             RandomBinaryExpr(rng, pool, depth - 1));
      std::uniform_int_distribution<int> idx(1, 4);
      return Project({idx(*rng), idx(*rng)}, std::move(prod));
    }
    case 5:
      return Project({2, 1}, RandomBinaryExpr(rng, pool, depth - 1));
    default:
      return Rel(pool[pick(*rng)], 2);
  }
}

class BinaryEliminateEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BinaryEliminateEquivalenceTest, SuccessImpliesSoundness) {
  std::mt19937_64 rng(GetParam() * 101);
  const std::vector<std::string> pool{"R", "T", "S"};
  Signature sig;
  for (const std::string& n : pool) ASSERT_TRUE(sig.AddRelation(n, 2).ok());

  std::uniform_int_distribution<int> n_constraints(1, 3);
  std::uniform_int_distribution<int> kind(0, 4);
  GenOptions gen;
  gen.domain_size = 2;
  gen.max_tuples_per_rel = 3;

  int successes = 0;
  for (int round = 0; round < 30; ++round) {
    ConstraintSet cs;
    int n = n_constraints(rng);
    for (int i = 0; i < n; ++i) {
      ExprPtr lhs = RandomBinaryExpr(&rng, pool, 2);
      ExprPtr rhs = RandomBinaryExpr(&rng, pool, 2);
      cs.push_back(kind(rng) == 0 ? Constraint::Equal(lhs, rhs)
                                  : Constraint::Contain(lhs, rhs));
    }
    EliminateOutcome out = Eliminate(cs, "S", 2);
    if (!out.success) continue;
    ++successes;
    for (const Constraint& c : out.constraints) {
      ASSERT_FALSE(ConstraintContainsRelation(c, "S")) << c.ToString();
    }
    for (int inst = 0; inst < 10; ++inst) {
      Instance db = RandomInstance(sig, &rng, gen);
      Result<bool> sat_in = SatisfiesAll(db, cs);
      ASSERT_TRUE(sat_in.ok());
      if (!*sat_in) continue;
      Result<bool> sat_out = SatisfiesAll(db, out.constraints);
      ASSERT_TRUE(sat_out.ok());
      EXPECT_TRUE(*sat_out)
          << "soundness violation\ninput:\n" << ConstraintSetToString(cs)
          << "output:\n" << ConstraintSetToString(out.constraints)
          << "instance:\n" << db.ToString();
    }
  }
  EXPECT_GT(successes, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryEliminateEquivalenceTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace mapcomp
