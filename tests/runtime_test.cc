// Unit tests for the runtime layer: ThreadPool task execution and
// draining, ParallelFor coverage/exception semantics, and the inline
// fallback. Run under ThreadSanitizer in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/runtime/task_dag.h"
#include "src/runtime/thread_pool.h"

namespace mapcomp {
namespace runtime {
namespace {

TEST(ThreadPoolTest, ExecutesEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  // The pool stays usable after a Wait.
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 101);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ThreadCountIsClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1);
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

TEST(ParallelForTest, CoversExactlyTheRange) {
  ThreadPool pool(3);
  std::vector<int> hits(1000, 0);
  ParallelFor(&pool, static_cast<int64_t>(hits.size()),
              [&hits](int64_t i) { hits[static_cast<size_t>(i)] += 1; });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ParallelForTest, NullPoolRunsInlineInOrder) {
  std::vector<int64_t> order;
  ParallelFor(nullptr, 10, [&order](int64_t i) { order.push_back(i); });
  std::vector<int64_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, EmptyAndNegativeRangesAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(&pool, 0, [&calls](int64_t) { ++calls; });
  ParallelFor(&pool, -5, [&calls](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, RethrowsFirstExceptionByIndex) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    ParallelFor(&pool, 100, [&completed](int64_t i) {
      if (i == 7) throw std::runtime_error("iteration 7 failed");
      completed.fetch_add(1);
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "iteration 7 failed");
  }
  // Not every iteration ran (claiming stopped), but the pool is intact.
  EXPECT_LT(completed.load(), 100);
  std::atomic<int> after{0};
  ParallelFor(&pool, 10, [&after](int64_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 10);
}

TEST(ParallelForTest, MaxHelpersZeroRunsInlineInOrder) {
  ThreadPool pool(3);
  std::vector<int64_t> order;
  ParallelFor(&pool, 10, [&order](int64_t i) { order.push_back(i); },
              /*max_helpers=*/0);
  std::vector<int64_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, MaxHelpersCapsLanesButCoversRange) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  ParallelFor(&pool, 200, [&count](int64_t) { count.fetch_add(1); },
              /*max_helpers=*/1);
  EXPECT_EQ(count.load(), 200);
}

TEST(ParallelForTest, NestedOnTheSamePoolDoesNotDeadlock) {
  // The intra-problem elimination scheduler runs ParallelFor inside
  // ComposeMany workers, all on the shared global pool — completion must
  // be tracked per call, not per pool, or the inner call waits forever
  // for its own enclosing task to retire.
  ThreadPool pool(2);
  std::atomic<int> count{0};
  ParallelFor(&pool, 4, [&pool, &count](int64_t) {
    ParallelFor(&pool, 8, [&count](int64_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(ParallelForTest, NestedExceptionPropagatesThroughBothLevels) {
  ThreadPool pool(2);
  try {
    ParallelFor(&pool, 3, [&pool](int64_t outer) {
      ParallelFor(&pool, 3, [outer](int64_t inner) {
        if (outer == 1 && inner == 1) {
          throw std::runtime_error("inner failure");
        }
      });
    });
    FAIL() << "expected the inner exception to surface";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "inner failure");
  }
}

TEST(GlobalPoolTest, IsASingletonWithWorkers) {
  ThreadPool* pool = GlobalPool();
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool, GlobalPool());
  EXPECT_GE(pool->thread_count(), 1);
  std::atomic<int> count{0};
  ParallelFor(pool, 50, [&count](int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
}

TEST(ParallelForTest, PerIndexWritesAreThreadCountIndependent) {
  auto run = [](int pool_threads) {
    std::vector<int64_t> out(500);
    ThreadPool pool(pool_threads);
    ParallelFor(&pool, static_cast<int64_t>(out.size()), [&out](int64_t i) {
      out[static_cast<size_t>(i)] = i * i;
    });
    return out;
  };
  EXPECT_EQ(run(1), run(7));
}

TEST(TaskDagTest, InlineModeRunsInIndexOrder) {
  TaskDag dag;
  std::vector<int64_t> order;
  int64_t a = dag.AddTask([&order] { order.push_back(0); }, {});
  int64_t b = dag.AddTask([&order] { order.push_back(1); }, {a});
  dag.AddTask([&order] { order.push_back(2); }, {a, b});
  dag.Run(nullptr, 0);
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2}));
  EXPECT_EQ(dag.size(), 0);  // single-shot: Run leaves the dag empty
}

TEST(TaskDagTest, DiamondDependenciesCompleteBeforeDependents) {
  // a → {b, c} → d, repeated many times on a real pool: d must observe
  // both b's and c's writes every time.
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    TaskDag dag;
    std::atomic<int> x{0};
    int bc_sum_at_d = -1;
    int64_t a = dag.AddTask([&x] { x.fetch_add(1); }, {});
    int64_t b = dag.AddTask([&x] { x.fetch_add(10); }, {a});
    int64_t c = dag.AddTask([&x] { x.fetch_add(100); }, {a});
    dag.AddTask([&x, &bc_sum_at_d] { bc_sum_at_d = x.load(); }, {b, c});
    dag.Run(&pool, 3);
    EXPECT_EQ(bc_sum_at_d, 111);
  }
}

TEST(TaskDagTest, WideFanoutRunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  TaskDag dag;
  constexpr int kN = 200;
  std::vector<std::atomic<int>> runs(kN);
  int64_t root = dag.AddTask([] {}, {});
  for (int i = 0; i < kN; ++i) {
    dag.AddTask([&runs, i] { runs[static_cast<size_t>(i)].fetch_add(1); },
                {root});
  }
  dag.Run(&pool, 3);
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(runs[static_cast<size_t>(i)].load(), 1) << i;
  }
}

TEST(TaskDagTest, AddTaskRejectsForwardDependencies) {
  TaskDag dag;
  dag.AddTask([] {}, {});
  EXPECT_THROW(dag.AddTask([] {}, {5}), std::invalid_argument);
  EXPECT_THROW(dag.AddTask([] {}, {-1}), std::invalid_argument);
}

TEST(TaskDagTest, ExceptionAbortsDownstreamAndRethrowsLowestIndex) {
  ThreadPool pool(4);
  TaskDag dag;
  std::atomic<int> late_runs{0};
  int64_t a = dag.AddTask([] { throw std::runtime_error("first"); }, {});
  int64_t b = dag.AddTask([] { throw std::logic_error("second"); }, {});
  dag.AddTask([&late_runs] { late_runs.fetch_add(1); }, {a, b});
  try {
    dag.Run(&pool, 3);
    FAIL() << "expected the lowest-index exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  // Tasks downstream of a failed task never run.
  EXPECT_EQ(late_runs.load(), 0);
}

TEST(TaskDagTest, NestedDagOnSharedPoolDoesNotDeadlock) {
  // A dag task that itself runs a child dag on the same pool: the ready
  // queue must never block a lane on ThreadPool::Wait.
  ThreadPool pool(2);
  TaskDag outer;
  std::atomic<int> inner_total{0};
  for (int i = 0; i < 6; ++i) {
    outer.AddTask(
        [&pool, &inner_total] {
          TaskDag inner;
          int64_t a = inner.AddTask([&inner_total] { inner_total.fetch_add(1); },
                                    {});
          inner.AddTask([&inner_total] { inner_total.fetch_add(1); }, {a});
          inner.Run(&pool, 1);
        },
        {});
  }
  outer.Run(&pool, 1);
  EXPECT_EQ(inner_total.load(), 12);
}

}  // namespace
}  // namespace runtime
}  // namespace mapcomp
