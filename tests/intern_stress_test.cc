// Concurrency stress tests for the sharded Expr interner: the canonical
// pointer-equality invariant must hold when many threads intern the same
// structures simultaneously, with and without ExprBuilder batch scopes, and
// while Sweep runs concurrently. Run under ThreadSanitizer in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "src/algebra/builders.h"
#include "src/algebra/interner.h"

namespace mapcomp {
namespace {

/// Deterministic tree #k — every thread building tree k must end up with
/// the exact same canonical node. Mixes shared leaves (few names) with
/// per-k literals so the trees exercise both hit and miss paths.
ExprPtr BuildTree(int k) {
  std::mt19937_64 rng(static_cast<uint64_t>(k) * 2654435761u + 1);
  std::uniform_int_distribution<int> pick(0, 3);
  ExprPtr e = Rel("R" + std::to_string(k % 7), 2);
  for (int depth = 0; depth < 8; ++depth) {
    switch (pick(rng)) {
      case 0:
        e = Union(e, Rel("S" + std::to_string(depth % 5), 2));
        break;
      case 1:
        e = Intersect(e, Lit(2, {{Value(int64_t{k}), Value(int64_t{depth})}}));
        break;
      case 2:
        e = Select(Condition::AttrConst(1, CmpOp::kEq, int64_t{k % 11}), e);
        break;
      default:
        e = Difference(e, Project({1, 2}, Product(Rel("T", 1), Rel("U", 1))));
        break;
    }
  }
  return e;
}

TEST(InternStressTest, PointerEqualityHoldsAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kTrees = 200;

  // Strong references, so nothing can be swept while we compare.
  std::vector<std::vector<ExprPtr>> built(kThreads);
  std::atomic<int> start_gate{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &built, &start_gate] {
      // Odd threads construct inside a batch scope, even ones without, so
      // the local-cache fast path and the shard path race against each
      // other on identical structures.
      std::unique_ptr<ExprBuilder> batch;
      if (t % 2 == 1) batch = std::make_unique<ExprBuilder>();
      start_gate.fetch_add(1);
      while (start_gate.load() < kThreads) std::this_thread::yield();
      built[t].reserve(kTrees);
      for (int k = 0; k < kTrees; ++k) built[t].push_back(BuildTree(k));
    });
  }
  for (std::thread& th : threads) th.join();

  for (int t = 1; t < kThreads; ++t) {
    ASSERT_EQ(built[0].size(), built[t].size());
    for (int k = 0; k < kTrees; ++k) {
      EXPECT_EQ(built[0][k].get(), built[t][k].get())
          << "tree " << k << " canonicalized differently on thread " << t;
    }
  }
}

TEST(InternStressTest, ConcurrentSweepPreservesCanonicalization) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 60;
  std::atomic<bool> stop{false};

  // A sweeper hammers reclamation while builders intern; live nodes held by
  // builders must never be dropped or duplicated.
  std::thread sweeper([&stop] {
    while (!stop.load()) ExprInterner::Global().Sweep();
  });

  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &mismatches] {
      for (int round = 0; round < kRounds; ++round) {
        ExprPtr a = BuildTree(round);
        ExprPtr b = BuildTree(round);  // second build: must hit, not fork
        if (a.get() != b.get()) ++mismatches[t];
        // Drop both; the sweeper may reclaim before the next round rebuilds.
      }
    });
  }
  for (std::thread& th : threads) th.join();
  stop.store(true);
  sweeper.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
  // The table must still answer correctly after the dust settles.
  EXPECT_EQ(BuildTree(0).get(), BuildTree(0).get());
}

TEST(InternStressTest, StatsCountHitsAndMisses) {
  InternerStats before = ExprInterner::Global().Stats();
  ExprPtr fresh = Rel("stats_probe_unique_name", 5);
  ExprPtr again = Rel("stats_probe_unique_name", 5);
  EXPECT_EQ(fresh.get(), again.get());
  InternerStats after = ExprInterner::Global().Stats();
  EXPECT_EQ(after.shards.size(), ExprInterner::kNumShards);
  EXPECT_GE(after.misses(), before.misses() + 1);
  EXPECT_GE(after.hits(), before.hits() + 1);
  EXPECT_GT(after.entries(), 0u);
  EXPECT_NE(after.ToString().find("interner:"), std::string::npos);
}

TEST(InternStressTest, BuilderScopeCountsLocalHits) {
  uint64_t hits;
  {
    ExprBuilder batch;
    batch.Reserve(64);
    ExprPtr a = Union(Rel("builder_probe", 2), Rel("builder_probe2", 2));
    ExprPtr b = Union(Rel("builder_probe", 2), Rel("builder_probe2", 2));
    EXPECT_EQ(a.get(), b.get());
    hits = batch.local_hits();
    EXPECT_EQ(ExprBuilder::Current(), &batch);
  }
  EXPECT_EQ(ExprBuilder::Current(), nullptr);
  // The second Union plus its two leaves repeat identically: at least the
  // repeated leaves and the repeated union must come from the local cache.
  EXPECT_GE(hits, 3u);
  InternerStats stats = ExprInterner::Global().Stats();
  EXPECT_GE(stats.builder_hits, hits);
}

TEST(InternStressTest, NestedBuildersOnDifferentInternersKeepCachesCoherent) {
  // Scope nesting across interners: outer builds against the global
  // interner, a nested scope targets a private one, and after it unwinds
  // the outer scope's constructions must be tagged for the *global* table
  // again — otherwise a later private-interner scope could serve a
  // global-canonical node as if it were canonical in the private table.
  ExprInterner local;
  auto intern_local = [&local] {
    return local.Intern(ExprKind::kRelation, "owner_probe", {},
                        Condition::True(), {}, 2, {});
  };
  ExprBuilder outer;  // global interner
  {
    ExprBuilder inner(&local);
  }
  ExprPtr global_node = Rel("owner_probe", 2);  // cached under the outer scope
  {
    ExprBuilder again(&local);
    ExprPtr local_node = intern_local();
    EXPECT_NE(local_node.get(), global_node.get())
        << "global-canonical node leaked into the private interner";
    EXPECT_EQ(local_node.get(), intern_local().get());
  }
  EXPECT_EQ(global_node.get(), Rel("owner_probe", 2).get());
}

TEST(InternStressTest, SweepReclaimsDroppedNodesAcrossShards) {
  ExprInterner& interner = ExprInterner::Global();
  interner.Sweep();
  size_t baseline = interner.size();
  {
    std::vector<ExprPtr> garbage;
    for (int i = 0; i < 500; ++i) {
      garbage.push_back(
          Select(Condition::AttrConst(1, CmpOp::kEq, int64_t{i + 100000}),
                 Rel("sweep_probe", 3)));
    }
    EXPECT_GE(interner.size(), baseline + 500);
  }
  interner.Sweep();
  // Everything dropped above is reclaimable; only the shared leaf may stay
  // if something else still references it (it does not).
  EXPECT_LE(interner.size(), baseline + 2);
}

}  // namespace
}  // namespace mapcomp
