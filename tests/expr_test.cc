#include "src/algebra/expr.h"

#include <gtest/gtest.h>

#include "src/algebra/builders.h"
#include "src/algebra/print.h"
#include "src/algebra/substitute.h"

namespace mapcomp {
namespace {

TEST(ExprTest, RelationBasics) {
  ExprPtr r = Rel("R", 3);
  EXPECT_EQ(r->kind(), ExprKind::kRelation);
  EXPECT_EQ(r->name(), "R");
  EXPECT_EQ(r->arity(), 3);
  EXPECT_TRUE(ValidateExpr(r).ok());
}

TEST(ExprTest, SetOperatorArities) {
  ExprPtr e = Union(Rel("R", 2), Rel("S", 2));
  EXPECT_EQ(e->arity(), 2);
  ExprPtr p = Product(Rel("R", 2), Rel("S", 3));
  EXPECT_EQ(p->arity(), 5);
  ExprPtr pr = Project({1, 3, 3}, Rel("T", 4));
  EXPECT_EQ(pr->arity(), 3);
  ExprPtr sk = SkolemApp("f", {1}, Rel("R", 2));
  EXPECT_EQ(sk->arity(), 3);
  EXPECT_TRUE(ValidateExpr(Select(Condition::AttrCmp(1, CmpOp::kEq, 5),
                                  Product(Rel("R", 2), Rel("S", 3))))
                  .ok());
}

TEST(ExprTest, StructuralEqualityAndHash) {
  ExprPtr a = Project({1, 2}, Select(Condition::AttrConst(3, CmpOp::kEq,
                                                          int64_t{5}),
                                     Rel("M", 4)));
  ExprPtr b = Project({1, 2}, Select(Condition::AttrConst(3, CmpOp::kEq,
                                                          int64_t{5}),
                                     Rel("M", 4)));
  ExprPtr c = Project({1, 2}, Select(Condition::AttrConst(3, CmpOp::kEq,
                                                          int64_t{6}),
                                     Rel("M", 4)));
  EXPECT_TRUE(ExprEquals(a, b));
  EXPECT_FALSE(ExprEquals(a, c));
  EXPECT_EQ(ExprHash(a), ExprHash(b));
}

TEST(ExprTest, OperatorCount) {
  EXPECT_EQ(OperatorCount(Rel("R", 2)), 1);
  EXPECT_EQ(OperatorCount(Union(Rel("R", 2), Rel("S", 2))), 3);
  EXPECT_EQ(OperatorCount(Project({1}, Select(Condition::True(),
                                              Rel("R", 2)))),
            3);
}

TEST(ExprTest, ContainsAndCollectRelations) {
  ExprPtr e = Difference(Product(Rel("R", 1), Rel("S", 1)),
                         Select(Condition::True(), Rel("T", 2)));
  EXPECT_TRUE(ContainsRelation(e, "R"));
  EXPECT_TRUE(ContainsRelation(e, "T"));
  EXPECT_FALSE(ContainsRelation(e, "U"));
  std::set<std::string> rels;
  CollectRelations(e, &rels);
  EXPECT_EQ(rels, (std::set<std::string>{"R", "S", "T"}));
}

TEST(ExprTest, ContainsSkolemAndDomain) {
  EXPECT_FALSE(ContainsSkolem(Rel("R", 2)));
  EXPECT_TRUE(ContainsSkolem(Project({1}, SkolemApp("f", {1}, Rel("R", 1)))));
  EXPECT_TRUE(ContainsDomain(Union(Rel("R", 2), Dom(2))));
  EXPECT_FALSE(ContainsDomain(Rel("R", 2)));
  std::set<std::string> sks;
  CollectSkolems(SkolemApp("g", {1}, SkolemApp("f", {1}, Rel("R", 1))), &sks);
  EXPECT_EQ(sks, (std::set<std::string>{"f", "g"}));
}

TEST(ExprTest, SubstituteRelation) {
  ExprPtr e = Union(Rel("S", 2), Project({1, 1}, Rel("T", 3)));
  ExprPtr replaced = SubstituteRelation(e, "S", Product(Rel("A", 1),
                                                        Rel("B", 1)));
  EXPECT_FALSE(ContainsRelation(replaced, "S"));
  EXPECT_TRUE(ContainsRelation(replaced, "A"));
  // Untouched subtree is shared, not copied.
  EXPECT_EQ(replaced->child(1), e->child(1));
  // No occurrence: returns the identical node.
  EXPECT_EQ(SubstituteRelation(e, "Z", Rel("A", 2)), e);
}

TEST(ExprTest, RenameRelation) {
  ExprPtr e = Intersect(Rel("S", 2), Rel("T", 2));
  ExprPtr renamed = RenameRelation(e, "S", "S2");
  EXPECT_TRUE(ContainsRelation(renamed, "S2"));
  EXPECT_FALSE(ContainsRelation(renamed, "S"));
}

TEST(ExprTest, PrintBasicForms) {
  EXPECT_EQ(ExprToString(Rel("R", 2)), "R");
  EXPECT_EQ(ExprToString(Dom(2)), "D^2");
  EXPECT_EQ(ExprToString(EmptyRel(3)), "empty^3");
  EXPECT_EQ(ExprToString(Union(Rel("R", 1), Rel("S", 1))), "(R + S)");
  EXPECT_EQ(ExprToString(Difference(Rel("R", 1), Rel("S", 1))), "(R - S)");
  EXPECT_EQ(ExprToString(Intersect(Rel("R", 1), Rel("S", 1))), "(R & S)");
  EXPECT_EQ(ExprToString(Product(Rel("R", 1), Rel("S", 1))), "(R * S)");
  EXPECT_EQ(ExprToString(Project({2, 1}, Rel("R", 2))), "pi[2,1](R)");
  EXPECT_EQ(ExprToString(Select(Condition::AttrCmp(1, CmpOp::kEq, 2),
                                Rel("R", 2))),
            "sel[#1=#2](R)");
  EXPECT_EQ(ExprToString(SkolemApp("f", {1, 2}, Rel("R", 2))), "$f[1,2](R)");
  EXPECT_EQ(ExprToString(Lit(2, {{Value(int64_t{1}), Value(std::string("a"))}})),
            "{(1,'a')}");
}

TEST(ExprTest, EquiJoinExpansion) {
  // R(2) join S(2) on R.2 = S.1 — the derived operator expands to π σ ×.
  ExprPtr j = EquiJoin(Rel("R", 2), Rel("S", 2), {{2, 1}});
  EXPECT_EQ(j->kind(), ExprKind::kProject);
  EXPECT_EQ(j->arity(), 3);
  EXPECT_EQ(j->indexes(), (std::vector<int>{1, 2, 4}));
  const ExprPtr& sel = j->child(0);
  EXPECT_EQ(sel->kind(), ExprKind::kSelect);
  EXPECT_EQ(sel->condition(), Condition::AttrCmp(2, CmpOp::kEq, 3));
}

TEST(ExprTest, ValidateCatchesBrokenNodes) {
  // Hand-build an invalid node to check ValidateExpr (builders would abort).
  ExprPtr bad = Expr::Make(ExprKind::kUnion, "", {Rel("R", 1), Rel("S", 2)},
                           Condition::True(), {}, 1, {});
  EXPECT_FALSE(ValidateExpr(bad).ok());
  ExprPtr bad_proj = Expr::Make(ExprKind::kProject, "", {Rel("R", 2)},
                                Condition::True(), {3}, 1, {});
  EXPECT_FALSE(ValidateExpr(bad_proj).ok());
  ExprPtr bad_sel = Expr::Make(ExprKind::kSelect, "", {Rel("R", 1)},
                               Condition::AttrCmp(1, CmpOp::kEq, 4), {}, 1,
                               {});
  EXPECT_FALSE(ValidateExpr(bad_sel).ok());
}

TEST(ExprTest, IndexHelpers) {
  EXPECT_EQ(IdentityIndexes(3), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(IndexRange(3, 5), (std::vector<int>{3, 4, 5}));
}

}  // namespace
}  // namespace mapcomp
