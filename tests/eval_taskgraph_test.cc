// Task-graph evaluation coverage: fingerprints and stats must be
// byte-identical at any lane count (jobs 1/2/4/8) on wide sibling
// fan-outs, the join-index cache must invalidate exactly like the
// ActiveDomain cache, lazy results must fingerprint without decoding, and
// error precedence must not depend on scheduling.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/algebra/builders.h"
#include "src/compose/compose.h"
#include "src/eval/checker.h"
#include "src/eval/evaluator.h"
#include "src/eval/generator.h"
#include "src/parser/parser.h"
#include "src/testdata/literature_suite.h"

namespace mapcomp {
namespace {

Tuple T(std::initializer_list<int64_t> vals) {
  Tuple t;
  for (int64_t v : vals) t.push_back(Value(v));
  return t;
}

/// The bench's dag_siblings shape: a balanced union tree over `width`
/// independent join subtrees, each over its own relation pair — so the
/// task graph has `width` sibling chains with no shared nodes below the
/// unions.
ExprPtr DagSiblings(int width) {
  std::vector<ExprPtr> legs;
  for (int i = 0; i < width; ++i) {
    std::string suffix = std::to_string(i);
    legs.push_back(Project(
        {1, 4}, Select(Condition::AttrCmp(2, CmpOp::kEq, 3),
                       Product(Rel("R" + suffix, 2), Rel("S" + suffix, 2)))));
  }
  while (legs.size() > 1) {
    std::vector<ExprPtr> next;
    for (size_t i = 0; i + 1 < legs.size(); i += 2) {
      next.push_back(Union(legs[i], legs[i + 1]));
    }
    if (legs.size() % 2 == 1) next.push_back(legs.back());
    legs = std::move(next);
  }
  return legs[0];
}

Instance DagSiblingsInstance(int width, int tuples, int domain,
                             uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> val(0, domain - 1);
  Instance db;
  for (int i = 0; i < width; ++i) {
    std::string suffix = std::to_string(i);
    std::set<Tuple> r, s;
    for (int t = 0; t < tuples; ++t) {
      r.insert(Tuple{Value(val(rng)), Value(val(rng))});
      s.insert(Tuple{Value(val(rng)), Value(val(rng))});
    }
    db.Set("R" + suffix, std::move(r));
    db.Set("S" + suffix, std::move(s));
  }
  return db;
}

TEST(EvalTaskGraphTest, WideFanoutFingerprintAndStatsInvariantAcrossJobs) {
  const ExprPtr e = DagSiblings(16);
  Instance db = DagSiblingsInstance(16, 40, 24, 7);
  // Warm the instance's join-index cache so index hit/miss counters are
  // comparable across the sweep (the first evaluation builds 16 indexes,
  // every later one reuses them — whatever the lane count).
  EvalOptions warm;
  warm.parallel_threshold = 4;
  ASSERT_TRUE(EvaluateFull(e, db, warm).ok());

  EvalOptions base_opts;
  base_opts.parallel_threshold = 4;
  EvalResult base = EvaluateFull(e, db, base_opts).value();
  EXPECT_GT(base.stats.hash_join_nodes, 0);
  EXPECT_GE(base.stats.index_cache_hits, 16);
  EXPECT_EQ(base.stats.index_cache_misses, 0);
  // 16 sibling legs ⇒ at least 16 tasks can be structurally ready at once.
  EXPECT_GE(base.stats.max_ready_depth, 16);
  EXPECT_GE(base.stats.tasks_spawned, base.stats.nodes_evaluated);
  for (int jobs : {2, 4, 8}) {
    EvalOptions opts = base_opts;
    opts.jobs = jobs;
    EvalResult got = EvaluateFull(e, db, opts).value();
    EXPECT_EQ(got.Fingerprint(), base.Fingerprint()) << "jobs=" << jobs;
    // Every counter — including tasks_spawned, max_ready_depth and the
    // index-cache pair — is lane-count-independent by design.
    EXPECT_EQ(got.stats.ToString(), base.stats.ToString()) << "jobs=" << jobs;
  }
}

TEST(EvalTaskGraphTest, LiteratureSuiteFingerprintsInvariantAtAllLaneCounts) {
  Parser parser;
  for (const testdata::LiteratureProblem& lit : testdata::LiteratureSuite()) {
    CompositionProblem problem = parser.ParseProblem(lit.text).value();
    CompositionResult composed = Compose(problem);
    ConstraintSet all = problem.sigma12;
    all.insert(all.end(), problem.sigma23.begin(), problem.sigma23.end());
    all.insert(all.end(), composed.constraints.begin(),
               composed.constraints.end());
    std::mt19937_64 rng(lit.name[0] + 3331);
    Instance inst = RepairTowards(
        RandomInstanceOver(
            {&problem.sigma1, &problem.sigma2, &problem.sigma3}, &rng),
        all);
    for (const Constraint& c : all) {
      for (const ExprPtr& side : {c.lhs, c.rhs}) {
        EvalOptions opts;
        opts.skolem_mode = SkolemEvalMode::kInjectiveTerms;
        opts.extra_constants = CollectConstants(all);
        opts.parallel_threshold = 2;
        Result<EvalResult> base = EvaluateFull(side, inst, opts);
        for (int jobs : {2, 4, 8}) {
          opts.jobs = jobs;
          Result<EvalResult> got = EvaluateFull(side, inst, opts);
          ASSERT_EQ(base.ok(), got.ok()) << lit.name << " jobs=" << jobs;
          if (!base.ok()) continue;  // same status at every lane count
          EXPECT_EQ(base->Fingerprint(), got->Fingerprint())
              << lit.name << " jobs=" << jobs;
        }
      }
    }
  }
}

TEST(EvalTaskGraphTest, ConcurrentEvaluateManyCallersAgree) {
  const int kThreads = 8;
  Instance db = DagSiblingsInstance(8, 30, 16, 11);
  std::vector<ExprPtr> roots;
  for (int w : {2, 4, 8}) roots.push_back(DagSiblings(w));
  EvalOptions opts;
  opts.parallel_threshold = 4;
  opts.jobs = 4;
  std::vector<std::string> baseline;
  {
    std::vector<EvalResult> out = EvaluateMany(roots, db, opts).value();
    for (const EvalResult& r : out) baseline.push_back(r.Fingerprint());
  }
  // Many whole evaluations sharing the global pool concurrently: each must
  // still produce the baseline fingerprints.
  std::vector<std::vector<std::string>> got(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      std::vector<EvalResult> out = EvaluateMany(roots, db, opts).value();
      for (const EvalResult& r : out) got[i].push_back(r.Fingerprint());
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kThreads; ++i) EXPECT_EQ(got[i], baseline) << i;
}

TEST(EvalTaskGraphTest, JoinIndexCacheInvalidation) {
  // Mirrors InstanceActiveDomainCacheInvalidation for the join-index cache.
  Instance db;
  db.Set("R", {T({1, 2}), T({3, 4})});
  bool hit = true;
  auto perm = db.JoinIndex("R", {0}, &hit);
  EXPECT_FALSE(hit);
  ASSERT_EQ(perm->size(), 2u);
  EXPECT_EQ(db.JoinIndex("R", {0}, &hit), perm);
  EXPECT_TRUE(hit);  // same relation + columns ⇒ cached
  db.JoinIndex("R", {1}, &hit);
  EXPECT_FALSE(hit);  // different key columns ⇒ separate entry
  db.Add("R", T({5, 6}));
  db.JoinIndex("R", {0}, &hit);
  EXPECT_FALSE(hit);  // Add invalidates
  db.Set("S", {T({9, 9})});
  db.JoinIndex("R", {0}, &hit);
  EXPECT_FALSE(hit);  // Set invalidates (any relation)
  db.Clear("S");
  db.JoinIndex("R", {0}, &hit);
  EXPECT_FALSE(hit);  // Clear invalidates
  db.JoinIndex("R", {0}, &hit);
  EXPECT_TRUE(hit);

  Instance copy = db;
  copy.JoinIndex("R", {0}, &hit);
  EXPECT_FALSE(hit);  // copies don't share the cache
  db.JoinIndex("R", {0}, &hit);
  EXPECT_TRUE(hit);  // ... and copying doesn't disturb the source's

  Instance assigned;
  assigned.Set("X", {T({1, 2})});
  assigned.JoinIndex("X", {0}, &hit);
  assigned = db;
  assigned.JoinIndex("R", {0}, &hit);
  EXPECT_FALSE(hit);  // assignment drops the target's warm cache
}

TEST(EvalTaskGraphTest, IndexCacheStatsTrackInstanceWarmth) {
  Instance db = DagSiblingsInstance(4, 20, 12, 3);
  const ExprPtr e = DagSiblings(4);
  EvalOptions opts;
  opts.parallel_threshold = 4;
  EvalResult first = EvaluateFull(e, db, opts).value();
  EXPECT_EQ(first.stats.index_cache_misses, 4);  // one build per leg
  EXPECT_EQ(first.stats.index_cache_hits, 0);
  EvalResult second = EvaluateFull(e, db, opts).value();
  EXPECT_EQ(second.stats.index_cache_misses, 0);
  EXPECT_EQ(second.stats.index_cache_hits, 4);
  db.Add("R0", T({1, 1}));  // mutation drops every cached index
  EvalResult third = EvaluateFull(e, db, opts).value();
  EXPECT_EQ(third.stats.index_cache_misses, 4);
  EXPECT_EQ(third.stats.index_cache_hits, 0);
}

TEST(EvalTaskGraphTest, FingerprintStreamsWithoutDecodingAndMatchesOracle) {
  Instance db = DagSiblingsInstance(4, 30, 16, 5);
  const ExprPtr e = DagSiblings(4);
  EvalOptions oracle_opts;
  oracle_opts.force_nested_loop = true;
  EvalResult oracle = EvaluateFull(e, db, oracle_opts).value();
  EvalResult kernel = EvaluateFull(e, db).value();
  // Fingerprint before any tuples() access (zero-decode streaming), after
  // decode, and from the nested-loop oracle must all be one byte string.
  std::string streamed = kernel.Fingerprint();
  EXPECT_EQ(streamed, oracle.Fingerprint());
  EXPECT_EQ(kernel.tuples(), oracle.tuples());
  EXPECT_EQ(kernel.Fingerprint(), streamed);

  // Minted values (Skolem terms) fall off the zero-decode path but must
  // still agree with the oracle byte for byte.
  ExprPtr sk = SkolemApp("f", {1}, Rel("R0", 2));
  EvalOptions sk_opts;
  sk_opts.skolem_mode = SkolemEvalMode::kInjectiveTerms;
  EvalResult sk_kernel = EvaluateFull(sk, db, sk_opts).value();
  EvalOptions sk_oracle = sk_opts;
  sk_oracle.force_nested_loop = true;
  EXPECT_EQ(sk_kernel.Fingerprint(),
            EvaluateFull(sk, db, sk_oracle).value().Fingerprint());
}

TEST(EvalTaskGraphTest, ErrorPrecedenceIsScheduleIndependent) {
  // A ragged relation (execution-time error) in one leg of a wide fan-out:
  // every lane count must surface the same status.
  Instance db = DagSiblingsInstance(8, 20, 12, 9);
  std::set<Tuple> ragged = db.Get("R3");
  ragged.insert(T({7}));
  db.Set("R3", std::move(ragged));
  const ExprPtr e = DagSiblings(8);
  EvalOptions opts;
  opts.parallel_threshold = 4;
  Result<EvalResult> base = EvaluateFull(e, db, opts);
  ASSERT_FALSE(base.ok());
  for (int jobs : {2, 8}) {
    opts.jobs = jobs;
    Result<EvalResult> got = EvaluateFull(e, db, opts);
    ASSERT_FALSE(got.ok()) << "jobs=" << jobs;
    EXPECT_EQ(got.status().ToString(), base.status().ToString())
        << "jobs=" << jobs;
  }
  // Plan-time guard errors also match at any lane count.
  EvalOptions tight;
  tight.max_domain_tuples = 10;
  Result<EvalResult> guard1 = EvaluateFull(Dom(3), db, tight);
  ASSERT_FALSE(guard1.ok());
  tight.jobs = 8;
  Result<EvalResult> guard8 = EvaluateFull(Dom(3), db, tight);
  ASSERT_FALSE(guard8.ok());
  EXPECT_EQ(guard1.status().ToString(), guard8.status().ToString());
}

}  // namespace
}  // namespace mapcomp
