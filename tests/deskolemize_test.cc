#include "src/compose/deskolemize.h"

#include <gtest/gtest.h>

#include <random>

#include "src/algebra/builders.h"
#include "src/algebra/print.h"
#include "src/eval/checker.h"
#include "src/eval/generator.h"

namespace mapcomp {
namespace {

TEST(DeskolemizeTest, PlainConstraintsPassThrough) {
  ConstraintSet cs{Constraint::Contain(Rel("R", 1), Rel("T", 1))};
  ConstraintSet out = Deskolemize(cs).value();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(ExprEquals(out[0].lhs, cs[0].lhs));
}

TEST(DeskolemizeTest, ProjectedAwaySkolemVanishes) {
  // π1(f1(R)) ⊆ T: the Skolem column is dropped by the projection, so the
  // dependency is function-free: R(x,y)… here R unary: R(x) → T(x).
  ConstraintSet cs{Constraint::Contain(
      Project({1}, SkolemApp("f", {1}, Rel("R", 1))), Rel("T", 1))};
  ConstraintSet out = Deskolemize(cs).value();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(ContainsSkolem(out[0].lhs) || ContainsSkolem(out[0].rhs));
  EXPECT_TRUE(ExprEquals(out[0].lhs, Rel("R", 1)));
  EXPECT_TRUE(ExprEquals(out[0].rhs, Rel("T", 1)));
}

TEST(DeskolemizeTest, SingleFunctionBecomesExistential) {
  // f1(R) ⊆ T with R unary, T binary: R(x) → ∃y T(x,y) = R ⊆ π1(T).
  ConstraintSet cs{
      Constraint::Contain(SkolemApp("f", {1}, Rel("R", 1)), Rel("T", 2))};
  ConstraintSet out = Deskolemize(cs).value();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(ExprEquals(out[0].lhs, Rel("R", 1)));
  EXPECT_TRUE(ExprEquals(out[0].rhs, Project({1}, Rel("T", 2))));
}

TEST(DeskolemizeTest, SharedFunctionMergesDependencies) {
  // f1(R) ⊆ T, f1(R) ⊆ U: both constraints talk about the same Skolem
  // value, so the merged result is R(x) → ∃y T(x,y) ∧ U(x,y) — NOT two
  // independent existentials.
  ConstraintSet cs{
      Constraint::Contain(SkolemApp("f", {1}, Rel("R", 1)), Rel("T", 2)),
      Constraint::Contain(SkolemApp("f", {1}, Rel("R", 1)), Rel("U", 2))};
  ConstraintSet out = Deskolemize(cs).value();
  ASSERT_EQ(out.size(), 1u);  // merged into one dependency
  // Semantics: whenever R(x), some y with T(x,y) AND U(x,y).
  Instance db;
  db.Set("R", {{Value(int64_t{1})}});
  db.Set("T", {{Value(int64_t{1}), Value(int64_t{5})}});
  db.Set("U", {{Value(int64_t{1}), Value(int64_t{6})}});
  // T and U rows exist but with different witnesses: must NOT satisfy.
  EXPECT_FALSE(SatisfiesAll(db, out).value());
  db.Add("U", {Value(int64_t{1}), Value(int64_t{5})});
  EXPECT_TRUE(SatisfiesAll(db, out).value());
}

TEST(DeskolemizeTest, RepeatedFunctionDifferentArgsFails) {
  // f(x) and f(y) with different argument columns inside one constraint:
  // step 3 failure (the Example 17 situation).
  // lhs: f1(R) × f2(R') over R binary… build directly:
  ExprPtr left = Product(SkolemApp("f", {1}, Rel("R", 1)),
                         SkolemApp("f", {1}, Rel("S", 1)));
  // Both Skolem apps use function name "f" but over different atoms, so
  // after translation f appears with two distinct argument variables.
  ConstraintSet cs{Constraint::Contain(left, Rel("T", 4))};
  Result<ConstraintSet> out = Deskolemize(cs);
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("step 3"), std::string::npos);
}

TEST(DeskolemizeTest, RestrictingBodyConditionFails) {
  // σ comparing the Skolem column with a base column restricts the
  // function's value in the body: steps 5-7 failure.
  ExprPtr sk = SkolemApp("f", {1}, Rel("R", 1));  // columns: x, f(x)
  ConstraintSet cs{Constraint::Contain(
      Select(Condition::AttrCmp(1, CmpOp::kEq, 2), sk), Rel("T", 2))};
  Result<ConstraintSet> out = Deskolemize(cs);
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("restrict"), std::string::npos);
}

TEST(DeskolemizeTest, HeadConditionOnSkolemColumnSurvives) {
  // f's value constrained on the HEAD side is fine: R(x) → ∃y T(x,y) ∧ y=3
  // i.e. f1(R) ⊆ σ_{2=3}(T)-style via substitution. Build the constraint
  // f1(R) ⊆ sel[#2=3](T).
  ConstraintSet cs{Constraint::Contain(
      SkolemApp("f", {1}, Rel("R", 1)),
      Select(Condition::AttrConst(2, CmpOp::kEq, int64_t{3}), Rel("T", 2)))};
  ConstraintSet out = Deskolemize(cs).value();
  ASSERT_FALSE(out.empty());
  Instance db;
  db.Set("R", {{Value(int64_t{1})}});
  db.Set("T", {{Value(int64_t{1}), Value(int64_t{4})}});
  EXPECT_FALSE(SatisfiesAll(db, out).value());
  db.Add("T", {Value(int64_t{1}), Value(int64_t{3})});
  EXPECT_TRUE(SatisfiesAll(db, out).value());
}

TEST(DeskolemizeTest, SharedFunctionWithMismatchedBodiesFails) {
  // f over R in one constraint and over S in another: bodies are not
  // isomorphic, merging fails (step 9).
  ConstraintSet cs{
      Constraint::Contain(SkolemApp("f", {1}, Rel("R", 1)), Rel("T", 2)),
      Constraint::Contain(
          SkolemApp("f", {1}, Intersect(Rel("R", 1), Rel("S", 1))),
          Rel("U", 2))};
  Result<ConstraintSet> out = Deskolemize(cs);
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("step 9"), std::string::npos);
}

TEST(DeskolemizeTest, DuplicateDependenciesRemoved) {
  // The same Skolemized constraint twice: step 10 deduplicates.
  Constraint c =
      Constraint::Contain(SkolemApp("f", {1}, Rel("R", 1)), Rel("T", 2));
  ConstraintSet cs{c, c};
  ConstraintSet out = Deskolemize(cs).value();
  EXPECT_EQ(out.size(), 1u);
}

TEST(DeskolemizeTest, KeyMinimizedSkolemRoundTrip) {
  // Skolem depending on a key prefix only: g depends on column 1 of R(2).
  // R(x,y) → ∃z S(x,y,z) where z depends only on x; with a single
  // occurrence the ∃ form is equivalent.
  ConstraintSet cs{
      Constraint::Contain(SkolemApp("g", {1}, Rel("R", 2)), Rel("S", 3))};
  ConstraintSet out = Deskolemize(cs).value();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(ContainsSkolem(out[0].lhs) || ContainsSkolem(out[0].rhs));
  // Soundness spot check.
  Signature sig;
  ASSERT_TRUE(sig.AddRelation("R", 2).ok());
  ASSERT_TRUE(sig.AddRelation("S", 3).ok());
  Instance db;
  db.Set("R", {{Value(int64_t{1}), Value(int64_t{2})}});
  db.Set("S", {{Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{9})}});
  EXPECT_TRUE(SatisfiesAll(db, out).value());
  db.Clear("S");
  EXPECT_FALSE(SatisfiesAll(db, out).value());
}

}  // namespace
}  // namespace mapcomp
