#include "src/logic/translate.h"

#include <gtest/gtest.h>

#include <random>

#include "src/algebra/builders.h"
#include "src/algebra/print.h"
#include "src/eval/checker.h"
#include "src/eval/generator.h"
#include "src/logic/homomorphism.h"
#include "src/logic/to_algebra.h"

namespace mapcomp {
namespace {

using logic::CQ;
using logic::Dependency;
using logic::LAtom;
using logic::Term;
using logic::VarAllocator;

TEST(TranslateTest, RelationLeaf) {
  VarAllocator vars;
  std::vector<CQ> ucq = logic::ExprToUCQ(Rel("R", 2), &vars).value();
  ASSERT_EQ(ucq.size(), 1u);
  EXPECT_EQ(ucq[0].atoms.size(), 1u);
  EXPECT_EQ(ucq[0].atoms[0].rel, "R");
  EXPECT_EQ(ucq[0].outputs.size(), 2u);
}

TEST(TranslateTest, UnionMakesDisjuncts) {
  VarAllocator vars;
  std::vector<CQ> ucq =
      logic::ExprToUCQ(Union(Rel("R", 1), Rel("S", 1)), &vars).value();
  EXPECT_EQ(ucq.size(), 2u);
}

TEST(TranslateTest, ProductConcatenates) {
  VarAllocator vars;
  std::vector<CQ> ucq =
      logic::ExprToUCQ(Product(Rel("R", 1), Rel("S", 2)), &vars).value();
  ASSERT_EQ(ucq.size(), 1u);
  EXPECT_EQ(ucq[0].atoms.size(), 2u);
  EXPECT_EQ(ucq[0].outputs.size(), 3u);
}

TEST(TranslateTest, SelectionEqualityUnifies) {
  VarAllocator vars;
  std::vector<CQ> ucq =
      logic::ExprToUCQ(Select(Condition::AttrCmp(1, CmpOp::kEq, 2),
                              Rel("R", 2)),
                       &vars)
          .value();
  ASSERT_EQ(ucq.size(), 1u);
  // Unification leaves both outputs as the same variable, no conditions.
  EXPECT_TRUE(ucq[0].conds.empty());
  EXPECT_TRUE(ucq[0].outputs[0] == ucq[0].outputs[1]);
}

TEST(TranslateTest, InequalityBecomesCondition) {
  VarAllocator vars;
  std::vector<CQ> ucq =
      logic::ExprToUCQ(Select(Condition::AttrCmp(1, CmpOp::kLt, 2),
                              Rel("R", 2)),
                       &vars)
          .value();
  ASSERT_EQ(ucq.size(), 1u);
  EXPECT_EQ(ucq[0].conds.size(), 1u);
  EXPECT_EQ(ucq[0].conds[0].op, CmpOp::kLt);
}

TEST(TranslateTest, DifferenceUnsupported) {
  VarAllocator vars;
  EXPECT_FALSE(
      logic::ExprToUCQ(Difference(Rel("R", 1), Rel("S", 1)), &vars).ok());
}

TEST(TranslateTest, DisjunctiveConditionUnsupported) {
  VarAllocator vars;
  Condition c = Condition::Or(Condition::AttrCmp(1, CmpOp::kEq, 2),
                              Condition::AttrCmp(1, CmpOp::kLt, 2));
  EXPECT_FALSE(logic::ExprToUCQ(Select(c, Rel("R", 2)), &vars).ok());
}

TEST(TranslateTest, SkolemAddsFunctionOutput) {
  VarAllocator vars;
  std::vector<CQ> ucq =
      logic::ExprToUCQ(SkolemApp("f", {1}, Rel("R", 2)), &vars).value();
  ASSERT_EQ(ucq.size(), 1u);
  ASSERT_EQ(ucq[0].outputs.size(), 3u);
  EXPECT_TRUE(ucq[0].outputs[2].IsFunc());
  EXPECT_EQ(ucq[0].outputs[2].func, "f");
}

TEST(TranslateTest, NestedSkolemArgumentFails) {
  // f applied to a column that is itself a Skolem output → nesting → fail
  // (deskolemize step 2, "check for cycles").
  VarAllocator vars;
  ExprPtr nested = SkolemApp("g", {3}, SkolemApp("f", {1}, Rel("R", 2)));
  EXPECT_FALSE(logic::ExprToUCQ(nested, &vars).ok());
}

TEST(TranslateTest, ConstraintToDependencies) {
  // π1(R) ⊆ π1(T): R(x,y) → ∃u T(x,u).
  Constraint c = Constraint::Contain(Project({1}, Rel("R", 2)),
                                     Project({1}, Rel("T", 2)));
  std::vector<Dependency> deps =
      logic::ConstraintToDependencies(c).value();
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].body.size(), 1u);
  EXPECT_EQ(deps[0].head.size(), 1u);
  EXPECT_EQ(deps[0].head[0].rel, "T");
  // Head variable u is existential: appears in head only.
  std::set<logic::VarId> body_vars = deps[0].BodyVars();
  std::set<logic::VarId> head_vars = deps[0].HeadVars();
  bool has_existential = false;
  for (logic::VarId v : head_vars) {
    if (body_vars.count(v) == 0) has_existential = true;
  }
  EXPECT_TRUE(has_existential);
}

TEST(TranslateTest, UnionLhsSplitsIntoTwoDependencies) {
  Constraint c =
      Constraint::Contain(Union(Rel("R", 1), Rel("S", 1)), Rel("T", 1));
  std::vector<Dependency> deps =
      logic::ConstraintToDependencies(c).value();
  EXPECT_EQ(deps.size(), 2u);
}

TEST(TranslateTest, UnionRhsUnsupported) {
  Constraint c =
      Constraint::Contain(Rel("T", 1), Union(Rel("R", 1), Rel("S", 1)));
  EXPECT_FALSE(logic::ConstraintToDependencies(c).ok());
}

/// Round-trip property: constraint → dependencies → constraints preserves
/// semantics for the function-free CQ fragment.
class RoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripTest, DependencyRoundTripPreservesSemantics) {
  Signature sig;
  ASSERT_TRUE(sig.AddRelation("R", 2).ok());
  ASSERT_TRUE(sig.AddRelation("S", 2).ok());
  ASSERT_TRUE(sig.AddRelation("T", 1).ok());

  std::vector<Constraint> cases = {
      Constraint::Contain(Project({1}, Rel("R", 2)), Rel("T", 1)),
      Constraint::Contain(Select(Condition::AttrCmp(1, CmpOp::kEq, 2),
                                 Rel("R", 2)),
                          Rel("S", 2)),
      Constraint::Contain(Intersect(Rel("R", 2), Rel("S", 2)), Rel("S", 2)),
      Constraint::Contain(Product(Rel("T", 1), Rel("T", 1)), Rel("S", 2)),
      Constraint::Contain(Project({1}, Rel("R", 2)),
                          Project({2}, Rel("S", 2))),
      Constraint::Contain(
          Select(Condition::AttrConst(1, CmpOp::kEq, int64_t{1}),
                 Rel("T", 1)),
          Project({1}, Rel("S", 2))),
  };
  const Constraint& c = cases[GetParam() % cases.size()];

  std::vector<Dependency> deps = logic::ConstraintToDependencies(c).value();
  ConstraintSet round;
  for (const Dependency& d : deps) {
    round.push_back(logic::DependencyToConstraint(d).value());
  }
  std::mt19937_64 rng(300 + GetParam());
  GenOptions gen;
  gen.domain_size = 3;
  gen.max_tuples_per_rel = 3;
  for (int i = 0; i < 40; ++i) {
    Instance db = RandomInstance(sig, &rng, gen);
    auto before = Satisfies(db, c, {});
    auto after = SatisfiesAll(db, round);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(*before, *after)
        << "constraint: " << c.ToString() << "\nround-trip:\n"
        << ConstraintSetToString(round) << "instance:\n"
        << db.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, RoundTripTest, ::testing::Range(0, 6));

TEST(HomomorphismTest, SimpleMappingExists) {
  // R(x,y) maps into {R(a,b)}: hom exists.
  std::vector<LAtom> from{LAtom{"R", {Term::MakeVar(0), Term::MakeVar(1)}}};
  std::vector<LAtom> to{LAtom{"R", {Term::MakeVar(5), Term::MakeVar(6)}}};
  EXPECT_TRUE(logic::FindHomomorphism(from, to).has_value());
}

TEST(HomomorphismTest, RepeatedVariableBlocksMapping) {
  // R(x,x) cannot map into R(a,b) with a≠b as distinct variables... it can
  // map both to the same target variable only if the target has one; with
  // target R(a,b) the hom x→a fails the second position.
  std::vector<LAtom> from{LAtom{"R", {Term::MakeVar(0), Term::MakeVar(0)}}};
  std::vector<LAtom> to{LAtom{"R", {Term::MakeVar(5), Term::MakeVar(6)}}};
  EXPECT_FALSE(logic::FindHomomorphism(from, to).has_value());
  std::vector<LAtom> to_diag{
      LAtom{"R", {Term::MakeVar(7), Term::MakeVar(7)}}};
  EXPECT_TRUE(logic::FindHomomorphism(from, to_diag).has_value());
}

TEST(HomomorphismTest, ConstantsMustMatch) {
  std::vector<LAtom> from{
      LAtom{"R", {Term::MakeConst(int64_t{1}), Term::MakeVar(0)}}};
  std::vector<LAtom> to_match{
      LAtom{"R", {Term::MakeConst(int64_t{1}), Term::MakeVar(3)}}};
  std::vector<LAtom> to_mismatch{
      LAtom{"R", {Term::MakeConst(int64_t{2}), Term::MakeVar(3)}}};
  EXPECT_TRUE(logic::FindHomomorphism(from, to_match).has_value());
  EXPECT_FALSE(logic::FindHomomorphism(from, to_mismatch).has_value());
}

TEST(HomomorphismTest, BodyBijectionRespectsSeed) {
  // Bodies {R(x0,x1)} and {R(y0,y1)}: bijection exists; seeding y0→x1
  // forces failure (positions disagree).
  std::vector<LAtom> a{LAtom{"R", {Term::MakeVar(0), Term::MakeVar(1)}}};
  std::vector<LAtom> b{LAtom{"R", {Term::MakeVar(0), Term::MakeVar(1)}}};
  EXPECT_TRUE(logic::FindBodyBijection(a, {}, b, {}, {}).has_value());
  std::map<logic::VarId, logic::VarId> seed{{0, 1}};
  EXPECT_FALSE(logic::FindBodyBijection(a, {}, b, {}, seed).has_value());
}

TEST(DependencyTest, CanonicalizationIsStable) {
  Dependency d;
  d.num_vars = 4;
  d.body.push_back(LAtom{"R", {Term::MakeVar(3), Term::MakeVar(1)}});
  d.head.push_back(LAtom{"T", {Term::MakeVar(3)}});
  Dependency c1 = d.Canonicalized();
  Dependency c2 = c1.Canonicalized();
  EXPECT_EQ(c1.ToString(), c2.ToString());
  EXPECT_EQ(c1.body[0].args[0].var, 0);
}

TEST(ToAlgebraTest, ExistentialVariableNotProjected) {
  // R(x) → ∃y S(x,y) becomes R ⊆ π1(S).
  Dependency d;
  d.num_vars = 2;
  d.body.push_back(LAtom{"R", {Term::MakeVar(0)}});
  d.head.push_back(LAtom{"S", {Term::MakeVar(0), Term::MakeVar(1)}});
  Constraint c = logic::DependencyToConstraint(d).value();
  EXPECT_TRUE(ExprEquals(c.lhs, Rel("R", 1)));
  EXPECT_TRUE(ExprEquals(c.rhs, Project({1}, Rel("S", 2))));
}

TEST(ToAlgebraTest, FunctionTermsRejected) {
  Dependency d;
  d.num_vars = 1;
  d.body.push_back(LAtom{"R", {Term::MakeVar(0)}});
  d.head.push_back(LAtom{"S", {Term::MakeFunc("f", {0})}});
  EXPECT_FALSE(logic::DependencyToConstraint(d).ok());
}

}  // namespace
}  // namespace mapcomp
