#include "src/algebra/condition.h"

#include <gtest/gtest.h>

namespace mapcomp {
namespace {

Tuple T(std::initializer_list<int64_t> vals) {
  Tuple t;
  for (int64_t v : vals) t.push_back(Value(v));
  return t;
}

TEST(ConditionTest, TrueFalseEval) {
  EXPECT_TRUE(Condition::True().Eval(T({})));
  EXPECT_FALSE(Condition::False().Eval(T({})));
}

TEST(ConditionTest, AttrAttrComparisons) {
  Tuple t = T({1, 2, 2});
  EXPECT_FALSE(Condition::AttrCmp(1, CmpOp::kEq, 2).Eval(t));
  EXPECT_TRUE(Condition::AttrCmp(2, CmpOp::kEq, 3).Eval(t));
  EXPECT_TRUE(Condition::AttrCmp(1, CmpOp::kLt, 2).Eval(t));
  EXPECT_FALSE(Condition::AttrCmp(2, CmpOp::kLt, 3).Eval(t));
  EXPECT_TRUE(Condition::AttrCmp(2, CmpOp::kLe, 3).Eval(t));
  EXPECT_TRUE(Condition::AttrCmp(2, CmpOp::kGt, 1).Eval(t));
  EXPECT_TRUE(Condition::AttrCmp(1, CmpOp::kNe, 2).Eval(t));
  EXPECT_TRUE(Condition::AttrCmp(3, CmpOp::kGe, 2).Eval(t));
}

TEST(ConditionTest, AttrConstComparisons) {
  Tuple t = T({5});
  EXPECT_TRUE(Condition::AttrConst(1, CmpOp::kEq, int64_t{5}).Eval(t));
  EXPECT_FALSE(Condition::AttrConst(1, CmpOp::kEq, int64_t{6}).Eval(t));
  EXPECT_TRUE(Condition::AttrConst(1, CmpOp::kLt, int64_t{9}).Eval(t));
}

TEST(ConditionTest, MixedTypeOrderIntsBeforeStrings) {
  Tuple t{Value(int64_t{3}), Value(std::string("a"))};
  // All integers order before all strings.
  EXPECT_TRUE(Condition::AttrCmp(1, CmpOp::kLt, 2).Eval(t));
  EXPECT_FALSE(Condition::AttrCmp(1, CmpOp::kEq, 2).Eval(t));
}

TEST(ConditionTest, OutOfRangeAttrEvaluatesFalse) {
  EXPECT_FALSE(Condition::AttrCmp(1, CmpOp::kEq, 5).Eval(T({1})));
}

TEST(ConditionTest, ConnectiveFolding) {
  Condition atom = Condition::AttrCmp(1, CmpOp::kEq, 2);
  EXPECT_EQ(Condition::And(Condition::True(), atom), atom);
  EXPECT_TRUE(Condition::And(Condition::False(), atom).IsFalse());
  EXPECT_EQ(Condition::Or(Condition::False(), atom), atom);
  EXPECT_TRUE(Condition::Or(Condition::True(), atom).IsTrue());
  EXPECT_TRUE(Condition::Not(Condition::True()).IsFalse());
  EXPECT_EQ(Condition::Not(Condition::Not(atom)), atom);
}

TEST(ConditionTest, ConstantAtomFolds) {
  EXPECT_TRUE(Condition::Atom(CondOperand::Const(int64_t{1}), CmpOp::kLt,
                              CondOperand::Const(int64_t{2}))
                  .IsTrue());
  EXPECT_TRUE(Condition::Atom(CondOperand::Const(int64_t{3}), CmpOp::kEq,
                              CondOperand::Const(int64_t{2}))
                  .IsFalse());
}

TEST(ConditionTest, AndOrEval) {
  Condition c = Condition::And(Condition::AttrCmp(1, CmpOp::kEq, 2),
                               Condition::AttrConst(3, CmpOp::kGt, int64_t{0}));
  EXPECT_TRUE(c.Eval(T({4, 4, 1})));
  EXPECT_FALSE(c.Eval(T({4, 5, 1})));
  EXPECT_FALSE(c.Eval(T({4, 4, 0})));
  Condition d = Condition::Or(Condition::AttrCmp(1, CmpOp::kEq, 2),
                              Condition::AttrConst(3, CmpOp::kGt, int64_t{0}));
  EXPECT_TRUE(d.Eval(T({4, 5, 1})));
  EXPECT_FALSE(d.Eval(T({4, 5, 0})));
}

TEST(ConditionTest, ShiftAttrs) {
  Condition c = Condition::AttrCmp(1, CmpOp::kEq, 2).ShiftAttrs(3);
  EXPECT_TRUE(c.Eval(T({1, 1, 0, 7, 7})));   // compares #4 = #5 now
  EXPECT_FALSE(c.Eval(T({0, 0, 0, 7, 8})));
  EXPECT_EQ(c.MaxAttr(), 5);
}

TEST(ConditionTest, RemapAttrs) {
  Condition c = Condition::AttrCmp(1, CmpOp::kLt, 2).RemapAttrs([](int i) {
    return i == 1 ? 2 : 1;
  });
  EXPECT_TRUE(c.Eval(T({9, 3})));  // now #2 < #1
  EXPECT_FALSE(c.Eval(T({3, 9})));
}

TEST(ConditionTest, MaxAttr) {
  EXPECT_EQ(Condition::True().MaxAttr(), 0);
  EXPECT_EQ(Condition::AttrConst(4, CmpOp::kEq, int64_t{0}).MaxAttr(), 4);
  EXPECT_EQ(Condition::And(Condition::AttrCmp(1, CmpOp::kEq, 7),
                           Condition::AttrCmp(2, CmpOp::kEq, 3))
                .MaxAttr(),
            7);
}

TEST(ConditionTest, EqualityAndHash) {
  Condition a = Condition::And(Condition::AttrCmp(1, CmpOp::kEq, 2),
                               Condition::AttrConst(3, CmpOp::kNe, int64_t{5}));
  Condition b = Condition::And(Condition::AttrCmp(1, CmpOp::kEq, 2),
                               Condition::AttrConst(3, CmpOp::kNe, int64_t{5}));
  Condition c = Condition::And(Condition::AttrCmp(1, CmpOp::kEq, 2),
                               Condition::AttrConst(3, CmpOp::kNe, int64_t{6}));
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(ConditionTest, ToStringRoundtrippableShapes) {
  EXPECT_EQ(Condition::True().ToString(), "true");
  EXPECT_EQ(Condition::AttrCmp(1, CmpOp::kEq, 2).ToString(), "#1=#2");
  EXPECT_EQ(Condition::AttrConst(1, CmpOp::kLe, int64_t{5}).ToString(),
            "#1<=5");
  EXPECT_EQ(
      Condition::AttrConst(2, CmpOp::kEq, std::string("abc")).ToString(),
      "#2='abc'");
  EXPECT_EQ(Condition::Not(Condition::AttrCmp(1, CmpOp::kEq, 2)).ToString(),
            "not #1=#2");
}

TEST(ConditionTest, FlattenedConjunctions) {
  Condition c =
      Condition::And(Condition::And(Condition::AttrCmp(1, CmpOp::kEq, 2),
                                    Condition::AttrCmp(2, CmpOp::kEq, 3)),
                     Condition::AttrCmp(3, CmpOp::kEq, 4));
  ASSERT_EQ(c.kind(), Condition::Kind::kAnd);
  EXPECT_EQ(c.children().size(), 3u);
}

}  // namespace
}  // namespace mapcomp
