#include "src/eval/evaluator.h"

#include <gtest/gtest.h>

#include "src/algebra/builders.h"
#include "src/eval/checker.h"
#include "src/eval/generator.h"

namespace mapcomp {
namespace {

Tuple T(std::initializer_list<int64_t> vals) {
  Tuple t;
  for (int64_t v : vals) t.push_back(Value(v));
  return t;
}

class EvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.Set("R", {T({1, 2}), T({2, 3})});
    db_.Set("S", {T({2, 3}), T({4, 5})});
    db_.Set("U", {T({1}), T({4})});
  }
  Instance db_;
};

TEST_F(EvalTest, BaseRelationAndEmpty) {
  EXPECT_EQ(Evaluate(Rel("R", 2), db_).value().size(), 2u);
  EXPECT_TRUE(Evaluate(Rel("Z", 2), db_).value().empty());
  EXPECT_TRUE(Evaluate(EmptyRel(2), db_).value().empty());
}

TEST_F(EvalTest, Literal) {
  auto out = Evaluate(Lit(1, {T({7}), T({8})}), db_).value();
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.count(T({7})) > 0);
}

TEST_F(EvalTest, UnionIntersectDifference) {
  EXPECT_EQ(Evaluate(Union(Rel("R", 2), Rel("S", 2)), db_).value().size(), 3u);
  auto inter = Evaluate(Intersect(Rel("R", 2), Rel("S", 2)), db_).value();
  EXPECT_EQ(inter, (std::set<Tuple>{T({2, 3})}));
  auto diff = Evaluate(Difference(Rel("R", 2), Rel("S", 2)), db_).value();
  EXPECT_EQ(diff, (std::set<Tuple>{T({1, 2})}));
}

TEST_F(EvalTest, ProductSelectProject) {
  auto prod = Evaluate(Product(Rel("U", 1), Rel("U", 1)), db_).value();
  EXPECT_EQ(prod.size(), 4u);
  auto sel = Evaluate(Select(Condition::AttrCmp(1, CmpOp::kEq, 2),
                             Product(Rel("U", 1), Rel("U", 1))),
                      db_)
                 .value();
  EXPECT_EQ(sel.size(), 2u);
  auto proj = Evaluate(Project({2}, Rel("R", 2)), db_).value();
  EXPECT_EQ(proj, (std::set<Tuple>{T({2}), T({3})}));
  auto dup = Evaluate(Project({1, 1}, Rel("U", 1)), db_).value();
  EXPECT_EQ(dup, (std::set<Tuple>{T({1, 1}), T({4, 4})}));
}

TEST_F(EvalTest, ActiveDomain) {
  // adom = {1,2,3,4,5}.
  auto d1 = Evaluate(Dom(1), db_).value();
  EXPECT_EQ(d1.size(), 5u);
  auto d2 = Evaluate(Dom(2), db_).value();
  EXPECT_EQ(d2.size(), 25u);
}

TEST_F(EvalTest, DomainIncludesExtraConstants) {
  EvalOptions opts;
  opts.extra_constants.insert(Value(int64_t{99}));
  auto d1 = Evaluate(Dom(1), db_, opts).value();
  EXPECT_EQ(d1.size(), 6u);
  EXPECT_TRUE(d1.count(T({99})) > 0);
}

TEST_F(EvalTest, DomainBlowupGuard) {
  EvalOptions opts;
  opts.max_domain_tuples = 10;
  Result<std::set<Tuple>> r = Evaluate(Dom(2), db_, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(EvalTest, SkolemModes) {
  ExprPtr sk = SkolemApp("f", {1}, Rel("U", 1));
  EXPECT_FALSE(Evaluate(sk, db_).ok());
  EvalOptions opts;
  opts.skolem_mode = SkolemEvalMode::kInjectiveTerms;
  auto out = Evaluate(sk, db_, opts).value();
  EXPECT_EQ(out.size(), 2u);
  // Injective: distinct inputs get distinct terms.
  std::set<Value> skolem_values;
  for (const Tuple& t : out) skolem_values.insert(t[1]);
  EXPECT_EQ(skolem_values.size(), 2u);
}

TEST_F(EvalTest, UserOpEval) {
  // semijoin[#1=#3](R, S): R tuples whose first column appears as S's first.
  const op::Registry& reg = op::Registry::Default();
  ExprPtr sj = reg.MakeOp("semijoin", {Rel("R", 2), Rel("S", 2)},
                          Condition::AttrCmp(1, CmpOp::kEq, 3))
                   .value();
  auto out = Evaluate(sj, db_).value();
  EXPECT_EQ(out, (std::set<Tuple>{T({2, 3})}));
}

TEST_F(EvalTest, SatisfiesContainmentAndEquality) {
  // R ⊆ R ∪ S holds; R = S does not.
  EXPECT_TRUE(Satisfies(db_, Constraint::Contain(
                                 Rel("R", 2), Union(Rel("R", 2), Rel("S", 2))))
                  .value());
  EXPECT_FALSE(Satisfies(db_, Constraint::Equal(Rel("R", 2), Rel("S", 2)))
                   .value());
}

TEST_F(EvalTest, SatisfiesAllCollectsConstants) {
  // Constraint references constant 7, absent from db. {(7)} ⊆ D^1 must hold
  // because checking adds the constraint's own constants to the domain.
  ConstraintSet cs{Constraint::Contain(Lit(1, {T({7})}), Dom(1))};
  EXPECT_TRUE(SatisfiesAll(db_, cs).value());
}

TEST_F(EvalTest, KeyConstraintSemantics) {
  // Key constraint from Example 2: first column of a binary relation is a
  // key.
  ConstraintSet key = KeyConstraintsFor("K", 2, {1});
  Instance good;
  good.Set("K", {T({1, 2}), T({2, 2})});
  EXPECT_TRUE(SatisfiesAll(good, key).value());
  Instance bad;
  bad.Set("K", {T({1, 2}), T({1, 3})});
  EXPECT_FALSE(SatisfiesAll(bad, key).value());
}

TEST_F(EvalTest, EvaluateFullStatsAndFingerprint) {
  ExprPtr e = Union(Rel("R", 2), Rel("S", 2));
  EvalResult out = EvaluateFull(e, db_).value();
  EXPECT_EQ(out.arity, 2);
  EXPECT_EQ(out.tuples().size(), 3u);
  EXPECT_EQ(out.stats.nodes_evaluated, 3);  // R, S, the union
  EXPECT_EQ(out.stats.memo_hits, 0);
  // Deterministic across runs and byte-equal to the same evaluation again.
  EXPECT_EQ(out.Fingerprint(), EvaluateFull(e, db_).value().Fingerprint());
  EXPECT_NE(out.Fingerprint().find("arity=2"), std::string::npos);
  // A different result set fingerprints differently.
  EXPECT_NE(out.Fingerprint(),
            EvaluateFull(Rel("R", 2), db_).value().Fingerprint());
}

TEST_F(EvalTest, EvaluateManySharesTheMemoAcrossRoots) {
  // The shape the checker sees: two constraint sides reusing one subtree.
  ExprPtr shared = Project({1}, Rel("R", 2));
  ExprPtr lhs = Intersect(shared, Rel("U", 1));
  ExprPtr rhs = shared;
  std::vector<EvalResult> sides = EvaluateMany({lhs, rhs}, db_).value();
  ASSERT_EQ(sides.size(), 2u);
  // Root 2's whole tree was computed while evaluating root 1.
  EXPECT_EQ(sides[1].stats.nodes_evaluated, 0);
  EXPECT_EQ(sides[1].stats.memo_hits, 1);
  EXPECT_EQ(sides[1].tuples(),
            Evaluate(Project({1}, Rel("R", 2)), db_).value());
}

TEST_F(EvalTest, SharedSubtreeEvaluatesOnce) {
  ExprPtr r = Rel("R", 2);
  EvalResult out = EvaluateFull(Intersect(r, r), db_).value();
  EXPECT_EQ(out.stats.nodes_evaluated, 2);  // R once + the intersect
  EXPECT_EQ(out.stats.memo_hits, 1);
  EXPECT_EQ(out.tuples(), db_.Get("R"));
}

TEST(InstanceTest, TotalTuples) {
  Instance a;
  a.Set("R", {Tuple{Value(int64_t{1})}, Tuple{Value(int64_t{2})}});
  a.Set("S", {Tuple{Value(int64_t{3})}});
  EXPECT_EQ(a.TotalTuples(), 3);
}

TEST(GeneratorTest, RandomInstanceOverSpansSignatures) {
  Signature s1, s2;
  ASSERT_TRUE(s1.AddRelation("A", 1).ok());
  ASSERT_TRUE(s2.AddRelation("B", 2).ok());
  std::mt19937_64 rng(5);
  GenOptions gen;
  gen.max_tuples_per_rel = 4;
  Instance inst = RandomInstanceOver({&s1, &s2}, &rng, gen);
  for (const Tuple& t : inst.Get("A")) EXPECT_EQ(t.size(), 1u);
  for (const Tuple& t : inst.Get("B")) EXPECT_EQ(t.size(), 2u);
}

TEST(GeneratorTest, RepairTowardsSatisfiesMonotonePipeline) {
  // A ⊆ B, B ⊆ C: whatever the random start, chase repair must land on a
  // satisfying instance (the feeds are monotone).
  Signature sig;
  ASSERT_TRUE(sig.AddRelation("A", 1).ok());
  ASSERT_TRUE(sig.AddRelation("B", 1).ok());
  ASSERT_TRUE(sig.AddRelation("C", 1).ok());
  ConstraintSet cs{Constraint::Contain(Rel("A", 1), Rel("B", 1)),
                   Constraint::Contain(Rel("B", 1), Rel("C", 1))};
  std::mt19937_64 rng(9);
  for (int i = 0; i < 10; ++i) {
    Instance repaired = RepairTowards(RandomInstance(sig, &rng), cs);
    EXPECT_TRUE(SatisfiesAll(repaired, cs).value());
  }
}

TEST(InstanceTest, MergeRestrictActiveDomain) {
  Instance a, b;
  a.Set("R", {T({1})});
  b.Set("S", {T({2})});
  Instance merged = a.MergedWith(b);
  EXPECT_TRUE(merged.Has("R"));
  EXPECT_TRUE(merged.Has("S"));
  Signature sig;
  ASSERT_TRUE(sig.AddRelation("R", 1).ok());
  Instance restricted = merged.RestrictedTo(sig);
  EXPECT_TRUE(restricted.Has("R"));
  EXPECT_FALSE(restricted.Has("S"));
  EXPECT_EQ(merged.ActiveDomain().size(), 2u);
}

TEST(GeneratorTest, RandomInstanceRespectsSignature) {
  Signature sig;
  ASSERT_TRUE(sig.AddRelation("A", 2).ok());
  ASSERT_TRUE(sig.AddRelation("B", 3).ok());
  std::mt19937_64 rng(42);
  Instance inst = RandomInstance(sig, &rng);
  for (const Tuple& t : inst.Get("A")) EXPECT_EQ(t.size(), 2u);
  for (const Tuple& t : inst.Get("B")) EXPECT_EQ(t.size(), 3u);
}

TEST(GeneratorTest, RandomInstanceSatisfying) {
  Signature sig;
  ASSERT_TRUE(sig.AddRelation("A", 1).ok());
  ASSERT_TRUE(sig.AddRelation("B", 1).ok());
  ConstraintSet cs{Constraint::Contain(Rel("A", 1), Rel("B", 1))};
  std::mt19937_64 rng(7);
  Result<Instance> inst = RandomInstanceSatisfying(sig, cs, &rng, 200);
  ASSERT_TRUE(inst.ok());
  EXPECT_TRUE(SatisfiesAll(*inst, cs).value());
}

TEST(CheckerTest, FindExtensionWitness) {
  // base: A = {1}. Extra relation B (unary) must satisfy A ⊆ B.
  Instance base;
  base.Set("A", {T({1})});
  Signature extra;
  ASSERT_TRUE(extra.AddRelation("B", 1).ok());
  ConstraintSet cs{Constraint::Contain(Rel("A", 1), Rel("B", 1))};
  Result<Instance> witness = FindExtension(base, extra, cs);
  ASSERT_TRUE(witness.ok());
  EXPECT_TRUE(SatisfiesAll(*witness, cs).value());
  EXPECT_TRUE(witness->Get("B").count(T({1})) > 0);
}

TEST(CheckerTest, FindExtensionUnsatisfiable) {
  // B ⊆ ∅ and A ⊆ B with nonempty A: no extension exists.
  Instance base;
  base.Set("A", {T({1})});
  Signature extra;
  ASSERT_TRUE(extra.AddRelation("B", 1).ok());
  ConstraintSet cs{Constraint::Contain(Rel("A", 1), Rel("B", 1)),
                   Constraint::Contain(Rel("B", 1), EmptyRel(1))};
  Result<Instance> witness = FindExtension(base, extra, cs);
  ASSERT_FALSE(witness.ok());
  EXPECT_EQ(witness.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace mapcomp
