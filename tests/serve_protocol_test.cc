// Wire-protocol pinning tests: canonical byte round trips for
// ServeRequest/ServeReply (serialize→parse→serialize is byte-identical),
// the pinned WireStatus numeric values and total StatusCode mapping,
// FrameDecoder behavior under fragmentation and hostile input, and
// hostile-body parsing (every violation a clean kInvalidArgument, never an
// out-of-bounds read — the ASan CI job executes this file).

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "src/serve/protocol.h"
#include "src/serve/serve_types.h"
#include "src/serve/wire_status.h"
#include "src/simulator/scenarios.h"
#include "src/testdata/literature_suite.h"
#include "src/parser/parser.h"

namespace mapcomp {
namespace serve {
namespace {

// ---------------------------------------------------------------------------
// WireStatus: the numeric values ARE the protocol.

TEST(WireStatusTest, NumericValuesArePinned) {
  // Renumbering any of these is a wire break; only appending is legal.
  EXPECT_EQ(static_cast<uint8_t>(WireStatus::kOk), 0);
  EXPECT_EQ(static_cast<uint8_t>(WireStatus::kInvalidArgument), 1);
  EXPECT_EQ(static_cast<uint8_t>(WireStatus::kNotFound), 2);
  EXPECT_EQ(static_cast<uint8_t>(WireStatus::kUnsupported), 3);
  EXPECT_EQ(static_cast<uint8_t>(WireStatus::kFailedPrecondition), 4);
  EXPECT_EQ(static_cast<uint8_t>(WireStatus::kOverloaded), 5);
  EXPECT_EQ(static_cast<uint8_t>(WireStatus::kTimeout), 6);
  EXPECT_EQ(static_cast<uint8_t>(WireStatus::kInternal), 7);
  EXPECT_EQ(static_cast<uint8_t>(WireStatus::kResourceExhausted), 8);
  EXPECT_EQ(static_cast<uint8_t>(WireStatus::kCancelled), 9);
}

TEST(WireStatusTest, MappingFromStatusCodeIsTotalAndPinned) {
  EXPECT_EQ(WireStatusFrom(StatusCode::kOk), WireStatus::kOk);
  EXPECT_EQ(WireStatusFrom(StatusCode::kInvalidArgument),
            WireStatus::kInvalidArgument);
  EXPECT_EQ(WireStatusFrom(StatusCode::kNotFound), WireStatus::kNotFound);
  EXPECT_EQ(WireStatusFrom(StatusCode::kUnsupported),
            WireStatus::kUnsupported);
  EXPECT_EQ(WireStatusFrom(StatusCode::kFailedPrecondition),
            WireStatus::kFailedPrecondition);
  EXPECT_EQ(WireStatusFrom(StatusCode::kResourceExhausted),
            WireStatus::kResourceExhausted);
  EXPECT_EQ(WireStatusFrom(StatusCode::kInternal), WireStatus::kInternal);
  EXPECT_EQ(WireStatusFrom(StatusCode::kOverloaded), WireStatus::kOverloaded);
  EXPECT_EQ(WireStatusFrom(StatusCode::kDeadlineExceeded),
            WireStatus::kTimeout);
  EXPECT_EQ(WireStatusFrom(StatusCode::kCancelled), WireStatus::kCancelled);
}

TEST(WireStatusTest, InverseIsIdentityForEveryCode) {
  // Since the append of kResourceExhausted/kCancelled nothing collapses
  // any more: a client reconstructs exactly the StatusCode the server
  // classified (kTimeout ↔ kDeadlineExceeded is a renaming, not a merge),
  // which is what makes a retry-on-kOverloaded-only policy possible.
  for (uint8_t raw = 0; raw <= 9; ++raw) {
    ASSERT_TRUE(IsValidWireStatus(raw));
    WireStatus ws = static_cast<WireStatus>(raw);
    EXPECT_EQ(WireStatusFrom(StatusCodeFrom(ws)), ws);
  }
  EXPECT_FALSE(IsValidWireStatus(10));
  EXPECT_FALSE(IsValidWireStatus(255));
}

TEST(WireStatusTest, EveryValueHasAName) {
  for (uint8_t raw = 0; raw <= 9; ++raw) {
    EXPECT_STRNE(WireStatusName(static_cast<WireStatus>(raw)), "");
  }
}

// ---------------------------------------------------------------------------
// Canonical round trips.

std::vector<ServeRequest> SampleRequests() {
  std::vector<ServeRequest> out;
  out.push_back(ServeRequest::Of(sim::BuildFanoutProblem(3), 1));
  out.push_back(
      ServeRequest::Of(sim::BuildFanoutProblem(6, /*chain_overlap=*/true),
                       0xFFFFFFFFFFFFFFFFull));

  ComposeOptions opts;
  opts.simplify_output = false;
  opts.eliminate.max_blowup_factor = 7;
  out.push_back(
      ServeRequest::WithOptions(sim::BuildFanoutProblem(4), opts, 42));

  // An elimination order plus non-default rounds.
  CompositionProblem ordered = sim::BuildFanoutProblem(3);
  ordered.elimination_order = {"S3", "S1", "S2"};
  ComposeOptions opts2;
  opts2.max_rounds = 5;
  opts2.eliminate.enable_unfold = false;
  out.push_back(ServeRequest::WithOptions(std::move(ordered), opts2, 7));

  // Options carrying a keys signature by content.
  ComposeOptions keyed;
  Signature keys;
  keys.AddOrReplaceRelation("S1", 2);
  keys.SetKey("S1", {0});
  auto owned = std::make_shared<Signature>(std::move(keys));
  keyed.eliminate.keys = owned.get();
  ServeRequest with_keys =
      ServeRequest::WithOptions(sim::BuildFanoutProblem(3), keyed, 9);
  with_keys.owned_keys = owned;  // keep the borrowed pointer alive
  out.push_back(std::move(with_keys));

  // An end-to-end deadline rides along as the optional trailing field.
  ServeRequest bounded = ServeRequest::Of(sim::BuildFanoutProblem(3), 11);
  bounded.deadline_ms = 250;
  out.push_back(std::move(bounded));

  // The literature suite exercises real constraint shapes.
  Parser parser;
  for (const testdata::LiteratureProblem& prob :
       testdata::LiteratureSuite()) {
    Result<CompositionProblem> parsed = parser.ParseProblem(prob.text);
    if (parsed.ok()) {
      out.push_back(ServeRequest::Of(std::move(*parsed), out.size()));
    }
  }
  return out;
}

TEST(ServeRequestRoundTripTest, SerializeParseSerializeIsByteIdentical) {
  for (const ServeRequest& req : SampleRequests()) {
    std::string bytes;
    ASSERT_TRUE(req.SerializeTo(&bytes).ok()) << req.problem.name;

    Result<ServeRequest> parsed = ServeRequest::Parse(
        reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

    std::string again;
    ASSERT_TRUE(parsed->SerializeTo(&again).ok());
    // Canonical: the parsed value re-serializes to the same bytes, so a
    // proxy or cache may treat the body as the value's identity.
    EXPECT_EQ(bytes, again) << req.problem.name;

    EXPECT_EQ(parsed->request_id, req.request_id);
    EXPECT_EQ(parsed->has_options, req.has_options);
    EXPECT_EQ(parsed->deadline_ms, req.deadline_ms);
    EXPECT_EQ(parsed->problem.Fingerprint(), req.problem.Fingerprint());
  }
}

TEST(ServeRequestRoundTripTest, DeadlineFieldIsOptionalAndCanonical) {
  // A deadline-less request serializes to the exact v1 byte image: the
  // trailing field is simply absent, so old golden frames and old servers
  // keep working.
  ServeRequest plain = ServeRequest::Of(sim::BuildFanoutProblem(3), 5);
  std::string v1_bytes;
  ASSERT_TRUE(plain.SerializeTo(&v1_bytes).ok());

  ServeRequest bounded = plain;
  bounded.deadline_ms = 100;
  std::string v2_bytes;
  ASSERT_TRUE(bounded.SerializeTo(&v2_bytes).ok());
  ASSERT_EQ(v2_bytes.size(), v1_bytes.size() + 4);
  EXPECT_EQ(v2_bytes.compare(0, v1_bytes.size(), v1_bytes), 0);

  Result<ServeRequest> parsed = ServeRequest::Parse(
      reinterpret_cast<const uint8_t*>(v2_bytes.data()), v2_bytes.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->deadline_ms, 100u);

  // Zero must travel as absence: a present-but-zero trailing field would
  // give one value two byte images, so it is rejected as hostile input.
  std::string zero_bytes = v1_bytes + std::string(4, '\0');
  EXPECT_FALSE(ServeRequest::Parse(
                   reinterpret_cast<const uint8_t*>(zero_bytes.data()),
                   zero_bytes.size())
                   .ok());
}

TEST(ServeRequestRoundTripTest, NonDefaultRegistryIsRejectedNotShipped) {
  op::Registry registry = op::Registry::Empty();
  ComposeOptions opts;
  opts.eliminate.registry = &registry;
  ServeRequest req =
      ServeRequest::WithOptions(sim::BuildFanoutProblem(3), opts);
  std::string bytes;
  Status s = req.SerializeTo(&bytes);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnsupported);
}

TEST(ServeReplyRoundTripTest, OkAndErrorRepliesRoundTripByteIdentically) {
  runtime::ServedResult res;
  res.sigma.AddOrReplaceRelation("R", 2);
  res.residual_sigma2 = {"S2"};
  res.warnings = {"w1", "w2"};
  res.eliminated_count = 3;
  res.total_count = 4;
  res.fingerprint = "fp-bytes\x01\x02";

  std::vector<ServeReply> samples;
  samples.push_back(ServeReply::OkReply(11, res, /*hit=*/true));
  samples.push_back(ServeReply::OkReply(12, runtime::ServedResult{},
                                        /*hit=*/false));
  samples.push_back(
      ServeReply::ErrorReply(13, WireStatus::kOverloaded, "queue full"));
  samples.push_back(ServeReply::ErrorReply(0, WireStatus::kInvalidArgument,
                                           "bad frame"));

  for (const ServeReply& reply : samples) {
    std::string bytes;
    reply.SerializeTo(&bytes);
    Result<ServeReply> parsed = ServeReply::Parse(
        reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    std::string again;
    parsed->SerializeTo(&again);
    EXPECT_EQ(bytes, again);
    EXPECT_EQ(parsed->request_id, reply.request_id);
    EXPECT_EQ(parsed->status, reply.status);
    EXPECT_EQ(parsed->message, reply.message);
    EXPECT_EQ(parsed->cache_hit, reply.cache_hit);
  }
}

TEST(ServeReplyRoundTripTest, ComposedResultSurvivesTheWire) {
  CompositionProblem problem = sim::BuildFanoutProblem(4);
  runtime::ServedResult res =
      runtime::ServedResult::FromResult(Compose(problem, ComposeOptions()));
  ServeReply reply = ServeReply::OkReply(5, res, false);

  std::string bytes;
  reply.SerializeTo(&bytes);
  Result<ServeReply> parsed = ServeReply::Parse(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  ASSERT_TRUE(parsed.ok());
  // The fingerprint is the cross-process equality witness.
  EXPECT_EQ(parsed->result.Fingerprint(), res.Fingerprint());
  EXPECT_EQ(parsed->result.eliminated_count, res.eliminated_count);
  EXPECT_EQ(ConstraintSetToString(parsed->result.constraints),
            ConstraintSetToString(res.constraints));
}

// ---------------------------------------------------------------------------
// Hostile bodies: clean errors, no OOB (ASan-gated).

TEST(HostileBodyTest, TruncationsOfAValidBodyNeverCrash) {
  ServeRequest req = ServeRequest::Of(sim::BuildFanoutProblem(4), 99);
  std::string bytes;
  ASSERT_TRUE(req.SerializeTo(&bytes).ok());
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Result<ServeRequest> parsed = ServeRequest::Parse(
        reinterpret_cast<const uint8_t*>(bytes.data()), cut);
    // Every strict prefix must fail (the full body must parse): trailing
    // data is part of the canonical encoding, not optional padding.
    EXPECT_FALSE(parsed.ok()) << "prefix length " << cut;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(HostileBodyTest, BitFlippedBodiesFailCleanly) {
  ServeRequest req = ServeRequest::Of(sim::BuildFanoutProblem(3), 5);
  std::string bytes;
  ASSERT_TRUE(req.SerializeTo(&bytes).ok());
  std::mt19937 rng(20260808);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = bytes;
    size_t pos = rng() % mutated.size();
    mutated[pos] = static_cast<char>(static_cast<uint8_t>(mutated[pos]) ^
                                     (1u << (rng() % 8)));
    Result<ServeRequest> parsed = ServeRequest::Parse(
        reinterpret_cast<const uint8_t*>(mutated.data()), mutated.size());
    if (parsed.ok()) {
      // A flip in a free byte (e.g. the request_id) can still parse —
      // but then it must re-serialize canonically.
      std::string again;
      ASSERT_TRUE(parsed->SerializeTo(&again).ok());
      EXPECT_EQ(again, mutated);
    } else {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(HostileBodyTest, RandomGarbageFailsCleanly) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    std::string garbage(rng() % 256, '\0');
    for (char& c : garbage) c = static_cast<char>(rng() & 0xff);
    Result<ServeRequest> req = ServeRequest::Parse(
        reinterpret_cast<const uint8_t*>(garbage.data()), garbage.size());
    if (!req.ok()) {
      EXPECT_EQ(req.status().code(), StatusCode::kInvalidArgument);
    }
    Result<ServeReply> rep = ServeReply::Parse(
        reinterpret_cast<const uint8_t*>(garbage.data()), garbage.size());
    if (!rep.ok()) {
      EXPECT_EQ(rep.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(HostileBodyTest, LengthClaimsCannotForceAllocations) {
  // A tiny body claiming a huge string/list count must fail before any
  // proportional allocation (the WireReader's remaining-bytes guard).
  std::string evil;
  for (int i = 0; i < 8; ++i) evil.push_back('\0');  // request_id
  evil.push_back('\0');                              // has_options = false
  evil += std::string(4, '\xff');                    // name len = 0xffffffff
  Result<ServeRequest> parsed = ServeRequest::Parse(
      reinterpret_cast<const uint8_t*>(evil.data()), evil.size());
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// FrameDecoder.

TEST(FrameDecoderTest, ByteByByteFeedYieldsTheSameFrames) {
  std::string stream;
  EncodeFrame(FrameType::kRequest, "alpha", &stream);
  EncodeFrame(FrameType::kReply, "", &stream);
  EncodeFrame(FrameType::kRequest, std::string(1000, 'x'), &stream);

  FrameDecoder decoder;
  std::vector<std::pair<FrameType, std::string>> frames;
  FrameType type;
  std::string body;
  for (char c : stream) {
    decoder.Feed(reinterpret_cast<const uint8_t*>(&c), 1);
    while (decoder.Poll(&type, &body) == FrameDecoder::Next::kFrame) {
      frames.emplace_back(type, body);
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].first, FrameType::kRequest);
  EXPECT_EQ(frames[0].second, "alpha");
  EXPECT_EQ(frames[1].first, FrameType::kReply);
  EXPECT_EQ(frames[1].second, "");
  EXPECT_EQ(frames[2].second, std::string(1000, 'x'));
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameDecoderTest, TruncatedFrameIsNeedMoreNotError) {
  std::string stream;
  EncodeFrame(FrameType::kRequest, "body-bytes", &stream);
  FrameDecoder decoder;
  decoder.Feed(stream.substr(0, stream.size() - 1));
  FrameType type;
  std::string body;
  EXPECT_EQ(decoder.Poll(&type, &body), FrameDecoder::Next::kNeedMore);
  decoder.Feed(stream.substr(stream.size() - 1));
  EXPECT_EQ(decoder.Poll(&type, &body), FrameDecoder::Next::kFrame);
  EXPECT_EQ(body, "body-bytes");
}

TEST(FrameDecoderTest, OversizedLengthClaimErrorsBeforeBuffering) {
  FrameDecoder decoder(/*max_frame_bytes=*/1024);
  // Claim 1 GiB with only 4 header bytes on the wire.
  std::string claim;
  uint32_t huge = 1u << 30;
  for (int i = 0; i < 4; ++i) {
    claim.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  }
  decoder.Feed(claim);
  FrameType type;
  std::string body;
  EXPECT_EQ(decoder.Poll(&type, &body), FrameDecoder::Next::kError);
  EXPECT_TRUE(decoder.errored());
  EXPECT_NE(decoder.error().find("max_frame_bytes"), std::string::npos);
}

TEST(FrameDecoderTest, BadMagicAndVersionLatchTheErrorState) {
  {
    FrameDecoder decoder;
    std::string frame;
    EncodeFrame(FrameType::kRequest, "x", &frame);
    frame[4] = 'Z';  // corrupt magic0
    decoder.Feed(frame);
    FrameType type;
    std::string body;
    EXPECT_EQ(decoder.Poll(&type, &body), FrameDecoder::Next::kError);
    // Latched: even after feeding a pristine frame the decoder refuses —
    // a desynced stream cannot be re-trusted.
    std::string good;
    EncodeFrame(FrameType::kRequest, "y", &good);
    decoder.Feed(good);
    EXPECT_EQ(decoder.Poll(&type, &body), FrameDecoder::Next::kError);
  }
  {
    FrameDecoder decoder;
    std::string frame;
    EncodeFrame(FrameType::kRequest, "x", &frame);
    frame[6] = 9;  // unsupported version
    decoder.Feed(frame);
    FrameType type;
    std::string body;
    EXPECT_EQ(decoder.Poll(&type, &body), FrameDecoder::Next::kError);
  }
  {
    FrameDecoder decoder;
    std::string frame;
    EncodeFrame(FrameType::kRequest, "x", &frame);
    frame[7] = 0x7f;  // unknown frame type
    decoder.Feed(frame);
    FrameType type;
    std::string body;
    EXPECT_EQ(decoder.Poll(&type, &body), FrameDecoder::Next::kError);
  }
  {
    FrameDecoder decoder;
    // payload_len < header size: a frame cannot be shorter than its own
    // magic+version+type.
    std::string runt = std::string("\x02\x00\x00\x00", 4) + "MC";
    decoder.Feed(runt);
    FrameType type;
    std::string body;
    EXPECT_EQ(decoder.Poll(&type, &body), FrameDecoder::Next::kError);
  }
}

TEST(FrameDecoderTest, RandomGarbageStreamsNeverCrash) {
  std::mt19937 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    FrameDecoder decoder(/*max_frame_bytes=*/4096);
    size_t len = rng() % 512;
    std::string garbage(len, '\0');
    for (char& c : garbage) c = static_cast<char>(rng() & 0xff);
    decoder.Feed(garbage);
    FrameType type;
    std::string body;
    // Drain until the decoder settles; it must terminate (consume or
    // error), never loop or read out of bounds.
    for (int polls = 0; polls < 1000; ++polls) {
      FrameDecoder::Next next = decoder.Poll(&type, &body);
      if (next != FrameDecoder::Next::kFrame) break;
    }
  }
}

}  // namespace
}  // namespace serve
}  // namespace mapcomp
