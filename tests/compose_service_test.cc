// Tests for the long-lived ComposeService: fingerprint-keyed result cache
// (hits, misses, eviction, in-flight dedup), async handles, stats
// aggregation, and a concurrent multi-client stress run (executed under
// ThreadSanitizer in CI).

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/parser/parser.h"
#include "src/runtime/compose_service.h"
#include "src/simulator/scenarios.h"
#include "src/testdata/literature_suite.h"

namespace mapcomp {
namespace runtime {
namespace {

std::vector<CompositionProblem> ParsedLiteratureSuite() {
  Parser parser;
  std::vector<CompositionProblem> problems;
  for (const testdata::LiteratureProblem& prob :
       testdata::LiteratureSuite()) {
    Result<CompositionProblem> parsed = parser.ParseProblem(prob.text);
    EXPECT_TRUE(parsed.ok()) << prob.name;
    if (parsed.ok()) problems.push_back(std::move(*parsed));
  }
  return problems;
}

TEST(ProblemFingerprintTest, IdentifiesTheProblemNotItsName) {
  CompositionProblem a = sim::BuildFanoutProblem(3);
  CompositionProblem b = sim::BuildFanoutProblem(3);
  b.name = "same-problem-different-label";
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());

  CompositionProblem c = sim::BuildFanoutProblem(4);
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());

  CompositionProblem d = sim::BuildFanoutProblem(3);
  d.elimination_order = {"S3", "S2", "S1"};
  EXPECT_NE(a.Fingerprint(), d.Fingerprint());
}

TEST(ComposeServiceTest, SecondSubmitIsACacheHit) {
  ComposeService service;
  ComposeService::Handle h1 = service.Submit(sim::BuildFanoutProblem(4));
  const ServedResult& first = *h1.Wait();
  EXPECT_FALSE(h1.cache_hit());

  ComposeService::Handle h2 = service.Submit(sim::BuildFanoutProblem(4));
  EXPECT_TRUE(h2.cache_hit());
  // Same object, not an equal recomputation.
  EXPECT_EQ(&*h2.Wait(), &first);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.in_flight, 0);
  EXPECT_EQ(stats.cache_entries, 1u);
}

TEST(ComposeServiceTest, ConcurrentSubmitsOfOneProblemShareComputation) {
  ComposeService service;
  std::vector<ComposeService::Handle> handles;
  for (int i = 0; i < 16; ++i) {
    handles.push_back(service.Submit(sim::BuildFanoutProblem(6)));
  }
  const ServedResult* result = &*handles[0].Wait();
  for (ComposeService::Handle& h : handles) {
    EXPECT_EQ(&*h.Wait(), result);
  }
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.misses, 1u);  // one computation, 15 joins
  EXPECT_EQ(stats.hits, 15u);
}

TEST(ComposeServiceTest, LruEvictionDropsOldestAndRecounts) {
  ComposeServiceOptions options;
  options.cache_capacity = 2;
  ComposeService service(options);

  service.Submit(sim::BuildFanoutProblem(2)).Wait();
  service.Submit(sim::BuildFanoutProblem(3)).Wait();
  // Touch problem 2 so problem 3 is the LRU victim.
  EXPECT_TRUE(service.Submit(sim::BuildFanoutProblem(2)).cache_hit());
  service.Submit(sim::BuildFanoutProblem(4)).Wait();  // evicts problem 3

  EXPECT_EQ(service.Stats().evictions, 1u);
  EXPECT_TRUE(service.Submit(sim::BuildFanoutProblem(2)).cache_hit());
  EXPECT_TRUE(service.Submit(sim::BuildFanoutProblem(4)).cache_hit());
  // Hold the miss handle until it completes: dropping it mid-flight would
  // now count as abandonment and cancel the recomputation.
  ComposeService::Handle recomputed =
      service.Submit(sim::BuildFanoutProblem(3));
  EXPECT_FALSE(recomputed.cache_hit());
  recomputed.Wait();
  EXPECT_EQ(service.Stats().cache_entries, 2u);
}

TEST(ComposeServiceTest, ZeroCapacityDisablesCaching) {
  ComposeServiceOptions options;
  options.cache_capacity = 0;
  ComposeService service(options);
  service.Submit(sim::BuildFanoutProblem(3)).Wait();
  service.Submit(sim::BuildFanoutProblem(3)).Wait();
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(ComposeOptionsFingerprintTest, SeparatesResultChangingKnobs) {
  ComposeOptions a;
  ComposeOptions b;
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  // elim_jobs never changes results, so it must not split the cache.
  b.elim_jobs = 8;
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  b.simplify_output = false;
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  ComposeOptions c;
  c.max_rounds = 1;
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
  ComposeOptions d;
  d.order = {"S2", "S1"};
  EXPECT_NE(a.Fingerprint(), d.Fingerprint());
  ComposeOptions e;
  e.eliminate.enable_right_compose = false;
  EXPECT_NE(a.Fingerprint(), e.Fingerprint());
  // Preset key signatures are serialized by content, so two different key
  // sets never collide on one cache key.
  Signature k1, k2;
  ASSERT_TRUE(k1.AddRelation("R", 2).ok());
  ASSERT_TRUE(k1.SetKey("R", {1}).ok());
  ASSERT_TRUE(k2.AddRelation("R", 2).ok());
  ASSERT_TRUE(k2.SetKey("R", {2}).ok());
  ComposeOptions f, g;
  f.eliminate.keys = &k1;
  g.eliminate.keys = &k2;
  EXPECT_NE(f.Fingerprint(), a.Fingerprint());
  EXPECT_NE(f.Fingerprint(), g.Fingerprint());
  // A non-default registry is distinguished by identity.
  op::Registry custom = op::Registry::Empty();
  ComposeOptions h;
  h.eliminate.registry = &custom;
  EXPECT_NE(h.Fingerprint(), a.Fingerprint());
}

TEST(ComposeServiceTest, MixedOptionsTrafficNeverServesStaleVariants) {
  // One service, one problem, two option sets that produce different
  // results: each variant must be computed and cached separately, and
  // resubmitting a variant must hit its own entry.
  ComposeService service;
  CompositionProblem problem = sim::BuildFanoutProblem(4);
  ComposeOptions simplified;  // the default
  ComposeOptions raw;  // every ELIMINATE step disabled: nothing eliminates
  raw.eliminate.enable_unfold = false;
  raw.eliminate.enable_left_compose = false;
  raw.eliminate.enable_right_compose = false;

  ComposeService::Handle h1 = service.Submit(problem, simplified);
  ComposeService::Handle h2 = service.Submit(problem, raw);
  EXPECT_FALSE(h1.cache_hit());
  EXPECT_FALSE(h2.cache_hit());  // different options ⇒ its own computation
  EXPECT_EQ(h1.Wait()->Fingerprint(),
            Compose(problem, simplified).Fingerprint());
  EXPECT_EQ(h2.Wait()->Fingerprint(), Compose(problem, raw).Fingerprint());
  EXPECT_NE(h1.Wait()->Fingerprint(), h2.Wait()->Fingerprint());

  ComposeService::Handle h3 = service.Submit(problem, simplified);
  ComposeService::Handle h4 = service.Submit(problem, raw);
  EXPECT_TRUE(h3.cache_hit());
  EXPECT_TRUE(h4.cache_hit());
  EXPECT_EQ(&*h3.Wait(), &*h1.Wait());
  EXPECT_EQ(&*h4.Wait(), &*h2.Wait());

  // The plain Submit uses the service default options and shares their
  // cache entry.
  ComposeService::Handle h5 = service.Submit(problem);
  EXPECT_TRUE(h5.cache_hit());

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 3u);
}

TEST(ComposeServiceTest, ResultsMatchDirectComposition) {
  ComposeServiceOptions options;
  options.compose.elim_jobs = 4;
  ComposeService service(options);
  for (const CompositionProblem& p : ParsedLiteratureSuite()) {
    CompositionResult direct = Compose(p, options.compose);
    EXPECT_EQ(service.Submit(p).Wait()->Fingerprint(), direct.Fingerprint())
        << p.name;
  }
}

TEST(ComposeServiceTest, AggregatesSchedulerWaveStats) {
  ComposeServiceOptions options;
  options.compose.elim_jobs = 4;
  ComposeService service(options);
  service.Submit(sim::BuildFanoutProblem(8)).Wait();
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.max_wave_width, 8);
  EXPECT_GE(stats.waves_executed, 1u);
  EXPECT_NE(stats.ToString().find("max width 8"), std::string::npos);
}

TEST(ComposeServiceTest, ConcurrentClientsMixedHitsAndMisses) {
  // >= 8 client threads hammering one service with overlapping problem
  // sets: every result must equal the single-threaded baseline, and the
  // counters must balance. Run under TSan in CI.
  std::vector<CompositionProblem> problems = ParsedLiteratureSuite();
  problems.push_back(sim::BuildFanoutProblem(8));
  problems.push_back(sim::BuildFanoutProblem(8, /*chain_overlap=*/true));

  ComposeServiceOptions options;
  options.compose.elim_jobs = 2;
  options.cache_capacity = 1024;  // no eviction: misses == distinct problems
  ComposeService service(options);

  std::vector<std::string> baselines;
  baselines.reserve(problems.size());
  for (const CompositionProblem& p : problems) {
    baselines.push_back(Compose(p, options.compose).Fingerprint());
  }

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 3;
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      // Stagger starting offsets so threads race on different keys.
      for (int rep = 0; rep < kRequestsPerClient; ++rep) {
        for (size_t i = 0; i < problems.size(); ++i) {
          size_t slot = (i + static_cast<size_t>(t) * 3) % problems.size();
          const ServedResult& res =
              *service.Submit(problems[slot]).Wait();
          if (res.Fingerprint() != baselines[slot]) {
            errors[t] = "fingerprint mismatch on problem " +
                        std::to_string(slot);
            return;
          }
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  for (const std::string& e : errors) EXPECT_EQ(e, "");

  ServiceStats stats = service.Stats();
  uint64_t total = static_cast<uint64_t>(kClients) * kRequestsPerClient *
                   problems.size();
  EXPECT_EQ(stats.hits + stats.misses, total);
  EXPECT_EQ(stats.misses, problems.size());  // dedup + no eviction
  EXPECT_EQ(stats.in_flight, 0);
  EXPECT_EQ(stats.completed, stats.misses);
}

TEST(ServedResultTest, SlimEntryKeepsAnswerAndPrecomputedFingerprint) {
  CompositionProblem problem = sim::BuildFanoutProblem(4);
  ComposeOptions options;
  CompositionResult full = Compose(problem, options);
  ServedResult slim = ServedResult::FromResult(full);

  // The answer survives slimming …
  EXPECT_EQ(slim.constraints.size(), full.constraints.size());
  EXPECT_EQ(slim.residual_sigma2, full.residual_sigma2);
  EXPECT_EQ(slim.eliminated_count, full.eliminated_count);
  EXPECT_EQ(slim.total_count, full.total_count);
  // … and so does the full fingerprint, byte for byte, even though the
  // stats/rounds it covers were dropped from the entry.
  EXPECT_EQ(slim.Fingerprint(), full.Fingerprint());
  EXPECT_NE(slim.Report().find("(served)"), std::string::npos);
  EXPECT_GT(slim.ApproxBytes(), sizeof(ServedResult));
}

TEST(ComposeServiceTest, CacheBytesWatermarkTracksCompletedEntries) {
  ComposeService service;
  EXPECT_EQ(service.Stats().cache_bytes, 0u);

  service.Submit(sim::BuildFanoutProblem(3)).Wait();
  uint64_t after_one = service.Stats().cache_bytes;
  EXPECT_GT(after_one, 0u);

  service.Submit(sim::BuildFanoutProblem(5)).Wait();
  ServiceStats stats = service.Stats();
  EXPECT_GT(stats.cache_bytes, after_one);
  EXPECT_EQ(stats.cache_bytes_peak, stats.cache_bytes);
  EXPECT_NE(stats.ToString().find("bytes"), std::string::npos);

  // A cache hit adds no bytes.
  EXPECT_TRUE(service.Submit(sim::BuildFanoutProblem(3)).cache_hit());
  EXPECT_EQ(service.Stats().cache_bytes, stats.cache_bytes);
}

TEST(ComposeServiceTest, EntryEvictionReleasesItsBytes) {
  ComposeServiceOptions options;
  options.cache_capacity = 1;
  ComposeService service(options);
  service.Submit(sim::BuildFanoutProblem(3)).Wait();
  uint64_t with_three = service.Stats().cache_bytes;
  service.Submit(sim::BuildFanoutProblem(5)).Wait();  // evicts problem 3
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.cache_entries, 1u);
  // Only problem 5's bytes remain booked; the peak saw at most both.
  EXPECT_NE(stats.cache_bytes, 0u);
  EXPECT_GE(stats.cache_bytes_peak, stats.cache_bytes);
  EXPECT_GE(stats.cache_bytes_peak, with_three);
}

TEST(ComposeServiceTest, ByteCapacityEvictsUntilTheSumFits) {
  // Measure two entries unbounded, then bound the service to fit one but
  // not both: completing the second must evict the first (LRU).
  uint64_t bytes3 = 0, bytes5 = 0;
  {
    ComposeService probe;
    probe.Submit(sim::BuildFanoutProblem(3)).Wait();
    bytes3 = probe.Stats().cache_bytes;
    probe.Submit(sim::BuildFanoutProblem(5)).Wait();
    bytes5 = probe.Stats().cache_bytes - bytes3;
  }
  ASSERT_GT(bytes3, 0u);
  ASSERT_GT(bytes5, 0u);

  ComposeServiceOptions options;
  options.cache_bytes_capacity =
      static_cast<size_t>(bytes3 + bytes5 - 1);  // one fits, two don't
  ComposeService service(options);
  service.Submit(sim::BuildFanoutProblem(3)).Wait();
  service.Submit(sim::BuildFanoutProblem(5)).Wait();
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.cache_entries, 1u);
  EXPECT_LE(stats.cache_bytes, options.cache_bytes_capacity);
  // Check the survivor first: resubmitting the evicted problem starts a
  // new computation whose completion may evict the survivor again.
  EXPECT_TRUE(service.Submit(sim::BuildFanoutProblem(5)).cache_hit());
  EXPECT_FALSE(service.Submit(sim::BuildFanoutProblem(3)).cache_hit());
}

TEST(ServiceStatsTest, ToStringCoversChainPrefixCounters) {
  ComposeService service;
  service.RecordChainPrefixes(/*hits=*/3, /*misses=*/1);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.chain_prefix_hits, 3u);
  EXPECT_EQ(stats.chain_prefix_misses, 1u);
  EXPECT_DOUBLE_EQ(stats.ChainPrefixHitRate(), 0.75);
  EXPECT_NE(stats.ToString().find("3 prefix hits"), std::string::npos);
}

TEST(ComposeServiceTest, DestructorWaitsForInFlightWork) {
  // Submit without waiting, then destroy: the service must block until
  // the pool task finished (TSan would flag a use-after-free otherwise).
  ComposeService::Handle handle;
  {
    ComposeService service;
    handle = service.Submit(sim::BuildFanoutProblem(6));
  }
  EXPECT_TRUE(handle.Ready());
  EXPECT_EQ(handle.Wait()->eliminated_count, 6);
}

TEST(ComposeServiceTest, ServeRequestEntryPointAndAdmissionProbe) {
  ComposeService service;
  serve::ServeRequest req =
      serve::ServeRequest::Of(sim::BuildFanoutProblem(4), /*id=*/77);

  // Absent: the probe never computes.
  EXPECT_EQ(service.TryServeCached(req), nullptr);

  ComposeService::Handle h = service.Submit(req);
  const ServedOutcome& outcome = h.Wait();
  ASSERT_TRUE(outcome.ok());

  // Present and completed: the probe serves the very same object.
  ComposeService::ResultPtr cached = service.TryServeCached(req);
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(cached.get(), outcome.shared().get());

  // The request_id names the conversation, not the computation: a new id
  // for the same problem is still a cache hit.
  serve::ServeRequest req2 =
      serve::ServeRequest::Of(sim::BuildFanoutProblem(4), /*id=*/78);
  EXPECT_TRUE(service.Submit(req2).cache_hit());

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.hits, 2u);  // probe hit + resubmit hit
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ComposeServiceTest, RequestCarriedOptionsKeyTheCacheLikeTheShim) {
  ComposeService service;
  ComposeOptions raw;
  raw.simplify_output = false;

  CompositionProblem problem = sim::BuildFanoutProblem(3);
  ComposeService::Handle shim = service.Submit(problem, raw);
  shim.Wait();

  // A wire-shaped request carrying the same options joins the same cache
  // slot — the two submission styles are one API.
  serve::ServeRequest req =
      serve::ServeRequest::WithOptions(sim::BuildFanoutProblem(3), raw);
  ComposeService::Handle wire = service.Submit(req);
  EXPECT_TRUE(wire.cache_hit());
  EXPECT_EQ(&*wire.Wait(), &*shim.Wait());

  // But the probe under default options misses: options are part of the
  // computation's identity.
  serve::ServeRequest plain =
      serve::ServeRequest::Of(sim::BuildFanoutProblem(3));
  EXPECT_EQ(service.TryServeCached(plain), nullptr);
}

}  // namespace
}  // namespace runtime
}  // namespace mapcomp
