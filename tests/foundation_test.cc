// Unit tests for the foundation types: Status/Result, Value ordering,
// Signature, Mapping validation.

#include <gtest/gtest.h>

#include "src/algebra/builders.h"
#include "src/algebra/value.h"
#include "src/common/status.h"
#include "src/constraints/mapping.h"
#include "src/constraints/signature.h"

namespace mapcomp {
namespace {

TEST(StatusTest, OkAndErrorStates) {
  EXPECT_TRUE(Status::OK().ok());
  Status err = Status::InvalidArgument("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.ToString(), "InvalidArgument: boom");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(StatusTest, CodeNames) {
  EXPECT_NE(Status::NotFound("x").ToString().find("NotFound"),
            std::string::npos);
  EXPECT_NE(Status::Unsupported("x").ToString().find("Unsupported"),
            std::string::npos);
  EXPECT_NE(Status::ResourceExhausted("x").ToString().find("Resource"),
            std::string::npos);
  EXPECT_NE(Status::FailedPrecondition("x").ToString().find("Precondition"),
            std::string::npos);
  EXPECT_NE(Status::Internal("x").ToString().find("Internal"),
            std::string::npos);
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value_or(7), 42);
  Result<int> err = Status::NotFound("nope");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(err.value_or(7), 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  MAPCOMP_ASSIGN_OR_RETURN(int h, Half(x));
  MAPCOMP_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(ValueTest, TotalOrder) {
  Value a = int64_t{1}, b = int64_t{2};
  Value s = std::string("a"), t = std::string("b");
  EXPECT_LT(CompareValues(a, b), 0);
  EXPECT_GT(CompareValues(b, a), 0);
  EXPECT_EQ(CompareValues(a, a), 0);
  EXPECT_LT(CompareValues(s, t), 0);
  // All integers precede all strings.
  EXPECT_LT(CompareValues(b, s), 0);
  EXPECT_GT(CompareValues(s, b), 0);
}

TEST(ValueTest, Printing) {
  EXPECT_EQ(ValueToString(Value(int64_t{5})), "5");
  EXPECT_EQ(ValueToString(Value(std::string("x"))), "'x'");
  EXPECT_EQ(TupleToString({Value(int64_t{1}), Value(std::string("a"))}),
            "(1,'a')");
}

TEST(ValueTest, HashConsistency) {
  EXPECT_EQ(HashValue(Value(int64_t{3})), HashValue(Value(int64_t{3})));
  EXPECT_EQ(HashTuple({Value(int64_t{3})}), HashTuple({Value(int64_t{3})}));
  EXPECT_NE(HashTuple({Value(int64_t{3})}),
            HashTuple({Value(int64_t{3}), Value(int64_t{3})}));
}

TEST(SignatureTest, AddAndLookup) {
  Signature sig;
  ASSERT_TRUE(sig.AddRelation("R", 2).ok());
  ASSERT_TRUE(sig.AddRelation("S", 3).ok());
  EXPECT_TRUE(sig.Contains("R"));
  EXPECT_FALSE(sig.Contains("T"));
  EXPECT_EQ(sig.ArityOf("S"), 3);
  EXPECT_EQ(sig.ArityOf("missing"), 0);
  EXPECT_EQ(sig.names(), (std::vector<std::string>{"R", "S"}));
  EXPECT_EQ(sig.size(), 2);
}

TEST(SignatureTest, RedeclarationRules) {
  Signature sig;
  ASSERT_TRUE(sig.AddRelation("R", 2).ok());
  EXPECT_TRUE(sig.AddRelation("R", 2).ok());    // same arity: idempotent
  EXPECT_FALSE(sig.AddRelation("R", 3).ok());   // different arity: error
  EXPECT_FALSE(sig.AddRelation("Z", 0).ok());   // bad arity
}

TEST(SignatureTest, Keys) {
  Signature sig;
  ASSERT_TRUE(sig.AddRelation("R", 3).ok());
  EXPECT_FALSE(sig.SetKey("missing", {1}).ok());
  EXPECT_FALSE(sig.SetKey("R", {4}).ok());  // out of range
  ASSERT_TRUE(sig.SetKey("R", {1, 2}).ok());
  ASSERT_TRUE(sig.KeyOf("R").has_value());
  EXPECT_EQ(*sig.KeyOf("R"), (std::vector<int>{1, 2}));
  EXPECT_FALSE(sig.KeyOf("missing").has_value());
}

TEST(SignatureTest, RemoveAndMerge) {
  Signature a, b;
  ASSERT_TRUE(a.AddRelation("R", 2).ok());
  ASSERT_TRUE(b.AddRelation("S", 2).ok());
  Signature merged = Signature::Merge(a, b).value();
  EXPECT_TRUE(merged.Contains("R"));
  EXPECT_TRUE(merged.Contains("S"));
  merged.RemoveRelation("R");
  EXPECT_FALSE(merged.Contains("R"));
  // Conflicting arities fail to merge.
  Signature c;
  ASSERT_TRUE(c.AddRelation("R", 3).ok());
  EXPECT_FALSE(Signature::Merge(a, c).ok());
}

TEST(SignatureTest, Disjointness) {
  Signature a, b, c;
  ASSERT_TRUE(a.AddRelation("R", 2).ok());
  ASSERT_TRUE(b.AddRelation("S", 2).ok());
  ASSERT_TRUE(c.AddRelation("R", 2).ok());
  EXPECT_TRUE(Signature::Disjoint(a, b));
  EXPECT_FALSE(Signature::Disjoint(a, c));
}

TEST(MappingTest, ValidationCatchesErrors) {
  Mapping m;
  ASSERT_TRUE(m.input.AddRelation("R", 2).ok());
  ASSERT_TRUE(m.output.AddRelation("S", 2).ok());
  m.constraints = {Constraint::Contain(Rel("R", 2), Rel("S", 2))};
  EXPECT_TRUE(m.Validate().ok());

  // Undeclared relation.
  m.constraints.push_back(Constraint::Contain(Rel("Z", 2), Rel("S", 2)));
  EXPECT_FALSE(m.Validate().ok());
  m.constraints.pop_back();

  // Arity mismatch against the declaration.
  m.constraints.push_back(Constraint::Contain(Rel("R", 2), Rel("S", 2)));
  m.constraints.push_back(
      Constraint::Contain(Project({1, 1, 2}, Rel("R", 2)),
                          Product(Rel("S", 2), Project({1}, Rel("R", 2)))));
  EXPECT_TRUE(m.Validate().ok());

  // Non-disjoint signatures.
  Mapping bad;
  ASSERT_TRUE(bad.input.AddRelation("R", 2).ok());
  ASSERT_TRUE(bad.output.AddRelation("R", 2).ok());
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(MappingTest, InverseSwapsRoles) {
  Mapping m;
  ASSERT_TRUE(m.input.AddRelation("R", 2).ok());
  ASSERT_TRUE(m.output.AddRelation("S", 2).ok());
  m.constraints = {Constraint::Contain(Rel("R", 2), Rel("S", 2))};
  Mapping inv = m.Inverse();
  EXPECT_TRUE(inv.input.Contains("S"));
  EXPECT_TRUE(inv.output.Contains("R"));
  EXPECT_EQ(inv.constraints.size(), 1u);
}

TEST(KeyConstraintsTest, ShapePerNonKeyAttribute) {
  // Arity 4 with key {1,2}: one constraint per non-key position.
  ConstraintSet cs = KeyConstraintsFor("R", 4, {1, 2});
  EXPECT_EQ(cs.size(), 2u);
  for (const Constraint& c : cs) {
    EXPECT_EQ(c.kind, ConstraintKind::kContainment);
    EXPECT_EQ(c.lhs->arity(), 2);
    // rhs is σ_{1=2}(D^2) per Example 2.
    EXPECT_EQ(c.rhs->kind(), ExprKind::kSelect);
    EXPECT_EQ(c.rhs->child(0)->kind(), ExprKind::kDomain);
  }
  // All positions keyed: nothing to say.
  EXPECT_TRUE(KeyConstraintsFor("R", 2, {1, 2}).empty());
}

}  // namespace
}  // namespace mapcomp
