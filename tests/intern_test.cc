// Property tests for the hash-consing Expr interner: pointer equality of
// interned nodes coincides with structural equality, the cached hash and
// analyses agree with fresh recursive recomputation, and the memoized
// rewrite passes agree with naive recursion — all over randomized trees
// (generator style shared with roundtrip_fuzz_test.cc).

#include <gtest/gtest.h>

#include <random>

#include "src/algebra/builders.h"
#include "src/algebra/print.h"
#include "src/algebra/simplify.h"
#include "src/algebra/substitute.h"
#include "src/op/registry.h"

namespace mapcomp {
namespace {

struct Gen {
  std::mt19937_64 rng;

  int Int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  }

  Condition RandomCondition(int arity, int depth) {
    if (depth == 0 || arity == 0) {
      switch (Int(0, 3)) {
        case 0:
          return Condition::True();
        case 1:
          return arity >= 2
                     ? Condition::AttrCmp(Int(1, arity),
                                          static_cast<CmpOp>(Int(0, 5)),
                                          Int(1, arity))
                     : Condition::AttrConst(1, CmpOp::kEq, int64_t{Int(0, 9)});
        case 2:
          return Condition::AttrConst(Int(1, arity),
                                      static_cast<CmpOp>(Int(0, 5)),
                                      Value(int64_t{Int(0, 9)}));
        default:
          return Condition::AttrConst(Int(1, arity), CmpOp::kNe,
                                      Value(std::string("str")));
      }
    }
    switch (Int(0, 2)) {
      case 0:
        return Condition::And(RandomCondition(arity, depth - 1),
                              RandomCondition(arity, depth - 1));
      case 1:
        return Condition::Or(RandomCondition(arity, depth - 1),
                             RandomCondition(arity, depth - 1));
      default:
        return Condition::Not(RandomCondition(arity, depth - 1));
    }
  }

  ExprPtr RandomExpr(int arity, int depth) {
    if (depth == 0) {
      switch (Int(0, 3)) {
        case 0:
          return Rel("R" + std::to_string(Int(0, 3)) + "_" +
                         std::to_string(arity),
                     arity);
        case 1:
          return Dom(arity);
        case 2:
          return EmptyRel(arity);
        default: {
          std::vector<Tuple> tuples;
          int n = Int(0, 2);
          for (int i = 0; i < n; ++i) {
            Tuple t;
            for (int j = 0; j < arity; ++j) {
              t.push_back(Int(0, 1) == 0
                              ? Value(int64_t{Int(0, 9)})
                              : Value(std::string("s" + std::to_string(j))));
            }
            tuples.push_back(std::move(t));
          }
          return Lit(arity, std::move(tuples));
        }
      }
    }
    switch (Int(0, 6)) {
      case 0:
        return Union(RandomExpr(arity, depth - 1),
                     RandomExpr(arity, depth - 1));
      case 1:
        return Intersect(RandomExpr(arity, depth - 1),
                         RandomExpr(arity, depth - 1));
      case 2:
        return Difference(RandomExpr(arity, depth - 1),
                          RandomExpr(arity, depth - 1));
      case 3: {
        if (arity < 2) break;
        int left = Int(1, arity - 1);
        return Product(RandomExpr(left, depth - 1),
                       RandomExpr(arity - left, depth - 1));
      }
      case 4: {
        ExprPtr inner = RandomExpr(arity, depth - 1);
        return Select(RandomCondition(arity, 2), std::move(inner));
      }
      case 5: {
        int inner_arity = Int(arity, arity + 2);
        ExprPtr inner = RandomExpr(inner_arity, depth - 1);
        std::vector<int> idx;
        for (int i = 0; i < arity; ++i) idx.push_back(Int(1, inner_arity));
        return Project(std::move(idx), std::move(inner));
      }
      default: {
        if (arity < 2) break;
        ExprPtr inner = RandomExpr(arity - 1, depth - 1);
        std::vector<int> args;
        int n = Int(0, arity - 1);
        for (int i = 0; i < n; ++i) args.push_back(Int(1, arity - 1));
        return SkolemApp("f" + std::to_string(Int(0, 3)), std::move(args),
                         std::move(inner));
      }
    }
    return RandomExpr(arity, 0);
  }
};

// --- Fresh recursive recomputations, independent of the cached fields. ---

bool DeepEquals(const ExprPtr& a, const ExprPtr& b) {
  if (a->kind() != b->kind() || a->arity() != b->arity()) return false;
  if (a->name() != b->name()) return false;
  if (a->indexes() != b->indexes()) return false;
  if (!(a->condition() == b->condition())) return false;
  if (a->children().size() != b->children().size()) return false;
  for (size_t i = 0; i < a->children().size(); ++i) {
    if (!DeepEquals(a->children()[i], b->children()[i])) return false;
  }
  if (a->tuples().size() != b->tuples().size()) return false;
  for (size_t i = 0; i < a->tuples().size(); ++i) {
    if (a->tuples()[i].size() != b->tuples()[i].size()) return false;
    for (size_t j = 0; j < a->tuples()[i].size(); ++j) {
      if (CompareValues(a->tuples()[i][j], b->tuples()[i][j]) != 0) {
        return false;
      }
    }
  }
  return true;
}

size_t DeepHash(const ExprPtr& e) {
  size_t seed = static_cast<size_t>(e->kind());
  HashCombine(&seed, std::hash<std::string>()(e->name()));
  HashCombine(&seed, static_cast<size_t>(e->arity()));
  for (int i : e->indexes()) HashCombine(&seed, static_cast<size_t>(i));
  HashCombine(&seed, e->condition().Hash());
  for (const ExprPtr& c : e->children()) HashCombine(&seed, DeepHash(c));
  for (const Tuple& t : e->tuples()) HashCombine(&seed, HashTuple(t));
  return seed;
}

int64_t DeepOperatorCount(const ExprPtr& e) {
  int64_t n = 1;
  for (const ExprPtr& c : e->children()) n += DeepOperatorCount(c);
  return n;
}

bool DeepContainsKind(const ExprPtr& e, ExprKind kind) {
  if (e->kind() == kind) return true;
  for (const ExprPtr& c : e->children()) {
    if (DeepContainsKind(c, kind)) return true;
  }
  return false;
}

bool DeepContainsRelation(const ExprPtr& e, const std::string& name) {
  if (e->kind() == ExprKind::kRelation && e->name() == name) return true;
  for (const ExprPtr& c : e->children()) {
    if (DeepContainsRelation(c, name)) return true;
  }
  return false;
}

void DeepCollectRelations(const ExprPtr& e, std::set<std::string>* out) {
  if (e->kind() == ExprKind::kRelation) out->insert(e->name());
  for (const ExprPtr& c : e->children()) DeepCollectRelations(c, out);
}

ExprPtr DeepSubstitute(const ExprPtr& e, const std::string& name,
                       const ExprPtr& replacement) {
  if (e->kind() == ExprKind::kRelation && e->name() == name) {
    return replacement;
  }
  std::vector<ExprPtr> children;
  for (const ExprPtr& c : e->children()) {
    children.push_back(DeepSubstitute(c, name, replacement));
  }
  return Expr::Make(e->kind(), e->name(), std::move(children), e->condition(),
                    e->indexes(), e->arity(), e->tuples());
}

class InternFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InternFuzzTest, PointerEqualityIsStructuralEquality) {
  Gen gen1, gen2;
  gen1.rng.seed(GetParam());
  gen2.rng.seed(GetParam());
  for (int round = 0; round < 40; ++round) {
    int arity = gen1.Int(1, 3);
    (void)gen2.Int(1, 3);
    // Two independent constructions of the same random tree intern to the
    // same object.
    ExprPtr a = gen1.RandomExpr(arity, 3);
    ExprPtr b = gen2.RandomExpr(arity, 3);
    ASSERT_TRUE(DeepEquals(a, b));
    EXPECT_EQ(a.get(), b.get()) << ExprToString(a);
    EXPECT_TRUE(ExprEquals(a, b));
  }
}

TEST_P(InternFuzzTest, EqualsAndHashAgreeAcrossRandomPairs) {
  Gen gen;
  gen.rng.seed(GetParam() * 97 + 13);
  std::vector<ExprPtr> pool;
  for (int i = 0; i < 30; ++i) {
    pool.push_back(gen.RandomExpr(gen.Int(1, 3), gen.Int(0, 3)));
  }
  for (const ExprPtr& a : pool) {
    for (const ExprPtr& b : pool) {
      // ExprEquals(a,b) ⇔ a.get()==b.get() ⇔ deep structural equality.
      EXPECT_EQ(ExprEquals(a, b), a.get() == b.get());
      EXPECT_EQ(DeepEquals(a, b), a.get() == b.get())
          << ExprToString(a) << " vs " << ExprToString(b);
      if (ExprEquals(a, b)) EXPECT_EQ(ExprHash(a), ExprHash(b));
    }
  }
}

TEST_P(InternFuzzTest, CachedAnalysesMatchFreshRecomputation) {
  Gen gen;
  gen.rng.seed(GetParam() * 31 + 7);
  for (int round = 0; round < 40; ++round) {
    ExprPtr e = gen.RandomExpr(gen.Int(1, 3), 3);
    EXPECT_EQ(ExprHash(e), DeepHash(e));
    EXPECT_EQ(OperatorCount(e), DeepOperatorCount(e));
    EXPECT_EQ(ContainsSkolem(e), DeepContainsKind(e, ExprKind::kSkolem));
    EXPECT_EQ(ContainsDomain(e), DeepContainsKind(e, ExprKind::kDomain));
    std::set<std::string> expected, got;
    DeepCollectRelations(e, &expected);
    CollectRelations(e, &got);
    EXPECT_EQ(expected, got);
    for (int i = 0; i <= 3; ++i) {
      for (int a = 1; a <= 5; ++a) {
        std::string name = "R" + std::to_string(i) + "_" + std::to_string(a);
        EXPECT_EQ(ContainsRelation(e, name), DeepContainsRelation(e, name))
            << name << " in " << ExprToString(e);
      }
    }
  }
}

TEST_P(InternFuzzTest, MemoizedSubstituteMatchesNaiveRecursion) {
  Gen gen;
  gen.rng.seed(GetParam() * 131 + 5);
  for (int round = 0; round < 20; ++round) {
    ExprPtr e = gen.RandomExpr(2, 4);
    ExprPtr replacement = Rel("Z", 2);
    std::string victim = "R" + std::to_string(gen.Int(0, 3)) + "_2";
    ExprPtr fast = SubstituteRelation(e, victim, replacement);
    ExprPtr naive = DeepSubstitute(e, victim, replacement);
    // Interning collapses both results to the same object.
    EXPECT_EQ(fast.get(), naive.get()) << ExprToString(e);
    EXPECT_FALSE(ContainsRelation(fast, victim));
  }
}

TEST_P(InternFuzzTest, SimplifyIdempotentAndPreservesValidity) {
  Gen gen;
  gen.rng.seed(GetParam() * 17 + 3);
  for (int round = 0; round < 20; ++round) {
    ExprPtr e = gen.RandomExpr(gen.Int(1, 3), 4);
    ExprPtr s1 = SimplifyExpr(e);
    ExprPtr s2 = SimplifyExpr(s1);
    EXPECT_EQ(s1.get(), s2.get()) << ExprToString(e);
    EXPECT_TRUE(ValidateExpr(s1).ok()) << ExprToString(s1);
    EXPECT_EQ(s1->arity(), e->arity());
  }
}

TEST(InternTest, SharedSubtreesAreSharedObjects) {
  // The duplicated-subtree shape from COMPOSE substitutions: separately
  // constructed equal subtrees are physically one node.
  ExprPtr left = Select(Condition::AttrCmp(1, CmpOp::kEq, 3),
                        Product(Rel("R", 2), Rel("S", 2)));
  ExprPtr right = Select(Condition::AttrCmp(1, CmpOp::kEq, 3),
                         Product(Rel("R", 2), Rel("S", 2)));
  EXPECT_EQ(left.get(), right.get());
  ExprPtr u = Intersect(left, right);
  EXPECT_EQ(u->child(0).get(), u->child(1).get());
  // A DAG's tree-size metric still counts every occurrence.
  EXPECT_EQ(OperatorCount(u), 2 * OperatorCount(left) + 1);
}

TEST(InternTest, DistinctStructuresStayDistinct) {
  EXPECT_NE(Rel("R", 2).get(), Rel("R", 3).get());
  EXPECT_NE(Rel("R", 2).get(), Rel("S", 2).get());
  EXPECT_NE(Dom(2).get(), Dom(3).get());
  EXPECT_NE(Union(Rel("R", 2), Rel("S", 2)).get(),
            Union(Rel("S", 2), Rel("R", 2)).get());
  EXPECT_NE(Lit(1, {{Value(int64_t{1})}}).get(),
            Lit(1, {{Value(int64_t{2})}}).get());
  EXPECT_NE(Select(Condition::AttrCmp(1, CmpOp::kEq, 2), Rel("R", 2)).get(),
            Select(Condition::AttrCmp(1, CmpOp::kNe, 2), Rel("R", 2)).get());
  EXPECT_NE(Project({1}, Rel("R", 2)).get(),
            Project({2}, Rel("R", 2)).get());
}

INSTANTIATE_TEST_SUITE_P(Seeds, InternFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace mapcomp
