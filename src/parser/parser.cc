#include "src/parser/parser.h"

#include <set>

#include "src/algebra/builders.h"
#include "src/parser/lexer.h"

namespace mapcomp {

namespace {

const std::set<std::string>& ReservedWords() {
  static const std::set<std::string>* kWords = new std::set<std::string>{
      "schema", "map", "order", "key",  "pi",    "sel", "D",
      "empty",  "true", "false", "and", "or",    "not"};
  return *kWords;
}

/// Recursive-descent parser over a token stream.
class Impl {
 public:
  Impl(std::vector<Token> tokens, const op::Registry* registry)
      : tokens_(std::move(tokens)), registry_(registry) {}

  // --- token utilities ---
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }
  bool At(TokenKind k) const { return Peek().kind == k; }
  bool AtIdent(const std::string& word) const {
    return At(TokenKind::kIdent) && Peek().text == word;
  }
  Status Error(const std::string& msg) const {
    const Token& t = Peek();
    return Status::InvalidArgument(msg + ", found " + TokenToString(t) +
                                   " at line " + std::to_string(t.line) +
                                   ", column " + std::to_string(t.column));
  }
  Status Expect(TokenKind k, const std::string& what) {
    if (!At(k)) return Error("expected " + what);
    Next();
    return Status::OK();
  }

  // --- grammar productions ---

  Result<CompositionProblem> Problem() {
    CompositionProblem out;
    std::vector<Signature> schemas;
    std::vector<ConstraintSet> maps;
    std::vector<std::pair<std::string, std::string>> map_names;
    while (!At(TokenKind::kEnd)) {
      if (AtIdent("schema")) {
        Next();
        if (!At(TokenKind::kIdent)) return Error("expected schema name");
        Next();  // schema name only documents intent
        MAPCOMP_ASSIGN_OR_RETURN(Signature sig, SchemaBody());
        schemas.push_back(std::move(sig));
      } else if (AtIdent("map")) {
        Next();
        if (!At(TokenKind::kIdent)) return Error("expected map name");
        Next();
        if (schemas.empty()) {
          return Error("map declared before any schema");
        }
        // Maps may reference any schema declared so far.
        Signature env;
        for (const Signature& s : schemas) {
          MAPCOMP_ASSIGN_OR_RETURN(env, Signature::Merge(env, s));
        }
        MAPCOMP_ASSIGN_OR_RETURN(ConstraintSet cs, MapBody(env));
        maps.push_back(std::move(cs));
      } else if (AtIdent("order")) {
        Next();
        while (true) {
          if (!At(TokenKind::kIdent)) return Error("expected symbol name");
          out.elimination_order.push_back(Next().text);
          if (At(TokenKind::kComma)) {
            Next();
            continue;
          }
          break;
        }
        MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kSemi, "';'"));
      } else {
        return Error("expected 'schema', 'map' or 'order'");
      }
    }
    if (schemas.size() != 3) {
      return Status::InvalidArgument(
          "a composition problem needs exactly 3 schemas, got " +
          std::to_string(schemas.size()));
    }
    if (maps.size() != 2) {
      return Status::InvalidArgument(
          "a composition problem needs exactly 2 maps, got " +
          std::to_string(maps.size()));
    }
    out.sigma1 = std::move(schemas[0]);
    out.sigma2 = std::move(schemas[1]);
    out.sigma3 = std::move(schemas[2]);
    out.sigma12 = std::move(maps[0]);
    out.sigma23 = std::move(maps[1]);
    MAPCOMP_RETURN_IF_ERROR(out.Validate());
    return out;
  }

  Result<Signature> SchemaBody() {
    Signature sig;
    MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "'{'"));
    while (!At(TokenKind::kRBrace)) {
      if (!At(TokenKind::kIdent)) return Error("expected relation name");
      std::string name = Next().text;
      if (ReservedWords().count(name) > 0) {
        return Status::InvalidArgument("'" + name + "' is a reserved word");
      }
      MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      if (!At(TokenKind::kInt)) return Error("expected arity");
      int arity = static_cast<int>(Next().int_value);
      MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      MAPCOMP_RETURN_IF_ERROR(sig.AddRelation(name, arity));
      if (AtIdent("key")) {
        Next();
        MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
        MAPCOMP_ASSIGN_OR_RETURN(std::vector<int> key, IntList());
        MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        MAPCOMP_RETURN_IF_ERROR(sig.SetKey(name, std::move(key)));
      }
      MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kSemi, "';'"));
    }
    Next();  // }
    return sig;
  }

  Result<ConstraintSet> MapBody(const Signature& env) {
    ConstraintSet out;
    MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "'{'"));
    while (!At(TokenKind::kRBrace)) {
      MAPCOMP_ASSIGN_OR_RETURN(Constraint c, ParseOneConstraint(env));
      MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kSemi, "';'"));
      out.push_back(std::move(c));
    }
    Next();  // }
    return out;
  }

  Result<Constraint> ParseOneConstraint(const Signature& env) {
    MAPCOMP_ASSIGN_OR_RETURN(ExprPtr lhs, Expression(env));
    ConstraintKind kind;
    if (At(TokenKind::kLe)) {
      kind = ConstraintKind::kContainment;
    } else if (At(TokenKind::kEq)) {
      kind = ConstraintKind::kEquality;
    } else {
      return Error("expected '<=' or '=' between constraint sides");
    }
    Next();
    MAPCOMP_ASSIGN_OR_RETURN(ExprPtr rhs, Expression(env));
    if (lhs->arity() != rhs->arity()) {
      return Status::InvalidArgument(
          "constraint sides have different arities (" +
          std::to_string(lhs->arity()) + " vs " + std::to_string(rhs->arity()) +
          ")");
    }
    return kind == ConstraintKind::kContainment
               ? Constraint::Contain(std::move(lhs), std::move(rhs))
               : Constraint::Equal(std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> Expression(const Signature& env) {
    MAPCOMP_ASSIGN_OR_RETURN(ExprPtr lhs, Term(env));
    while (At(TokenKind::kPlus) || At(TokenKind::kMinus)) {
      bool is_union = At(TokenKind::kPlus);
      Next();
      MAPCOMP_ASSIGN_OR_RETURN(ExprPtr rhs, Term(env));
      if (lhs->arity() != rhs->arity()) {
        return Error("arity mismatch in union/difference");
      }
      lhs = is_union ? Union(std::move(lhs), std::move(rhs))
                     : Difference(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> Term(const Signature& env) {
    MAPCOMP_ASSIGN_OR_RETURN(ExprPtr lhs, Unary(env));
    while (At(TokenKind::kStar) || At(TokenKind::kAmp)) {
      bool is_product = At(TokenKind::kStar);
      Next();
      MAPCOMP_ASSIGN_OR_RETURN(ExprPtr rhs, Unary(env));
      if (!is_product && lhs->arity() != rhs->arity()) {
        return Error("arity mismatch in intersection");
      }
      lhs = is_product ? Product(std::move(lhs), std::move(rhs))
                       : Intersect(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> Unary(const Signature& env) {
    if (At(TokenKind::kLParen)) {
      Next();
      MAPCOMP_ASSIGN_OR_RETURN(ExprPtr e, Expression(env));
      MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return e;
    }
    if (At(TokenKind::kLBrace)) return Literal();
    if (At(TokenKind::kDollar)) return SkolemTerm(env);
    if (AtIdent("pi")) {
      Next();
      MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kLBracket, "'['"));
      MAPCOMP_ASSIGN_OR_RETURN(std::vector<int> idx, IntList());
      MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'"));
      MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      MAPCOMP_ASSIGN_OR_RETURN(ExprPtr e, Expression(env));
      MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      for (int i : idx) {
        if (i < 1 || i > e->arity()) {
          return Status::InvalidArgument("projection index " +
                                         std::to_string(i) + " out of range");
        }
      }
      return Project(std::move(idx), std::move(e));
    }
    if (AtIdent("sel")) {
      Next();
      MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kLBracket, "'['"));
      MAPCOMP_ASSIGN_OR_RETURN(Condition c, Cond());
      MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'"));
      MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      MAPCOMP_ASSIGN_OR_RETURN(ExprPtr e, Expression(env));
      MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      if (c.MaxAttr() > e->arity()) {
        return Status::InvalidArgument(
            "selection condition references attribute beyond arity");
      }
      return Select(std::move(c), std::move(e));
    }
    if (AtIdent("D")) {
      Next();
      MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kCaret, "'^'"));
      if (!At(TokenKind::kInt)) return Error("expected arity after 'D^'");
      return Dom(static_cast<int>(Next().int_value));
    }
    if (AtIdent("empty")) {
      Next();
      MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kCaret, "'^'"));
      if (!At(TokenKind::kInt)) return Error("expected arity after 'empty^'");
      return EmptyRel(static_cast<int>(Next().int_value));
    }
    if (At(TokenKind::kIdent)) {
      std::string name = Next().text;
      if (ReservedWords().count(name) > 0) {
        return Status::InvalidArgument("'" + name +
                                       "' is reserved and cannot start "
                                       "an expression here");
      }
      // User-defined operator application?
      if (At(TokenKind::kLBracket) || At(TokenKind::kLParen)) {
        if (registry_ != nullptr && registry_->Find(name) != nullptr) {
          return UserOpTerm(name, env);
        }
        if (At(TokenKind::kLParen)) {
          return Status::InvalidArgument("unknown operator '" + name + "'");
        }
      }
      if (!env.Contains(name)) {
        return Status::NotFound("relation '" + name + "' not declared");
      }
      return Rel(name, env.ArityOf(name));
    }
    return Error("expected an expression");
  }

  Result<ExprPtr> Literal() {
    Next();  // {
    std::vector<Tuple> tuples;
    int arity = -1;
    while (!At(TokenKind::kRBrace)) {
      MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      Tuple t;
      while (true) {
        MAPCOMP_ASSIGN_OR_RETURN(Value v, ValueLit());
        t.push_back(std::move(v));
        if (At(TokenKind::kComma)) {
          Next();
          continue;
        }
        break;
      }
      MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      if (arity == -1) {
        arity = static_cast<int>(t.size());
      } else if (arity != static_cast<int>(t.size())) {
        return Error("literal tuples have inconsistent arities");
      }
      tuples.push_back(std::move(t));
      if (At(TokenKind::kComma)) Next();
    }
    Next();  // }
    if (At(TokenKind::kCaret)) {
      Next();
      if (!At(TokenKind::kInt)) return Error("expected arity after '^'");
      int declared = static_cast<int>(Next().int_value);
      if (arity != -1 && arity != declared) {
        return Error("literal arity annotation mismatch");
      }
      arity = declared;
    }
    if (arity == -1) {
      return Error("empty literal needs an arity annotation '{...}^r'");
    }
    return Lit(arity, std::move(tuples));
  }

  Result<ExprPtr> SkolemTerm(const Signature& env) {
    Next();  // $
    if (!At(TokenKind::kIdent)) return Error("expected Skolem function name");
    std::string fname = Next().text;
    MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kLBracket, "'['"));
    std::vector<int> idx;
    if (!At(TokenKind::kRBracket)) {
      MAPCOMP_ASSIGN_OR_RETURN(idx, IntList());
    }
    MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'"));
    MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    MAPCOMP_ASSIGN_OR_RETURN(ExprPtr e, Expression(env));
    MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    for (int i : idx) {
      if (i < 1 || i > e->arity()) {
        return Status::InvalidArgument("skolem index out of range");
      }
    }
    return SkolemApp(std::move(fname), std::move(idx), std::move(e));
  }

  Result<ExprPtr> UserOpTerm(const std::string& name, const Signature& env) {
    Condition cond = Condition::True();
    std::vector<int> indexes;
    if (At(TokenKind::kLBracket)) {
      Next();
      // Either an index list, a condition, or `indexes; condition`.
      if (At(TokenKind::kInt)) {
        MAPCOMP_ASSIGN_OR_RETURN(indexes, IntList());
        if (At(TokenKind::kSemi)) {
          Next();
          MAPCOMP_ASSIGN_OR_RETURN(cond, Cond());
        }
      } else if (!At(TokenKind::kRBracket)) {
        MAPCOMP_ASSIGN_OR_RETURN(cond, Cond());
      }
      MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'"));
    }
    MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    std::vector<ExprPtr> args;
    while (true) {
      MAPCOMP_ASSIGN_OR_RETURN(ExprPtr e, Expression(env));
      args.push_back(std::move(e));
      if (At(TokenKind::kComma)) {
        Next();
        continue;
      }
      break;
    }
    MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    return registry_->MakeOp(name, std::move(args), std::move(cond),
                             std::move(indexes));
  }

  Result<std::vector<int>> IntList() {
    std::vector<int> out;
    while (true) {
      if (!At(TokenKind::kInt)) return Error("expected integer");
      out.push_back(static_cast<int>(Next().int_value));
      if (At(TokenKind::kComma)) {
        Next();
        continue;
      }
      break;
    }
    return out;
  }

  Result<Value> ValueLit() {
    if (At(TokenKind::kInt)) return Value(Next().int_value);
    if (At(TokenKind::kString)) return Value(Next().text);
    return Error("expected integer or string value");
  }

  // --- conditions ---

  Result<Condition> Cond() { return OrCond(); }

  Result<Condition> OrCond() {
    MAPCOMP_ASSIGN_OR_RETURN(Condition lhs, AndCond());
    while (AtIdent("or")) {
      Next();
      MAPCOMP_ASSIGN_OR_RETURN(Condition rhs, AndCond());
      lhs = Condition::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Condition> AndCond() {
    MAPCOMP_ASSIGN_OR_RETURN(Condition lhs, NotCond());
    while (AtIdent("and")) {
      Next();
      MAPCOMP_ASSIGN_OR_RETURN(Condition rhs, NotCond());
      lhs = Condition::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Condition> NotCond() {
    if (AtIdent("not")) {
      Next();
      MAPCOMP_ASSIGN_OR_RETURN(Condition c, NotCond());
      return Condition::Not(std::move(c));
    }
    if (At(TokenKind::kLParen)) {
      Next();
      MAPCOMP_ASSIGN_OR_RETURN(Condition c, Cond());
      MAPCOMP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return c;
    }
    if (AtIdent("true")) {
      Next();
      return Condition::True();
    }
    if (AtIdent("false")) {
      Next();
      return Condition::False();
    }
    return AtomCond();
  }

  Result<Condition> AtomCond() {
    MAPCOMP_ASSIGN_OR_RETURN(CondOperand lhs, Operand());
    CmpOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = CmpOp::kEq;
        break;
      case TokenKind::kNe:
        op = CmpOp::kNe;
        break;
      case TokenKind::kLt:
        op = CmpOp::kLt;
        break;
      case TokenKind::kLe:
        op = CmpOp::kLe;
        break;
      case TokenKind::kGt:
        op = CmpOp::kGt;
        break;
      case TokenKind::kGe:
        op = CmpOp::kGe;
        break;
      default:
        return Error("expected comparison operator");
    }
    Next();
    MAPCOMP_ASSIGN_OR_RETURN(CondOperand rhs, Operand());
    return Condition::Atom(std::move(lhs), op, std::move(rhs));
  }

  Result<CondOperand> Operand() {
    if (At(TokenKind::kHash)) {
      Next();
      if (!At(TokenKind::kInt)) return Error("expected attribute index");
      return CondOperand::Attr(static_cast<int>(Next().int_value));
    }
    MAPCOMP_ASSIGN_OR_RETURN(Value v, ValueLit());
    return CondOperand::Const(std::move(v));
  }

  Status ExpectEnd() {
    if (!At(TokenKind::kEnd)) return Error("trailing input");
    return Status::OK();
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  const op::Registry* registry_;
};

}  // namespace

Result<CompositionProblem> Parser::ParseProblem(const std::string& text) const {
  MAPCOMP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Impl impl(std::move(tokens), registry_);
  return impl.Problem();
}

Result<ExprPtr> Parser::ParseExpr(const std::string& text,
                                  const Signature& sig) const {
  MAPCOMP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Impl impl(std::move(tokens), registry_);
  MAPCOMP_ASSIGN_OR_RETURN(ExprPtr e, impl.Expression(sig));
  MAPCOMP_RETURN_IF_ERROR(impl.ExpectEnd());
  return e;
}

Result<Constraint> Parser::ParseConstraint(const std::string& text,
                                           const Signature& sig) const {
  MAPCOMP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Impl impl(std::move(tokens), registry_);
  MAPCOMP_ASSIGN_OR_RETURN(Constraint c, impl.ParseOneConstraint(sig));
  MAPCOMP_RETURN_IF_ERROR(impl.ExpectEnd());
  return c;
}

Result<ConstraintSet> Parser::ParseConstraints(const std::string& text,
                                               const Signature& sig) const {
  MAPCOMP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Impl impl(std::move(tokens), registry_);
  ConstraintSet out;
  while (true) {
    MAPCOMP_ASSIGN_OR_RETURN(Constraint c, impl.ParseOneConstraint(sig));
    out.push_back(std::move(c));
    if (impl.At(TokenKind::kSemi)) {
      impl.Next();
      if (impl.At(TokenKind::kEnd)) break;
      continue;
    }
    break;
  }
  MAPCOMP_RETURN_IF_ERROR(impl.ExpectEnd());
  return out;
}

}  // namespace mapcomp
