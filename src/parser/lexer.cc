#include "src/parser/lexer.h"

#include <cctype>

namespace mapcomp {

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  int line = 1, column = 1;
  size_t i = 0;
  auto make = [&](TokenKind kind) {
    Token t;
    t.kind = kind;
    t.line = line;
    t.column = column;
    return t;
  };
  auto err = [&](const std::string& msg) {
    return Status::InvalidArgument(msg + " at line " + std::to_string(line) +
                                   ", column " + std::to_string(column));
  };
  while (i < input.size()) {
    char c = input[i];
    if (c == '\n') {
      ++line;
      column = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++column;
      ++i;
      continue;
    }
    // Comment: -- to end of line.
    if (c == '-' && i + 1 < input.size() && input[i + 1] == '-') {
      while (i < input.size() && input[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      Token t = make(TokenKind::kIdent);
      size_t start = i;
      while (i < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[i])) ||
              input[i] == '_')) {
        ++i;
        ++column;
      }
      t.text = input.substr(start, i - start);
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      Token t = make(TokenKind::kInt);
      int64_t v = 0;
      while (i < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[i]))) {
        v = v * 10 + (input[i] - '0');
        ++i;
        ++column;
      }
      t.int_value = v;
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      Token t = make(TokenKind::kString);
      ++i;
      ++column;
      size_t start = i;
      while (i < input.size() && input[i] != '\'') {
        if (input[i] == '\n') return err("unterminated string literal");
        ++i;
        ++column;
      }
      if (i >= input.size()) return err("unterminated string literal");
      t.text = input.substr(start, i - start);
      ++i;
      ++column;
      out.push_back(std::move(t));
      continue;
    }
    auto single = [&](TokenKind kind) {
      out.push_back(make(kind));
      ++i;
      ++column;
    };
    switch (c) {
      case '(':
        single(TokenKind::kLParen);
        continue;
      case ')':
        single(TokenKind::kRParen);
        continue;
      case '{':
        single(TokenKind::kLBrace);
        continue;
      case '}':
        single(TokenKind::kRBrace);
        continue;
      case '[':
        single(TokenKind::kLBracket);
        continue;
      case ']':
        single(TokenKind::kRBracket);
        continue;
      case ',':
        single(TokenKind::kComma);
        continue;
      case ';':
        single(TokenKind::kSemi);
        continue;
      case '#':
        single(TokenKind::kHash);
        continue;
      case '^':
        single(TokenKind::kCaret);
        continue;
      case '$':
        single(TokenKind::kDollar);
        continue;
      case '+':
        single(TokenKind::kPlus);
        continue;
      case '-':
        single(TokenKind::kMinus);
        continue;
      case '*':
        single(TokenKind::kStar);
        continue;
      case '&':
        single(TokenKind::kAmp);
        continue;
      case '=':
        single(TokenKind::kEq);
        continue;
      case '!':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          out.push_back(make(TokenKind::kNe));
          i += 2;
          column += 2;
          continue;
        }
        return err("unexpected '!'");
      case '<':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          out.push_back(make(TokenKind::kLe));
          i += 2;
          column += 2;
        } else {
          single(TokenKind::kLt);
        }
        continue;
      case '>':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          out.push_back(make(TokenKind::kGe));
          i += 2;
          column += 2;
        } else {
          single(TokenKind::kGt);
        }
        continue;
      default:
        return err(std::string("unexpected character '") + c + "'");
    }
  }
  out.push_back(make(TokenKind::kEnd));
  return out;
}

std::string TokenToString(const Token& t) {
  switch (t.kind) {
    case TokenKind::kIdent:
      return "identifier '" + t.text + "'";
    case TokenKind::kInt:
      return "integer " + std::to_string(t.int_value);
    case TokenKind::kString:
      return "string '" + t.text + "'";
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemi:
      return "';'";
    case TokenKind::kHash:
      return "'#'";
    case TokenKind::kCaret:
      return "'^'";
    case TokenKind::kDollar:
      return "'$'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kAmp:
      return "'&'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
  }
  return "?";
}

}  // namespace mapcomp
