#ifndef MAPCOMP_PARSER_PARSER_H_
#define MAPCOMP_PARSER_PARSER_H_

#include <string>

#include "src/common/status.h"
#include "src/constraints/mapping.h"
#include "src/op/registry.h"

namespace mapcomp {

/// Parser for the composition-task text format (the paper built an
/// equivalent one, §4). Grammar sketch:
///
///   problem    := (schema | map | order)*
///   schema     := 'schema' IDENT '{' reldecl* '}'
///   reldecl    := IDENT '(' INT ')' ('key' '(' intlist ')')? ';'
///   map        := 'map' IDENT '{' constraint* '}'
///   order      := 'order' IDENT (',' IDENT)* ';'
///   constraint := expr ('<=' | '=') expr ';'
///   expr       := term (('+'|'-') term)*           -- union / difference
///   term       := unary (('*'|'&') unary)*         -- product / intersection
///   unary      := 'pi' '[' intlist ']' '(' expr ')'
///               | 'sel' '[' cond ']' '(' expr ')'
///               | '$' IDENT '[' intlist? ']' '(' expr ')'
///               | 'D' '^' INT | 'empty' '^' INT
///               | '{' tuple (',' tuple)* '}'
///               | IDENT ('[' opparams ']')? '(' exprlist ')'  -- user op
///               | IDENT                                       -- relation
///               | '(' expr ')'
///   cond       := or-formula over atoms `#i OP #j`, `#i OP value`,
///                 'true', 'false', 'and', 'or', 'not'
///
/// A problem must declare exactly three schemas (in order: σ1, σ2, σ3) and
/// exactly two maps (Σ12, Σ23). An optional `order` directive fixes the
/// elimination order of σ2 symbols.
class Parser {
 public:
  explicit Parser(const op::Registry* registry = &op::Registry::Default())
      : registry_(registry) {}

  /// Parses a full composition problem.
  Result<CompositionProblem> ParseProblem(const std::string& text) const;

  /// Parses one expression; relation names resolve against `sig`.
  Result<ExprPtr> ParseExpr(const std::string& text,
                            const Signature& sig) const;

  /// Parses one constraint (without the trailing semicolon).
  Result<Constraint> ParseConstraint(const std::string& text,
                                     const Signature& sig) const;

  /// Parses a semicolon-separated constraint list.
  Result<ConstraintSet> ParseConstraints(const std::string& text,
                                         const Signature& sig) const;

 private:
  const op::Registry* registry_;
};

}  // namespace mapcomp

#endif  // MAPCOMP_PARSER_PARSER_H_
