#ifndef MAPCOMP_PARSER_LEXER_H_
#define MAPCOMP_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace mapcomp {

/// Token kinds of the composition-task text format.
enum class TokenKind {
  kIdent,    ///< relation / operator / schema names
  kInt,      ///< nonnegative integer literal
  kString,   ///< single-quoted string literal
  kLParen,   ///< (
  kRParen,   ///< )
  kLBrace,   ///< {
  kRBrace,   ///< }
  kLBracket, ///< [
  kRBracket, ///< ]
  kComma,    ///< ,
  kSemi,     ///< ;
  kHash,     ///< #
  kCaret,    ///< ^
  kDollar,   ///< $
  kPlus,     ///< +
  kMinus,    ///< -
  kStar,     ///< *
  kAmp,      ///< &
  kEq,       ///< =
  kNe,       ///< !=
  kLt,       ///< <
  kLe,       ///< <=
  kGt,       ///< >
  kGe,       ///< >=
  kEnd,      ///< end of input
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   ///< identifier or string contents
  int64_t int_value = 0;
  int line = 1;
  int column = 1;
};

/// Tokenizes `input`. `--` starts a comment to end of line.
Result<std::vector<Token>> Tokenize(const std::string& input);

/// Human-readable token description for error messages.
std::string TokenToString(const Token& t);

}  // namespace mapcomp

#endif  // MAPCOMP_PARSER_LEXER_H_
