#include "src/runtime/compose_service.h"

#include <exception>
#include <utility>

#include "src/runtime/thread_pool.h"

namespace mapcomp {
namespace runtime {

namespace {

std::string CacheKeyFor(const serve::ServeRequest& request,
                        const ComposeOptions& options) {
  // The options fingerprint joins the key so mixed-options traffic on one
  // service can never be answered with a variant computed under different
  // options (the ROADMAP stale-variant hazard). The request_id is
  // deliberately absent: it names the conversation, not the computation.
  return options.Fingerprint() + "\n" + request.problem.Fingerprint();
}

}  // namespace

/// Computation-wide cancellation state, shared by every submission joined
/// to one computation plus the pool task that runs it.
///
/// Liveness fence: Release() may run from an arbitrary thread (a handle
/// destructor) at an arbitrary time, yet it bumps service stats. That is
/// safe because it only touches the service after observing `done ==
/// false` under `mu` — and `done` is set (under `mu`) by the pool task
/// *before* it calls ReleaseOutstanding(), so `!done` implies the
/// computation still holds an outstanding_ reference and ~ComposeService
/// is still blocked. A release that finds `done` true touches nothing but
/// the plumb itself. Lock order: plumb mu before service mu_, never the
/// reverse (joins under mu_ use only the atomic counter).
struct ComposeService::CancelPlumb {
  explicit CancelPlumb(ComposeService* s) : service(s) {}

  ComposeService* const service;
  common::CancelSource source;
  std::atomic<int64_t> joiners{0};

  std::mutex mu;
  bool done = false;     ///< pool task finished (any way); set before
                         ///< ReleaseOutstanding
  bool counted = false;  ///< some submission already counted as cancelled

  /// One submission withdraws. The last one out fires the source. Returns
  /// true when the withdrawal happened while the computation was still in
  /// flight (and was counted); false when it lost the race to completion.
  bool Release() {
    int64_t left = joiners.fetch_sub(1, std::memory_order_acq_rel) - 1;
    std::lock_guard<std::mutex> lock(mu);
    if (done) return false;
    counted = true;
    service->BumpCancelled();
    if (left <= 0) source.Cancel();
    return true;
  }

  /// Pool-task side: marks the computation done. Returns the cancelled
  /// correction — 1 when the run was interrupted (deadline fired inside
  /// the compose pipeline) but no submission ever counted, 0 otherwise.
  uint64_t Finish(bool interrupted) {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    if (interrupted && !counted) {
      counted = true;
      return 1;
    }
    return 0;
  }
};

/// One submission's interest in a computation: +1 joiner on attach,
/// released exactly once by the first of Handle::Cancel and the last
/// handle copy's destructor.
struct ComposeService::Joiner {
  explicit Joiner(std::shared_ptr<CancelPlumb> p) : plumb(std::move(p)) {
    plumb->joiners.fetch_add(1, std::memory_order_acq_rel);
  }
  ~Joiner() { Release(); }

  Joiner(const Joiner&) = delete;
  Joiner& operator=(const Joiner&) = delete;

  bool Release() {
    if (!released.exchange(true, std::memory_order_acq_rel)) {
      return plumb->Release();
    }
    return false;
  }

  const std::shared_ptr<CancelPlumb> plumb;
  std::atomic<bool> released{false};
};

bool ComposeService::Handle::Cancel() const {
  return joiner_ != nullptr && joiner_->Release();
}

void ComposeService::BumpCancelled() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.cancelled;
}

std::string ServiceStats::ToString() const {
  std::string out = "compose-service: ";
  out += std::to_string(hits) + " hits, " + std::to_string(misses) +
         " misses (" + std::to_string(HitRate() * 100.0) + "% hit rate), " +
         std::to_string(evictions) + " evictions, " +
         std::to_string(cache_entries) + " cached (" +
         std::to_string(cache_bytes) + " bytes, peak " +
         std::to_string(cache_bytes_peak) + "), " +
         std::to_string(in_flight) + " in flight, " +
         std::to_string(completed) + " completed, " +
         std::to_string(failed) + " failed, " +
         std::to_string(cancelled) + " cancelled\n";
  out += "scheduler: " + std::to_string(waves_executed) +
         " waves executed, max width " + std::to_string(max_wave_width) + "\n";
  out += "chains: " + std::to_string(chain_prefix_hits) +
         " prefix hits, " + std::to_string(chain_prefix_misses) +
         " prefix misses (" +
         std::to_string(ChainPrefixHitRate() * 100.0) + "% hit rate)\n";
  return out;
}

ComposeService::ComposeService(ComposeServiceOptions options)
    : options_(std::move(options)) {}

ComposeService::~ComposeService() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return outstanding_ == 0; });
}

void ComposeService::RecordCompletion(const CompositionResult* result,
                                      bool interrupted,
                                      uint64_t extra_cancelled) {
  std::lock_guard<std::mutex> lock(mu_);
  --stats_.in_flight;
  ++stats_.completed;
  stats_.cancelled += extra_cancelled;
  if (result != nullptr) {
    for (const RoundStat& r : result->rounds) {
      stats_.waves_executed += r.wave_widths.size();
      for (int w : r.wave_widths) {
        if (w > stats_.max_wave_width) stats_.max_wave_width = w;
      }
    }
  } else if (!interrupted) {
    // Interrupted runs are neither successes nor reproducible failures:
    // they count in `cancelled`, never in `failed`.
    ++stats_.failed;
  }
}

void ComposeService::RecordChainPrefixes(uint64_t hits, uint64_t misses) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.chain_prefix_hits += hits;
  stats_.chain_prefix_misses += misses;
}

void ComposeService::ReleaseOutstanding() {
  std::lock_guard<std::mutex> lock(mu_);
  --outstanding_;
  idle_.notify_all();
}

void ComposeService::EvictFailed(const std::string& key, uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end() || it->second.id != id) return;
  stats_.cache_bytes -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  cache_.erase(it);
  stats_.cache_entries = cache_.size();
}

void ComposeService::RecordEntryBytes(const std::string& key, uint64_t id,
                                      size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end() || it->second.id != id) return;  // already evicted
  it->second.bytes = bytes;
  stats_.cache_bytes += bytes;
  if (stats_.cache_bytes > stats_.cache_bytes_peak) {
    stats_.cache_bytes_peak = stats_.cache_bytes;
  }
  EnforceCapacityLocked();
}

void ComposeService::EvictLruLocked() {
  ++stats_.evictions;
  auto it = cache_.find(lru_.back());
  stats_.cache_bytes -= it->second.bytes;
  cache_.erase(it);
  lru_.pop_back();
}

void ComposeService::EnforceCapacityLocked() {
  while (cache_.size() > options_.cache_capacity) EvictLruLocked();
  if (options_.cache_bytes_capacity > 0) {
    // The byte bound may evict the entry whose completion just booked the
    // bytes — that is fine: its handles stay valid, only the memo is lost.
    while (stats_.cache_bytes > options_.cache_bytes_capacity &&
           !cache_.empty()) {
      EvictLruLocked();
    }
  }
  stats_.cache_entries = cache_.size();
}

ComposeService::ResultPtr ComposeService::TryServeCached(
    const serve::ServeRequest& request) {
  if (options_.cache_capacity == 0) return nullptr;
  const ComposeOptions& options =
      request.has_options ? request.options : options_.compose;
  std::string key = CacheKeyFor(request, options);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) return nullptr;
  if (it->second.future.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    return nullptr;  // in flight: admission must queue (joining is cheap,
                     // but the reply still needs a waiter)
  }
  const ServedOutcome& outcome = it->second.future.get();
  if (!outcome.ok()) return nullptr;
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // touch
  return outcome.shared();
}

ComposeService::Handle ComposeService::Submit(serve::ServeRequest request) {
  return Submit(std::move(request), common::Deadline::Infinite());
}

ComposeService::Handle ComposeService::Submit(serve::ServeRequest request,
                                              common::Deadline deadline) {
  // Expired-at-submit short-circuit: work that is already dead on arrival
  // never reaches the pool, the cache, or the miss/in-flight counters —
  // only `cancelled`. This is what makes the serving tier's queue-aging
  // cancel exact: a request that aged past its budget while queued costs
  // one counter bump, not one composition.
  if (deadline.expired()) {
    std::promise<ServedOutcome> ready;
    ready.set_value(ServedOutcome(Status::DeadlineExceeded(
        "deadline expired before composition started")));
    Handle handle;
    handle.future_ = ready.get_future().share();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.cancelled;
    return handle;
  }

  const bool caching = options_.cache_capacity > 0;
  const ComposeOptions& options =
      request.has_options ? request.options : options_.compose;
  std::string key = caching ? CacheKeyFor(request, options) : std::string();

  auto promise = std::make_shared<std::promise<ServedOutcome>>();
  std::shared_ptr<CancelPlumb> plumb;
  uint64_t entry_id = 0;
  Handle handle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (caching) {
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // touch
        handle.future_ = it->second.future;
        // Joining attaches interest to the running (or finished)
        // computation: only the atomic joiner count is touched here, so
        // the plumb-mu-before-mu_ lock order is never inverted.
        handle.joiner_ = std::make_shared<Joiner>(it->second.plumb);
        handle.cache_hit_ = true;
        return handle;
      }
    }
    ++stats_.misses;
    ++stats_.in_flight;
    ++outstanding_;
    entry_id = ++next_entry_id_;
    plumb = std::make_shared<CancelPlumb>(this);
    handle.future_ = promise->get_future().share();
    handle.joiner_ = std::make_shared<Joiner>(plumb);
    if (caching) {
      lru_.push_front(key);
      cache_.emplace(key, CacheEntry{handle.future_, lru_.begin(), plumb,
                                     entry_id,
                                     /*bytes=*/0});
      // Evicting an entry still in flight is allowed (its handles stay
      // valid; only the dedup/memo reference is lost), so a capacity
      // smaller than the concurrent working set degrades to recomputation,
      // never to blocking.
      EnforceCapacityLocked();
    }
  }

  // A preset key signature is copied into the task: Submit returns
  // immediately, and a caller's stack-allocated Signature must be free to
  // die before the pool ever runs the composition. (A parsed wire request
  // owns its keys via owned_keys; copying unifies both cases.)
  std::shared_ptr<const Signature> keys_copy;
  ComposeOptions task_options = options;
  if (task_options.eliminate.keys != nullptr) {
    keys_copy = std::make_shared<Signature>(*task_options.eliminate.keys);
    task_options.eliminate.keys = keys_copy.get();
  }
  // The computation's token: a caller-provided token keeps its own cancel
  // source (the caller owns it; Handle::Cancel can't reach it) tightened
  // to the earlier deadline; otherwise the plumb's source carries both the
  // submit deadline and the joiner-driven cancel edge.
  if (task_options.cancel.can_fire()) {
    task_options.cancel = task_options.cancel.Tightened(deadline);
  } else {
    task_options.cancel = plumb->source.token(deadline);
  }
  GlobalPool()->Submit(
      [this, promise, plumb, caching, entry_id, key, keys_copy,
       options = std::move(task_options),
       problem = std::move(request.problem)]() mutable {
        ResultPtr result;
        try {
          CompositionResult full = Compose(problem, options);
          if (!full.interrupt.ok()) {
            // The run unwound on a fired token: partial residuals are not
            // a servable result and must never be cached. Finish() is the
            // liveness fence — it must run before ReleaseOutstanding on
            // every path.
            if (caching) EvictFailed(key, entry_id);
            Status interrupt = full.interrupt;
            uint64_t extra = plumb->Finish(/*interrupted=*/true);
            RecordCompletion(nullptr, /*interrupted=*/true, extra);
            promise->set_value(ServedOutcome(std::move(interrupt)));
            ReleaseOutstanding();
            return;
          }
          // Slim before caching: constraints + residuals + warnings and
          // the precomputed full fingerprint are retained; per-round stat
          // payloads are dropped (they would dominate a registry-scale
          // cache) after their wave counters were folded into stats_.
          uint64_t extra = plumb->Finish(/*interrupted=*/false);
          RecordCompletion(&full, /*interrupted=*/false, extra);
          result = std::make_shared<ServedResult>(
              ServedResult::FromResult(full));
        } catch (...) {
          // A failure is a Status, not a rethrow: it reaches every handle
          // already joined to this computation as an error outcome, but
          // must not be served to future submitters.
          Status failure = Status::Internal("composition failed");
          try {
            std::rethrow_exception(std::current_exception());
          } catch (const std::exception& e) {
            failure = Status::Internal(std::string("composition failed: ") +
                                       e.what());
          } catch (...) {
          }
          if (caching) EvictFailed(key, entry_id);
          uint64_t extra = plumb->Finish(/*interrupted=*/false);
          RecordCompletion(nullptr, /*interrupted=*/false, extra);
          promise->set_value(ServedOutcome(std::move(failure)));
          ReleaseOutstanding();
          return;
        }
        // Ordering matters twice: stats — completion counters AND entry
        // bytes — before fulfillment (a client that just Wait()ed must see
        // itself counted as completed and the entry's bytes booked), and
        // the outstanding release after it (the destructor may return the
        // moment outstanding_ hits zero, and by then every handle must
        // already be Ready).
        if (caching) RecordEntryBytes(key, entry_id, result->ApproxBytes());
        promise->set_value(ServedOutcome(std::move(result)));
        ReleaseOutstanding();
      });
  return handle;
}

ServiceStats ComposeService::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace runtime
}  // namespace mapcomp
