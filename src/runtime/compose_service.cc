#include "src/runtime/compose_service.h"

#include <exception>
#include <utility>

#include "src/runtime/thread_pool.h"

namespace mapcomp {
namespace runtime {

namespace {

std::string CacheKeyFor(const serve::ServeRequest& request,
                        const ComposeOptions& options) {
  // The options fingerprint joins the key so mixed-options traffic on one
  // service can never be answered with a variant computed under different
  // options (the ROADMAP stale-variant hazard). The request_id is
  // deliberately absent: it names the conversation, not the computation.
  return options.Fingerprint() + "\n" + request.problem.Fingerprint();
}

}  // namespace

std::string ServiceStats::ToString() const {
  std::string out = "compose-service: ";
  out += std::to_string(hits) + " hits, " + std::to_string(misses) +
         " misses (" + std::to_string(HitRate() * 100.0) + "% hit rate), " +
         std::to_string(evictions) + " evictions, " +
         std::to_string(cache_entries) + " cached (" +
         std::to_string(cache_bytes) + " bytes, peak " +
         std::to_string(cache_bytes_peak) + "), " +
         std::to_string(in_flight) + " in flight, " +
         std::to_string(completed) + " completed, " +
         std::to_string(failed) + " failed\n";
  out += "scheduler: " + std::to_string(waves_executed) +
         " waves executed, max width " + std::to_string(max_wave_width) + "\n";
  out += "chains: " + std::to_string(chain_prefix_hits) +
         " prefix hits, " + std::to_string(chain_prefix_misses) +
         " prefix misses (" +
         std::to_string(ChainPrefixHitRate() * 100.0) + "% hit rate)\n";
  return out;
}

ComposeService::ComposeService(ComposeServiceOptions options)
    : options_(std::move(options)) {}

ComposeService::~ComposeService() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return outstanding_ == 0; });
}

void ComposeService::RecordCompletion(const CompositionResult* result) {
  std::lock_guard<std::mutex> lock(mu_);
  --stats_.in_flight;
  ++stats_.completed;
  if (result != nullptr) {
    for (const RoundStat& r : result->rounds) {
      stats_.waves_executed += r.wave_widths.size();
      for (int w : r.wave_widths) {
        if (w > stats_.max_wave_width) stats_.max_wave_width = w;
      }
    }
  } else {
    ++stats_.failed;
  }
}

void ComposeService::RecordChainPrefixes(uint64_t hits, uint64_t misses) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.chain_prefix_hits += hits;
  stats_.chain_prefix_misses += misses;
}

void ComposeService::ReleaseOutstanding() {
  std::lock_guard<std::mutex> lock(mu_);
  --outstanding_;
  idle_.notify_all();
}

void ComposeService::EvictFailed(const std::string& key, uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end() || it->second.id != id) return;
  stats_.cache_bytes -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  cache_.erase(it);
  stats_.cache_entries = cache_.size();
}

void ComposeService::RecordEntryBytes(const std::string& key, uint64_t id,
                                      size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end() || it->second.id != id) return;  // already evicted
  it->second.bytes = bytes;
  stats_.cache_bytes += bytes;
  if (stats_.cache_bytes > stats_.cache_bytes_peak) {
    stats_.cache_bytes_peak = stats_.cache_bytes;
  }
  EnforceCapacityLocked();
}

void ComposeService::EvictLruLocked() {
  ++stats_.evictions;
  auto it = cache_.find(lru_.back());
  stats_.cache_bytes -= it->second.bytes;
  cache_.erase(it);
  lru_.pop_back();
}

void ComposeService::EnforceCapacityLocked() {
  while (cache_.size() > options_.cache_capacity) EvictLruLocked();
  if (options_.cache_bytes_capacity > 0) {
    // The byte bound may evict the entry whose completion just booked the
    // bytes — that is fine: its handles stay valid, only the memo is lost.
    while (stats_.cache_bytes > options_.cache_bytes_capacity &&
           !cache_.empty()) {
      EvictLruLocked();
    }
  }
  stats_.cache_entries = cache_.size();
}

ComposeService::ResultPtr ComposeService::TryServeCached(
    const serve::ServeRequest& request) {
  if (options_.cache_capacity == 0) return nullptr;
  const ComposeOptions& options =
      request.has_options ? request.options : options_.compose;
  std::string key = CacheKeyFor(request, options);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) return nullptr;
  if (it->second.future.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    return nullptr;  // in flight: admission must queue (joining is cheap,
                     // but the reply still needs a waiter)
  }
  const ServedOutcome& outcome = it->second.future.get();
  if (!outcome.ok()) return nullptr;
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // touch
  return outcome.shared();
}

ComposeService::Handle ComposeService::Submit(serve::ServeRequest request) {
  const bool caching = options_.cache_capacity > 0;
  const ComposeOptions& options =
      request.has_options ? request.options : options_.compose;
  std::string key = caching ? CacheKeyFor(request, options) : std::string();

  auto promise = std::make_shared<std::promise<ServedOutcome>>();
  uint64_t entry_id = 0;
  Handle handle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (caching) {
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // touch
        handle.future_ = it->second.future;
        handle.cache_hit_ = true;
        return handle;
      }
    }
    ++stats_.misses;
    ++stats_.in_flight;
    ++outstanding_;
    entry_id = ++next_entry_id_;
    handle.future_ = promise->get_future().share();
    if (caching) {
      lru_.push_front(key);
      cache_.emplace(key, CacheEntry{handle.future_, lru_.begin(), entry_id,
                                     /*bytes=*/0});
      // Evicting an entry still in flight is allowed (its handles stay
      // valid; only the dedup/memo reference is lost), so a capacity
      // smaller than the concurrent working set degrades to recomputation,
      // never to blocking.
      EnforceCapacityLocked();
    }
  }

  // A preset key signature is copied into the task: Submit returns
  // immediately, and a caller's stack-allocated Signature must be free to
  // die before the pool ever runs the composition. (A parsed wire request
  // owns its keys via owned_keys; copying unifies both cases.)
  std::shared_ptr<const Signature> keys_copy;
  ComposeOptions task_options = options;
  if (task_options.eliminate.keys != nullptr) {
    keys_copy = std::make_shared<Signature>(*task_options.eliminate.keys);
    task_options.eliminate.keys = keys_copy.get();
  }
  GlobalPool()->Submit(
      [this, promise, caching, entry_id, key, keys_copy,
       options = std::move(task_options),
       problem = std::move(request.problem)]() mutable {
        ResultPtr result;
        try {
          CompositionResult full = Compose(problem, options);
          // Slim before caching: constraints + residuals + warnings and
          // the precomputed full fingerprint are retained; per-round stat
          // payloads are dropped (they would dominate a registry-scale
          // cache) after their wave counters were folded into stats_.
          RecordCompletion(&full);
          result = std::make_shared<ServedResult>(
              ServedResult::FromResult(full));
        } catch (...) {
          // A failure is a Status, not a rethrow: it reaches every handle
          // already joined to this computation as an error outcome, but
          // must not be served to future submitters.
          Status failure = Status::Internal("composition failed");
          try {
            std::rethrow_exception(std::current_exception());
          } catch (const std::exception& e) {
            failure = Status::Internal(std::string("composition failed: ") +
                                       e.what());
          } catch (...) {
          }
          if (caching) EvictFailed(key, entry_id);
          RecordCompletion(nullptr);
          promise->set_value(ServedOutcome(std::move(failure)));
          ReleaseOutstanding();
          return;
        }
        // Ordering matters twice: stats — completion counters AND entry
        // bytes — before fulfillment (a client that just Wait()ed must see
        // itself counted as completed and the entry's bytes booked), and
        // the outstanding release after it (the destructor may return the
        // moment outstanding_ hits zero, and by then every handle must
        // already be Ready).
        if (caching) RecordEntryBytes(key, entry_id, result->ApproxBytes());
        promise->set_value(ServedOutcome(std::move(result)));
        ReleaseOutstanding();
      });
  return handle;
}

ServiceStats ComposeService::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace runtime
}  // namespace mapcomp
