#include "src/runtime/compose_service.h"

#include "src/runtime/thread_pool.h"

namespace mapcomp {
namespace runtime {

std::string ServiceStats::ToString() const {
  std::string out = "compose-service: ";
  out += std::to_string(hits) + " hits, " + std::to_string(misses) +
         " misses (" + std::to_string(HitRate() * 100.0) + "% hit rate), " +
         std::to_string(evictions) + " evictions, " +
         std::to_string(cache_entries) + " cached, " +
         std::to_string(in_flight) + " in flight, " +
         std::to_string(completed) + " completed\n";
  out += "scheduler: " + std::to_string(waves_executed) +
         " waves executed, max width " + std::to_string(max_wave_width) + "\n";
  return out;
}

ComposeService::ComposeService(ComposeServiceOptions options)
    : options_(std::move(options)) {}

ComposeService::~ComposeService() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return outstanding_ == 0; });
}

void ComposeService::RecordCompletion(const CompositionResult* result) {
  std::lock_guard<std::mutex> lock(mu_);
  --stats_.in_flight;
  if (result != nullptr) {
    ++stats_.completed;
    for (const RoundStat& r : result->rounds) {
      stats_.waves_executed += r.wave_widths.size();
      for (int w : r.wave_widths) {
        if (w > stats_.max_wave_width) stats_.max_wave_width = w;
      }
    }
  }
}

void ComposeService::ReleaseOutstanding() {
  std::lock_guard<std::mutex> lock(mu_);
  --outstanding_;
  idle_.notify_all();
}

void ComposeService::EvictFailed(const std::string& key, uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end() || it->second.id != id) return;
  lru_.erase(it->second.lru_it);
  cache_.erase(it);
  stats_.cache_entries = cache_.size();
}

ComposeService::Handle ComposeService::Submit(CompositionProblem problem) {
  return Submit(std::move(problem), options_.compose);
}

ComposeService::Handle ComposeService::Submit(CompositionProblem problem,
                                              const ComposeOptions& options) {
  const bool caching = options_.cache_capacity > 0;
  // The options fingerprint joins the key so mixed-options traffic on one
  // service can never be answered with a variant computed under different
  // options (the ROADMAP stale-variant hazard).
  std::string key = caching
                        ? options.Fingerprint() + "\n" + problem.Fingerprint()
                        : std::string();

  auto promise = std::make_shared<std::promise<ResultPtr>>();
  uint64_t entry_id = 0;
  Handle handle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (caching) {
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // touch
        handle.future_ = it->second.future;
        handle.cache_hit_ = true;
        return handle;
      }
    }
    ++stats_.misses;
    ++stats_.in_flight;
    ++outstanding_;
    entry_id = ++next_entry_id_;
    handle.future_ = promise->get_future().share();
    if (caching) {
      lru_.push_front(key);
      cache_.emplace(key, CacheEntry{handle.future_, lru_.begin(), entry_id});
      // Evicting an entry still in flight is allowed (its handles stay
      // valid; only the dedup/memo reference is lost), so a capacity
      // smaller than the concurrent working set degrades to recomputation,
      // never to blocking.
      while (cache_.size() > options_.cache_capacity) {
        ++stats_.evictions;
        cache_.erase(lru_.back());
        lru_.pop_back();
      }
      stats_.cache_entries = cache_.size();
    }
  }

  // A preset key signature is copied into the task: Submit returns
  // immediately, and a caller's stack-allocated Signature must be free to
  // die before the pool ever runs the composition.
  std::shared_ptr<const Signature> keys_copy;
  ComposeOptions task_options = options;
  if (task_options.eliminate.keys != nullptr) {
    keys_copy = std::make_shared<Signature>(*task_options.eliminate.keys);
    task_options.eliminate.keys = keys_copy.get();
  }
  GlobalPool()->Submit(
      [this, promise, caching, entry_id, key, keys_copy,
       options = std::move(task_options),
       problem = std::move(problem)]() mutable {
        ResultPtr result;
        try {
          result = std::make_shared<CompositionResult>(
              Compose(problem, options));
        } catch (...) {
          // The exception reaches every handle already joined to this
          // computation, but must not be served to future submitters.
          if (caching) EvictFailed(key, entry_id);
          RecordCompletion(nullptr);
          promise->set_exception(std::current_exception());
          ReleaseOutstanding();
          return;
        }
        // Ordering matters twice: stats before fulfillment (a client that
        // just Wait()ed must see itself counted as completed, not in
        // flight), and the outstanding release after it (the destructor
        // may return the moment outstanding_ hits zero, and by then every
        // handle must already be Ready).
        RecordCompletion(result.get());
        promise->set_value(std::move(result));
        ReleaseOutstanding();
      });
  return handle;
}

ServiceStats ComposeService::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace runtime
}  // namespace mapcomp
