#include "src/runtime/compose_many.h"

#include "src/algebra/interner.h"
#include "src/runtime/thread_pool.h"

namespace mapcomp {
namespace runtime {

std::vector<CompositionResult> ComposeMany(
    const std::vector<CompositionProblem>& problems,
    const ComposeOptions& options, int jobs) {
  std::vector<CompositionResult> results(problems.size());
  if (problems.empty()) return results;

  // Pre-size the interner shards once for the whole batch (input operator
  // count is a reasonable node-count proxy), so workers do not pay for
  // table rebuilds mid-flight.
  size_t expected_nodes = 0;
  for (const CompositionProblem& p : problems) {
    expected_nodes += static_cast<size_t>(OperatorCount(p.sigma12)) +
                      static_cast<size_t>(OperatorCount(p.sigma23));
  }
  ExprInterner::Global().Reserve(expected_nodes);

  auto compose_one = [&](int64_t i) {
    results[static_cast<size_t>(i)] = Compose(problems[static_cast<size_t>(i)],
                                              options);
  };

  if (jobs <= 1 || problems.size() == 1) {
    for (int64_t i = 0; i < static_cast<int64_t>(problems.size()); ++i) {
      compose_one(i);
    }
    return results;
  }

  // The calling thread participates in ParallelFor, so jobs lanes total.
  // Workers come from the shared process-wide pool — constructing and
  // joining a pool per batch cost a thread spawn/join round-trip on every
  // call and over-subscribed the machine when batches overlapped; `jobs`
  // still caps this call's parallelism via max_helpers.
  ParallelFor(GlobalPool(), static_cast<int64_t>(problems.size()),
              compose_one, jobs - 1);
  return results;
}

}  // namespace runtime
}  // namespace mapcomp
