#include "src/runtime/compose_many.h"

#include <algorithm>

#include "src/algebra/interner.h"
#include "src/runtime/thread_pool.h"

namespace mapcomp {
namespace runtime {

std::vector<CompositionResult> ComposeMany(
    const std::vector<CompositionProblem>& problems,
    const ComposeOptions& options, int jobs) {
  std::vector<CompositionResult> results(problems.size());
  if (problems.empty()) return results;

  // Pre-size the interner shards once for the whole batch (input operator
  // count is a reasonable node-count proxy), so workers do not pay for
  // table rebuilds mid-flight.
  size_t expected_nodes = 0;
  for (const CompositionProblem& p : problems) {
    expected_nodes += static_cast<size_t>(OperatorCount(p.sigma12)) +
                      static_cast<size_t>(OperatorCount(p.sigma23));
  }
  ExprInterner::Global().Reserve(expected_nodes);

  auto compose_one = [&](int64_t i) {
    results[static_cast<size_t>(i)] = Compose(problems[static_cast<size_t>(i)],
                                              options);
  };

  if (jobs <= 1 || problems.size() == 1) {
    for (int64_t i = 0; i < static_cast<int64_t>(problems.size()); ++i) {
      compose_one(i);
    }
    return results;
  }

  // The calling thread participates in ParallelFor, so jobs lanes total —
  // but never more lanes than problems, so an oversized --jobs cannot
  // spawn idle threads (or blow up std::thread construction).
  int helpers = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(jobs), problems.size()) - 1);
  ThreadPool pool(helpers);
  ParallelFor(&pool, static_cast<int64_t>(problems.size()), compose_one);
  return results;
}

}  // namespace runtime
}  // namespace mapcomp
