#include "src/runtime/chain_composer.h"

#include <utility>

#include "src/compose/eliminate.h"
#include "src/runtime/approx_bytes.h"

namespace mapcomp {
namespace runtime {

namespace {

/// Rolling 128-bit prefix key: two independent FNV-1a-style lanes over the
/// folded fingerprints. 128 bits keep an accidental prefix collision a
/// ~2^-64 birthday event even at millions of cached prefixes.
struct RollingKey {
  uint64_t a = 0xcbf29ce484222325ull;
  uint64_t b = 0x9ae16a3b2f90404full;

  void Fold(const std::string& s) {
    for (unsigned char c : s) {
      a = (a ^ c) * 0x100000001b3ull;
      b = (b ^ c) * 0x9ddfea08eb382d69ull;
    }
    // A length terminator so consecutive folds can't slide into each
    // other ("ab"+"c" vs "a"+"bc").
    a = (a ^ s.size()) * 0x100000001b3ull;
    b = (b ^ s.size()) * 0x9ddfea08eb382d69ull;
  }

  void FoldHash(uint64_t h) {
    for (int i = 0; i < 8; ++i) {
      unsigned char c = static_cast<unsigned char>(h & 0xff);
      a = (a ^ c) * 0x100000001b3ull;
      b = (b ^ c) * 0x9ddfea08eb382d69ull;
      h >>= 8;
    }
  }

  /// Per-link digest: signature fingerprints plus the interned structural
  /// hash of each constraint expression. ExprHash is O(1) (cached at
  /// interning), so folding a link costs O(|signatures| + #constraints) —
  /// it never re-serializes constraint expressions, which is what keeps a
  /// fully warm chain walk cheap. Constraint order and multiplicity fold
  /// in, so a revised (rotated/toggled) mapping always re-keys.
  void FoldMapping(const Mapping& m) {
    Fold(m.input.Fingerprint());
    Fold(m.output.Fingerprint());
    for (const Constraint& c : m.constraints) {
      FoldHash(static_cast<uint64_t>(c.kind));
      FoldHash(static_cast<uint64_t>(ExprHash(c.lhs)));
      FoldHash(static_cast<uint64_t>(ExprHash(c.rhs)));
    }
    FoldHash(m.constraints.size());
  }

  std::string Key() const {
    return std::to_string(a) + ":" + std::to_string(b);
  }
};

std::shared_ptr<const ChainPrefixState> SeedState(const Mapping& first) {
  auto seed = std::make_shared<ChainPrefixState>();
  seed->sigma1 = first.input;
  seed->current = first.output;
  seed->constraints = first.constraints;
  return seed;
}

/// One chain step, shared verbatim by the warm and cold paths so they
/// cannot diverge: composes prefix∘m through the service (or directly when
/// `service` is null), then retries previously-kept residual symbols
/// against the new constraint set — a later composition can shrink Σ
/// enough to recover them (§4's second-order note) — and rebuilds σ1 as
/// chain input ∪ surviving residuals. A failed service computation
/// propagates as a Status (the service never rethrows across its
/// boundary).
Result<std::shared_ptr<const ChainPrefixState>> ExtendPrefix(
    const Signature& base_input, const ChainPrefixState& prev,
    const Mapping& m, const ComposeOptions& options,
    ComposeService* service) {
  CompositionProblem problem;
  problem.sigma1 = prev.sigma1;
  problem.sigma2 = prev.current;
  problem.sigma3 = m.output;
  problem.sigma12 = prev.constraints;
  problem.sigma23 = m.constraints;

  ComposeService::ResultPtr served;
  if (service != nullptr) {
    const ServedOutcome& outcome =
        service->Submit(serve::ServeRequest::WithOptions(problem, options))
            .Wait();
    if (!outcome.ok()) return outcome.status();
    served = outcome.shared();
  } else {
    served = std::make_shared<const ServedResult>(
        ServedResult::FromResult(Compose(problem, options)));
  }

  auto next = std::make_shared<ChainPrefixState>();
  next->current = m.output;
  next->warnings = prev.warnings;
  next->warnings.insert(next->warnings.end(), served->warnings.begin(),
                        served->warnings.end());
  next->step_result_fingerprint = served->fingerprint;

  ConstraintSet current = served->constraints;
  std::map<std::string, int> residual_arity = prev.residual_arity;
  for (auto it = residual_arity.begin(); it != residual_arity.end();) {
    EliminateOutcome retry =
        Eliminate(current, it->first, it->second, options.eliminate);
    if (retry.success) {
      current = std::move(retry.constraints);
      it = residual_arity.erase(it);
    } else {
      ++it;
    }
  }
  for (const std::string& s : served->residual_sigma2) {
    residual_arity[s] = problem.sigma2.ArityOf(s);
  }

  next->sigma1 = base_input;
  for (const auto& [name, arity] : residual_arity) {
    next->sigma1.AddOrReplaceRelation(name, arity);
  }
  next->constraints = std::move(current);
  next->residual_arity = std::move(residual_arity);
  return std::shared_ptr<const ChainPrefixState>(std::move(next));
}

/// Canonical serialization of a final chain state — the warm≡cold
/// comparison surface of ChainResult::fingerprint.
std::string StateFingerprint(const ChainPrefixState& s) {
  std::string out;
  out += "sigma1{" + s.sigma1.Fingerprint() + "}\n";
  out += "current{" + s.current.Fingerprint() + "}\n";
  out += "constraints{\n" + ConstraintSetToString(s.constraints) + "}\n";
  out += "residual{";
  for (const auto& [name, arity] : s.residual_arity) {
    out += std::to_string(name.size()) + ":" + name + "/" +
           std::to_string(arity) + ",";
  }
  out += "}\n";
  out += "warnings{";
  for (const std::string& w : s.warnings) {
    out += std::to_string(w.size()) + ":" + w + ",";
  }
  out += "}\n";
  return out;
}

ChainResult FinishResult(const ChainPrefixState& state, int depth,
                         int prefix_hits, int steps_composed) {
  ChainResult out;
  out.mapping.input = state.sigma1;
  out.mapping.output = state.current;
  out.mapping.constraints = state.constraints;
  for (const auto& [name, arity] : state.residual_arity) {
    (void)arity;
    out.residual_sigma2.push_back(name);
  }
  out.warnings = state.warnings;
  out.fingerprint = StateFingerprint(state);
  out.result_fingerprint = state.step_result_fingerprint;
  out.depth = depth;
  out.prefix_hits = prefix_hits;
  out.steps_composed = steps_composed;
  return out;
}

Status ValidateChain(const std::vector<Mapping>& chain) {
  if (chain.empty()) {
    return Status::InvalidArgument("cannot compose an empty chain");
  }
  for (size_t k = 1; k < chain.size(); ++k) {
    const Signature& out = chain[k - 1].output;
    const Signature& in = chain[k].input;
    if (out.names() != in.names()) {
      return Status::InvalidArgument(
          "chain link " + std::to_string(k) +
          ": input signature does not match the previous link's output");
    }
    for (const std::string& name : in.names()) {
      if (in.ArityOf(name) != out.ArityOf(name)) {
        return Status::InvalidArgument(
            "chain link " + std::to_string(k) + ": relation " + name +
            " changes arity across the link boundary");
      }
    }
  }
  return Status::OK();
}

}  // namespace

size_t ChainPrefixState::ApproxBytes() const {
  size_t out = sizeof(ChainPrefixState);
  out += SignatureApproxBytes(sigma1);
  out += SignatureApproxBytes(current);
  out += constraints.capacity() * sizeof(Constraint);
  for (const auto& [name, arity] : residual_arity) {
    (void)arity;
    out += name.size() + 64;
  }
  out += StringsApproxBytes(warnings);
  out += step_result_fingerprint.capacity();
  return out;
}

std::string ChainStats::ToString() const {
  std::string out = "chain-composer: ";
  out += std::to_string(prefix_hits) + " prefix hits, " +
         std::to_string(prefix_misses) + " prefix misses (" +
         std::to_string(HitRate() * 100.0) + "% hit rate), " +
         std::to_string(evictions) + " evictions, " +
         std::to_string(entries) + " cached (" +
         std::to_string(cache_bytes) + " bytes, peak " +
         std::to_string(cache_bytes_peak) + ")\n";
  return out;
}

ChainComposer::ChainComposer(ComposeService* service,
                             ChainComposerOptions options)
    : service_(service), options_(options) {}

ChainComposer::StatePtr ChainComposer::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // touch
  return it->second.state;
}

void ChainComposer::Insert(const std::string& key, StatePtr state) {
  size_t bytes = state->ApproxBytes();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    // A racing walk extended the same prefix; both states are identical
    // by determinism — keep the incumbent.
    return;
  }
  lru_.push_front(key);
  cache_.emplace(key, CacheEntry{std::move(state), lru_.begin(), bytes});
  stats_.cache_bytes += bytes;
  if (stats_.cache_bytes > stats_.cache_bytes_peak) {
    stats_.cache_bytes_peak = stats_.cache_bytes;
  }
  while (cache_.size() > options_.cache_capacity) EvictLruLocked();
  if (options_.cache_bytes_capacity > 0) {
    while (stats_.cache_bytes > options_.cache_bytes_capacity &&
           !cache_.empty()) {
      EvictLruLocked();
    }
  }
  stats_.entries = cache_.size();
}

void ChainComposer::EvictLruLocked() {
  ++stats_.evictions;
  auto it = cache_.find(lru_.back());
  stats_.cache_bytes -= it->second.bytes;
  cache_.erase(it);
  lru_.pop_back();
}

Result<ChainResult> ChainComposer::ComposeChain(
    const std::vector<Mapping>& chain) {
  return ComposeChain(chain, service_->default_options());
}

Result<ChainResult> ChainComposer::ComposeChain(
    const std::vector<Mapping>& chain, const ComposeOptions& options) {
  MAPCOMP_RETURN_IF_ERROR(ValidateChain(chain));
  const bool caching = options_.cache_capacity > 0;

  RollingKey key;
  key.Fold(options.Fingerprint());
  key.FoldMapping(chain[0]);
  StatePtr state = SeedState(chain[0]);

  int hits = 0, composed = 0;
  for (size_t k = 1; k < chain.size(); ++k) {
    key.FoldMapping(chain[k]);
    std::string prefix_key = caching ? key.Key() : std::string();
    if (caching) {
      if (StatePtr cached = Lookup(prefix_key)) {
        ++hits;
        state = std::move(cached);
        continue;
      }
    }
    MAPCOMP_ASSIGN_OR_RETURN(
        state,
        ExtendPrefix(chain[0].input, *state, chain[k], options, service_));
    ++composed;
    if (caching) Insert(prefix_key, state);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.prefix_hits += static_cast<uint64_t>(hits);
    stats_.prefix_misses += static_cast<uint64_t>(composed);
  }
  service_->RecordChainPrefixes(static_cast<uint64_t>(hits),
                                static_cast<uint64_t>(composed));
  return FinishResult(*state, static_cast<int>(chain.size()), hits,
                      composed);
}

ChainStats ChainComposer::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Result<ChainResult> ComposeChainCold(const std::vector<Mapping>& chain,
                                     const ComposeOptions& options) {
  MAPCOMP_RETURN_IF_ERROR(ValidateChain(chain));
  std::shared_ptr<const ChainPrefixState> state = SeedState(chain[0]);
  int composed = 0;
  for (size_t k = 1; k < chain.size(); ++k) {
    MAPCOMP_ASSIGN_OR_RETURN(
        state, ExtendPrefix(chain[0].input, *state, chain[k], options,
                            /*service=*/nullptr));
    ++composed;
  }
  return FinishResult(*state, static_cast<int>(chain.size()), /*hits=*/0,
                      composed);
}

}  // namespace runtime
}  // namespace mapcomp
