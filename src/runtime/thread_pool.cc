#include "src/runtime/thread_pool.h"

#include <atomic>
#include <exception>

namespace mapcomp {
namespace runtime {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

int ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    all_done_.notify_all();
  }
}

void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t)>& body) {
  if (n <= 0) return;
  if (pool == nullptr || n == 1) {
    for (int64_t i = 0; i < n; ++i) body(i);
    return;
  }

  struct Shared {
    std::atomic<int64_t> next{0};
    std::mutex mu;
    std::exception_ptr first_error;
    int64_t first_error_index = -1;
  } shared;

  auto drain = [&shared, n, &body] {
    for (;;) {
      int64_t i = shared.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared.mu);
        if (shared.first_error == nullptr ||
            i < shared.first_error_index) {
          shared.first_error = std::current_exception();
          shared.first_error_index = i;
        }
        // Stop claiming further iterations everywhere.
        shared.next.store(n, std::memory_order_relaxed);
        return;
      }
    }
  };

  // The calling thread participates, so a pool of k threads gives k+1 lanes
  // and ParallelFor never deadlocks even if the pool is busy elsewhere.
  int helpers = pool->thread_count();
  for (int t = 0; t < helpers; ++t) pool->Submit(drain);
  drain();
  pool->Wait();

  if (shared.first_error != nullptr) {
    std::rethrow_exception(shared.first_error);
  }
}

}  // namespace runtime
}  // namespace mapcomp
