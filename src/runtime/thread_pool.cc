#include "src/runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace mapcomp {
namespace runtime {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

int ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool* GlobalPool() {
  // Leaked like the global interner: worker threads must never be joined
  // from a static destructor racing other teardown. The pool's queue is
  // empty whenever no ParallelFor/Submit caller is active, so leaking it
  // leaks only idle threads.
  static ThreadPool* pool =
      new ThreadPool(std::max(1, ThreadPool::HardwareThreads() - 1));
  return pool;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    all_done_.notify_all();
  }
}

void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t)>& body, int max_helpers) {
  if (n <= 0) return;
  if (pool == nullptr || n == 1 || max_helpers == 0) {
    for (int64_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Heap-shared because helper tasks may still sit in the pool queue after
  // this call returns (they find nothing left to claim and exit); the
  // closures keep the state — including the body copy — alive. The hot
  // path is lock-free: claims come from one relaxed counter, retirements
  // decrement another (acq_rel, so the last decrement has seen every
  // lane's writes), and the mutex is touched only to record an error and
  // for the final notify handshake. An erroring lane atomically exchanges
  // the claim counter to n and retires the never-to-be-claimed tail in
  // one step (exchange makes the tail size exact even against racing
  // claims). The caller waits for remaining == 0 without ever touching
  // ThreadPool::Wait — which is what makes nested calls on a shared pool
  // deadlock-free.
  struct Shared {
    std::mutex mu;
    std::condition_variable done;
    std::function<void(int64_t)> body;
    int64_t n = 0;
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> remaining{0};
    std::exception_ptr first_error;
    int64_t first_error_index = -1;
  };
  auto shared = std::make_shared<Shared>();
  shared->body = body;
  shared->n = n;
  shared->remaining.store(n, std::memory_order_relaxed);

  auto retire = [](const std::shared_ptr<Shared>& s, int64_t count) {
    if (s->remaining.fetch_sub(count, std::memory_order_acq_rel) == count) {
      // Last retirement: pair with the waiter's mutex so the notify
      // cannot slip between its predicate check and its sleep.
      std::lock_guard<std::mutex> lock(s->mu);
      s->done.notify_all();
    }
  };
  auto drain = [shared, retire]() {
    for (;;) {
      int64_t i = shared->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= shared->n) return;
      try {
        shared->body(i);
        retire(shared, 1);
      } catch (...) {
        // Stop claiming everywhere; `prev` counts the claims that did
        // happen, so exactly the unclaimed tail [min(prev,n), n) is
        // retired here — claimed iterations on other lanes still run and
        // retire themselves.
        int64_t prev =
            shared->next.exchange(shared->n, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(shared->mu);
          if (shared->first_error == nullptr ||
              i < shared->first_error_index) {
            shared->first_error = std::current_exception();
            shared->first_error_index = i;
          }
        }
        retire(shared, 1 + (shared->n - std::min(prev, shared->n)));
      }
    }
  };

  int helpers = pool->thread_count();
  if (max_helpers >= 0) helpers = std::min(helpers, max_helpers);
  helpers = static_cast<int>(
      std::min<int64_t>(helpers, n - 1));  // no lane without an iteration
  for (int t = 0; t < helpers; ++t) pool->Submit(drain);

  drain();
  {
    std::unique_lock<std::mutex> lock(shared->mu);
    shared->done.wait(lock, [&shared] {
      return shared->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  if (shared->first_error != nullptr) {
    std::rethrow_exception(shared->first_error);
  }
}

}  // namespace runtime
}  // namespace mapcomp
