#ifndef MAPCOMP_RUNTIME_APPROX_BYTES_H_
#define MAPCOMP_RUNTIME_APPROX_BYTES_H_

#include <optional>
#include <string>
#include <vector>

#include "src/constraints/signature.h"

namespace mapcomp {
namespace runtime {

/// Resident-byte estimators shared by the service result cache and the
/// chain prefix cache, so both byte bounds account with one ruler.

inline size_t StringsApproxBytes(const std::vector<std::string>& v) {
  size_t out = v.capacity() * sizeof(std::string);
  for (const std::string& s : v) out += s.capacity();
  return out;
}

inline size_t SignatureApproxBytes(const Signature& sig) {
  // Names appear in both the order vector and the arity map; keys add a
  // map node plus the position vector. Map-node overhead is folded into a
  // flat per-relation constant.
  size_t out = 0;
  for (const std::string& name : sig.names()) {
    out += 2 * name.size() + 96;
    if (std::optional<std::vector<int>> key = sig.KeyOf(name)) {
      out += 64 + key->size() * sizeof(int);
    }
  }
  return out;
}

}  // namespace runtime
}  // namespace mapcomp

#endif  // MAPCOMP_RUNTIME_APPROX_BYTES_H_
