#ifndef MAPCOMP_RUNTIME_COMPOSE_MANY_H_
#define MAPCOMP_RUNTIME_COMPOSE_MANY_H_

#include <vector>

#include "src/compose/compose.h"

namespace mapcomp {
namespace runtime {

/// Composes a batch of independent composition problems, fanning them
/// across `jobs` worker threads (plus the calling thread). Results come
/// back in input order, and every field except the wall-clock timings is
/// identical whatever `jobs` is: each problem is composed by the
/// deterministic single-problem driver, problems share no mutable state
/// beyond the thread-safe expression interner, and worker assignment only
/// decides *who* computes a slot, never *what* lands in it (compare
/// CompositionResult::Fingerprint across runs to check).
///
/// jobs <= 1 composes sequentially on the calling thread; jobs == 0 is
/// treated as 1. Pass ThreadPool::HardwareThreads() to use every core.
std::vector<CompositionResult> ComposeMany(
    const std::vector<CompositionProblem>& problems,
    const ComposeOptions& options = {}, int jobs = 1);

}  // namespace runtime
}  // namespace mapcomp

#endif  // MAPCOMP_RUNTIME_COMPOSE_MANY_H_
