#ifndef MAPCOMP_RUNTIME_CHAIN_COMPOSER_H_
#define MAPCOMP_RUNTIME_CHAIN_COMPOSER_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/runtime/compose_service.h"

namespace mapcomp {
namespace runtime {

/// Composition state of a chain prefix m1∘…∘mk: exactly what the next
/// composition step consumes, in the shape RunEditLoop-style accumulation
/// produces — the chain input signature extended with still-residual
/// intermediate symbols, the current rightmost signature, the accumulated
/// constraint set, and per-residual arities for later recovery retries.
/// Immutable once built; cache entries and chain results share it.
struct ChainPrefixState {
  Signature sigma1;   ///< chain input ∪ residual intermediate symbols
  Signature current;  ///< rightmost signature of the prefix (v_{k+1})
  ConstraintSet constraints;  ///< over sigma1 ∪ current
  std::map<std::string, int> residual_arity;
  std::vector<std::string> warnings;  ///< accumulated across all steps
  /// CompositionResult::Fingerprint() of the step composition that
  /// produced this state (empty for the depth-1 seed, which composes
  /// nothing). Byte-identical whether the state was computed cold or
  /// served from the prefix cache — the incremental-correctness pin.
  std::string step_result_fingerprint;

  /// Accounting unit of the prefix cache's byte bound, same conventions
  /// as ServedResult::ApproxBytes.
  size_t ApproxBytes() const;
};

/// Result of composing a full chain m1∘m2∘…∘mn.
struct ChainResult {
  /// The composed mapping: chain input (∪ residual intermediate symbols)
  /// → final version signature.
  Mapping mapping;
  /// Intermediate symbols that no step could eliminate, in first-kept
  /// order.
  std::vector<std::string> residual_sigma2;
  std::vector<std::string> warnings;
  /// Canonical serialization of the composed mapping + residuals: equal
  /// between a warm (prefix-cached) and a cold recomposition by
  /// construction, at any job count. This is what callers should compare.
  std::string fingerprint;
  /// The final step's CompositionResult::Fingerprint() (empty for a
  /// depth-1 chain). Also warm/cold-identical.
  std::string result_fingerprint;
  int depth = 0;           ///< number of mappings in the chain
  int prefix_hits = 0;     ///< cached prefix compositions reused by this call
  int steps_composed = 0;  ///< compositions actually executed by this call

  double ComposeSavings() const {
    int total = prefix_hits + steps_composed;
    return total == 0 ? 0.0 : static_cast<double>(prefix_hits) / total;
  }
};

/// Counters of one ChainComposer's prefix cache.
struct ChainStats {
  uint64_t prefix_hits = 0;
  uint64_t prefix_misses = 0;  ///< walk lookups that had to compose
  uint64_t evictions = 0;
  uint64_t entries = 0;
  uint64_t cache_bytes = 0;
  uint64_t cache_bytes_peak = 0;

  double HitRate() const {
    uint64_t total = prefix_hits + prefix_misses;
    return total == 0 ? 0.0 : static_cast<double>(prefix_hits) / total;
  }
  std::string ToString() const;
};

struct ChainComposerOptions {
  /// Prefix entries retained (LRU). 0 disables the prefix cache — every
  /// ComposeChain recomposes the full chain (the cold baseline lanes of
  /// bench_registry use this).
  size_t cache_capacity = 4096;
  /// Byte bound on retained prefix states (ChainPrefixState::ApproxBytes
  /// sum); 0 = entries-only bound.
  size_t cache_bytes_capacity = 0;
};

/// Incremental left-to-right chain recomposition on top of ComposeService.
///
/// A chain m1∘m2∘…∘mn is composed prefix by prefix. Each prefix is keyed
/// by a rolling fingerprint folding ComposeOptions::Fingerprint() and a
/// per-link digest of every mapping up to it (signature fingerprints plus
/// the interned structural hash of each constraint — equivalent to
/// folding Mapping::Fingerprint(), but without re-serializing constraint
/// expressions) — never the (large) accumulated prefix constraints, so a
/// warm lookup costs O(link signatures + constraint count), not O(prefix). When link mk changes, the keys of
/// prefixes 1..k-1 are unchanged (cache hits) and only the suffix from k
/// recomposes: the hot path of a serving registry drops from
/// O(chain depth) compositions per edit to O(affected suffix). Appending
/// a version — the dominant registry edit — costs exactly one composition.
///
/// Correctness: prefix states are deterministic functions of
/// (options, m1..mk), and every step composes through the service (which
/// is itself fingerprint-deterministic at any job count), so a warm
/// recomposition is byte-identical — ChainResult::fingerprint and every
/// step_result_fingerprint — to a cold one (pinned in
/// tests/chain_composer_test.cc at elim_jobs 1 and 8). A changed prefix
/// link changes every downstream rolling key, so a stale suffix can never
/// be served. Rolling keys are 128-bit mixes; two distinct prefixes
/// colliding is a ~2^-64 birthday event at registry scale, the standard
/// content-hash-cache tradeoff.
///
/// Thread-safe: concurrent ComposeChain calls on one composer share the
/// cache; racing extenders of the same prefix may both compose (the
/// service's in-flight dedup collapses the underlying work) and insert
/// identical states.
class ChainComposer {
 public:
  /// `service` must outlive the composer; step compositions are submitted
  /// to it (sharing its result cache, dedup and stats).
  explicit ChainComposer(ComposeService* service,
                         ChainComposerOptions options = {});

  /// Composes the chain under the service's default options.
  Result<ChainResult> ComposeChain(const std::vector<Mapping>& chain);
  /// Composes the chain under explicit options. Options participate in
  /// the rolling keys, so mixed-options traffic never shares prefixes.
  Result<ChainResult> ComposeChain(const std::vector<Mapping>& chain,
                                   const ComposeOptions& options);

  ChainStats Stats() const;

 private:
  using StatePtr = std::shared_ptr<const ChainPrefixState>;
  struct CacheEntry {
    StatePtr state;
    std::list<std::string>::iterator lru_it;
    size_t bytes = 0;
  };

  /// Returns the cached state for `key` or nullptr, counting neither —
  /// the caller folds hit/miss tallies into both ChainStats and the
  /// service's chain counters once per walk.
  StatePtr Lookup(const std::string& key);
  void Insert(const std::string& key, StatePtr state);
  void EvictLruLocked();

  ComposeService* const service_;
  const ChainComposerOptions options_;
  mutable std::mutex mu_;
  ChainStats stats_;
  std::list<std::string> lru_;  ///< most recent first
  std::unordered_map<std::string, CacheEntry> cache_;
};

/// Cold oracle: composes the chain with no prefix reuse and no service —
/// every step runs synchronously on the calling thread. The warm path
/// must match it byte for byte; tests and bench_registry's baseline lanes
/// compare against this.
Result<ChainResult> ComposeChainCold(const std::vector<Mapping>& chain,
                                     const ComposeOptions& options = {});

}  // namespace runtime
}  // namespace mapcomp

#endif  // MAPCOMP_RUNTIME_CHAIN_COMPOSER_H_
