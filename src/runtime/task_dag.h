#ifndef MAPCOMP_SRC_RUNTIME_TASK_DAG_H_
#define MAPCOMP_SRC_RUNTIME_TASK_DAG_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/cancel.h"
#include "src/runtime/thread_pool.h"

namespace mapcomp {
namespace runtime {

/// A run-once dependency graph of tasks scheduled morsel-style on a shared
/// ThreadPool: every task fires once all of its dependencies have retired,
/// and whichever lane is free claims the lowest-index ready task next.
///
/// Tasks must be added in topological order — each dependency index is
/// smaller than the dependent's own index — which makes cycles impossible
/// by construction. `Run` blocks until every task has retired, draining
/// ready tasks on the calling thread alongside up to `max_helpers` pool
/// lanes. Like ParallelFor, Run never touches ThreadPool::Wait, so task
/// graphs nest safely on the shared global pool (a task body may itself
/// run a ParallelFor or another TaskDag on the same pool).
///
/// Exception semantics mirror ParallelFor: the first failure (lowest task
/// index among those that actually threw) aborts the graph — tasks not yet
/// started retire without executing — and is rethrown from Run after every
/// lane has quiesced. With a null pool or max_helpers == 0, Run executes
/// inline in index order and stops at the first exception.
///
/// Scheduling decides only *when* a task runs, never what it computes:
/// callers that want lane-count-independent results must make each task's
/// output depend only on its inputs, which the dependency edges guarantee
/// are complete (with a happens-before edge) when the task fires.
class TaskDag {
 public:
  TaskDag() = default;
  TaskDag(const TaskDag&) = delete;
  TaskDag& operator=(const TaskDag&) = delete;

  /// Adds a task that may run once every task in `deps` has retired.
  /// Every index in `deps` must be a previously returned task index;
  /// duplicates are allowed and count once. Returns the new task's index.
  int64_t AddTask(std::function<void()> fn, std::vector<int64_t> deps);

  /// Runs the whole graph to completion, then leaves the dag empty (a
  /// TaskDag is single-shot). See the class comment for threading and
  /// exception behavior.
  ///
  /// `cancel`, when non-null, is polled at every task claim (the graph's
  /// natural slot boundary): once it fires, tasks not yet started retire
  /// without executing — the abort path without an exception — and Run
  /// returns normally after every lane quiesces. The caller is responsible
  /// for noticing (via the token) that some task bodies never ran; a run
  /// during which the token never fires is indistinguishable from an
  /// unbounded one.
  void Run(ThreadPool* pool, int max_helpers,
           const common::CancelToken* cancel = nullptr);

  int64_t size() const { return static_cast<int64_t>(tasks_.size()); }

 private:
  struct PendingTask {
    std::function<void()> fn;
    std::vector<int64_t> deps;  // sorted, deduplicated
  };
  std::vector<PendingTask> tasks_;
};

}  // namespace runtime
}  // namespace mapcomp

#endif  // MAPCOMP_SRC_RUNTIME_TASK_DAG_H_
