#include "src/runtime/served_result.h"

#include "src/runtime/approx_bytes.h"

namespace mapcomp {
namespace runtime {

ServedResult ServedResult::FromResult(const CompositionResult& result) {
  ServedResult out;
  out.sigma = result.sigma;
  out.residual_sigma2 = result.residual_sigma2;
  out.constraints = result.constraints;
  out.warnings = result.warnings;
  out.eliminated_count = result.eliminated_count;
  out.total_count = result.total_count;
  out.fingerprint = result.Fingerprint();
  return out;
}

std::string ServedResult::Report() const {
  std::string out = "eliminated " + std::to_string(eliminated_count) + "/" +
                    std::to_string(total_count) + " symbols (served)\n";
  for (const std::string& w : warnings) {
    out += "  warning: " + w + "\n";
  }
  return out;
}

size_t ServedResult::ApproxBytes() const {
  size_t out = sizeof(ServedResult);
  out += SignatureApproxBytes(sigma);
  out += StringsApproxBytes(residual_sigma2);
  out += StringsApproxBytes(warnings);
  out += fingerprint.capacity();
  // Constraints hold two interned expression pointers each; the nodes
  // live in the shared interner arena (and are reused across cached
  // entries), so charge the reference cost, not a deep copy.
  out += constraints.capacity() * sizeof(Constraint);
  return out;
}

}  // namespace runtime
}  // namespace mapcomp
