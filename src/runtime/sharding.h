#ifndef MAPCOMP_RUNTIME_SHARDING_H_
#define MAPCOMP_RUNTIME_SHARDING_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/runtime/thread_pool.h"

namespace mapcomp {
namespace runtime {

/// Upper bound on chunks per sharded operation. Every caller that promises
/// lane-count-independent results derives its chunk size from the work
/// size and this one constant — a second, drifting copy would make chunk
/// boundaries (and with them any chunk-ordered merge) differ between
/// subsystems.
inline constexpr int64_t kMaxShardChunks = 32;

/// Deterministic sharded map: splits [0, n) into contiguous chunks of
/// `chunk` items, runs `body(begin, end)` for each chunk on up to
/// `max_helpers` pool workers plus the calling thread, and returns the
/// per-chunk results *in chunk order*. Chunk boundaries depend only on `n`
/// and `chunk` — never on the lane count or on which worker ran what — so a
/// caller that folds the returned vector left-to-right gets a byte-identical
/// reduction at any parallelism level. This is the sharded-reduce discipline
/// the parallel evaluator shares with ComposeMany: parallelism decides who
/// computes a slot, never what lands in it.
///
/// Exceptions thrown by `body` propagate through ParallelFor (lowest chunk
/// index wins). A null pool runs every chunk inline on the calling thread.
///
/// `body` is a template parameter (callable `T(int64_t begin, int64_t end)`)
/// rather than a std::function so the per-chunk call inlines — the columnar
/// evaluator runs millions of rows through these bodies.
template <typename T, typename Body>
std::vector<T> ShardedTransform(ThreadPool* pool, int64_t n, int64_t chunk,
                                int max_helpers, const Body& body) {
  if (n <= 0) return {};
  if (chunk < 1) chunk = 1;
  int64_t shards = (n + chunk - 1) / chunk;
  std::vector<T> out(static_cast<size_t>(shards));
  ParallelFor(
      pool, shards,
      [&](int64_t s) {
        int64_t begin = s * chunk;
        int64_t end = std::min(n, begin + chunk);
        out[static_cast<size_t>(s)] = body(begin, end);
      },
      max_helpers);
  return out;
}

}  // namespace runtime
}  // namespace mapcomp

#endif  // MAPCOMP_RUNTIME_SHARDING_H_
