#ifndef MAPCOMP_RUNTIME_SERVED_RESULT_H_
#define MAPCOMP_RUNTIME_SERVED_RESULT_H_

#include <string>
#include <vector>

#include "src/compose/compose.h"

namespace mapcomp {
namespace runtime {

/// What the service caches and serves: the composition's *answer* —
/// constraints, residuals, warnings, counts — plus the full
/// CompositionResult::Fingerprint() precomputed at completion time. The
/// per-attempt SymbolStats, per-round RoundStats and wall-clock timings of
/// the underlying CompositionResult are deliberately dropped: at
/// schema-registry scale (thousands of chains × dozens of prefixes) whole
/// results would dominate cache memory with diagnostics nobody re-reads,
/// while the slim entry is what every consumer — chain composition, the
/// CLI, correctness gates, the wire — actually needs. A hit and a miss
/// serve the same shape, and Fingerprint() equality with a direct
/// Compose() still holds because the string was recorded before slimming.
///
/// This is also the payload of a serve::ServeReply: the same value crosses
/// the wire that the in-process Submit path hands back, so the two serving
/// paths cannot drift apart.
struct ServedResult {
  Signature sigma;  ///< σ1 ∪ residual σ2 ∪ σ3
  std::vector<std::string> residual_sigma2;
  ConstraintSet constraints;
  std::vector<std::string> warnings;
  int eliminated_count = 0;  ///< distinct σ2 symbols eliminated
  int total_count = 0;       ///< distinct σ2 symbols attempted

  /// The full CompositionResult::Fingerprint() of the computation that
  /// produced this entry (stats and rounds included), recorded before the
  /// payload was slimmed — so warm and cold serving are byte-comparable
  /// against direct composition.
  const std::string& Fingerprint() const { return fingerprint; }

  /// Short human summary (counts, residuals, warnings) — the slim analog
  /// of CompositionResult::Report(); per-symbol attempt detail is not
  /// retained in the cache.
  std::string Report() const;

  /// Estimated resident bytes of this entry: strings, name tables, and
  /// per-constraint overhead. Interned expression nodes are shared
  /// process-wide and counted once per constraint reference, not deep —
  /// this is the accounting unit of ServiceStats::cache_bytes and the
  /// byte-capacity eviction bound.
  size_t ApproxBytes() const;

  /// Built by the service from a freshly computed full result.
  static ServedResult FromResult(const CompositionResult& result);

  std::string fingerprint;
};

}  // namespace runtime
}  // namespace mapcomp

#endif  // MAPCOMP_RUNTIME_SERVED_RESULT_H_
