#ifndef MAPCOMP_RUNTIME_THREAD_POOL_H_
#define MAPCOMP_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mapcomp {
namespace runtime {

/// A fixed-size worker pool with a FIFO task queue. Tasks are plain
/// `void()` closures; error handling is the closure's job (the library is
/// Status-based — see ParallelFor for how exceptions from task bodies are
/// surfaced). The destructor drains nothing: it waits for already-submitted
/// tasks to finish, then joins the workers.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Never blocks (unbounded queue).
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished executing.
  /// Must not be called from a pool worker (a task waiting for its own
  /// pool to drain counts itself as in flight and never returns) — tasks
  /// that need to join sub-work should use ParallelFor, which tracks its
  /// own completion.
  void Wait();

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency with a >= 1 floor.
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  int64_t in_flight_ = 0;  ///< queued + currently executing tasks
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// The lazily-created process-wide pool, sized so that one helper per
/// remaining hardware thread is available to whoever asks first
/// (HardwareThreads() - 1 workers, floor 1). Shared by ComposeMany, the
/// intra-problem elimination scheduler and ComposeService — per-call
/// parallelism is capped by each caller's `jobs` via ParallelFor's
/// `max_helpers`, so sharing one pool never over-subscribes the machine
/// the way one pool per batch did. Never destroyed before exit; safe to
/// call from any thread, including the pool's own workers (nested
/// ParallelFor is supported, see below).
ThreadPool* GlobalPool();

/// Runs `body(i)` for every i in [0, n), spreading iterations across up to
/// `max_helpers` of the pool's workers (all of them when < 0) plus the
/// calling thread. Iterations are claimed from a shared counter, so
/// scheduling is dynamic but the set of executed iterations is exactly
/// [0, n) regardless of thread count — callers that write only to
/// per-index state get thread-count-independent results. Blocks until all
/// iterations finish. With a null pool iterations run inline, in order, on
/// the calling thread; with k helpers there are up to k+1 lanes.
///
/// Completion is tracked per call (not via ThreadPool::Wait), so nesting a
/// ParallelFor inside a pool task — e.g. per-wave elimination inside a
/// batch-compose worker on the shared GlobalPool() — cannot deadlock: the
/// inner call's helpers are opportunistic, and its calling lane drains
/// every iteration itself if no helper is free.
///
/// If any iteration throws, the lowest-index exception is rethrown on the
/// calling thread after all lanes stop claiming new iterations; remaining
/// claimed iterations still complete.
void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t)>& body,
                 int max_helpers = -1);

}  // namespace runtime
}  // namespace mapcomp

#endif  // MAPCOMP_RUNTIME_THREAD_POOL_H_
