#ifndef MAPCOMP_RUNTIME_THREAD_POOL_H_
#define MAPCOMP_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mapcomp {
namespace runtime {

/// A fixed-size worker pool with a FIFO task queue. Tasks are plain
/// `void()` closures; error handling is the closure's job (the library is
/// Status-based — see ParallelFor for how exceptions from task bodies are
/// surfaced). The destructor drains nothing: it waits for already-submitted
/// tasks to finish, then joins the workers.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Never blocks (unbounded queue).
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished executing.
  void Wait();

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency with a >= 1 floor.
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  int64_t in_flight_ = 0;  ///< queued + currently executing tasks
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `body(i)` for every i in [0, n), spreading iterations across the
/// pool's workers plus the calling thread. Iterations are claimed from a
/// shared atomic counter, so scheduling is dynamic but the set of executed
/// iterations is exactly [0, n) regardless of thread count — callers that
/// write only to per-index state get thread-count-independent results.
/// Blocks until all iterations finish. With a null pool iterations run
/// inline, in order, on the calling thread; with a pool of k workers there
/// are k+1 lanes.
///
/// If any iteration throws, the first exception (in claim order) is
/// rethrown on the calling thread after all workers stop claiming new
/// iterations; remaining claimed iterations still complete.
void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t)>& body);

}  // namespace runtime
}  // namespace mapcomp

#endif  // MAPCOMP_RUNTIME_THREAD_POOL_H_
