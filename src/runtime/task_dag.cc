#include "src/runtime/task_dag.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <utility>

namespace mapcomp {
namespace runtime {
namespace {

/// Heap-shared scheduler state, kept alive by every lane's shared_ptr so
/// late pool helpers that wake after Run returned find a valid (already
/// drained) graph and exit. One mutex guards the ready heap and counters;
/// task bodies always execute outside the lock.
struct DagState {
  std::mutex mu;
  std::condition_variable ready_or_done;  // caller-only wait
  std::vector<std::function<void()>> fns;
  std::vector<std::vector<int64_t>> dependents;
  std::vector<int64_t> pending;  // unresolved dependency counts
  // Lowest-index-first so inline order, single-lane order and multi-lane
  // claim order all walk the same topological sequence.
  std::priority_queue<int64_t, std::vector<int64_t>, std::greater<int64_t>>
      ready;
  int64_t remaining = 0;
  int active_helpers = 0;
  int helper_cap = 0;
  bool abort = false;
  std::exception_ptr error;
  int64_t error_index = -1;
  ThreadPool* pool = nullptr;
  const common::CancelToken* cancel = nullptr;  // may be null; poll-only
};

void DrainDag(const std::shared_ptr<DagState>& s, bool is_caller);

/// Tops up pool helpers (under s->mu) whenever ready work outnumbers the
/// lanes currently draining. Helpers exit when they find the heap empty,
/// so a burst of newly unlocked dependents may need fresh ones.
void SpawnHelpers(const std::shared_ptr<DagState>& s) {
  int64_t ready_count = static_cast<int64_t>(s->ready.size());
  while (s->active_helpers < s->helper_cap && s->active_helpers < ready_count) {
    ++s->active_helpers;
    s->pool->Submit([s] { DrainDag(s, /*is_caller=*/false); });
  }
}

void DrainDag(const std::shared_ptr<DagState>& s, bool is_caller) {
  std::unique_lock<std::mutex> lock(s->mu);
  if (!is_caller) --s->active_helpers;  // re-counted while holding a task
  for (;;) {
    if (s->remaining == 0) return;
    if (s->ready.empty()) {
      if (!is_caller) return;  // helpers leave; SpawnHelpers replaces them
      s->ready_or_done.wait(
          lock, [&s] { return s->remaining == 0 || !s->ready.empty(); });
      continue;
    }
    int64_t i = s->ready.top();
    s->ready.pop();
    if (!is_caller) ++s->active_helpers;
    bool run = !s->abort &&
               !(s->cancel != nullptr && s->cancel->Fired());
    lock.unlock();
    if (run) {
      try {
        s->fns[static_cast<size_t>(i)]();
      } catch (...) {
        std::lock_guard<std::mutex> elock(s->mu);
        if (s->error == nullptr || i < s->error_index) {
          s->error = std::current_exception();
          s->error_index = i;
        }
        s->abort = true;
      }
    }
    lock.lock();
    if (!is_caller) --s->active_helpers;
    int64_t newly_ready = 0;
    for (int64_t d : s->dependents[static_cast<size_t>(i)]) {
      if (--s->pending[static_cast<size_t>(d)] == 0) {
        s->ready.push(d);
        ++newly_ready;
      }
    }
    --s->remaining;
    if (s->remaining == 0 || newly_ready > 0) s->ready_or_done.notify_all();
    SpawnHelpers(s);
  }
}

}  // namespace

int64_t TaskDag::AddTask(std::function<void()> fn, std::vector<int64_t> deps) {
  const int64_t id = static_cast<int64_t>(tasks_.size());
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  for (int64_t d : deps) {
    if (d < 0 || d >= id) {
      throw std::invalid_argument(
          "TaskDag::AddTask: dependency index out of topological order");
    }
  }
  tasks_.push_back(PendingTask{std::move(fn), std::move(deps)});
  return id;
}

void TaskDag::Run(ThreadPool* pool, int max_helpers,
                  const common::CancelToken* cancel) {
  const int64_t n = static_cast<int64_t>(tasks_.size());
  if (n == 0) return;
  if (pool == nullptr || max_helpers == 0 || n == 1) {
    std::exception_ptr error;
    for (PendingTask& t : tasks_) {
      if (cancel != nullptr && cancel->Fired()) break;
      try {
        t.fn();
      } catch (...) {
        error = std::current_exception();
        break;
      }
    }
    tasks_.clear();
    if (error != nullptr) std::rethrow_exception(error);
    return;
  }

  auto s = std::make_shared<DagState>();
  s->fns.reserve(static_cast<size_t>(n));
  s->dependents.resize(static_cast<size_t>(n));
  s->pending.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    PendingTask& t = tasks_[static_cast<size_t>(i)];
    s->fns.push_back(std::move(t.fn));
    s->pending[static_cast<size_t>(i)] =
        static_cast<int64_t>(t.deps.size());  // deps already deduplicated
    for (int64_t d : t.deps) s->dependents[static_cast<size_t>(d)].push_back(i);
    if (t.deps.empty()) s->ready.push(i);
  }
  tasks_.clear();
  s->remaining = n;
  s->pool = pool;
  s->cancel = cancel;
  int cap = max_helpers < 0 ? pool->thread_count()
                            : std::min(max_helpers, pool->thread_count());
  s->helper_cap = std::max(0, cap);
  {
    std::lock_guard<std::mutex> lock(s->mu);
    SpawnHelpers(s);
  }
  DrainDag(s, /*is_caller=*/true);
  if (s->error != nullptr) std::rethrow_exception(s->error);
}

}  // namespace runtime
}  // namespace mapcomp
