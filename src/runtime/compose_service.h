#ifndef MAPCOMP_RUNTIME_COMPOSE_SERVICE_H_
#define MAPCOMP_RUNTIME_COMPOSE_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/compose/compose.h"

namespace mapcomp {
namespace runtime {

/// Point-in-time counters of a ComposeService. Wave fields aggregate the
/// scheduler behavior of every composition the service completed.
struct ServiceStats {
  uint64_t hits = 0;        ///< Submits answered by the cache (incl. joining
                            ///< a computation already in flight)
  uint64_t misses = 0;      ///< Submits that started a computation
  uint64_t evictions = 0;   ///< cache entries dropped by the LRU bound
  int64_t in_flight = 0;    ///< computations started but not yet finished
  uint64_t completed = 0;   ///< computations finished
  uint64_t cache_entries = 0;  ///< entries currently cached
  uint64_t waves_executed = 0; ///< scheduler waves across completed results
  int max_wave_width = 0;      ///< widest elimination wave observed

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
  std::string ToString() const;
};

struct ComposeServiceOptions {
  /// Options applied to submissions that don't carry their own. The result
  /// cache is keyed by ComposeOptions::Fingerprint() *and*
  /// CompositionProblem::Fingerprint(), so one service can host
  /// mixed-options traffic (see the two-argument Submit) without serving a
  /// result computed under different options.
  ComposeOptions compose;
  /// Completed results retained, least-recently-submitted evicted first.
  /// 0 disables caching (every Submit computes).
  size_t cache_capacity = 128;
};

/// A long-lived composition server: clients Submit CompositionProblems and
/// get async handles; results are computed on the process-wide GlobalPool()
/// and memoized in an LRU cache keyed by the problem fingerprint, so a hot
/// problem is composed once and served from memory afterwards. Concurrent
/// submissions of the same problem join the in-flight computation instead
/// of duplicating it. Thread-safe; one instance is meant to outlive many
/// client requests (the ROADMAP's serving path).
///
/// Do not call Handle::Wait from inside a GlobalPool task: a worker
/// blocking on work that needs a worker can starve a small pool. Clients —
/// CLI loops, benchmark drivers, request threads — wait; pool tasks don't.
class ComposeService {
 public:
  using ResultPtr = std::shared_ptr<const CompositionResult>;

  /// Async handle for one submission. Copyable; all copies share the same
  /// eventual result. Valid independently of cache eviction.
  class Handle {
   public:
    Handle() = default;

    /// Blocks until the composition finishes; rethrows if it threw.
    const CompositionResult& Wait() const { return *future_.get(); }
    /// Shared ownership of the result (blocks like Wait).
    ResultPtr Result() const { return future_.get(); }
    /// True once the result is available without blocking.
    bool Ready() const {
      return future_.wait_for(std::chrono::seconds(0)) ==
             std::future_status::ready;
    }
    /// True when Submit answered from the cache (ready or in flight)
    /// rather than starting a new computation.
    bool cache_hit() const { return cache_hit_; }

   private:
    friend class ComposeService;
    std::shared_future<ResultPtr> future_;
    bool cache_hit_ = false;
  };

  explicit ComposeService(ComposeServiceOptions options = {});
  /// Blocks until every in-flight computation has finished.
  ~ComposeService();

  ComposeService(const ComposeService&) = delete;
  ComposeService& operator=(const ComposeService&) = delete;

  /// Enqueues the problem (or joins/serves a cached computation) under the
  /// service's default ComposeOptions. Never blocks on composition work.
  Handle Submit(CompositionProblem problem);

  /// Same, but composes under `options` instead of the service default.
  /// Cache entries are keyed by (options fingerprint, problem fingerprint),
  /// so the same problem submitted under different options is computed and
  /// cached per variant — never served stale across option sets (a mutated
  /// registry counts as a new variant via its state uid). A preset
  /// `options.eliminate.keys` signature is copied into the computation, so
  /// it may die the moment Submit returns; a non-default
  /// `options.eliminate.registry` is borrowed and must outlive the
  /// computation (registries are long-lived by design).
  Handle Submit(CompositionProblem problem, const ComposeOptions& options);

  ServiceStats Stats() const;

 private:
  struct CacheEntry {
    std::shared_future<ResultPtr> future;
    std::list<std::string>::iterator lru_it;
    /// Distinguishes this entry from a later one under the same key (the
    /// original may be evicted and the key recomputed while the original
    /// computation is still running).
    uint64_t id = 0;
  };

  void RecordCompletion(const CompositionResult* result);
  void ReleaseOutstanding();
  /// Drops the cache entry `key` if it still is the one created with
  /// `id` — called when a computation throws, so the failure is handed to
  /// the waiting handles but never served to future submitters.
  void EvictFailed(const std::string& key, uint64_t id);

  const ComposeServiceOptions options_;
  mutable std::mutex mu_;
  std::condition_variable idle_;
  ServiceStats stats_;
  int64_t outstanding_ = 0;  ///< tasks submitted to the pool, not finished
  uint64_t next_entry_id_ = 0;
  /// LRU order, most recent first; `cache_` values point into it.
  std::list<std::string> lru_;
  std::unordered_map<std::string, CacheEntry> cache_;
};

}  // namespace runtime
}  // namespace mapcomp

#endif  // MAPCOMP_RUNTIME_COMPOSE_SERVICE_H_
