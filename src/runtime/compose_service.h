#ifndef MAPCOMP_RUNTIME_COMPOSE_SERVICE_H_
#define MAPCOMP_RUNTIME_COMPOSE_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <iostream>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/common/cancel.h"
#include "src/compose/compose.h"
#include "src/runtime/served_result.h"
#include "src/serve/serve_types.h"

namespace mapcomp {
namespace runtime {

/// Point-in-time counters of a ComposeService. Wave fields aggregate the
/// scheduler behavior of every composition the service completed; chain
/// fields aggregate the prefix-cache behavior of every ChainComposer
/// attached to this service.
struct ServiceStats {
  uint64_t hits = 0;        ///< Submits answered by the cache (incl. joining
                            ///< a computation already in flight and
                            ///< TryServeCached probe hits)
  uint64_t misses = 0;      ///< Submits that started a computation
  uint64_t evictions = 0;   ///< cache entries dropped by the LRU bounds
  int64_t in_flight = 0;    ///< computations started but not yet finished
  uint64_t completed = 0;   ///< computations finished
  uint64_t failed = 0;      ///< computations that finished with an error
  /// Submissions whose interest was withdrawn before their computation
  /// finished: an explicit Handle::Cancel, a handle abandoned (every copy
  /// destroyed) while the work was still in flight, a Submit whose deadline
  /// had already expired, or a computation that finished interrupted by its
  /// deadline with nobody having cancelled explicitly. Counted per
  /// submission, so the serving tier's invariant `cancelled >= timeouts`
  /// holds even when timed-out requests had joined a shared computation.
  uint64_t cancelled = 0;
  uint64_t cache_entries = 0;  ///< entries currently cached
  uint64_t cache_bytes = 0;    ///< ApproxBytes of completed cached entries
  uint64_t cache_bytes_peak = 0;  ///< high-water mark of cache_bytes
  uint64_t waves_executed = 0; ///< scheduler waves across completed results
  int max_wave_width = 0;      ///< widest elimination wave observed
  /// Chain-composition prefix cache traffic (ChainComposer reports here):
  /// a hit is one cached prefix composition reused during a chain walk, a
  /// miss is one suffix composition that had to run.
  uint64_t chain_prefix_hits = 0;
  uint64_t chain_prefix_misses = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
  double ChainPrefixHitRate() const {
    uint64_t total = chain_prefix_hits + chain_prefix_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(chain_prefix_hits) / total;
  }
  std::string ToString() const;
};

struct ComposeServiceOptions {
  /// Options applied to submissions that don't carry their own. The result
  /// cache is keyed by ComposeOptions::Fingerprint() *and*
  /// CompositionProblem::Fingerprint(), so one service can host
  /// mixed-options traffic (see ServeRequest::WithOptions) without serving
  /// a result computed under different options.
  ComposeOptions compose;
  /// Completed results retained, least-recently-submitted evicted first.
  /// 0 disables caching (every Submit computes).
  size_t cache_capacity = 128;
  /// Byte bound on cached entries (ServedResult::ApproxBytes sum). 0 =
  /// entries-only bound. When exceeded, least-recently-used entries are
  /// evicted until the sum fits — so capacity can be expressed the way a
  /// registry deployment sizes memory, not just as an entry count.
  size_t cache_bytes_capacity = 0;
};

/// The success-or-Status outcome of one served composition —
/// StatusOr<const ServedResult&>-shaped access. A failed computation
/// (Compose threw, e.g. on a pathological input) travels as a Status; it
/// never rethrows across the service boundary, so wire-facing callers can
/// map it onto serve::WireStatus and in-process callers onto Result<T>
/// plumbing. value()/operator* abort with a diagnostic when called on an
/// error, mirroring mapcomp::Result.
class ServedOutcome {
 public:
  using ResultPtr = std::shared_ptr<const ServedResult>;

  ServedOutcome() : status_(StatusCode::kInternal, "empty outcome") {}
  explicit ServedOutcome(ResultPtr result) : result_(std::move(result)) {}
  explicit ServedOutcome(Status status) : status_(std::move(status)) {}

  bool ok() const { return result_ != nullptr; }
  const Status& status() const { return status_; }

  /// Shared ownership of the result; null on error. Valid independently of
  /// cache eviction.
  const ResultPtr& shared() const { return result_; }

  const ServedResult& value() const {
    if (result_ == nullptr) {
      std::cerr << "ServedOutcome::value() on error: " << status_.ToString()
                << "\n";
      std::abort();
    }
    return *result_;
  }
  const ServedResult& operator*() const { return value(); }
  const ServedResult* operator->() const { return &value(); }

 private:
  ResultPtr result_;
  Status status_;
};

/// A long-lived composition server: clients Submit serve::ServeRequests
/// and get async handles; results are computed on the process-wide
/// GlobalPool() and memoized in an LRU cache keyed by the problem (and
/// options) fingerprint, so a hot problem is composed once and served from
/// memory afterwards. Concurrent submissions of the same problem join the
/// in-flight computation instead of duplicating it. Thread-safe; one
/// instance is meant to outlive many client requests, and
/// serve::ComposeServer puts this interface on a network socket.
///
/// Do not call Handle::Wait from inside a GlobalPool task: a worker
/// blocking on work that needs a worker can starve a small pool. Clients —
/// CLI loops, benchmark drivers, request threads — wait; pool tasks don't.
class ComposeService {
 public:
  using ResultPtr = std::shared_ptr<const ServedResult>;

  // Cancellation plumbing (defined in the .cc): one CancelPlumb per
  // computation, one Joiner per submission attached to it.
  struct CancelPlumb;
  struct Joiner;

  /// Async handle for one submission. Copyable; all copies share the same
  /// eventual outcome. Valid independently of cache eviction.
  ///
  /// Every submission registers *interest* in its computation. Interest is
  /// withdrawn by Cancel() or by destroying the last copy of the handle
  /// before the outcome is ready (abandonment); once every interested
  /// submission has withdrawn, the computation's cancel token fires and
  /// the compose pipeline unwinds at its next check point — no zombie
  /// lanes burning pool time for a result nobody will read. Waiting for
  /// (or observing) a ready outcome and then dropping the handle is NOT a
  /// cancellation.
  class Handle {
   public:
    Handle() = default;

    /// Blocks until the composition finishes. Never throws: a failed
    /// computation is a Status inside the outcome.
    const ServedOutcome& Wait() const { return future_.get(); }
    /// Shared ownership of the result (blocks like Wait); null when the
    /// computation failed.
    ResultPtr Result() const { return future_.get().shared(); }
    /// True once the outcome is available without blocking.
    bool Ready() const {
      return future_.wait_for(std::chrono::seconds(0)) ==
             std::future_status::ready;
    }
    /// Waits until the outcome is ready or `deadline` passes; true when
    /// ready. A false return does not cancel — pair with Cancel().
    bool WaitUntil(common::Deadline deadline) const {
      if (!deadline.has_deadline()) {
        future_.wait();
        return true;
      }
      return future_.wait_until(deadline.when()) == std::future_status::ready;
    }
    /// Withdraws this submission's interest in the computation (idempotent
    /// across all copies of this handle). The computation itself is only
    /// cancelled once no other submission still wants it — a dedup join
    /// cancelling its own timed-out request must not kill the shared work.
    /// Returns true when interest was withdrawn while the computation was
    /// still in flight (the submission is counted in
    /// ServiceStats::cancelled); false when the cancel lost the race
    /// against completion — nothing is counted, the handle stays valid,
    /// and Wait() returns the completed outcome. The return value is what
    /// lets the serving tier keep `cancelled >= timeouts` exact: a
    /// dispatcher whose cancel lost the race serves the landed result
    /// instead of claiming a timeout that cancelled nothing.
    bool Cancel() const;
    /// True when Submit answered from the cache (ready or in flight)
    /// rather than starting a new computation.
    bool cache_hit() const { return cache_hit_; }

   private:
    friend class ComposeService;
    std::shared_future<ServedOutcome> future_;
    std::shared_ptr<Joiner> joiner_;  // null for cache-probe / expired stubs
    bool cache_hit_ = false;
  };

  explicit ComposeService(ComposeServiceOptions options = {});
  /// Blocks until every in-flight computation has finished.
  ~ComposeService();

  ComposeService(const ComposeService&) = delete;
  ComposeService& operator=(const ComposeService&) = delete;

  /// The one submission entry point: enqueues the request's problem (or
  /// joins/serves a cached computation) under the request's options when
  /// it carries them, the service default otherwise. Never blocks on
  /// composition work. Cache entries are keyed by (options fingerprint,
  /// problem fingerprint), so the same problem submitted under different
  /// options is computed and cached per variant — never served stale
  /// across option sets (a mutated registry counts as a new variant via
  /// its state uid). A preset options.eliminate.keys signature is copied
  /// into the computation, so it may die the moment Submit returns; a
  /// non-default options.eliminate.registry is borrowed and must outlive
  /// the computation (registries are long-lived by design).
  Handle Submit(serve::ServeRequest request);

  /// Submit with an end-to-end deadline: the computation runs under a
  /// cancel token that fires when `deadline` passes, so it unwinds
  /// cooperatively instead of computing a result nobody can use. An
  /// already-expired deadline short-circuits: the handle comes back ready
  /// with kDeadlineExceeded, nothing is queued, cached, or counted as a
  /// miss — only ServiceStats::cancelled grows. A submission that joins a
  /// computation already in flight adopts that computation's deadline (its
  /// own is still enforceable by the caller via WaitUntil + Cancel). A
  /// request carrying its own ComposeOptions cancel token keeps that
  /// token's cancel source and runs under the *earlier* of the two
  /// deadlines; such a computation is beyond Handle::Cancel's reach — the
  /// caller owns its source.
  Handle Submit(serve::ServeRequest request, common::Deadline deadline);

  /// Deprecated shim: wraps the problem in a ServeRequest under the
  /// service's default options. Prefer Submit(serve::ServeRequest).
  Handle Submit(CompositionProblem problem) {
    return Submit(serve::ServeRequest::Of(std::move(problem)));
  }

  /// Deprecated shim: wraps problem + options in a ServeRequest. Prefer
  /// Submit(serve::ServeRequest).
  Handle Submit(CompositionProblem problem, const ComposeOptions& options) {
    return Submit(
        serve::ServeRequest::WithOptions(std::move(problem), options));
  }

  /// Admission probe for the serving tier: returns the completed cached
  /// result for this request, or null when the entry is absent, still in
  /// flight, or failed. A hit touches the LRU and counts as a cache hit —
  /// it is a full serve, minus the queue. Never blocks, never computes:
  /// this is what lets serve::ComposeServer answer hot traffic without
  /// admitting it through the bounded queue.
  ResultPtr TryServeCached(const serve::ServeRequest& request);

  /// The service's default ComposeOptions (what an option-less request
  /// composes under).
  const ComposeOptions& default_options() const { return options_.compose; }

  /// Folds one chain walk's prefix-cache outcome into the service stats —
  /// ChainComposer calls this so `--serve-demo`-style observability covers
  /// chain traffic too.
  void RecordChainPrefixes(uint64_t hits, uint64_t misses);

  ServiceStats Stats() const;

 private:
  struct CacheEntry {
    std::shared_future<ServedOutcome> future;
    std::list<std::string>::iterator lru_it;
    /// Joining submissions attach their interest here, so dedup joins
    /// share one computation-wide cancel decision.
    std::shared_ptr<CancelPlumb> plumb;
    /// Distinguishes this entry from a later one under the same key (the
    /// original may be evicted and the key recomputed while the original
    /// computation is still running).
    uint64_t id = 0;
    /// ApproxBytes of the completed entry; 0 while still in flight (the
    /// size is unknown until the result exists).
    size_t bytes = 0;
  };

  /// `interrupted` = the composition unwound on a fired cancel token; it
  /// counts as completed (never failed), and `extra_cancelled` carries the
  /// deadline-fired-with-no-explicit-cancel correction.
  void RecordCompletion(const CompositionResult* result, bool interrupted,
                        uint64_t extra_cancelled);
  /// One submission withdrew interest in a still-running computation.
  /// Called from CancelPlumb under its liveness fence (see the .cc).
  void BumpCancelled();
  void ReleaseOutstanding();
  /// Drops the cache entry `key` if it still is the one created with
  /// `id` — called when a computation fails, so the Status is handed to
  /// the waiting handles but never served to future submitters.
  void EvictFailed(const std::string& key, uint64_t id);
  /// Books `bytes` against the entry `key`/`id` once its computation
  /// finished, then enforces the byte bound.
  void RecordEntryBytes(const std::string& key, uint64_t id, size_t bytes);
  /// Evicts the LRU entry. Requires mu_ held and a non-empty cache.
  void EvictLruLocked();
  /// Evicts until both the entry and byte bounds hold. Requires mu_ held.
  void EnforceCapacityLocked();

  const ComposeServiceOptions options_;
  mutable std::mutex mu_;
  std::condition_variable idle_;
  ServiceStats stats_;
  int64_t outstanding_ = 0;  ///< tasks submitted to the pool, not finished
  uint64_t next_entry_id_ = 0;
  /// LRU order, most recent first; `cache_` values point into it.
  std::list<std::string> lru_;
  std::unordered_map<std::string, CacheEntry> cache_;
};

}  // namespace runtime
}  // namespace mapcomp

#endif  // MAPCOMP_RUNTIME_COMPOSE_SERVICE_H_
