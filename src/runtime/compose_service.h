#ifndef MAPCOMP_RUNTIME_COMPOSE_SERVICE_H_
#define MAPCOMP_RUNTIME_COMPOSE_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <iostream>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/compose/compose.h"
#include "src/runtime/served_result.h"
#include "src/serve/serve_types.h"

namespace mapcomp {
namespace runtime {

/// Point-in-time counters of a ComposeService. Wave fields aggregate the
/// scheduler behavior of every composition the service completed; chain
/// fields aggregate the prefix-cache behavior of every ChainComposer
/// attached to this service.
struct ServiceStats {
  uint64_t hits = 0;        ///< Submits answered by the cache (incl. joining
                            ///< a computation already in flight and
                            ///< TryServeCached probe hits)
  uint64_t misses = 0;      ///< Submits that started a computation
  uint64_t evictions = 0;   ///< cache entries dropped by the LRU bounds
  int64_t in_flight = 0;    ///< computations started but not yet finished
  uint64_t completed = 0;   ///< computations finished
  uint64_t failed = 0;      ///< computations that finished with an error
  uint64_t cache_entries = 0;  ///< entries currently cached
  uint64_t cache_bytes = 0;    ///< ApproxBytes of completed cached entries
  uint64_t cache_bytes_peak = 0;  ///< high-water mark of cache_bytes
  uint64_t waves_executed = 0; ///< scheduler waves across completed results
  int max_wave_width = 0;      ///< widest elimination wave observed
  /// Chain-composition prefix cache traffic (ChainComposer reports here):
  /// a hit is one cached prefix composition reused during a chain walk, a
  /// miss is one suffix composition that had to run.
  uint64_t chain_prefix_hits = 0;
  uint64_t chain_prefix_misses = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
  double ChainPrefixHitRate() const {
    uint64_t total = chain_prefix_hits + chain_prefix_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(chain_prefix_hits) / total;
  }
  std::string ToString() const;
};

struct ComposeServiceOptions {
  /// Options applied to submissions that don't carry their own. The result
  /// cache is keyed by ComposeOptions::Fingerprint() *and*
  /// CompositionProblem::Fingerprint(), so one service can host
  /// mixed-options traffic (see ServeRequest::WithOptions) without serving
  /// a result computed under different options.
  ComposeOptions compose;
  /// Completed results retained, least-recently-submitted evicted first.
  /// 0 disables caching (every Submit computes).
  size_t cache_capacity = 128;
  /// Byte bound on cached entries (ServedResult::ApproxBytes sum). 0 =
  /// entries-only bound. When exceeded, least-recently-used entries are
  /// evicted until the sum fits — so capacity can be expressed the way a
  /// registry deployment sizes memory, not just as an entry count.
  size_t cache_bytes_capacity = 0;
};

/// The success-or-Status outcome of one served composition —
/// StatusOr<const ServedResult&>-shaped access. A failed computation
/// (Compose threw, e.g. on a pathological input) travels as a Status; it
/// never rethrows across the service boundary, so wire-facing callers can
/// map it onto serve::WireStatus and in-process callers onto Result<T>
/// plumbing. value()/operator* abort with a diagnostic when called on an
/// error, mirroring mapcomp::Result.
class ServedOutcome {
 public:
  using ResultPtr = std::shared_ptr<const ServedResult>;

  ServedOutcome() : status_(StatusCode::kInternal, "empty outcome") {}
  explicit ServedOutcome(ResultPtr result) : result_(std::move(result)) {}
  explicit ServedOutcome(Status status) : status_(std::move(status)) {}

  bool ok() const { return result_ != nullptr; }
  const Status& status() const { return status_; }

  /// Shared ownership of the result; null on error. Valid independently of
  /// cache eviction.
  const ResultPtr& shared() const { return result_; }

  const ServedResult& value() const {
    if (result_ == nullptr) {
      std::cerr << "ServedOutcome::value() on error: " << status_.ToString()
                << "\n";
      std::abort();
    }
    return *result_;
  }
  const ServedResult& operator*() const { return value(); }
  const ServedResult* operator->() const { return &value(); }

 private:
  ResultPtr result_;
  Status status_;
};

/// A long-lived composition server: clients Submit serve::ServeRequests
/// and get async handles; results are computed on the process-wide
/// GlobalPool() and memoized in an LRU cache keyed by the problem (and
/// options) fingerprint, so a hot problem is composed once and served from
/// memory afterwards. Concurrent submissions of the same problem join the
/// in-flight computation instead of duplicating it. Thread-safe; one
/// instance is meant to outlive many client requests, and
/// serve::ComposeServer puts this interface on a network socket.
///
/// Do not call Handle::Wait from inside a GlobalPool task: a worker
/// blocking on work that needs a worker can starve a small pool. Clients —
/// CLI loops, benchmark drivers, request threads — wait; pool tasks don't.
class ComposeService {
 public:
  using ResultPtr = std::shared_ptr<const ServedResult>;

  /// Async handle for one submission. Copyable; all copies share the same
  /// eventual outcome. Valid independently of cache eviction.
  class Handle {
   public:
    Handle() = default;

    /// Blocks until the composition finishes. Never throws: a failed
    /// computation is a Status inside the outcome.
    const ServedOutcome& Wait() const { return future_.get(); }
    /// Shared ownership of the result (blocks like Wait); null when the
    /// computation failed.
    ResultPtr Result() const { return future_.get().shared(); }
    /// True once the outcome is available without blocking.
    bool Ready() const {
      return future_.wait_for(std::chrono::seconds(0)) ==
             std::future_status::ready;
    }
    /// True when Submit answered from the cache (ready or in flight)
    /// rather than starting a new computation.
    bool cache_hit() const { return cache_hit_; }

   private:
    friend class ComposeService;
    std::shared_future<ServedOutcome> future_;
    bool cache_hit_ = false;
  };

  explicit ComposeService(ComposeServiceOptions options = {});
  /// Blocks until every in-flight computation has finished.
  ~ComposeService();

  ComposeService(const ComposeService&) = delete;
  ComposeService& operator=(const ComposeService&) = delete;

  /// The one submission entry point: enqueues the request's problem (or
  /// joins/serves a cached computation) under the request's options when
  /// it carries them, the service default otherwise. Never blocks on
  /// composition work. Cache entries are keyed by (options fingerprint,
  /// problem fingerprint), so the same problem submitted under different
  /// options is computed and cached per variant — never served stale
  /// across option sets (a mutated registry counts as a new variant via
  /// its state uid). A preset options.eliminate.keys signature is copied
  /// into the computation, so it may die the moment Submit returns; a
  /// non-default options.eliminate.registry is borrowed and must outlive
  /// the computation (registries are long-lived by design).
  Handle Submit(serve::ServeRequest request);

  /// Deprecated shim: wraps the problem in a ServeRequest under the
  /// service's default options. Prefer Submit(serve::ServeRequest).
  Handle Submit(CompositionProblem problem) {
    return Submit(serve::ServeRequest::Of(std::move(problem)));
  }

  /// Deprecated shim: wraps problem + options in a ServeRequest. Prefer
  /// Submit(serve::ServeRequest).
  Handle Submit(CompositionProblem problem, const ComposeOptions& options) {
    return Submit(
        serve::ServeRequest::WithOptions(std::move(problem), options));
  }

  /// Admission probe for the serving tier: returns the completed cached
  /// result for this request, or null when the entry is absent, still in
  /// flight, or failed. A hit touches the LRU and counts as a cache hit —
  /// it is a full serve, minus the queue. Never blocks, never computes:
  /// this is what lets serve::ComposeServer answer hot traffic without
  /// admitting it through the bounded queue.
  ResultPtr TryServeCached(const serve::ServeRequest& request);

  /// The service's default ComposeOptions (what an option-less request
  /// composes under).
  const ComposeOptions& default_options() const { return options_.compose; }

  /// Folds one chain walk's prefix-cache outcome into the service stats —
  /// ChainComposer calls this so `--serve-demo`-style observability covers
  /// chain traffic too.
  void RecordChainPrefixes(uint64_t hits, uint64_t misses);

  ServiceStats Stats() const;

 private:
  struct CacheEntry {
    std::shared_future<ServedOutcome> future;
    std::list<std::string>::iterator lru_it;
    /// Distinguishes this entry from a later one under the same key (the
    /// original may be evicted and the key recomputed while the original
    /// computation is still running).
    uint64_t id = 0;
    /// ApproxBytes of the completed entry; 0 while still in flight (the
    /// size is unknown until the result exists).
    size_t bytes = 0;
  };

  void RecordCompletion(const CompositionResult* result);
  void ReleaseOutstanding();
  /// Drops the cache entry `key` if it still is the one created with
  /// `id` — called when a computation fails, so the Status is handed to
  /// the waiting handles but never served to future submitters.
  void EvictFailed(const std::string& key, uint64_t id);
  /// Books `bytes` against the entry `key`/`id` once its computation
  /// finished, then enforces the byte bound.
  void RecordEntryBytes(const std::string& key, uint64_t id, size_t bytes);
  /// Evicts the LRU entry. Requires mu_ held and a non-empty cache.
  void EvictLruLocked();
  /// Evicts until both the entry and byte bounds hold. Requires mu_ held.
  void EnforceCapacityLocked();

  const ComposeServiceOptions options_;
  mutable std::mutex mu_;
  std::condition_variable idle_;
  ServiceStats stats_;
  int64_t outstanding_ = 0;  ///< tasks submitted to the pool, not finished
  uint64_t next_entry_id_ = 0;
  /// LRU order, most recent first; `cache_` values point into it.
  std::list<std::string> lru_;
  std::unordered_map<std::string, CacheEntry> cache_;
};

}  // namespace runtime
}  // namespace mapcomp

#endif  // MAPCOMP_RUNTIME_COMPOSE_SERVICE_H_
