#ifndef MAPCOMP_RUNTIME_COMPOSE_SERVICE_H_
#define MAPCOMP_RUNTIME_COMPOSE_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/compose/compose.h"

namespace mapcomp {
namespace runtime {

/// What the service caches and serves: the composition's *answer* —
/// constraints, residuals, warnings, counts — plus the full
/// CompositionResult::Fingerprint() precomputed at completion time. The
/// per-attempt SymbolStats, per-round RoundStats and wall-clock timings of
/// the underlying CompositionResult are deliberately dropped: at
/// schema-registry scale (thousands of chains × dozens of prefixes) whole
/// results would dominate cache memory with diagnostics nobody re-reads,
/// while the slim entry is what every consumer — chain composition, the
/// CLI, correctness gates — actually needs. A hit and a miss serve the
/// same shape, and Fingerprint() equality with a direct Compose() still
/// holds because the string was recorded before slimming.
struct ServedResult {
  Signature sigma;  ///< σ1 ∪ residual σ2 ∪ σ3
  std::vector<std::string> residual_sigma2;
  ConstraintSet constraints;
  std::vector<std::string> warnings;
  int eliminated_count = 0;  ///< distinct σ2 symbols eliminated
  int total_count = 0;       ///< distinct σ2 symbols attempted

  /// The full CompositionResult::Fingerprint() of the computation that
  /// produced this entry (stats and rounds included), recorded before the
  /// payload was slimmed — so warm and cold serving are byte-comparable
  /// against direct composition.
  const std::string& Fingerprint() const { return fingerprint; }

  /// Short human summary (counts, residuals, warnings) — the slim analog
  /// of CompositionResult::Report(); per-symbol attempt detail is not
  /// retained in the cache.
  std::string Report() const;

  /// Estimated resident bytes of this entry: strings, name tables, and
  /// per-constraint overhead. Interned expression nodes are shared
  /// process-wide and counted once per constraint reference, not deep —
  /// this is the accounting unit of ServiceStats::cache_bytes and the
  /// byte-capacity eviction bound.
  size_t ApproxBytes() const;

  /// Built by the service from a freshly computed full result.
  static ServedResult FromResult(const CompositionResult& result);

  std::string fingerprint;
};

/// Point-in-time counters of a ComposeService. Wave fields aggregate the
/// scheduler behavior of every composition the service completed; chain
/// fields aggregate the prefix-cache behavior of every ChainComposer
/// attached to this service.
struct ServiceStats {
  uint64_t hits = 0;        ///< Submits answered by the cache (incl. joining
                            ///< a computation already in flight)
  uint64_t misses = 0;      ///< Submits that started a computation
  uint64_t evictions = 0;   ///< cache entries dropped by the LRU bounds
  int64_t in_flight = 0;    ///< computations started but not yet finished
  uint64_t completed = 0;   ///< computations finished
  uint64_t cache_entries = 0;  ///< entries currently cached
  uint64_t cache_bytes = 0;    ///< ApproxBytes of completed cached entries
  uint64_t cache_bytes_peak = 0;  ///< high-water mark of cache_bytes
  uint64_t waves_executed = 0; ///< scheduler waves across completed results
  int max_wave_width = 0;      ///< widest elimination wave observed
  /// Chain-composition prefix cache traffic (ChainComposer reports here):
  /// a hit is one cached prefix composition reused during a chain walk, a
  /// miss is one suffix composition that had to run.
  uint64_t chain_prefix_hits = 0;
  uint64_t chain_prefix_misses = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
  double ChainPrefixHitRate() const {
    uint64_t total = chain_prefix_hits + chain_prefix_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(chain_prefix_hits) / total;
  }
  std::string ToString() const;
};

struct ComposeServiceOptions {
  /// Options applied to submissions that don't carry their own. The result
  /// cache is keyed by ComposeOptions::Fingerprint() *and*
  /// CompositionProblem::Fingerprint(), so one service can host
  /// mixed-options traffic (see the two-argument Submit) without serving a
  /// result computed under different options.
  ComposeOptions compose;
  /// Completed results retained, least-recently-submitted evicted first.
  /// 0 disables caching (every Submit computes).
  size_t cache_capacity = 128;
  /// Byte bound on cached entries (ServedResult::ApproxBytes sum). 0 =
  /// entries-only bound. When exceeded, least-recently-used entries are
  /// evicted until the sum fits — so capacity can be expressed the way a
  /// registry deployment sizes memory, not just as an entry count.
  size_t cache_bytes_capacity = 0;
};

/// A long-lived composition server: clients Submit CompositionProblems and
/// get async handles; results are computed on the process-wide GlobalPool()
/// and memoized in an LRU cache keyed by the problem fingerprint, so a hot
/// problem is composed once and served from memory afterwards. Concurrent
/// submissions of the same problem join the in-flight computation instead
/// of duplicating it. Thread-safe; one instance is meant to outlive many
/// client requests (the ROADMAP's serving path).
///
/// Do not call Handle::Wait from inside a GlobalPool task: a worker
/// blocking on work that needs a worker can starve a small pool. Clients —
/// CLI loops, benchmark drivers, request threads — wait; pool tasks don't.
class ComposeService {
 public:
  using ResultPtr = std::shared_ptr<const ServedResult>;

  /// Async handle for one submission. Copyable; all copies share the same
  /// eventual result. Valid independently of cache eviction.
  class Handle {
   public:
    Handle() = default;

    /// Blocks until the composition finishes; rethrows if it threw.
    const ServedResult& Wait() const { return *future_.get(); }
    /// Shared ownership of the result (blocks like Wait).
    ResultPtr Result() const { return future_.get(); }
    /// True once the result is available without blocking.
    bool Ready() const {
      return future_.wait_for(std::chrono::seconds(0)) ==
             std::future_status::ready;
    }
    /// True when Submit answered from the cache (ready or in flight)
    /// rather than starting a new computation.
    bool cache_hit() const { return cache_hit_; }

   private:
    friend class ComposeService;
    std::shared_future<ResultPtr> future_;
    bool cache_hit_ = false;
  };

  explicit ComposeService(ComposeServiceOptions options = {});
  /// Blocks until every in-flight computation has finished.
  ~ComposeService();

  ComposeService(const ComposeService&) = delete;
  ComposeService& operator=(const ComposeService&) = delete;

  /// Enqueues the problem (or joins/serves a cached computation) under the
  /// service's default ComposeOptions. Never blocks on composition work.
  Handle Submit(CompositionProblem problem);

  /// Same, but composes under `options` instead of the service default.
  /// Cache entries are keyed by (options fingerprint, problem fingerprint),
  /// so the same problem submitted under different options is computed and
  /// cached per variant — never served stale across option sets (a mutated
  /// registry counts as a new variant via its state uid). A preset
  /// `options.eliminate.keys` signature is copied into the computation, so
  /// it may die the moment Submit returns; a non-default
  /// `options.eliminate.registry` is borrowed and must outlive the
  /// computation (registries are long-lived by design).
  Handle Submit(CompositionProblem problem, const ComposeOptions& options);

  /// The service's default ComposeOptions (what the one-argument Submit
  /// composes under).
  const ComposeOptions& default_options() const { return options_.compose; }

  /// Folds one chain walk's prefix-cache outcome into the service stats —
  /// ChainComposer calls this so `--serve-demo`-style observability covers
  /// chain traffic too.
  void RecordChainPrefixes(uint64_t hits, uint64_t misses);

  ServiceStats Stats() const;

 private:
  struct CacheEntry {
    std::shared_future<ResultPtr> future;
    std::list<std::string>::iterator lru_it;
    /// Distinguishes this entry from a later one under the same key (the
    /// original may be evicted and the key recomputed while the original
    /// computation is still running).
    uint64_t id = 0;
    /// ApproxBytes of the completed entry; 0 while still in flight (the
    /// size is unknown until the result exists).
    size_t bytes = 0;
  };

  void RecordCompletion(const CompositionResult* result);
  void ReleaseOutstanding();
  /// Drops the cache entry `key` if it still is the one created with
  /// `id` — called when a computation throws, so the failure is handed to
  /// the waiting handles but never served to future submitters.
  void EvictFailed(const std::string& key, uint64_t id);
  /// Books `bytes` against the entry `key`/`id` once its computation
  /// finished, then enforces the byte bound.
  void RecordEntryBytes(const std::string& key, uint64_t id, size_t bytes);
  /// Evicts the LRU entry. Requires mu_ held and a non-empty cache.
  void EvictLruLocked();
  /// Evicts until both the entry and byte bounds hold. Requires mu_ held.
  void EnforceCapacityLocked();

  const ComposeServiceOptions options_;
  mutable std::mutex mu_;
  std::condition_variable idle_;
  ServiceStats stats_;
  int64_t outstanding_ = 0;  ///< tasks submitted to the pool, not finished
  uint64_t next_entry_id_ = 0;
  /// LRU order, most recent first; `cache_` values point into it.
  std::list<std::string> lru_;
  std::unordered_map<std::string, CacheEntry> cache_;
};

}  // namespace runtime
}  // namespace mapcomp

#endif  // MAPCOMP_RUNTIME_COMPOSE_SERVICE_H_
