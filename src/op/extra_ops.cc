#include "src/op/extra_ops.h"

#include "src/algebra/builders.h"
#include "src/op/registry.h"

namespace mapcomp {
namespace op {

const Value& NullValue() {
  static const Value* kNull = new Value(std::string("<null>"));
  return *kNull;
}

namespace {

Result<int> SameBinaryArity(const std::vector<int>& arities) {
  if (arities.size() != 2) return Status::InvalidArgument("needs 2 args");
  return arities[0] + arities[1];
}

Result<int> FirstArgArity(const std::vector<int>& arities) {
  if (arities.size() != 2) return Status::InvalidArgument("needs 2 args");
  return arities[0];
}

Result<int> BinaryRelationArity(const std::vector<int>& arities) {
  if (arities.size() != 1 || arities[0] != 2) {
    return Status::InvalidArgument("tc needs one binary argument");
  }
  return 2;
}

bool HasMatch(const Tuple& t1, const std::set<Tuple>& right,
              const Condition& c) {
  for (const Tuple& t2 : right) {
    Tuple joined = t1;
    joined.insert(joined.end(), t2.begin(), t2.end());
    if (c.Eval(joined)) return true;
  }
  return false;
}

OperatorDef LeftOuterJoinDef() {
  OperatorDef def;
  def.name = "lojoin";
  def.num_args = 2;
  def.arity = SameBinaryArity;
  // Paper §1.3: left outerjoin is monotone in its first argument but not in
  // its second (adding tuples to E2 may retract padded rows).
  def.polarity = {Polarity::kMonotone, Polarity::kUnknown};
  def.simplify = [](const ExprPtr& e) -> ExprPtr {
    // lojoin[c](∅, E2) = ∅.
    if (e->child(0)->kind() == ExprKind::kEmpty) return EmptyRel(e->arity());
    return nullptr;
  };
  def.eval = [](const Expr& e, const std::vector<const std::set<Tuple>*>& kids,
                const EvalContext&) -> Result<std::set<Tuple>> {
    std::set<Tuple> out;
    int r2 = e.child(1)->arity();
    for (const Tuple& t1 : (*kids[0])) {
      bool matched = false;
      for (const Tuple& t2 : (*kids[1])) {
        Tuple joined = t1;
        joined.insert(joined.end(), t2.begin(), t2.end());
        if (e.condition().Eval(joined)) {
          out.insert(std::move(joined));
          matched = true;
        }
      }
      if (!matched) {
        Tuple padded = t1;
        for (int i = 0; i < r2; ++i) padded.push_back(NullValue());
        out.insert(std::move(padded));
      }
    }
    return out;
  };
  return def;
}

OperatorDef SemiJoinDef() {
  OperatorDef def;
  def.name = "semijoin";
  def.num_args = 2;
  def.arity = FirstArgArity;
  def.polarity = {Polarity::kMonotone, Polarity::kMonotone};
  def.simplify = [](const ExprPtr& e) -> ExprPtr {
    if (e->child(0)->kind() == ExprKind::kEmpty ||
        e->child(1)->kind() == ExprKind::kEmpty) {
      return EmptyRel(e->arity());
    }
    return nullptr;
  };
  def.eval = [](const Expr& e, const std::vector<const std::set<Tuple>*>& kids,
                const EvalContext&) -> Result<std::set<Tuple>> {
    std::set<Tuple> out;
    for (const Tuple& t1 : (*kids[0])) {
      if (HasMatch(t1, (*kids[1]), e.condition())) out.insert(t1);
    }
    return out;
  };
  return def;
}

OperatorDef AntiJoinDef() {
  OperatorDef def;
  def.name = "antijoin";
  def.num_args = 2;
  def.arity = FirstArgArity;
  // Paper §1.3: anti-semijoin handled via monotone-in-first,
  // anti-monotone-in-second.
  def.polarity = {Polarity::kMonotone, Polarity::kAnti};
  def.simplify = [](const ExprPtr& e) -> ExprPtr {
    // antijoin[c](E1, ∅) = E1; antijoin[c](∅, E2) = ∅.
    if (e->child(1)->kind() == ExprKind::kEmpty) return e->child(0);
    if (e->child(0)->kind() == ExprKind::kEmpty) return EmptyRel(e->arity());
    return nullptr;
  };
  def.eval = [](const Expr& e, const std::vector<const std::set<Tuple>*>& kids,
                const EvalContext&) -> Result<std::set<Tuple>> {
    std::set<Tuple> out;
    for (const Tuple& t1 : (*kids[0])) {
      if (!HasMatch(t1, (*kids[1]), e.condition())) out.insert(t1);
    }
    return out;
  };
  return def;
}

OperatorDef TransitiveClosureDef() {
  OperatorDef def;
  def.name = "tc";
  def.num_args = 1;
  def.arity = BinaryRelationArity;
  def.polarity = {Polarity::kMonotone};
  def.simplify = [](const ExprPtr& e) -> ExprPtr {
    if (e->child(0)->kind() == ExprKind::kEmpty) return EmptyRel(2);
    return nullptr;
  };
  def.eval = [](const Expr&, const std::vector<const std::set<Tuple>*>& kids,
                const EvalContext&) -> Result<std::set<Tuple>> {
    std::set<Tuple> closure = (*kids[0]);
    bool grew = true;
    while (grew) {
      grew = false;
      std::vector<Tuple> added;
      for (const Tuple& a : closure) {
        for (const Tuple& b : closure) {
          if (CompareValues(a[1], b[0]) == 0) {
            Tuple t{a[0], b[1]};
            if (closure.count(t) == 0) added.push_back(std::move(t));
          }
        }
      }
      for (Tuple& t : added) {
        closure.insert(std::move(t));
        grew = true;
      }
    }
    return closure;
  };
  return def;
}

}  // namespace

void RegisterExtraOps(Registry* registry) {
  // Registration failures here are programming errors (duplicate names);
  // surface loudly.
  for (OperatorDef def : {LeftOuterJoinDef(), SemiJoinDef(), AntiJoinDef(),
                          TransitiveClosureDef()}) {
    Status st = registry->Register(std::move(def));
    if (!st.ok()) {
      std::cerr << "RegisterExtraOps: " << st.ToString() << "\n";
      std::abort();
    }
  }
}

}  // namespace op
}  // namespace mapcomp
