#include "src/op/extra_ops.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/algebra/builders.h"
#include "src/eval/join.h"
#include "src/eval/tuple_table.h"
#include "src/eval/value_dict.h"
#include "src/op/registry.h"

namespace mapcomp {
namespace op {

const Value& NullValue() {
  static const Value* kNull = new Value(std::string("<null>"));
  return *kNull;
}

namespace {

using eval_internal::CompiledCond;
using eval_internal::JoinPlan;
using eval_internal::PlanJoin;

Result<int> SameBinaryArity(const std::vector<int>& arities) {
  if (arities.size() != 2) return Status::InvalidArgument("needs 2 args");
  return arities[0] + arities[1];
}

Result<int> FirstArgArity(const std::vector<int>& arities) {
  if (arities.size() != 2) return Status::InvalidArgument("needs 2 args");
  return arities[0];
}

Result<int> BinaryRelationArity(const std::vector<int>& arities) {
  if (arities.size() != 1 || arities[0] != 2) {
    return Status::InvalidArgument("tc needs one binary argument");
  }
  return 2;
}

bool HasMatch(const Tuple& t1, const std::set<Tuple>& right,
              const Condition& c) {
  for (const Tuple& t2 : right) {
    Tuple joined = t1;
    joined.insert(joined.end(), t2.begin(), t2.end());
    if (c.Eval(joined)) return true;
  }
  return false;
}

// --------------------------------------------------------------------------
// Columnar join-family probe. The three binary ops share one build-once
// structure: the condition is decomposed by the evaluator's join planner
// (single-side conjuncts become pushed filters, cross-side equalities
// become keys, the rest a residual on concatenated rows), the right side
// is filtered once, and — when keys exist — its surviving rows are sorted
// by key columns so each left row probes a binary-searched equal range
// instead of scanning. Within one ValueDict id equality ⇔ value equality,
// so keys compare as raw integers.
// --------------------------------------------------------------------------

struct JoinProbe {
  const TupleTable* right = nullptr;
  const ValueDict* dict = nullptr;
  int la = 0, ra = 0;
  bool left_true = true, residual_true = true;
  CompiledCond left_cc, residual_cc;
  /// (left attr, right-local attr) pairs, 1-based (JoinPlan::keys).
  std::vector<std::pair<int, int>> keys;
  /// Right-row indexes passing the pushed right filter; key-sorted when
  /// `keys` is non-empty.
  std::vector<int64_t> rrows;

  bool LeftPasses(const ValueId* lrow) const {
    return left_true || left_cc.Eval(lrow, la, *dict);
  }
};

JoinProbe BuildProbe(const Expr& e, const TupleTable& left,
                     const TupleTable& right, ValueDict* dict) {
  JoinProbe p;
  p.right = &right;
  p.dict = dict;
  p.la = left.arity();
  p.ra = right.arity();
  JoinPlan plan = PlanJoin(e.condition(), p.la, p.ra);
  p.left_true = plan.left_filter.IsTrue();
  if (!p.left_true) p.left_cc = CompiledCond::Compile(plan.left_filter, dict);
  p.residual_true = plan.residual.IsTrue();
  if (!p.residual_true) {
    p.residual_cc = CompiledCond::Compile(plan.residual, dict);
  }
  p.keys = plan.keys;
  CompiledCond right_cc;
  bool right_true = plan.right_filter.IsTrue();
  if (!right_true) right_cc = CompiledCond::Compile(plan.right_filter, dict);
  p.rrows.reserve(static_cast<size_t>(right.size()));
  for (int64_t i = 0; i < right.size(); ++i) {
    if (right_true || right_cc.Eval(right.Row(i), p.ra, *dict)) {
      p.rrows.push_back(i);
    }
  }
  if (!p.keys.empty()) {
    const TupleTable* r = p.right;
    const std::vector<std::pair<int, int>>& keys = p.keys;
    std::sort(p.rrows.begin(), p.rrows.end(),
              [r, &keys](int64_t x, int64_t y) {
                const ValueId* rx = r->Row(x);
                const ValueId* ry = r->Row(y);
                for (const std::pair<int, int>& k : keys) {
                  ValueId a = rx[k.second - 1], b = ry[k.second - 1];
                  if (a != b) return a < b;
                }
                return x < y;  // stable on ties (any total order works)
              });
  }
  return p;
}

/// Three-way compare of right row `idx`'s key columns against the probe key
/// extracted from `lrow`.
int CmpKey(const JoinProbe& p, int64_t idx, const ValueId* lrow) {
  const ValueId* rrow = p.right->Row(idx);
  for (const std::pair<int, int>& k : p.keys) {
    ValueId r = rrow[k.second - 1];
    ValueId l = lrow[k.first - 1];
    if (r != l) return r < l ? -1 : 1;
  }
  return 0;
}

/// [lo, hi) range of p.rrows whose key columns equal lrow's.
std::pair<int64_t, int64_t> KeyRange(const JoinProbe& p, const ValueId* lrow) {
  int64_t n = static_cast<int64_t>(p.rrows.size());
  int64_t lo = 0, hi = n;
  while (lo < hi) {
    int64_t mid = lo + (hi - lo) / 2;
    if (CmpKey(p, p.rrows[mid], lrow) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  int64_t lo2 = lo, hi2 = n;
  while (lo2 < hi2) {
    int64_t mid = lo2 + (hi2 - lo2) / 2;
    if (CmpKey(p, p.rrows[mid], lrow) <= 0) {
      lo2 = mid + 1;
    } else {
      hi2 = mid;
    }
  }
  return {lo, lo2};
}

/// Calls `visit(right_row)` for every filtered right row matching `lrow`
/// under keys + residual; stops early when visit returns false. `combined`
/// is a caller-owned scratch row of la+ra ids with lrow already in place.
template <typename Visit>
void ForEachMatch(const JoinProbe& p, const ValueId* lrow,
                  std::vector<ValueId>* combined, const Visit& visit) {
  auto test_and_visit = [&](int64_t ridx) {
    const ValueId* rrow = p.right->Row(ridx);
    if (!p.residual_true) {
      std::copy(rrow, rrow + p.ra, combined->begin() + p.la);
      if (!p.residual_cc.Eval(combined->data(), p.la + p.ra, *p.dict)) {
        return true;  // no match; keep going
      }
    }
    return visit(rrow);
  };
  if (!p.keys.empty()) {
    std::pair<int64_t, int64_t> range = KeyRange(p, lrow);
    for (int64_t m = range.first; m < range.second; ++m) {
      if (!test_and_visit(p.rrows[m])) return;
    }
    return;
  }
  for (int64_t ridx : p.rrows) {
    if (!test_and_visit(ridx)) return;
  }
}

bool HasColumnarMatch(const JoinProbe& p, const ValueId* lrow,
                      std::vector<ValueId>* combined) {
  bool found = false;
  ForEachMatch(p, lrow, combined, [&found](const ValueId*) {
    found = true;
    return false;  // one witness suffices
  });
  return found;
}

// --------------------------------------------------------------------------
// Operator definitions. Each registers the columnar kernel AND the
// original set-based evaluator (the kernel's differential oracle).
// --------------------------------------------------------------------------

OperatorDef LeftOuterJoinDef() {
  OperatorDef def;
  def.name = "lojoin";
  def.num_args = 2;
  def.arity = SameBinaryArity;
  // Paper §1.3: left outerjoin is monotone in its first argument but not in
  // its second (adding tuples to E2 may retract padded rows).
  def.polarity = {Polarity::kMonotone, Polarity::kUnknown};
  def.simplify = [](const ExprPtr& e) -> ExprPtr {
    // lojoin[c](∅, E2) = ∅.
    if (e->child(0)->kind() == ExprKind::kEmpty) return EmptyRel(e->arity());
    return nullptr;
  };
  def.eval = [](const Expr& e, const std::vector<const std::set<Tuple>*>& kids,
                const EvalContext&) -> Result<std::set<Tuple>> {
    std::set<Tuple> out;
    int r2 = e.child(1)->arity();
    for (const Tuple& t1 : (*kids[0])) {
      bool matched = false;
      for (const Tuple& t2 : (*kids[1])) {
        Tuple joined = t1;
        joined.insert(joined.end(), t2.begin(), t2.end());
        if (e.condition().Eval(joined)) {
          out.insert(std::move(joined));
          matched = true;
        }
      }
      if (!matched) {
        Tuple padded = t1;
        for (int i = 0; i < r2; ++i) padded.push_back(NullValue());
        out.insert(std::move(padded));
      }
    }
    return out;
  };
  def.eval_columnar =
      [](const Expr& e, const std::vector<const TupleTable*>& kids,
         const ColumnarContext& ctx) -> Result<TupleTable> {
    const TupleTable& left = *kids[0];
    const TupleTable& right = *kids[1];
    JoinProbe p = BuildProbe(e, left, right, ctx.dict);
    // The pad value is interned once up front; within the seeded range it
    // reuses the seeded id, otherwise it is minted (id order then differs
    // from value order, which the canonicalizing surfaces absorb).
    const ValueId pad = ctx.dict->Intern(NullValue());
    const int la = p.la, ra = p.ra;
    TupleTable out(la + ra);
    std::vector<ValueId>& data = out.MutableData();
    std::vector<ValueId> combined(static_cast<size_t>(la + ra));
    for (int64_t i = 0; i < left.size(); ++i) {
      const ValueId* lrow = left.Row(i);
      std::copy(lrow, lrow + la, combined.begin());
      bool matched = false;
      // A row failing its pushed-down filter matches no right row (the
      // filter is a conjunct of the condition) — it goes straight to pad.
      if (p.LeftPasses(lrow)) {
        ForEachMatch(p, lrow, &combined,
                     [&](const ValueId* rrow) {
                       data.insert(data.end(), lrow, lrow + la);
                       data.insert(data.end(), rrow, rrow + ra);
                       matched = true;
                       return true;  // emit every match
                     });
      }
      if (!matched) {
        data.insert(data.end(), lrow, lrow + la);
        data.insert(data.end(), static_cast<size_t>(ra), pad);
      }
    }
    out.FinishAppends();
    return out;
  };
  return def;
}

OperatorDef SemiJoinDef() {
  OperatorDef def;
  def.name = "semijoin";
  def.num_args = 2;
  def.arity = FirstArgArity;
  def.polarity = {Polarity::kMonotone, Polarity::kMonotone};
  def.simplify = [](const ExprPtr& e) -> ExprPtr {
    if (e->child(0)->kind() == ExprKind::kEmpty ||
        e->child(1)->kind() == ExprKind::kEmpty) {
      return EmptyRel(e->arity());
    }
    return nullptr;
  };
  def.eval = [](const Expr& e, const std::vector<const std::set<Tuple>*>& kids,
                const EvalContext&) -> Result<std::set<Tuple>> {
    std::set<Tuple> out;
    for (const Tuple& t1 : (*kids[0])) {
      if (HasMatch(t1, (*kids[1]), e.condition())) out.insert(t1);
    }
    return out;
  };
  def.eval_columnar =
      [](const Expr& e, const std::vector<const TupleTable*>& kids,
         const ColumnarContext& ctx) -> Result<TupleTable> {
    const TupleTable& left = *kids[0];
    JoinProbe p = BuildProbe(e, left, *kids[1], ctx.dict);
    TupleTable out(p.la);
    std::vector<ValueId> combined(static_cast<size_t>(p.la + p.ra));
    for (int64_t i = 0; i < left.size(); ++i) {
      const ValueId* lrow = left.Row(i);
      if (!p.LeftPasses(lrow)) continue;
      std::copy(lrow, lrow + p.la, combined.begin());
      if (HasColumnarMatch(p, lrow, &combined)) out.AppendRow(lrow);
    }
    return out;  // subset of the sorted unique left rows
  };
  return def;
}

OperatorDef AntiJoinDef() {
  OperatorDef def;
  def.name = "antijoin";
  def.num_args = 2;
  def.arity = FirstArgArity;
  // Paper §1.3: anti-semijoin handled via monotone-in-first,
  // anti-monotone-in-second.
  def.polarity = {Polarity::kMonotone, Polarity::kAnti};
  def.simplify = [](const ExprPtr& e) -> ExprPtr {
    // antijoin[c](E1, ∅) = E1; antijoin[c](∅, E2) = ∅.
    if (e->child(1)->kind() == ExprKind::kEmpty) return e->child(0);
    if (e->child(0)->kind() == ExprKind::kEmpty) return EmptyRel(e->arity());
    return nullptr;
  };
  def.eval = [](const Expr& e, const std::vector<const std::set<Tuple>*>& kids,
                const EvalContext&) -> Result<std::set<Tuple>> {
    std::set<Tuple> out;
    for (const Tuple& t1 : (*kids[0])) {
      if (!HasMatch(t1, (*kids[1]), e.condition())) out.insert(t1);
    }
    return out;
  };
  def.eval_columnar =
      [](const Expr& e, const std::vector<const TupleTable*>& kids,
         const ColumnarContext& ctx) -> Result<TupleTable> {
    const TupleTable& left = *kids[0];
    JoinProbe p = BuildProbe(e, left, *kids[1], ctx.dict);
    TupleTable out(p.la);
    std::vector<ValueId> combined(static_cast<size_t>(p.la + p.ra));
    for (int64_t i = 0; i < left.size(); ++i) {
      const ValueId* lrow = left.Row(i);
      // A row failing its pushed filter matches nothing, so it survives
      // the anti-join.
      if (p.LeftPasses(lrow)) {
        std::copy(lrow, lrow + p.la, combined.begin());
        if (HasColumnarMatch(p, lrow, &combined)) continue;
      }
      out.AppendRow(lrow);
    }
    return out;
  };
  return def;
}

OperatorDef TransitiveClosureDef() {
  OperatorDef def;
  def.name = "tc";
  def.num_args = 1;
  def.arity = BinaryRelationArity;
  def.polarity = {Polarity::kMonotone};
  def.simplify = [](const ExprPtr& e) -> ExprPtr {
    if (e->child(0)->kind() == ExprKind::kEmpty) return EmptyRel(2);
    return nullptr;
  };
  def.eval = [](const Expr&, const std::vector<const std::set<Tuple>*>& kids,
                const EvalContext&) -> Result<std::set<Tuple>> {
    std::set<Tuple> closure = (*kids[0]);
    bool grew = true;
    while (grew) {
      grew = false;
      std::vector<Tuple> added;
      for (const Tuple& a : closure) {
        for (const Tuple& b : closure) {
          if (CompareValues(a[1], b[0]) == 0) {
            Tuple t{a[0], b[1]};
            if (closure.count(t) == 0) added.push_back(std::move(t));
          }
        }
      }
      for (Tuple& t : added) {
        closure.insert(std::move(t));
        grew = true;
      }
    }
    return closure;
  };
  // Semi-naive delta fixpoint over packed ValueId pairs: round k extends
  // only the paths discovered in round k-1 by one base edge (equal-range
  // binary search over the sorted input table), instead of the naive
  // closure × closure rescan. Like the set-based oracle, the node's
  // condition is ignored.
  def.eval_columnar =
      [](const Expr&, const std::vector<const TupleTable*>& kids,
         const ColumnarContext&) -> Result<TupleTable> {
    const TupleTable& edges = *kids[0];
    TupleTable out(2);
    const int64_t n = edges.size();
    if (n == 0) return out;
    // First row whose source id is >= src (the table is sorted by row ids,
    // so rows sharing a source are contiguous).
    auto lower = [&edges, n](ValueId src) {
      int64_t lo = 0, hi = n;
      while (lo < hi) {
        int64_t mid = lo + (hi - lo) / 2;
        if (edges.Row(mid)[0] < src) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo;
    };
    auto pack = [](ValueId a, ValueId b) {
      return (static_cast<uint64_t>(a) << 32) | b;
    };
    std::unordered_set<uint64_t> seen;
    seen.reserve(static_cast<size_t>(n) * 4);
    std::vector<std::pair<ValueId, ValueId>> delta;
    delta.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      const ValueId* row = edges.Row(i);
      if (seen.insert(pack(row[0], row[1])).second) {
        delta.emplace_back(row[0], row[1]);
      }
    }
    std::vector<std::pair<ValueId, ValueId>> next;
    while (!delta.empty()) {
      next.clear();
      for (const std::pair<ValueId, ValueId>& path : delta) {
        for (int64_t j = lower(path.second);
             j < n && edges.Row(j)[0] == path.second; ++j) {
          ValueId c = edges.Row(j)[1];
          if (seen.insert(pack(path.first, c)).second) {
            next.emplace_back(path.first, c);
          }
        }
      }
      delta.swap(next);
    }
    std::vector<ValueId>& data = out.MutableData();
    data.reserve(seen.size() * 2);
    for (uint64_t pc : seen) {
      data.push_back(static_cast<ValueId>(pc >> 32));
      data.push_back(static_cast<ValueId>(pc & 0xffffffffu));
    }
    out.FinishAppends();
    return out;  // hash order; the evaluator canonicalizes
  };
  return def;
}

void RegisterAll(Registry* registry, bool columnar) {
  // Registration failures here are programming errors (duplicate names);
  // surface loudly.
  for (OperatorDef def : {LeftOuterJoinDef(), SemiJoinDef(), AntiJoinDef(),
                          TransitiveClosureDef()}) {
    if (!columnar) def.eval_columnar = nullptr;
    Status st = registry->Register(std::move(def));
    if (!st.ok()) {
      std::cerr << "RegisterExtraOps: " << st.ToString() << "\n";
      std::abort();
    }
  }
}

}  // namespace

void RegisterExtraOps(Registry* registry) { RegisterAll(registry, true); }

void RegisterExtraOpsSetBased(Registry* registry) {
  RegisterAll(registry, false);
}

}  // namespace op
}  // namespace mapcomp
