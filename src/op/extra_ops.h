#ifndef MAPCOMP_OP_EXTRA_OPS_H_
#define MAPCOMP_OP_EXTRA_OPS_H_

#include "src/algebra/expr.h"
#include "src/algebra/value.h"

namespace mapcomp {
namespace op {

class Registry;

/// The padding value produced by left outerjoin for non-matching rows.
/// (The library uses set semantics; nulls are modeled as a distinguished
/// constant, which is sufficient for the algebraic identities we exercise.)
const Value& NullValue();

/// Registers the library's extension operators. These demonstrate the
/// paper's extensibility story (§1.3) and exercise the monotone/anti/unknown
/// polarity machinery of §3.3:
///
///   lojoin[c](E1,E2)    left outerjoin — monotone in E1, unknown in E2
///   semijoin[c](E1,E2)  — monotone in both arguments
///   antijoin[c](E1,E2)  — monotone in E1, anti-monotone in E2
///   tc(E)               transitive closure of a binary relation — monotone
///
/// lojoin/semijoin/antijoin carry their join condition in the node's
/// condition slot, interpreted over the concatenated attributes of E1,E2.
void RegisterExtraOps(Registry* registry);

}  // namespace op
}  // namespace mapcomp

#endif  // MAPCOMP_OP_EXTRA_OPS_H_
