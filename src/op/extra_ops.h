#ifndef MAPCOMP_OP_EXTRA_OPS_H_
#define MAPCOMP_OP_EXTRA_OPS_H_

#include "src/algebra/expr.h"
#include "src/algebra/value.h"

namespace mapcomp {
namespace op {

class Registry;

/// The padding value produced by left outerjoin for non-matching rows.
/// (The library uses set semantics; nulls are modeled as a distinguished
/// constant, which is sufficient for the algebraic identities we exercise.)
const Value& NullValue();

/// Registers the library's extension operators. These demonstrate the
/// paper's extensibility story (§1.3) and exercise the monotone/anti/unknown
/// polarity machinery of §3.3:
///
///   lojoin[c](E1,E2)    left outerjoin — monotone in E1, unknown in E2
///   semijoin[c](E1,E2)  — monotone in both arguments
///   antijoin[c](E1,E2)  — monotone in E1, anti-monotone in E2
///   tc(E)               transitive closure of a binary relation — monotone
///
/// lojoin/semijoin/antijoin carry their join condition in the node's
/// condition slot, interpreted over the concatenated attributes of E1,E2.
///
/// Every operator registers BOTH hooks: a columnar kernel (`eval_columnar`
/// — build-once key probes for the join family, a semi-naive delta
/// fixpoint over ValueId pairs for tc) and the original set-based `eval`,
/// kept as the differential oracle the kernel is fingerprint-gated
/// against.
void RegisterExtraOps(Registry* registry);

/// Registers the same four operators with ONLY the set-based `eval` hooks
/// — the pre-columnar behavior. Forces the evaluator's decode fallback on
/// every user op; tests and bench_eval use it as the legacy column /
/// differential oracle registry.
void RegisterExtraOpsSetBased(Registry* registry);

}  // namespace op
}  // namespace mapcomp

#endif  // MAPCOMP_OP_EXTRA_OPS_H_
