#ifndef MAPCOMP_OP_REGISTRY_H_
#define MAPCOMP_OP_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/algebra/expr.h"
#include "src/common/status.h"
#include "src/constraints/constraint.h"
#include "src/eval/tuple_table.h"

namespace mapcomp {

namespace eval_internal {
class CompiledCond;
}  // namespace eval_internal

namespace op {

/// Monotonicity of a user-defined operator in one of its arguments
/// (paper §3.3: to support user-defined operators in MONOTONE "we just need
/// to know the rules regarding the monotonicity of the operator").
enum class Polarity {
  kMonotone,  ///< adding tuples to the argument only adds output tuples
  kAnti,      ///< adding tuples to the argument only removes output tuples
  kUnknown,   ///< no information — MONOTONE returns 'u' through this argument
};

/// Evaluation context handed to set-based user-operator evaluators.
struct EvalContext {
  /// Active domain of the instance (plus the constraint set's constants).
  /// Built lazily by the kernel: an evaluation whose registry never runs a
  /// set-based evaluator never pays for this copy.
  const std::set<Value>* active_domain = nullptr;
};

/// Context handed to columnar user-operator kernels (eval_columnar).
struct ColumnarContext {
  /// The evaluation's interning dictionary. Child-table ids decode through
  /// it, and output values the operator invents (left-outerjoin pad values,
  /// closure terms) are minted with Intern() — safe mid-evaluation; minted
  /// ids land past the order-preserving range and every result surface
  /// re-canonicalizes by value.
  ValueDict* dict = nullptr;
  /// The node's condition compiled against `dict` (0-based columns,
  /// interned constants), evaluated over a concatenated child row. Kernels
  /// that decompose the raw condition themselves (e.g. into join keys via
  /// eval_internal::PlanJoin) read it from the node instead.
  const eval_internal::CompiledCond* cond = nullptr;
  /// Interned active domain + extra constants, ascending seeded ids — the
  /// columnar stand-in for EvalContext::active_domain, shared with the
  /// evaluator instead of copied per evaluation.
  const std::vector<ValueId>* domain_ids = nullptr;
};

/// A rewrite rule used during left/right normalization (§3.4.1, §3.5.1):
/// given a constraint whose relevant side has this operator on top and
/// contains the symbol being eliminated, return an equivalent list of
/// constraints that moves the symbol closer to isolation, or nullopt if the
/// rule does not apply.
using NormalizeRule = std::function<std::optional<std::vector<Constraint>>(
    const Constraint&, const std::string& symbol)>;

/// Everything the composition algorithm may want to know about an operator.
/// All hooks are optional; a missing hook degrades gracefully (the paper's
/// "tolerance for unknown or partially known operators").
struct OperatorDef {
  std::string name;
  int num_args = 1;
  /// Output arity from child arities.
  std::function<Result<int>(const std::vector<int>&)> arity;
  /// Per-argument monotonicity; must have num_args entries.
  std::vector<Polarity> polarity;
  /// Optional normalization rules.
  NormalizeRule left_rule;
  NormalizeRule right_rule;
  /// Optional D/∅/constant simplification; returns nullptr if no rewrite.
  std::function<ExprPtr(const ExprPtr&)> simplify;
  /// Optional set-semantics evaluator: receives the node and pointers to
  /// its evaluated children (borrowed — the DAG evaluator shares child
  /// results between parents and its memo table, so they are never copied
  /// into the callback).
  std::function<Result<std::set<Tuple>>(
      const Expr&, const std::vector<const std::set<Tuple>*>&,
      const EvalContext&)>
      eval;
  /// Optional columnar evaluator: borrowed child TupleTables in, one
  /// TupleTable out, no value decode anywhere. When present, the kernel
  /// prefers it over `eval` (which then serves as the set-based
  /// differential oracle / fallback). The returned table's rows need not
  /// be sorted or unique — the evaluator canonicalizes — but its arity
  /// must equal the node's (anything else is a clean InvalidArgument,
  /// mirroring the set path's FromSet guard).
  std::function<Result<TupleTable>(const Expr&,
                                   const std::vector<const TupleTable*>&,
                                   const ColumnarContext&)>
      eval_columnar;
};

/// Registry of user-defined operators. The composition algorithm is
/// parameterized by a registry, so adding an operator requires no changes to
/// the algorithm itself (paper §1.3 "Extensibility and modularity").
class Registry {
 public:
  /// Registry with the library's extension operators (left outerjoin,
  /// semijoin, antijoin, transitive closure) pre-registered.
  static const Registry& Default();
  /// Registry with no operators.
  static Registry Empty();

  Status Register(OperatorDef def);
  const OperatorDef* Find(const std::string& name) const;

  /// Builds a kUserOp node, computing its arity through the operator's
  /// arity rule and checking the argument count.
  Result<ExprPtr> MakeOp(const std::string& name, std::vector<ExprPtr> args,
                         Condition cond = Condition::True(),
                         std::vector<int> indexes = {}) const;

  /// Process-unique, never-reused identity of this registry *state*. Every
  /// construction — including copies, which may diverge afterwards — gets
  /// a fresh id, and every successful Register() bumps it, so caches keyed
  /// on it (ComposeOptions::Fingerprint) can never alias two different
  /// operator sets the way a reused pointer address or a mutated-in-place
  /// object can. Assignment refreshes the target's id too. Always the safe
  /// direction: at worst a spurious cache miss, never a stale hit.
  uint64_t uid() const { return uid_; }

  Registry(const Registry& other) : ops_(other.ops_) {}
  Registry(Registry&& other) noexcept : ops_(std::move(other.ops_)) {
    other.uid_ = NextUid();  // the gutted source is a new (empty) state
  }
  Registry& operator=(const Registry& other) {
    ops_ = other.ops_;
    uid_ = NextUid();
    return *this;
  }
  Registry& operator=(Registry&& other) noexcept {
    ops_ = std::move(other.ops_);
    uid_ = NextUid();
    other.uid_ = NextUid();
    return *this;
  }
  Registry() = default;

 private:
  static uint64_t NextUid();

  std::map<std::string, OperatorDef> ops_;
  uint64_t uid_ = NextUid();
};

}  // namespace op
}  // namespace mapcomp

#endif  // MAPCOMP_OP_REGISTRY_H_
