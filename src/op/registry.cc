#include "src/op/registry.h"

#include <atomic>

#include "src/algebra/builders.h"
#include "src/op/extra_ops.h"

namespace mapcomp {
namespace op {

uint64_t Registry::NextUid() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

const Registry& Registry::Default() {
  static const Registry* kDefault = [] {
    auto* r = new Registry();
    RegisterExtraOps(r);
    return r;
  }();
  return *kDefault;
}

Registry Registry::Empty() { return Registry(); }

Status Registry::Register(OperatorDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("operator name must be non-empty");
  }
  if (def.num_args < 1) {
    return Status::InvalidArgument("operator must take at least one argument");
  }
  if (!def.polarity.empty() &&
      static_cast<int>(def.polarity.size()) != def.num_args) {
    return Status::InvalidArgument(
        "polarity list size must match argument count for " + def.name);
  }
  if (def.polarity.empty()) {
    def.polarity.assign(def.num_args, Polarity::kUnknown);
  }
  if (ops_.count(def.name) > 0) {
    return Status::InvalidArgument("operator " + def.name +
                                   " already registered");
  }
  ops_.emplace(def.name, std::move(def));
  // The operator set changed: refresh the state id so fingerprints taken
  // before this mutation can never match ones taken after.
  uid_ = NextUid();
  return Status::OK();
}

const OperatorDef* Registry::Find(const std::string& name) const {
  auto it = ops_.find(name);
  return it == ops_.end() ? nullptr : &it->second;
}

Result<ExprPtr> Registry::MakeOp(const std::string& name,
                                 std::vector<ExprPtr> args, Condition cond,
                                 std::vector<int> indexes) const {
  const OperatorDef* def = Find(name);
  if (def == nullptr) {
    return Status::NotFound("operator " + name + " not registered");
  }
  if (static_cast<int>(args.size()) != def->num_args) {
    return Status::InvalidArgument(
        "operator " + name + " expects " + std::to_string(def->num_args) +
        " arguments, got " + std::to_string(args.size()));
  }
  std::vector<int> child_arities;
  child_arities.reserve(args.size());
  for (const ExprPtr& a : args) {
    if (a == nullptr) return Status::InvalidArgument("null operand");
    child_arities.push_back(a->arity());
  }
  if (!def->arity) {
    return Status::Internal("operator " + name + " has no arity rule");
  }
  MAPCOMP_ASSIGN_OR_RETURN(int arity, def->arity(child_arities));
  return UserOpExpr(name, std::move(args), arity, std::move(cond),
                    std::move(indexes));
}

}  // namespace op
}  // namespace mapcomp
