#include "src/compose/domain_empty.h"

#include "src/algebra/builders.h"
#include "src/algebra/simplify.h"

namespace mapcomp {

SimplifyHook RegistrySimplifyHook(const op::Registry* registry) {
  if (registry == nullptr) return nullptr;
  return [registry](const ExprPtr& e) -> ExprPtr {
    const op::OperatorDef* def = registry->Find(e->name());
    if (def != nullptr && def->simplify) return def->simplify(e);
    return nullptr;
  };
}

namespace {

/// Constraint-level rewrites that keep composed outputs readable (the paper
/// notes output simplification is "essential", §4). All are equivalences
/// for containment constraints:
///
///   E ⊆ A ∩ B        →  E ⊆ A, E ⊆ B
///   A ∪ B ⊆ E        →  A ⊆ E, B ⊆ E
///   E ⊆ X × D^k      →  π_{1..x}(E) ⊆ X
///   E ⊆ D^k × X      →  π_{k+1..}(E) ⊆ X
///
/// (the D-product rules rely on the convention that D includes the
/// constraint set's constants — see EvalOptions::extra_constants).
bool RewriteConstraint(const Constraint& c, ConstraintSet* out) {
  if (c.kind != ConstraintKind::kContainment) return false;
  if (c.rhs->kind() == ExprKind::kIntersect) {
    out->push_back(Constraint::Contain(c.lhs, c.rhs->child(0)));
    out->push_back(Constraint::Contain(c.lhs, c.rhs->child(1)));
    return true;
  }
  if (c.lhs->kind() == ExprKind::kUnion) {
    out->push_back(Constraint::Contain(c.lhs->child(0), c.rhs));
    out->push_back(Constraint::Contain(c.lhs->child(1), c.rhs));
    return true;
  }
  if (c.rhs->kind() == ExprKind::kProduct) {
    const ExprPtr& a = c.rhs->child(0);
    const ExprPtr& b = c.rhs->child(1);
    if (b->kind() == ExprKind::kDomain) {
      out->push_back(Constraint::Contain(
          Project(IndexRange(1, a->arity()), c.lhs), a));
      return true;
    }
    if (a->kind() == ExprKind::kDomain) {
      out->push_back(Constraint::Contain(
          Project(IndexRange(a->arity() + 1, c.rhs->arity()), c.lhs), b));
      return true;
    }
  }
  return false;
}

}  // namespace

ConstraintSet SimplifyAndPrune(ConstraintSet cs, const op::Registry* registry) {
  SimplifyHook hook = RegistrySimplifyHook(registry);
  ConstraintSet out;
  // Each rewrite strictly reduces a constraint's size, so the work queue
  // terminates.
  std::vector<Constraint> queue(std::make_move_iterator(cs.begin()),
                                std::make_move_iterator(cs.end()));
  for (size_t i = 0; i < queue.size(); ++i) {
    Constraint c = std::move(queue[i]);
    c.lhs = SimplifyExpr(c.lhs, hook);
    c.rhs = SimplifyExpr(c.rhs, hook);
    if (c.kind == ConstraintKind::kContainment) {
      if (c.rhs->kind() == ExprKind::kDomain) continue;  // E ⊆ D^r: trivial
      if (c.lhs->kind() == ExprKind::kEmpty) continue;   // ∅ ⊆ E: trivial
    }
    if (ExprEquals(c.lhs, c.rhs)) continue;  // E ⊆ E / E = E: trivial
    if (RewriteConstraint(c, &queue)) continue;
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace mapcomp
