#ifndef MAPCOMP_COMPOSE_SIMPLIFY_CONSTRAINTS_H_
#define MAPCOMP_COMPOSE_SIMPLIFY_CONSTRAINTS_H_

#include "src/constraints/constraint.h"
#include "src/op/registry.h"

namespace mapcomp {

/// Output-mapping simplification. The paper observes (§4) that composed
/// mappings "are often more verbose than the ones derived manually, so
/// simplification of output mappings is essential" while scoping full
/// simplification out; this pass performs the cheap, always-sound part:
///
///   * algebraic simplification of both sides (incl. D/∅ identities),
///   * removal of trivially-satisfied constraints,
///   * structural deduplication,
///   * merging the pair E1 ⊆ E2, E2 ⊆ E1 into E1 = E2.
ConstraintSet SimplifyConstraintSet(ConstraintSet cs,
                                    const op::Registry* registry);

}  // namespace mapcomp

#endif  // MAPCOMP_COMPOSE_SIMPLIFY_CONSTRAINTS_H_
