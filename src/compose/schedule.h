#ifndef MAPCOMP_COMPOSE_SCHEDULE_H_
#define MAPCOMP_COMPOSE_SCHEDULE_H_

#include <string>
#include <vector>

#include "src/common/cancel.h"
#include "src/constraints/constraint.h"

namespace mapcomp {

/// Conflict-graph planning for intra-problem parallel elimination. Two σ2
/// symbols are independent within one elimination round exactly when their
/// occurrence sets — the constraints of Σ that mention them — are disjoint:
/// ELIMINATE only rewrites constraints mentioning its symbol, so disjoint
/// symbols read and write disjoint parts of Σ and can be eliminated against
/// the same snapshot and merged in a fixed order with a deterministic,
/// schedule-independent outcome.
///
/// Occurrence tests run in two tiers: each constraint's interned Bloom
/// relation-name mask rejects most non-occurrences in O(1) (a clear bit
/// *proves* absence), and surviving candidates are confirmed by an exact
/// walk unless `exact` is false. Bloom-only planning can therefore report
/// spurious occurrences — which only ever *adds* conflict edges, merging
/// waves that exact planning would split: false positives over-serialize,
/// they can never co-schedule two truly conflicting symbols.

/// For each symbol, the (sorted) indices of the constraints in `sigma` that
/// mention it. With `exact` false, Bloom-mask candidates are kept
/// unconfirmed (a superset of the true occurrence set).
///
/// `cancel`, when non-null, is polled between constraint rows so a fired
/// deadline stops the exact walks promptly. The returned sets are then
/// truncated and must not be used for planning or partitioning — the
/// caller is expected to re-check the token immediately and abort the
/// round, which is exactly what the COMPOSE driver does.
std::vector<std::vector<int>> OccurrenceSets(
    const ConstraintSet& sigma, const std::vector<std::string>& symbols,
    bool exact = true, const common::CancelToken* cancel = nullptr);

/// Greedy first-fit wave: walks `symbols` in order and returns the indices
/// (into `symbols`) of every symbol whose occurrence set is disjoint from
/// all occurrence sets already claimed by the wave. The first symbol always
/// enters, so the wave is non-empty whenever `symbols` is. Symbols with
/// empty occurrence sets conflict with nothing and always join.
std::vector<int> PlanWave(const ConstraintSet& sigma,
                          const std::vector<std::string>& symbols,
                          bool exact = true);

/// PlanWave over occurrence sets the caller already computed (the COMPOSE
/// driver reuses one OccurrenceSets pass for planning and partitioning).
/// `num_constraints` bounds the indices appearing in `occ`.
std::vector<int> PlanWaveFromOccurrences(
    const std::vector<std::vector<int>>& occ, size_t num_constraints);

/// Repeats PlanWave on the not-yet-scheduled remainder until every symbol
/// is placed, always against the same `sigma`. This is the static picture
/// of the conflict graph (a greedy coloring); the COMPOSE driver re-plans
/// each wave against the *current* Σ instead, because eliminations change
/// the occurrence structure. Waves partition [0, symbols.size()).
std::vector<std::vector<int>> PlanAllWaves(
    const ConstraintSet& sigma, const std::vector<std::string>& symbols,
    bool exact = true);

}  // namespace mapcomp

#endif  // MAPCOMP_COMPOSE_SCHEDULE_H_
