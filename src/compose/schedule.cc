#include "src/compose/schedule.h"

namespace mapcomp {

std::vector<std::vector<int>> OccurrenceSets(
    const ConstraintSet& sigma, const std::vector<std::string>& symbols,
    bool exact, const common::CancelToken* cancel) {
  std::vector<uint64_t> bits;
  bits.reserve(symbols.size());
  for (const std::string& s : symbols) bits.push_back(Expr::NameBit(s));

  std::vector<std::vector<int>> occ(symbols.size());
  for (size_t c = 0; c < sigma.size(); ++c) {
    // Row-boundary poll, cheap next to the exact walks it bounds. Only
    // checked every 64 rows so the common unbounded scan stays branchless
    // in the hot part.
    if (cancel != nullptr && (c & 63) == 0 && cancel->Fired()) break;
    uint64_t mask = sigma[c].lhs->relation_mask() | sigma[c].rhs->relation_mask();
    for (size_t s = 0; s < symbols.size(); ++s) {
      if ((mask & bits[s]) == 0) continue;  // clear bit proves absence
      if (exact && !ConstraintContainsRelation(sigma[c], symbols[s])) continue;
      occ[s].push_back(static_cast<int>(c));
    }
  }
  return occ;
}

std::vector<int> PlanWaveFromOccurrences(
    const std::vector<std::vector<int>>& occ, size_t num_constraints) {
  std::vector<int> wave;
  std::vector<char> claimed(num_constraints, 0);
  for (size_t s = 0; s < occ.size(); ++s) {
    bool conflict = false;
    for (int c : occ[s]) {
      if (claimed[static_cast<size_t>(c)]) {
        conflict = true;
        break;
      }
    }
    if (conflict) continue;
    for (int c : occ[s]) claimed[static_cast<size_t>(c)] = 1;
    wave.push_back(static_cast<int>(s));
  }
  return wave;
}

std::vector<int> PlanWave(const ConstraintSet& sigma,
                          const std::vector<std::string>& symbols,
                          bool exact) {
  return PlanWaveFromOccurrences(OccurrenceSets(sigma, symbols, exact),
                                 sigma.size());
}

std::vector<std::vector<int>> PlanAllWaves(
    const ConstraintSet& sigma, const std::vector<std::string>& symbols,
    bool exact) {
  std::vector<std::vector<int>> waves;
  std::vector<int> remaining(symbols.size());
  for (size_t i = 0; i < symbols.size(); ++i) remaining[i] = static_cast<int>(i);
  std::vector<std::vector<int>> occ = OccurrenceSets(sigma, symbols, exact);

  while (!remaining.empty()) {
    std::vector<std::vector<int>> rem_occ;
    rem_occ.reserve(remaining.size());
    for (int i : remaining) rem_occ.push_back(occ[static_cast<size_t>(i)]);
    std::vector<int> wave_local = PlanWaveFromOccurrences(rem_occ, sigma.size());

    std::vector<int> wave;
    std::vector<char> in_wave(remaining.size(), 0);
    wave.reserve(wave_local.size());
    for (int i : wave_local) {
      in_wave[static_cast<size_t>(i)] = 1;
      wave.push_back(remaining[static_cast<size_t>(i)]);
    }
    std::vector<int> rest;
    rest.reserve(remaining.size() - wave.size());
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (!in_wave[i]) rest.push_back(remaining[i]);
    }
    waves.push_back(std::move(wave));
    remaining = std::move(rest);
  }
  return waves;
}

}  // namespace mapcomp
