#include "src/compose/deskolemize.h"

#include <algorithm>
#include <map>

#include "src/logic/homomorphism.h"
#include "src/logic/to_algebra.h"
#include "src/logic/translate.h"

namespace mapcomp {

namespace {

using logic::Dependency;
using logic::LAtom;
using logic::Term;
using logic::TermCond;
using logic::VarId;

bool TermMentionsFunction(const Term& t) { return t.IsFunc(); }

/// Step 3: every function symbol must occur with a single argument list
/// inside one dependency.
Status CheckRepeatedFunctions(const Dependency& d) {
  std::map<std::string, std::vector<VarId>> seen;
  for (const Term& t : CollectFunctionTerms(d)) {
    auto [it, inserted] = seen.try_emplace(t.func, t.func_args);
    if (!inserted && it->second != t.func_args) {
      return Status::Unsupported(
          "deskolemize step 3: function " + t.func +
          " occurs with two different argument lists in one dependency");
    }
  }
  return Status::OK();
}

/// Steps 5-7: body conditions involving Skolem terms are "restricting".
/// Trivially-true ones are dropped; anything else fails.
Status EliminateRestrictingConditions(Dependency* d) {
  std::vector<TermCond> kept;
  for (const TermCond& c : d->body_conds) {
    if (TermMentionsFunction(c.lhs) || TermMentionsFunction(c.rhs)) {
      bool trivially_true =
          (c.op == CmpOp::kEq || c.op == CmpOp::kLe || c.op == CmpOp::kGe) &&
          c.lhs == c.rhs;
      if (trivially_true) continue;
      return Status::Unsupported(
          "deskolemize step 5-7: restricting condition " + c.ToString() +
          " constrains a Skolem value in the body");
    }
    kept.push_back(c);
  }
  d->body_conds = std::move(kept);
  // Function terms appearing as *body atom* arguments are equally
  // restricting (the atom filters on the Skolem value).
  for (const LAtom& a : d->body) {
    for (const Term& t : a.args) {
      if (t.IsFunc()) {
        return Status::Unsupported(
            "deskolemize step 5-7: body atom " + a.ToString() +
            " restricts a Skolem value");
      }
    }
  }
  return Status::OK();
}

/// Steps 8-9: merges `other` into `rep`. Requires a body isomorphism
/// aligning the argument lists of all shared functions.
Status MergeDependencies(Dependency* rep, const Dependency& other) {
  // Seed the bijection with the shared functions' argument alignments.
  std::map<std::string, std::vector<VarId>> rep_funcs;
  for (const Term& t : CollectFunctionTerms(*rep)) {
    rep_funcs.try_emplace(t.func, t.func_args);
  }
  std::map<VarId, VarId> seed;
  for (const Term& t : CollectFunctionTerms(other)) {
    auto it = rep_funcs.find(t.func);
    if (it == rep_funcs.end()) continue;
    if (it->second.size() != t.func_args.size()) {
      return Status::Unsupported(
          "deskolemize step 8: function " + t.func +
          " used with different arities across dependencies");
    }
    for (size_t i = 0; i < t.func_args.size(); ++i) {
      auto [st, inserted] = seed.try_emplace(t.func_args[i], it->second[i]);
      if (!inserted && st->second != it->second[i]) {
        return Status::Unsupported(
            "deskolemize step 8: inconsistent function argument alignment");
      }
    }
  }
  std::optional<std::map<VarId, VarId>> phi = logic::FindBodyBijection(
      rep->body, rep->body_conds, other.body, other.body_conds, seed);
  if (!phi.has_value()) {
    return Status::Unsupported(
        "deskolemize step 9: dependencies share a Skolem function but their "
        "bodies are not isomorphic");
  }
  // Remap other's head into rep's variable space; head-only variables get
  // fresh ids.
  std::vector<VarId> remap(other.num_vars, -1);
  for (const auto& [from, to] : *phi) remap[from] = to;
  for (VarId v = 0; v < other.num_vars; ++v) {
    if (remap[v] == -1) remap[v] = rep->num_vars++;
  }
  for (LAtom atom : other.head) {
    for (Term& t : atom.args) t = logic::RemapTerm(t, remap);
    // Avoid exact duplicates.
    if (std::find(rep->head.begin(), rep->head.end(), atom) ==
        rep->head.end()) {
      rep->head.push_back(std::move(atom));
    }
  }
  for (TermCond cond : other.head_conds) {
    cond.lhs = logic::RemapTerm(cond.lhs, remap);
    cond.rhs = logic::RemapTerm(cond.rhs, remap);
    if (std::find(rep->head_conds.begin(), rep->head_conds.end(), cond) ==
        rep->head_conds.end()) {
      rep->head_conds.push_back(std::move(cond));
    }
  }
  return Status::OK();
}

/// Step 12: drops vacuous head equalities ∃y (y = t): a head condition whose
/// variable occurs nowhere else is satisfiable by choice of y, so the
/// condition (and the variable) can be eliminated.
void EliminateUnnecessaryExistentials(Dependency* d) {
  std::set<VarId> body_vars = d->BodyVars();
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<VarId, int> uses;
    auto count = [&uses](const Term& t) {
      if (t.IsVar()) ++uses[t.var];
      for (VarId a : t.func_args) ++uses[a];
    };
    for (const LAtom& a : d->head) {
      for (const Term& t : a.args) count(t);
    }
    for (const TermCond& c : d->head_conds) {
      count(c.lhs);
      count(c.rhs);
    }
    for (size_t i = 0; i < d->head_conds.size(); ++i) {
      const TermCond& c = d->head_conds[i];
      if (c.op != CmpOp::kEq) continue;
      auto lonely = [&](const Term& t) {
        return t.IsVar() && body_vars.count(t.var) == 0 && uses[t.var] == 1;
      };
      if (lonely(c.lhs) || lonely(c.rhs)) {
        d->head_conds.erase(d->head_conds.begin() + i);
        changed = true;
        break;
      }
    }
  }
}

/// Step 11: replaces every function term with a fresh existential variable.
void ReplaceFunctionsWithVars(Dependency* d) {
  std::vector<std::pair<Term, VarId>> assignment;
  auto replace = [&](Term* t) {
    if (!t->IsFunc()) return;
    for (const auto& [func, var] : assignment) {
      if (func == *t) {
        *t = Term::MakeVar(var);
        return;
      }
    }
    VarId fresh = d->num_vars++;
    assignment.emplace_back(*t, fresh);
    *t = Term::MakeVar(fresh);
  };
  for (LAtom& a : d->head) {
    for (Term& t : a.args) replace(&t);
  }
  for (TermCond& c : d->head_conds) {
    replace(&c.lhs);
    replace(&c.rhs);
  }
}

}  // namespace

Result<ConstraintSet> Deskolemize(const ConstraintSet& cs) {
  ConstraintSet plain;
  std::vector<Dependency> deps;
  for (const Constraint& c : cs) {
    if (!ContainsSkolem(c.lhs) && !ContainsSkolem(c.rhs)) {
      plain.push_back(c);
      continue;
    }
    // Steps 1-2 (unnest, cycle check) happen inside the translation.
    MAPCOMP_ASSIGN_OR_RETURN(std::vector<Dependency> translated,
                             logic::ConstraintToDependencies(c));
    for (Dependency& d : translated) deps.push_back(std::move(d));
  }

  for (Dependency& d : deps) {
    MAPCOMP_RETURN_IF_ERROR(CheckRepeatedFunctions(d));   // step 3
    MAPCOMP_RETURN_IF_ERROR(EliminateRestrictingConditions(&d));  // 5-7
    d = d.Canonicalized();                                // step 4
  }

  // Steps 8-9: group dependencies by shared function symbols (union-find
  // over co-occurring names) and merge each group.
  std::map<std::string, int> func_group;
  std::vector<int> parent(deps.size());
  for (size_t i = 0; i < deps.size(); ++i) parent[i] = static_cast<int>(i);
  std::function<int(int)> find = [&](int x) {
    return parent[x] == x ? x : parent[x] = find(parent[x]);
  };
  for (size_t i = 0; i < deps.size(); ++i) {
    for (const std::string& f : deps[i].FunctionNames()) {
      auto [it, inserted] = func_group.try_emplace(f, static_cast<int>(i));
      if (!inserted) parent[find(static_cast<int>(i))] = find(it->second);
    }
  }
  std::map<int, Dependency> merged;
  std::vector<Dependency> result_deps;
  for (size_t i = 0; i < deps.size(); ++i) {
    if (deps[i].FunctionNames().empty()) {
      result_deps.push_back(std::move(deps[i]));
      continue;
    }
    int root = find(static_cast<int>(i));
    auto [it, inserted] = merged.try_emplace(root, deps[i]);
    if (!inserted) {
      MAPCOMP_RETURN_IF_ERROR(MergeDependencies(&it->second, deps[i]));
    }
  }
  for (auto& [_, d] : merged) {
    // Re-verify step 3 after merging (aligned occurrences must agree).
    MAPCOMP_RETURN_IF_ERROR(CheckRepeatedFunctions(d));
    result_deps.push_back(std::move(d));
  }

  // Step 10: drop canonical duplicates.
  std::vector<std::string> seen;
  std::vector<Dependency> unique_deps;
  for (Dependency& d : result_deps) {
    std::string key = d.Canonicalized().ToString();
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
    seen.push_back(std::move(key));
    unique_deps.push_back(std::move(d));
  }

  // Steps 11-12: functions → ∃-variables (each introduced variable is used,
  // so step 12 is vacuous), then back to algebra.
  ConstraintSet out = std::move(plain);
  for (Dependency& d : unique_deps) {
    ReplaceFunctionsWithVars(&d);
    EliminateUnnecessaryExistentials(&d);
    MAPCOMP_ASSIGN_OR_RETURN(Constraint c, logic::DependencyToConstraint(d));
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace mapcomp
