#ifndef MAPCOMP_COMPOSE_DESKOLEMIZE_H_
#define MAPCOMP_COMPOSE_DESKOLEMIZE_H_

#include "src/constraints/constraint.h"

namespace mapcomp {

/// Right-denormalization (§3.5.3): removes the Skolem functions introduced
/// by right normalization, following the 12-step procedure of Nash et
/// al. [8] adapted to this library's algebra↔logic bridge:
///
///   1-2. unnest / check cycles — performed by the logic translation, which
///        only admits function terms with plain-variable arguments;
///   3.   check for repeated function symbols — a function occurring with
///        two different argument lists in one dependency fails (this is
///        where the paper's Example 17 is rejected);
///   4.   align variables — canonical renaming per dependency;
///   5-7. eliminate restricting atoms/constraints — body conditions on
///        Skolem terms are dropped when trivially true, otherwise fail;
///        head conditions on Skolem terms survive (they become selections
///        on the existential variable);
///   8-9. check/combine dependencies — dependencies sharing a function are
///        merged when their bodies are isomorphic with function arguments
///        aligned, else fail;
///   10.  remove redundant constraints — canonical duplicates dropped;
///   11.  replace functions with ∃-variables;
///   12.  eliminate unnecessary ∃-variables.
///
/// Constraints containing no Skolem operator pass through untouched. On any
/// failure the whole call fails and right compose reverts (paper behaviour).
Result<ConstraintSet> Deskolemize(const ConstraintSet& cs);

}  // namespace mapcomp

#endif  // MAPCOMP_COMPOSE_DESKOLEMIZE_H_
