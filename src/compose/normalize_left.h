#ifndef MAPCOMP_COMPOSE_NORMALIZE_LEFT_H_
#define MAPCOMP_COMPOSE_NORMALIZE_LEFT_H_

#include <string>

#include "src/constraints/constraint.h"
#include "src/op/registry.h"

namespace mapcomp {

/// Result of left normalization (§3.4.1): the constraints not mentioning S
/// on their left side, plus the single collapsed upper bound ξ : S ⊆ E1.
struct LeftNormalForm {
  ConstraintSet others;
  ExprPtr upper_bound;  ///< E1; never contains S
};

/// Rewrites `input` (containment constraints only) so that S appears on the
/// left of exactly one constraint, alone. Uses the identities
///
///   ∪:  E1 ∪ E2 ⊆ E3  ↔  E1 ⊆ E3, E2 ⊆ E3
///   −:  E1 − E2 ⊆ E3  ↔  E1 ⊆ E2 ∪ E3
///   π:  π_I(E1) ⊆ E2  ↔  E1 ⊆ E2 × D^{r−|I|}            (I a prefix)
///                      ↔  E1 ⊆ π_{s+1..s+r}(σ_c(E2 × D^r)) (general I)
///   σ:  σ_c(E1) ⊆ E2  ↔  E1 ⊆ E2 ∪ (D^r − σ_c(D^r))
///
/// Constraints of the forms E1 ∩ E2 ⊆ E3, E1 × E2 ⊆ E3 and E1 − E2 ⊆ E3
/// (with S in E2) have no known identity (§3.4.1, Example 6) and cause
/// failure, as do unregistered user operators. Multiple S ⊆ E_i collapse
/// into S ⊆ E_1 ∩ E_2 ∩ …; when S never appears on a left side, the trivial
/// bound S ⊆ D^r is used.
Result<LeftNormalForm> LeftNormalize(const ConstraintSet& input,
                                     const std::string& symbol, int arity,
                                     const op::Registry* registry);

}  // namespace mapcomp

#endif  // MAPCOMP_COMPOSE_NORMALIZE_LEFT_H_
