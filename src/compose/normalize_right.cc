#include "src/compose/normalize_right.h"

#include <algorithm>
#include <deque>

#include "src/algebra/builders.h"

namespace mapcomp {

namespace {

bool IsBareSymbol(const ExprPtr& e, const std::string& symbol) {
  return e->kind() == ExprKind::kRelation && e->name() == symbol;
}

/// Skolemizes E1 ⊆ π_I(E2): appends one fresh Skolem column per E2-position
/// not covered by I, then permutes to E2's column order.
Result<std::vector<Constraint>> SkolemizeProjection(
    const Constraint& c, const Signature* keys, int* skolem_counter) {
  const ExprPtr& proj = c.rhs;
  const ExprPtr& inner = proj->child(0);
  const std::vector<int>& index_list = proj->indexes();
  int r2 = inner->arity();
  int r1 = static_cast<int>(index_list.size());

  std::vector<Constraint> out;
  // Duplicate indexes in I force equalities on E1's columns.
  for (int k = 0; k < r1; ++k) {
    for (int k2 = k + 1; k2 < r1; ++k2) {
      if (index_list[k] == index_list[k2]) {
        out.push_back(Constraint::Contain(
            c.lhs,
            Select(Condition::AttrCmp(k + 1, CmpOp::kEq, k2 + 1), Dom(r1))));
      }
    }
  }

  // Skolem argument minimization via keys (§3.5.1): if the lhs is a base
  // relation with a declared key, functions depend only on the key columns.
  std::vector<int> skolem_args = IdentityIndexes(r1);
  if (keys != nullptr && c.lhs->kind() == ExprKind::kRelation) {
    std::optional<std::vector<int>> key = keys->KeyOf(c.lhs->name());
    if (key.has_value() && !key->empty()) skolem_args = *key;
  }

  // first_pos[j] = 1-based position in I of E2-column j's first occurrence,
  // or 0 if j is projected away.
  std::vector<int> first_pos(r2 + 1, 0);
  for (int k = 0; k < r1; ++k) {
    if (first_pos[index_list[k]] == 0) first_pos[index_list[k]] = k + 1;
  }
  ExprPtr x = c.lhs;
  std::vector<int> perm(r2);
  int appended = 0;
  for (int j = 1; j <= r2; ++j) {
    if (first_pos[j] != 0) {
      perm[j - 1] = first_pos[j];
    } else {
      x = SkolemApp("sk" + std::to_string((*skolem_counter)++), skolem_args,
                    x);
      ++appended;
      perm[j - 1] = r1 + appended;
    }
  }
  ExprPtr lhs =
      perm == IdentityIndexes(x->arity()) ? x : Project(std::move(perm), x);
  out.push_back(Constraint::Contain(std::move(lhs), inner));
  return out;
}

Result<std::vector<Constraint>> RewriteRight(const Constraint& c,
                                             const std::string& symbol,
                                             const Signature* keys,
                                             int* skolem_counter,
                                             const op::Registry* registry) {
  const ExprPtr& rhs = c.rhs;
  switch (rhs->kind()) {
    case ExprKind::kUnion: {
      // E1 ⊆ E2 ∪ E3 → E1 − E3 ⊆ E2 (keeping the S operand on the right).
      bool in_left = ContainsRelation(rhs->child(0), symbol);
      bool in_right = ContainsRelation(rhs->child(1), symbol);
      if (in_left && in_right) {
        return Status::Unsupported(
            "symbol occurs in both operands of a union on the right");
      }
      if (in_left) {
        return std::vector<Constraint>{Constraint::Contain(
            Difference(c.lhs, rhs->child(1)), rhs->child(0))};
      }
      return std::vector<Constraint>{Constraint::Contain(
          Difference(c.lhs, rhs->child(0)), rhs->child(1))};
    }
    case ExprKind::kIntersect:
      return std::vector<Constraint>{
          Constraint::Contain(c.lhs, rhs->child(0)),
          Constraint::Contain(c.lhs, rhs->child(1))};
    case ExprKind::kProduct: {
      int ra = rhs->child(0)->arity();
      int rb = rhs->child(1)->arity();
      return std::vector<Constraint>{
          Constraint::Contain(Project(IndexRange(1, ra), c.lhs),
                              rhs->child(0)),
          Constraint::Contain(Project(IndexRange(ra + 1, ra + rb), c.lhs),
                              rhs->child(1))};
    }
    case ExprKind::kDifference: {
      int r = rhs->arity();
      return std::vector<Constraint>{
          Constraint::Contain(c.lhs, rhs->child(0)),
          Constraint::Contain(Intersect(c.lhs, rhs->child(1)), EmptyRel(r))};
    }
    case ExprKind::kSelect: {
      int r = rhs->arity();
      return std::vector<Constraint>{
          Constraint::Contain(c.lhs, rhs->child(0)),
          Constraint::Contain(c.lhs, Select(rhs->condition(), Dom(r)))};
    }
    case ExprKind::kProject:
      return SkolemizeProjection(c, keys, skolem_counter);
    case ExprKind::kUserOp: {
      const op::OperatorDef* def =
          registry != nullptr ? registry->Find(rhs->name()) : nullptr;
      if (def != nullptr && def->right_rule) {
        std::optional<std::vector<Constraint>> rewritten =
            def->right_rule(c, symbol);
        if (rewritten.has_value()) return *std::move(rewritten);
      }
      return Status::Unsupported("no right-normalization rule for operator " +
                                 rhs->name());
    }
    default:
      return Status::Unsupported(
          "no right-normalization rule for this operator");
  }
}

}  // namespace

Result<RightNormalForm> RightNormalize(const ConstraintSet& input,
                                       const std::string& symbol, int arity,
                                       const Signature* keys,
                                       int* skolem_counter,
                                       const op::Registry* registry) {
  std::deque<Constraint> queue(input.begin(), input.end());
  ConstraintSet done;
  int budget = 100 + 10 * OperatorCount(input);
  while (!queue.empty()) {
    if (--budget < 0) {
      return Status::ResourceExhausted("right normalization did not converge");
    }
    Constraint c = std::move(queue.front());
    queue.pop_front();
    if (c.kind != ConstraintKind::kContainment) {
      return Status::Internal("right normalize expects containments only");
    }
    if (!ContainsRelation(c.rhs, symbol) || IsBareSymbol(c.rhs, symbol)) {
      done.push_back(std::move(c));
      continue;
    }
    MAPCOMP_ASSIGN_OR_RETURN(
        std::vector<Constraint> rewritten,
        RewriteRight(c, symbol, keys, skolem_counter, registry));
    for (Constraint& nc : rewritten) queue.push_back(std::move(nc));
  }
  // Collapse all E_i ⊆ S into E_1 ∪ E_2 ∪ … ⊆ S.
  RightNormalForm out;
  for (Constraint& c : done) {
    if (IsBareSymbol(c.rhs, symbol)) {
      if (ContainsRelation(c.lhs, symbol)) {
        return Status::Unsupported(
            "normalization left " + symbol + " on both sides of a constraint");
      }
      out.lower_bound = out.lower_bound == nullptr
                            ? c.lhs
                            : Union(out.lower_bound, c.lhs);
    } else {
      out.others.push_back(std::move(c));
    }
  }
  if (out.lower_bound == nullptr) {
    // S never appears on a right side: any S satisfies ∅ ⊆ S.
    out.lower_bound = EmptyRel(arity);
  }
  return out;
}

}  // namespace mapcomp
