#include "src/compose/compose.h"

#include <algorithm>
#include <chrono>

#include "src/algebra/interner.h"
#include "src/compose/simplify_constraints.h"

namespace mapcomp {

namespace {
double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

std::string CompositionResult::Report() const {
  std::string out = "eliminated " + std::to_string(eliminated_count) + "/" +
                    std::to_string(total_count) + " symbols in " +
                    std::to_string(total_millis) + " ms";
  if (rounds.size() > 1) {
    out += " over " + std::to_string(rounds.size()) + " rounds";
  }
  out += "\n";
  for (const SymbolStat& s : stats) {
    out += "  " + s.symbol + ": ";
    out += s.eliminated ? std::string("eliminated via ") +
                              EliminateStepName(s.step)
                        : "kept (" + s.failure_reason + ")";
    if (s.round > 1) out += " [round " + std::to_string(s.round) + "]";
    out += " [" + std::to_string(s.size_before) + " -> " +
           std::to_string(s.size_after) + " ops, " +
           std::to_string(s.millis) + " ms]\n";
  }
  for (const std::string& w : warnings) {
    out += "  warning: " + w + "\n";
  }
  return out;
}

std::string CompositionResult::Fingerprint() const {
  std::string out;
  out += "sigma{" + sigma.ToString() + "}\n";
  out += "residual{";
  for (const std::string& s : residual_sigma2) out += s + ",";
  out += "}\n";
  out += "constraints{\n" + ConstraintSetToString(constraints) + "}\n";
  out += "counts{" + std::to_string(eliminated_count) + "/" +
         std::to_string(total_count) + "}\n";
  for (const SymbolStat& s : stats) {
    out += "stat{" + s.symbol + " r" + std::to_string(s.round) + " " +
           (s.eliminated ? std::string(EliminateStepName(s.step))
                         : "kept:" + s.failure_reason) +
           " " + std::to_string(s.size_before) + "->" +
           std::to_string(s.size_after) + "}\n";
  }
  for (const RoundStat& r : rounds) {
    out += "round{" + std::to_string(r.round) + " " +
           std::to_string(r.eliminated) + "/" + std::to_string(r.attempted) +
           "}\n";
  }
  for (const std::string& w : warnings) out += "warning{" + w + "}\n";
  return out;
}

CompositionResult Compose(const CompositionProblem& problem,
                          const ComposeOptions& options) {
  auto total_start = std::chrono::steady_clock::now();
  CompositionResult result;
  // One batch scope for the whole composition: the substitution/simplify
  // rewrites rebuild the same small nodes constantly, which the builder's
  // local cache absorbs without touching the shared shards.
  ExprBuilder batch;

  // Σ := Σ12 ∪ Σ23.
  ConstraintSet sigma = problem.sigma12;
  sigma.insert(sigma.end(), problem.sigma23.begin(), problem.sigma23.end());

  // Key information from every schema feeds Skolem minimization.
  Signature all_keys;
  {
    Result<Signature> merged =
        Signature::Merge(problem.sigma1, problem.sigma2);
    if (merged.ok()) {
      Result<Signature> merged3 = Signature::Merge(*merged, problem.sigma3);
      if (merged3.ok()) all_keys = *merged3;
    }
  }
  ComposeOptions opts = options;
  if (opts.eliminate.keys == nullptr) opts.eliminate.keys = &all_keys;

  std::vector<std::string> order =
      !options.order.empty()
          ? options.order
          : (!problem.elimination_order.empty() ? problem.elimination_order
                                                : problem.sigma2.names());
  result.total_count = static_cast<int>(order.size());

  // Multi-round fixpoint: each round sweeps the still-pending symbols in
  // order; a symbol that fails stays pending for the next round, where the
  // eliminations that happened after it may have removed its occurrences or
  // both-sides conflicts. ELIMINATE is deterministic, so retrying a symbol
  // against an unchanged Σ must fail identically — `sigma_version` counts
  // successful eliminations, and a pending symbol is only re-attempted once
  // Σ has changed since it last failed. Stops when everything is
  // eliminated, no pending symbol has a fresher Σ to try, or max_rounds is
  // reached.
  struct PendingSymbol {
    std::string symbol;
    int failed_at = -1;  ///< sigma_version at the last failed attempt
  };
  std::vector<PendingSymbol> pending;
  pending.reserve(order.size());
  for (std::string& s : order) pending.push_back({std::move(s), -1});

  int sigma_version = 0;
  int max_rounds = std::max(1, options.max_rounds);
  for (int round = 1; round <= max_rounds && !pending.empty(); ++round) {
    auto round_start = std::chrono::steady_clock::now();
    RoundStat round_stat;
    round_stat.round = round;
    std::vector<PendingSymbol> still_pending;
    for (PendingSymbol& p : pending) {
      if (p.failed_at == sigma_version) {
        // Σ is exactly what this symbol already failed against.
        still_pending.push_back(std::move(p));
        continue;
      }
      auto start = std::chrono::steady_clock::now();
      SymbolStat stat;
      stat.symbol = p.symbol;
      stat.round = round;
      stat.size_before = OperatorCount(sigma);
      EliminateOutcome outcome = Eliminate(sigma, p.symbol,
                                           problem.sigma2.ArityOf(p.symbol),
                                           opts.eliminate);
      stat.eliminated = outcome.success;
      stat.step = outcome.step;
      stat.failure_reason = outcome.failure_reason;
      if (outcome.success) {
        sigma = std::move(outcome.constraints);
        ++sigma_version;
        ++result.eliminated_count;
        ++round_stat.eliminated;
      } else {
        p.failed_at = sigma_version;
        still_pending.push_back(std::move(p));
      }
      stat.size_after = OperatorCount(sigma);
      stat.millis = MillisSince(start);
      result.stats.push_back(std::move(stat));
      ++round_stat.attempted;
    }
    round_stat.millis = MillisSince(round_start);
    pending = std::move(still_pending);
    if (round_stat.attempted == 0) break;  // every retry was provably futile
    result.rounds.push_back(round_stat);
  }
  std::vector<std::string> residual;
  residual.reserve(pending.size());
  for (PendingSymbol& p : pending) residual.push_back(std::move(p.symbol));

  if (options.simplify_output) {
    sigma = SimplifyConstraintSet(std::move(sigma), opts.eliminate.registry);
  }

  // Assemble the residual signature σ1 ∪ σ2' ∪ σ3.
  Signature out_sig = problem.sigma1;
  for (const std::string& s : residual) {
    out_sig.AddOrReplaceRelation(s, problem.sigma2.ArityOf(s));
    auto key = problem.sigma2.KeyOf(s);
    if (key.has_value()) {
      Status st = out_sig.SetKey(s, *key);
      if (!st.ok()) {
        result.warnings.push_back("dropping key of residual symbol " + s +
                                  ": " + st.ToString());
      }
    }
  }
  Result<Signature> merged = Signature::Merge(out_sig, problem.sigma3);
  if (!merged.ok()) {
    result.warnings.push_back("cannot merge sigma3 into output signature: " +
                              merged.status().ToString());
  }
  result.sigma = merged.ok() ? *merged : out_sig;
  result.residual_sigma2 = std::move(residual);
  result.constraints = std::move(sigma);
  result.total_millis = MillisSince(total_start);
  return result;
}

}  // namespace mapcomp
