#include "src/compose/compose.h"

#include <algorithm>
#include <chrono>

#include "src/algebra/interner.h"
#include "src/common/fault.h"
#include "src/compose/schedule.h"
#include "src/compose/simplify_constraints.h"
#include "src/runtime/thread_pool.h"

namespace mapcomp {

namespace {
double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// A σ2 symbol not yet eliminated. `order_index` is its position in the
/// user-specified order, used to restore that order between rounds (wave
/// scheduling pulls symbols out of sequence within a round).
struct PendingSymbol {
  std::string symbol;
  int order_index = 0;
  int failed_at = -1;  ///< sigma_version at the last failed attempt
};

}  // namespace

std::string CompositionResult::Report() const {
  std::string out = "eliminated " + std::to_string(eliminated_count) + "/" +
                    std::to_string(total_count) + " symbols in " +
                    std::to_string(total_millis) + " ms";
  if (rounds.size() > 1) {
    out += " over " + std::to_string(rounds.size()) + " rounds";
  }
  out += "\n";
  for (const SymbolStat& s : stats) {
    out += "  " + s.symbol + ": ";
    out += s.eliminated ? std::string("eliminated via ") +
                              EliminateStepName(s.step)
                        : "kept (" + s.failure_reason + ")";
    if (s.round > 1) out += " [round " + std::to_string(s.round) + "]";
    out += " [" + std::to_string(s.size_before) + " -> " +
           std::to_string(s.size_after) + " ops, " +
           std::to_string(s.millis) + " ms]\n";
  }
  for (const std::string& w : warnings) {
    out += "  warning: " + w + "\n";
  }
  return out;
}

std::string ComposeOptions::Fingerprint() const {
  std::string out = "opts{";
  out += "unfold=" + std::to_string(eliminate.enable_unfold);
  out += ",left=" + std::to_string(eliminate.enable_left_compose);
  out += ",right=" + std::to_string(eliminate.enable_right_compose);
  out += ",blowup=" + std::to_string(eliminate.max_blowup_factor);
  out += ",baseline=" + std::to_string(eliminate.blowup_baseline_ops);
  // A preset key signature is serialized by content (names, arities, key
  // columns); a non-default registry by its never-reused uid — unlike a
  // pointer address, an id cannot alias a later registry allocated where a
  // destroyed one lived.
  out += ",keys=";
  out += eliminate.keys == nullptr
             ? "auto"
             : "{" + eliminate.keys->Fingerprint() + "}";
  out += ",registry=";
  if (eliminate.registry == &op::Registry::Default()) {
    out += "default";
  } else {
    out += std::to_string(eliminate.registry->uid());
  }
  out += ",simplify=" + std::to_string(simplify_output);
  out += ",rounds=" + std::to_string(max_rounds);
  out += ",exact=" + std::to_string(exact_conflicts);
  out += ",order=";
  // Length-prefixed: symbol names are unrestricted, so a bare separator
  // could make distinct orders serialize identically.
  for (const std::string& s : order) {
    out += std::to_string(s.size()) + ":" + s + ",";
  }
  out += "}";
  return out;
}

std::string CompositionResult::Fingerprint() const {
  std::string out;
  out += "sigma{" + sigma.ToString() + "}\n";
  out += "residual{";
  for (const std::string& s : residual_sigma2) out += s + ",";
  out += "}\n";
  out += "constraints{\n" + ConstraintSetToString(constraints) + "}\n";
  out += "counts{" + std::to_string(eliminated_count) + "/" +
         std::to_string(total_count) + "}\n";
  for (const SymbolStat& s : stats) {
    out += "stat{" + s.symbol + " r" + std::to_string(s.round) + " " +
           (s.eliminated ? std::string(EliminateStepName(s.step))
                         : "kept:" + s.failure_reason) +
           " " + std::to_string(s.size_before) + "->" +
           std::to_string(s.size_after) + "}\n";
  }
  for (const RoundStat& r : rounds) {
    out += "round{" + std::to_string(r.round) + " " +
           std::to_string(r.eliminated) + "/" + std::to_string(r.attempted) +
           " waves[";
    for (size_t i = 0; i < r.wave_widths.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(r.wave_widths[i]);
    }
    out += "]}\n";
  }
  for (const std::string& w : warnings) out += "warning{" + w + "}\n";
  // Only interrupted runs carry this line, so a completed bounded run
  // fingerprints byte-identically to an unbounded one.
  if (!interrupt.ok()) {
    out += "interrupt{" + std::string(StatusCodeName(interrupt.code())) +
           "}\n";
  }
  return out;
}

CompositionResult Compose(const CompositionProblem& problem,
                          const ComposeOptions& options) {
  auto total_start = std::chrono::steady_clock::now();
  CompositionResult result;
  // One batch scope for the whole composition: the substitution/simplify
  // rewrites rebuild the same small nodes constantly, which the builder's
  // local cache absorbs without touching the shared shards.
  ExprBuilder batch;

  // Σ := Σ12 ∪ Σ23.
  ConstraintSet sigma = problem.sigma12;
  sigma.insert(sigma.end(), problem.sigma23.begin(), problem.sigma23.end());

  // Key information from every schema feeds Skolem minimization.
  Signature all_keys;
  {
    Result<Signature> merged =
        Signature::Merge(problem.sigma1, problem.sigma2);
    if (merged.ok()) {
      Result<Signature> merged3 = Signature::Merge(*merged, problem.sigma3);
      if (merged3.ok()) all_keys = *merged3;
    }
  }
  ComposeOptions opts = options;
  if (opts.eliminate.keys == nullptr) opts.eliminate.keys = &all_keys;
  // ELIMINATE polls the same token between its steps.
  opts.eliminate.cancel = options.cancel;
  const common::CancelToken& cancel = options.cancel;
  Status interrupt = Status::OK();

  std::vector<std::string> order =
      !options.order.empty()
          ? options.order
          : (!problem.elimination_order.empty() ? problem.elimination_order
                                                : problem.sigma2.names());
  result.total_count = static_cast<int>(order.size());

  int elim_jobs = std::max(1, options.elim_jobs);
  runtime::ThreadPool* pool =
      elim_jobs > 1 ? runtime::GlobalPool() : nullptr;

  // Multi-round fixpoint over a wave scheduler. Each round repeatedly
  // plans one wave of constraint-disjoint pending symbols against the
  // *current* Σ and executes it; a symbol that fails stays pending for the
  // next round. ELIMINATE is deterministic and only reads the constraints
  // mentioning its symbol, so retrying a symbol against a Σ that has not
  // changed since its last failure must fail identically —
  // `sigma_version` counts successful eliminations, and a pending symbol
  // is only re-attempted once Σ has changed since it last failed. Stops
  // when everything is eliminated, no pending symbol has a fresher Σ to
  // try, or max_rounds is reached.
  std::vector<PendingSymbol> pending;
  pending.reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    pending.push_back({std::move(order[i]), static_cast<int>(i), -1});
  }

  int sigma_version = 0;
  int max_rounds = std::max(1, options.max_rounds);
  for (int round = 1; round <= max_rounds && !pending.empty(); ++round) {
    interrupt = cancel.StatusAt("compose round boundary");
    if (!interrupt.ok()) break;
    auto round_start = std::chrono::steady_clock::now();
    RoundStat round_stat;
    round_stat.round = round;
    std::vector<PendingSymbol> next_pending;
    std::vector<PendingSymbol> unprocessed = std::move(pending);
    pending.clear();

    while (!unprocessed.empty()) {
      interrupt = cancel.StatusAt("wave plan boundary");
      if (!interrupt.ok()) break;
      // --- Plan one wave against the current Σ. Futile symbols (Σ is
      // exactly what they already failed against) are skipped but stay in
      // the pool: a later wave's success can revive them this round.
      std::vector<int> candidates;  // non-futile, in order
      candidates.reserve(unprocessed.size());
      for (size_t i = 0; i < unprocessed.size(); ++i) {
        if (unprocessed[i].failed_at != sigma_version) {
          candidates.push_back(static_cast<int>(i));
        }
      }
      if (candidates.empty()) {
        // Every remaining symbol is provably futile against this Σ.
        for (PendingSymbol& p : unprocessed) {
          next_pending.push_back(std::move(p));
        }
        break;
      }
      // Occurrence sets only for the candidates — futile symbols are by
      // definition mentioned in Σ, so scanning them would do exact walks
      // whose results nobody reads.
      std::vector<std::string> names;
      names.reserve(candidates.size());
      for (int i : candidates) {
        names.push_back(unprocessed[static_cast<size_t>(i)].symbol);
      }
      std::vector<std::vector<int>> occ =
          OccurrenceSets(sigma, names, options.exact_conflicts, &cancel);
      if (cancel.Fired()) {
        // The scan may have been truncated: do not plan from it.
        interrupt = cancel.StatusAt("occurrence scan");
        break;
      }
      std::vector<int> wave_local =  // indices into candidates/occ
          PlanWaveFromOccurrences(occ, sigma.size());

      std::vector<char> in_wave(unprocessed.size(), 0);
      std::vector<PendingSymbol> wave;
      std::vector<std::vector<int>> wave_occ;  // planning rows, wave order
      wave.reserve(wave_local.size());
      wave_occ.reserve(wave_local.size());
      for (int w : wave_local) {
        size_t i = static_cast<size_t>(candidates[static_cast<size_t>(w)]);
        in_wave[i] = 1;
        wave.push_back(std::move(unprocessed[i]));
        wave_occ.push_back(std::move(occ[static_cast<size_t>(w)]));
      }
      std::vector<PendingSymbol> rest;
      rest.reserve(unprocessed.size() - wave.size());
      for (size_t i = 0; i < unprocessed.size(); ++i) {
        if (!in_wave[i]) rest.push_back(std::move(unprocessed[i]));
      }
      unprocessed = std::move(rest);
      round_stat.wave_widths.push_back(static_cast<int>(wave.size()));
      round_stat.attempted += static_cast<int>(wave.size());

      if (wave.size() == 1) {
        // Singleton wave: eliminate from the full Σ, exactly like the
        // original one-at-a-time driver.
        PendingSymbol& p = wave[0];
        auto start = std::chrono::steady_clock::now();
        SymbolStat stat;
        stat.symbol = p.symbol;
        stat.round = round;
        stat.size_before = OperatorCount(sigma);
        common::fault::MaybeSleep(
            common::fault::FaultPoint::kSlowEliminationWave);
        EliminateOutcome outcome =
            Eliminate(sigma, p.symbol, problem.sigma2.ArityOf(p.symbol),
                      opts.eliminate);
        stat.eliminated = outcome.success;
        stat.step = outcome.step;
        stat.failure_reason = outcome.failure_reason;
        if (outcome.success) {
          sigma = std::move(outcome.constraints);
          ++sigma_version;
          ++result.eliminated_count;
          ++round_stat.eliminated;
        } else {
          // An interrupted attempt is not a reproducible failure: leave
          // failed_at alone so a later (hypothetical) retry is not skipped
          // as futile.
          if (!outcome.interrupted) p.failed_at = sigma_version;
          next_pending.push_back(std::move(p));
        }
        stat.size_after = OperatorCount(sigma);
        stat.millis = MillisSince(start);
        result.stats.push_back(std::move(stat));
        if (outcome.interrupted) {
          interrupt = cancel.StatusAt("elimination");
          if (interrupt.ok()) interrupt = Status::Cancelled("elimination");
          break;
        }
        continue;
      }

      // --- Wider wave: partition Σ into per-symbol groups (the exact
      // occurrence sets, pairwise disjoint by construction) plus the
      // untouched remainder, eliminate every group concurrently against
      // the wave snapshot, then merge deterministically in symbol order.
      const size_t width = wave.size();
      const int size_before_wave = OperatorCount(sigma);
      const int snapshot_version = sigma_version;
      std::vector<std::string> wave_names;
      wave_names.reserve(width);
      for (const PendingSymbol& p : wave) wave_names.push_back(p.symbol);
      // Execution always partitions by exact occurrence; the planning rows
      // already are exact unless Bloom-only planning was requested, in
      // which case they are recomputed (an exact subset of disjoint Bloom
      // sets is still disjoint).
      std::vector<std::vector<int>> exec_occ =
          options.exact_conflicts
              ? std::move(wave_occ)
              : OccurrenceSets(sigma, wave_names, /*exact=*/true);

      std::vector<int> owner(sigma.size(), -1);
      std::vector<ConstraintSet> groups(width);
      for (size_t wi = 0; wi < width; ++wi) {
        for (int c : exec_occ[wi]) {
          owner[static_cast<size_t>(c)] = static_cast<int>(wi);
          groups[wi].push_back(sigma[static_cast<size_t>(c)]);
        }
      }

      // The paper's blowup guard stays relative to the full Σ, not the
      // (much smaller) per-symbol group.
      EliminateOptions wave_opts = opts.eliminate;
      wave_opts.blowup_baseline_ops = std::max(1, size_before_wave);

      std::vector<EliminateOutcome> outcomes(width);
      std::vector<double> member_millis(width, 0.0);
      runtime::ParallelFor(
          pool, static_cast<int64_t>(width),
          [&](int64_t wi) {
            // Per-lane cancellation point: a fired token skips the
            // elimination entirely (interrupted, not failed). Lanes that
            // already started run to completion — a step is never torn.
            if (cancel.Fired()) {
              outcomes[wi].constraints = groups[wi];
              outcomes[wi].interrupted = true;
              outcomes[wi].failure_reason = "interrupted";
              return;
            }
            // Pool workers have no batch scope open; one per elimination
            // keeps their node churn off the shared shards (nests fine on
            // the calling thread's lane).
            ExprBuilder wave_batch;
            auto start = std::chrono::steady_clock::now();
            common::fault::MaybeSleep(
                common::fault::FaultPoint::kSlowEliminationWave);
            outcomes[wi] = Eliminate(
                groups[wi], wave_names[static_cast<size_t>(wi)],
                problem.sigma2.ArityOf(wave_names[static_cast<size_t>(wi)]),
                wave_opts);
            member_millis[wi] = MillisSince(start);
          },
          elim_jobs - 1);

      // Merge: untouched constraints and failed groups keep their
      // positions; each success's rewritten group is appended in wave
      // (= user) order. Group contents can only mention names that already
      // occurred in the group, so a success never re-introduces another
      // wave symbol and the merged occurrence structure of a failed symbol
      // is unchanged — which is what makes failed_at below sound.
      ConstraintSet merged;
      merged.reserve(sigma.size());
      for (size_t c = 0; c < sigma.size(); ++c) {
        if (owner[c] < 0 || !outcomes[static_cast<size_t>(owner[c])].success) {
          merged.push_back(std::move(sigma[c]));
        }
      }
      int running = size_before_wave;
      for (size_t wi = 0; wi < width; ++wi) {
        PendingSymbol& p = wave[wi];
        EliminateOutcome& outcome = outcomes[wi];
        SymbolStat stat;
        stat.symbol = p.symbol;
        stat.round = round;
        stat.eliminated = outcome.success;
        stat.step = outcome.step;
        stat.failure_reason = outcome.failure_reason;
        stat.size_before = running;
        if (outcome.success) {
          running += OperatorCount(outcome.constraints) -
                     OperatorCount(groups[wi]);
          merged.insert(merged.end(),
                        std::make_move_iterator(outcome.constraints.begin()),
                        std::make_move_iterator(outcome.constraints.end()));
          ++sigma_version;
          ++result.eliminated_count;
          ++round_stat.eliminated;
        }
        stat.size_after = running;
        stat.millis = member_millis[wi];
        result.stats.push_back(std::move(stat));
      }
      sigma = std::move(merged);
      // A failure in this wave saw only its own group, which no other wave
      // member touched, so it would fail identically against the merged Σ
      // — record the post-merge version and let the futility check skip it
      // until Σ changes again. The exception is a blowup-limited failure:
      // the budget is measured against the *global* snapshot size, which
      // sibling successes just changed, so such a failure is only known
      // futile against the snapshot it actually saw.
      bool wave_interrupted = false;
      for (size_t wi = 0; wi < width; ++wi) {
        if (outcomes[wi].success) continue;
        if (outcomes[wi].interrupted) {
          wave_interrupted = true;  // not a reproducible failure
        } else {
          wave[wi].failed_at =
              outcomes[wi].blowup_limited ? snapshot_version : sigma_version;
        }
        next_pending.push_back(std::move(wave[wi]));
      }
      if (wave_interrupted) {
        interrupt = cancel.StatusAt("elimination wave");
        if (interrupt.ok()) interrupt = Status::Cancelled("elimination wave");
        break;
      }
    }

    // A fired token mid-round: whatever was never pulled into a wave stays
    // pending and surfaces as residual symbols below.
    if (!interrupt.ok()) {
      for (PendingSymbol& p : unprocessed) {
        next_pending.push_back(std::move(p));
      }
    }

    round_stat.millis = MillisSince(round_start);
    pending = std::move(next_pending);
    // Wave scheduling pulls symbols out of sequence; retries and residuals
    // follow the user-specified order.
    std::sort(pending.begin(), pending.end(),
              [](const PendingSymbol& a, const PendingSymbol& b) {
                return a.order_index < b.order_index;
              });
    if (round_stat.attempted == 0) break;  // every retry was provably futile
    result.rounds.push_back(std::move(round_stat));
    if (!interrupt.ok()) break;  // partial round recorded, stop attempting
  }

  std::vector<std::string> residual;
  residual.reserve(pending.size());
  for (PendingSymbol& p : pending) residual.push_back(std::move(p.symbol));

  if (options.simplify_output) {
    sigma = SimplifyConstraintSet(std::move(sigma), opts.eliminate.registry);
  }

  // Assemble the residual signature σ1 ∪ σ2' ∪ σ3.
  Signature out_sig = problem.sigma1;
  for (const std::string& s : residual) {
    out_sig.AddOrReplaceRelation(s, problem.sigma2.ArityOf(s));
    auto key = problem.sigma2.KeyOf(s);
    if (key.has_value()) {
      Status st = out_sig.SetKey(s, *key);
      if (!st.ok()) {
        result.warnings.push_back("dropping key of residual symbol " + s +
                                  ": " + st.ToString());
      }
    }
  }
  Result<Signature> merged = Signature::Merge(out_sig, problem.sigma3);
  if (!merged.ok()) {
    result.warnings.push_back("cannot merge sigma3 into output signature: " +
                              merged.status().ToString());
  }
  result.sigma = merged.ok() ? *merged : out_sig;
  result.residual_sigma2 = std::move(residual);
  result.constraints = std::move(sigma);
  if (!interrupt.ok()) {
    result.warnings.push_back(
        std::string("composition interrupted (") +
        StatusCodeName(interrupt.code()) + "): " +
        std::to_string(result.eliminated_count) + "/" +
        std::to_string(result.total_count) + " symbols eliminated, " +
        std::to_string(result.residual_sigma2.size()) +
        " kept as residuals");
    result.interrupt = std::move(interrupt);
  }
  result.total_millis = MillisSince(total_start);
  return result;
}

}  // namespace mapcomp
