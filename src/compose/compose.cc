#include "src/compose/compose.h"

#include <chrono>

#include "src/compose/simplify_constraints.h"

namespace mapcomp {

namespace {
double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

std::string CompositionResult::Report() const {
  std::string out = "eliminated " + std::to_string(eliminated_count) + "/" +
                    std::to_string(total_count) + " symbols in " +
                    std::to_string(total_millis) + " ms\n";
  for (const SymbolStat& s : stats) {
    out += "  " + s.symbol + ": ";
    out += s.eliminated ? std::string("eliminated via ") +
                              EliminateStepName(s.step)
                        : "kept (" + s.failure_reason + ")";
    out += " [" + std::to_string(s.size_before) + " -> " +
           std::to_string(s.size_after) + " ops, " +
           std::to_string(s.millis) + " ms]\n";
  }
  return out;
}

CompositionResult Compose(const CompositionProblem& problem,
                          const ComposeOptions& options) {
  auto total_start = std::chrono::steady_clock::now();
  CompositionResult result;

  // Σ := Σ12 ∪ Σ23.
  ConstraintSet sigma = problem.sigma12;
  sigma.insert(sigma.end(), problem.sigma23.begin(), problem.sigma23.end());

  // Key information from every schema feeds Skolem minimization.
  Signature all_keys;
  {
    Result<Signature> merged =
        Signature::Merge(problem.sigma1, problem.sigma2);
    if (merged.ok()) {
      Result<Signature> merged3 = Signature::Merge(*merged, problem.sigma3);
      if (merged3.ok()) all_keys = *merged3;
    }
  }
  ComposeOptions opts = options;
  if (opts.eliminate.keys == nullptr) opts.eliminate.keys = &all_keys;

  std::vector<std::string> order =
      !options.order.empty()
          ? options.order
          : (!problem.elimination_order.empty() ? problem.elimination_order
                                                : problem.sigma2.names());

  std::vector<std::string> residual;
  for (const std::string& symbol : order) {
    auto start = std::chrono::steady_clock::now();
    SymbolStat stat;
    stat.symbol = symbol;
    stat.size_before = OperatorCount(sigma);
    EliminateOutcome outcome = Eliminate(sigma, symbol,
                                         problem.sigma2.ArityOf(symbol),
                                         opts.eliminate);
    stat.eliminated = outcome.success;
    stat.step = outcome.step;
    stat.failure_reason = outcome.failure_reason;
    if (outcome.success) {
      sigma = std::move(outcome.constraints);
      ++result.eliminated_count;
    } else {
      residual.push_back(symbol);
    }
    stat.size_after = OperatorCount(sigma);
    stat.millis = MillisSince(start);
    result.stats.push_back(std::move(stat));
    ++result.total_count;
  }

  if (options.simplify_output) {
    sigma = SimplifyConstraintSet(std::move(sigma), opts.eliminate.registry);
  }

  // Assemble the residual signature σ1 ∪ σ2' ∪ σ3.
  Signature out_sig = problem.sigma1;
  for (const std::string& s : residual) {
    out_sig.AddOrReplaceRelation(s, problem.sigma2.ArityOf(s));
    auto key = problem.sigma2.KeyOf(s);
    if (key.has_value()) {
      Status st = out_sig.SetKey(s, *key);
      (void)st;  // key positions were validated at declaration
    }
  }
  Result<Signature> merged = Signature::Merge(out_sig, problem.sigma3);
  result.sigma = merged.ok() ? *merged : out_sig;
  result.residual_sigma2 = std::move(residual);
  result.constraints = std::move(sigma);
  result.total_millis = MillisSince(total_start);
  return result;
}

}  // namespace mapcomp
