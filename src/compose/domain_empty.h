#ifndef MAPCOMP_COMPOSE_DOMAIN_EMPTY_H_
#define MAPCOMP_COMPOSE_DOMAIN_EMPTY_H_

#include "src/algebra/simplify.h"
#include "src/constraints/constraint.h"
#include "src/op/registry.h"

namespace mapcomp {

/// Builds a SimplifyHook that dispatches to the registry's per-operator
/// simplification rules (user-supplied D/∅ identities, §3.4.3/§3.5.4).
SimplifyHook RegistrySimplifyHook(const op::Registry* registry);

/// The "eliminate domain relation" (§3.4.3) and "eliminate empty relation"
/// (§3.5.4) steps: applies the rewrite identities on every constraint via
/// the algebraic simplifier, then deletes containment constraints that are
/// satisfied by any instance — rhs = D^r, lhs = ∅, or lhs structurally
/// equal to rhs.
ConstraintSet SimplifyAndPrune(ConstraintSet cs, const op::Registry* registry);

}  // namespace mapcomp

#endif  // MAPCOMP_COMPOSE_DOMAIN_EMPTY_H_
