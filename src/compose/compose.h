#ifndef MAPCOMP_COMPOSE_COMPOSE_H_
#define MAPCOMP_COMPOSE_COMPOSE_H_

#include <string>
#include <vector>

#include "src/common/cancel.h"
#include "src/compose/eliminate.h"
#include "src/constraints/mapping.h"

namespace mapcomp {

/// Options for the COMPOSE driver.
struct ComposeOptions {
  EliminateOptions eliminate;
  /// Elimination order for σ2 symbols; empty = the signature's insertion
  /// order (the paper follows "the user-specified ordering", §3.1).
  std::vector<std::string> order;
  /// Run the final constraint-set simplification pass.
  bool simplify_output = true;
  /// Maximum elimination rounds. Round 1 is the paper's single best-effort
  /// pass; later rounds retry only the symbols that failed, because a later
  /// elimination can shrink Σ enough (fewer occurrences, no more
  /// both-sides conflicts) for an earlier failure to succeed. The loop
  /// stops early as soon as a round eliminates nothing, so raising this is
  /// cheap on inputs where one pass already suffices. Must be >= 1.
  int max_rounds = 4;
  /// Intra-problem parallelism: each elimination round is partitioned into
  /// waves of symbols whose occurrence sets share no constraint (see
  /// src/compose/schedule.h), and a wave's symbols are eliminated
  /// concurrently on up to `elim_jobs` lanes of the process-wide pool.
  /// Wave planning and the merge order never depend on this value, only
  /// the execution does, so results — including Fingerprint() — are
  /// byte-identical for any elim_jobs. 1 = run waves sequentially.
  int elim_jobs = 1;
  /// Confirm Bloom-mask occurrence candidates with an exact walk during
  /// wave planning. When false, planning trusts the mask alone: false
  /// positives add spurious conflict edges, which can only merge waves
  /// (over-serialize) — never co-schedule two truly conflicting symbols.
  bool exact_conflicts = true;
  /// Cooperative cancellation/deadline token, polled at plan-defined
  /// points: round boundaries, wave-plan boundaries, and before each
  /// symbol's elimination (including inside ELIMINATE between steps). When
  /// it fires, the driver stops attempting, keeps every un-attempted
  /// symbol as a residual, and reports via CompositionResult::interrupt —
  /// the partial composition is still a valid best-effort answer (§3.1).
  /// Excluded from Fingerprint() like elim_jobs: a run that completes
  /// without the token firing is byte-identical to an unbounded run.
  common::CancelToken cancel;

  /// Canonical serialization of every option that can change a
  /// CompositionResult: the eliminate switches and budgets, the order, the
  /// simplify/rounds/exact_conflicts knobs. `elim_jobs` is excluded by
  /// design (results are byte-identical at any lane count), and so is
  /// `cancel` (a token that never fires cannot change the result; a fired
  /// one yields an interrupted result, which is never cached). A preset
  /// `eliminate.keys` is serialized by content; a non-default registry by
  /// its process-unique, never-reused `op::Registry::uid()`.
  /// ComposeService combines this with CompositionProblem::Fingerprint()
  /// so one service can host mixed-options traffic without serving stale
  /// variants.
  std::string Fingerprint() const;
};

/// Per-attempt elimination record. A symbol that fails in one round and is
/// retried later has one entry per attempt, distinguished by `round`.
struct SymbolStat {
  std::string symbol;
  int round = 1;
  bool eliminated = false;
  EliminateStep step = EliminateStep::kNone;
  std::string failure_reason;
  double millis = 0.0;
  int size_before = 0;  ///< operator count before this symbol's elimination
  int size_after = 0;
};

/// Aggregate of one elimination round.
struct RoundStat {
  int round = 1;
  int attempted = 0;   ///< symbols tried in this round
  int eliminated = 0;  ///< of those, how many succeeded
  /// Width of each scheduler wave executed in this round, in execution
  /// order; sums to `attempted`. All-1 means the conflict graph serialized
  /// everything (the pre-scheduler behavior).
  std::vector<int> wave_widths;
  double millis = 0.0;
};

/// Result of composing two mappings. Best-effort (§3.1): `residual_sigma2`
/// lists the σ2 symbols that could not be eliminated; `constraints` is over
/// σ1 ∪ residual σ2 ∪ σ3 and is equivalent to Σ12 ∪ Σ23.
struct CompositionResult {
  Signature sigma;  ///< σ1 ∪ residual σ2 ∪ σ3
  std::vector<std::string> residual_sigma2;
  ConstraintSet constraints;
  std::vector<SymbolStat> stats;
  std::vector<RoundStat> rounds;
  /// Non-fatal problems hit while assembling the result (e.g. residual key
  /// metadata inconsistent with the residual relation's arity, or a σ3
  /// signature merge conflict). Empty on a clean composition.
  std::vector<std::string> warnings;
  /// OK for a run that ran to completion (possibly with residuals);
  /// kDeadlineExceeded / kCancelled when options.cancel fired and the
  /// driver stopped early. An interrupted result is still well-formed —
  /// every un-attempted symbol is a residual and `constraints` is
  /// equivalent to Σ12 ∪ Σ23 over the enlarged signature — but it is a
  /// partial answer by interruption, not by elimination failure, so
  /// callers (and the service cache) must not treat it as canonical.
  Status interrupt;
  int eliminated_count = 0;  ///< distinct σ2 symbols eliminated
  int total_count = 0;       ///< distinct σ2 symbols attempted
  double total_millis = 0.0;

  double EliminatedFraction() const {
    return total_count == 0
               ? 1.0
               : static_cast<double>(eliminated_count) / total_count;
  }
  std::string Report() const;

  /// Canonical serialization of everything deterministic in the result:
  /// signature, residuals, constraints, per-attempt and per-round stats
  /// (in order), warnings and counters — but no wall-clock timings. Two
  /// compositions of the same problem with the same options produce equal
  /// fingerprints regardless of thread count or machine load; the
  /// ComposeMany determinism tests and the parallel benchmark compare these.
  std::string Fingerprint() const;
};

/// Procedure COMPOSE (§3.1), upgraded to a multi-round fixpoint with a
/// dependency-aware scheduler: each round partitions the pending σ2
/// symbols into waves of constraint-disjoint symbols (conflict graph over
/// occurrence sets, src/compose/schedule.h). A singleton wave eliminates
/// from the full Σ exactly like the original one-at-a-time driver; a wider
/// wave hands each symbol only the constraints that mention it, runs the
/// eliminations concurrently (options.elim_jobs lanes) against the same
/// snapshot, and merges outcomes in the user-specified order — untouched
/// constraints keep their positions, each success's rewritten group is
/// appended in order, failures leave their group in place. Failures are
/// retried for up to options.max_rounds rounds while Σ keeps changing,
/// keeping whatever still cannot be eliminated. Key information from all
/// three schemas feeds Skolem-argument minimization automatically unless
/// options.eliminate.keys is preset.
CompositionResult Compose(const CompositionProblem& problem,
                          const ComposeOptions& options = {});

}  // namespace mapcomp

#endif  // MAPCOMP_COMPOSE_COMPOSE_H_
