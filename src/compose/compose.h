#ifndef MAPCOMP_COMPOSE_COMPOSE_H_
#define MAPCOMP_COMPOSE_COMPOSE_H_

#include <string>
#include <vector>

#include "src/compose/eliminate.h"
#include "src/constraints/mapping.h"

namespace mapcomp {

/// Options for the COMPOSE driver.
struct ComposeOptions {
  EliminateOptions eliminate;
  /// Elimination order for σ2 symbols; empty = the signature's insertion
  /// order (the paper follows "the user-specified ordering", §3.1).
  std::vector<std::string> order;
  /// Run the final constraint-set simplification pass.
  bool simplify_output = true;
};

/// Per-symbol elimination record.
struct SymbolStat {
  std::string symbol;
  bool eliminated = false;
  EliminateStep step = EliminateStep::kNone;
  std::string failure_reason;
  double millis = 0.0;
  int size_before = 0;  ///< operator count before this symbol's elimination
  int size_after = 0;
};

/// Result of composing two mappings. Best-effort (§3.1): `residual_sigma2`
/// lists the σ2 symbols that could not be eliminated; `constraints` is over
/// σ1 ∪ residual σ2 ∪ σ3 and is equivalent to Σ12 ∪ Σ23.
struct CompositionResult {
  Signature sigma;  ///< σ1 ∪ residual σ2 ∪ σ3
  std::vector<std::string> residual_sigma2;
  ConstraintSet constraints;
  std::vector<SymbolStat> stats;
  int eliminated_count = 0;
  int total_count = 0;
  double total_millis = 0.0;

  double EliminatedFraction() const {
    return total_count == 0
               ? 1.0
               : static_cast<double>(eliminated_count) / total_count;
  }
  std::string Report() const;
};

/// Procedure COMPOSE (§3.1): eliminates σ2 symbols one at a time in the
/// given order, keeping whatever cannot be eliminated. Key information from
/// all three schemas feeds Skolem-argument minimization automatically
/// unless options.eliminate.keys is preset.
CompositionResult Compose(const CompositionProblem& problem,
                          const ComposeOptions& options = {});

}  // namespace mapcomp

#endif  // MAPCOMP_COMPOSE_COMPOSE_H_
