#ifndef MAPCOMP_COMPOSE_COMPOSE_H_
#define MAPCOMP_COMPOSE_COMPOSE_H_

#include <string>
#include <vector>

#include "src/compose/eliminate.h"
#include "src/constraints/mapping.h"

namespace mapcomp {

/// Options for the COMPOSE driver.
struct ComposeOptions {
  EliminateOptions eliminate;
  /// Elimination order for σ2 symbols; empty = the signature's insertion
  /// order (the paper follows "the user-specified ordering", §3.1).
  std::vector<std::string> order;
  /// Run the final constraint-set simplification pass.
  bool simplify_output = true;
  /// Maximum elimination rounds. Round 1 is the paper's single best-effort
  /// pass; later rounds retry only the symbols that failed, because a later
  /// elimination can shrink Σ enough (fewer occurrences, no more
  /// both-sides conflicts) for an earlier failure to succeed. The loop
  /// stops early as soon as a round eliminates nothing, so raising this is
  /// cheap on inputs where one pass already suffices. Must be >= 1.
  int max_rounds = 4;
};

/// Per-attempt elimination record. A symbol that fails in one round and is
/// retried later has one entry per attempt, distinguished by `round`.
struct SymbolStat {
  std::string symbol;
  int round = 1;
  bool eliminated = false;
  EliminateStep step = EliminateStep::kNone;
  std::string failure_reason;
  double millis = 0.0;
  int size_before = 0;  ///< operator count before this symbol's elimination
  int size_after = 0;
};

/// Aggregate of one elimination round.
struct RoundStat {
  int round = 1;
  int attempted = 0;   ///< symbols tried in this round
  int eliminated = 0;  ///< of those, how many succeeded
  double millis = 0.0;
};

/// Result of composing two mappings. Best-effort (§3.1): `residual_sigma2`
/// lists the σ2 symbols that could not be eliminated; `constraints` is over
/// σ1 ∪ residual σ2 ∪ σ3 and is equivalent to Σ12 ∪ Σ23.
struct CompositionResult {
  Signature sigma;  ///< σ1 ∪ residual σ2 ∪ σ3
  std::vector<std::string> residual_sigma2;
  ConstraintSet constraints;
  std::vector<SymbolStat> stats;
  std::vector<RoundStat> rounds;
  /// Non-fatal problems hit while assembling the result (e.g. residual key
  /// metadata inconsistent with the residual relation's arity, or a σ3
  /// signature merge conflict). Empty on a clean composition.
  std::vector<std::string> warnings;
  int eliminated_count = 0;  ///< distinct σ2 symbols eliminated
  int total_count = 0;       ///< distinct σ2 symbols attempted
  double total_millis = 0.0;

  double EliminatedFraction() const {
    return total_count == 0
               ? 1.0
               : static_cast<double>(eliminated_count) / total_count;
  }
  std::string Report() const;

  /// Canonical serialization of everything deterministic in the result:
  /// signature, residuals, constraints, per-attempt and per-round stats
  /// (in order), warnings and counters — but no wall-clock timings. Two
  /// compositions of the same problem with the same options produce equal
  /// fingerprints regardless of thread count or machine load; the
  /// ComposeMany determinism tests and the parallel benchmark compare these.
  std::string Fingerprint() const;
};

/// Procedure COMPOSE (§3.1), upgraded to a multi-round fixpoint: eliminates
/// σ2 symbols one at a time in the given order, then retries the failures
/// for up to options.max_rounds rounds while progress is made, keeping
/// whatever still cannot be eliminated. Key information from all three
/// schemas feeds Skolem-argument minimization automatically unless
/// options.eliminate.keys is preset.
CompositionResult Compose(const CompositionProblem& problem,
                          const ComposeOptions& options = {});

}  // namespace mapcomp

#endif  // MAPCOMP_COMPOSE_COMPOSE_H_
