#ifndef MAPCOMP_COMPOSE_MONOTONE_H_
#define MAPCOMP_COMPOSE_MONOTONE_H_

#include <string>

#include "src/algebra/expr.h"
#include "src/op/registry.h"

namespace mapcomp {

/// Result of the MONOTONE procedure (paper §3.3): how an expression depends
/// on a relation symbol.
enum class Mono {
  kMonotone,     ///< 'm' — adding tuples to S only adds output tuples
  kAnti,         ///< 'a' — adding tuples to S only removes output tuples
  kIndependent,  ///< 'i' — the expression does not depend on S
  kUnknown,      ///< 'u' — cannot tell
};

char MonoToChar(Mono m);

/// The sound-but-incomplete recursive monotonicity check of §3.3. Per-node:
/// σ and π pass through; ∪, ∩, × combine their operands' values; set
/// difference flips its second operand; D is monotone in every symbol
/// (adding tuples can only grow the active domain); user-defined operators
/// use the registry's per-argument polarity table.
Mono CheckMonotone(const ExprPtr& e, const std::string& symbol,
                   const op::Registry* registry = &op::Registry::Default());

/// Convenience: true when the expression is monotone in — or independent
/// of — the symbol (the condition left/right compose require).
bool IsMonotoneOrIndependent(const ExprPtr& e, const std::string& symbol,
                             const op::Registry* registry =
                                 &op::Registry::Default());

}  // namespace mapcomp

#endif  // MAPCOMP_COMPOSE_MONOTONE_H_
