#include "src/compose/monotone.h"

namespace mapcomp {

namespace {

/// Combination table for operators that are monotone in all arguments
/// (∪, ∩, ×): 'i' is the identity, equal values persist, opposite
/// polarities or any 'u' give 'u'.
Mono Combine(Mono a, Mono b) {
  if (a == Mono::kIndependent) return b;
  if (b == Mono::kIndependent) return a;
  if (a == b) return a;
  return Mono::kUnknown;
}

Mono Flip(Mono m) {
  switch (m) {
    case Mono::kMonotone:
      return Mono::kAnti;
    case Mono::kAnti:
      return Mono::kMonotone;
    default:
      return m;
  }
}

}  // namespace

char MonoToChar(Mono m) {
  switch (m) {
    case Mono::kMonotone:
      return 'm';
    case Mono::kAnti:
      return 'a';
    case Mono::kIndependent:
      return 'i';
    case Mono::kUnknown:
      return 'u';
  }
  return '?';
}

Mono CheckMonotone(const ExprPtr& e, const std::string& symbol,
                   const op::Registry* registry) {
  switch (e->kind()) {
    case ExprKind::kRelation:
      return e->name() == symbol ? Mono::kMonotone : Mono::kIndependent;
    case ExprKind::kDomain:
      // D is shorthand for the union of projections of *all* relations
      // (paper §2), so it grows monotonically with any symbol.
      return Mono::kMonotone;
    case ExprKind::kEmpty:
    case ExprKind::kLiteral:
      return Mono::kIndependent;
    case ExprKind::kUnion:
    case ExprKind::kIntersect:
    case ExprKind::kProduct:
      return Combine(CheckMonotone(e->child(0), symbol, registry),
                     CheckMonotone(e->child(1), symbol, registry));
    case ExprKind::kDifference:
      return Combine(CheckMonotone(e->child(0), symbol, registry),
                     Flip(CheckMonotone(e->child(1), symbol, registry)));
    case ExprKind::kSelect:
    case ExprKind::kProject:
    case ExprKind::kSkolem:
      return CheckMonotone(e->child(0), symbol, registry);
    case ExprKind::kUserOp: {
      const op::OperatorDef* def =
          registry != nullptr ? registry->Find(e->name()) : nullptr;
      Mono acc = Mono::kIndependent;
      for (size_t i = 0; i < e->children().size(); ++i) {
        Mono child = CheckMonotone(e->children()[i], symbol, registry);
        op::Polarity pol =
            def != nullptr && i < def->polarity.size()
                ? def->polarity[i]
                : op::Polarity::kUnknown;
        Mono adjusted = Mono::kUnknown;
        switch (pol) {
          case op::Polarity::kMonotone:
            adjusted = child;
            break;
          case op::Polarity::kAnti:
            adjusted = Flip(child);
            break;
          case op::Polarity::kUnknown:
            adjusted = child == Mono::kIndependent ? Mono::kIndependent
                                                   : Mono::kUnknown;
            break;
        }
        acc = Combine(acc, adjusted);
      }
      return acc;
    }
  }
  return Mono::kUnknown;
}

bool IsMonotoneOrIndependent(const ExprPtr& e, const std::string& symbol,
                             const op::Registry* registry) {
  Mono m = CheckMonotone(e, symbol, registry);
  return m == Mono::kMonotone || m == Mono::kIndependent;
}

}  // namespace mapcomp
