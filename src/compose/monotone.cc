#include "src/compose/monotone.h"

#include <unordered_map>

namespace mapcomp {

namespace {

Mono CheckMonotoneNode(const ExprPtr& e, const std::string& symbol,
                       uint64_t bit, const op::Registry* registry,
                       std::unordered_map<const Expr*, Mono>* memo);

/// Combination table for operators that are monotone in all arguments
/// (∪, ∩, ×): 'i' is the identity, equal values persist, opposite
/// polarities or any 'u' give 'u'.
Mono Combine(Mono a, Mono b) {
  if (a == Mono::kIndependent) return b;
  if (b == Mono::kIndependent) return a;
  if (a == b) return a;
  return Mono::kUnknown;
}

Mono Flip(Mono m) {
  switch (m) {
    case Mono::kMonotone:
      return Mono::kAnti;
    case Mono::kAnti:
      return Mono::kMonotone;
    default:
      return m;
  }
}

/// `bit` is NameBit(symbol), hashed once per query rather than per node.
/// `memo` (used above kSharedSubtreeThreshold) keeps the walk linear in the
/// physical node count of a shared DAG.
Mono CheckMonotoneImpl(const ExprPtr& e, const std::string& symbol,
                       uint64_t bit, const op::Registry* registry,
                       std::unordered_map<const Expr*, Mono>* memo) {
  // O(1) fast path via the interner's cached analyses: a subtree that
  // provably mentions neither `symbol` nor D is independent of `symbol`
  // under every operator's polarity rule.
  if ((e->relation_mask() & bit) == 0 && !e->contains_domain()) {
    return Mono::kIndependent;
  }
  if (memo != nullptr) {
    auto it = memo->find(e.get());
    if (it != memo->end()) return it->second;
  }
  Mono result = CheckMonotoneNode(e, symbol, bit, registry, memo);
  if (memo != nullptr) memo->emplace(e.get(), result);
  return result;
}

Mono CheckMonotoneNode(const ExprPtr& e, const std::string& symbol,
                       uint64_t bit, const op::Registry* registry,
                       std::unordered_map<const Expr*, Mono>* memo) {
  switch (e->kind()) {
    case ExprKind::kRelation:
      return e->name() == symbol ? Mono::kMonotone : Mono::kIndependent;
    case ExprKind::kDomain:
      // D is shorthand for the union of projections of *all* relations
      // (paper §2), so it grows monotonically with any symbol.
      return Mono::kMonotone;
    case ExprKind::kEmpty:
    case ExprKind::kLiteral:
      return Mono::kIndependent;
    case ExprKind::kUnion:
    case ExprKind::kIntersect:
    case ExprKind::kProduct:
      return Combine(
          CheckMonotoneImpl(e->child(0), symbol, bit, registry, memo),
          CheckMonotoneImpl(e->child(1), symbol, bit, registry, memo));
    case ExprKind::kDifference:
      return Combine(
          CheckMonotoneImpl(e->child(0), symbol, bit, registry, memo),
          Flip(CheckMonotoneImpl(e->child(1), symbol, bit, registry, memo)));
    case ExprKind::kSelect:
    case ExprKind::kProject:
    case ExprKind::kSkolem:
      return CheckMonotoneImpl(e->child(0), symbol, bit, registry, memo);
    case ExprKind::kUserOp: {
      const op::OperatorDef* def =
          registry != nullptr ? registry->Find(e->name()) : nullptr;
      Mono acc = Mono::kIndependent;
      for (size_t i = 0; i < e->children().size(); ++i) {
        Mono child =
            CheckMonotoneImpl(e->children()[i], symbol, bit, registry, memo);
        op::Polarity pol =
            def != nullptr && i < def->polarity.size()
                ? def->polarity[i]
                : op::Polarity::kUnknown;
        Mono adjusted = Mono::kUnknown;
        switch (pol) {
          case op::Polarity::kMonotone:
            adjusted = child;
            break;
          case op::Polarity::kAnti:
            adjusted = Flip(child);
            break;
          case op::Polarity::kUnknown:
            adjusted = child == Mono::kIndependent ? Mono::kIndependent
                                                   : Mono::kUnknown;
            break;
        }
        acc = Combine(acc, adjusted);
      }
      return acc;
    }
  }
  return Mono::kUnknown;
}

}  // namespace

char MonoToChar(Mono m) {
  switch (m) {
    case Mono::kMonotone:
      return 'm';
    case Mono::kAnti:
      return 'a';
    case Mono::kIndependent:
      return 'i';
    case Mono::kUnknown:
      return 'u';
  }
  return '?';
}

Mono CheckMonotone(const ExprPtr& e, const std::string& symbol,
                   const op::Registry* registry) {
  uint64_t bit = Expr::NameBit(symbol);
  if (e->op_count() <= kSharedSubtreeThreshold) {
    return CheckMonotoneImpl(e, symbol, bit, registry, nullptr);
  }
  std::unordered_map<const Expr*, Mono> memo;
  return CheckMonotoneImpl(e, symbol, bit, registry, &memo);
}

bool IsMonotoneOrIndependent(const ExprPtr& e, const std::string& symbol,
                             const op::Registry* registry) {
  Mono m = CheckMonotone(e, symbol, registry);
  return m == Mono::kMonotone || m == Mono::kIndependent;
}

}  // namespace mapcomp
