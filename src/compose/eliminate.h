#ifndef MAPCOMP_COMPOSE_ELIMINATE_H_
#define MAPCOMP_COMPOSE_ELIMINATE_H_

#include <string>

#include "src/common/cancel.h"
#include "src/constraints/constraint.h"
#include "src/constraints/signature.h"
#include "src/op/registry.h"

namespace mapcomp {

/// Which ELIMINATE step succeeded for a symbol.
enum class EliminateStep {
  kNone,          ///< elimination failed
  kNotMentioned,  ///< symbol did not occur in the constraints
  kUnfold,        ///< view unfolding (§3.2)
  kLeftCompose,   ///< left compose (§3.4)
  kRightCompose,  ///< right compose (§3.5)
};

const char* EliminateStepName(EliminateStep step);

/// Options for ELIMINATE. The enable_* switches implement the paper's
/// experiment configurations ('no unfolding', 'no right compose',
/// 'no left compose').
struct EliminateOptions {
  bool enable_unfold = true;
  bool enable_left_compose = true;
  bool enable_right_compose = true;
  /// Key information used to minimize Skolem function arguments (§3.5.1).
  const Signature* keys = nullptr;
  const op::Registry* registry = &op::Registry::Default();
  /// Abort when the working constraint set exceeds this multiple of the
  /// input size (operator count); the paper aborts at 100 (§4).
  int max_blowup_factor = 100;
  /// When > 0, the blowup guard measures growth against this operator
  /// count instead of the input set's own size. The wave scheduler passes
  /// the full Σ snapshot size here when eliminating from a per-symbol
  /// partition, so a symbol's budget does not shrink merely because it was
  /// handed only the constraints that mention it.
  int blowup_baseline_ops = 0;
  /// Polled between steps (unfold → left → right). When it fires the
  /// remaining steps are skipped and the outcome reports `interrupted`:
  /// not a real elimination failure, so the driver must not record it as
  /// futile. The compose driver copies its own token here.
  common::CancelToken cancel;
};

/// Outcome of eliminating one symbol.
struct EliminateOutcome {
  bool success = false;
  EliminateStep step = EliminateStep::kNone;
  ConstraintSet constraints;  ///< new set on success; the input on failure
  std::string failure_reason; ///< set when !success
  /// True when at least one step failed only by exceeding the blowup
  /// budget. Unlike every other failure mode — which depends solely on the
  /// constraints mentioning the symbol — a blowup abort depends on the
  /// *global* baseline size, so the wave scheduler must not treat such a
  /// failure as reproducible across Σ changes.
  bool blowup_limited = false;
  /// True when options.cancel fired before or between steps: the symbol
  /// was never fully attempted. The constraints are the untouched input.
  bool interrupted = false;
};

/// The ELIMINATE procedure (§3.1): tries view unfolding, then left compose,
/// then right compose, to produce an equivalent constraint set without
/// `symbol`. Never partially applies a step: each either fully succeeds or
/// leaves the constraints untouched.
EliminateOutcome Eliminate(const ConstraintSet& cs, const std::string& symbol,
                           int arity, const EliminateOptions& options = {});

}  // namespace mapcomp

#endif  // MAPCOMP_COMPOSE_ELIMINATE_H_
