#ifndef MAPCOMP_COMPOSE_ELIMINATE_H_
#define MAPCOMP_COMPOSE_ELIMINATE_H_

#include <string>

#include "src/constraints/constraint.h"
#include "src/constraints/signature.h"
#include "src/op/registry.h"

namespace mapcomp {

/// Which ELIMINATE step succeeded for a symbol.
enum class EliminateStep {
  kNone,          ///< elimination failed
  kNotMentioned,  ///< symbol did not occur in the constraints
  kUnfold,        ///< view unfolding (§3.2)
  kLeftCompose,   ///< left compose (§3.4)
  kRightCompose,  ///< right compose (§3.5)
};

const char* EliminateStepName(EliminateStep step);

/// Options for ELIMINATE. The enable_* switches implement the paper's
/// experiment configurations ('no unfolding', 'no right compose',
/// 'no left compose').
struct EliminateOptions {
  bool enable_unfold = true;
  bool enable_left_compose = true;
  bool enable_right_compose = true;
  /// Key information used to minimize Skolem function arguments (§3.5.1).
  const Signature* keys = nullptr;
  const op::Registry* registry = &op::Registry::Default();
  /// Abort when the working constraint set exceeds this multiple of the
  /// input size (operator count); the paper aborts at 100 (§4).
  int max_blowup_factor = 100;
};

/// Outcome of eliminating one symbol.
struct EliminateOutcome {
  bool success = false;
  EliminateStep step = EliminateStep::kNone;
  ConstraintSet constraints;  ///< new set on success; the input on failure
  std::string failure_reason; ///< set when !success
};

/// The ELIMINATE procedure (§3.1): tries view unfolding, then left compose,
/// then right compose, to produce an equivalent constraint set without
/// `symbol`. Never partially applies a step: each either fully succeeds or
/// leaves the constraints untouched.
EliminateOutcome Eliminate(const ConstraintSet& cs, const std::string& symbol,
                           int arity, const EliminateOptions& options = {});

}  // namespace mapcomp

#endif  // MAPCOMP_COMPOSE_ELIMINATE_H_
