#ifndef MAPCOMP_COMPOSE_NORMALIZE_RIGHT_H_
#define MAPCOMP_COMPOSE_NORMALIZE_RIGHT_H_

#include <string>

#include "src/constraints/constraint.h"
#include "src/constraints/signature.h"
#include "src/op/registry.h"

namespace mapcomp {

/// Result of right normalization (§3.5.1): the constraints not mentioning S
/// on their right side, plus the collapsed lower bound ξ : E1 ⊆ S.
struct RightNormalForm {
  ConstraintSet others;
  ExprPtr lower_bound;  ///< E1; may contain Skolem operators; never S
};

/// Rewrites `input` (containment constraints only) so that S appears on the
/// right of exactly one constraint, alone. Uses the identities
///
///   ∪:  E1 ⊆ E2 ∪ E3  ↔  E1 − E3 ⊆ E2   (S-side kept on the right)
///   ∩:  E1 ⊆ E2 ∩ E3  ↔  E1 ⊆ E2, E1 ⊆ E3
///   ×:  E1 ⊆ E2 × E3  ↔  π_prefix(E1) ⊆ E2, π_suffix(E1) ⊆ E3
///   −:  E1 ⊆ E2 − E3  ↔  E1 ⊆ E2, E1 ∩ E3 ⊆ ∅
///   π:  E1 ⊆ π_I(E2)  ↔  π_P(f_K(…(E1))) ⊆ E2      (Skolemization)
///   σ:  E1 ⊆ σ_c(E2)  ↔  E1 ⊆ E2, E1 ⊆ σ_c(D^r)
///
/// There is a rule for every basic operator, so right normalization always
/// succeeds on basic relational expressions (§3.5.1) — with two exceptions
/// treated as failures: S occurring in both operands of a ∪ on the right,
/// and unregistered user operators.
///
/// Skolemization: each projected-away column j of E2 gets a fresh function
/// f_j applied to E1's columns; when E1 is a base relation with a declared
/// key (in `keys`), the function's arguments are narrowed to the key
/// positions, which "increases our chances of success in deskolemize"
/// (§3.5.1). Duplicate indexes in I additionally emit
/// E1 ⊆ σ_{#k=#k'}(D^{r1}).
Result<RightNormalForm> RightNormalize(const ConstraintSet& input,
                                       const std::string& symbol, int arity,
                                       const Signature* keys,
                                       int* skolem_counter,
                                       const op::Registry* registry);

}  // namespace mapcomp

#endif  // MAPCOMP_COMPOSE_NORMALIZE_RIGHT_H_
