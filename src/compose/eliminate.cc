#include "src/compose/eliminate.h"

#include "src/algebra/substitute.h"
#include "src/compose/deskolemize.h"
#include "src/compose/domain_empty.h"
#include "src/compose/monotone.h"
#include "src/compose/normalize_left.h"
#include "src/compose/normalize_right.h"

namespace mapcomp {

namespace {

bool IsBareSymbol(const ExprPtr& e, const std::string& symbol) {
  return e->kind() == ExprKind::kRelation && e->name() == symbol;
}

/// View unfolding (§3.2): find S = E1 (either orientation) with E1 free of
/// S, delete it, substitute E1 for S everywhere. Correct regardless of
/// monotonicity because the defining constraint is an equality.
Result<ConstraintSet> TryUnfold(const ConstraintSet& cs,
                                const std::string& symbol,
                                const op::Registry* registry) {
  int def_index = -1;
  ExprPtr definition;
  for (size_t i = 0; i < cs.size(); ++i) {
    const Constraint& c = cs[i];
    if (c.kind != ConstraintKind::kEquality) continue;
    if (IsBareSymbol(c.lhs, symbol) && !ContainsRelation(c.rhs, symbol)) {
      def_index = static_cast<int>(i);
      definition = c.rhs;
      break;
    }
    if (IsBareSymbol(c.rhs, symbol) && !ContainsRelation(c.lhs, symbol)) {
      def_index = static_cast<int>(i);
      definition = c.lhs;
      break;
    }
  }
  if (def_index < 0) {
    return Status::NotFound("no defining equality constraint for " + symbol);
  }
  ConstraintSet out;
  out.reserve(cs.size() - 1);
  for (size_t i = 0; i < cs.size(); ++i) {
    if (static_cast<int>(i) == def_index) continue;
    Constraint c = cs[i];
    c.lhs = SubstituteRelation(c.lhs, symbol, definition);
    c.rhs = SubstituteRelation(c.rhs, symbol, definition);
    out.push_back(std::move(c));
  }
  return SimplifyAndPrune(std::move(out), registry);
}

/// Splits the constraint set into those mentioning S (equalities converted
/// to two containments) and those not.
void Partition(const ConstraintSet& cs, const std::string& symbol,
               ConstraintSet* with_s, ConstraintSet* without_s) {
  for (const Constraint& c : cs) {
    if (!ConstraintContainsRelation(c, symbol)) {
      without_s->push_back(c);
      continue;
    }
    if (c.kind == ConstraintKind::kEquality) {
      with_s->push_back(Constraint::Contain(c.lhs, c.rhs));
      with_s->push_back(Constraint::Contain(c.rhs, c.lhs));
    } else {
      with_s->push_back(c);
    }
  }
}

Status CheckNoBothSides(const ConstraintSet& cs, const std::string& symbol) {
  for (const Constraint& c : cs) {
    if (ContainsRelation(c.lhs, symbol) && ContainsRelation(c.rhs, symbol)) {
      return Status::Unsupported(symbol +
                                 " appears on both sides of a constraint");
    }
  }
  return Status::OK();
}

Result<ConstraintSet> TryLeftCompose(const ConstraintSet& cs,
                                     const std::string& symbol, int arity,
                                     const EliminateOptions& options) {
  ConstraintSet with_s, without_s;
  Partition(cs, symbol, &with_s, &without_s);
  MAPCOMP_RETURN_IF_ERROR(CheckNoBothSides(with_s, symbol));
  // Right-monotonicity pre-check (§3.4).
  for (const Constraint& c : with_s) {
    if (ContainsRelation(c.rhs, symbol) &&
        CheckMonotone(c.rhs, symbol, options.registry) != Mono::kMonotone) {
      return Status::Unsupported("rhs of " + c.ToString() +
                                 " is not monotone in " + symbol);
    }
  }
  MAPCOMP_ASSIGN_OR_RETURN(
      LeftNormalForm nf,
      LeftNormalize(with_s, symbol, arity, options.registry));
  // Normalization may have moved S into new right-side positions (e.g. the
  // difference rule); re-verify monotonicity before substituting.
  ConstraintSet substituted = std::move(without_s);
  for (Constraint& c : nf.others) {
    if (ContainsRelation(c.lhs, symbol)) {
      return Status::Internal("left normalization left " + symbol +
                              " on a left side");
    }
    if (ContainsRelation(c.rhs, symbol)) {
      if (CheckMonotone(c.rhs, symbol, options.registry) != Mono::kMonotone) {
        return Status::Unsupported("rhs of normalized " + c.ToString() +
                                   " is not monotone in " + symbol);
      }
      c.rhs = SubstituteRelation(c.rhs, symbol, nf.upper_bound);
    }
    substituted.push_back(std::move(c));
  }
  // Eliminate the domain relation (§3.4.3).
  return SimplifyAndPrune(std::move(substituted), options.registry);
}

Result<ConstraintSet> TryRightCompose(const ConstraintSet& cs,
                                      const std::string& symbol, int arity,
                                      const EliminateOptions& options) {
  ConstraintSet with_s, without_s;
  Partition(cs, symbol, &with_s, &without_s);
  MAPCOMP_RETURN_IF_ERROR(CheckNoBothSides(with_s, symbol));
  // Left-monotonicity pre-check (§3.5).
  for (const Constraint& c : with_s) {
    if (ContainsRelation(c.lhs, symbol) &&
        CheckMonotone(c.lhs, symbol, options.registry) != Mono::kMonotone) {
      return Status::Unsupported("lhs of " + c.ToString() +
                                 " is not monotone in " + symbol);
    }
  }
  int skolem_counter = 0;
  MAPCOMP_ASSIGN_OR_RETURN(
      RightNormalForm nf,
      RightNormalize(with_s, symbol, arity, options.keys, &skolem_counter,
                     options.registry));
  ConstraintSet substituted = std::move(without_s);
  for (Constraint& c : nf.others) {
    if (ContainsRelation(c.rhs, symbol)) {
      return Status::Internal("right normalization left " + symbol +
                              " on a right side");
    }
    if (ContainsRelation(c.lhs, symbol)) {
      if (CheckMonotone(c.lhs, symbol, options.registry) != Mono::kMonotone) {
        return Status::Unsupported("lhs of normalized " + c.ToString() +
                                   " is not monotone in " + symbol);
      }
      c.lhs = SubstituteRelation(c.lhs, symbol, nf.lower_bound);
    }
    substituted.push_back(std::move(c));
  }
  // Eliminate the empty relation (§3.5.4).
  substituted = SimplifyAndPrune(std::move(substituted), options.registry);
  // Right-denormalize (§3.5.3) when Skolem functions were introduced.
  if (ContainsSkolem(substituted)) {
    MAPCOMP_ASSIGN_OR_RETURN(substituted, Deskolemize(substituted));
    substituted = SimplifyAndPrune(std::move(substituted), options.registry);
  }
  return substituted;
}

}  // namespace

const char* EliminateStepName(EliminateStep step) {
  switch (step) {
    case EliminateStep::kNone:
      return "none";
    case EliminateStep::kNotMentioned:
      return "not-mentioned";
    case EliminateStep::kUnfold:
      return "unfold";
    case EliminateStep::kLeftCompose:
      return "left-compose";
    case EliminateStep::kRightCompose:
      return "right-compose";
  }
  return "?";
}

EliminateOutcome Eliminate(const ConstraintSet& cs, const std::string& symbol,
                           int arity, const EliminateOptions& options) {
  EliminateOutcome out;
  out.constraints = cs;

  bool mentioned = false;
  for (const Constraint& c : cs) {
    if (ConstraintContainsRelation(c, symbol)) {
      mentioned = true;
      break;
    }
  }
  if (!mentioned) {
    out.success = true;
    out.step = EliminateStep::kNotMentioned;
    return out;
  }

  int input_size = options.blowup_baseline_ops > 0
                       ? options.blowup_baseline_ops
                       : OperatorCount(cs);
  auto blown_up = [&](const ConstraintSet& result) {
    return OperatorCount(result) >
           options.max_blowup_factor * std::max(input_size, 1);
  };
  std::string reasons;

  // Cancellation points sit between steps, never inside one: each step
  // still fully succeeds or leaves the constraints untouched, so an
  // interrupted outcome is always the untouched input.
  auto interrupted = [&]() {
    if (!options.cancel.Fired()) return false;
    out.success = false;
    out.step = EliminateStep::kNone;
    out.interrupted = true;
    out.failure_reason = "interrupted";
    return true;
  };

  if (interrupted()) return out;
  if (options.enable_unfold) {
    Result<ConstraintSet> r = TryUnfold(cs, symbol, options.registry);
    if (r.ok() && blown_up(*r)) {
      reasons += "[unfold] result exceeds blowup budget; ";
      out.blowup_limited = true;
    } else if (r.ok()) {
      out.success = true;
      out.step = EliminateStep::kUnfold;
      out.constraints = std::move(*r);
      return out;
    } else {
      reasons += "[unfold] " + r.status().message() + "; ";
    }
  }
  if (interrupted()) return out;
  if (options.enable_left_compose) {
    Result<ConstraintSet> r = TryLeftCompose(cs, symbol, arity, options);
    if (r.ok() && blown_up(*r)) {
      reasons += "[left] result exceeds blowup budget; ";
      out.blowup_limited = true;
    } else if (r.ok()) {
      out.success = true;
      out.step = EliminateStep::kLeftCompose;
      out.constraints = std::move(*r);
      return out;
    } else {
      reasons += "[left] " + r.status().message() + "; ";
    }
  }
  if (interrupted()) return out;
  if (options.enable_right_compose) {
    Result<ConstraintSet> r = TryRightCompose(cs, symbol, arity, options);
    if (r.ok() && blown_up(*r)) {
      reasons += "[right] result exceeds blowup budget; ";
      out.blowup_limited = true;
    } else if (r.ok()) {
      out.success = true;
      out.step = EliminateStep::kRightCompose;
      out.constraints = std::move(*r);
      return out;
    } else {
      reasons += "[right] " + r.status().message() + "; ";
    }
  }
  out.failure_reason = std::move(reasons);
  return out;
}

}  // namespace mapcomp
