#include "src/compose/simplify_constraints.h"

#include <unordered_set>

#include "src/compose/domain_empty.h"

namespace mapcomp {

ConstraintSet SimplifyConstraintSet(ConstraintSet cs,
                                    const op::Registry* registry) {
  cs = SimplifyAndPrune(std::move(cs), registry);

  // Structural dedup (order-preserving).
  ConstraintSet unique;
  for (Constraint& c : cs) {
    bool dup = false;
    for (const Constraint& seen : unique) {
      if (ConstraintEquals(seen, c)) {
        dup = true;
        break;
      }
    }
    // An equality subsumes either containment direction.
    if (!dup && c.kind == ConstraintKind::kContainment) {
      for (const Constraint& seen : unique) {
        if (seen.kind == ConstraintKind::kEquality &&
            ((ExprEquals(seen.lhs, c.lhs) && ExprEquals(seen.rhs, c.rhs)) ||
             (ExprEquals(seen.lhs, c.rhs) && ExprEquals(seen.rhs, c.lhs)))) {
          dup = true;
          break;
        }
      }
    }
    if (!dup) unique.push_back(std::move(c));
  }

  // Merge inverse containment pairs into equalities.
  ConstraintSet out;
  std::vector<bool> consumed(unique.size(), false);
  for (size_t i = 0; i < unique.size(); ++i) {
    if (consumed[i]) continue;
    if (unique[i].kind == ConstraintKind::kContainment) {
      for (size_t j = i + 1; j < unique.size(); ++j) {
        if (consumed[j] || unique[j].kind != ConstraintKind::kContainment) {
          continue;
        }
        if (ExprEquals(unique[i].lhs, unique[j].rhs) &&
            ExprEquals(unique[i].rhs, unique[j].lhs)) {
          consumed[j] = true;
          unique[i] = Constraint::Equal(unique[i].lhs, unique[i].rhs);
          break;
        }
      }
    }
    out.push_back(std::move(unique[i]));
  }
  return out;
}

}  // namespace mapcomp
