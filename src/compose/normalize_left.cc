#include "src/compose/normalize_left.h"

#include <deque>

#include "src/algebra/builders.h"

namespace mapcomp {

namespace {

bool IsBareSymbol(const ExprPtr& e, const std::string& symbol) {
  return e->kind() == ExprKind::kRelation && e->name() == symbol;
}

/// One left-normalization rewrite of `c` (whose lhs contains S in a complex
/// expression). Returns the replacement constraints, or Unsupported if no
/// rule matches.
Result<std::vector<Constraint>> RewriteLeft(const Constraint& c,
                                            const std::string& symbol,
                                            const op::Registry* registry) {
  const ExprPtr& lhs = c.lhs;
  switch (lhs->kind()) {
    case ExprKind::kUnion:
      // E1 ∪ E2 ⊆ E3 → E1 ⊆ E3, E2 ⊆ E3.
      return std::vector<Constraint>{Constraint::Contain(lhs->child(0), c.rhs),
                                     Constraint::Contain(lhs->child(1), c.rhs)};
    case ExprKind::kDifference:
      // E1 − E2 ⊆ E3 → E1 ⊆ E2 ∪ E3.
      return std::vector<Constraint>{Constraint::Contain(
          lhs->child(0), Union(lhs->child(1), c.rhs))};
    case ExprKind::kSelect: {
      // σ_c(E1) ⊆ E2 → E1 ⊆ E2 ∪ (D^r − σ_c(D^r)).
      int r = lhs->arity();
      ExprPtr complement =
          Difference(Dom(r), Select(lhs->condition(), Dom(r)));
      return std::vector<Constraint>{Constraint::Contain(
          lhs->child(0), Union(c.rhs, std::move(complement)))};
    }
    case ExprKind::kProject: {
      // π_I(E1) ⊆ E2. Prefix I: E1 ⊆ E2 × D^{r−s}. General I:
      // E1 ⊆ π_{s+1..s+r}(σ_{∧_k #k=#(s+I_k)}(E2 × D^r)).
      const ExprPtr& inner = lhs->child(0);
      int r = inner->arity();
      int s = static_cast<int>(lhs->indexes().size());
      if (lhs->indexes() == IdentityIndexes(s)) {
        ExprPtr rhs = s == r ? c.rhs : Product(c.rhs, Dom(r - s));
        return std::vector<Constraint>{
            Constraint::Contain(inner, std::move(rhs))};
      }
      std::vector<Condition> eqs;
      eqs.reserve(s);
      for (int k = 1; k <= s; ++k) {
        eqs.push_back(
            Condition::AttrCmp(k, CmpOp::kEq, s + lhs->indexes()[k - 1]));
      }
      ExprPtr rhs = Project(IndexRange(s + 1, s + r),
                            Select(Condition::AndAll(std::move(eqs)),
                                   Product(c.rhs, Dom(r))));
      return std::vector<Constraint>{
          Constraint::Contain(inner, std::move(rhs))};
    }
    case ExprKind::kUserOp: {
      const op::OperatorDef* def =
          registry != nullptr ? registry->Find(lhs->name()) : nullptr;
      if (def != nullptr && def->left_rule) {
        std::optional<std::vector<Constraint>> rewritten =
            def->left_rule(c, symbol);
        if (rewritten.has_value()) return *std::move(rewritten);
      }
      return Status::Unsupported("no left-normalization rule for operator " +
                                 lhs->name());
    }
    default:
      // ∩, ×, Skolem: no identity is known (§3.4.1); leaves can't contain S
      // in a complex position.
      return Status::Unsupported(
          "no left-normalization rule for this operator");
  }
}

}  // namespace

Result<LeftNormalForm> LeftNormalize(const ConstraintSet& input,
                                     const std::string& symbol, int arity,
                                     const op::Registry* registry) {
  std::deque<Constraint> queue(input.begin(), input.end());
  ConstraintSet done;
  int budget = 100 + 10 * OperatorCount(input);
  while (!queue.empty()) {
    if (--budget < 0) {
      return Status::ResourceExhausted("left normalization did not converge");
    }
    Constraint c = std::move(queue.front());
    queue.pop_front();
    if (c.kind != ConstraintKind::kContainment) {
      return Status::Internal("left normalize expects containments only");
    }
    if (!ContainsRelation(c.lhs, symbol) || IsBareSymbol(c.lhs, symbol)) {
      done.push_back(std::move(c));
      continue;
    }
    MAPCOMP_ASSIGN_OR_RETURN(std::vector<Constraint> rewritten,
                             RewriteLeft(c, symbol, registry));
    for (Constraint& nc : rewritten) queue.push_back(std::move(nc));
  }
  // Collapse all S ⊆ E_i into S ⊆ E_1 ∩ E_2 ∩ …
  LeftNormalForm out;
  for (Constraint& c : done) {
    if (IsBareSymbol(c.lhs, symbol)) {
      if (ContainsRelation(c.rhs, symbol)) {
        return Status::Unsupported(
            "normalization left " + symbol + " on both sides of a constraint");
      }
      out.upper_bound = out.upper_bound == nullptr
                            ? c.rhs
                            : Intersect(out.upper_bound, c.rhs);
    } else {
      out.others.push_back(std::move(c));
    }
  }
  if (out.upper_bound == nullptr) {
    // S never appears on a left side: any S satisfies S ⊆ D^r.
    out.upper_bound = Dom(arity);
  }
  return out;
}

}  // namespace mapcomp
