#include "src/algebra/value.h"

#include <functional>

namespace mapcomp {

int CompareValues(const Value& a, const Value& b) {
  if (a.index() != b.index()) return a.index() < b.index() ? -1 : 1;
  if (std::holds_alternative<int64_t>(a)) {
    int64_t x = std::get<int64_t>(a), y = std::get<int64_t>(b);
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  const std::string& x = std::get<std::string>(a);
  const std::string& y = std::get<std::string>(b);
  return x.compare(y);
}

std::string ValueToString(const Value& v) {
  if (std::holds_alternative<int64_t>(v)) {
    return std::to_string(std::get<int64_t>(v));
  }
  return "'" + std::get<std::string>(v) + "'";
}

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ",";
    out += ValueToString(t[i]);
  }
  out += ")";
  return out;
}

size_t HashValue(const Value& v) {
  size_t seed = v.index();
  if (std::holds_alternative<int64_t>(v)) {
    HashCombine(&seed, std::hash<int64_t>()(std::get<int64_t>(v)));
  } else {
    HashCombine(&seed, std::hash<std::string>()(std::get<std::string>(v)));
  }
  return seed;
}

size_t HashTuple(const Tuple& t) {
  size_t seed = t.size();
  for (const Value& v : t) HashCombine(&seed, HashValue(v));
  return seed;
}

}  // namespace mapcomp
