#ifndef MAPCOMP_ALGEBRA_EXPR_H_
#define MAPCOMP_ALGEBRA_EXPR_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/algebra/condition.h"
#include "src/algebra/value.h"
#include "src/common/status.h"

namespace mapcomp {

/// Node kinds of a relational expression (paper §2). The six basic operators
/// are union, intersection, cross product, set difference, selection and
/// projection; join is derived. `D` (active domain) and the empty relation
/// are the two special relations of §2. The Skolem operator is the internal
/// technical device of §3.5. User-defined operators are dispatched through
/// the operator registry.
enum class ExprKind {
  kRelation,    ///< base relation symbol S
  kDomain,      ///< D^r — r-fold product of the active domain
  kEmpty,       ///< the empty relation of a given arity
  kLiteral,     ///< explicit constant relation, e.g. {c} in primitive Df
  kUnion,       ///< E1 ∪ E2
  kIntersect,   ///< E1 ∩ E2
  kProduct,     ///< E1 × E2
  kDifference,  ///< E1 − E2
  kSelect,      ///< σ_c(E)
  kProject,     ///< π_I(E)
  kSkolem,      ///< f_I(E) — appends one column computed by Skolem function f
  kUserOp,      ///< registry-defined operator
};

class Expr;
class ExprInterner;
/// Expressions are immutable and shared; rewrites build new nodes.
/// `Expr::Make` hash-conses through a process-wide interner, so two
/// structurally equal expressions are always the same object and pointer
/// equality of ExprPtr coincides with structural equality.
using ExprPtr = std::shared_ptr<const Expr>;

/// An immutable, interned relational-algebra expression node. Construct via
/// the builder functions in `src/algebra/builders.h`, which validate arities
/// and abort with a diagnostic on programmer error (the parser performs its
/// own checked validation before building).
class Expr {
 public:
  ExprKind kind() const { return kind_; }
  /// Relation name, Skolem function name, or user-op name.
  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  const ExprPtr& child(int i) const { return children_[i]; }
  /// Selection condition; also carries a user-op's condition parameter.
  const Condition& condition() const { return condition_; }
  /// Projection output list (1-based), or Skolem argument indexes, or a
  /// user-op's index parameter.
  const std::vector<int>& indexes() const { return indexes_; }
  /// Number of output attributes. Computed at construction.
  int arity() const { return arity_; }
  /// Tuples of a kLiteral node.
  const std::vector<Tuple>& tuples() const { return tuples_; }

  // --- Analyses memoized at interning time (all O(1)). ---

  /// Structural hash, consistent with structural equality.
  size_t hash() const { return hash_; }
  /// Total operator count of the *tree* reading of this node (leaves count
  /// 1 each) — the paper's mapping-size metric. Stored wide because interned
  /// DAGs can denote trees far larger than physical node count.
  int64_t op_count() const { return op_count_; }
  /// True iff a Skolem operator occurs in the subtree.
  bool contains_skolem() const { return contains_skolem_; }
  /// True iff the active-domain relation D occurs in the subtree.
  bool contains_domain() const { return contains_domain_; }
  /// Bloom-style 64-bit mask of the base-relation names occurring in the
  /// subtree: a clear bit proves absence; a set bit means "maybe present".
  uint64_t relation_mask() const { return relation_mask_; }
  /// The mask bit used for `name`.
  static uint64_t NameBit(const std::string& name);

  // --- Factory used by builders.h (validates nothing; builders do). ---
  // Canonicalizes through the process-wide ExprInterner: returns the
  // existing node when a structurally equal one is alive.
  static ExprPtr Make(ExprKind kind, std::string name,
                      std::vector<ExprPtr> children, Condition condition,
                      std::vector<int> indexes, int arity,
                      std::vector<Tuple> tuples);

 private:
  friend class ExprInterner;

  Expr() = default;

  ExprKind kind_ = ExprKind::kRelation;
  std::string name_;
  std::vector<ExprPtr> children_;
  Condition condition_;
  std::vector<int> indexes_;
  int arity_ = 0;
  std::vector<Tuple> tuples_;

  // Memoized analyses, filled in by the interner before publication.
  size_t hash_ = 0;
  int64_t op_count_ = 1;
  bool contains_skolem_ = false;
  bool contains_domain_ = false;
  uint64_t relation_mask_ = 0;
};

/// Trees at or below this operator count are walked with plain recursion;
/// larger ones use memoized / seen-set traversals so shared (DAG) subtrees
/// are visited once. Shared by simplify, substitute, monotone and the
/// contains queries — below the threshold the table churn costs more than
/// the shared work saves.
inline constexpr int64_t kSharedSubtreeThreshold = 64;

/// Structural equality. Interning canonicalizes structurally equal nodes to
/// one object, so this is a pointer comparison.
bool ExprEquals(const ExprPtr& a, const ExprPtr& b);

/// Structural hash consistent with ExprEquals. O(1) — cached at interning.
size_t ExprHash(const ExprPtr& e);

/// Total number of operator nodes (the paper's mapping-size metric counts
/// "the total number of operators across all constraints"). Leaf relations,
/// D, ∅ and literals count 1 each. O(1) — cached at interning; saturates at
/// INT_MAX for trees beyond int range.
int OperatorCount(const ExprPtr& e);

/// True if the relation symbol `name` occurs anywhere in `e`. The cached
/// name mask rejects most non-occurrences in O(1).
bool ContainsRelation(const ExprPtr& e, const std::string& name);

/// Inserts every base-relation name occurring in `e` into `out`.
void CollectRelations(const ExprPtr& e, std::set<std::string>* out);

/// True if any Skolem operator occurs in `e`. O(1) — cached at interning.
bool ContainsSkolem(const ExprPtr& e);

/// Inserts every Skolem function name occurring in `e` into `out`.
void CollectSkolems(const ExprPtr& e, std::set<std::string>* out);

/// True if the active-domain relation D occurs in `e`. O(1) — cached.
bool ContainsDomain(const ExprPtr& e);

/// Checks internal consistency: child arities compatible with the operator,
/// projection/Skolem indexes within range, selection conditions within
/// arity, literal tuples uniform.
Status ValidateExpr(const ExprPtr& e);

}  // namespace mapcomp

#endif  // MAPCOMP_ALGEBRA_EXPR_H_
