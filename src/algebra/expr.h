#ifndef MAPCOMP_ALGEBRA_EXPR_H_
#define MAPCOMP_ALGEBRA_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/algebra/condition.h"
#include "src/algebra/value.h"
#include "src/common/status.h"

namespace mapcomp {

/// Node kinds of a relational expression (paper §2). The six basic operators
/// are union, intersection, cross product, set difference, selection and
/// projection; join is derived. `D` (active domain) and the empty relation
/// are the two special relations of §2. The Skolem operator is the internal
/// technical device of §3.5. User-defined operators are dispatched through
/// the operator registry.
enum class ExprKind {
  kRelation,    ///< base relation symbol S
  kDomain,      ///< D^r — r-fold product of the active domain
  kEmpty,       ///< the empty relation of a given arity
  kLiteral,     ///< explicit constant relation, e.g. {c} in primitive Df
  kUnion,       ///< E1 ∪ E2
  kIntersect,   ///< E1 ∩ E2
  kProduct,     ///< E1 × E2
  kDifference,  ///< E1 − E2
  kSelect,      ///< σ_c(E)
  kProject,     ///< π_I(E)
  kSkolem,      ///< f_I(E) — appends one column computed by Skolem function f
  kUserOp,      ///< registry-defined operator
};

class Expr;
/// Expressions are immutable and shared; rewrites build new nodes.
using ExprPtr = std::shared_ptr<const Expr>;

/// An immutable relational-algebra expression node. Construct via the
/// builder functions in `src/algebra/builders.h`, which validate arities and
/// abort with a diagnostic on programmer error (the parser performs its own
/// checked validation before building).
class Expr {
 public:
  ExprKind kind() const { return kind_; }
  /// Relation name, Skolem function name, or user-op name.
  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  const ExprPtr& child(int i) const { return children_[i]; }
  /// Selection condition; also carries a user-op's condition parameter.
  const Condition& condition() const { return condition_; }
  /// Projection output list (1-based), or Skolem argument indexes, or a
  /// user-op's index parameter.
  const std::vector<int>& indexes() const { return indexes_; }
  /// Number of output attributes. Computed at construction.
  int arity() const { return arity_; }
  /// Tuples of a kLiteral node.
  const std::vector<Tuple>& tuples() const { return tuples_; }

  // --- Factory used by builders.h (validates nothing; builders do). ---
  static ExprPtr Make(ExprKind kind, std::string name,
                      std::vector<ExprPtr> children, Condition condition,
                      std::vector<int> indexes, int arity,
                      std::vector<Tuple> tuples);

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kRelation;
  std::string name_;
  std::vector<ExprPtr> children_;
  Condition condition_;
  std::vector<int> indexes_;
  int arity_ = 0;
  std::vector<Tuple> tuples_;
};

/// Deep structural equality.
bool ExprEquals(const ExprPtr& a, const ExprPtr& b);

/// Structural hash consistent with ExprEquals.
size_t ExprHash(const ExprPtr& e);

/// Total number of operator nodes (the paper's mapping-size metric counts
/// "the total number of operators across all constraints"). Leaf relations,
/// D, ∅ and literals count 1 each.
int OperatorCount(const ExprPtr& e);

/// True if the relation symbol `name` occurs anywhere in `e`.
bool ContainsRelation(const ExprPtr& e, const std::string& name);

/// Inserts every base-relation name occurring in `e` into `out`.
void CollectRelations(const ExprPtr& e, std::set<std::string>* out);

/// True if any Skolem operator occurs in `e`.
bool ContainsSkolem(const ExprPtr& e);

/// Inserts every Skolem function name occurring in `e` into `out`.
void CollectSkolems(const ExprPtr& e, std::set<std::string>* out);

/// True if the active-domain relation D occurs in `e`.
bool ContainsDomain(const ExprPtr& e);

/// Checks internal consistency: child arities compatible with the operator,
/// projection/Skolem indexes within range, selection conditions within
/// arity, literal tuples uniform.
Status ValidateExpr(const ExprPtr& e);

}  // namespace mapcomp

#endif  // MAPCOMP_ALGEBRA_EXPR_H_
