#ifndef MAPCOMP_ALGEBRA_INTERNER_H_
#define MAPCOMP_ALGEBRA_INTERNER_H_

#include <mutex>
#include <vector>

#include "src/algebra/expr.h"

namespace mapcomp {

/// Hash-consing table behind `Expr::Make`. Structurally equal nodes are
/// canonicalized to a single object, which makes ExprPtr pointer equality
/// coincide with structural equality and lets per-node analyses be computed
/// once at interning time.
///
/// Because every Expr is built through Make, children of a candidate node
/// are already interned, so the table only ever compares nodes *shallowly*:
/// scalar fields by value and children by pointer.
///
/// Storage is a flat open-addressing table (linear probing, power-of-two
/// capacity, load factor <= 1/2) keyed by the full structural hash. The
/// table holds strong references; garbage is reclaimed when the table
/// rebuilds: entries whose only remaining reference is the table itself are
/// dropped during every rehash. Entries are never erased outside a rebuild,
/// so the probe sequence needs no tombstones. This keeps both node creation
/// and node destruction free of per-node bookkeeping beyond one probe, at
/// the cost of retaining dead nodes until the next rebuild.
class ExprInterner {
 public:
  /// The process-wide interner used by Expr::Make. Intentionally leaked so
  /// expressions held in static storage can be destroyed safely at exit.
  static ExprInterner& Global();

  ExprInterner();

  /// Returns the canonical node for the given structure, creating and
  /// caching it if no structurally equal node is cached.
  ExprPtr Intern(ExprKind kind, std::string name, std::vector<ExprPtr> children,
                 Condition condition, std::vector<int> indexes, int arity,
                 std::vector<Tuple> tuples);

  /// Number of cached nodes, including garbage not yet reclaimed (for tests
  /// and diagnostics).
  size_t size() const;

  /// Immediately drops every cached node not referenced outside the table.
  void Sweep();

 private:
  struct Slot {
    size_t hash = 0;
    ExprPtr node;  ///< null = empty slot
  };

  /// Rebuilds sized to the live entries, dropping table-only ones. Called
  /// under mu_.
  void RehashLocked();

  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  size_t mask_ = 0;        ///< capacity - 1 (capacity is a power of two)
  size_t count_ = 0;       ///< occupied slots
  size_t rebuild_at_ = 0;  ///< occupancy that triggers the next rebuild
};

}  // namespace mapcomp

#endif  // MAPCOMP_ALGEBRA_INTERNER_H_
