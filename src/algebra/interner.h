#ifndef MAPCOMP_ALGEBRA_INTERNER_H_
#define MAPCOMP_ALGEBRA_INTERNER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/algebra/expr.h"

namespace mapcomp {

/// Point-in-time snapshot of interner behavior, taken without stopping the
/// world (each shard is locked briefly in turn, so concurrent mutators may
/// land between shards; totals are exact per shard, approximate globally).
struct InternerStats {
  struct ShardStats {
    size_t entries = 0;   ///< occupied slots, including unswept garbage
    size_t capacity = 0;  ///< slot-array size
    uint64_t hits = 0;    ///< Intern() calls answered by an existing node
    uint64_t misses = 0;  ///< Intern() calls that created a node
    uint64_t sweeps = 0;  ///< rebuilds (growth- or Sweep-triggered)
  };
  std::vector<ShardStats> shards;
  /// Intern() calls answered by an ExprBuilder's local cache without
  /// touching any shard (process-wide total).
  uint64_t builder_hits = 0;

  size_t entries() const;
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t sweeps() const;
  std::string ToString() const;
};

/// Hash-consing table behind `Expr::Make`. Structurally equal nodes are
/// canonicalized to a single object, which makes ExprPtr pointer equality
/// coincide with structural equality and lets per-node analyses be computed
/// once at interning time.
///
/// Because every Expr is built through Make, children of a candidate node
/// are already interned, so the table only ever compares nodes *shallowly*:
/// scalar fields by value and children by pointer.
///
/// Storage is lock-striped across `kNumShards` independent shards selected
/// by the top bits of the structural hash, so concurrent construction on
/// different threads only contends when two nodes land in the same shard.
/// Each shard is a flat open-addressing table (linear probing, power-of-two
/// capacity, load factor <= 1/2) keyed by the full structural hash; the slot
/// index uses the low hash bits, independent of the shard-selection bits.
/// A shard holds strong references; garbage is reclaimed when it rebuilds:
/// entries whose only remaining reference is the table itself are dropped
/// during every rehash. Entries are never erased outside a rebuild, so probe
/// sequences need no tombstones. This keeps both node creation and node
/// destruction free of per-node bookkeeping beyond one probe, at the cost of
/// retaining dead nodes until the next rebuild.
class ExprInterner {
 public:
  /// Shard count. Power of two; 16 is enough stripes that 8 construction
  /// threads rarely collide while keeping the empty-table footprint small.
  static constexpr size_t kNumShards = 16;

  /// The process-wide interner used by Expr::Make. Intentionally leaked so
  /// expressions held in static storage can be destroyed safely at exit.
  static ExprInterner& Global();

  ExprInterner();

  /// Returns the canonical node for the given structure, creating and
  /// caching it if no structurally equal node is cached. Consults the
  /// calling thread's active ExprBuilder cache (if any) before locking the
  /// shard.
  ExprPtr Intern(ExprKind kind, std::string name, std::vector<ExprPtr> children,
                 Condition condition, std::vector<int> indexes, int arity,
                 std::vector<Tuple> tuples);

  /// Number of cached nodes across all shards, including garbage not yet
  /// reclaimed (for tests and diagnostics).
  size_t size() const;

  /// Immediately drops every cached node not referenced outside the table.
  /// Runs shard rebuilds to a global fixpoint: dropping a parent in one
  /// shard releases children that may live in any other shard.
  void Sweep();

  /// Grows every shard so that `expected_new_nodes` additional insertions
  /// (distributed by hash) cannot trigger a mid-batch rebuild.
  void Reserve(size_t expected_new_nodes);

  /// Observability snapshot (per-shard entries, hit/miss/sweep totals).
  InternerStats Stats() const;

 private:
  friend class ExprBuilder;

  struct Slot {
    size_t hash = 0;
    ExprPtr node;  ///< null = empty slot
  };

  struct Shard {
    mutable std::mutex mu;
    std::vector<Slot> slots;
    size_t mask = 0;        ///< capacity - 1 (capacity is a power of two)
    size_t count = 0;       ///< occupied slots
    size_t rebuild_at = 0;  ///< occupancy that triggers the next rebuild
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t sweeps = 0;
  };

  static size_t ShardIndex(size_t hash) {
    // Slot probing consumes the low bits (hash & mask); shard selection
    // uses the top byte so the two are independent.
    return (hash >> (sizeof(size_t) * 8 - 8)) & (kNumShards - 1);
  }

  /// Rebuilds `shard` sized to its live entries (plus optional headroom
  /// for expected insertions), dropping table-only ones. Called under
  /// shard.mu.
  void RehashLocked(Shard& shard, size_t extra_headroom = 0);

  /// Probe-or-insert with a precomputed structural hash. Called by Intern
  /// and by ExprBuilder on a local-cache miss.
  ExprPtr InternWithHash(size_t hash, ExprKind kind, std::string name,
                         std::vector<ExprPtr> children, Condition condition,
                         std::vector<int> indexes, int arity,
                         std::vector<Tuple> tuples);

  std::array<Shard, kNumShards> shards_;
  std::atomic<uint64_t> builder_hits_{0};
};

/// RAII batch-construction scope that amortizes interner costs. While an
/// ExprBuilder is alive on a thread, every `Expr::Make` on that thread first
/// probes a direct-mapped thread-local cache — no lock, no shared state —
/// and only falls through to the sharded table on a local miss; the
/// canonical node is then recorded locally so the next structurally equal
/// construction in the batch skips the shard entirely. Construction-heavy
/// phases (COMPOSE substitutions, simulator edits) repeat small nodes (base
/// relations, common selections) constantly, which is exactly what a
/// direct-mapped cache captures.
///
/// The cache storage itself is thread-local and reused across batches, so
/// opening a scope costs nothing; each builder remembers which cache lines
/// it populated first and releases exactly those when it is destroyed
/// (entries hold strong references, so nodes cached by an active batch
/// cannot be reclaimed by a concurrent Sweep). Scopes nest — an inner scope
/// sees and may overwrite the outer one's lines, which is sound because
/// every cached node is canonical and verified structurally before reuse.
/// A builder must only be used on the thread that created it.
class ExprBuilder {
 public:
  explicit ExprBuilder(ExprInterner* interner = &ExprInterner::Global());
  ~ExprBuilder();

  ExprBuilder(const ExprBuilder&) = delete;
  ExprBuilder& operator=(const ExprBuilder&) = delete;

  /// Pre-sizes the shared shards for a batch expected to create about
  /// `expected_new_nodes` fresh nodes, so no rebuild lands mid-batch.
  void Reserve(size_t expected_new_nodes) {
    interner_->Reserve(expected_new_nodes);
  }

  /// Local-cache hits so far (for tests and diagnostics).
  uint64_t local_hits() const { return local_hits_; }

  /// The innermost builder active on the calling thread, or nullptr.
  static ExprBuilder* Current();

  /// Direct-mapped: cache line i holds the most recent node whose hash maps
  /// to i. 2048 entries covers the working set of one compose/edit batch.
  /// (Public only for the thread-local backing storage in interner.cc.)
  static constexpr size_t kCacheSize = 2048;

  struct Entry {
    size_t hash = 0;
    ExprPtr node;
  };

 private:
  friend class ExprInterner;

  ExprInterner* interner_;
  ExprBuilder* parent_;  ///< next-outer scope on this thread
  Entry* cache_;         ///< borrowed thread-local storage, kCacheSize lines
  /// Cache lines this builder wrote into while they were empty; released
  /// (set back to empty) on destruction. Lines overwritten while full stay
  /// owned by the builder that first filled them.
  std::vector<uint32_t> owned_lines_;
  uint64_t local_hits_ = 0;
};

}  // namespace mapcomp

#endif  // MAPCOMP_ALGEBRA_INTERNER_H_
