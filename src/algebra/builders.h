#ifndef MAPCOMP_ALGEBRA_BUILDERS_H_
#define MAPCOMP_ALGEBRA_BUILDERS_H_

#include <string>
#include <vector>

#include "src/algebra/expr.h"

namespace mapcomp {

/// Builder functions for relational expressions. All builders validate
/// arities and index ranges; on programmer error they print a diagnostic and
/// abort (they are not used on untrusted input — the parser validates before
/// building).

/// Base relation symbol with the given arity.
ExprPtr Rel(std::string name, int arity);

/// D^r — the r-fold cross product of the active domain (paper §2).
ExprPtr Dom(int arity);

/// The empty relation of a given arity.
ExprPtr EmptyRel(int arity);

/// A constant relation containing exactly `tuples` (all of arity `arity`).
ExprPtr Lit(int arity, std::vector<Tuple> tuples);

ExprPtr Union(ExprPtr a, ExprPtr b);
ExprPtr Intersect(ExprPtr a, ExprPtr b);
ExprPtr Product(ExprPtr a, ExprPtr b);
ExprPtr Difference(ExprPtr a, ExprPtr b);

/// σ_c(e).
ExprPtr Select(Condition c, ExprPtr e);

/// π_I(e) with I a 1-based index list (repetitions allowed).
ExprPtr Project(std::vector<int> indexes, ExprPtr e);

/// f_I(e) — appends one column holding Skolem function `fname` applied to
/// the attributes of `e` selected by `arg_indexes` (paper §2, §3.5).
ExprPtr SkolemApp(std::string fname, std::vector<int> arg_indexes, ExprPtr e);

/// A user-defined operator node. `arity` must follow the registered
/// operator's arity rule; prefer `op::MakeUserOp` which computes it.
ExprPtr UserOpExpr(std::string opname, std::vector<ExprPtr> args, int arity,
                   Condition cond = Condition::True(),
                   std::vector<int> indexes = {});

/// Derived operator: natural-style equijoin of `a` and `b` on
/// `a.attr[i] == b.attr[i]` for each pair in `join_on` (pairs of 1-based
/// positions, left-relative and right-relative). Expands to π σ × per the
/// paper's treatment of join as a derived operator.
ExprPtr EquiJoin(ExprPtr a, ExprPtr b,
                 const std::vector<std::pair<int, int>>& join_on);

/// Identity projection list [1..r].
std::vector<int> IdentityIndexes(int r);

/// Index range [from..to] inclusive.
std::vector<int> IndexRange(int from, int to);

}  // namespace mapcomp

#endif  // MAPCOMP_ALGEBRA_BUILDERS_H_
