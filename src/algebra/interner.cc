#include "src/algebra/interner.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <new>

#include "src/common/fault.h"

namespace mapcomp {

namespace {

constexpr size_t kMinCapacity = 256;

/// Structural hash of a node-to-be, combining children by their cached
/// hashes. Field order matches the pre-interning ExprHash recipe so hashes
/// stay stable across the refactor.
size_t ShallowHash(ExprKind kind, const std::string& name,
                   const std::vector<ExprPtr>& children,
                   const Condition& condition, const std::vector<int>& indexes,
                   int arity, const std::vector<Tuple>& tuples) {
  size_t seed = static_cast<size_t>(kind);
  HashCombine(&seed, std::hash<std::string>()(name));
  HashCombine(&seed, static_cast<size_t>(arity));
  for (int i : indexes) HashCombine(&seed, static_cast<size_t>(i));
  HashCombine(&seed, condition.Hash());
  for (const ExprPtr& c : children) HashCombine(&seed, c->hash());
  for (const Tuple& t : tuples) HashCombine(&seed, HashTuple(t));
  return seed;
}

bool TuplesEqual(const std::vector<Tuple>& a, const std::vector<Tuple>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t j = 0; j < a[i].size(); ++j) {
      if (CompareValues(a[i][j], b[i][j]) != 0) return false;
    }
  }
  return true;
}

/// Shallow structural equality against an existing interned node. Children
/// are compared by pointer: they are interned, so pointer equality is
/// structural equality.
bool ShallowEquals(const Expr& e, ExprKind kind, const std::string& name,
                   const std::vector<ExprPtr>& children,
                   const Condition& condition, const std::vector<int>& indexes,
                   int arity, const std::vector<Tuple>& tuples) {
  if (e.kind() != kind || e.arity() != arity) return false;
  if (e.name() != name) return false;
  if (e.indexes() != indexes) return false;
  if (e.children().size() != children.size()) return false;
  for (size_t i = 0; i < children.size(); ++i) {
    if (e.children()[i].get() != children[i].get()) return false;
  }
  if (!(e.condition() == condition)) return false;
  return TuplesEqual(e.tuples(), tuples);
}

size_t NextPow2(size_t n) {
  size_t p = kMinCapacity;
  while (p < n) p <<= 1;
  return p;
}

thread_local ExprBuilder* g_current_builder = nullptr;

}  // namespace

// ------------------------------------------------------------ InternerStats

size_t InternerStats::entries() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.entries;
  return n;
}

uint64_t InternerStats::hits() const {
  uint64_t n = 0;
  for (const ShardStats& s : shards) n += s.hits;
  return n;
}

uint64_t InternerStats::misses() const {
  uint64_t n = 0;
  for (const ShardStats& s : shards) n += s.misses;
  return n;
}

uint64_t InternerStats::sweeps() const {
  uint64_t n = 0;
  for (const ShardStats& s : shards) n += s.sweeps;
  return n;
}

std::string InternerStats::ToString() const {
  std::string out = "interner: " + std::to_string(entries()) + " entries, " +
                    std::to_string(hits()) + " hits, " +
                    std::to_string(misses()) + " misses, " +
                    std::to_string(builder_hits) + " builder hits, " +
                    std::to_string(sweeps()) + " sweeps\n";
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardStats& s = shards[i];
    out += "  shard " + std::to_string(i) + ": " +
           std::to_string(s.entries) + "/" + std::to_string(s.capacity) +
           " entries, " + std::to_string(s.hits) + " hits, " +
           std::to_string(s.misses) + " misses, " +
           std::to_string(s.sweeps) + " sweeps\n";
  }
  return out;
}

// ------------------------------------------------------------- ExprInterner

ExprInterner& ExprInterner::Global() {
  static ExprInterner* interner = new ExprInterner();
  return *interner;
}

ExprInterner::ExprInterner() {
  for (Shard& shard : shards_) {
    shard.slots.assign(kMinCapacity, Slot{});
    shard.mask = kMinCapacity - 1;
    shard.rebuild_at = kMinCapacity / 2;
  }
}

size_t ExprInterner::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.count;
  }
  return total;
}

void ExprInterner::Sweep() {
  // Run to a global fixpoint: dropping a parent releases its children, which
  // then also become table-only — possibly in a different shard.
  size_t before = std::numeric_limits<size_t>::max();
  for (;;) {
    size_t after = 0;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      RehashLocked(shard);
      after += shard.count;
    }
    if (after >= before) break;
    before = after;
  }
}

void ExprInterner::Reserve(size_t expected_new_nodes) {
  // Assume an even hash spread; pad one shard's share by 2x for skew.
  size_t per_shard = expected_new_nodes / kNumShards + 1;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    size_t extra = 2 * per_shard;
    if (shard.count + extra < shard.rebuild_at) continue;
    // One ordinary garbage-dropping rebuild, sized with headroom for the
    // expected insertions, so the batch itself triggers no rebuild.
    RehashLocked(shard, extra);
  }
}

InternerStats ExprInterner::Stats() const {
  InternerStats out;
  out.shards.reserve(kNumShards);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    InternerStats::ShardStats s;
    s.entries = shard.count;
    s.capacity = shard.slots.size();
    s.hits = shard.hits;
    s.misses = shard.misses;
    s.sweeps = shard.sweeps;
    out.shards.push_back(s);
  }
  out.builder_hits = builder_hits_.load(std::memory_order_relaxed);
  return out;
}

void ExprInterner::RehashLocked(Shard& shard, size_t extra_headroom) {
  size_t live = 0;
  for (const Slot& s : shard.slots) {
    live += s.node != nullptr && s.node.use_count() > 1;
  }
  size_t capacity = NextPow2(std::max(live * 4, (live + extra_headroom) * 2));
  std::vector<Slot> old = std::move(shard.slots);
  shard.slots.assign(capacity, Slot{});
  shard.mask = capacity - 1;
  shard.count = 0;
  for (Slot& s : old) {
    // use_count()==1 means the table holds the only reference: the node is
    // unreachable from outside and is dropped with the old vector. Children
    // it releases become table-only and are caught by the next rebuild.
    if (s.node == nullptr || s.node.use_count() == 1) continue;
    size_t idx = s.hash & shard.mask;
    while (shard.slots[idx].node != nullptr) idx = (idx + 1) & shard.mask;
    shard.slots[idx].hash = s.hash;
    shard.slots[idx].node = std::move(s.node);
    ++shard.count;
  }
  // Rebuild again once the occupancy doubles relative to the live set (or
  // once the reserved headroom is spent); this bounds both garbage
  // retention and the probe working set to a small multiple of the live
  // expressions, and never exceeds the 1/2 load factor (capacity covers
  // both terms by construction).
  shard.rebuild_at = std::max<size_t>(
      kMinCapacity / 2,
      std::max(shard.count * 2, shard.count + extra_headroom));
  ++shard.sweeps;
}

ExprPtr ExprInterner::InternWithHash(size_t hash, ExprKind kind,
                                     std::string name,
                                     std::vector<ExprPtr> children,
                                     Condition condition,
                                     std::vector<int> indexes, int arity,
                                     std::vector<Tuple> tuples) {
  Shard& shard = shards_[ShardIndex(hash)];
  std::lock_guard<std::mutex> lock(shard.mu);
  size_t idx = hash & shard.mask;
  while (shard.slots[idx].node != nullptr) {
    if (shard.slots[idx].hash == hash &&
        ShallowEquals(*shard.slots[idx].node, kind, name, children, condition,
                      indexes, arity, tuples)) {
      ++shard.hits;
      return shard.slots[idx].node;
    }
    idx = (idx + 1) & shard.mask;
  }

  // Fault point: the interner's allocation path is the one place every
  // expression build funnels through, so an injected bad_alloc here models
  // memory exhaustion anywhere inside compose/eval without heap poking.
  if (common::fault::Hit(common::fault::FaultPoint::kAllocFailInterner)) {
    throw std::bad_alloc();
  }
  Expr* e = new Expr();
  e->kind_ = kind;
  e->name_ = std::move(name);
  e->children_ = std::move(children);
  e->condition_ = std::move(condition);
  e->indexes_ = std::move(indexes);
  e->arity_ = arity;
  e->tuples_ = std::move(tuples);
  e->hash_ = hash;
  e->op_count_ = 1;
  e->contains_skolem_ = kind == ExprKind::kSkolem;
  e->contains_domain_ = kind == ExprKind::kDomain;
  e->relation_mask_ = kind == ExprKind::kRelation ? Expr::NameBit(e->name_) : 0;
  // Interned DAGs can denote trees exponentially larger than their physical
  // node count, so the tree-size accumulation must saturate, not overflow.
  constexpr int64_t kOpCountCap = std::numeric_limits<int64_t>::max();
  for (const ExprPtr& c : e->children_) {
    e->op_count_ = c->op_count() >= kOpCountCap - e->op_count_
                       ? kOpCountCap
                       : e->op_count_ + c->op_count();
    e->contains_skolem_ = e->contains_skolem_ || c->contains_skolem();
    e->contains_domain_ = e->contains_domain_ || c->contains_domain();
    e->relation_mask_ |= c->relation_mask();
  }
  ExprPtr published(e);
  shard.slots[idx].hash = hash;
  shard.slots[idx].node = published;
  ++shard.misses;
  if (++shard.count >= shard.rebuild_at) RehashLocked(shard);
  return published;
}

ExprPtr ExprInterner::Intern(ExprKind kind, std::string name,
                             std::vector<ExprPtr> children,
                             Condition condition, std::vector<int> indexes,
                             int arity, std::vector<Tuple> tuples) {
  size_t hash = ShallowHash(kind, name, children, condition, indexes, arity,
                            tuples);

  ExprBuilder* builder = g_current_builder;
  ExprBuilder::Entry* slot = nullptr;
  if (builder != nullptr && builder->interner_ == this) {
    slot = &builder->cache_[hash & (ExprBuilder::kCacheSize - 1)];
    if (slot->node != nullptr && slot->hash == hash &&
        ShallowEquals(*slot->node, kind, name, children, condition, indexes,
                      arity, tuples)) {
      ++builder->local_hits_;
      return slot->node;
    }
  }

  ExprPtr node = InternWithHash(hash, kind, std::move(name),
                                std::move(children), std::move(condition),
                                std::move(indexes), arity, std::move(tuples));
  if (slot != nullptr) {
    // Direct-mapped: the latest node for this cache line wins. A line that
    // was empty becomes owned by (and is later released by) this builder.
    if (slot->node == nullptr) {
      builder->owned_lines_.push_back(
          static_cast<uint32_t>(hash & (ExprBuilder::kCacheSize - 1)));
    }
    slot->hash = hash;
    slot->node = node;
  }
  return node;
}

// -------------------------------------------------------------- ExprBuilder

namespace {

/// Reusable per-thread cache storage, so opening a batch scope allocates
/// and zeroes nothing. All entries verify structurally before reuse, so the
/// only state that must be kept coherent is which interner the cached nodes
/// are canonical in.
struct TlsBuilderCache {
  ExprInterner* owner = nullptr;
  std::vector<ExprBuilder::Entry> entries;
};

TlsBuilderCache& BuilderCacheForThread() {
  static thread_local TlsBuilderCache cache;
  return cache;
}

}  // namespace

ExprBuilder::ExprBuilder(ExprInterner* interner)
    : interner_(interner), parent_(g_current_builder) {
  TlsBuilderCache& tls = BuilderCacheForThread();
  if (tls.entries.empty()) tls.entries.resize(kCacheSize);
  if (tls.owner != interner) {
    // Nodes cached for another interner are not canonical in this one.
    for (Entry& e : tls.entries) e = Entry{};
    tls.owner = interner;
  }
  cache_ = tls.entries.data();
  g_current_builder = this;
}

ExprBuilder::~ExprBuilder() {
  g_current_builder = parent_;
  if (parent_ != nullptr && parent_->interner_ != interner_) {
    // The resuming scope interns into a different table; nothing cached
    // during this scope is canonical there. Wipe everything (the parent's
    // pre-nesting lines were already wiped by this scope's constructor)
    // and hand the owner tag back so the parent's writes are tagged
    // correctly for any builder that follows.
    TlsBuilderCache& tls = BuilderCacheForThread();
    for (Entry& e : tls.entries) e = Entry{};
    tls.owner = parent_->interner_;
  } else {
    // Release exactly the lines this builder populated; lines it merely
    // overwrote belong to an enclosing builder, which releases them later.
    for (uint32_t line : owned_lines_) cache_[line] = Entry{};
  }
  interner_->builder_hits_.fetch_add(local_hits_, std::memory_order_relaxed);
}

ExprBuilder* ExprBuilder::Current() { return g_current_builder; }

}  // namespace mapcomp
