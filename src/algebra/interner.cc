#include "src/algebra/interner.h"

#include <algorithm>
#include <functional>
#include <limits>

namespace mapcomp {

namespace {

constexpr size_t kMinCapacity = 1024;

/// Structural hash of a node-to-be, combining children by their cached
/// hashes. Field order matches the pre-interning ExprHash recipe so hashes
/// stay stable across the refactor.
size_t ShallowHash(ExprKind kind, const std::string& name,
                   const std::vector<ExprPtr>& children,
                   const Condition& condition, const std::vector<int>& indexes,
                   int arity, const std::vector<Tuple>& tuples) {
  size_t seed = static_cast<size_t>(kind);
  HashCombine(&seed, std::hash<std::string>()(name));
  HashCombine(&seed, static_cast<size_t>(arity));
  for (int i : indexes) HashCombine(&seed, static_cast<size_t>(i));
  HashCombine(&seed, condition.Hash());
  for (const ExprPtr& c : children) HashCombine(&seed, c->hash());
  for (const Tuple& t : tuples) HashCombine(&seed, HashTuple(t));
  return seed;
}

bool TuplesEqual(const std::vector<Tuple>& a, const std::vector<Tuple>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t j = 0; j < a[i].size(); ++j) {
      if (CompareValues(a[i][j], b[i][j]) != 0) return false;
    }
  }
  return true;
}

/// Shallow structural equality against an existing interned node. Children
/// are compared by pointer: they are interned, so pointer equality is
/// structural equality.
bool ShallowEquals(const Expr& e, ExprKind kind, const std::string& name,
                   const std::vector<ExprPtr>& children,
                   const Condition& condition, const std::vector<int>& indexes,
                   int arity, const std::vector<Tuple>& tuples) {
  if (e.kind() != kind || e.arity() != arity) return false;
  if (e.name() != name) return false;
  if (e.indexes() != indexes) return false;
  if (e.children().size() != children.size()) return false;
  for (size_t i = 0; i < children.size(); ++i) {
    if (e.children()[i].get() != children[i].get()) return false;
  }
  if (!(e.condition() == condition)) return false;
  return TuplesEqual(e.tuples(), tuples);
}

size_t NextPow2(size_t n) {
  size_t p = kMinCapacity;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ExprInterner& ExprInterner::Global() {
  static ExprInterner* interner = new ExprInterner();
  return *interner;
}

ExprInterner::ExprInterner()
    : slots_(kMinCapacity),
      mask_(kMinCapacity - 1),
      rebuild_at_(kMinCapacity / 2) {}

size_t ExprInterner::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

void ExprInterner::Sweep() {
  std::lock_guard<std::mutex> lock(mu_);
  // Run to a fixpoint: dropping a parent releases its children, which then
  // also become table-only.
  size_t before = count_ + 1;
  while (count_ < before) {
    before = count_;
    RehashLocked();
  }
}

void ExprInterner::RehashLocked() {
  size_t live = 0;
  for (const Slot& s : slots_) {
    live += s.node != nullptr && s.node.use_count() > 1;
  }
  size_t capacity = NextPow2(live * 4);
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(capacity, Slot{});
  mask_ = capacity - 1;
  count_ = 0;
  for (Slot& s : old) {
    // use_count()==1 means the table holds the only reference: the node is
    // unreachable from outside and is dropped with the old vector. Children
    // it releases become table-only and are caught by the next rebuild.
    if (s.node == nullptr || s.node.use_count() == 1) continue;
    size_t idx = s.hash & mask_;
    while (slots_[idx].node != nullptr) idx = (idx + 1) & mask_;
    slots_[idx].hash = s.hash;
    slots_[idx].node = std::move(s.node);
    ++count_;
  }
  // Rebuild again once the occupancy doubles relative to the live set; this
  // bounds both garbage retention and the probe working set to a small
  // multiple of the live expressions.
  rebuild_at_ = std::max<size_t>(kMinCapacity / 2, count_ * 2);
}

ExprPtr ExprInterner::Intern(ExprKind kind, std::string name,
                             std::vector<ExprPtr> children,
                             Condition condition, std::vector<int> indexes,
                             int arity, std::vector<Tuple> tuples) {
  size_t hash = ShallowHash(kind, name, children, condition, indexes, arity,
                            tuples);

  std::lock_guard<std::mutex> lock(mu_);
  size_t idx = hash & mask_;
  while (slots_[idx].node != nullptr) {
    if (slots_[idx].hash == hash &&
        ShallowEquals(*slots_[idx].node, kind, name, children, condition,
                      indexes, arity, tuples)) {
      return slots_[idx].node;
    }
    idx = (idx + 1) & mask_;
  }

  Expr* e = new Expr();
  e->kind_ = kind;
  e->name_ = std::move(name);
  e->children_ = std::move(children);
  e->condition_ = std::move(condition);
  e->indexes_ = std::move(indexes);
  e->arity_ = arity;
  e->tuples_ = std::move(tuples);
  e->hash_ = hash;
  e->op_count_ = 1;
  e->contains_skolem_ = kind == ExprKind::kSkolem;
  e->contains_domain_ = kind == ExprKind::kDomain;
  e->relation_mask_ = kind == ExprKind::kRelation ? Expr::NameBit(e->name_) : 0;
  // Interned DAGs can denote trees exponentially larger than their physical
  // node count, so the tree-size accumulation must saturate, not overflow.
  constexpr int64_t kOpCountCap = std::numeric_limits<int64_t>::max();
  for (const ExprPtr& c : e->children_) {
    e->op_count_ = c->op_count() >= kOpCountCap - e->op_count_
                       ? kOpCountCap
                       : e->op_count_ + c->op_count();
    e->contains_skolem_ = e->contains_skolem_ || c->contains_skolem();
    e->contains_domain_ = e->contains_domain_ || c->contains_domain();
    e->relation_mask_ |= c->relation_mask();
  }
  ExprPtr published(e);
  slots_[idx].hash = hash;
  slots_[idx].node = published;
  if (++count_ >= rebuild_at_) RehashLocked();
  return published;
}

}  // namespace mapcomp
