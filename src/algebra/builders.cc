#include "src/algebra/builders.h"

#include <cstdlib>
#include <iostream>

namespace mapcomp {

namespace {
[[noreturn]] void BuilderFail(const std::string& msg) {
  std::cerr << "mapcomp builder misuse: " << msg << "\n";
  std::abort();
}

void RequireNonNull(const ExprPtr& e, const char* who) {
  if (e == nullptr) BuilderFail(std::string(who) + ": null child");
}
}  // namespace

ExprPtr Rel(std::string name, int arity) {
  if (arity < 1) BuilderFail("Rel " + name + ": arity must be >= 1");
  return Expr::Make(ExprKind::kRelation, std::move(name), {}, Condition::True(),
                    {}, arity, {});
}

ExprPtr Dom(int arity) {
  if (arity < 1) BuilderFail("Dom: arity must be >= 1");
  return Expr::Make(ExprKind::kDomain, "D", {}, Condition::True(), {}, arity,
                    {});
}

ExprPtr EmptyRel(int arity) {
  if (arity < 1) BuilderFail("EmptyRel: arity must be >= 1");
  return Expr::Make(ExprKind::kEmpty, "empty", {}, Condition::True(), {},
                    arity, {});
}

ExprPtr Lit(int arity, std::vector<Tuple> tuples) {
  if (arity < 1) BuilderFail("Lit: arity must be >= 1");
  for (const Tuple& t : tuples) {
    if (static_cast<int>(t.size()) != arity) {
      BuilderFail("Lit: tuple arity mismatch");
    }
  }
  return Expr::Make(ExprKind::kLiteral, "", {}, Condition::True(), {}, arity,
                    std::move(tuples));
}

namespace {
ExprPtr MakeSetOp(ExprKind kind, ExprPtr a, ExprPtr b, const char* who) {
  RequireNonNull(a, who);
  RequireNonNull(b, who);
  if (a->arity() != b->arity()) {
    BuilderFail(std::string(who) + ": arity mismatch " +
                std::to_string(a->arity()) + " vs " +
                std::to_string(b->arity()));
  }
  int arity = a->arity();
  return Expr::Make(kind, "", {std::move(a), std::move(b)}, Condition::True(),
                    {}, arity, {});
}
}  // namespace

ExprPtr Union(ExprPtr a, ExprPtr b) {
  return MakeSetOp(ExprKind::kUnion, std::move(a), std::move(b), "Union");
}

ExprPtr Intersect(ExprPtr a, ExprPtr b) {
  return MakeSetOp(ExprKind::kIntersect, std::move(a), std::move(b),
                   "Intersect");
}

ExprPtr Difference(ExprPtr a, ExprPtr b) {
  return MakeSetOp(ExprKind::kDifference, std::move(a), std::move(b),
                   "Difference");
}

ExprPtr Product(ExprPtr a, ExprPtr b) {
  RequireNonNull(a, "Product");
  RequireNonNull(b, "Product");
  int arity = a->arity() + b->arity();
  return Expr::Make(ExprKind::kProduct, "", {std::move(a), std::move(b)},
                    Condition::True(), {}, arity, {});
}

ExprPtr Select(Condition c, ExprPtr e) {
  RequireNonNull(e, "Select");
  if (c.MaxAttr() > e->arity()) {
    BuilderFail("Select: condition references attribute " +
                std::to_string(c.MaxAttr()) + " beyond arity " +
                std::to_string(e->arity()));
  }
  int arity = e->arity();
  return Expr::Make(ExprKind::kSelect, "", {std::move(e)}, std::move(c), {},
                    arity, {});
}

ExprPtr Project(std::vector<int> indexes, ExprPtr e) {
  RequireNonNull(e, "Project");
  if (indexes.empty()) BuilderFail("Project: empty index list");
  for (int i : indexes) {
    if (i < 1 || i > e->arity()) {
      BuilderFail("Project: index " + std::to_string(i) +
                  " out of range for arity " + std::to_string(e->arity()));
    }
  }
  int arity = static_cast<int>(indexes.size());
  return Expr::Make(ExprKind::kProject, "", {std::move(e)}, Condition::True(),
                    std::move(indexes), arity, {});
}

ExprPtr SkolemApp(std::string fname, std::vector<int> arg_indexes, ExprPtr e) {
  RequireNonNull(e, "SkolemApp");
  for (int i : arg_indexes) {
    if (i < 1 || i > e->arity()) {
      BuilderFail("SkolemApp: argument index out of range");
    }
  }
  int arity = e->arity() + 1;
  return Expr::Make(ExprKind::kSkolem, std::move(fname), {std::move(e)},
                    Condition::True(), std::move(arg_indexes), arity, {});
}

ExprPtr UserOpExpr(std::string opname, std::vector<ExprPtr> args, int arity,
                   Condition cond, std::vector<int> indexes) {
  for (const ExprPtr& a : args) RequireNonNull(a, "UserOpExpr");
  if (arity < 1) BuilderFail("UserOpExpr: arity must be >= 1");
  return Expr::Make(ExprKind::kUserOp, std::move(opname), std::move(args),
                    std::move(cond), std::move(indexes), arity, {});
}

ExprPtr EquiJoin(ExprPtr a, ExprPtr b,
                 const std::vector<std::pair<int, int>>& join_on) {
  RequireNonNull(a, "EquiJoin");
  RequireNonNull(b, "EquiJoin");
  int ra = a->arity();
  int rb = b->arity();
  std::vector<Condition> atoms;
  std::vector<bool> right_joined(rb + 1, false);
  for (const auto& [l, r] : join_on) {
    if (l < 1 || l > ra || r < 1 || r > rb) {
      BuilderFail("EquiJoin: join index out of range");
    }
    atoms.push_back(Condition::AttrCmp(l, CmpOp::kEq, ra + r));
    right_joined[r] = true;
  }
  // Output: all of `a`, then the non-joined attributes of `b`.
  std::vector<int> out = IdentityIndexes(ra);
  for (int r = 1; r <= rb; ++r) {
    if (!right_joined[r]) out.push_back(ra + r);
  }
  return Project(std::move(out),
                 Select(Condition::AndAll(std::move(atoms)),
                        Product(std::move(a), std::move(b))));
}

std::vector<int> IdentityIndexes(int r) {
  std::vector<int> out;
  out.reserve(r);
  for (int i = 1; i <= r; ++i) out.push_back(i);
  return out;
}

std::vector<int> IndexRange(int from, int to) {
  std::vector<int> out;
  for (int i = from; i <= to; ++i) out.push_back(i);
  return out;
}

}  // namespace mapcomp
