#include "src/algebra/condition.h"

#include <algorithm>
#include <utility>

namespace mapcomp {

std::string CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCmp(CmpOp op, const Value& a, const Value& b) {
  int c = CompareValues(a, b);
  switch (op) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

Condition Condition::True() {
  Condition c;
  c.kind_ = Kind::kTrue;
  return c;
}

Condition Condition::False() {
  Condition c;
  c.kind_ = Kind::kFalse;
  return c;
}

Condition Condition::Atom(CondOperand lhs, CmpOp op, CondOperand rhs) {
  Condition c;
  c.kind_ = Kind::kAtom;
  c.op_ = op;
  c.lhs_ = std::move(lhs);
  c.rhs_ = std::move(rhs);
  // Constant-fold constant-vs-constant atoms.
  if (!c.lhs_.is_attr && !c.rhs_.is_attr) {
    return EvalCmp(op, c.lhs_.constant, c.rhs_.constant) ? True() : False();
  }
  return c;
}

Condition Condition::AttrCmp(int l, CmpOp op, int r) {
  return Atom(CondOperand::Attr(l), op, CondOperand::Attr(r));
}

Condition Condition::AttrConst(int l, CmpOp op, Value v) {
  return Atom(CondOperand::Attr(l), op, CondOperand::Const(std::move(v)));
}

Condition Condition::And(Condition a, Condition b) {
  if (a.IsFalse() || b.IsFalse()) return False();
  if (a.IsTrue()) return b;
  if (b.IsTrue()) return a;
  Condition c;
  c.kind_ = Kind::kAnd;
  // Flatten nested conjunctions for canonical form.
  auto append = [&c](Condition&& x) {
    if (x.kind_ == Kind::kAnd) {
      for (auto& ch : x.children_) c.children_.push_back(std::move(ch));
    } else {
      c.children_.push_back(std::move(x));
    }
  };
  append(std::move(a));
  append(std::move(b));
  return c;
}

Condition Condition::Or(Condition a, Condition b) {
  if (a.IsTrue() || b.IsTrue()) return True();
  if (a.IsFalse()) return b;
  if (b.IsFalse()) return a;
  Condition c;
  c.kind_ = Kind::kOr;
  auto append = [&c](Condition&& x) {
    if (x.kind_ == Kind::kOr) {
      for (auto& ch : x.children_) c.children_.push_back(std::move(ch));
    } else {
      c.children_.push_back(std::move(x));
    }
  };
  append(std::move(a));
  append(std::move(b));
  return c;
}

Condition Condition::Not(Condition a) {
  if (a.IsTrue()) return False();
  if (a.IsFalse()) return True();
  if (a.kind_ == Kind::kNot) return a.children_[0];
  Condition c;
  c.kind_ = Kind::kNot;
  c.children_.push_back(std::move(a));
  return c;
}

Condition Condition::AndAll(std::vector<Condition> cs) {
  Condition acc = True();
  for (auto& c : cs) acc = And(std::move(acc), std::move(c));
  return acc;
}

Condition Condition::OrAll(std::vector<Condition> cs) {
  Condition acc = False();
  for (auto& c : cs) acc = Or(std::move(acc), std::move(c));
  return acc;
}

namespace {
Value OperandValue(const CondOperand& o, const Tuple& t, bool* ok) {
  if (!o.is_attr) return o.constant;
  if (o.attr < 1 || o.attr > static_cast<int>(t.size())) {
    *ok = false;
    return int64_t{0};
  }
  return t[o.attr - 1];
}
}  // namespace

bool Condition::Eval(const Tuple& t) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kAtom: {
      bool ok = true;
      Value a = OperandValue(lhs_, t, &ok);
      Value b = OperandValue(rhs_, t, &ok);
      if (!ok) return false;
      return EvalCmp(op_, a, b);
    }
    case Kind::kAnd:
      return std::all_of(children_.begin(), children_.end(),
                         [&t](const Condition& c) { return c.Eval(t); });
    case Kind::kOr:
      return std::any_of(children_.begin(), children_.end(),
                         [&t](const Condition& c) { return c.Eval(t); });
    case Kind::kNot:
      return !children_[0].Eval(t);
  }
  return false;
}

Condition Condition::ShiftAttrs(int delta) const {
  return RemapAttrs([delta](int i) { return i + delta; });
}

Condition Condition::RemapAttrs(const std::function<int(int)>& remap) const {
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
      return *this;
    case Kind::kAtom: {
      CondOperand l = lhs_, r = rhs_;
      if (l.is_attr) l.attr = remap(l.attr);
      if (r.is_attr) r.attr = remap(r.attr);
      Condition c;
      c.kind_ = Kind::kAtom;
      c.op_ = op_;
      c.lhs_ = std::move(l);
      c.rhs_ = std::move(r);
      return c;
    }
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot: {
      Condition c;
      c.kind_ = kind_;
      c.children_.reserve(children_.size());
      for (const Condition& ch : children_) {
        c.children_.push_back(ch.RemapAttrs(remap));
      }
      return c;
    }
  }
  return *this;
}

int Condition::MaxAttr() const {
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
      return 0;
    case Kind::kAtom: {
      int m = 0;
      if (lhs_.is_attr) m = std::max(m, lhs_.attr);
      if (rhs_.is_attr) m = std::max(m, rhs_.attr);
      return m;
    }
    default: {
      int m = 0;
      for (const Condition& ch : children_) m = std::max(m, ch.MaxAttr());
      return m;
    }
  }
}

bool Condition::operator==(const Condition& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
      return true;
    case Kind::kAtom:
      return op_ == other.op_ && lhs_ == other.lhs_ && rhs_ == other.rhs_;
    default:
      return children_ == other.children_;
  }
}

size_t Condition::Hash() const {
  if (hash_cache_ != 0) return hash_cache_;
  size_t seed = static_cast<size_t>(kind_);
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
      break;
    case Kind::kAtom:
      HashCombine(&seed, static_cast<size_t>(op_));
      HashCombine(&seed, lhs_.is_attr ? static_cast<size_t>(lhs_.attr) * 3 + 1
                                      : HashValue(lhs_.constant));
      HashCombine(&seed, rhs_.is_attr ? static_cast<size_t>(rhs_.attr) * 3 + 1
                                      : HashValue(rhs_.constant));
      break;
    default:
      for (const Condition& ch : children_) HashCombine(&seed, ch.Hash());
  }
  if (seed == 0) seed = 1;  // keep 0 free as the "not computed" marker
  hash_cache_ = seed;
  return seed;
}

namespace {
std::string OperandToString(const CondOperand& o) {
  if (o.is_attr) return "#" + std::to_string(o.attr);
  return ValueToString(o.constant);
}
}  // namespace

std::string Condition::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kAtom:
      return OperandToString(lhs_) + CmpOpToString(op_) + OperandToString(rhs_);
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = kind_ == Kind::kAnd ? " and " : " or ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        out += children_[i].ToString();
      }
      out += ")";
      return out;
    }
    case Kind::kNot:
      return "not " + children_[0].ToString();
  }
  return "?";
}

}  // namespace mapcomp
