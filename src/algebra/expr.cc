#include "src/algebra/expr.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <unordered_set>

#include "src/algebra/interner.h"

namespace mapcomp {

uint64_t Expr::NameBit(const std::string& name) {
  return uint64_t{1} << (std::hash<std::string>()(name) & 63);
}

ExprPtr Expr::Make(ExprKind kind, std::string name,
                   std::vector<ExprPtr> children, Condition condition,
                   std::vector<int> indexes, int arity,
                   std::vector<Tuple> tuples) {
  return ExprInterner::Global().Intern(kind, std::move(name),
                                       std::move(children),
                                       std::move(condition), std::move(indexes),
                                       arity, std::move(tuples));
}

bool ExprEquals(const ExprPtr& a, const ExprPtr& b) {
  // Interning canonicalizes structurally equal nodes to one object.
  return a == b;
}

size_t ExprHash(const ExprPtr& e) {
  if (e == nullptr) return 0;
  return e->hash();
}

int OperatorCount(const ExprPtr& e) {
  if (e == nullptr) return 0;
  int64_t n = e->op_count();
  return n > std::numeric_limits<int>::max()
             ? std::numeric_limits<int>::max()
             : static_cast<int>(n);
}

namespace {

/// `bit` is NameBit(name), hashed once per query rather than per node.
/// `seen` (used above kSharedSubtreeThreshold) keeps mask false positives
/// from revisiting shared subtrees of a large DAG.
bool ContainsRelationImpl(const Expr& e, const std::string& name,
                          uint64_t bit,
                          std::unordered_set<const Expr*>* seen) {
  if ((e.relation_mask() & bit) == 0) return false;
  if (e.kind() == ExprKind::kRelation && e.name() == name) return true;
  if (seen != nullptr && !seen->insert(&e).second) return false;
  for (const ExprPtr& c : e.children()) {
    if (ContainsRelationImpl(*c, name, bit, seen)) return true;
  }
  return false;
}

}  // namespace

bool ContainsRelation(const ExprPtr& e, const std::string& name) {
  if (e == nullptr) return false;
  uint64_t bit = Expr::NameBit(name);
  if (e->op_count() <= kSharedSubtreeThreshold) {
    return ContainsRelationImpl(*e, name, bit, nullptr);
  }
  std::unordered_set<const Expr*> seen;
  return ContainsRelationImpl(*e, name, bit, &seen);
}

namespace {

/// Shared-subtree-aware collector: visits each interned node once, pruning
/// subtrees whose mask proves the target absent.
template <typename Mask, typename Visit>
void CollectUnique(const ExprPtr& e, std::unordered_set<const Expr*>* seen,
                   const Mask& has_any, const Visit& visit) {
  if (e == nullptr || !has_any(*e)) return;
  if (!seen->insert(e.get()).second) return;
  visit(*e);
  for (const ExprPtr& c : e->children()) {
    CollectUnique(c, seen, has_any, visit);
  }
}

}  // namespace

void CollectRelations(const ExprPtr& e, std::set<std::string>* out) {
  std::unordered_set<const Expr*> seen;
  CollectUnique(
      e, &seen, [](const Expr& n) { return n.relation_mask() != 0; },
      [out](const Expr& n) {
        if (n.kind() == ExprKind::kRelation) out->insert(n.name());
      });
}

bool ContainsSkolem(const ExprPtr& e) {
  return e != nullptr && e->contains_skolem();
}

void CollectSkolems(const ExprPtr& e, std::set<std::string>* out) {
  std::unordered_set<const Expr*> seen;
  CollectUnique(
      e, &seen, [](const Expr& n) { return n.contains_skolem(); },
      [out](const Expr& n) {
        if (n.kind() == ExprKind::kSkolem) out->insert(n.name());
      });
}

bool ContainsDomain(const ExprPtr& e) {
  return e != nullptr && e->contains_domain();
}

Status ValidateExpr(const ExprPtr& e) {
  if (e == nullptr) return Status::InvalidArgument("null expression");
  for (const ExprPtr& c : e->children()) MAPCOMP_RETURN_IF_ERROR(ValidateExpr(c));
  switch (e->kind()) {
    case ExprKind::kRelation:
    case ExprKind::kDomain:
    case ExprKind::kEmpty:
      if (e->arity() < 1) {
        return Status::InvalidArgument("arity must be >= 1 for " + e->name());
      }
      return Status::OK();
    case ExprKind::kLiteral:
      for (const Tuple& t : e->tuples()) {
        if (static_cast<int>(t.size()) != e->arity()) {
          return Status::InvalidArgument("literal tuple arity mismatch");
        }
      }
      return Status::OK();
    case ExprKind::kUnion:
    case ExprKind::kIntersect:
    case ExprKind::kDifference:
      if (e->children().size() != 2) {
        return Status::InvalidArgument("binary operator needs 2 children");
      }
      if (e->child(0)->arity() != e->child(1)->arity() ||
          e->arity() != e->child(0)->arity()) {
        return Status::InvalidArgument("arity mismatch in set operator");
      }
      return Status::OK();
    case ExprKind::kProduct:
      if (e->children().size() != 2) {
        return Status::InvalidArgument("product needs 2 children");
      }
      if (e->arity() != e->child(0)->arity() + e->child(1)->arity()) {
        return Status::InvalidArgument("product arity mismatch");
      }
      return Status::OK();
    case ExprKind::kSelect:
      if (e->children().size() != 1 || e->arity() != e->child(0)->arity()) {
        return Status::InvalidArgument("selection arity mismatch");
      }
      if (e->condition().MaxAttr() > e->arity()) {
        return Status::InvalidArgument(
            "selection condition references attribute beyond arity");
      }
      return Status::OK();
    case ExprKind::kProject: {
      if (e->children().size() != 1) {
        return Status::InvalidArgument("projection needs 1 child");
      }
      if (e->arity() != static_cast<int>(e->indexes().size())) {
        return Status::InvalidArgument("projection arity mismatch");
      }
      int r = e->child(0)->arity();
      for (int i : e->indexes()) {
        if (i < 1 || i > r) {
          return Status::InvalidArgument("projection index out of range");
        }
      }
      return Status::OK();
    }
    case ExprKind::kSkolem: {
      if (e->children().size() != 1) {
        return Status::InvalidArgument("skolem needs 1 child");
      }
      if (e->arity() != e->child(0)->arity() + 1) {
        return Status::InvalidArgument("skolem arity must be child arity + 1");
      }
      int r = e->child(0)->arity();
      for (int i : e->indexes()) {
        if (i < 1 || i > r) {
          return Status::InvalidArgument("skolem argument index out of range");
        }
      }
      return Status::OK();
    }
    case ExprKind::kUserOp:
      // Arity contract is owned by the registry; builders enforce it.
      return Status::OK();
  }
  return Status::Internal("unknown expression kind");
}

}  // namespace mapcomp
