#include "src/algebra/expr.h"

#include <algorithm>

namespace mapcomp {

ExprPtr Expr::Make(ExprKind kind, std::string name,
                   std::vector<ExprPtr> children, Condition condition,
                   std::vector<int> indexes, int arity,
                   std::vector<Tuple> tuples) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = kind;
  e->name_ = std::move(name);
  e->children_ = std::move(children);
  e->condition_ = std::move(condition);
  e->indexes_ = std::move(indexes);
  e->arity_ = arity;
  e->tuples_ = std::move(tuples);
  return e;
}

bool ExprEquals(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind() != b->kind() || a->arity() != b->arity()) return false;
  if (a->name() != b->name()) return false;
  if (a->indexes() != b->indexes()) return false;
  if (!(a->condition() == b->condition())) return false;
  if (a->children().size() != b->children().size()) return false;
  for (size_t i = 0; i < a->children().size(); ++i) {
    if (!ExprEquals(a->children()[i], b->children()[i])) return false;
  }
  if (a->kind() == ExprKind::kLiteral) {
    if (a->tuples().size() != b->tuples().size()) return false;
    for (size_t i = 0; i < a->tuples().size(); ++i) {
      if (a->tuples()[i].size() != b->tuples()[i].size()) return false;
      for (size_t j = 0; j < a->tuples()[i].size(); ++j) {
        if (CompareValues(a->tuples()[i][j], b->tuples()[i][j]) != 0) {
          return false;
        }
      }
    }
  }
  return true;
}

size_t ExprHash(const ExprPtr& e) {
  if (e == nullptr) return 0;
  size_t seed = static_cast<size_t>(e->kind());
  HashCombine(&seed, std::hash<std::string>()(e->name()));
  HashCombine(&seed, static_cast<size_t>(e->arity()));
  for (int i : e->indexes()) HashCombine(&seed, static_cast<size_t>(i));
  HashCombine(&seed, e->condition().Hash());
  for (const ExprPtr& c : e->children()) HashCombine(&seed, ExprHash(c));
  for (const Tuple& t : e->tuples()) HashCombine(&seed, HashTuple(t));
  return seed;
}

int OperatorCount(const ExprPtr& e) {
  if (e == nullptr) return 0;
  int n = 1;
  for (const ExprPtr& c : e->children()) n += OperatorCount(c);
  return n;
}

bool ContainsRelation(const ExprPtr& e, const std::string& name) {
  if (e == nullptr) return false;
  if (e->kind() == ExprKind::kRelation && e->name() == name) return true;
  for (const ExprPtr& c : e->children()) {
    if (ContainsRelation(c, name)) return true;
  }
  return false;
}

void CollectRelations(const ExprPtr& e, std::set<std::string>* out) {
  if (e == nullptr) return;
  if (e->kind() == ExprKind::kRelation) out->insert(e->name());
  for (const ExprPtr& c : e->children()) CollectRelations(c, out);
}

bool ContainsSkolem(const ExprPtr& e) {
  if (e == nullptr) return false;
  if (e->kind() == ExprKind::kSkolem) return true;
  for (const ExprPtr& c : e->children()) {
    if (ContainsSkolem(c)) return true;
  }
  return false;
}

void CollectSkolems(const ExprPtr& e, std::set<std::string>* out) {
  if (e == nullptr) return;
  if (e->kind() == ExprKind::kSkolem) out->insert(e->name());
  for (const ExprPtr& c : e->children()) CollectSkolems(c, out);
}

bool ContainsDomain(const ExprPtr& e) {
  if (e == nullptr) return false;
  if (e->kind() == ExprKind::kDomain) return true;
  for (const ExprPtr& c : e->children()) {
    if (ContainsDomain(c)) return true;
  }
  return false;
}

Status ValidateExpr(const ExprPtr& e) {
  if (e == nullptr) return Status::InvalidArgument("null expression");
  for (const ExprPtr& c : e->children()) MAPCOMP_RETURN_IF_ERROR(ValidateExpr(c));
  switch (e->kind()) {
    case ExprKind::kRelation:
    case ExprKind::kDomain:
    case ExprKind::kEmpty:
      if (e->arity() < 1) {
        return Status::InvalidArgument("arity must be >= 1 for " + e->name());
      }
      return Status::OK();
    case ExprKind::kLiteral:
      for (const Tuple& t : e->tuples()) {
        if (static_cast<int>(t.size()) != e->arity()) {
          return Status::InvalidArgument("literal tuple arity mismatch");
        }
      }
      return Status::OK();
    case ExprKind::kUnion:
    case ExprKind::kIntersect:
    case ExprKind::kDifference:
      if (e->children().size() != 2) {
        return Status::InvalidArgument("binary operator needs 2 children");
      }
      if (e->child(0)->arity() != e->child(1)->arity() ||
          e->arity() != e->child(0)->arity()) {
        return Status::InvalidArgument("arity mismatch in set operator");
      }
      return Status::OK();
    case ExprKind::kProduct:
      if (e->children().size() != 2) {
        return Status::InvalidArgument("product needs 2 children");
      }
      if (e->arity() != e->child(0)->arity() + e->child(1)->arity()) {
        return Status::InvalidArgument("product arity mismatch");
      }
      return Status::OK();
    case ExprKind::kSelect:
      if (e->children().size() != 1 || e->arity() != e->child(0)->arity()) {
        return Status::InvalidArgument("selection arity mismatch");
      }
      if (e->condition().MaxAttr() > e->arity()) {
        return Status::InvalidArgument(
            "selection condition references attribute beyond arity");
      }
      return Status::OK();
    case ExprKind::kProject: {
      if (e->children().size() != 1) {
        return Status::InvalidArgument("projection needs 1 child");
      }
      if (e->arity() != static_cast<int>(e->indexes().size())) {
        return Status::InvalidArgument("projection arity mismatch");
      }
      int r = e->child(0)->arity();
      for (int i : e->indexes()) {
        if (i < 1 || i > r) {
          return Status::InvalidArgument("projection index out of range");
        }
      }
      return Status::OK();
    }
    case ExprKind::kSkolem: {
      if (e->children().size() != 1) {
        return Status::InvalidArgument("skolem needs 1 child");
      }
      if (e->arity() != e->child(0)->arity() + 1) {
        return Status::InvalidArgument("skolem arity must be child arity + 1");
      }
      int r = e->child(0)->arity();
      for (int i : e->indexes()) {
        if (i < 1 || i > r) {
          return Status::InvalidArgument("skolem argument index out of range");
        }
      }
      return Status::OK();
    }
    case ExprKind::kUserOp:
      // Arity contract is owned by the registry; builders enforce it.
      return Status::OK();
  }
  return Status::Internal("unknown expression kind");
}

}  // namespace mapcomp
