#include "src/algebra/substitute.h"

namespace mapcomp {

ExprPtr SubstituteRelation(const ExprPtr& e, const std::string& name,
                           const ExprPtr& replacement) {
  if (e == nullptr) return e;
  if (e->kind() == ExprKind::kRelation && e->name() == name) {
    return replacement;
  }
  bool changed = false;
  std::vector<ExprPtr> new_children;
  new_children.reserve(e->children().size());
  for (const ExprPtr& c : e->children()) {
    ExprPtr nc = SubstituteRelation(c, name, replacement);
    changed = changed || nc != c;
    new_children.push_back(std::move(nc));
  }
  if (!changed) return e;
  return Expr::Make(e->kind(), e->name(), std::move(new_children),
                    e->condition(), e->indexes(), e->arity(), e->tuples());
}

ExprPtr RenameRelation(const ExprPtr& e, const std::string& from,
                       const std::string& to) {
  if (e == nullptr) return e;
  if (e->kind() == ExprKind::kRelation && e->name() == from) {
    return Expr::Make(ExprKind::kRelation, to, {}, Condition::True(), {},
                      e->arity(), {});
  }
  bool changed = false;
  std::vector<ExprPtr> new_children;
  new_children.reserve(e->children().size());
  for (const ExprPtr& c : e->children()) {
    ExprPtr nc = RenameRelation(c, from, to);
    changed = changed || nc != c;
    new_children.push_back(std::move(nc));
  }
  if (!changed) return e;
  return Expr::Make(e->kind(), e->name(), std::move(new_children),
                    e->condition(), e->indexes(), e->arity(), e->tuples());
}

}  // namespace mapcomp
