#include "src/algebra/substitute.h"

#include "src/algebra/rewrite_memo.h"

namespace mapcomp {

namespace {

/// Memoized bottom-up rewrite of kRelation leaves, shared by substitution
/// and renaming. `leaf` returns the replacement for a relation node, or
/// nullptr to keep it. Pure node-local, so a RewriteMemo keyed on node
/// identity rewrites each distinct subtree once, and the cached relation
/// mask (`bit` = NameBit of the target) skips whole subtrees that cannot
/// mention it.
template <typename LeafFn>
ExprPtr RewriteRelationLeaves(const ExprPtr& e, uint64_t bit,
                              const LeafFn& leaf, RewriteMemo* memo) {
  if ((e->relation_mask() & bit) == 0) return e;
  if (e->kind() == ExprKind::kRelation) {
    ExprPtr replaced = leaf(*e);
    return replaced != nullptr ? replaced : e;
  }
  if (memo != nullptr) {
    if (const ExprPtr* hit = memo->Find(e)) return *hit;
  }
  bool changed = false;
  std::vector<ExprPtr> new_children;
  new_children.reserve(e->children().size());
  for (const ExprPtr& c : e->children()) {
    ExprPtr nc = RewriteRelationLeaves(c, bit, leaf, memo);
    changed = changed || nc != c;
    new_children.push_back(std::move(nc));
  }
  ExprPtr result =
      changed ? Expr::Make(e->kind(), e->name(), std::move(new_children),
                           e->condition(), e->indexes(), e->arity(),
                           e->tuples())
              : e;
  if (memo != nullptr) memo->Insert(e, result);
  return result;
}

template <typename LeafFn>
ExprPtr RewriteRelationLeaves(const ExprPtr& e, const std::string& name,
                              const LeafFn& leaf) {
  if (e == nullptr) return e;
  uint64_t bit = Expr::NameBit(name);
  if (e->op_count() <= kSharedSubtreeThreshold) {
    return RewriteRelationLeaves(e, bit, leaf, nullptr);
  }
  RewriteMemo memo;
  return RewriteRelationLeaves(e, bit, leaf, &memo);
}

}  // namespace

ExprPtr SubstituteRelation(const ExprPtr& e, const std::string& name,
                           const ExprPtr& replacement) {
  return RewriteRelationLeaves(e, name, [&](const Expr& n) -> ExprPtr {
    return n.name() == name ? replacement : nullptr;
  });
}

ExprPtr RenameRelation(const ExprPtr& e, const std::string& from,
                       const std::string& to) {
  return RewriteRelationLeaves(e, from, [&](const Expr& n) -> ExprPtr {
    if (n.name() != from) return nullptr;
    return Expr::Make(ExprKind::kRelation, to, {}, Condition::True(), {},
                      n.arity(), {});
  });
}

}  // namespace mapcomp
