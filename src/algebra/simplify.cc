#include "src/algebra/simplify.h"

#include <algorithm>
#include <set>

#include "src/algebra/builders.h"
#include "src/algebra/rewrite_memo.h"

namespace mapcomp {

namespace {

bool TupleLess(const Tuple& a, const Tuple& b) {
  for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    int c = CompareValues(a[i], b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

std::vector<Tuple> SortedUnique(std::vector<Tuple> ts) {
  std::sort(ts.begin(), ts.end(), TupleLess);
  ts.erase(std::unique(ts.begin(), ts.end(),
                       [](const Tuple& a, const Tuple& b) {
                         return !TupleLess(a, b) && !TupleLess(b, a);
                       }),
           ts.end());
  return ts;
}

bool IsLit(const ExprPtr& e) { return e->kind() == ExprKind::kLiteral; }

/// One top-level rewrite step; children are already simplified.
/// Returns nullptr when no rule applies.
ExprPtr RewriteNode(const ExprPtr& e, const SimplifyHook& hook) {
  switch (e->kind()) {
    case ExprKind::kRelation:
    case ExprKind::kDomain:
    case ExprKind::kEmpty:
    case ExprKind::kLiteral:
      return nullptr;

    case ExprKind::kUnion: {
      const ExprPtr& a = e->child(0);
      const ExprPtr& b = e->child(1);
      if (a->kind() == ExprKind::kEmpty) return b;
      if (b->kind() == ExprKind::kEmpty) return a;
      if (a->kind() == ExprKind::kDomain || b->kind() == ExprKind::kDomain) {
        return Dom(e->arity());
      }
      if (ExprEquals(a, b)) return a;
      if (IsLit(a) && IsLit(b)) {
        std::vector<Tuple> ts = a->tuples();
        ts.insert(ts.end(), b->tuples().begin(), b->tuples().end());
        return Lit(e->arity(), SortedUnique(std::move(ts)));
      }
      return nullptr;
    }

    case ExprKind::kIntersect: {
      const ExprPtr& a = e->child(0);
      const ExprPtr& b = e->child(1);
      if (a->kind() == ExprKind::kEmpty || b->kind() == ExprKind::kEmpty) {
        return EmptyRel(e->arity());
      }
      if (a->kind() == ExprKind::kDomain) return b;
      if (b->kind() == ExprKind::kDomain) return a;
      if (ExprEquals(a, b)) return a;
      if (IsLit(a) && IsLit(b)) {
        std::vector<Tuple> bs = SortedUnique(b->tuples());
        std::vector<Tuple> out;
        for (const Tuple& t : SortedUnique(a->tuples())) {
          if (std::binary_search(bs.begin(), bs.end(), t, TupleLess)) {
            out.push_back(t);
          }
        }
        return Lit(e->arity(), std::move(out));
      }
      return nullptr;
    }

    case ExprKind::kDifference: {
      const ExprPtr& a = e->child(0);
      const ExprPtr& b = e->child(1);
      if (b->kind() == ExprKind::kEmpty) return a;
      if (a->kind() == ExprKind::kEmpty) return EmptyRel(e->arity());
      if (b->kind() == ExprKind::kDomain) return EmptyRel(e->arity());
      if (ExprEquals(a, b)) return EmptyRel(e->arity());
      if (IsLit(a) && IsLit(b)) {
        std::vector<Tuple> bs = SortedUnique(b->tuples());
        std::vector<Tuple> out;
        for (const Tuple& t : SortedUnique(a->tuples())) {
          if (!std::binary_search(bs.begin(), bs.end(), t, TupleLess)) {
            out.push_back(t);
          }
        }
        return Lit(e->arity(), std::move(out));
      }
      return nullptr;
    }

    case ExprKind::kProduct: {
      const ExprPtr& a = e->child(0);
      const ExprPtr& b = e->child(1);
      if (a->kind() == ExprKind::kEmpty || b->kind() == ExprKind::kEmpty) {
        return EmptyRel(e->arity());
      }
      if (a->kind() == ExprKind::kDomain && b->kind() == ExprKind::kDomain) {
        return Dom(e->arity());
      }
      if (IsLit(a) && IsLit(b)) {
        std::vector<Tuple> out;
        for (const Tuple& ta : a->tuples()) {
          for (const Tuple& tb : b->tuples()) {
            Tuple t = ta;
            t.insert(t.end(), tb.begin(), tb.end());
            out.push_back(std::move(t));
          }
        }
        return Lit(e->arity(), SortedUnique(std::move(out)));
      }
      return nullptr;
    }

    case ExprKind::kSelect: {
      const ExprPtr& c = e->child(0);
      if (e->condition().IsTrue()) return c;
      if (e->condition().IsFalse()) return EmptyRel(e->arity());
      if (c->kind() == ExprKind::kEmpty) return EmptyRel(e->arity());
      if (c->kind() == ExprKind::kSelect) {
        return Select(Condition::And(e->condition(), c->condition()),
                      c->child(0));
      }
      if (IsLit(c)) {
        std::vector<Tuple> out;
        for (const Tuple& t : c->tuples()) {
          if (e->condition().Eval(t)) out.push_back(t);
        }
        return Lit(e->arity(), SortedUnique(std::move(out)));
      }
      return nullptr;
    }

    case ExprKind::kProject: {
      const ExprPtr& c = e->child(0);
      if (c->kind() == ExprKind::kEmpty) return EmptyRel(e->arity());
      if (c->kind() == ExprKind::kDomain) {
        // π_I(D^r) = D^|I| — only valid when I has no repeated index
        // (π_{1,1}(D^1) is the diagonal, not D^2).
        std::set<int> distinct(e->indexes().begin(), e->indexes().end());
        if (distinct.size() == e->indexes().size()) return Dom(e->arity());
        return nullptr;
      }
      if (e->indexes() == IdentityIndexes(c->arity())) return c;
      if (c->kind() == ExprKind::kProject) {
        std::vector<int> composed;
        composed.reserve(e->indexes().size());
        for (int i : e->indexes()) composed.push_back(c->indexes()[i - 1]);
        return Project(std::move(composed), c->child(0));
      }
      if (IsLit(c)) {
        std::vector<Tuple> out;
        for (const Tuple& t : c->tuples()) {
          Tuple p;
          p.reserve(e->indexes().size());
          for (int i : e->indexes()) p.push_back(t[i - 1]);
          out.push_back(std::move(p));
        }
        return Lit(e->arity(), SortedUnique(std::move(out)));
      }
      return nullptr;
    }

    case ExprKind::kSkolem: {
      if (e->child(0)->kind() == ExprKind::kEmpty) return EmptyRel(e->arity());
      return nullptr;
    }

    case ExprKind::kUserOp:
      if (hook) return hook(e);
      return nullptr;
  }
  return nullptr;
}

/// One bottom-up pass. Interning makes node identity equal structural
/// equality, so the memo (when non-null) rewrites every occurrence of a
/// shared subtree exactly once per pass, and pointer inequality of the
/// result signals a structural change.
ExprPtr SimplifyOnce(const ExprPtr& e, const SimplifyHook& hook,
                     RewriteMemo* memo, bool* changed) {
  if (memo != nullptr) {
    if (const ExprPtr* hit = memo->Find(e)) {
      *changed = *changed || *hit != e;
      return *hit;
    }
  }
  bool child_changed = false;
  std::vector<ExprPtr> new_children;
  new_children.reserve(e->children().size());
  for (const ExprPtr& c : e->children()) {
    ExprPtr nc = SimplifyOnce(c, hook, memo, &child_changed);
    new_children.push_back(std::move(nc));
  }
  ExprPtr node = e;
  if (child_changed) {
    node = Expr::Make(e->kind(), e->name(), std::move(new_children),
                      e->condition(), e->indexes(), e->arity(), e->tuples());
  }
  ExprPtr rewritten = RewriteNode(node, hook);
  ExprPtr result = rewritten != nullptr ? std::move(rewritten)
                                        : std::move(node);
  if (memo != nullptr) memo->Insert(e, result);
  *changed = *changed || result != e;
  return result;
}

}  // namespace

ExprPtr SimplifyExpr(const ExprPtr& e, const SimplifyHook& hook) {
  if (e == nullptr) return e;
  ExprPtr cur = e;
  // A bounded fixpoint: each pass strictly shrinks or rewrites; 16 passes is
  // far more than any chain of the above rules requires.
  for (int i = 0; i < 16; ++i) {
    bool changed = false;
    if (cur->op_count() > kSharedSubtreeThreshold) {
      RewriteMemo memo;
      cur = SimplifyOnce(cur, hook, &memo, &changed);
    } else {
      cur = SimplifyOnce(cur, hook, nullptr, &changed);
    }
    if (!changed) break;
  }
  return cur;
}

}  // namespace mapcomp
