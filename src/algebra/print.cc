#include "src/algebra/print.h"

namespace mapcomp {

namespace {
std::string IndexListToString(const std::vector<int>& idx) {
  std::string out;
  for (size_t i = 0; i < idx.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(idx[i]);
  }
  return out;
}
}  // namespace

std::string ExprToString(const ExprPtr& e) {
  if (e == nullptr) return "<null>";
  switch (e->kind()) {
    case ExprKind::kRelation:
      return e->name();
    case ExprKind::kDomain:
      return "D^" + std::to_string(e->arity());
    case ExprKind::kEmpty:
      return "empty^" + std::to_string(e->arity());
    case ExprKind::kLiteral: {
      std::string out = "{";
      for (size_t i = 0; i < e->tuples().size(); ++i) {
        if (i > 0) out += ",";
        out += TupleToString(e->tuples()[i]);
      }
      out += "}";
      if (e->tuples().empty()) out += "^" + std::to_string(e->arity());
      return out;
    }
    case ExprKind::kUnion:
      return "(" + ExprToString(e->child(0)) + " + " +
             ExprToString(e->child(1)) + ")";
    case ExprKind::kIntersect:
      return "(" + ExprToString(e->child(0)) + " & " +
             ExprToString(e->child(1)) + ")";
    case ExprKind::kProduct:
      return "(" + ExprToString(e->child(0)) + " * " +
             ExprToString(e->child(1)) + ")";
    case ExprKind::kDifference:
      return "(" + ExprToString(e->child(0)) + " - " +
             ExprToString(e->child(1)) + ")";
    case ExprKind::kSelect:
      return "sel[" + e->condition().ToString() + "](" +
             ExprToString(e->child(0)) + ")";
    case ExprKind::kProject:
      return "pi[" + IndexListToString(e->indexes()) + "](" +
             ExprToString(e->child(0)) + ")";
    case ExprKind::kSkolem:
      return "$" + e->name() + "[" + IndexListToString(e->indexes()) + "](" +
             ExprToString(e->child(0)) + ")";
    case ExprKind::kUserOp: {
      std::string out = e->name();
      bool has_indexes = !e->indexes().empty();
      bool has_cond = !e->condition().IsTrue();
      if (has_indexes || has_cond) {
        out += "[";
        if (has_indexes) out += IndexListToString(e->indexes());
        if (has_indexes && has_cond) out += "; ";
        if (has_cond) out += e->condition().ToString();
        out += "]";
      }
      out += "(";
      for (size_t i = 0; i < e->children().size(); ++i) {
        if (i > 0) out += ", ";
        out += ExprToString(e->children()[i]);
      }
      out += ")";
      return out;
    }
  }
  return "<?>";
}

}  // namespace mapcomp
