#ifndef MAPCOMP_ALGEBRA_VALUE_H_
#define MAPCOMP_ALGEBRA_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace mapcomp {

/// A database value. The paper's constraints compare attributes against
/// constants; we support integer and string constants. Values are totally
/// ordered (all integers precede all strings) so tuples can live in ordered
/// containers.
using Value = std::variant<int64_t, std::string>;

/// A database tuple under the unnamed perspective: attribute i of the paper
/// corresponds to index i-1 of the vector.
using Tuple = std::vector<Value>;

/// Three-way comparison: negative / zero / positive like strcmp.
int CompareValues(const Value& a, const Value& b);

/// Renders a value in the library's text syntax: integers bare, strings
/// single-quoted.
std::string ValueToString(const Value& v);

/// Renders a tuple as `(v1,v2,...)`.
std::string TupleToString(const Tuple& t);

/// Combines a hash value into a running seed (boost::hash_combine recipe).
inline void HashCombine(size_t* seed, size_t v) {
  *seed ^= v + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

size_t HashValue(const Value& v);
size_t HashTuple(const Tuple& t);

/// Functor form of HashValue for unordered containers keyed by Value
/// (e.g. the evaluator's per-evaluation value dictionary).
struct ValueHash {
  size_t operator()(const Value& v) const { return HashValue(v); }
};

}  // namespace mapcomp

#endif  // MAPCOMP_ALGEBRA_VALUE_H_
