#ifndef MAPCOMP_ALGEBRA_SUBSTITUTE_H_
#define MAPCOMP_ALGEBRA_SUBSTITUTE_H_

#include <string>

#include "src/algebra/expr.h"

namespace mapcomp {

/// Returns `e` with every occurrence of relation symbol `name` replaced by
/// `replacement` (which must have the same arity as the symbol's uses).
/// Shares unchanged subtrees with the input.
ExprPtr SubstituteRelation(const ExprPtr& e, const std::string& name,
                           const ExprPtr& replacement);

/// Returns `e` with relation symbol `from` renamed to `to` (same arity).
ExprPtr RenameRelation(const ExprPtr& e, const std::string& from,
                       const std::string& to);

}  // namespace mapcomp

#endif  // MAPCOMP_ALGEBRA_SUBSTITUTE_H_
