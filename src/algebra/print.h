#ifndef MAPCOMP_ALGEBRA_PRINT_H_
#define MAPCOMP_ALGEBRA_PRINT_H_

#include <string>

#include "src/algebra/expr.h"

namespace mapcomp {

/// Renders an expression in the library's parseable text syntax:
///
///   R                       base relation
///   D^2, empty^2            active domain / empty relation of arity 2
///   {(1,'a'),(2,'b')}       literal constant relation
///   (E1 + E2)               union
///   (E1 & E2)               intersection
///   (E1 * E2)               cross product
///   (E1 - E2)               difference
///   sel[#1=#2 and #3=5](E)  selection
///   pi[1,3](E)              projection
///   $f[1,2](E)              Skolem operator
///   name[...](E1,E2)        user-defined operator
///
/// Binary operators are printed fully parenthesized, so the output parses
/// back to a structurally identical expression.
std::string ExprToString(const ExprPtr& e);

}  // namespace mapcomp

#endif  // MAPCOMP_ALGEBRA_PRINT_H_
