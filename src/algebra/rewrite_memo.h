#ifndef MAPCOMP_ALGEBRA_REWRITE_MEMO_H_
#define MAPCOMP_ALGEBRA_REWRITE_MEMO_H_

#include <unordered_map>
#include <utility>

#include "src/algebra/expr.h"

namespace mapcomp {

/// Memo table for structural rewrites ExprPtr → ExprPtr. Keys are node
/// identities, which interning makes equivalent to structural equality, so
/// one entry serves every occurrence of a shared subexpression and a
/// rewrite pass does linear work in the number of *distinct* subtrees.
///
/// Only valid for rewrites whose result depends on the node alone (not on
/// its position in the enclosing expression) — which is true of the
/// bottom-up passes in simplify.cc and substitute.cc.
class RewriteMemo {
 public:
  /// The memoized result for `e`, or nullptr if not recorded yet. The
  /// pointer is invalidated by the next Insert.
  const ExprPtr* Find(const ExprPtr& e) const {
    auto it = map_.find(e.get());
    return it == map_.end() ? nullptr : &it->second;
  }

  void Insert(const ExprPtr& e, ExprPtr result) {
    map_.emplace(e.get(), std::move(result));
  }

  size_t size() const { return map_.size(); }

 private:
  std::unordered_map<const Expr*, ExprPtr> map_;
};

}  // namespace mapcomp

#endif  // MAPCOMP_ALGEBRA_REWRITE_MEMO_H_
