#ifndef MAPCOMP_ALGEBRA_CONDITION_H_
#define MAPCOMP_ALGEBRA_CONDITION_H_

#include <functional>
#include <string>
#include <vector>

#include "src/algebra/value.h"

namespace mapcomp {

/// Comparison operator of a condition atom.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Returns the textual form ("=", "!=", "<", ...).
std::string CmpOpToString(CmpOp op);

/// Applies `op` to the three-way comparison result of two values.
bool EvalCmp(CmpOp op, const Value& a, const Value& b);

/// One side of a condition atom: either an attribute reference (1-based
/// index into the tuple, paper notation `#i`) or a constant.
struct CondOperand {
  bool is_attr = false;
  int attr = 0;  // valid iff is_attr
  Value constant = int64_t{0};

  static CondOperand Attr(int index) {
    CondOperand o;
    o.is_attr = true;
    o.attr = index;
    return o;
  }
  static CondOperand Const(Value v) {
    CondOperand o;
    o.constant = std::move(v);
    return o;
  }

  bool operator==(const CondOperand& other) const {
    if (is_attr != other.is_attr) return false;
    if (is_attr) return attr == other.attr;
    return CompareValues(constant, other.constant) == 0;
  }
};

/// An arbitrary boolean formula over attribute indexes and constants, as
/// allowed by the paper's selection operator sigma_c. Immutable value type.
class Condition {
 public:
  enum class Kind { kTrue, kFalse, kAtom, kAnd, kOr, kNot };

  /// The trivially true / false conditions.
  static Condition True();
  static Condition False();

  /// Atomic comparison `lhs op rhs`.
  static Condition Atom(CondOperand lhs, CmpOp op, CondOperand rhs);
  /// Convenience: `#l op #r`.
  static Condition AttrCmp(int l, CmpOp op, int r);
  /// Convenience: `#l op constant`.
  static Condition AttrConst(int l, CmpOp op, Value v);

  /// Connectives. And/Or fold their neutral and absorbing elements.
  static Condition And(Condition a, Condition b);
  static Condition Or(Condition a, Condition b);
  static Condition Not(Condition a);
  static Condition AndAll(std::vector<Condition> cs);
  static Condition OrAll(std::vector<Condition> cs);

  Condition() : kind_(Kind::kTrue) {}

  Kind kind() const { return kind_; }
  bool IsTrue() const { return kind_ == Kind::kTrue; }
  bool IsFalse() const { return kind_ == Kind::kFalse; }

  /// Valid for kAtom.
  CmpOp op() const { return op_; }
  const CondOperand& lhs() const { return lhs_; }
  const CondOperand& rhs() const { return rhs_; }

  /// Valid for kAnd / kOr (>= 2 entries) and kNot (1 entry).
  const std::vector<Condition>& children() const { return children_; }

  /// Evaluates the formula against a tuple. Attribute references must be in
  /// range 1..t.size(); out-of-range references evaluate to false.
  bool Eval(const Tuple& t) const;

  /// Returns a copy with every attribute index increased by `delta` (used
  /// when an expression is spliced into the right side of a product).
  Condition ShiftAttrs(int delta) const;

  /// Returns a copy with each attribute index `i` replaced by `remap(i)`.
  /// `remap` must return a positive index.
  Condition RemapAttrs(const std::function<int(int)>& remap) const;

  /// Largest attribute index referenced, or 0 if none.
  int MaxAttr() const;

  bool operator==(const Condition& other) const;
  /// Structural hash, cached after the first call (Expr interning hashes
  /// each node's condition on every Expr::Make).
  size_t Hash() const;

  /// Text syntax: `#1=#2 and not (#3<5 or false)`.
  std::string ToString() const;

 private:
  Kind kind_;
  CmpOp op_ = CmpOp::kEq;
  CondOperand lhs_, rhs_;
  std::vector<Condition> children_;
  // Lazy hash cache; 0 doubles as "not computed" (computed hashes are
  // nudged off 0).
  mutable size_t hash_cache_ = 0;
};

}  // namespace mapcomp

#endif  // MAPCOMP_ALGEBRA_CONDITION_H_
