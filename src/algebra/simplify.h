#ifndef MAPCOMP_ALGEBRA_SIMPLIFY_H_
#define MAPCOMP_ALGEBRA_SIMPLIFY_H_

#include <functional>

#include "src/algebra/expr.h"

namespace mapcomp {

/// Optional per-node rewrite hook, used to plug user-defined-operator
/// simplification rules (from the operator registry) into the generic
/// simplifier without a dependency cycle. Returns nullptr when no rewrite
/// applies.
using SimplifyHook = std::function<ExprPtr(const ExprPtr&)>;

/// Algebraic simplification to a fixpoint. Includes the paper's
/// domain-relation identities (§3.4.3):
///
///   E ∪ D^r = D^r    E ∩ D^r = E    E − D^r = ∅    π_I(D^r) = D^|I|
///
/// and empty-relation identities (§3.5.4):
///
///   E ∪ ∅ = E   E ∩ ∅ = ∅   E − ∅ = E   ∅ − E = ∅   σ_c(∅) = ∅   π_I(∅) = ∅
///
/// plus generic cleanups (σ_true(E)=E, σ merge, π∘π composition, identity π,
/// E∪E=E, E−E=∅, constant folding on literal relations).
///
/// NOTE on D: these identities are sound under the convention that the
/// active domain includes every constant mentioned by the constraint set
/// (see Evaluator); this matters only when literal relations are in play.
ExprPtr SimplifyExpr(const ExprPtr& e, const SimplifyHook& hook = nullptr);

}  // namespace mapcomp

#endif  // MAPCOMP_ALGEBRA_SIMPLIFY_H_
