#ifndef MAPCOMP_SIMULATOR_SCHEMA_H_
#define MAPCOMP_SIMULATOR_SCHEMA_H_

#include <string>
#include <vector>

#include "src/constraints/signature.h"

namespace mapcomp {
namespace sim {

/// A relation in an evolving schema. Keys, when present, occupy a prefix of
/// the attribute positions (1..key_size) — a simplification over the paper's
/// arbitrary key positions that loses no generality for the constraint
/// shapes exercised.
struct SimRelation {
  std::string name;
  int arity = 0;
  int key_size = 0;  ///< 0 = no key

  std::vector<int> KeyPositions() const;
};

/// A snapshot of the evolving schema.
struct SimSchema {
  std::vector<SimRelation> relations;

  Signature ToSignature() const;
  const SimRelation* Find(const std::string& name) const;
};

/// Allocates globally-fresh relation names (R1, R2, ...) so successive
/// schema versions have disjoint signatures, as the mapping semantics
/// requires (paper §2).
class NameAllocator {
 public:
  std::string Fresh() { return "R" + std::to_string(++counter_); }

 private:
  int counter_ = 0;
};

}  // namespace sim
}  // namespace mapcomp

#endif  // MAPCOMP_SIMULATOR_SCHEMA_H_
