#ifndef MAPCOMP_SIMULATOR_SIMULATOR_H_
#define MAPCOMP_SIMULATOR_SIMULATOR_H_

#include <map>
#include <random>

#include "src/constraints/mapping.h"
#include "src/simulator/primitives.h"

namespace mapcomp {
namespace sim {

/// Relative frequencies of the evolution primitives in an edit sequence
/// (paper §4.1 "Event Vectors").
struct EventVector {
  std::map<Primitive, double> weights;

  /// The paper's Default vector: all primitives equally frequent, except AA
  /// twice as frequent and DR five times less frequent.
  static EventVector Default();
  /// No Sub/Sup edits — all mappings stay equalities.
  static EventVector EqualityOnly();
  /// Sub/Sup four times more frequent (open-world flavored).
  static EventVector InclusionHeavy();
  /// Partitioning primitives (H*, V*, N*) three times more frequent.
  static EventVector PartitionHeavy();

  /// Returns a copy with the Sub+Sup share of total weight set to
  /// `fraction` (Figure 5's x-axis).
  EventVector WithInclusionProportion(double fraction) const;
};

struct SimulatorOptions {
  PrimitiveOptions primitives;
  EventVector events = EventVector::Default();
};

/// One full edit on the whole schema: the primitive applied to a random
/// relation, plus an identity copy (fresh name + equality constraint) of
/// every untouched relation, so the edit is a proper mapping between two
/// disjoint schema versions.
struct FullEdit {
  Primitive primitive = Primitive::kAR;
  /// The relation the primitive replaced (empty for AR). Experiments track
  /// this symbol's elimination separately: it is the one whose constraints
  /// carry the primitive's shape, while the untouched relations only get
  /// identity copies.
  std::string consumed;
  SimSchema new_schema;
  ConstraintSet constraints;  ///< over old ∪ new signature
};

/// Drives random schema evolution (the paper's "schema evolution
/// simulator", §4.1).
class EvolutionSimulator {
 public:
  EvolutionSimulator(SimulatorOptions options, uint64_t seed)
      : options_(std::move(options)), rng_(seed) {}

  /// A random schema with `size` relations.
  SimSchema RandomSchema(int size);

  /// Applies one random edit to `schema` (choosing primitive by event
  /// weight and a random target relation), returning the full mapping.
  FullEdit ApplyRandomEdit(const SimSchema& schema);

  /// Applies a specific primitive (random target). Falls back to AA when
  /// the primitive is inapplicable to every relation.
  FullEdit ApplyEdit(const SimSchema& schema, Primitive p);

  std::mt19937_64* rng() { return &rng_; }
  NameAllocator* names() { return &names_; }
  const SimulatorOptions& options() const { return options_; }

 private:
  SimulatorOptions options_;
  std::mt19937_64 rng_;
  NameAllocator names_;
};

}  // namespace sim
}  // namespace mapcomp

#endif  // MAPCOMP_SIMULATOR_SIMULATOR_H_
