#include "src/simulator/primitives.h"

#include <algorithm>

#include "src/algebra/builders.h"

namespace mapcomp {
namespace sim {

const char* PrimitiveName(Primitive p) {
  switch (p) {
    case Primitive::kAR:
      return "AR";
    case Primitive::kDR:
      return "DR";
    case Primitive::kAA:
      return "AA";
    case Primitive::kDA:
      return "DA";
    case Primitive::kDf:
      return "Df";
    case Primitive::kDb:
      return "Db";
    case Primitive::kD:
      return "D";
    case Primitive::kHf:
      return "Hf";
    case Primitive::kHb:
      return "Hb";
    case Primitive::kH:
      return "H";
    case Primitive::kVf:
      return "Vf";
    case Primitive::kVb:
      return "Vb";
    case Primitive::kV:
      return "V";
    case Primitive::kNf:
      return "Nf";
    case Primitive::kNb:
      return "Nb";
    case Primitive::kN:
      return "N";
    case Primitive::kSub:
      return "SUB";
    case Primitive::kSup:
      return "SUP";
  }
  return "?";
}

const std::vector<Primitive>& AllPrimitives() {
  static const std::vector<Primitive>* kAll = new std::vector<Primitive>{
      Primitive::kAR, Primitive::kDR, Primitive::kAA, Primitive::kDA,
      Primitive::kDf, Primitive::kDb, Primitive::kD,  Primitive::kHf,
      Primitive::kHb, Primitive::kH,  Primitive::kVf, Primitive::kVb,
      Primitive::kV,  Primitive::kNf, Primitive::kNb, Primitive::kN,
      Primitive::kSub, Primitive::kSup};
  return *kAll;
}

namespace {

int RandInt(std::mt19937_64* rng, int lo, int hi) {
  return std::uniform_int_distribution<int>(lo, hi)(*rng);
}

Value RandConstant(std::mt19937_64* rng, const PrimitiveOptions& options) {
  return Value(int64_t{RandInt(rng, 0, options.constant_pool - 1)});
}

SimRelation FreshRelation(int arity, int key_size, NameAllocator* names) {
  SimRelation r;
  r.name = names->Fresh();
  r.arity = arity;
  r.key_size = key_size;
  return r;
}

/// Appends key constraints for every keyed output (Figure 1: the produced
/// constraints "represent key or inclusion constraints on the output
/// relations").
void AddKeyConstraints(const std::vector<SimRelation>& produced,
                       const PrimitiveOptions& options, ConstraintSet* cs) {
  if (!options.enable_keys) return;
  for (const SimRelation& r : produced) {
    if (r.key_size > 0 && r.key_size < r.arity) {
      ConstraintSet key_cs =
          KeyConstraintsFor(r.name, r.arity, r.KeyPositions());
      cs->insert(cs->end(), key_cs.begin(), key_cs.end());
    }
  }
}

/// Splits R's non-key columns into two nonempty groups and returns the
/// vertical decomposition used by V* and N*: S gets key+left, T key+right.
struct VerticalSplit {
  std::vector<int> s_cols, t_cols;  // 1-based positions of R
  int shared = 0;                   // number of shared leading columns
};

VerticalSplit SplitVertically(const SimRelation& r, int shared,
                              std::mt19937_64* rng) {
  VerticalSplit split;
  split.shared = shared;
  for (int i = 1; i <= shared; ++i) {
    split.s_cols.push_back(i);
    split.t_cols.push_back(i);
  }
  std::vector<int> rest;
  for (int i = shared + 1; i <= r.arity; ++i) rest.push_back(i);
  // Random nonempty bipartition.
  int pivot = RandInt(rng, 1, static_cast<int>(rest.size()) - 1);
  for (int i = 0; i < static_cast<int>(rest.size()); ++i) {
    (i < pivot ? split.s_cols : split.t_cols).push_back(rest[i]);
  }
  return split;
}

std::optional<EditStep> VerticalFamily(Primitive p, const SimRelation& input,
                                       const PrimitiveOptions& options,
                                       NameAllocator* names,
                                       std::mt19937_64* rng) {
  bool is_v = p == Primitive::kVf || p == Primitive::kVb || p == Primitive::kV;
  int shared;
  if (is_v) {
    // Paper: the vertical partitioning primitives are the only ones that
    // require the input relation to have a key; the key is replicated.
    if (input.key_size == 0) return std::nullopt;
    shared = input.key_size;
  } else {
    shared = 1;  // normalization shares a single leading attribute
  }
  if (input.arity < shared + 2) return std::nullopt;
  VerticalSplit split = SplitVertically(input, shared, rng);

  EditStep step;
  step.primitive = p;
  step.consumed = input.name;
  SimRelation s = FreshRelation(static_cast<int>(split.s_cols.size()),
                                is_v ? shared : 0, names);
  SimRelation t = FreshRelation(static_cast<int>(split.t_cols.size()),
                                is_v ? shared : 0, names);
  step.produced = {s, t};

  ExprPtr r_expr = Rel(input.name, input.arity);
  bool forward = p == Primitive::kVf || p == Primitive::kNf ||
                 p == Primitive::kV || p == Primitive::kN;
  bool backward = p == Primitive::kVb || p == Primitive::kNb ||
                  p == Primitive::kV || p == Primitive::kN;
  if (forward) {
    step.constraints.push_back(
        Constraint::Equal(Project(split.s_cols, r_expr), Rel(s.name, s.arity)));
    step.constraints.push_back(
        Constraint::Equal(Project(split.t_cols, r_expr), Rel(t.name, t.arity)));
  }
  if (backward) {
    std::vector<std::pair<int, int>> join_on;
    for (int i = 1; i <= shared; ++i) join_on.emplace_back(i, i);
    ExprPtr join = EquiJoin(Rel(s.name, s.arity), Rel(t.name, t.arity),
                            join_on);
    // The join yields S's columns then T's non-shared columns; permute back
    // to R's column order.
    std::vector<int> perm(input.arity);
    for (int i = 0; i < static_cast<int>(split.s_cols.size()); ++i) {
      perm[split.s_cols[i] - 1] = i + 1;
    }
    int base = static_cast<int>(split.s_cols.size());
    int extra = 0;
    for (int i = 0; i < static_cast<int>(split.t_cols.size()); ++i) {
      if (split.t_cols[i] <= shared) continue;  // shared columns come from S
      ++extra;
      perm[split.t_cols[i] - 1] = base + extra;
    }
    step.constraints.push_back(
        Constraint::Equal(r_expr, Project(std::move(perm), std::move(join))));
  }
  if (p == Primitive::kNf || p == Primitive::kNb || p == Primitive::kN) {
    // π_A(T) ⊆ π_A(S) — every T key value references an S row.
    std::vector<int> a = IndexRange(1, shared);
    step.constraints.push_back(
        Constraint::Contain(Project(a, Rel(t.name, t.arity)),
                            Project(a, Rel(s.name, s.arity))));
  }
  AddKeyConstraints(step.produced, options, &step.constraints);
  return step;
}

}  // namespace

std::optional<EditStep> ApplyPrimitive(Primitive p, const SimRelation& input,
                                       const PrimitiveOptions& options,
                                       NameAllocator* names,
                                       std::mt19937_64* rng) {
  EditStep step;
  step.primitive = p;
  step.consumed = input.name;
  if (p == Primitive::kAR) {
    step.consumed.clear();
    int arity = RandInt(rng, options.min_arity, options.max_arity);
    int key = 0;
    if (options.enable_keys && RandInt(rng, 0, 1) == 1) {
      key = std::min(arity - 1, RandInt(rng, options.min_key, options.max_key));
    }
    step.produced = {FreshRelation(arity, key, names)};
    AddKeyConstraints(step.produced, options, &step.constraints);
    return step;
  }
  if (p == Primitive::kDR) {
    return step;  // relation disappears; no outputs, no constraints
  }
  int r = input.arity;
  ExprPtr r_expr = Rel(input.name, r);
  switch (p) {
    case Primitive::kAR:
    case Primitive::kDR:
      return std::nullopt;  // handled above
    case Primitive::kAA: {
      SimRelation s = FreshRelation(r + 1, input.key_size, names);
      step.produced = {s};
      step.constraints.push_back(Constraint::Equal(
          r_expr, Project(IndexRange(1, r), Rel(s.name, s.arity))));
      AddKeyConstraints(step.produced, options, &step.constraints);
      return step;
    }
    case Primitive::kDA: {
      // Drop a random non-key attribute.
      if (r - input.key_size < 1 || r <= 1) return std::nullopt;
      int c = RandInt(rng, input.key_size + 1, r);
      std::vector<int> kept;
      for (int i = 1; i <= r; ++i) {
        if (i != c) kept.push_back(i);
      }
      SimRelation s = FreshRelation(r - 1, input.key_size, names);
      step.produced = {s};
      step.constraints.push_back(Constraint::Equal(
          Project(std::move(kept), r_expr), Rel(s.name, s.arity)));
      AddKeyConstraints(step.produced, options, &step.constraints);
      return step;
    }
    case Primitive::kDf:
    case Primitive::kDb:
    case Primitive::kD: {
      Value c = RandConstant(rng, options);
      SimRelation s = FreshRelation(r + 1, input.key_size, names);
      step.produced = {s};
      ExprPtr s_expr = Rel(s.name, s.arity);
      if (p == Primitive::kDf || p == Primitive::kD) {
        step.constraints.push_back(Constraint::Equal(
            Product(r_expr, Lit(1, {Tuple{c}})), s_expr));
      }
      if (p == Primitive::kDb || p == Primitive::kD) {
        step.constraints.push_back(Constraint::Equal(
            r_expr,
            Project(IndexRange(1, r),
                    Select(Condition::AttrConst(r + 1, CmpOp::kEq, c),
                           s_expr))));
      }
      AddKeyConstraints(step.produced, options, &step.constraints);
      return step;
    }
    case Primitive::kHf:
    case Primitive::kHb:
    case Primitive::kH: {
      int c_pos = RandInt(rng, input.key_size + 1, r);
      Value cs = RandConstant(rng, options);
      Value ct = RandConstant(rng, options);
      SimRelation s = FreshRelation(r, input.key_size, names);
      SimRelation t = FreshRelation(r, input.key_size, names);
      step.produced = {s, t};
      ExprPtr s_expr = Rel(s.name, r);
      ExprPtr t_expr = Rel(t.name, r);
      if (p == Primitive::kHf || p == Primitive::kH) {
        step.constraints.push_back(Constraint::Equal(
            Select(Condition::AttrConst(c_pos, CmpOp::kEq, cs), r_expr),
            s_expr));
        step.constraints.push_back(Constraint::Equal(
            Select(Condition::AttrConst(c_pos, CmpOp::kEq, ct), r_expr),
            t_expr));
      }
      if (p == Primitive::kHb || p == Primitive::kH) {
        step.constraints.push_back(
            Constraint::Equal(r_expr, Union(s_expr, t_expr)));
      }
      AddKeyConstraints(step.produced, options, &step.constraints);
      return step;
    }
    case Primitive::kVf:
    case Primitive::kVb:
    case Primitive::kV:
    case Primitive::kNf:
    case Primitive::kNb:
    case Primitive::kN:
      return VerticalFamily(p, input, options, names, rng);
    case Primitive::kSub: {
      SimRelation s = FreshRelation(r, input.key_size, names);
      step.produced = {s};
      step.constraints.push_back(
          Constraint::Contain(r_expr, Rel(s.name, r)));
      AddKeyConstraints(step.produced, options, &step.constraints);
      return step;
    }
    case Primitive::kSup: {
      SimRelation s = FreshRelation(r, input.key_size, names);
      step.produced = {s};
      step.constraints.push_back(
          Constraint::Contain(Rel(s.name, r), r_expr));
      AddKeyConstraints(step.produced, options, &step.constraints);
      return step;
    }
  }
  return std::nullopt;
}

}  // namespace sim
}  // namespace mapcomp
