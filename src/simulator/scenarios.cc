#include "src/simulator/scenarios.h"

#include <map>
#include <set>

#include "src/algebra/builders.h"

namespace mapcomp {
namespace sim {

namespace {

/// State of an accumulated mapping σ0 → σ_current during an edit sequence.
struct AccumulatedMapping {
  Signature sigma1;             ///< σ0 plus residual intermediate symbols
  SimSchema current;            ///< current evolved schema
  ConstraintSet constraints;    ///< over sigma1 ∪ current
  std::map<std::string, int> residual_arity;  ///< residual symbol → arity
};

struct EditLoopResult {
  AccumulatedMapping mapping;
  std::map<Primitive, PerPrimitiveStats> per_primitive;
  int symbols_total = 0;
  int symbols_eliminated = 0;
  int blowup_aborts = 0;
  int residual_recovered = 0;
  double total_millis = 0.0;
};

/// Runs `num_edits` edits from `schema0`, composing after each one.
EditLoopResult RunEditLoop(EvolutionSimulator* simulator,
                           const SimSchema& schema0, int num_edits,
                           const ComposeOptions& compose_opts) {
  EditLoopResult out;
  AccumulatedMapping m;
  m.sigma1 = schema0.ToSignature();
  m.current = schema0;

  for (int k = 0; k < num_edits; ++k) {
    FullEdit edit = simulator->ApplyRandomEdit(m.current);
    if (k == 0 && m.constraints.empty()) {
      // The first edit initializes the accumulated mapping; there is
      // nothing to compose yet.
      m.constraints = std::move(edit.constraints);
      m.current = std::move(edit.new_schema);
      continue;
    }
    CompositionProblem problem;
    problem.sigma1 = m.sigma1;
    problem.sigma2 = m.current.ToSignature();
    problem.sigma3 = edit.new_schema.ToSignature();
    problem.sigma12 = m.constraints;
    problem.sigma23 = std::move(edit.constraints);

    CompositionResult res = Compose(problem, compose_opts);

    PerPrimitiveStats& stats = out.per_primitive[edit.primitive];
    stats.edits += 1;
    stats.symbols_total += res.total_count;
    stats.symbols_eliminated += res.eliminated_count;
    stats.millis += res.total_millis;
    if (!edit.consumed.empty()) {
      // Stats are per-attempt under the multi-round driver: a symbol may
      // fail in one round and be eliminated in a later one, so scan every
      // record for the consumed symbol.
      bool attempted = false, eliminated = false;
      for (const SymbolStat& s : res.stats) {
        if (s.symbol == edit.consumed) {
          attempted = true;
          eliminated = eliminated || s.eliminated;
        }
      }
      stats.consumed_total += attempted;
      stats.consumed_eliminated += eliminated;
    }
    out.symbols_total += res.total_count;
    out.symbols_eliminated += res.eliminated_count;
    out.total_millis += res.total_millis;
    // Count symbols (not attempts) whose *final* outcome was a blowup
    // abort; earlier blowup failures of a symbol that a later round
    // eliminated — or that last failed for a different reason — do not
    // count. Stats are chronological, so the last record per symbol wins.
    {
      std::map<std::string, bool> final_blowup;
      for (const SymbolStat& s : res.stats) {
        final_blowup[s.symbol] =
            !s.eliminated &&
            s.failure_reason.find("blowup") != std::string::npos;
      }
      for (const auto& [_, blown] : final_blowup) out.blowup_aborts += blown;
    }

    // Retry previously-kept residual symbols against the new constraint
    // set — later compositions can eliminate them (§4, second-order
    // constraint note).
    ConstraintSet current = std::move(res.constraints);
    for (auto it = m.residual_arity.begin(); it != m.residual_arity.end();) {
      EliminateOutcome retry = Eliminate(current, it->first, it->second,
                                         compose_opts.eliminate);
      if (retry.success) {
        current = std::move(retry.constraints);
        if (retry.step != EliminateStep::kNotMentioned) {
          ++out.residual_recovered;
        }
        it = m.residual_arity.erase(it);
      } else {
        ++it;
      }
    }
    for (const std::string& s : res.residual_sigma2) {
      m.residual_arity[s] = problem.sigma2.ArityOf(s);
    }

    // New accumulated mapping: σ0 ∪ residuals → new schema.
    m.sigma1 = schema0.ToSignature();
    for (const auto& [name, arity] : m.residual_arity) {
      m.sigma1.AddOrReplaceRelation(name, arity);
    }
    m.constraints = std::move(current);
    m.current = std::move(edit.new_schema);
  }
  out.mapping = std::move(m);
  return out;
}

}  // namespace

EditingScenarioResult RunEditingScenario(const EditingScenarioOptions& opts) {
  EvolutionSimulator simulator(opts.simulator, opts.seed);
  SimSchema schema0 = simulator.RandomSchema(opts.schema_size);
  EditLoopResult loop =
      RunEditLoop(&simulator, schema0, opts.num_edits, opts.compose);

  EditingScenarioResult out;
  out.per_primitive = std::move(loop.per_primitive);
  out.symbols_total = loop.symbols_total;
  out.symbols_eliminated = loop.symbols_eliminated;
  out.blowup_aborts = loop.blowup_aborts;
  out.total_millis = loop.total_millis;
  out.residual_symbols =
      static_cast<int>(loop.mapping.residual_arity.size());
  out.residual_recovered = loop.residual_recovered;
  out.final_mapping.input = loop.mapping.sigma1;
  out.final_mapping.output = loop.mapping.current.ToSignature();
  out.final_mapping.constraints = std::move(loop.mapping.constraints);
  return out;
}

CompositionProblem BuildReconciliationProblem(
    const ReconciliationScenarioOptions& opts) {
  EvolutionSimulator simulator(opts.simulator, opts.seed);
  SimSchema schema0 = simulator.RandomSchema(opts.schema_size);

  // Evolve two independent branches; prefer branches whose editing
  // compositions eliminated every intermediate symbol (first-order inputs).
  auto make_branch = [&]() {
    EditLoopResult branch = RunEditLoop(&simulator, schema0, opts.num_edits,
                                        opts.compose);
    for (int attempt = 1; attempt < opts.max_branch_attempts &&
                          !branch.mapping.residual_arity.empty();
         ++attempt) {
      branch = RunEditLoop(&simulator, schema0, opts.num_edits, opts.compose);
    }
    return branch;
  };
  EditLoopResult branch_a = make_branch();
  EditLoopResult branch_b = make_branch();

  // Compose inverse(σ0→σA) with (σ0→σB): eliminate the σ0 symbols.
  CompositionProblem problem;
  problem.sigma1 = branch_a.mapping.current.ToSignature();
  for (const auto& [name, arity] : branch_a.mapping.residual_arity) {
    problem.sigma1.AddOrReplaceRelation(name, arity);
  }
  problem.sigma2 = schema0.ToSignature();
  problem.sigma3 = branch_b.mapping.current.ToSignature();
  for (const auto& [name, arity] : branch_b.mapping.residual_arity) {
    problem.sigma3.AddOrReplaceRelation(name, arity);
  }
  problem.sigma12 = branch_a.mapping.constraints;
  problem.sigma23 = branch_b.mapping.constraints;
  return problem;
}

CompositionProblem BuildFanoutProblem(int width, bool chain_overlap) {
  CompositionProblem p;
  p.name = (chain_overlap ? "chain-overlap-" : "fanout-") +
           std::to_string(width);
  for (int i = 1; i <= width; ++i) {
    std::string r = "R" + std::to_string(i);
    std::string s = "S" + std::to_string(i);
    std::string t = "T" + std::to_string(i);
    p.sigma1.AddOrReplaceRelation(r, 2);
    p.sigma2.AddOrReplaceRelation(s, 2);
    p.sigma3.AddOrReplaceRelation(t, 2);
    ExprPtr def = Rel(r, 2);
    if (chain_overlap && i > 1) {
      def = Union(Rel("S" + std::to_string(i - 1), 2), std::move(def));
    }
    p.sigma12.push_back(Constraint::Equal(Rel(s, 2), std::move(def)));
    p.sigma23.push_back(Constraint::Contain(Rel(s, 2), Rel(t, 2)));
  }
  return p;
}

ReconciliationScenarioResult RunReconciliationScenario(
    const ReconciliationScenarioOptions& opts) {
  CompositionProblem problem = BuildReconciliationProblem(opts);
  CompositionResult res = Compose(problem, opts.compose);
  ReconciliationScenarioResult out;
  out.symbols_total = res.total_count;
  out.symbols_eliminated = res.eliminated_count;
  out.compose_millis = res.total_millis;
  return out;
}

}  // namespace sim
}  // namespace mapcomp
