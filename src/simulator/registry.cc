#include "src/simulator/registry.h"

#include <algorithm>
#include <utility>

namespace mapcomp {
namespace sim {

namespace {

/// Expressions are interned, so pointer equality is structural equality.
bool SameConstraint(const Constraint& a, const Constraint& b) {
  return a.kind == b.kind && a.lhs == b.lhs && a.rhs == b.rhs;
}

}  // namespace

std::string RegistryStats::ToString() const {
  std::string out = "registry: ";
  out += std::to_string(steps) + " edits (" + std::to_string(appends) +
         " appends, " + std::to_string(revisions) + " revisions), " +
         std::to_string(chains_recomposed) + " chains recomposed\n";
  out += "registry: mean chain depth " + std::to_string(MeanDepth()) +
         ", " + std::to_string(compositions_run) +
         " compositions run (" + std::to_string(CompositionsPerEdit()) +
         " per edit), prefix hit rate " +
         std::to_string(PrefixHitRate() * 100.0) + "%\n";
  return out;
}

SchemaRegistry::SchemaRegistry(RegistryOptions options,
                               runtime::ComposeService* service)
    : options_(options),
      simulator_(options.simulator, rnd::DeriveSeed(options.seed, 0)),
      family_sampler_(options.families, options.family_zipf),
      edit_rng_(rnd::DeriveSeed(options.seed, 1)),
      composer_(service, options.chain_cache) {
  families_.resize(static_cast<size_t>(options_.families));
  for (Family& family : families_) {
    family.tail = simulator_.RandomSchema(options_.schema_size);
    for (int d = 0; d < options_.initial_depth; ++d) AppendVersion(&family);
  }
}

int SchemaRegistry::TotalVersions() const {
  int out = 0;
  for (const Family& family : families_) {
    out += static_cast<int>(family.chain.size()) + 1;
  }
  return out;
}

void SchemaRegistry::AppendVersion(Family* family) {
  FullEdit edit = simulator_.ApplyRandomEdit(family->tail);
  Mapping m;
  m.input = family->tail.ToSignature();
  m.output = edit.new_schema.ToSignature();
  m.constraints = edit.constraints;
  family->chain.push_back(std::move(m));
  family->tail = std::move(edit.new_schema);
}

void SchemaRegistry::ReviseMapping(Family* family, int position) {
  ConstraintSet& cs = family->chain[static_cast<size_t>(position)].constraints;
  if (cs.empty()) return;  // nothing to rewrite; the edit is a no-op
  if (cs.size() >= 2 && !SameConstraint(cs.front(), cs.back())) {
    // Rotate the constraint list: same constraint set, different byte
    // order — to a fingerprint cache this is exactly what a registry
    // user re-uploading an equivalent mapping looks like.
    std::rotate(cs.begin(), cs.begin() + 1, cs.end());
  } else if (cs.size() >= 2) {
    // front == back means a duplicate toggled on earlier; toggle it off.
    cs.pop_back();
  } else {
    // Singleton list: rotation is the identity, so toggle a duplicate of
    // the constraint instead (sets are order/multiplicity-insensitive).
    cs.push_back(cs.front());
  }
}

Result<runtime::ChainResult> SchemaRegistry::Step() {
  int family_idx = family_sampler_.Sample(&edit_rng_);
  Family& family = families_[static_cast<size_t>(family_idx)];
  int depth = static_cast<int>(family.chain.size());

  // Draw the append/revise coin before the position so the edit stream
  // consumes the RNG identically across registries with equal options.
  double coin = std::uniform_real_distribution<double>(0.0, 1.0)(edit_rng_);
  bool revise = depth >= options_.max_depth || coin < options_.revise_fraction;
  if (revise) {
    // Rank 0 = the newest mapping; registries overwhelmingly fix what
    // just landed.
    rnd::ZipfSampler positions(depth, options_.position_zipf);
    int rank = positions.Sample(&edit_rng_);
    int position = depth - 1 - rank;
    ReviseMapping(&family, position);
    last_edit_ = RegistryEdit{family_idx, /*append=*/false, position};
    ++stats_.revisions;
  } else {
    AppendVersion(&family);
    last_edit_ = RegistryEdit{family_idx, /*append=*/true, depth};
    ++stats_.appends;
  }
  ++stats_.steps;

  Result<runtime::ChainResult> result =
      composer_.ComposeChain(family.chain, options_.compose);
  if (result.ok()) {
    ++stats_.chains_recomposed;
    stats_.compositions_run +=
        static_cast<uint64_t>(result.value().steps_composed);
    stats_.prefix_hits += static_cast<uint64_t>(result.value().prefix_hits);
    stats_.total_depth += static_cast<uint64_t>(family.chain.size());
  }
  return result;
}

Result<runtime::ChainResult> SchemaRegistry::ComposeFamily(int family) {
  return composer_.ComposeChain(families_[static_cast<size_t>(family)].chain,
                                options_.compose);
}

Result<runtime::ChainResult> SchemaRegistry::ComposeFamilyCold(
    int family) const {
  return runtime::ComposeChainCold(
      families_[static_cast<size_t>(family)].chain, options_.compose);
}

}  // namespace sim
}  // namespace mapcomp
