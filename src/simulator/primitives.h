#ifndef MAPCOMP_SIMULATOR_PRIMITIVES_H_
#define MAPCOMP_SIMULATOR_PRIMITIVES_H_

#include <optional>
#include <random>
#include <string>
#include <vector>

#include "src/constraints/constraint.h"
#include "src/simulator/schema.h"

namespace mapcomp {
namespace sim {

/// The schema evolution primitives of Figure 1. Forward ('f') variants
/// contain only the constraints defining the outputs in terms of the input;
/// backward ('b') variants only the reverse; the plain variant contains
/// both.
enum class Primitive {
  kAR,   ///< add relation
  kDR,   ///< drop relation
  kAA,   ///< add attribute:            R = π_A(S)
  kDA,   ///< drop attribute:           π_{A−C}(R) = S
  kDf,   ///< add default, forward:     R × {c} = S
  kDb,   ///< add default, backward:    R = π_A(σ_{C=c}(S))
  kD,    ///< add default, both
  kHf,   ///< horizontal part., fwd:    σ_{C=cS}(R) = S; σ_{C=cT}(R) = T
  kHb,   ///< horizontal part., bwd:    R = S ∪ T
  kH,    ///< horizontal partitioning, all three
  kVf,   ///< vertical part., fwd:      π_{A,B}(R) = S; π_{A,C}(R) = T
  kVb,   ///< vertical part., bwd:      R = S ⋈_A T
  kV,    ///< vertical partitioning, all three (requires a key)
  kNf,   ///< normalization, fwd:       vertical fwd + π_A(T) ⊆ π_A(S)
  kNb,   ///< normalization, bwd:       vertical bwd + π_A(T) ⊆ π_A(S)
  kN,    ///< normalization, all
  kSub,  ///< subset:                   R ⊆ S
  kSup,  ///< superset:                 S ⊆ R
};

const char* PrimitiveName(Primitive p);
const std::vector<Primitive>& AllPrimitives();

/// Knobs shared by primitive application (paper §4.1).
struct PrimitiveOptions {
  int min_arity = 2;
  int max_arity = 10;
  bool enable_keys = false;
  int min_key = 1;
  int max_key = 3;
  int constant_pool = 10;  ///< constants drawn from integers 0..pool-1
};

/// The effect of one edit: the consumed relation (empty for AR), the
/// relations it produced, and the mapping constraints between them
/// (including key constraints on keyed outputs when keys are enabled).
struct EditStep {
  Primitive primitive = Primitive::kAR;
  std::string consumed;
  std::vector<SimRelation> produced;
  ConstraintSet constraints;
};

/// Applies `p` to the relation `input` (ignored for AR), allocating fresh
/// output names. Returns nullopt when the primitive is not applicable
/// (e.g. DA on a unary relation, V on an unkeyed one).
std::optional<EditStep> ApplyPrimitive(Primitive p, const SimRelation& input,
                                       const PrimitiveOptions& options,
                                       NameAllocator* names,
                                       std::mt19937_64* rng);

}  // namespace sim
}  // namespace mapcomp

#endif  // MAPCOMP_SIMULATOR_PRIMITIVES_H_
