#ifndef MAPCOMP_SIMULATOR_SCENARIOS_H_
#define MAPCOMP_SIMULATOR_SCENARIOS_H_

#include <map>

#include "src/compose/compose.h"
#include "src/simulator/simulator.h"

namespace mapcomp {
namespace sim {

/// Aggregated outcome of the compositions following edits of one primitive
/// kind (Figures 2 and 3).
struct PerPrimitiveStats {
  int edits = 0;
  int symbols_total = 0;       ///< σ2 symbols attempted across those edits
  int symbols_eliminated = 0;
  /// The consumed (replaced) relation only — the symbol whose constraints
  /// carry the primitive's shape. This is the discriminating metric of
  /// Figure 2; the identity copies in symbols_total almost always unfold.
  int consumed_total = 0;
  int consumed_eliminated = 0;
  double millis = 0.0;

  double EliminatedFraction() const {
    return symbols_total == 0
               ? 1.0
               : static_cast<double>(symbols_eliminated) / symbols_total;
  }
  double ConsumedEliminatedFraction() const {
    return consumed_total == 0
               ? 1.0
               : static_cast<double>(consumed_eliminated) / consumed_total;
  }
  double MillisPerEdit() const { return edits == 0 ? 0.0 : millis / edits; }
};

struct EditingScenarioOptions {
  int schema_size = 30;   ///< paper default
  int num_edits = 100;    ///< paper default
  SimulatorOptions simulator;
  ComposeOptions compose;
  uint64_t seed = 1;
};

/// Result of one schema-editing run (§4: "the mapping between the original
/// schema and the current state of the schema is composed with the mapping
/// produced by each subsequent schema evolution primitive").
struct EditingScenarioResult {
  std::map<Primitive, PerPrimitiveStats> per_primitive;
  int symbols_total = 0;
  int symbols_eliminated = 0;
  int blowup_aborts = 0;       ///< eliminations aborted by the size guard
  double total_millis = 0.0;   ///< composition time only
  /// Residual (non-eliminated) intermediate symbols still in the mapping.
  int residual_symbols = 0;
  /// Final accumulated mapping, original schema → final schema.
  Mapping final_mapping;
  /// Count of residual symbols later removed by a subsequent composition.
  int residual_recovered = 0;

  double EliminatedFraction() const {
    return symbols_total == 0
               ? 1.0
               : static_cast<double>(symbols_eliminated) / symbols_total;
  }
};

EditingScenarioResult RunEditingScenario(const EditingScenarioOptions& opts);

struct ReconciliationScenarioOptions {
  int schema_size = 30;
  int num_edits = 100;   ///< per branch
  SimulatorOptions simulator;
  ComposeOptions compose;
  uint64_t seed = 1;
  /// Keep only branch mappings whose editing compositions eliminated every
  /// symbol ("to obtain first-order input mappings", §4.2). When the budget
  /// of attempts runs out the last candidate is used regardless.
  int max_branch_attempts = 8;
};

/// Result of one reconciliation task (§4.2): evolve σ0 independently into
/// σA and σB, then compose mA0 ∘ m0B eliminating the σ0 symbols.
struct ReconciliationScenarioResult {
  int symbols_total = 0;
  int symbols_eliminated = 0;
  double compose_millis = 0.0;

  double EliminatedFraction() const {
    return symbols_total == 0
               ? 1.0
               : static_cast<double>(symbols_eliminated) / symbols_total;
  }
};

ReconciliationScenarioResult RunReconciliationScenario(
    const ReconciliationScenarioOptions& opts);

/// Builds the reconciliation composition problem (two branches evolved from
/// a shared σ0, to be composed eliminating σ0) without running the final
/// composition — used by order-invariance experiments that re-compose the
/// same problem under different symbol orders.
CompositionProblem BuildReconciliationProblem(
    const ReconciliationScenarioOptions& opts);

/// A serving/scheduler workload shape: `width` σ2 symbols S1..Sw whose
/// constraint clusters share nothing (Si is defined from Ri alone and only
/// feeds Ti), so every symbol's occurrence set is disjoint from every
/// other's and the elimination scheduler puts the whole problem into one
/// width-`width` wave. `chain_overlap` threads Si into S(i+1)'s cluster
/// (Si+1's definition mentions Si), giving the opposite extreme: every
/// adjacent pair conflicts and waves serialize to alternating halves.
/// All symbols are eliminable by view unfolding in both shapes.
CompositionProblem BuildFanoutProblem(int width, bool chain_overlap = false);

}  // namespace sim
}  // namespace mapcomp

#endif  // MAPCOMP_SIMULATOR_SCENARIOS_H_
