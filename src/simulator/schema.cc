#include "src/simulator/schema.h"

namespace mapcomp {
namespace sim {

std::vector<int> SimRelation::KeyPositions() const {
  std::vector<int> out;
  out.reserve(key_size);
  for (int i = 1; i <= key_size; ++i) out.push_back(i);
  return out;
}

Signature SimSchema::ToSignature() const {
  Signature sig;
  for (const SimRelation& r : relations) {
    sig.AddOrReplaceRelation(r.name, r.arity);
    if (r.key_size > 0) {
      Status st = sig.SetKey(r.name, r.KeyPositions());
      (void)st;  // positions are valid by construction
    }
  }
  return sig;
}

const SimRelation* SimSchema::Find(const std::string& name) const {
  for (const SimRelation& r : relations) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

}  // namespace sim
}  // namespace mapcomp
