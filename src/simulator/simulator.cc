#include "src/simulator/simulator.h"

#include "src/algebra/builders.h"

namespace mapcomp {
namespace sim {

EventVector EventVector::Default() {
  EventVector v;
  for (Primitive p : AllPrimitives()) v.weights[p] = 1.0;
  v.weights[Primitive::kAA] = 2.0;   // adding attributes twice as frequent
  v.weights[Primitive::kDR] = 0.2;   // dropping relations 5x less frequent
  return v;
}

EventVector EventVector::EqualityOnly() {
  EventVector v = Default();
  v.weights[Primitive::kSub] = 0.0;
  v.weights[Primitive::kSup] = 0.0;
  return v;
}

EventVector EventVector::InclusionHeavy() {
  EventVector v = Default();
  v.weights[Primitive::kSub] = 4.0;
  v.weights[Primitive::kSup] = 4.0;
  return v;
}

EventVector EventVector::PartitionHeavy() {
  EventVector v = Default();
  for (Primitive p : {Primitive::kHf, Primitive::kHb, Primitive::kH,
                      Primitive::kVf, Primitive::kVb, Primitive::kV,
                      Primitive::kNf, Primitive::kNb, Primitive::kN}) {
    v.weights[p] = 3.0;
  }
  return v;
}

EventVector EventVector::WithInclusionProportion(double fraction) const {
  EventVector v = *this;
  double rest = 0.0;
  for (const auto& [p, w] : v.weights) {
    if (p != Primitive::kSub && p != Primitive::kSup) rest += w;
  }
  // Solve (2x) / (rest + 2x) = fraction for the per-primitive weight x.
  double x = fraction >= 1.0 ? 1e9
                             : fraction * rest / (2.0 * (1.0 - fraction));
  v.weights[Primitive::kSub] = x;
  v.weights[Primitive::kSup] = x;
  return v;
}

SimSchema EvolutionSimulator::RandomSchema(int size) {
  SimSchema schema;
  std::uniform_int_distribution<int> arity_dist(options_.primitives.min_arity,
                                                options_.primitives.max_arity);
  std::uniform_int_distribution<int> key_dist(options_.primitives.min_key,
                                              options_.primitives.max_key);
  std::uniform_int_distribution<int> coin(0, 1);
  for (int i = 0; i < size; ++i) {
    SimRelation r;
    r.name = names_.Fresh();
    r.arity = arity_dist(rng_);
    if (options_.primitives.enable_keys && coin(rng_) == 1) {
      r.key_size = std::min(r.arity - 1, key_dist(rng_));
    }
    schema.relations.push_back(std::move(r));
  }
  return schema;
}

namespace {

Primitive PickPrimitive(const EventVector& events, std::mt19937_64* rng) {
  double total = 0.0;
  for (const auto& [_, w] : events.weights) total += w;
  std::uniform_real_distribution<double> dist(0.0, total);
  double roll = dist(*rng);
  for (const auto& [p, w] : events.weights) {
    roll -= w;
    if (roll <= 0.0) return p;
  }
  return Primitive::kAA;
}

}  // namespace

FullEdit EvolutionSimulator::ApplyEdit(const SimSchema& schema, Primitive p) {
  // Choose a target relation; retry a few times for applicability, then
  // fall back to AA (always applicable).
  std::optional<EditStep> step;
  if (p == Primitive::kAR) {
    SimRelation dummy;
    step = ApplyPrimitive(p, dummy, options_.primitives, &names_, &rng_);
  } else if (!schema.relations.empty()) {
    std::uniform_int_distribution<int> pick(
        0, static_cast<int>(schema.relations.size()) - 1);
    for (int attempt = 0; attempt < 16 && !step.has_value(); ++attempt) {
      const SimRelation& target = schema.relations[pick(rng_)];
      step = ApplyPrimitive(p, target, options_.primitives, &names_, &rng_);
    }
  }
  if (!step.has_value()) {
    std::uniform_int_distribution<int> pick(
        0, static_cast<int>(schema.relations.size()) - 1);
    const SimRelation& target = schema.relations[pick(rng_)];
    step = ApplyPrimitive(Primitive::kAA, target, options_.primitives,
                          &names_, &rng_);
  }

  FullEdit edit;
  edit.primitive = step->primitive;
  edit.consumed = step->consumed;
  edit.constraints = step->constraints;
  // Copy every untouched relation under a fresh name with an identity
  // equality, so old and new schema versions stay disjoint.
  for (const SimRelation& r : schema.relations) {
    if (r.name == step->consumed) continue;
    SimRelation copy = r;
    copy.name = names_.Fresh();
    edit.constraints.push_back(Constraint::Equal(Rel(r.name, r.arity),
                                                 Rel(copy.name, copy.arity)));
    edit.new_schema.relations.push_back(std::move(copy));
  }
  for (const SimRelation& r : step->produced) {
    edit.new_schema.relations.push_back(r);
  }
  return edit;
}

FullEdit EvolutionSimulator::ApplyRandomEdit(const SimSchema& schema) {
  return ApplyEdit(schema, PickPrimitive(options_.events, &rng_));
}

}  // namespace sim
}  // namespace mapcomp
