#ifndef MAPCOMP_SIMULATOR_REGISTRY_H_
#define MAPCOMP_SIMULATOR_REGISTRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rand.h"
#include "src/runtime/chain_composer.h"
#include "src/simulator/simulator.h"

namespace mapcomp {
namespace sim {

/// Knobs of the simulated schema registry — the paper's motivating
/// steady-state deployment: many schema families, each a chain of versions
/// v1→v2→…→vn connected by mappings, re-composed end-to-end as edits land.
struct RegistryOptions {
  int families = 16;       ///< independent schema families (chains)
  int initial_depth = 8;   ///< mappings seeded per chain (versions = depth+1)
  int max_depth = 24;      ///< appends beyond this depth become revisions
  int schema_size = 5;     ///< relations per schema version
  /// Skew of the family edit stream: P(family at popularity rank k) ∝
  /// 1/(k+1)^s — a few hot schemas absorb most edits, the long tail idles.
  double family_zipf = 1.2;
  /// Skew of revision positions, measured from the chain tail: rank 0 is
  /// the newest mapping. Registries overwhelmingly fix recent mappings,
  /// which is exactly the regime where prefix reuse pays.
  double position_zipf = 1.5;
  /// Probability an edit revises an existing mapping instead of appending
  /// a new version (chains at max_depth always revise).
  double revise_fraction = 0.25;
  uint64_t seed = 1;
  SimulatorOptions simulator;
  ComposeOptions compose;
  /// Prefix-cache sizing of the registry's ChainComposer. Set
  /// `chain_cache.cache_capacity = 0` (with a cache-disabled service) for
  /// a cold-recompose baseline registry over the same edit stream.
  runtime::ChainComposerOptions chain_cache;
};

/// What one edit did.
struct RegistryEdit {
  int family = 0;
  bool append = false;  ///< false = revised an existing mapping
  int position = 0;     ///< 0-based chain index edited/appended
};

/// Aggregates over a run of registry steps.
struct RegistryStats {
  uint64_t steps = 0;
  uint64_t appends = 0;
  uint64_t revisions = 0;
  uint64_t chains_recomposed = 0;
  uint64_t compositions_run = 0;  ///< suffix compositions actually executed
  uint64_t prefix_hits = 0;       ///< cached prefix compositions reused
  uint64_t total_depth = 0;       ///< Σ chain depth at each recompose

  double MeanDepth() const {
    return chains_recomposed == 0
               ? 0.0
               : static_cast<double>(total_depth) / chains_recomposed;
  }
  /// The O(affected suffix) witness: compositions actually run per edit.
  /// A cold registry pays MeanDepth()-1 of these per edit instead.
  double CompositionsPerEdit() const {
    return steps == 0 ? 0.0
                      : static_cast<double>(compositions_run) / steps;
  }
  double PrefixHitRate() const {
    uint64_t total = prefix_hits + compositions_run;
    return total == 0 ? 0.0 : static_cast<double>(prefix_hits) / total;
  }
  std::string ToString() const;
};

/// A long-lived simulated schema registry: `families` chains of evolving
/// schema versions, a seeded Zipf-distributed edit stream (hot families,
/// recency-biased revision positions), and full-chain recomposition after
/// every edit through a ChainComposer. Given equal options/seed, two
/// registries produce byte-identical edit streams and compositions — the
/// incremental and cold baseline lanes of bench_registry rely on this.
///
/// Single edit-stream writer: Step() mutates chains and must be called
/// from one thread at a time. ComposeFamily/ComposeFamilyCold only read
/// (the chain composer and service are internally thread-safe).
class SchemaRegistry {
 public:
  /// `service` must outlive the registry; chain compositions run through
  /// it. Chains are seeded to `initial_depth` at construction (schema
  /// generation only — nothing is composed until the first Step or
  /// ComposeFamily call).
  SchemaRegistry(RegistryOptions options, runtime::ComposeService* service);

  int families() const { return static_cast<int>(families_.size()); }
  /// Total schema versions currently in the registry.
  int TotalVersions() const;
  int ChainDepth(int family) const {
    return static_cast<int>(families_[family].chain.size());
  }
  const std::vector<Mapping>& Chain(int family) const {
    return families_[family].chain;
  }

  /// Applies one Zipf-drawn edit and incrementally recomposes the edited
  /// family's full chain. The returned ChainResult carries the per-call
  /// prefix-hit/suffix-recompute split.
  Result<runtime::ChainResult> Step();
  /// The edit applied by the most recent Step().
  const RegistryEdit& last_edit() const { return last_edit_; }

  /// Warm (prefix-cached) recomposition of one family, no edit.
  Result<runtime::ChainResult> ComposeFamily(int family);
  /// Cold oracle recomposition — no prefix reuse, no service.
  Result<runtime::ChainResult> ComposeFamilyCold(int family) const;

  const RegistryStats& stats() const { return stats_; }
  runtime::ChainComposer* chain_composer() { return &composer_; }

 private:
  struct Family {
    SimSchema tail;  ///< newest schema version (next append's input)
    std::vector<Mapping> chain;
  };

  void AppendVersion(Family* family);
  /// Revises chain[position] in place, keeping its endpoint signatures:
  /// the constraint list is rotated (or, for singleton lists, a duplicate
  /// constraint is toggled on/off) — semantically equivalence-preserving,
  /// but a different byte-level mapping, which is what a registry edit
  /// looks like to a fingerprint cache.
  void ReviseMapping(Family* family, int position);

  const RegistryOptions options_;
  EvolutionSimulator simulator_;
  rnd::ZipfSampler family_sampler_;
  std::mt19937_64 edit_rng_;
  runtime::ChainComposer composer_;
  std::vector<Family> families_;
  RegistryEdit last_edit_;
  RegistryStats stats_;
};

}  // namespace sim
}  // namespace mapcomp

#endif  // MAPCOMP_SIMULATOR_REGISTRY_H_
