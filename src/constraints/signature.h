#ifndef MAPCOMP_CONSTRAINTS_SIGNATURE_H_
#define MAPCOMP_CONSTRAINTS_SIGNATURE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/constraints/constraint.h"

namespace mapcomp {

/// A signature (schema): a function from relation symbols to arities, with
/// optional key information per relation (key = list of 1-based attribute
/// positions). Relation insertion order is preserved — the composition
/// algorithm eliminates symbols "following the user-specified ordering"
/// (paper §3.1).
class Signature {
 public:
  Status AddRelation(const std::string& name, int arity);
  /// Adds or overwrites; aborts nothing, for simulator convenience.
  void AddOrReplaceRelation(const std::string& name, int arity);
  Status SetKey(const std::string& name, std::vector<int> key_positions);
  void RemoveRelation(const std::string& name);

  bool Contains(const std::string& name) const;
  /// Arity of `name`; 0 if absent.
  int ArityOf(const std::string& name) const;
  /// Key positions if a key was declared.
  std::optional<std::vector<int>> KeyOf(const std::string& name) const;

  /// Relation names in insertion order.
  const std::vector<std::string>& names() const { return order_; }
  int size() const { return static_cast<int>(order_.size()); }
  bool empty() const { return order_.empty(); }

  /// Union of two signatures; duplicate names must agree on arity
  /// (status error otherwise).
  static Result<Signature> Merge(const Signature& a, const Signature& b);

  /// True if the two signatures share no relation names.
  static bool Disjoint(const Signature& a, const Signature& b);

  std::string ToString() const;

  /// Canonical serialization for cache keys: like ToString, but every
  /// relation name is length-prefixed, so unrestricted names can never make
  /// two different signatures serialize identically (e.g. one relation
  /// named "A(1); B" vs relations "A" and "B").
  std::string Fingerprint() const;

 private:
  std::vector<std::string> order_;
  std::map<std::string, int> arity_;
  std::map<std::string, std::vector<int>> keys_;
};

/// Expresses "positions `key` are a key of relation `name`" using the
/// paper's active-domain technique (Example 2). For each non-key position j,
/// emits
///
///   π_{j, r+j}(σ_{∧_{k∈key} #k=#(r+k)}(R × R)) ⊆ σ_{#1=#2}(D^2)
///
/// i.e. two tuples agreeing on the key agree on every other attribute.
ConstraintSet KeyConstraintsFor(const std::string& name, int arity,
                                const std::vector<int>& key);

}  // namespace mapcomp

#endif  // MAPCOMP_CONSTRAINTS_SIGNATURE_H_
