#include "src/constraints/signature.h"

#include <algorithm>

#include "src/algebra/builders.h"

namespace mapcomp {

Status Signature::AddRelation(const std::string& name, int arity) {
  if (arity < 1) {
    return Status::InvalidArgument("relation " + name + ": arity must be >=1");
  }
  auto it = arity_.find(name);
  if (it != arity_.end()) {
    if (it->second != arity) {
      return Status::InvalidArgument("relation " + name +
                                     " redeclared with different arity");
    }
    return Status::OK();
  }
  arity_[name] = arity;
  order_.push_back(name);
  return Status::OK();
}

void Signature::AddOrReplaceRelation(const std::string& name, int arity) {
  auto it = arity_.find(name);
  if (it == arity_.end()) order_.push_back(name);
  arity_[name] = arity;
}

Status Signature::SetKey(const std::string& name,
                         std::vector<int> key_positions) {
  auto it = arity_.find(name);
  if (it == arity_.end()) {
    return Status::NotFound("relation " + name + " not in signature");
  }
  for (int k : key_positions) {
    if (k < 1 || k > it->second) {
      return Status::InvalidArgument("key position out of range for " + name);
    }
  }
  keys_[name] = std::move(key_positions);
  return Status::OK();
}

void Signature::RemoveRelation(const std::string& name) {
  arity_.erase(name);
  keys_.erase(name);
  order_.erase(std::remove(order_.begin(), order_.end(), name), order_.end());
}

bool Signature::Contains(const std::string& name) const {
  return arity_.count(name) > 0;
}

int Signature::ArityOf(const std::string& name) const {
  auto it = arity_.find(name);
  return it == arity_.end() ? 0 : it->second;
}

std::optional<std::vector<int>> Signature::KeyOf(
    const std::string& name) const {
  auto it = keys_.find(name);
  if (it == keys_.end()) return std::nullopt;
  return it->second;
}

Result<Signature> Signature::Merge(const Signature& a, const Signature& b) {
  Signature out = a;
  for (const std::string& n : b.order_) {
    MAPCOMP_RETURN_IF_ERROR(out.AddRelation(n, b.ArityOf(n)));
    auto key = b.KeyOf(n);
    if (key.has_value() && !out.KeyOf(n).has_value()) {
      MAPCOMP_RETURN_IF_ERROR(out.SetKey(n, *key));
    }
  }
  return out;
}

bool Signature::Disjoint(const Signature& a, const Signature& b) {
  for (const std::string& n : a.order_) {
    if (b.Contains(n)) return false;
  }
  return true;
}

std::string Signature::ToString() const {
  std::string out;
  for (const std::string& n : order_) {
    out += n + "(" + std::to_string(ArityOf(n)) + ")";
    auto key = KeyOf(n);
    if (key.has_value()) {
      out += " key(";
      for (size_t i = 0; i < key->size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string((*key)[i]);
      }
      out += ")";
    }
    out += "; ";
  }
  return out;
}

std::string Signature::Fingerprint() const {
  std::string out;
  for (const std::string& n : order_) {
    out += std::to_string(n.size()) + ":" + n + "(" +
           std::to_string(ArityOf(n)) + ")";
    auto key = KeyOf(n);
    if (key.has_value()) {
      out += "key(";
      for (size_t i = 0; i < key->size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string((*key)[i]);
      }
      out += ")";
    }
    out += ";";
  }
  return out;
}

ConstraintSet KeyConstraintsFor(const std::string& name, int arity,
                                const std::vector<int>& key) {
  ConstraintSet out;
  ExprPtr rr = Product(Rel(name, arity), Rel(name, arity));
  std::vector<Condition> key_eq;
  key_eq.reserve(key.size());
  for (int k : key) {
    key_eq.push_back(Condition::AttrCmp(k, CmpOp::kEq, arity + k));
  }
  Condition agree_on_key = Condition::AndAll(key_eq);
  ExprPtr rhs = Select(Condition::AttrCmp(1, CmpOp::kEq, 2), Dom(2));
  for (int j = 1; j <= arity; ++j) {
    if (std::find(key.begin(), key.end(), j) != key.end()) continue;
    ExprPtr lhs = Project({j, arity + j}, Select(agree_on_key, rr));
    out.push_back(Constraint::Contain(std::move(lhs), rhs));
  }
  return out;
}

}  // namespace mapcomp
