#ifndef MAPCOMP_CONSTRAINTS_CONSTRAINT_H_
#define MAPCOMP_CONSTRAINTS_CONSTRAINT_H_

#include <set>
#include <string>
#include <vector>

#include "src/algebra/expr.h"

namespace mapcomp {

/// Kind of a mapping constraint (paper §2): containment `E1 ⊆ E2` or
/// equality `E1 = E2`.
enum class ConstraintKind { kContainment, kEquality };

/// A single algebraic constraint between two relational expressions of equal
/// arity.
struct Constraint {
  ConstraintKind kind = ConstraintKind::kContainment;
  ExprPtr lhs;
  ExprPtr rhs;

  static Constraint Contain(ExprPtr l, ExprPtr r) {
    return Constraint{ConstraintKind::kContainment, std::move(l),
                      std::move(r)};
  }
  static Constraint Equal(ExprPtr l, ExprPtr r) {
    return Constraint{ConstraintKind::kEquality, std::move(l), std::move(r)};
  }

  bool IsEquality() const { return kind == ConstraintKind::kEquality; }

  /// Text syntax: `E1 <= E2` or `E1 = E2`.
  std::string ToString() const;
};

/// A finite set of constraints (Σ in the paper). Order is preserved; the
/// composition algorithm treats it as a set.
using ConstraintSet = std::vector<Constraint>;

/// Structural equality of two constraints.
bool ConstraintEquals(const Constraint& a, const Constraint& b);

/// Total operator count across both sides — the paper's mapping-size metric.
int OperatorCount(const Constraint& c);
int OperatorCount(const ConstraintSet& cs);

/// True if relation `name` occurs on either side.
bool ConstraintContainsRelation(const Constraint& c, const std::string& name);

/// All base relation names occurring in the set.
std::set<std::string> CollectRelations(const ConstraintSet& cs);

/// True if any Skolem operator occurs in the set.
bool ContainsSkolem(const ConstraintSet& cs);

/// Renders one constraint per line, each terminated with `;`.
std::string ConstraintSetToString(const ConstraintSet& cs);

}  // namespace mapcomp

#endif  // MAPCOMP_CONSTRAINTS_CONSTRAINT_H_
