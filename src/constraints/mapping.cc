#include "src/constraints/mapping.h"

namespace mapcomp {

namespace {

/// Every relation in `e` must be declared in one of the signatures with the
/// same arity.
Status CheckDeclared(const ExprPtr& e,
                     const std::vector<const Signature*>& sigs) {
  if (e == nullptr) return Status::InvalidArgument("null expression");
  if (e->kind() == ExprKind::kRelation) {
    for (const Signature* s : sigs) {
      if (s->Contains(e->name())) {
        if (s->ArityOf(e->name()) != e->arity()) {
          return Status::InvalidArgument(
              "relation " + e->name() + " used with arity " +
              std::to_string(e->arity()) + " but declared with " +
              std::to_string(s->ArityOf(e->name())));
        }
        return Status::OK();
      }
    }
    return Status::NotFound("relation " + e->name() + " not declared");
  }
  for (const ExprPtr& c : e->children()) {
    MAPCOMP_RETURN_IF_ERROR(CheckDeclared(c, sigs));
  }
  return Status::OK();
}

Status CheckConstraints(const ConstraintSet& cs,
                        const std::vector<const Signature*>& sigs) {
  for (const Constraint& c : cs) {
    MAPCOMP_RETURN_IF_ERROR(ValidateExpr(c.lhs));
    MAPCOMP_RETURN_IF_ERROR(ValidateExpr(c.rhs));
    if (c.lhs->arity() != c.rhs->arity()) {
      return Status::InvalidArgument("constraint sides have different arity: " +
                                     c.ToString());
    }
    MAPCOMP_RETURN_IF_ERROR(CheckDeclared(c.lhs, sigs));
    MAPCOMP_RETURN_IF_ERROR(CheckDeclared(c.rhs, sigs));
  }
  return Status::OK();
}

}  // namespace

std::string Mapping::ToString() const {
  std::string out = "input:  " + input.ToString() + "\n";
  out += "output: " + output.ToString() + "\n";
  out += ConstraintSetToString(constraints);
  return out;
}

Status Mapping::Validate() const {
  if (!Signature::Disjoint(input, output)) {
    return Status::InvalidArgument("mapping signatures are not disjoint");
  }
  return CheckConstraints(constraints, {&input, &output});
}

std::string Mapping::Fingerprint() const {
  std::string out;
  out += "input{" + input.Fingerprint() + "}\n";
  out += "output{" + output.Fingerprint() + "}\n";
  out += "constraints{\n" + ConstraintSetToString(constraints) + "}\n";
  return out;
}

std::string CompositionProblem::Fingerprint() const {
  std::string out;
  out += "sigma1{" + sigma1.Fingerprint() + "}\n";
  out += "sigma2{" + sigma2.Fingerprint() + "}\n";
  out += "sigma3{" + sigma3.Fingerprint() + "}\n";
  out += "sigma12{\n" + ConstraintSetToString(sigma12) + "}\n";
  out += "sigma23{\n" + ConstraintSetToString(sigma23) + "}\n";
  out += "order{";
  // Length-prefixed: symbol names are unrestricted, so a bare separator
  // could make distinct orders serialize identically.
  for (const std::string& s : elimination_order) {
    out += std::to_string(s.size()) + ":" + s + ",";
  }
  out += "}\n";
  return out;
}

Status CompositionProblem::Validate() const {
  if (!Signature::Disjoint(sigma1, sigma2) ||
      !Signature::Disjoint(sigma2, sigma3) ||
      !Signature::Disjoint(sigma1, sigma3)) {
    return Status::InvalidArgument("problem signatures are not disjoint");
  }
  MAPCOMP_RETURN_IF_ERROR(CheckConstraints(sigma12, {&sigma1, &sigma2}));
  MAPCOMP_RETURN_IF_ERROR(CheckConstraints(sigma23, {&sigma2, &sigma3}));
  for (const std::string& s : elimination_order) {
    if (!sigma2.Contains(s)) {
      return Status::InvalidArgument("elimination order mentions " + s +
                                     " which is not in sigma2");
    }
  }
  return Status::OK();
}

}  // namespace mapcomp
