#include "src/constraints/constraint.h"

#include "src/algebra/print.h"

namespace mapcomp {

std::string Constraint::ToString() const {
  const char* op = kind == ConstraintKind::kContainment ? " <= " : " = ";
  return ExprToString(lhs) + op + ExprToString(rhs);
}

bool ConstraintEquals(const Constraint& a, const Constraint& b) {
  return a.kind == b.kind && ExprEquals(a.lhs, b.lhs) &&
         ExprEquals(a.rhs, b.rhs);
}

int OperatorCount(const Constraint& c) {
  return OperatorCount(c.lhs) + OperatorCount(c.rhs);
}

int OperatorCount(const ConstraintSet& cs) {
  int n = 0;
  for (const Constraint& c : cs) n += OperatorCount(c);
  return n;
}

bool ConstraintContainsRelation(const Constraint& c, const std::string& name) {
  return ContainsRelation(c.lhs, name) || ContainsRelation(c.rhs, name);
}

std::set<std::string> CollectRelations(const ConstraintSet& cs) {
  std::set<std::string> out;
  for (const Constraint& c : cs) {
    CollectRelations(c.lhs, &out);
    CollectRelations(c.rhs, &out);
  }
  return out;
}

bool ContainsSkolem(const ConstraintSet& cs) {
  for (const Constraint& c : cs) {
    if (ContainsSkolem(c.lhs) || ContainsSkolem(c.rhs)) return true;
  }
  return false;
}

std::string ConstraintSetToString(const ConstraintSet& cs) {
  std::string out;
  for (const Constraint& c : cs) {
    out += c.ToString();
    out += ";\n";
  }
  return out;
}

}  // namespace mapcomp
