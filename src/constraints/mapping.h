#ifndef MAPCOMP_CONSTRAINTS_MAPPING_H_
#define MAPCOMP_CONSTRAINTS_MAPPING_H_

#include <string>
#include <vector>

#include "src/constraints/constraint.h"
#include "src/constraints/signature.h"

namespace mapcomp {

/// A mapping given by (σ_in, σ_out, Σ): the binary relation on instances
/// {<A,B> : (A,B) ⊨ Σ} (paper §2). The two signatures must be disjoint.
struct Mapping {
  Signature input;
  Signature output;
  ConstraintSet constraints;

  /// Inverse mapping: swaps the roles of input and output (the constraints
  /// are symmetric in the paper's semantics, so they carry over verbatim).
  Mapping Inverse() const { return Mapping{output, input, constraints}; }

  std::string ToString() const;

  /// Validates: disjoint signatures, constraint expressions well formed,
  /// every relation mentioned is declared with matching arity.
  Status Validate() const;

  /// Canonical serialization of everything composition reads from one chain
  /// step: both signatures (with keys, length-prefixed names) and the
  /// constraint set. Two mappings with equal fingerprints behave
  /// identically as a link of a composition chain (ChainComposer keys its
  /// prefix cache by an equivalent — but cheaper, hash-folded — per-link
  /// digest). Same parser-shaped-name caveat as
  /// CompositionProblem::Fingerprint().
  std::string Fingerprint() const;
};

/// A composition task: given m12 = (σ1,σ2,Σ12) and m23 = (σ2,σ3,Σ23), find
/// Σ13 over σ1 ∪ σ3 with Σ12 ∪ Σ23 ≡ Σ13 (paper §2). `elimination_order`
/// optionally overrides the σ2 insertion order used by COMPOSE.
struct CompositionProblem {
  std::string name;
  Signature sigma1, sigma2, sigma3;
  ConstraintSet sigma12, sigma23;
  std::vector<std::string> elimination_order;

  Status Validate() const;

  /// Canonical serialization of everything Compose() reads: the three
  /// signatures (with keys), both constraint sets, and the elimination
  /// order — but not `name`, which is display-only. Two problems with
  /// equal fingerprints are composed identically under equal options;
  /// ComposeService uses this as its result-cache key. Signature names and
  /// the order list are length-prefixed (collision-proof for arbitrary
  /// names); the constraint sets are rendered in the parser's text syntax,
  /// which is unambiguous for parser-shaped relation names — programmatic
  /// callers inventing names that contain expression syntax must key their
  /// own caches.
  std::string Fingerprint() const;
};

}  // namespace mapcomp

#endif  // MAPCOMP_CONSTRAINTS_MAPPING_H_
