#include "src/serve/protocol.h"

#include "src/serve/wire_format.h"

namespace mapcomp {
namespace serve {

void EncodeFrame(FrameType type, const std::string& body, std::string* out) {
  PutU32(out, static_cast<uint32_t>(kFrameHeaderBytes + body.size()));
  PutU8(out, kWireMagic0);
  PutU8(out, kWireMagic1);
  PutU8(out, kWireVersion);
  PutU8(out, static_cast<uint8_t>(type));
  out->append(body);
}

FrameDecoder::Next FrameDecoder::Poll(FrameType* type, std::string* body) {
  if (errored_) return Next::kError;
  if (buf_.size() - pos_ < 4) return Next::kNeedMore;
  const uint8_t* base = reinterpret_cast<const uint8_t*>(buf_.data()) + pos_;
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(base[i]) << (8 * i);
  }
  if (payload_len < kFrameHeaderBytes) {
    return Fail("frame shorter than its header");
  }
  if (payload_len > max_frame_bytes_) {
    return Fail("frame exceeds max_frame_bytes (" +
                std::to_string(payload_len) + " > " +
                std::to_string(max_frame_bytes_) + ")");
  }
  if (buf_.size() - pos_ < 4 + static_cast<size_t>(payload_len)) {
    return Next::kNeedMore;
  }
  const uint8_t* payload = base + 4;
  if (payload[0] != kWireMagic0 || payload[1] != kWireMagic1) {
    return Fail("bad frame magic");
  }
  if (payload[2] != kWireVersion) {
    return Fail("unsupported wire version " + std::to_string(payload[2]));
  }
  if (payload[3] != static_cast<uint8_t>(FrameType::kRequest) &&
      payload[3] != static_cast<uint8_t>(FrameType::kReply)) {
    return Fail("unknown frame type " + std::to_string(payload[3]));
  }
  *type = static_cast<FrameType>(payload[3]);
  body->assign(reinterpret_cast<const char*>(payload + kFrameHeaderBytes),
               payload_len - kFrameHeaderBytes);
  pos_ += 4 + static_cast<size_t>(payload_len);
  // Compact once the consumed prefix dominates, so a long-lived
  // connection's buffer stays proportional to its unread tail.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return Next::kFrame;
}

}  // namespace serve
}  // namespace mapcomp
