#include "src/serve/compose_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "src/common/cancel.h"
#include "src/common/fault.h"
#include "src/serve/wire_status.h"

namespace mapcomp {
namespace serve {

namespace {

/// A malformed body still starts with the request_id field (u64, first 8
/// bytes) whenever at least that much arrived — salvage it so the error
/// reply can name the conversation it refuses.
uint64_t SalvageRequestId(const std::string& body) {
  if (body.size() < 8) return 0;
  uint64_t id = 0;
  for (int i = 0; i < 8; ++i) {
    id |= static_cast<uint64_t>(static_cast<uint8_t>(body[i])) << (8 * i);
  }
  return id;
}

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

std::string ServerStats::ToString() const {
  std::string out = "compose-server: ";
  out += std::to_string(connections_accepted) + " conns, " +
         std::to_string(requests_parsed) + " requests, " +
         std::to_string(replies_sent) + " replies, " +
         std::to_string(cache_bypass) + " cache-bypassed, " +
         std::to_string(sheds) + " shed, " + std::to_string(timeouts) +
         " timed out, " + std::to_string(protocol_errors) +
         " protocol errors, queue watermark " +
         std::to_string(queue_depth_watermark) + ", " +
         std::to_string(bytes_read) + "B in / " +
         std::to_string(bytes_written) + "B out\n";
  return out;
}

ComposeServer::ComposeServer(runtime::ComposeService* service,
                             ServerOptions options)
    : service_(service), options_(std::move(options)) {}

ComposeServer::~ComposeServer() { Stop(); }

Status ComposeServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind(port " + std::to_string(options_.port) +
                            ") failed: " + strerror(errno));
  }
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);

  if (::pipe(wake_fds_) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("pipe() failed");
  }
  SetNonBlocking(wake_fds_[0]);
  SetNonBlocking(wake_fds_[1]);

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) {
    Stop();
    return Status::Internal("epoll_create1() failed");
  }
  epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fds_[0];
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fds_[0], &ev);

  running_.store(true);
  io_thread_ = std::thread([this] { IoLoop(); });
  int n = std::max(1, options_.dispatch_threads);
  dispatchers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    dispatchers_.emplace_back([this] { DispatchLoop(); });
  }
  return Status::OK();
}

void ComposeServer::Stop() {
  if (!running_.load()) {
    // Start may have failed half-way: release whatever exists.
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
    if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    listen_fd_ = wake_fds_[0] = wake_fds_[1] = epoll_fd_ = -1;
    return;
  }
  // Drain, then tear down. `running_` stays true through the drain so the
  // I/O thread keeps flushing the replies dispatchers stage.
  //
  // Phase 1 — answer what was admitted: draining_ stops new accepts and
  // admissions (fresh frames shed kOverloaded); dispatchers empty the
  // queue (ignoring the test gate) and exit.
  draining_.store(true);
  queue_cv_.notify_all();
  for (std::thread& t : dispatchers_) t.join();
  dispatchers_.clear();
  // A frame admitted concurrently with the dispatchers' final empty-check
  // could be stranded in the queue — shed it explicitly, so every
  // accepted request gets *some* reply.
  {
    std::deque<Admitted> stranded;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      stranded.swap(queue_);
    }
    for (const Admitted& a : stranded) {
      ServeReply reply = ServeReply::ErrorReply(
          a.request.request_id, WireStatus::kOverloaded, "server draining");
      std::string body;
      reply.SerializeTo(&body);
      std::string frame;
      EncodeFrame(FrameType::kReply, body, &frame);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.sheds;
      }
      PostReply(a.conn_id, std::move(frame));
    }
  }
  // Phase 2 — flush: wait for every staged reply byte to reach a socket,
  // bounded by the drain budget (a client that never reads must not wedge
  // Stop).
  auto flush_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(std::max(0, options_.drain_timeout_ms));
  while (pending_write_bytes_.load(std::memory_order_acquire) > 0 &&
         std::chrono::steady_clock::now() < flush_deadline) {
    char b = 'x';
    ssize_t ignored = ::write(wake_fds_[1], &b, 1);
    (void)ignored;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Phase 3 — tear down the I/O thread and every socket.
  running_.store(false);
  if (wake_fds_[1] >= 0) {
    char b = 'x';
    ssize_t ignored = ::write(wake_fds_[1], &b, 1);
    (void)ignored;
  }
  if (io_thread_.joinable()) io_thread_.join();
  for (auto& [fd, conn] : conns_) {
    (void)conn;
    ::close(fd);
  }
  conns_.clear();
  conn_fd_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  listen_fd_ = wake_fds_[0] = wake_fds_[1] = epoll_fd_ = -1;
}

ServerStats ComposeServer::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void ComposeServer::IoLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (running_.load()) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, /*timeout_ms=*/100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        // During drain, pending connects stay in the backlog and die with
        // the listen socket — the server owes replies only to requests it
        // actually accepted.
        if (!draining_.load(std::memory_order_relaxed)) AcceptNew();
        continue;
      }
      if (fd == wake_fds_[0]) {
        char buf[256];
        while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
        }
        std::vector<std::pair<uint64_t, std::string>> staged;
        {
          std::lock_guard<std::mutex> lock(inbox_mu_);
          staged.swap(reply_inbox_);
        }
        for (auto& [conn_id, frame] : staged) {
          auto it = conn_fd_.find(conn_id);
          if (it == conn_fd_.end()) {
            // Connection died meanwhile: its bytes will never be written.
            pending_write_bytes_.fetch_sub(
                static_cast<int64_t>(frame.size()), std::memory_order_acq_rel);
            continue;
          }
          Connection& conn = *conns_.at(it->second);
          conn.outbox.append(frame);
          {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.replies_sent;
          }
          UpdateEpollOut(conn);
        }
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // already closed this round
      Connection& conn = *it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(fd);
        continue;
      }
      if (events[i].events & EPOLLIN) HandleReadable(conn);
      // HandleReadable may close; re-check before writing.
      if (conns_.count(fd) && (events[i].events & EPOLLOUT)) {
        HandleWritable(*conns_.at(fd));
      }
    }
  }
}

void ComposeServer::AcceptNew() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN / EMFILE: retry on next event
    SetNonBlocking(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(options_.max_frame_bytes);
    conn->fd = fd;
    conn->id = ++next_conn_id_;
    conn_fd_[conn->id] = fd;
    epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conns_.emplace(fd, std::move(conn));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.connections_accepted;
  }
}

void ComposeServer::HandleReadable(Connection& conn) {
  char buf[65536];
  for (;;) {
    ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.bytes_read += static_cast<uint64_t>(n);
      }
      conn.decoder.Feed(reinterpret_cast<const uint8_t*>(buf),
                        static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {  // orderly EOF
      CloseConnection(conn.fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn.fd);
    return;
  }

  FrameType type;
  std::string body;
  for (;;) {
    FrameDecoder::Next next = conn.decoder.Poll(&type, &body);
    if (next == FrameDecoder::Next::kNeedMore) return;
    if (next == FrameDecoder::Next::kError) {
      // The stream is desynced and cannot be re-trusted: one best-effort
      // diagnostic, then close once it flushed.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
      }
      QueueReply(conn, ServeReply::ErrorReply(0, WireStatus::kInvalidArgument,
                                              conn.decoder.error()));
      conn.close_after_flush = true;
      UpdateEpollOut(conn);
      return;
    }
    if (type != FrameType::kRequest) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
      }
      QueueReply(conn,
                 ServeReply::ErrorReply(0, WireStatus::kInvalidArgument,
                                        "server expects request frames"));
      conn.close_after_flush = true;
      UpdateEpollOut(conn);
      return;
    }
    OnFrame(conn, body);
    if (!conns_.count(conn.fd)) return;  // OnFrame may have closed
  }
}

void ComposeServer::OnFrame(Connection& conn, const std::string& body) {
  Result<ServeRequest> parsed = ServeRequest::Parse(
      reinterpret_cast<const uint8_t*>(body.data()), body.size());
  if (!parsed.ok()) {
    // Well-framed but malformed: the length prefix kept the stream in
    // sync, so refuse this request and keep the connection usable.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.protocol_errors;
    }
    QueueReply(conn, ServeReply::ErrorReply(
                         SalvageRequestId(body),
                         WireStatusFrom(parsed.status().code()),
                         parsed.status().message()));
    UpdateEpollOut(conn);
    return;
  }
  ServeRequest request = std::move(*parsed);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests_parsed;
  }

  // A frame that lands during drain finds the dispatchers already gone:
  // shed it (the cache probe below would be fine, but one uniform answer
  // keeps drain behavior predictable).
  if (draining_.load(std::memory_order_relaxed)) {
    QueueReply(conn, ServeReply::ErrorReply(request.request_id,
                                            WireStatus::kOverloaded,
                                            "server draining"));
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.sheds;
    }
    UpdateEpollOut(conn);
    return;
  }

  // Cache-aware admission: a completed cached result is served straight
  // from the I/O thread — hot traffic never competes for queue slots.
  if (runtime::ComposeService::ResultPtr hit =
          service_->TryServeCached(request)) {
    QueueReply(conn,
               ServeReply::OkReply(request.request_id, *hit, /*hit=*/true));
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.cache_bypass;
    }
    UpdateEpollOut(conn);
    return;
  }

  uint64_t shed_id = 0;
  bool shed = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() >= options_.admission_capacity) {
      shed = true;
      shed_id = request.request_id;
    } else {
      Admitted a;
      a.conn_id = conn.id;
      a.request = std::move(request);
      a.enqueued = std::chrono::steady_clock::now();
      queue_.push_back(std::move(a));
      size_t depth = queue_.size();
      std::lock_guard<std::mutex> slock(stats_mu_);
      if (depth > stats_.queue_depth_watermark) {
        stats_.queue_depth_watermark = depth;
      }
    }
  }
  if (shed) {
    // Backpressure is a reply, not a dropped connection: the client learns
    // immediately and can back off.
    QueueReply(conn, ServeReply::ErrorReply(shed_id, WireStatus::kOverloaded,
                                            "admission queue full"));
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.sheds;
    }
    UpdateEpollOut(conn);
    return;
  }
  queue_cv_.notify_one();
}

void ComposeServer::QueueReply(Connection& conn, const ServeReply& reply) {
  std::string body;
  reply.SerializeTo(&body);
  std::string frame;
  EncodeFrame(FrameType::kReply, body, &frame);
  pending_write_bytes_.fetch_add(static_cast<int64_t>(frame.size()),
                                 std::memory_order_acq_rel);
  conn.outbox.append(frame);
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.replies_sent;
}

void ComposeServer::PostReply(uint64_t conn_id, std::string frame) {
  pending_write_bytes_.fetch_add(static_cast<int64_t>(frame.size()),
                                 std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    reply_inbox_.emplace_back(conn_id, std::move(frame));
  }
  char b = 'x';
  ssize_t ignored = ::write(wake_fds_[1], &b, 1);
  (void)ignored;
}

void ComposeServer::HandleWritable(Connection& conn) {
  while (conn.out_pos < conn.outbox.size()) {
    size_t len = conn.outbox.size() - conn.out_pos;
    // Fault point: kill the connection with a hard RST after exactly
    // Arg() reply bytes, so a reset lands mid-reply at a reproducible
    // offset — the client must surface a transport error, never a
    // half-parsed frame.
    using common::fault::FaultPoint;
    if (common::fault::Armed(FaultPoint::kSocketResetAfterNBytes)) {
      uint64_t budget = common::fault::Arg(FaultPoint::kSocketResetAfterNBytes);
      if (faulted_bytes_ >= budget) {
        (void)common::fault::Hit(FaultPoint::kSocketResetAfterNBytes);
        struct linger hard_reset;
        hard_reset.l_onoff = 1;
        hard_reset.l_linger = 0;
        ::setsockopt(conn.fd, SOL_SOCKET, SO_LINGER, &hard_reset,
                     sizeof(hard_reset));
        CloseConnection(conn.fd);
        return;
      }
      len = std::min<size_t>(len, budget - faulted_bytes_);
    }
    ssize_t n = ::write(conn.fd, conn.outbox.data() + conn.out_pos, len);
    if (n > 0) {
      conn.out_pos += static_cast<size_t>(n);
      if (common::fault::Armed(FaultPoint::kSocketResetAfterNBytes)) {
        faulted_bytes_ += static_cast<uint64_t>(n);
      }
      pending_write_bytes_.fetch_sub(n, std::memory_order_acq_rel);
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.bytes_written += static_cast<uint64_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn.fd);
    return;
  }
  conn.outbox.clear();
  conn.out_pos = 0;
  if (conn.close_after_flush) {
    CloseConnection(conn.fd);
    return;
  }
  UpdateEpollOut(conn);
}

void ComposeServer::UpdateEpollOut(Connection& conn) {
  epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  if (conn.out_pos < conn.outbox.size()) ev.events |= EPOLLOUT;
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void ComposeServer::CloseConnection(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  // Unwritten outbox bytes die with the socket.
  pending_write_bytes_.fetch_sub(
      static_cast<int64_t>(it->second->outbox.size() - it->second->out_pos),
      std::memory_order_acq_rel);
  conn_fd_.erase(it->second->id);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(it);
}

void ComposeServer::DispatchLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return draining_.load() || !queue_.empty();
      });
      if (queue_.empty() && draining_.load()) return;
    }
    // Test gate: hold admitted work unpopped so a test can observe a
    // provably full queue. Ignored once the server is draining.
    if (const auto& gate = options_.admission_gate) {
      while (!draining_.load() && !gate->load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    std::vector<Admitted> batch;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      while (!queue_.empty() && batch.size() < options_.batch_size) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (batch.empty()) {
      if (draining_.load()) return;
      continue;
    }

    // Submit the whole batch before the first Wait: independent problems
    // overlap in the compose pool even with one dispatcher thread. Every
    // entry runs under the earlier of its queue-aging bound and the
    // request's own end-to-end deadline; Submit short-circuits entries
    // that are already dead (stale work is refused, not amplified — and
    // costs a counter bump, not a composition).
    std::vector<runtime::ComposeService::Handle> handles;
    std::vector<common::Deadline> deadlines;
    handles.reserve(batch.size());
    deadlines.reserve(batch.size());
    for (const Admitted& a : batch) {
      common::Deadline deadline;
      if (options_.queue_timeout_ms > 0) {
        deadline = common::Deadline::At(
            a.enqueued + std::chrono::milliseconds(options_.queue_timeout_ms));
      }
      if (a.request.deadline_ms > 0) {
        deadline = common::Deadline::Min(
            deadline,
            common::Deadline::At(a.enqueued + std::chrono::milliseconds(
                                                  a.request.deadline_ms)));
      }
      deadlines.push_back(deadline);
      handles.push_back(service_->Submit(a.request, deadline));
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      const uint64_t id = batch[i].request.request_id;
      ServeReply reply;
      // A false WaitUntil means the budget ran out mid-composition:
      // withdraw interest (the computation is cancelled once nobody else
      // wants it) and answer kTimeout now — the lane moves on instead of
      // babysitting a zombie. A Cancel that loses the race against
      // completion cancelled nothing, so the landed result is served
      // instead; that keeps `ServiceStats::cancelled >= timeouts` exact.
      if (!handles[i].WaitUntil(deadlines[i]) && handles[i].Cancel()) {
        reply = ServeReply::ErrorReply(
            id, WireStatus::kTimeout,
            "deadline exceeded before composition finished");
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.timeouts;
      } else {
        const runtime::ServedOutcome& outcome = handles[i].Wait();
        if (outcome.ok()) {
          reply = ServeReply::OkReply(id, *outcome.shared(),
                                      handles[i].cache_hit());
        } else {
          reply = ServeReply::ErrorReply(
              id, WireStatusFrom(outcome.status().code()),
              outcome.status().message());
          if (outcome.status().IsInterrupt()) {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.timeouts;
          }
        }
      }
      std::string body;
      reply.SerializeTo(&body);
      std::string frame;
      EncodeFrame(FrameType::kReply, body, &frame);
      PostReply(batch[i].conn_id, std::move(frame));
    }
  }
}

}  // namespace serve
}  // namespace mapcomp
