#ifndef MAPCOMP_SERVE_SERVE_TYPES_H_
#define MAPCOMP_SERVE_SERVE_TYPES_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/compose/compose.h"
#include "src/runtime/served_result.h"
#include "src/serve/wire_status.h"

namespace mapcomp {
namespace serve {

/// One composition request, as a value. This is the single submission
/// currency of the serving path: runtime::ComposeService::Submit takes a
/// ServeRequest, and the wire protocol carries exactly this type's
/// canonical byte serialization — the in-process path and the network path
/// serve the same value, so they cannot drift apart.
///
/// Serialization (SerializeTo/Parse) is canonical and versioned at the
/// frame layer: parse(serialize(r)) reproduces r byte-identically
/// (serialize(parse(bytes)) == bytes), which the ASan-gated property tests
/// pin. Constraint sets travel in the parser's text syntax (the printer is
/// canonical — print∘parse is identity, pinned by roundtrip_fuzz_test);
/// signatures travel structurally (length-prefixed names, arities, keys).
/// The same parser-shaped-name caveat as CompositionProblem::Fingerprint()
/// applies: relation names that contain expression syntax don't survive
/// the text leg and are rejected at parse time.
struct ServeRequest {
  /// Client-chosen correlation id, echoed verbatim in the reply. Replies
  /// on one connection may arrive out of submission order (cache bypass
  /// overtakes queued work); this id is how a pipelining client matches
  /// them. Not part of any cache key.
  uint64_t request_id = 0;

  CompositionProblem problem;

  /// When false the service composes under its own default options.
  bool has_options = false;
  /// Read only when has_options. On the wire this carries the wire-safe
  /// subset: the eliminate switches and blowup budget, a keys signature by
  /// content, the order, simplify_output, max_rounds and exact_conflicts.
  /// Not serialized: elim_jobs (a server-side resource decision, excluded
  /// from ComposeOptions::Fingerprint() for the same reason),
  /// blowup_baseline_ops (internal to the wave scheduler), and a
  /// non-default registry (process-local identity; SerializeTo rejects it
  /// with kUnsupported).
  ComposeOptions options;

  /// Backing storage for options.eliminate.keys after Parse (the library
  /// type holds a borrowed pointer; a parsed request must own its keys).
  /// Shared, so copying a ServeRequest keeps the pointer valid.
  std::shared_ptr<const Signature> owned_keys;

  /// End-to-end budget in milliseconds, measured by the server from the
  /// request's arrival; 0 = unbounded. The server submits the composition
  /// under min(arrival + deadline_ms, queue-aging bound), so an expired
  /// budget answers kTimeout instead of burning pool time. On the wire
  /// this is an OPTIONAL trailing u32: a request without one serializes to
  /// the exact v1 bytes (old servers keep working, old byte-level golden
  /// frames stay valid), and a present-but-zero field is rejected at parse
  /// time so every value has exactly one canonical serialization. Not part
  /// of any cache key — it names urgency, not the computation.
  uint32_t deadline_ms = 0;

  static ServeRequest Of(CompositionProblem p, uint64_t id = 0) {
    ServeRequest out;
    out.request_id = id;
    out.problem = std::move(p);
    return out;
  }

  static ServeRequest WithOptions(CompositionProblem p, ComposeOptions opts,
                                  uint64_t id = 0) {
    ServeRequest out;
    out.request_id = id;
    out.problem = std::move(p);
    out.has_options = true;
    out.options = std::move(opts);
    return out;
  }

  /// Appends the canonical body bytes. Fails with kUnsupported when the
  /// carried options cannot cross a process boundary (non-default
  /// registry, preset blowup baseline) — in-process submission still works
  /// for such requests, they just cannot be shipped.
  Status SerializeTo(std::string* out) const;

  /// Parses one body. Hostile input is safe: every read is bounds-checked,
  /// structural invariants (bool bytes ∈ {0,1}, max_rounds ≥ 1, valid
  /// signatures, parseable constraint text, no trailing bytes) are
  /// enforced, and any violation is a clean kInvalidArgument.
  static Result<ServeRequest> Parse(const uint8_t* data, size_t len);
};

/// One composition reply, as a value — the wire image of a served
/// computation. `status` is the only field a client needs to branch on;
/// `result` is meaningful only when status == kOk.
struct ServeReply {
  uint64_t request_id = 0;
  WireStatus status = WireStatus::kOk;
  /// Human-readable error detail; empty on kOk. Diagnostic only — the
  /// classification a client acts on is `status` (no stringly-typed
  /// errors cross the wire).
  std::string message;
  /// True when the serving tier answered from the result cache (probe
  /// bypass or in-flight join) rather than a fresh composition.
  bool cache_hit = false;
  runtime::ServedResult result;

  static ServeReply OkReply(uint64_t id, runtime::ServedResult res,
                            bool hit) {
    ServeReply out;
    out.request_id = id;
    out.cache_hit = hit;
    out.result = std::move(res);
    return out;
  }

  static ServeReply ErrorReply(uint64_t id, WireStatus status,
                               std::string msg) {
    ServeReply out;
    out.request_id = id;
    out.status = status;
    out.message = std::move(msg);
    return out;
  }

  /// Appends the canonical body bytes (total — replies always serialize).
  void SerializeTo(std::string* out) const;

  /// Same hostile-input guarantees as ServeRequest::Parse.
  static Result<ServeReply> Parse(const uint8_t* data, size_t len);
};

}  // namespace serve
}  // namespace mapcomp

#endif  // MAPCOMP_SERVE_SERVE_TYPES_H_
