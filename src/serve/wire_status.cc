#include "src/serve/wire_status.h"

namespace mapcomp {
namespace serve {

WireStatus WireStatusFrom(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return WireStatus::kOk;
    case StatusCode::kInvalidArgument:
      return WireStatus::kInvalidArgument;
    case StatusCode::kNotFound:
      return WireStatus::kNotFound;
    case StatusCode::kUnsupported:
      return WireStatus::kUnsupported;
    case StatusCode::kFailedPrecondition:
      return WireStatus::kFailedPrecondition;
    case StatusCode::kResourceExhausted:
      return WireStatus::kResourceExhausted;
    case StatusCode::kInternal:
      return WireStatus::kInternal;
    case StatusCode::kOverloaded:
      return WireStatus::kOverloaded;
    case StatusCode::kDeadlineExceeded:
      return WireStatus::kTimeout;
    case StatusCode::kCancelled:
      return WireStatus::kCancelled;
  }
  return WireStatus::kInternal;
}

StatusCode StatusCodeFrom(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return StatusCode::kOk;
    case WireStatus::kInvalidArgument:
      return StatusCode::kInvalidArgument;
    case WireStatus::kNotFound:
      return StatusCode::kNotFound;
    case WireStatus::kUnsupported:
      return StatusCode::kUnsupported;
    case WireStatus::kFailedPrecondition:
      return StatusCode::kFailedPrecondition;
    case WireStatus::kOverloaded:
      return StatusCode::kOverloaded;
    case WireStatus::kTimeout:
      return StatusCode::kDeadlineExceeded;
    case WireStatus::kInternal:
      return StatusCode::kInternal;
    case WireStatus::kResourceExhausted:
      return StatusCode::kResourceExhausted;
    case WireStatus::kCancelled:
      return StatusCode::kCancelled;
  }
  return StatusCode::kInternal;
}

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "Ok";
    case WireStatus::kInvalidArgument:
      return "InvalidArgument";
    case WireStatus::kNotFound:
      return "NotFound";
    case WireStatus::kUnsupported:
      return "Unsupported";
    case WireStatus::kFailedPrecondition:
      return "FailedPrecondition";
    case WireStatus::kOverloaded:
      return "Overloaded";
    case WireStatus::kTimeout:
      return "Timeout";
    case WireStatus::kInternal:
      return "Internal";
    case WireStatus::kResourceExhausted:
      return "ResourceExhausted";
    case WireStatus::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

bool IsValidWireStatus(uint8_t raw) {
  return raw <= static_cast<uint8_t>(WireStatus::kCancelled);
}

}  // namespace serve
}  // namespace mapcomp
