#ifndef MAPCOMP_SERVE_COMPOSE_SERVER_H_
#define MAPCOMP_SERVE_COMPOSE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/runtime/compose_service.h"
#include "src/serve/protocol.h"
#include "src/serve/serve_types.h"

namespace mapcomp {
namespace serve {

struct ServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back via
  /// port() after Start).
  int port = 0;
  int listen_backlog = 128;
  /// Per-connection frame size bound (both directions).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Bounded admission queue: parsed requests waiting for a dispatcher.
  /// When full, new requests are shed with an immediate kOverloaded reply —
  /// never silently dropped, never queued unboundedly.
  size_t admission_capacity = 256;
  /// Threads that pop admitted requests, Submit them to the service, and
  /// Wait for results. They are service *clients* (allowed to block), so
  /// they must stay distinct from the GlobalPool that computes.
  int dispatch_threads = 2;
  /// Max requests one dispatcher pops per round; the whole batch is
  /// Submitted before the first Wait, so independent problems overlap in
  /// the pool even with one dispatcher.
  size_t batch_size = 16;
  /// When > 0, a request that waited in the admission queue longer than
  /// this is answered kTimeout instead of being composed — stale work is
  /// refused, not amplified. The bound keeps following admitted work: a
  /// request whose composition is still running when the bound passes is
  /// cancelled (Handle::Cancel) and answered kTimeout immediately — the
  /// dispatcher lane is freed and the abandoned computation unwinds
  /// cooperatively instead of running as a zombie.
  int queue_timeout_ms = 0;
  /// Stop() drain budget: after dispatchers finish answering admitted
  /// work, the I/O thread keeps flushing staged reply bytes for at most
  /// this long before the sockets are torn down. Bounds a stop against a
  /// client that never reads.
  int drain_timeout_ms = 2000;
  /// Test hook: when set, dispatchers refuse to pop while *admission_gate
  /// is false. Lets a test hold the queue provably full (overload
  /// behavior) without racing against dispatch speed.
  std::shared_ptr<std::atomic<bool>> admission_gate;
};

/// Point-in-time counters of a ComposeServer.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t requests_parsed = 0;   ///< well-formed ServeRequests decoded
  uint64_t replies_sent = 0;      ///< reply frames fully written
  uint64_t sheds = 0;             ///< kOverloaded replies (queue full)
  uint64_t timeouts = 0;          ///< kTimeout replies (aged out in the
                                  ///< queue or budget exhausted
                                  ///< mid-composition)
  uint64_t cache_bypass = 0;      ///< requests served by the admission
                                  ///< probe without entering the queue
  uint64_t protocol_errors = 0;   ///< framing/parse violations
  uint64_t queue_depth_watermark = 0;  ///< max admission-queue depth seen
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  std::string ToString() const;
};

/// Network front end for a runtime::ComposeService: one epoll I/O thread
/// owns every socket (accept, read, frame-decode, reply-write); parsed
/// requests are either answered straight from the service's result cache
/// (admission probe — hot traffic never queues) or admitted into a bounded
/// queue drained by dispatcher threads that batch Submits into the
/// service. Backpressure is explicit: a full queue sheds with an immediate
/// kOverloaded reply.
///
/// Framing errors (bad magic/version/length) poison the stream and close
/// the connection after a best-effort error reply; a well-framed but
/// malformed body is answered kInvalidArgument and the connection stays
/// usable — the length prefix keeps the stream in sync.
class ComposeServer {
 public:
  ComposeServer(runtime::ComposeService* service, ServerOptions options);
  ~ComposeServer();

  ComposeServer(const ComposeServer&) = delete;
  ComposeServer& operator=(const ComposeServer&) = delete;

  /// Binds, listens, and starts the I/O + dispatcher threads.
  Status Start();
  /// Stops accepting, joins all threads, closes every connection. Safe to
  /// call twice; called by the destructor.
  void Stop();

  /// The bound port (after Start); useful with options.port == 0.
  int port() const { return port_; }

  ServerStats Stats() const;

 private:
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    FrameDecoder decoder;
    std::string outbox;
    size_t out_pos = 0;
    bool close_after_flush = false;
    explicit Connection(size_t max_frame) : decoder(max_frame) {}
  };

  struct Admitted {
    uint64_t conn_id = 0;
    ServeRequest request;
    std::chrono::steady_clock::time_point enqueued;
  };

  void IoLoop();
  void DispatchLoop();
  void AcceptNew();
  void HandleReadable(Connection& conn);
  void HandleWritable(Connection& conn);
  void OnFrame(Connection& conn, const std::string& body);
  void QueueReply(Connection& conn, const ServeReply& reply);
  /// Cross-thread reply path: dispatchers stage bytes here and poke the
  /// wake pipe; the I/O thread moves them into the connection outbox.
  void PostReply(uint64_t conn_id, std::string frame);
  void CloseConnection(int fd);
  void UpdateEpollOut(Connection& conn);

  runtime::ComposeService* const service_;
  const ServerOptions options_;
  int port_ = 0;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // [0] read end (epoll), [1] write end

  std::atomic<bool> running_{false};
  /// Drain phase of Stop(): no new connections or admissions (fresh frames
  /// are shed kOverloaded), while dispatchers answer what was already
  /// admitted and the I/O thread keeps flushing replies. `running_` stays
  /// true until the drain completes, so no accepted request is silently
  /// dropped between admission and reply.
  std::atomic<bool> draining_{false};
  /// Reply bytes staged (inbox + outboxes) but not yet written to a
  /// socket; Stop() polls this to zero (or the drain deadline) before
  /// closing.
  std::atomic<int64_t> pending_write_bytes_{0};
  /// Reply bytes written while the kSocketResetAfterNBytes fault is armed
  /// (I/O-thread only).
  uint64_t faulted_bytes_ = 0;
  std::thread io_thread_;
  std::vector<std::thread> dispatchers_;

  // I/O-thread-only state (no lock needed).
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  std::unordered_map<uint64_t, int> conn_fd_;
  uint64_t next_conn_id_ = 0;

  // Admission queue (I/O thread pushes, dispatchers pop).
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Admitted> queue_;

  // Replies staged by dispatchers for the I/O thread.
  std::mutex inbox_mu_;
  std::vector<std::pair<uint64_t, std::string>> reply_inbox_;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace serve
}  // namespace mapcomp

#endif  // MAPCOMP_SERVE_COMPOSE_SERVER_H_
