#ifndef MAPCOMP_SERVE_PROTOCOL_H_
#define MAPCOMP_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace mapcomp {
namespace serve {

/// Frame layout (little-endian):
///
///   u32 payload_len               -- bytes after this field, >= 4
///   u8  magic0 = 'M'
///   u8  magic1 = 'C'
///   u8  version = kWireVersion
///   u8  type    = FrameType
///   [payload_len - 4 bytes]       -- ServeRequest / ServeReply body
///
/// The length prefix is what makes the stream recoverable without
/// lookahead; the magic+version header is what makes a mis-speaking peer
/// (wrong port, wrong protocol, wrong build) a clean one-frame error
/// instead of a silent desync. payload_len is bounded by the decoder's
/// max_frame_bytes — an oversized claim is rejected *before* any
/// allocation, so a 4-byte header cannot demand a 4 GiB buffer.

inline constexpr uint8_t kWireMagic0 = 'M';
inline constexpr uint8_t kWireMagic1 = 'C';
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 4;  // magic+version+type
inline constexpr size_t kDefaultMaxFrameBytes = 16u << 20;

enum class FrameType : uint8_t {
  kRequest = 1,
  kReply = 2,
};

/// Appends one complete frame (length prefix + header + body) to `out`.
void EncodeFrame(FrameType type, const std::string& body, std::string* out);

/// Incremental stream decoder: feed whatever bytes arrived, poll for
/// complete frames. Tolerates arbitrary fragmentation (byte-by-byte feeds
/// included). On any protocol violation — oversized length claim, bad
/// magic, unknown version or frame type, undersized payload — it latches
/// into an error state and stays there: a desynced stream cannot be
/// re-trusted, the connection must be closed.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(const uint8_t* data, size_t len) {
    buf_.append(reinterpret_cast<const char*>(data), len);
  }
  void Feed(const std::string& data) {
    buf_.append(data);
  }

  enum class Next {
    kFrame,     ///< *type/*body hold one complete frame
    kNeedMore,  ///< no complete frame buffered yet
    kError,     ///< protocol violation; error() says what
  };

  Next Poll(FrameType* type, std::string* body);

  bool errored() const { return errored_; }
  const std::string& error() const { return error_; }

  /// Bytes buffered but not yet consumed as frames.
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  Next Fail(const std::string& what) {
    errored_ = true;
    error_ = what;
    return Next::kError;
  }

  const size_t max_frame_bytes_;
  std::string buf_;
  size_t pos_ = 0;
  bool errored_ = false;
  std::string error_;
};

}  // namespace serve
}  // namespace mapcomp

#endif  // MAPCOMP_SERVE_PROTOCOL_H_
