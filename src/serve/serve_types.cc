#include "src/serve/serve_types.h"

#include <utility>

#include "src/parser/parser.h"
#include "src/serve/wire_format.h"

namespace mapcomp {
namespace serve {

namespace {

void PutSignature(std::string* out, const Signature& sig) {
  PutU32(out, static_cast<uint32_t>(sig.names().size()));
  for (const std::string& name : sig.names()) {
    PutString(out, name);
    PutU32(out, static_cast<uint32_t>(sig.ArityOf(name)));
    std::optional<std::vector<int>> key = sig.KeyOf(name);
    PutU8(out, key.has_value() ? 1 : 0);
    if (key.has_value()) {
      PutU32(out, static_cast<uint32_t>(key->size()));
      for (int pos : *key) PutU32(out, static_cast<uint32_t>(pos));
    }
  }
}

bool ReadSignature(WireReader* r, Signature* sig) {
  uint32_t count = 0;
  if (!r->ReadU32(&count)) return false;
  // Each relation costs at least name-prefix + arity + key flag = 9 bytes.
  if (static_cast<size_t>(count) > r->remaining() / 9 + 1) return false;
  *sig = Signature();
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    uint32_t arity = 0;
    uint8_t has_key = 0;
    if (!r->ReadString(&name) || !r->ReadU32(&arity) || !r->ReadU8(&has_key)) {
      return false;
    }
    if (arity > (1u << 16) || has_key > 1) return false;
    if (!sig->AddRelation(name, static_cast<int>(arity)).ok()) return false;
    if (has_key) {
      uint32_t n = 0;
      if (!r->ReadU32(&n)) return false;
      if (static_cast<size_t>(n) > r->remaining() / 4 + 1) return false;
      std::vector<int> key;
      key.reserve(n);
      for (uint32_t j = 0; j < n; ++j) {
        uint32_t pos = 0;
        if (!r->ReadU32(&pos)) return false;
        key.push_back(static_cast<int>(pos));
      }
      if (!sig->SetKey(name, std::move(key)).ok()) return false;
    }
  }
  return true;
}

bool ReadBool(WireReader* r, bool* v) {
  uint8_t b = 0;
  if (!r->ReadU8(&b) || b > 1) return false;
  *v = (b == 1);
  return true;
}

Status Invalid(const char* what) {
  return Status::InvalidArgument(std::string("wire parse: ") + what);
}

}  // namespace

Status ServeRequest::SerializeTo(std::string* out) const {
  if (has_options) {
    if (options.eliminate.registry != &op::Registry::Default()) {
      return Status::Unsupported(
          "a non-default operator registry is process-local and cannot "
          "cross the wire");
    }
    if (options.eliminate.blowup_baseline_ops != 0) {
      return Status::Unsupported(
          "blowup_baseline_ops is internal to the wave scheduler and not "
          "a wire option");
    }
  }
  PutU64(out, request_id);
  PutU8(out, has_options ? 1 : 0);
  if (has_options) {
    PutU8(out, options.eliminate.enable_unfold ? 1 : 0);
    PutU8(out, options.eliminate.enable_left_compose ? 1 : 0);
    PutU8(out, options.eliminate.enable_right_compose ? 1 : 0);
    PutU32(out, static_cast<uint32_t>(options.eliminate.max_blowup_factor));
    PutU8(out, options.eliminate.keys != nullptr ? 1 : 0);
    if (options.eliminate.keys != nullptr) {
      PutSignature(out, *options.eliminate.keys);
    }
    PutStringList(out, options.order);
    PutU8(out, options.simplify_output ? 1 : 0);
    PutU32(out, static_cast<uint32_t>(options.max_rounds));
    PutU8(out, options.exact_conflicts ? 1 : 0);
  }
  PutString(out, problem.name);
  PutSignature(out, problem.sigma1);
  PutSignature(out, problem.sigma2);
  PutSignature(out, problem.sigma3);
  PutString(out, ConstraintSetToString(problem.sigma12));
  PutString(out, ConstraintSetToString(problem.sigma23));
  PutStringList(out, problem.elimination_order);
  // Optional trailing field (v2): written only when set, so deadline-less
  // requests keep their v1 byte image.
  if (deadline_ms > 0) PutU32(out, deadline_ms);
  return Status::OK();
}

Result<ServeRequest> ServeRequest::Parse(const uint8_t* data, size_t len) {
  WireReader r(data, len);
  ServeRequest out;
  if (!r.ReadU64(&out.request_id)) return Invalid("truncated request id");
  if (!ReadBool(&r, &out.has_options)) return Invalid("bad options flag");
  if (out.has_options) {
    if (!ReadBool(&r, &out.options.eliminate.enable_unfold) ||
        !ReadBool(&r, &out.options.eliminate.enable_left_compose) ||
        !ReadBool(&r, &out.options.eliminate.enable_right_compose)) {
      return Invalid("bad eliminate switches");
    }
    uint32_t blowup = 0;
    if (!r.ReadU32(&blowup) || blowup == 0 || blowup > (1u << 20)) {
      return Invalid("bad blowup factor");
    }
    out.options.eliminate.max_blowup_factor = static_cast<int>(blowup);
    uint8_t has_keys = 0;
    if (!r.ReadU8(&has_keys) || has_keys > 1) return Invalid("bad keys flag");
    if (has_keys) {
      Signature keys;
      if (!ReadSignature(&r, &keys)) return Invalid("bad keys signature");
      out.owned_keys = std::make_shared<const Signature>(std::move(keys));
      out.options.eliminate.keys = out.owned_keys.get();
    }
    if (!r.ReadStringList(&out.options.order)) {
      return Invalid("bad elimination order option");
    }
    if (!ReadBool(&r, &out.options.simplify_output)) {
      return Invalid("bad simplify flag");
    }
    uint32_t rounds = 0;
    if (!r.ReadU32(&rounds) || rounds == 0 || rounds > (1u << 16)) {
      return Invalid("bad max_rounds");
    }
    out.options.max_rounds = static_cast<int>(rounds);
    if (!ReadBool(&r, &out.options.exact_conflicts)) {
      return Invalid("bad exact_conflicts flag");
    }
  }
  if (!r.ReadString(&out.problem.name)) return Invalid("bad problem name");
  if (!ReadSignature(&r, &out.problem.sigma1) ||
      !ReadSignature(&r, &out.problem.sigma2) ||
      !ReadSignature(&r, &out.problem.sigma3)) {
    return Invalid("bad signature");
  }
  std::string sigma12_text, sigma23_text;
  if (!r.ReadString(&sigma12_text) || !r.ReadString(&sigma23_text)) {
    return Invalid("truncated constraint text");
  }
  Result<Signature> sig12 =
      Signature::Merge(out.problem.sigma1, out.problem.sigma2);
  if (!sig12.ok()) return Invalid("sigma1/sigma2 merge conflict");
  Result<Signature> sig23 =
      Signature::Merge(out.problem.sigma2, out.problem.sigma3);
  if (!sig23.ok()) return Invalid("sigma2/sigma3 merge conflict");
  // The parser rejects empty text, but an empty Σ is a legal (vacuous)
  // constraint set and must round-trip.
  Parser parser;
  if (!sigma12_text.empty()) {
    Result<ConstraintSet> cs12 = parser.ParseConstraints(sigma12_text, *sig12);
    if (!cs12.ok()) {
      return Invalid("unparseable sigma12 constraints");
    }
    out.problem.sigma12 = std::move(*cs12);
  }
  if (!sigma23_text.empty()) {
    Result<ConstraintSet> cs23 = parser.ParseConstraints(sigma23_text, *sig23);
    if (!cs23.ok()) {
      return Invalid("unparseable sigma23 constraints");
    }
    out.problem.sigma23 = std::move(*cs23);
  }
  if (!r.ReadStringList(&out.problem.elimination_order)) {
    return Invalid("bad elimination order");
  }
  if (!r.AtEnd()) {
    // Optional trailing deadline (v2). Zero must travel as absence — one
    // canonical byte image per value — so a present zero is hostile input.
    if (!r.ReadU32(&out.deadline_ms) || out.deadline_ms == 0) {
      return Invalid("bad deadline field");
    }
    if (!r.AtEnd()) return Invalid("trailing bytes after request");
  }
  return out;
}

void ServeReply::SerializeTo(std::string* out) const {
  PutU64(out, request_id);
  PutU8(out, static_cast<uint8_t>(status));
  PutString(out, message);
  PutU8(out, cache_hit ? 1 : 0);
  if (status != WireStatus::kOk) return;
  PutSignature(out, result.sigma);
  PutStringList(out, result.residual_sigma2);
  PutString(out, ConstraintSetToString(result.constraints));
  PutStringList(out, result.warnings);
  PutU32(out, static_cast<uint32_t>(result.eliminated_count));
  PutU32(out, static_cast<uint32_t>(result.total_count));
  PutString(out, result.fingerprint);
}

Result<ServeReply> ServeReply::Parse(const uint8_t* data, size_t len) {
  WireReader r(data, len);
  ServeReply out;
  if (!r.ReadU64(&out.request_id)) return Invalid("truncated reply id");
  uint8_t raw_status = 0;
  if (!r.ReadU8(&raw_status) || !IsValidWireStatus(raw_status)) {
    return Invalid("unknown wire status");
  }
  out.status = static_cast<WireStatus>(raw_status);
  if (!r.ReadString(&out.message)) return Invalid("bad reply message");
  if (!ReadBool(&r, &out.cache_hit)) return Invalid("bad cache-hit flag");
  if (out.status != WireStatus::kOk) {
    if (!r.AtEnd()) return Invalid("trailing bytes after error reply");
    return out;
  }
  if (!ReadSignature(&r, &out.result.sigma)) return Invalid("bad sigma");
  if (!r.ReadStringList(&out.result.residual_sigma2)) {
    return Invalid("bad residual list");
  }
  std::string constraints_text;
  if (!r.ReadString(&constraints_text)) {
    return Invalid("truncated constraint text");
  }
  if (!constraints_text.empty()) {
    Parser parser;
    Result<ConstraintSet> cs =
        parser.ParseConstraints(constraints_text, out.result.sigma);
    if (!cs.ok()) return Invalid("unparseable result constraints");
    out.result.constraints = std::move(*cs);
  }
  if (!r.ReadStringList(&out.result.warnings)) return Invalid("bad warnings");
  uint32_t eliminated = 0, total = 0;
  if (!r.ReadU32(&eliminated) || !r.ReadU32(&total)) {
    return Invalid("truncated counters");
  }
  out.result.eliminated_count = static_cast<int>(eliminated);
  out.result.total_count = static_cast<int>(total);
  if (!r.ReadString(&out.result.fingerprint)) return Invalid("bad fingerprint");
  if (!r.AtEnd()) return Invalid("trailing bytes after reply");
  return out;
}

}  // namespace serve
}  // namespace mapcomp
