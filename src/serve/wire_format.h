#ifndef MAPCOMP_SERVE_WIRE_FORMAT_H_
#define MAPCOMP_SERVE_WIRE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mapcomp {
namespace serve {

/// Byte-level primitives of the wire format. Everything is little-endian,
/// strings and lists are length-prefixed (u32 count). Writing is
/// append-only into a std::string; reading is bounds-checked: every Read*
/// returns false instead of touching a byte past `len`, so a truncated or
/// hostile payload can never cause an out-of-bounds read (the ASan-gated
/// property tests feed these readers arbitrary garbage).

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

inline void PutStringList(std::string* out,
                          const std::vector<std::string>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (const std::string& s : v) PutString(out, s);
}

/// Bounds-checked sequential reader over one payload. Never throws, never
/// reads past the end; a failed read leaves the cursor unspecified and the
/// caller must abandon the payload.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  size_t remaining() const { return len_ - pos_; }
  bool AtEnd() const { return pos_ == len_; }

  bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = data_[pos_++];
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)])
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (remaining() < 8) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }

  bool ReadString(std::string* s) {
    uint32_t n = 0;
    if (!ReadU32(&n)) return false;
    if (remaining() < n) return false;
    s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  /// List length guarded against allocation bombs: a 4-byte payload can
  /// claim 2^32 elements, so reserve only what the remaining bytes could
  /// possibly hold (each element costs at least its 4-byte length prefix).
  bool ReadStringList(std::vector<std::string>* v) {
    uint32_t n = 0;
    if (!ReadU32(&n)) return false;
    if (static_cast<size_t>(n) > remaining() / 4 + 1) return false;
    v->clear();
    v->reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      std::string s;
      if (!ReadString(&s)) return false;
      v->push_back(std::move(s));
    }
    return true;
  }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace serve
}  // namespace mapcomp

#endif  // MAPCOMP_SERVE_WIRE_FORMAT_H_
