#include "src/serve/compose_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

namespace mapcomp {
namespace serve {

ComposeClient::~ComposeClient() { Close(); }

void ComposeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<ComposeClient>> ComposeClient::Connect(
    const std::string& host, int port, int retry_ms) {
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string ip = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparseable host address: " + host);
  }

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(retry_ms);
  for (;;) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::Internal("socket() failed");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return std::unique_ptr<ComposeClient>(
          new ComposeClient(fd, kDefaultMaxFrameBytes));
    }
    int err = errno;
    ::close(fd);
    if (err != ECONNREFUSED ||
        std::chrono::steady_clock::now() >= deadline) {
      return Status::Internal("connect(" + ip + ":" + std::to_string(port) +
                              ") failed: " + strerror(err));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

Status ComposeClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("write failed: ") +
                              strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ComposeClient::Send(const ServeRequest& request) {
  std::string body;
  MAPCOMP_RETURN_IF_ERROR(request.SerializeTo(&body));
  std::string frame;
  EncodeFrame(FrameType::kRequest, body, &frame);
  return SendRaw(frame);
}

Result<ServeReply> ComposeClient::Recv() {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  FrameType type;
  std::string body;
  for (;;) {
    FrameDecoder::Next next = decoder_.Poll(&type, &body);
    if (next == FrameDecoder::Next::kError) {
      return Status::Internal("reply stream desynced: " + decoder_.error());
    }
    if (next == FrameDecoder::Next::kFrame) {
      if (type != FrameType::kReply) {
        return Status::Internal("unexpected non-reply frame from server");
      }
      return ServeReply::Parse(reinterpret_cast<const uint8_t*>(body.data()),
                               body.size());
    }
    char buf[65536];
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n == 0) {
      return Status::Internal("server closed the connection mid-reply");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("read failed: ") +
                              strerror(errno));
    }
    decoder_.Feed(reinterpret_cast<const uint8_t*>(buf),
                  static_cast<size_t>(n));
  }
}

Result<ServeReply> ComposeClient::Call(const ServeRequest& request) {
  MAPCOMP_RETURN_IF_ERROR(Send(request));
  return Recv();
}

}  // namespace serve
}  // namespace mapcomp
