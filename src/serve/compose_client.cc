#include "src/serve/compose_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

namespace mapcomp {
namespace serve {

namespace {

/// Deterministic jitter stream (xorshift64*): cheap, seedable, and good
/// enough to decorrelate backoff — this is pacing, not cryptography.
uint64_t NextJitter(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545F4914F6CDD1Dull;
}

/// 50–100% of `nominal_ms`, by jitter.
int64_t JitteredMs(int64_t nominal_ms, uint64_t* state) {
  if (nominal_ms <= 1) return nominal_ms;
  int64_t half = nominal_ms / 2;
  return half + static_cast<int64_t>(NextJitter(state) %
                                     static_cast<uint64_t>(nominal_ms - half + 1));
}

uint64_t ClockSeed() {
  return static_cast<uint64_t>(
             std::chrono::steady_clock::now().time_since_epoch().count()) |
         1;  // xorshift must not start at 0
}

}  // namespace

ComposeClient::~ComposeClient() { Close(); }

void ComposeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<ComposeClient>> ComposeClient::Connect(
    const std::string& host, int port, int retry_ms) {
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string ip = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparseable host address: " + host);
  }

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(retry_ms);
  uint64_t jitter = ClockSeed();
  int64_t backoff_ms = 2;
  for (;;) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::Internal("socket() failed");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return std::unique_ptr<ComposeClient>(
          new ComposeClient(fd, kDefaultMaxFrameBytes));
    }
    int err = errno;
    ::close(fd);
    if (err != ECONNREFUSED ||
        std::chrono::steady_clock::now() >= deadline) {
      return Status::Internal("connect(" + ip + ":" + std::to_string(port) +
                              ") failed: " + strerror(err));
    }
    // Jittered exponential backoff, clamped to the remaining budget: a
    // fleet of clients racing one slow server start spreads out instead
    // of knocking in unison every 10ms.
    int64_t remaining_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now())
            .count();
    int64_t sleep_ms =
        std::min(JitteredMs(backoff_ms, &jitter), std::max<int64_t>(
                                                      remaining_ms, 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff_ms = std::min<int64_t>(backoff_ms * 2, 200);
  }
}

Status ComposeClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("write failed: ") +
                              strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ComposeClient::Send(const ServeRequest& request) {
  std::string body;
  MAPCOMP_RETURN_IF_ERROR(request.SerializeTo(&body));
  std::string frame;
  EncodeFrame(FrameType::kRequest, body, &frame);
  return SendRaw(frame);
}

Result<ServeReply> ComposeClient::Recv() {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  FrameType type;
  std::string body;
  for (;;) {
    FrameDecoder::Next next = decoder_.Poll(&type, &body);
    if (next == FrameDecoder::Next::kError) {
      return Status::Internal("reply stream desynced: " + decoder_.error());
    }
    if (next == FrameDecoder::Next::kFrame) {
      if (type != FrameType::kReply) {
        return Status::Internal("unexpected non-reply frame from server");
      }
      return ServeReply::Parse(reinterpret_cast<const uint8_t*>(body.data()),
                               body.size());
    }
    char buf[65536];
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n == 0) {
      return Status::Internal("server closed the connection mid-reply");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("read failed: ") +
                              strerror(errno));
    }
    decoder_.Feed(reinterpret_cast<const uint8_t*>(buf),
                  static_cast<size_t>(n));
  }
}

Result<ServeReply> ComposeClient::Call(const ServeRequest& request) {
  MAPCOMP_RETURN_IF_ERROR(Send(request));
  return Recv();
}

Result<ServeReply> ComposeClient::CallWithRetry(const ServeRequest& request,
                                                const RetryPolicy& policy) {
  uint64_t jitter =
      policy.jitter_seed != 0 ? policy.jitter_seed : ClockSeed();
  int64_t slept_ms = 0;
  int64_t backoff_ms = std::max(1, policy.initial_backoff_ms);
  Result<ServeReply> reply = Call(request);
  for (int attempt = 1; attempt < policy.max_attempts; ++attempt) {
    // Only a shed reply is worth a resend; everything else (success,
    // deterministic refusals, spent deadlines, transport faults) goes
    // straight back to the caller.
    if (!reply.ok() || reply->status != WireStatus::kOverloaded) return reply;
    int64_t sleep_ms = JitteredMs(backoff_ms, &jitter);
    if (slept_ms + sleep_ms > policy.total_budget_ms) return reply;
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    slept_ms += sleep_ms;
    backoff_ms = std::min<int64_t>(backoff_ms * 2,
                                   std::max(1, policy.max_backoff_ms));
    reply = Call(request);
  }
  return reply;
}

}  // namespace serve
}  // namespace mapcomp
