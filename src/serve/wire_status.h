#ifndef MAPCOMP_SERVE_WIRE_STATUS_H_
#define MAPCOMP_SERVE_WIRE_STATUS_H_

#include <cstdint>

#include "src/common/status.h"

namespace mapcomp {
namespace serve {

/// The thin status enum that crosses the wire — one byte, no strings
/// required to classify an outcome (a human-readable message may ride
/// along in the reply, but clients branch on this code alone). The
/// numeric values are part of the protocol: they are pinned by
/// tests/serve_protocol_test.cc and must never be renumbered, only
/// appended to.
///
/// Serving-tier verdict semantics: kOverloaded is the bounded admission
/// queue shedding under pressure (retry later — the request was never
/// admitted), kTimeout is a request whose deadline fired after admission
/// (it aged out of the queue, or its composition was cancelled mid-flight
/// and wound down at the next cancellation point). The distinction is
/// load-bearing for retry policy: kOverloaded is safe to retry, kTimeout
/// means the deadline budget is spent.
enum class WireStatus : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kUnsupported = 3,
  kFailedPrecondition = 4,
  kOverloaded = 5,
  kTimeout = 6,
  kInternal = 7,
  // Appended with the deadline/cancellation spine: kResourceExhausted used
  // to collapse onto kOverloaded (and the inverse collapsed kOverloaded and
  // kTimeout back onto kResourceExhausted), which made a client-side retry
  // policy impossible. Each code now has its own wire image.
  kResourceExhausted = 8,
  kCancelled = 9,
};

/// Total, pinned mapping from the library's StatusCode: every StatusCode
/// has exactly one wire image (kDeadlineExceeded → kTimeout; anything
/// unknown degrades to kInternal, never to a bogus success). The mapping
/// is pinned code-by-code in tests/serve_protocol_test.cc.
WireStatus WireStatusFrom(StatusCode code);

/// Client-side inverse: reconstructs the StatusCode so wire errors
/// re-enter the library's Status/Result plumbing. Since the v1 append of
/// kResourceExhausted/kCancelled the round trip
/// StatusCode→WireStatus→StatusCode is identity for every code
/// (kTimeout ↔ kDeadlineExceeded is the one renaming across the wire).
StatusCode StatusCodeFrom(WireStatus status);

/// Stable display name ("Ok", "Overloaded", ...).
const char* WireStatusName(WireStatus status);

/// True for a byte that decodes to a known WireStatus value — a frame
/// carrying anything else is a protocol error.
bool IsValidWireStatus(uint8_t raw);

}  // namespace serve
}  // namespace mapcomp

#endif  // MAPCOMP_SERVE_WIRE_STATUS_H_
