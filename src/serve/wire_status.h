#ifndef MAPCOMP_SERVE_WIRE_STATUS_H_
#define MAPCOMP_SERVE_WIRE_STATUS_H_

#include <cstdint>

#include "src/common/status.h"

namespace mapcomp {
namespace serve {

/// The thin status enum that crosses the wire — one byte, no strings
/// required to classify an outcome (a human-readable message may ride
/// along in the reply, but clients branch on this code alone). The
/// numeric values are part of the protocol: they are pinned by
/// tests/serve_protocol_test.cc and must never be renumbered, only
/// appended to.
///
/// Two codes have no StatusCode origin because they are serving-tier
/// verdicts, not library errors: kOverloaded is the bounded admission
/// queue shedding under pressure (retry later — the request was never
/// admitted), kTimeout is a request that aged out of the queue before a
/// dispatcher reached it (it was admitted but never composed).
enum class WireStatus : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kUnsupported = 3,
  kFailedPrecondition = 4,
  kOverloaded = 5,
  kTimeout = 6,
  kInternal = 7,
};

/// Total, pinned mapping from the library's StatusCode: every StatusCode
/// has exactly one wire image (kResourceExhausted → kOverloaded; anything
/// unknown degrades to kInternal, never to a bogus success). The mapping
/// is pinned code-by-code in tests/serve_protocol_test.cc.
WireStatus WireStatusFrom(StatusCode code);

/// Client-side inverse: reconstructs the closest StatusCode so wire
/// errors re-enter the library's Status/Result plumbing. kOverloaded and
/// kTimeout both land on kResourceExhausted (their shared library-side
/// ancestor); the round trip StatusCode→WireStatus→StatusCode is identity
/// for every code except that collapse.
StatusCode StatusCodeFrom(WireStatus status);

/// Stable display name ("Ok", "Overloaded", ...).
const char* WireStatusName(WireStatus status);

/// True for a byte that decodes to a known WireStatus value — a frame
/// carrying anything else is a protocol error.
bool IsValidWireStatus(uint8_t raw);

}  // namespace serve
}  // namespace mapcomp

#endif  // MAPCOMP_SERVE_WIRE_STATUS_H_
