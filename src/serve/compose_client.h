#ifndef MAPCOMP_SERVE_COMPOSE_CLIENT_H_
#define MAPCOMP_SERVE_COMPOSE_CLIENT_H_

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/serve/protocol.h"
#include "src/serve/serve_types.h"

namespace mapcomp {
namespace serve {

/// How CallWithRetry paces itself. Backoff is exponential with
/// deterministic multiplicative jitter (an xorshift stream, seedable for
/// reproducible tests): attempt n sleeps 50–100% of
/// min(initial_backoff_ms << n, max_backoff_ms), so a herd of clients
/// shed by the same overloaded server decorrelates instead of
/// re-stampeding in lockstep. Both the attempt count and the total sleep
/// budget cap the loop — whichever runs out first ends it.
struct RetryPolicy {
  int max_attempts = 4;        ///< total tries, including the first
  int initial_backoff_ms = 5;  ///< nominal first backoff
  int max_backoff_ms = 200;    ///< nominal backoff ceiling
  int total_budget_ms = 2000;  ///< hard cap on cumulative sleep
  uint64_t jitter_seed = 0;    ///< 0 = seed from the monotonic clock
};

/// Blocking client for one ComposeServer connection. Send/Recv are split
/// so callers can pipeline: many Sends first, then collect replies — the
/// request_id correlates them (the server may interleave shed replies
/// ahead of composed ones). Call() is the one-shot convenience.
///
/// Not thread-safe; one client per thread (connections are cheap).
class ComposeClient {
 public:
  ~ComposeClient();
  ComposeClient(const ComposeClient&) = delete;
  ComposeClient& operator=(const ComposeClient&) = delete;

  /// Connects to host:port. Retries ECONNREFUSED with jittered
  /// exponential backoff until `retry_ms` elapses in total (covers the
  /// race of a client starting before the server's listen — the CI
  /// loopback smoke depends on this — without hammering a struggling
  /// endpoint at a fixed cadence). host may be a dotted quad or
  /// "localhost".
  static Result<std::unique_ptr<ComposeClient>> Connect(
      const std::string& host, int port, int retry_ms = 2000);

  /// Serializes and writes one request frame.
  Status Send(const ServeRequest& request);
  /// Blocks until one complete reply frame arrives and parses it.
  Result<ServeReply> Recv();
  /// Send + Recv.
  Result<ServeReply> Call(const ServeRequest& request);
  /// Call, retrying ONLY kOverloaded replies under `policy`. kOverloaded
  /// is the one verdict that promises "never admitted, safe to resend";
  /// kTimeout means the deadline budget is already spent, kCancelled that
  /// someone upstream gave up, and transport errors leave the stream in
  /// an unknown state (this client is connection-oriented; reconnect to
  /// retry those) — all surface to the caller unchanged, after zero
  /// resends. The wire-status append that split kOverloaded from
  /// kResourceExhausted/kTimeout is precisely what makes this policy
  /// implementable client-side.
  Result<ServeReply> CallWithRetry(const ServeRequest& request,
                                   const RetryPolicy& policy = {});

  /// Writes raw bytes as-is — test/bench hook for speaking garbage at the
  /// server.
  Status SendRaw(const std::string& bytes);

  void Close();
  int fd() const { return fd_; }

 private:
  ComposeClient(int fd, size_t max_frame_bytes)
      : fd_(fd), decoder_(max_frame_bytes) {}

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace serve
}  // namespace mapcomp

#endif  // MAPCOMP_SERVE_COMPOSE_CLIENT_H_
