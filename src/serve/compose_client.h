#ifndef MAPCOMP_SERVE_COMPOSE_CLIENT_H_
#define MAPCOMP_SERVE_COMPOSE_CLIENT_H_

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/serve/protocol.h"
#include "src/serve/serve_types.h"

namespace mapcomp {
namespace serve {

/// Blocking client for one ComposeServer connection. Send/Recv are split
/// so callers can pipeline: many Sends first, then collect replies — the
/// request_id correlates them (the server may interleave shed replies
/// ahead of composed ones). Call() is the one-shot convenience.
///
/// Not thread-safe; one client per thread (connections are cheap).
class ComposeClient {
 public:
  ~ComposeClient();
  ComposeClient(const ComposeClient&) = delete;
  ComposeClient& operator=(const ComposeClient&) = delete;

  /// Connects to host:port. Retries ECONNREFUSED until `retry_ms` elapses
  /// (covers the race of a client starting before the server's listen —
  /// the CI loopback smoke depends on this). host may be a dotted quad or
  /// "localhost".
  static Result<std::unique_ptr<ComposeClient>> Connect(
      const std::string& host, int port, int retry_ms = 2000);

  /// Serializes and writes one request frame.
  Status Send(const ServeRequest& request);
  /// Blocks until one complete reply frame arrives and parses it.
  Result<ServeReply> Recv();
  /// Send + Recv.
  Result<ServeReply> Call(const ServeRequest& request);

  /// Writes raw bytes as-is — test/bench hook for speaking garbage at the
  /// server.
  Status SendRaw(const std::string& bytes);

  void Close();
  int fd() const { return fd_; }

 private:
  ComposeClient(int fd, size_t max_frame_bytes)
      : fd_(fd), decoder_(max_frame_bytes) {}

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace serve
}  // namespace mapcomp

#endif  // MAPCOMP_SERVE_COMPOSE_CLIENT_H_
