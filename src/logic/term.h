#ifndef MAPCOMP_LOGIC_TERM_H_
#define MAPCOMP_LOGIC_TERM_H_

#include <string>
#include <vector>

#include "src/algebra/condition.h"
#include "src/algebra/value.h"

namespace mapcomp {
namespace logic {

/// Variable identifier inside one dependency (0-based, local).
using VarId = int;

/// A first-order term: a variable, a constant, or a Skolem function applied
/// to variables. Function arguments are restricted to plain variables — the
/// right-normalization step only ever builds such terms, and deskolemization
/// step 2 ("check for cycles") relies on it.
struct Term {
  enum class Kind { kVar, kConst, kFunc };

  Kind kind = Kind::kVar;
  VarId var = 0;
  Value constant = int64_t{0};
  std::string func;
  std::vector<VarId> func_args;

  static Term MakeVar(VarId v) {
    Term t;
    t.kind = Kind::kVar;
    t.var = v;
    return t;
  }
  static Term MakeConst(Value v) {
    Term t;
    t.kind = Kind::kConst;
    t.constant = std::move(v);
    return t;
  }
  static Term MakeFunc(std::string name, std::vector<VarId> args) {
    Term t;
    t.kind = Kind::kFunc;
    t.func = std::move(name);
    t.func_args = std::move(args);
    return t;
  }

  bool IsVar() const { return kind == Kind::kVar; }
  bool IsConst() const { return kind == Kind::kConst; }
  bool IsFunc() const { return kind == Kind::kFunc; }

  bool operator==(const Term& o) const;
  std::string ToString() const;
};

/// Renames variables by `remap` (applied to var terms and function
/// arguments).
Term RemapTerm(const Term& t, const std::vector<VarId>& remap);

}  // namespace logic
}  // namespace mapcomp

#endif  // MAPCOMP_LOGIC_TERM_H_
