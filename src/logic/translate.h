#ifndef MAPCOMP_LOGIC_TRANSLATE_H_
#define MAPCOMP_LOGIC_TRANSLATE_H_

#include "src/common/status.h"
#include "src/constraints/constraint.h"
#include "src/logic/dependency.h"

namespace mapcomp {
namespace logic {

/// One disjunct of a union of conjunctive queries, with output terms.
/// {outputs | atoms ∧ conds} under set semantics.
struct CQ {
  std::vector<LAtom> atoms;
  std::vector<TermCond> conds;
  std::vector<Term> outputs;
};

/// Allocates dependency-local variable ids.
struct VarAllocator {
  int next = 0;
  VarId Fresh() { return next++; }
};

/// Translates a relational expression into a union of conjunctive queries.
/// Supported operators: base relations, D, ∅, literals, ∪, ∩, ×, σ with
/// conjunctive conditions, π, and Skolem applications whose arguments are
/// plain variables. Unsupported (difference, user ops, disjunctive or
/// negated conditions) returns Unsupported — callers treat this as
/// "deskolemization fails", reverting right compose (paper behaviour).
Result<std::vector<CQ>> ExprToUCQ(const ExprPtr& e, VarAllocator* vars);

/// Translates a containment constraint into Skolemized tuple-generating
/// dependencies (one per lhs disjunct). The rhs must translate to a single
/// conjunctive query with no Skolem terms.
Result<std::vector<Dependency>> ConstraintToDependencies(const Constraint& c);

}  // namespace logic
}  // namespace mapcomp

#endif  // MAPCOMP_LOGIC_TRANSLATE_H_
