#ifndef MAPCOMP_LOGIC_DEPENDENCY_H_
#define MAPCOMP_LOGIC_DEPENDENCY_H_

#include <set>
#include <string>
#include <vector>

#include "src/logic/term.h"

namespace mapcomp {
namespace logic {

/// Reserved relation name for active-domain atoms `$D(x)` (arity 1).
inline const char kDomainAtom[] = "$D";

/// A relational atom R(t1,...,tk).
struct LAtom {
  std::string rel;
  std::vector<Term> args;

  bool operator==(const LAtom& o) const {
    return rel == o.rel && args == o.args;
  }
  std::string ToString() const;
};

/// A comparison between two terms (from selection conditions).
struct TermCond {
  CmpOp op = CmpOp::kEq;
  Term lhs, rhs;

  bool operator==(const TermCond& o) const {
    return op == o.op && lhs == o.lhs && rhs == o.rhs;
  }
  std::string ToString() const;
};

/// A (possibly Skolemized) tuple-generating dependency:
///
///   ∀x̄ [ body ∧ body_conds → ∃ȳ head ∧ head_conds ]
///
/// where x̄ are the variables occurring in the body and ȳ the remaining
/// variables. Head atom arguments may contain Skolem function terms over
/// body variables (the Skolemized form produced by right compose, §3.5);
/// deskolemization removes them.
struct Dependency {
  std::vector<LAtom> body;
  std::vector<TermCond> body_conds;
  std::vector<LAtom> head;
  std::vector<TermCond> head_conds;
  int num_vars = 0;

  /// Variables appearing in body atoms or conds.
  std::set<VarId> BodyVars() const;
  /// Variables appearing in head atoms or conds (including func args).
  std::set<VarId> HeadVars() const;
  /// All Skolem function names used.
  std::set<std::string> FunctionNames() const;

  /// Renumbers variables in first-occurrence order (body atoms, body conds,
  /// head atoms, head conds) and compacts num_vars. Canonical form used for
  /// duplicate detection.
  Dependency Canonicalized() const;

  std::string ToString() const;
};

/// Collects function terms (with their argument lists) appearing anywhere in
/// the dependency.
std::vector<Term> CollectFunctionTerms(const Dependency& d);

}  // namespace logic
}  // namespace mapcomp

#endif  // MAPCOMP_LOGIC_DEPENDENCY_H_
