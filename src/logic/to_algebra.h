#ifndef MAPCOMP_LOGIC_TO_ALGEBRA_H_
#define MAPCOMP_LOGIC_TO_ALGEBRA_H_

#include "src/common/status.h"
#include "src/constraints/constraint.h"
#include "src/logic/dependency.h"

namespace mapcomp {
namespace logic {

/// Translates a function-free dependency back to an algebraic containment
/// constraint:
///
///   body → ∃ȳ head   becomes   π_x̄(σ(body atoms ×)) ⊆ π_x̄(σ(head atoms ×))
///
/// where x̄ are the exported variables (body ∩ head), projected in the same
/// canonical order on both sides; head-only variables are existential and
/// simply not projected; `$D` atoms become the active-domain relation D.
/// Fails on dependencies still containing Skolem terms.
Result<Constraint> DependencyToConstraint(const Dependency& d);

}  // namespace logic
}  // namespace mapcomp

#endif  // MAPCOMP_LOGIC_TO_ALGEBRA_H_
