#ifndef MAPCOMP_LOGIC_HOMOMORPHISM_H_
#define MAPCOMP_LOGIC_HOMOMORPHISM_H_

#include <map>
#include <optional>

#include "src/logic/dependency.h"

namespace mapcomp {
namespace logic {

/// Classic conjunctive-query homomorphism: a variable mapping h such that
/// h(atom) ∈ to_atoms for every atom in from_atoms (constants map to
/// themselves). Function terms are unsupported (returns nullopt). Used for
/// CQ containment (from ⊇ to as queries iff such an h exists on their
/// canonical databases) and redundancy detection.
std::optional<std::map<VarId, Term>> FindHomomorphism(
    const std::vector<LAtom>& from_atoms, const std::vector<LAtom>& to_atoms);

/// Searches for a bijective variable renaming phi with phi(b_atoms) =
/// a_atoms as multisets, extending `seed` (pairs b-var → a-var). Conditions
/// must also correspond. Used by deskolemization step 9 to decide whether
/// two dependencies sharing Skolem functions have identical bodies.
std::optional<std::map<VarId, VarId>> FindBodyBijection(
    const std::vector<LAtom>& a_atoms, const std::vector<TermCond>& a_conds,
    const std::vector<LAtom>& b_atoms, const std::vector<TermCond>& b_conds,
    const std::map<VarId, VarId>& seed);

}  // namespace logic
}  // namespace mapcomp

#endif  // MAPCOMP_LOGIC_HOMOMORPHISM_H_
