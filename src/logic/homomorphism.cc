#include "src/logic/homomorphism.h"

#include <algorithm>

namespace mapcomp {
namespace logic {

namespace {

/// Tries to map term `from` onto term `to` extending `h`; terms are
/// var/const only.
bool UnifyInto(const Term& from, const Term& to, std::map<VarId, Term>* h) {
  if (from.IsConst()) {
    return to.IsConst() && CompareValues(from.constant, to.constant) == 0;
  }
  if (!from.IsVar()) return false;
  auto it = h->find(from.var);
  if (it != h->end()) return it->second == to;
  (*h)[from.var] = to;
  return true;
}

bool HomSearch(const std::vector<LAtom>& from, size_t index,
               const std::vector<LAtom>& to, std::map<VarId, Term>* h) {
  if (index == from.size()) return true;
  const LAtom& atom = from[index];
  for (const LAtom& target : to) {
    if (target.rel != atom.rel || target.args.size() != atom.args.size()) {
      continue;
    }
    std::map<VarId, Term> saved = *h;
    bool ok = true;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (atom.args[i].IsFunc() || target.args[i].IsFunc()) {
        ok = false;
        break;
      }
      if (!UnifyInto(atom.args[i], target.args[i], h)) {
        ok = false;
        break;
      }
    }
    if (ok && HomSearch(from, index + 1, to, h)) return true;
    *h = std::move(saved);
  }
  return false;
}

/// Applies a (possibly partial) variable renaming to a term; unmapped
/// variables stay in place, flagged through *complete.
Term ApplyRenaming(const Term& t, const std::map<VarId, VarId>& phi,
                   bool* complete) {
  Term out = t;
  if (t.IsVar()) {
    auto it = phi.find(t.var);
    if (it == phi.end()) {
      *complete = false;
    } else {
      out.var = it->second;
    }
  } else if (t.IsFunc()) {
    for (VarId& a : out.func_args) {
      auto it = phi.find(a);
      if (it == phi.end()) {
        *complete = false;
      } else {
        a = it->second;
      }
    }
  }
  return out;
}

bool CondsCorrespond(const std::vector<TermCond>& a_conds,
                     const std::vector<TermCond>& b_conds,
                     const std::map<VarId, VarId>& phi) {
  if (a_conds.size() != b_conds.size()) return false;
  std::vector<bool> used(a_conds.size(), false);
  for (const TermCond& bc : b_conds) {
    bool complete = true;
    TermCond mapped{bc.op, ApplyRenaming(bc.lhs, phi, &complete),
                    ApplyRenaming(bc.rhs, phi, &complete)};
    if (!complete) return false;
    bool found = false;
    for (size_t i = 0; i < a_conds.size(); ++i) {
      if (!used[i] && a_conds[i] == mapped) {
        used[i] = true;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool BijSearch(const std::vector<LAtom>& a_atoms,
               const std::vector<LAtom>& b_atoms, size_t index,
               std::vector<bool>* used, std::map<VarId, VarId>* phi,
               std::map<VarId, VarId>* inverse) {
  if (index == b_atoms.size()) return true;
  const LAtom& atom = b_atoms[index];
  for (size_t k = 0; k < a_atoms.size(); ++k) {
    if ((*used)[k]) continue;
    const LAtom& target = a_atoms[k];
    if (target.rel != atom.rel || target.args.size() != atom.args.size()) {
      continue;
    }
    std::map<VarId, VarId> saved_phi = *phi;
    std::map<VarId, VarId> saved_inv = *inverse;
    bool ok = true;
    for (size_t i = 0; i < atom.args.size() && ok; ++i) {
      const Term& bt = atom.args[i];
      const Term& at = target.args[i];
      if (bt.kind != at.kind) {
        ok = false;
      } else if (bt.IsConst()) {
        ok = CompareValues(bt.constant, at.constant) == 0;
      } else if (bt.IsVar()) {
        auto bind = [&](VarId from, VarId to) {
          auto it = phi->find(from);
          if (it != phi->end()) return it->second == to;
          auto jt = inverse->find(to);
          if (jt != inverse->end()) return false;  // not injective
          (*phi)[from] = to;
          (*inverse)[to] = from;
          return true;
        };
        ok = bind(bt.var, at.var);
      } else {  // function term
        ok = bt.func == at.func && bt.func_args.size() == at.func_args.size();
        for (size_t j = 0; j < bt.func_args.size() && ok; ++j) {
          auto it = phi->find(bt.func_args[j]);
          if (it != phi->end()) {
            ok = it->second == at.func_args[j];
          } else {
            auto jt = inverse->find(at.func_args[j]);
            if (jt != inverse->end()) {
              ok = false;
            } else {
              (*phi)[bt.func_args[j]] = at.func_args[j];
              (*inverse)[at.func_args[j]] = bt.func_args[j];
            }
          }
        }
      }
    }
    if (ok) {
      (*used)[k] = true;
      if (BijSearch(a_atoms, b_atoms, index + 1, used, phi, inverse)) {
        return true;
      }
      (*used)[k] = false;
    }
    *phi = std::move(saved_phi);
    *inverse = std::move(saved_inv);
  }
  return false;
}

}  // namespace

std::optional<std::map<VarId, Term>> FindHomomorphism(
    const std::vector<LAtom>& from_atoms, const std::vector<LAtom>& to_atoms) {
  std::map<VarId, Term> h;
  if (HomSearch(from_atoms, 0, to_atoms, &h)) return h;
  return std::nullopt;
}

std::optional<std::map<VarId, VarId>> FindBodyBijection(
    const std::vector<LAtom>& a_atoms, const std::vector<TermCond>& a_conds,
    const std::vector<LAtom>& b_atoms, const std::vector<TermCond>& b_conds,
    const std::map<VarId, VarId>& seed) {
  if (a_atoms.size() != b_atoms.size()) return std::nullopt;
  std::map<VarId, VarId> phi = seed;
  std::map<VarId, VarId> inverse;
  for (const auto& [from, to] : seed) {
    if (!inverse.emplace(to, from).second) return std::nullopt;
  }
  std::vector<bool> used(a_atoms.size(), false);
  if (!BijSearch(a_atoms, b_atoms, 0, &used, &phi, &inverse)) {
    return std::nullopt;
  }
  if (!CondsCorrespond(a_conds, b_conds, phi)) return std::nullopt;
  return phi;
}

}  // namespace logic
}  // namespace mapcomp
